// Command ebmfgw is the fingerprint-sharded gateway in front of a fleet of
// ebmfd backends: it computes each request's canonical fingerprint, routes
// equivalent matrices to the same shard by consistent hashing (so the
// shard's cache and singleflight deduplicate them fleet-wide), splits
// batches across shards, and layers a local LRU of proved-optimal results
// in front of the network. Backends are health-probed, circuit-broken and
// hedged: a request fails only when every candidate backend refused it.
//
// Usage:
//
//	ebmfgw -backends http://h1:8421,http://h2:8421 [flags]
//
// Flags:
//
//	-backends LIST       comma-separated ebmfd base URLs (required)
//	-addr A              listen address (default :8420)
//	-hedge-after D       race the next shard after this much silence (default 2s, 0 = off)
//	-local-cache N       local proved-optimal LRU entries (default 512, 0 = off)
//	-probe-interval D    healthz probe period (default 2s, 0 = off)
//	-breaker-fails N     consecutive refusals that open a breaker (default 3)
//	-breaker-cooldown D  open→half-open delay (default 5s)
//	-max-inflight N      per-backend in-flight cap (default 256)
//	-max-entries N       reject matrices with more than N cells (default 1048576)
//	-replicate N         seed each fresh proved-optimal result to N ring successors (default 1, 0 = off)
//	-max-job-routes N    gateway job ID → backend routes remembered (default 4096)
//	-fill-timeout D      per-fill request deadline (default 5s)
//	-trace-sample N      trace one request in N (1 = every request; -1 = tracing off)
//	-slow-solve-ms N     log requests slower than N ms with their span tree (0 = off)
//	-debug-addr A        serve net/http/pprof and expvar on a separate listener (default: off)
//	-quiet               no per-request log lines
//
// With -addr ending in :0 the kernel picks a free port; the actual address
// is printed in the "listening on" log line (scripts parse it from there).
//
// Endpoints (the wire schema is identical to ebmfd's, so ebmf/ebmfd clients
// work unchanged):
//
//	POST /v1/solve    routed to the matrix's fingerprint shard
//	POST /v1/batch    split across shards, merged in request order
//	POST /v1/jobs     async submit, offered to shard candidates sequentially
//	GET  /v1/jobs/{id}          poll, sticky to the accepting backend
//	DELETE /v1/jobs/{id}        cancel through the proxy
//	GET  /v1/jobs/{id}/events   SSE stream proxied frame by frame
//
// A job whose home backend dies is re-homed: the gateway resubmits the
// pinned canonical matrix to the next ring candidate under the same gw- ID
// and flags later snapshots with "rehomed":true (counted in /v1/metrics as
// jobs.rehomed). Progress restarts on the new home, but the result is the
// same — it is a deterministic property of the matrix.
//
//	GET  /v1/healthz  gateway + fleet liveness
//	GET  /v1/metrics  gateway counters and per-backend state
//	GET  /v1/debug/traces   stitched cross-tier traces (gateway + backend spans)
//
// Every result a backend proves fresh (not a cache hit) is asynchronously
// replicated to its -replicate ring successors via POST /v1/fill, so a shard
// failover lands on an already-warm cache instead of forcing re-solves.
//
// SIGINT/SIGTERM drains gracefully: healthz flips to 503, new requests are
// rejected, in-flight forwards and cache fills finish.
package main

import (
	"context"
	"errors"
	"flag"
	"io"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
)

func main() {
	backends := flag.String("backends", "", "comma-separated ebmfd base URLs (required)")
	addr := flag.String("addr", ":8420", "listen address")
	hedgeAfter := flag.Duration("hedge-after", 2*time.Second, "race the next shard after this much silence (0 = no hedging)")
	localCache := flag.Int("local-cache", 512, "local proved-optimal result cache entries (0 = off)")
	probeInterval := flag.Duration("probe-interval", 2*time.Second, "healthz probe period (0 = no probing)")
	breakerFails := flag.Int("breaker-fails", 3, "consecutive refusals that open a backend's circuit breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 5*time.Second, "open breaker cooldown before a half-open trial")
	maxInflight := flag.Int("max-inflight", 256, "per-backend in-flight request cap")
	maxEntries := flag.Int("max-entries", 1<<20, "reject matrices with more cells than this")
	replicate := flag.Int("replicate", 1, "ring successors to seed with each fresh proved-optimal result (0 = off)")
	maxJobRoutes := flag.Int("max-job-routes", 4096, "gateway job ID to backend routes remembered")
	fillTimeout := flag.Duration("fill-timeout", 5*time.Second, "per-fill request deadline")
	traceSample := flag.Int("trace-sample", 1, "trace one request in N (1 = every request, negative = off)")
	slowSolveMS := flag.Int64("slow-solve-ms", 0, "log requests slower than this with their span tree (0 = off)")
	debugAddr := flag.String("debug-addr", "", "serve pprof and expvar on this separate address (empty = off)")
	quiet := flag.Bool("quiet", false, "no per-request log lines")
	flag.Parse()

	logger := log.New(os.Stderr, "ebmfgw: ", log.LstdFlags)
	reqLogger := logger
	if *quiet {
		reqLogger = log.New(io.Discard, "", 0)
	}
	var urls []string
	for _, u := range strings.Split(*backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		logger.Fatal("no backends: pass -backends http://host:port[,http://host:port...]")
	}
	// Flag convention: 0 = feature off; Config convention: negative = off.
	if *hedgeAfter == 0 {
		*hedgeAfter = -1
	}
	if *localCache == 0 {
		*localCache = -1
	}
	if *probeInterval == 0 {
		*probeInterval = -1
	}
	if *replicate == 0 {
		*replicate = -1
	}
	gw, err := cluster.New(cluster.Config{
		Backends:         urls,
		HedgeAfter:       *hedgeAfter,
		LocalCacheSize:   *localCache,
		ProbeInterval:    *probeInterval,
		BreakerThreshold: *breakerFails,
		BreakerCooldown:  *breakerCooldown,
		MaxInflight:      *maxInflight,
		MaxMatrixEntries: *maxEntries,
		ReplicateFills:   *replicate,
		FillTimeout:      *fillTimeout,
		MaxJobRoutes:     *maxJobRoutes,
		Logger:           reqLogger,
		Tracer: obs.New(obs.Config{
			SampleEvery:   *traceSample,
			SlowThreshold: time.Duration(*slowSolveMS) * time.Millisecond,
			Logger:        slog.New(slog.NewTextHandler(os.Stderr, nil)),
		}),
	})
	if err != nil {
		logger.Fatal(err)
	}
	defer gw.Close()

	// Same split as ebmfd: profiling endpoints live on their own listener,
	// never the serving port.
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			logger.Fatalf("debug listen: %v", err)
		}
		go func() {
			if err := http.Serve(dln, obs.DebugMux()); err != nil {
				logger.Printf("debug serve: %v", err)
			}
		}()
		logger.Printf("debug listening on %s (pprof, expvar)", dln.Addr())
	}

	httpSrv := &http.Server{
		Handler:           gw.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	// Listen explicitly (instead of ListenAndServe) so -addr :0 works: the
	// log line reports the kernel-assigned port, which
	// scripts/cluster_smoke.sh parses to avoid port collisions in CI.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatalf("listen: %v", err)
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	logger.Printf("listening on %s (backends=%d hedge-after=%v local-cache=%d)",
		ln.Addr(), len(urls), *hedgeAfter, *localCache)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		logger.Fatalf("serve: %v", err)
	case s := <-sig:
		logger.Printf("%v: draining", s)
		gw.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			logger.Fatalf("drain: %v", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Fatalf("serve: %v", err)
		}
		snap := gw.MetricsSnapshot()
		logger.Printf("drained cleanly (%d solves, %d local hits, %d hedges)",
			snap.Requests.Solve, snap.Cache.Local.Hits, snap.Routing.Hedges)
	}
}
