// Command webhooksink is a tiny webhook receiver for smoke tests: it
// accepts POSTed terminal-job notifications, appends each body as one JSON
// line to -out (or stdout), and can fail the first N deliveries to exercise
// the sender's retry path.
//
// Usage:
//
//	webhooksink [flags]
//
// Flags:
//
//	-addr A        listen address (default 127.0.0.1:0; the bound address is
//	               printed in the "listening on" log line, which scripts parse)
//	-out F         append received bodies to this file, one JSON per line
//	               (default: stdout)
//	-fail-first N  respond 500 to the first N deliveries (default 0)
//
// Every delivery is logged to stderr with its disposition, so a smoke run's
// transcript shows the at-least-once retry sequence.
package main

import (
	"flag"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "listen address")
	out := flag.String("out", "", "append received webhook bodies to this file (empty = stdout)")
	failFirst := flag.Int64("fail-first", 0, "respond 500 to the first N deliveries")
	flag.Parse()

	logger := log.New(os.Stderr, "webhooksink: ", log.LstdFlags)
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.OpenFile(*out, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			logger.Fatalf("-out: %v", err)
		}
		defer f.Close()
		w = f
	}

	var mu sync.Mutex // serializes writes so concurrent deliveries stay one-per-line
	var seen atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /", func(rw http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		n := seen.Add(1)
		if n <= *failFirst {
			logger.Printf("delivery %d: rejected (fail-first %d)", n, *failFirst)
			http.Error(rw, "injected failure", http.StatusInternalServerError)
			return
		}
		mu.Lock()
		_, werr := w.Write(append(body, '\n'))
		mu.Unlock()
		if werr != nil {
			logger.Printf("delivery %d: write: %v", n, werr)
			http.Error(rw, werr.Error(), http.StatusInternalServerError)
			return
		}
		logger.Printf("delivery %d: accepted (%d bytes)", n, len(body))
		rw.WriteHeader(http.StatusOK)
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatalf("listen: %v", err)
	}
	logger.Printf("listening on %s", ln.Addr())
	if err := http.Serve(ln, mux); err != nil {
		logger.Fatalf("serve: %v", err)
	}
}
