// Command evaltable regenerates Table I of the paper: the percentage of
// benchmark instances on which the trivial heuristic and row packing (at
// several trial counts) find a provably optimal rectangle partition, plus
// the fraction of instances whose binary rank equals their rational rank.
//
// Usage:
//
//	evaltable [-scale small|paper] [-seed N] [-budget N] [-trials 1,10,100,1000]
//
// The paper's scale (10 instances per random cell and optimal rank, 100 per
// gap pair count, 1000 packing trials) takes a while on a laptop; the
// default small scale finishes in minutes and preserves the qualitative
// shape of every row.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/eval"
)

func main() {
	scale := flag.String("scale", "small", "paper | small")
	seed := flag.Int64("seed", 2024, "benchmark seed")
	budget := flag.Int64("budget", 2_000_000, "SAT conflict budget per instance (0 = unlimited)")
	timeout := flag.Duration("timeout", 60*time.Second, "SAT wall-clock budget per instance")
	parallel := flag.Int("parallel", 0, "per-block solve parallelism inside each instance (0 = GOMAXPROCS)")
	trialsFlag := flag.String("trials", "1,10,100,1000", "row-packing trial counts")
	csvPath := flag.String("csv", "", "also write raw counts as CSV to this file")
	flag.Parse()

	trialCounts, err := parseInts(*trialsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "evaltable:", err)
		os.Exit(2)
	}
	countSmall, countGap := 2, 10
	if *scale == "paper" {
		countSmall, countGap = 10, 100
	}
	opts := eval.Options{
		TrialCounts:    trialCounts,
		ConflictBudget: *budget,
		TimeBudget:     *timeout,
		MaxSATEntries:  400,
		Parallelism:    *parallel,
		Seed:           *seed,
	}
	suites := eval.PaperSuites(*seed, countSmall, countGap)
	var rows []eval.Row
	start := time.Now()
	for _, name := range eval.SuiteOrder() {
		t0 := time.Now()
		row, _ := eval.EvalSuite(name, suites[name], opts)
		rows = append(rows, row)
		fmt.Fprintf(os.Stderr, "evaluated %-16s (%d instances) in %v\n",
			name, row.Total, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Printf("\nTable I (percentage of cases finding an optimal solution; seed %d, scale %s)\n\n", *seed, *scale)
	eval.WriteTable(os.Stdout, rows, trialCounts)
	fmt.Printf("\ntotal runtime: %v\n", time.Since(start).Round(time.Millisecond))
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "evaltable:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := eval.WriteCSV(f, rows, trialCounts); err != nil {
			fmt.Fprintln(os.Stderr, "evaltable:", err)
			os.Exit(1)
		}
		fmt.Printf("raw counts written to %s\n", *csvPath)
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad trial count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}
