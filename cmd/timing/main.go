// Command timing regenerates Figure 4 of the paper: the most time-consuming
// cases of the exact solver, split into packing time and SAT time, together
// with each case's rational rank. The paper's observation — the expensive
// step is proving UNSAT one below the best depth found, while packing time
// is negligible — should be visible in the output on any machine.
//
// Usage:
//
//	timing [-top N] [-seed S] [-gap N] [-rand N] [-budget N] [-json]
//	timing [-cpuprofile F] [-memprofile F] ...   # pprof profiles of the run
//	timing -portfolio [-portfolio-k K]
//
// With -json the command additionally runs the perf-tracked solver and SAP
// workloads (the same ones as `go test -bench 'Solver|SAP'`) and writes a
// BENCH_solver.json snapshot, so the solver's speed trajectory is recorded
// across PRs. With -portfolio it instead prints a per-instance wall-clock
// comparison of the single-strategy solver vs a K-strategy clause-sharing
// portfolio over the Table I gap suites, with the geomean ratio and the
// per-strategy win table.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/benchgen"
	"repro/internal/bitmat"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/encode"
	"repro/internal/eval"
	"repro/internal/sat"
	"repro/internal/server"
	"repro/internal/solvecache"
)

// benchEntry is one measured workload in the JSON snapshot.
type benchEntry struct {
	Name    string `json:"name"`
	NsPerOp int64  `json:"ns_per_op"`
	Iters   int    `json:"iters"`
}

type benchSnapshot struct {
	GoVersion string       `json:"go_version"`
	GOARCH    string       `json:"goarch"`
	When      string       `json:"when"`
	Benches   []benchEntry `json:"benches"`
}

// measure times fn over iters runs after one warm-up.
func measure(name string, iters int, fn func()) benchEntry {
	fn() // warm-up
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	return benchEntry{
		Name:    name,
		NsPerOp: time.Since(start).Nanoseconds() / int64(iters),
		Iters:   iters,
	}
}

// writeBenchJSON runs the perf-tracked workloads (shared with bench_test.go
// via internal/eval) and writes the snapshot.
func writeBenchJSON(path string) error {
	jobs := eval.TableIGapSolverJobs()
	blockDiag := eval.BlockDiagSAPMatrices()
	fig1b := bitmat.MustParse("101100\n010011\n101010\n010101\n111000\n000111")
	narrow := func(incremental, symBreak bool) func() {
		return func() {
			for _, j := range jobs {
				eval.NarrowToRank(j, incremental, symBreak)
			}
		}
	}
	gapMs := eval.GapSuiteMatrices()
	sapOpts := eval.TableIGapSAPOptions()
	portfolioOpts := eval.TableIGapPortfolioOptions(3)
	snap := benchSnapshot{
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		When:      time.Now().UTC().Format(time.RFC3339),
		Benches: []benchEntry{
			measure("SolverTableIGapNarrowing", 3, narrow(true, true)),
			measure("SolverTableIGapDestructive", 3, narrow(false, true)),
			measure("SolverTableIGapNoSymBreak", 3, narrow(true, false)),
			measure("SAPBlockDiagParallel", 3, func() { eval.RunBlockDiagSAP(blockDiag, true) }),
			measure("SAPBlockDiagSequentialWhole", 3, func() { eval.RunBlockDiagSAP(blockDiag, false) }),
			measure("SolverFig1bUnsat", 20, func() {
				if encode.NewOneHot(fig1b, 4, encode.AMONative).Solve() != sat.Unsat {
					panic("b=4 must be UNSAT")
				}
			}),
			measure("SAPTableIGap", 3, func() {
				eval.RunGapSuiteSAP(gapMs, sapOpts)
			}),
			measure("SAPTableIGapPortfolio", 3, func() {
				eval.RunGapSuiteSAP(gapMs, portfolioOpts)
			}),
			measure("CertifiedFig1bProof", 10, func() {
				if err := core.CertifyDepth(fig1b, 5); err != nil {
					panic(err)
				}
			}),
		},
	}
	return writeSnapshot(path, snap)
}

// writeServerBenchJSON measures the serving subsystem's perf-tracked
// workloads — cold pipeline solve vs fingerprint-cache hit, through the
// cache layer and through a full HTTP round trip — and writes
// BENCH_server.json.
func writeServerBenchJSON(path string) error {
	fig1b := bitmat.MustParse("101100\n010011\n101010\n010101\n111000\n000111")
	opts := core.DefaultOptions()

	rng := rand.New(rand.NewSource(1))
	perm := func() *bitmat.Matrix {
		rp, cp := rng.Perm(fig1b.Rows()), rng.Perm(fig1b.Cols())
		p := bitmat.New(fig1b.Rows(), fig1b.Cols())
		fig1b.ForEachOne(func(r, c int) { p.Set(rp[r], cp[c], true) })
		return p
	}

	warm := solvecache.New(0)
	if _, err := warm.Solve(fig1b, opts); err != nil {
		return err
	}

	srv := server.New(server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	body, _ := json.Marshal(map[string]string{"matrix": fig1b.String()})
	post := func(url string, body []byte) {
		resp, err := http.Post(url+"/v1/solve", "application/json", bytes.NewReader(body))
		if err != nil {
			panic(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	// Gateway workloads: one shard behind ebmfgw, measured once with the
	// gateway-local LRU serving permuted hits and once forced through to the
	// shard's fingerprint cache (the extra network hop).
	newGateway := func(localCache int) (*cluster.Gateway, *httptest.Server, error) {
		gw, err := cluster.New(cluster.Config{
			Backends:       []string{ts.URL},
			ProbeInterval:  -1,
			HedgeAfter:     -1,
			LocalCacheSize: localCache,
		})
		if err != nil {
			return nil, nil, err
		}
		return gw, httptest.NewServer(gw.Handler()), nil
	}
	gwLocal, gwLocalTS, err := newGateway(0)
	if err != nil {
		return err
	}
	defer gwLocal.Close()
	defer gwLocalTS.Close()
	gwProxy, gwProxyTS, err := newGateway(-1)
	if err != nil {
		return err
	}
	defer gwProxy.Close()
	defer gwProxyTS.Close()
	// Pre-marshal a pool of permuted request bodies so the measured op is
	// the same client work as ServerHTTPCacheHit (post a ready body), not
	// permutation + JSON encoding.
	permBodies := make([][]byte, 16)
	for i := range permBodies {
		permBodies[i], _ = json.Marshal(map[string]string{"matrix": perm().String()})
	}
	var permIdx int
	nextPermBody := func() []byte {
		permIdx++
		return permBodies[permIdx%len(permBodies)]
	}
	post(gwLocalTS.URL, body) // warm the local LRU
	post(gwProxyTS.URL, body) // warm the shard cache through the proxy path

	snap := benchSnapshot{
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		When:      time.Now().UTC().Format(time.RFC3339),
		Benches: []benchEntry{
			measure("ServerColdSolveFig1b", 20, func() {
				if _, err := solvecache.New(0).Solve(fig1b, opts); err != nil {
					panic(err)
				}
			}),
			measure("ServerCacheHitPermutedFig1b", 200, func() {
				res, err := warm.Solve(perm(), opts)
				if err != nil {
					panic(err)
				}
				if !res.CacheHit {
					panic("expected cache hit")
				}
			}),
			measure("ServerFingerprintFig1b", 500, func() {
				if fp := bitmat.ComputeFingerprint(fig1b); !fp.Exact {
					panic("inexact fingerprint")
				}
			}),
			measure("ServerHTTPCacheHit", 200, func() { post(ts.URL, body) }),
			measure("GatewayLocalCacheHit", 200, func() { post(gwLocalTS.URL, nextPermBody()) }),
			measure("GatewayProxyCacheHit", 200, func() { post(gwProxyTS.URL, nextPermBody()) }),
		},
	}
	return writeSnapshot(path, snap)
}

// runPortfolioComparison solves every Table I gap instance with the
// single-strategy default and with a K-strategy clause-sharing portfolio,
// printing per-instance wall-clock (best of 3) plus the geomean ratio and
// the aggregate winner table — the BENCH comparison for the racing layer.
func runPortfolioComparison(k int) error {
	ms := eval.GapSuiteMatrices()
	seqOpts := eval.TableIGapSAPOptions()
	raceOpts := eval.TableIGapPortfolioOptions(k)

	bestOf := func(m *bitmat.Matrix, opts core.Options) (time.Duration, *core.Result, error) {
		var best time.Duration
		var res *core.Result
		for i := 0; i < 3; i++ {
			t0 := time.Now()
			r, err := core.Solve(m, opts)
			if err != nil {
				return 0, nil, err
			}
			if d := time.Since(t0); res == nil || d < best {
				best, res = d, r
			}
		}
		return best, res, nil
	}

	fmt.Printf("portfolio comparison: K=%d, clause sharing on, %d gap instances\n\n", k, len(ms))
	fmt.Printf("%-4s %12s %12s %7s  %s\n", "#", "seq", "race", "ratio", "deciding strategy")
	wins := map[string]int{}
	logRatioSum, n := 0.0, 0
	var seqTotal, raceTotal time.Duration
	for i, m := range ms {
		seqD, seqRes, err := bestOf(m, seqOpts)
		if err != nil {
			return err
		}
		raceD, raceRes, err := bestOf(m, raceOpts)
		if err != nil {
			return err
		}
		// Completed solves must agree exactly; budget-boundary timeouts are
		// best-effort on the racing side (DESIGN.md §9) and only warn.
		switch {
		case seqRes.Optimal && raceRes.Optimal && raceRes.Depth != seqRes.Depth:
			return fmt.Errorf("instance %d: race result diverged (depth %d vs %d)", i, raceRes.Depth, seqRes.Depth)
		case seqRes.Optimal != raceRes.Optimal:
			fmt.Printf("note: instance %d decided only by one side (seq optimal=%v, race optimal=%v)\n",
				i, seqRes.Optimal, raceRes.Optimal)
		}
		winner := "-"
		if p := raceRes.Portfolio; p != nil {
			for name, c := range p.Wins {
				wins[name] += c
			}
			if len(p.BlockWinners) > 0 && p.BlockWinners[len(p.BlockWinners)-1] != "" {
				winner = p.BlockWinners[len(p.BlockWinners)-1]
			}
		}
		ratio := float64(raceD) / float64(seqD)
		logRatioSum += math.Log(ratio)
		n++
		seqTotal += seqD
		raceTotal += raceD
		fmt.Printf("%-4d %12v %12v %7.2f  %s\n", i, seqD.Round(time.Microsecond), raceD.Round(time.Microsecond), ratio, winner)
	}
	geomean := math.Exp(logRatioSum / float64(n))
	fmt.Printf("\ngeomean race/seq ratio: %.3f (<1 means racing is faster)\n", geomean)
	fmt.Printf("totals: seq=%v race=%v\n", seqTotal.Round(time.Millisecond), raceTotal.Round(time.Millisecond))
	fmt.Printf("round wins: %v\n", wins)
	return nil
}

func writeSnapshot(path string, snap benchSnapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

func main() {
	top := flag.Int("top", 7, "number of hardest cases to show (Figure 4 shows 7)")
	seed := flag.Int64("seed", 2024, "benchmark seed")
	gapCount := flag.Int("gap", 10, "gap instances per pair count (2..5)")
	randCount := flag.Int("rand", 5, "random 10×10 instances per occupancy")
	budget := flag.Int64("budget", 5_000_000, "SAT conflict budget per instance (0 = unlimited)")
	csvPath := flag.String("csv", "", "also write all per-instance results as CSV to this file")
	jsonOut := flag.Bool("json", false, "run the Solver/SAP perf workloads and write BENCH_solver.json")
	serverJSON := flag.Bool("server-json", false, "run the serving-subsystem workloads and write BENCH_server.json")
	portfolioCmp := flag.Bool("portfolio", false, "compare single-strategy vs portfolio racing on the Table I gap suites and exit")
	portfolioK := flag.Int("portfolio-k", 3, "portfolio size for -portfolio")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "timing:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "timing:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "timing:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile is stable
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "timing:", err)
			}
		}()
	}

	if *portfolioCmp {
		if err := runPortfolioComparison(*portfolioK); err != nil {
			fmt.Fprintln(os.Stderr, "timing:", err)
			os.Exit(1)
		}
		return
	}

	if *jsonOut {
		if err := writeBenchJSON("BENCH_solver.json"); err != nil {
			fmt.Fprintln(os.Stderr, "timing:", err)
			os.Exit(1)
		}
		fmt.Println("solver perf snapshot written to BENCH_solver.json")
	}
	if *serverJSON {
		if err := writeServerBenchJSON("BENCH_server.json"); err != nil {
			fmt.Fprintln(os.Stderr, "timing:", err)
			os.Exit(1)
		}
		fmt.Println("server perf snapshot written to BENCH_server.json")
	}

	opts := eval.Options{
		TrialCounts:    []int{100},
		ConflictBudget: *budget,
		MaxSATEntries:  400,
		Seed:           *seed,
	}

	var all []eval.InstanceResult
	start := time.Now()
	for pairs := 2; pairs <= 5; pairs++ {
		suite := benchgen.GapSuite(*seed+int64(pairs), 10, 10, []int{pairs}, *gapCount)
		_, per := eval.EvalSuite(fmt.Sprintf("gap-%d", pairs), suite, opts)
		all = append(all, per...)
	}
	randSuite := benchgen.RandomSuite(*seed, 10, 10, benchgen.PaperOccupanciesSmall(), *randCount)
	_, per := eval.EvalSuite("rand", randSuite, opts)
	all = append(all, per...)

	fmt.Printf("Figure 4: most time-consuming cases (%d instances evaluated in %v)\n\n",
		len(all), time.Since(start).Round(time.Millisecond))
	eval.WriteTimings(os.Stdout, eval.HardestCases(all, *top))
	fmt.Println("\nExpected shape (paper Observation 5): SAT time dominates packing time,")
	fmt.Println("and the bulk of it is spent proving the final bound UNSAT.")
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "timing:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := eval.WriteInstanceCSV(f, all); err != nil {
			fmt.Fprintln(os.Stderr, "timing:", err)
			os.Exit(1)
		}
		fmt.Printf("raw data written to %s\n", *csvPath)
	}
}
