// Command timing regenerates Figure 4 of the paper: the most time-consuming
// cases of the exact solver, split into packing time and SAT time, together
// with each case's rational rank. The paper's observation — the expensive
// step is proving UNSAT one below the best depth found, while packing time
// is negligible — should be visible in the output on any machine.
//
// Usage:
//
//	timing [-top N] [-seed S] [-gap N] [-rand N] [-budget N]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/benchgen"
	"repro/internal/eval"
)

func main() {
	top := flag.Int("top", 7, "number of hardest cases to show (Figure 4 shows 7)")
	seed := flag.Int64("seed", 2024, "benchmark seed")
	gapCount := flag.Int("gap", 10, "gap instances per pair count (2..5)")
	randCount := flag.Int("rand", 5, "random 10×10 instances per occupancy")
	budget := flag.Int64("budget", 5_000_000, "SAT conflict budget per instance (0 = unlimited)")
	csvPath := flag.String("csv", "", "also write all per-instance results as CSV to this file")
	flag.Parse()

	opts := eval.Options{
		TrialCounts:    []int{100},
		ConflictBudget: *budget,
		MaxSATEntries:  400,
		Seed:           *seed,
	}

	var all []eval.InstanceResult
	start := time.Now()
	for pairs := 2; pairs <= 5; pairs++ {
		suite := benchgen.GapSuite(*seed+int64(pairs), 10, 10, []int{pairs}, *gapCount)
		_, per := eval.EvalSuite(fmt.Sprintf("gap-%d", pairs), suite, opts)
		all = append(all, per...)
	}
	randSuite := benchgen.RandomSuite(*seed, 10, 10, benchgen.PaperOccupanciesSmall(), *randCount)
	_, per := eval.EvalSuite("rand", randSuite, opts)
	all = append(all, per...)

	fmt.Printf("Figure 4: most time-consuming cases (%d instances evaluated in %v)\n\n",
		len(all), time.Since(start).Round(time.Millisecond))
	eval.WriteTimings(os.Stdout, eval.HardestCases(all, *top))
	fmt.Println("\nExpected shape (paper Observation 5): SAT time dominates packing time,")
	fmt.Println("and the bulk of it is spent proving the final bound UNSAT.")
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "timing:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := eval.WriteInstanceCSV(f, all); err != nil {
			fmt.Fprintln(os.Stderr, "timing:", err)
			os.Exit(1)
		}
		fmt.Printf("raw data written to %s\n", *csvPath)
	}
}
