package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	ebmf "repro"
	"repro/internal/wire"
)

// runRemote submits the matrix as an async job to a running ebmfd or ebmfgw,
// streams the anytime progress events to stderr, and prints the terminal
// result with the same output flags and exit-code contract as a local solve:
// 0 proved optimal, 2 valid-but-unproven (budget exhausted, degraded or
// canceled with a partial answer), 1 on error.
//
// The job is submitted with cancel_on_disconnect, so killing the CLI cancels
// the remote solve instead of leaving it running server-side.
func runRemote(serverURL, apiKey string, degrade bool, callback string, m *ebmf.Matrix,
	opts *wire.SolveOptions, jsonOut, quiet bool) int {
	serverURL = strings.TrimRight(serverURL, "/")
	req := wire.JobRequest{
		API:                wire.V1,
		Matrix:             m.String(),
		Options:            opts,
		CancelOnDisconnect: callback == "", // a webhook outlives the CLI; don't cancel its job
		Degrade:            degrade,
		CallbackURL:        callback,
	}
	payload, err := json.Marshal(&req)
	if err != nil {
		return fail(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, serverURL+"/v1/jobs", bytes.NewReader(payload))
	if err != nil {
		return fail(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if apiKey != "" {
		hreq.Header.Set("Authorization", "Bearer "+apiKey)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		return fail(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return fail(fmt.Errorf("submit: %s: %s", resp.Status, errorMessage(body)))
	}
	var j wire.JobJSON
	if err := json.Unmarshal(body, &j); err != nil {
		return fail(fmt.Errorf("submit: bad job response: %v", err))
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "ebmf: job %s %s (tenant %s)\n", j.ID, j.State, j.Tenant)
	}

	final, err := streamJob(serverURL, apiKey, j.ID, quiet)
	if err != nil {
		return fail(err)
	}
	return printRemote(m, final, jsonOut, quiet)
}

// streamJob follows GET /v1/jobs/{id}/events until the terminal frame,
// echoing progress to stderr, and falls back to polling if the stream drops.
func streamJob(serverURL, apiKey, id string, quiet bool) (*wire.JobJSON, error) {
	hreq, err := http.NewRequest(http.MethodGet, serverURL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return nil, err
	}
	if apiKey != "" {
		hreq.Header.Set("Authorization", "Bearer "+apiKey)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("events: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("events: %s: %s", resp.Status, errorMessage(body))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		data, ok := strings.CutPrefix(sc.Text(), "data: ")
		if !ok {
			continue
		}
		var ev wire.JobEvent
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			return nil, fmt.Errorf("events: bad frame: %v", err)
		}
		switch {
		case ev.Job != nil:
			return ev.Job, nil
		case ev.Progress != nil && !quiet:
			p := ev.Progress
			fmt.Fprintf(os.Stderr, "ebmf: block %d bound=%d lb=%d conflicts=%d\n",
				p.Block, p.Bound, p.LB, p.Conflicts)
		case !quiet:
			fmt.Fprintf(os.Stderr, "ebmf: job %s\n", ev.State)
		}
	}
	// The stream dropped without a terminal frame (proxy restart, network
	// blip): the job itself is still running server-side, so poll it out.
	if !quiet {
		fmt.Fprintf(os.Stderr, "ebmf: event stream dropped, polling\n")
	}
	return pollJob(serverURL, apiKey, id)
}

func pollJob(serverURL, apiKey, id string) (*wire.JobJSON, error) {
	for {
		hreq, err := http.NewRequest(http.MethodGet, serverURL+"/v1/jobs/"+id, nil)
		if err != nil {
			return nil, err
		}
		if apiKey != "" {
			hreq.Header.Set("Authorization", "Bearer "+apiKey)
		}
		resp, err := http.DefaultClient.Do(hreq)
		if err != nil {
			return nil, fmt.Errorf("poll: %w", err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("poll: %s: %s", resp.Status, errorMessage(body))
		}
		var j wire.JobJSON
		if err := json.Unmarshal(body, &j); err != nil {
			return nil, fmt.Errorf("poll: bad job response: %v", err)
		}
		if wire.JobTerminal(j.State) {
			return &j, nil
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// printRemote renders the terminal job under the local output flags and maps
// its state to the CLI exit-code contract.
func printRemote(m *ebmf.Matrix, j *wire.JobJSON, jsonOut, quiet bool) int {
	if j.State == wire.JobFailed {
		return fail(fmt.Errorf("job failed: %s", j.Error))
	}
	if j.Result == nil {
		return fail(fmt.Errorf("job %s without a result", j.State))
	}
	res := j.Result
	switch {
	case jsonOut:
		if err := json.NewEncoder(os.Stdout).Encode(res); err != nil {
			return fail(err)
		}
	case quiet:
		fmt.Println(res.Depth)
	default:
		fmt.Printf("matrix: %d×%d, %d ones (occupancy %.1f%%)\n",
			m.Rows(), m.Cols(), m.Ones(), 100*m.Occupancy())
		fmt.Printf("depth:  %d rectangles", res.Depth)
		if res.Optimal {
			fmt.Printf("  (optimal, certificate: %s)", res.Certificate)
		} else {
			lb := res.RankLB
			if res.FoolingLB > lb {
				lb = res.FoolingLB
			}
			fmt.Printf("  (upper bound; lower bound %d)", lb)
		}
		fmt.Println()
		state := j.State
		if j.Degraded {
			state += ", degraded to heuristic under load"
		}
		fmt.Printf("job:    %s (%s; queued %dms, ran %dms, cache_hit=%v)\n",
			j.ID, state, j.QueuedMS, j.RunMS, res.CacheHit)
	}
	if !res.Optimal {
		return exitNonOptimal
	}
	return exitOptimal
}

// errorMessage extracts the message from a wire error body, falling back to
// the raw bytes.
func errorMessage(body []byte) string {
	var e wire.ErrorResponse
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		if e.Code != "" {
			return e.Code + ": " + e.Error
		}
		return e.Error
	}
	return strings.TrimSpace(string(body))
}
