// Command ebmf solves the depth-optimal rectangular addressing problem for a
// binary pattern matrix: it reads a matrix (rows of 0/1 characters), runs
// the SAP solver, and prints the rectangle partition, optionally as EBMF
// factors or an AOD pulse schedule.
//
// Usage:
//
//	ebmf [flags] [file]            # reads stdin when no file is given
//
// Flags:
//
//	-trials N      row-packing trials (default 100)
//	-encoding E    onehot | log (default onehot)
//	-budget N      SAT conflict budget, 0 = unlimited (default 2000000)
//	-timeout D     SAT wall-clock budget, e.g. 30s (default unlimited)
//	-heuristic     skip the exact stage
//	-factors       print the H and W factors
//	-schedule      print the AOD schedule and per-shot frames
//	-q             print only the depth
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	ebmf "repro"
	"repro/internal/core"
)

func main() {
	trials := flag.Int("trials", 100, "row-packing trials")
	encoding := flag.String("encoding", "onehot", "CNF encoding: onehot or log")
	budget := flag.Int64("budget", 2_000_000, "SAT conflict budget (0 = unlimited)")
	timeout := flag.Duration("timeout", 0, "SAT wall-clock budget (0 = unlimited)")
	heuristic := flag.Bool("heuristic", false, "skip the exact stage")
	factors := flag.Bool("factors", false, "print EBMF factors H and W")
	schedule := flag.Bool("schedule", false, "print the AOD schedule")
	jsonOut := flag.String("json", "", "write the AOD schedule as JSON to this file ('-' for stdout)")
	quiet := flag.Bool("q", false, "print only the depth")
	flag.Parse()

	var src io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}
	data, err := io.ReadAll(src)
	if err != nil {
		fatal(err)
	}
	m, err := ebmf.Parse(string(data))
	if err != nil {
		fatal(err)
	}

	opts := ebmf.DefaultOptions()
	opts.Packing.Trials = *trials
	opts.ConflictBudget = *budget
	opts.TimeBudget = *timeout
	opts.SkipSAT = *heuristic
	switch *encoding {
	case "onehot":
		opts.Encoding = core.EncodingOneHot
	case "log":
		opts.Encoding = core.EncodingLog
	default:
		fatal(fmt.Errorf("unknown encoding %q", *encoding))
	}

	res, err := ebmf.Solve(m, opts)
	if err != nil {
		fatal(err)
	}
	if *quiet {
		fmt.Println(res.Depth)
		return
	}

	fmt.Printf("matrix: %d×%d, %d ones (occupancy %.1f%%)\n",
		m.Rows(), m.Cols(), m.Ones(), 100*m.Occupancy())
	fmt.Printf("depth:  %d rectangles", res.Depth)
	if res.Optimal {
		fmt.Printf("  (optimal, certificate: %s)", res.Certificate)
	} else {
		fmt.Printf("  (upper bound; lower bound %d%s)", lowerBound(res), timedOut(res))
	}
	fmt.Println()
	fmt.Printf("bounds: rank=%d fooling=%d heuristic=%d\n",
		res.RankLB, res.FoolingLB, res.HeuristicDepth)
	fmt.Printf("effort: pack=%v sat=%v (%d calls, %d conflicts)\n",
		res.PackTime.Round(time.Microsecond), res.SATTime.Round(time.Microsecond),
		res.SATCalls, res.Conflicts)
	fmt.Print(res.Partition)

	if *factors {
		h, w := res.Partition.Factors()
		fmt.Printf("H (%d×%d):\n%s\nW (%d×%d):\n%s\n",
			h.Rows(), h.Cols(), h, w.Rows(), w.Cols(), w)
	}
	if *schedule || *jsonOut != "" {
		sched := ebmf.CompileSchedule(res.Partition)
		arr := ebmf.NewArray(m.Rows(), m.Cols())
		if err := sched.Verify(arr); err != nil {
			fatal(fmt.Errorf("schedule verification failed: %w", err))
		}
		if *schedule {
			st := sched.ComputeStats()
			fmt.Printf("schedule: depth=%d tones=%d maxTones=%d reconfig=%d (verified)\n",
				st.Depth, st.TotalTones, st.MaxTones, st.ReconfigCost)
			fmt.Print(sched.Render(arr))
		}
		if *jsonOut != "" {
			var out io.Writer = os.Stdout
			if *jsonOut != "-" {
				f, err := os.Create(*jsonOut)
				if err != nil {
					fatal(err)
				}
				defer f.Close()
				out = f
			}
			if err := sched.WriteJSON(out); err != nil {
				fatal(err)
			}
		}
	}
}

func lowerBound(res *ebmf.Result) int {
	lb := res.RankLB
	if res.FoolingLB > lb {
		lb = res.FoolingLB
	}
	return lb
}

func timedOut(res *ebmf.Result) string {
	if res.TimedOut {
		return ", budget exhausted"
	}
	return ""
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ebmf:", err)
	os.Exit(1)
}
