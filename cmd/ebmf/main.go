// Command ebmf solves the depth-optimal rectangular addressing problem for a
// binary pattern matrix: it reads a matrix (rows of 0/1 characters), runs
// the SAP solver, and prints the rectangle partition, optionally as EBMF
// factors, an AOD pulse schedule, or the service wire JSON.
//
// Usage:
//
//	ebmf [flags] [file]            # reads stdin when no file is given
//
// Flags:
//
//	-trials N          row-packing trials (default 100)
//	-encoding E        onehot | log (default onehot)
//	-amo M             at-most-one handling for onehot: native | pairwise |
//	                   sequential (default native — the solver's built-in
//	                   propagator; the others are encoded ablations)
//	-no-inprocess      disable between-restart clause simplification
//	-budget N          SAT conflict budget, 0 = unlimited (default 2000000)
//	-timeout D         SAT wall-clock budget, e.g. 30s (default unlimited)
//	-fooling N         fooling-set node budget, 0 = skip (default 200000)
//	-heuristic         skip the exact stage
//	-portfolio K       race K diverse solver strategies per block (0 = off)
//	-share-clauses     exchange short learnt clauses between racers
//	-strategies S      comma-separated strategy names (canonical, luby,
//	                   destructive, no-phase, seq-amo, native-amo,
//	                   pairwise-amo, glue4, no-symbreak, luby-destructive,
//	                   log); names are validated up front; implies -portfolio
//	-factors           print the H and W factors
//	-schedule          print the AOD schedule and per-shot frames
//	-schedule-json F   write the AOD schedule as JSON to F ('-' for stdout)
//	-json              print the result as wire JSON on stdout (the same
//	                   schema POST /v1/solve returns, fingerprint included)
//	-trace             print the solve's span timeline and progress samples
//	                   to stderr (per-block, per-depth-probe timings)
//	-trace-json F      write the trace as JSON to F ('-' for stdout)
//	-server URL        submit to a running ebmfd/ebmfgw as an async job:
//	                   progress streams to stderr, the result prints under
//	                   the same output flags and exit-code contract
//	-api-key K         API key for -server (Authorization: Bearer)
//	-degrade           with -server: under overload accept a heuristic-only
//	                   answer (exit code 2) instead of a 429
//	-callback URL      with -server: webhook URL POSTed the terminal job
//	                   snapshot (must be on the server's -webhook-allow list)
//	-q                 print only the depth
//
// Exit codes: 0 when the partition is proved depth-optimal, 2 when the
// solver returned a valid but unproven partition (budget exhausted or
// heuristic-only), 1 on error — so scripts can distinguish "optimal",
// "best-effort" and "failed" without parsing output.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	ebmf "repro"
	"repro/internal/bitmat"
	"repro/internal/core"
	"repro/internal/encode"
	"repro/internal/obs"
	"repro/internal/portfolio"
	"repro/internal/wire"
)

// Exit codes.
const (
	exitOptimal    = 0 // partition proved depth-optimal
	exitError      = 1 // input or solver error
	exitNonOptimal = 2 // valid partition, optimality not established
)

func main() {
	os.Exit(run())
}

func run() int {
	trials := flag.Int("trials", 100, "row-packing trials")
	encoding := flag.String("encoding", "onehot", "CNF encoding: onehot or log")
	amoMode := flag.String("amo", "native", "at-most-one handling: native, pairwise or sequential")
	noInprocess := flag.Bool("no-inprocess", false, "disable between-restart clause simplification (ablation)")
	budget := flag.Int64("budget", 2_000_000, "SAT conflict budget (0 = unlimited)")
	timeout := flag.Duration("timeout", 0, "SAT wall-clock budget (0 = unlimited)")
	fooling := flag.Int64("fooling", 200_000, "fooling-set node budget (0 = skip the fooling bound)")
	heuristic := flag.Bool("heuristic", false, "skip the exact stage")
	portfolioK := flag.Int("portfolio", 0, "race K diverse solver strategies per block (0 = off)")
	shareClauses := flag.Bool("share-clauses", false, "exchange short learnt clauses between racers")
	strategies := flag.String("strategies", "", "comma-separated racing strategy names (implies -portfolio)")
	factors := flag.Bool("factors", false, "print EBMF factors H and W")
	schedule := flag.Bool("schedule", false, "print the AOD schedule")
	schedJSON := flag.String("schedule-json", "", "write the AOD schedule as JSON to this file ('-' for stdout)")
	jsonOut := flag.Bool("json", false, "print the result as wire JSON on stdout")
	trace := flag.Bool("trace", false, "print the solve's span timeline to stderr")
	traceJSON := flag.String("trace-json", "", "write the trace as JSON to this file ('-' for stdout)")
	serverURL := flag.String("server", "", "submit to a running ebmfd/ebmfgw as an async job instead of solving locally")
	apiKey := flag.String("api-key", "", "API key for -server (sent as Authorization: Bearer)")
	degrade := flag.Bool("degrade", false, "with -server: accept a heuristic-only answer under overload instead of a 429")
	callback := flag.String("callback", "", "with -server: webhook URL POSTed the terminal job (must be on the server's allowlist)")
	quiet := flag.Bool("q", false, "print only the depth")
	flag.Parse()

	var src io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		src = f
	}
	data, err := io.ReadAll(src)
	if err != nil {
		return fail(err)
	}
	m, err := ebmf.Parse(string(data))
	if err != nil {
		return fail(err)
	}

	// Remote mode: the solve runs server-side as an async job; the flag
	// surface maps onto wire options and the exit-code contract is shared
	// with the local path.
	if *serverURL != "" {
		wopts := &wire.SolveOptions{
			Trials:         *trials,
			Encoding:       *encoding,
			AMO:            *amoMode,
			ConflictBudget: *budget,
			TimeoutMS:      timeout.Milliseconds(),
			Heuristic:      *heuristic,
			Portfolio:      *portfolioK,
			ShareClauses:   *shareClauses,
		}
		if *strategies != "" {
			wopts.PortfolioStrategies = strings.Split(*strategies, ",")
		}
		return runRemote(*serverURL, *apiKey, *degrade, *callback, m, wopts, *jsonOut, *quiet)
	}

	opts := ebmf.DefaultOptions()
	opts.Packing.Trials = *trials
	opts.ConflictBudget = *budget
	opts.TimeBudget = *timeout
	opts.FoolingBudget = *fooling
	opts.SkipSAT = *heuristic
	switch *encoding {
	case "onehot":
		opts.Encoding = core.EncodingOneHot
	case "log":
		opts.Encoding = core.EncodingLog
	default:
		return fail(fmt.Errorf("unknown encoding %q", *encoding))
	}
	amo, err := encode.ParseAMO(*amoMode)
	if err != nil {
		return fail(err)
	}
	opts.AMO = amo
	opts.DisableInprocessing = *noInprocess
	opts.Portfolio.Size = *portfolioK
	opts.Portfolio.ShareClauses = *shareClauses
	if *strategies != "" {
		names := strings.Split(*strategies, ",")
		// Validate up front: a typo should be a flag error naming the valid
		// set, not a failure halfway through the solve.
		if _, err := portfolio.Resolve(portfolio.Canonical(), names); err != nil {
			return fail(err)
		}
		opts.Portfolio.Strategies = names
	}

	// Tracing uses the context-carrying solve entry point; without the flags
	// the plain path runs untouched (no tracer, no context plumbing).
	var res *ebmf.Result
	if *trace || *traceJSON != "" {
		tracer := obs.New(obs.Config{SampleEvery: 1})
		ctx, root := tracer.StartTrace(context.Background(), "solve", nil)
		res, err = ebmf.SolveContext(ctx, m, opts)
		td := root.Finish()
		if err != nil {
			return fail(err)
		}
		if err := emitTrace(td, *trace, *traceJSON); err != nil {
			return fail(err)
		}
	} else {
		res, err = ebmf.Solve(m, opts)
		if err != nil {
			return fail(err)
		}
	}

	switch {
	case *jsonOut:
		fp := bitmat.ComputeFingerprint(m)
		hash := ""
		if fp.Exact {
			hash = fp.Hash
		}
		enc := json.NewEncoder(os.Stdout)
		if err := enc.Encode(wire.FromResult(res, hash)); err != nil {
			return fail(err)
		}
	case *quiet:
		fmt.Println(res.Depth)
	default:
		printHuman(m, res, *factors)
	}

	if *schedule || *schedJSON != "" {
		if err := emitSchedule(m, res, *schedule && !*jsonOut && !*quiet, *schedJSON); err != nil {
			return fail(err)
		}
	}
	if !res.Optimal {
		return exitNonOptimal
	}
	return exitOptimal
}

func printHuman(m *ebmf.Matrix, res *ebmf.Result, factors bool) {
	fmt.Printf("matrix: %d×%d, %d ones (occupancy %.1f%%)\n",
		m.Rows(), m.Cols(), m.Ones(), 100*m.Occupancy())
	fmt.Printf("depth:  %d rectangles", res.Depth)
	if res.Optimal {
		fmt.Printf("  (optimal, certificate: %s)", res.Certificate)
	} else {
		fmt.Printf("  (upper bound; lower bound %d%s)", lowerBound(res), timedOut(res))
	}
	fmt.Println()
	fmt.Printf("bounds: rank=%d fooling=%d heuristic=%d\n",
		res.RankLB, res.FoolingLB, res.HeuristicDepth)
	fmt.Printf("effort: pack=%v sat=%v (%d calls, %d conflicts)\n",
		res.PackTime.Round(time.Microsecond), res.SATTime.Round(time.Microsecond),
		res.SATCalls, res.Conflicts)
	if p := res.Portfolio; p != nil {
		names := make([]string, 0, len(p.Wins))
		for name := range p.Wins {
			names = append(names, name)
		}
		sort.Strings(names)
		var wins []string
		for _, name := range names {
			wins = append(wins, fmt.Sprintf("%s:%d", name, p.Wins[name]))
		}
		fmt.Printf("race:   wins={%s} cancelled=%d conflicts, shared %d→%d clauses\n",
			strings.Join(wins, " "), p.LoserConflicts, p.SharedExported, p.SharedImported)
	}
	fmt.Print(res.Partition)

	if factors {
		h, w := res.Partition.Factors()
		fmt.Printf("H (%d×%d):\n%s\nW (%d×%d):\n%s\n",
			h.Rows(), h.Cols(), h, w.Rows(), w.Cols(), w)
	}
}

// emitSchedule verifies and optionally prints/writes the AOD schedule.
func emitSchedule(m *ebmf.Matrix, res *ebmf.Result, print bool, jsonPath string) error {
	sched := ebmf.CompileSchedule(res.Partition)
	arr := ebmf.NewArray(m.Rows(), m.Cols())
	if err := sched.Verify(arr); err != nil {
		return fmt.Errorf("schedule verification failed: %w", err)
	}
	if print {
		st := sched.ComputeStats()
		fmt.Printf("schedule: depth=%d tones=%d maxTones=%d reconfig=%d (verified)\n",
			st.Depth, st.TotalTones, st.MaxTones, st.ReconfigCost)
		fmt.Print(sched.Render(arr))
	}
	if jsonPath != "" {
		var out io.Writer = os.Stdout
		if jsonPath != "-" {
			f, err := os.Create(jsonPath)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
		}
		if err := sched.WriteJSON(out); err != nil {
			return err
		}
	}
	return nil
}

// emitTrace prints the finished span tree (human form to stderr so it never
// mixes with -json/-q stdout) and/or writes the wire JSON form.
func emitTrace(td *obs.TraceData, human bool, jsonPath string) error {
	if td == nil {
		return fmt.Errorf("trace: no trace recorded")
	}
	if human {
		fmt.Fprint(os.Stderr, td.Render())
	}
	if jsonPath != "" {
		var out io.Writer = os.Stdout
		if jsonPath != "-" {
			f, err := os.Create(jsonPath)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(td.JSON())
	}
	return nil
}

func lowerBound(res *ebmf.Result) int {
	lb := res.RankLB
	if res.FoolingLB > lb {
		lb = res.FoolingLB
	}
	return lb
}

func timedOut(res *ebmf.Result) string {
	if res.TimedOut {
		return ", budget exhausted"
	}
	return ""
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "ebmf:", err)
	return exitError
}
