// Command benchgen generates the paper's three benchmark families
// (Section IV-A) as .ebmf files.
//
// Usage:
//
//	benchgen -out DIR [-seed N] [-family rand|opt|gap|all] [-scale paper|small]
//
// At -scale paper the counts match the paper (10 per random cell and per
// optimal rank, 100 per gap pair count); -scale small divides by 10 for
// quick experiments.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/benchgen"
	"repro/internal/eval"
)

func main() {
	out := flag.String("out", "", "output directory (required)")
	seed := flag.Int64("seed", 2024, "generator seed")
	family := flag.String("family", "all", "rand | opt | gap | all")
	scale := flag.String("scale", "small", "paper | small")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "benchgen: -out is required")
		os.Exit(2)
	}
	countSmall, countGap := 1, 10
	if *scale == "paper" {
		countSmall, countGap = 10, 100
	}
	suites := eval.PaperSuites(*seed, countSmall, countGap)
	total := 0
	for _, name := range eval.SuiteOrder() {
		suite := suites[name]
		if !familyMatches(*family, suite) {
			continue
		}
		if err := benchgen.SaveSuite(*out, suite); err != nil {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %-16s %4d instances\n", name, len(suite))
		total += len(suite)
	}
	fmt.Printf("total: %d instances in %s\n", total, *out)
}

func familyMatches(want string, suite []benchgen.Instance) bool {
	if want == "all" || len(suite) == 0 {
		return want == "all"
	}
	return string(suite[0].Family) == want
}
