// Command ebmfd serves the depth-optimal addressing solver over HTTP: a
// production-shaped daemon with a canonical-fingerprint result cache,
// request batching and admission control in front of the SAP pipeline.
//
// Usage:
//
//	ebmfd [flags]
//
// Flags:
//
//	-addr A             listen address (default :8421)
//	-cache N            result-cache capacity in entries (default 1024)
//	-concurrency N      max solves running at once (default GOMAXPROCS)
//	-queue N            max solves waiting for a slot (default 64)
//	-default-timeout D  per-solve deadline when the request asks for none (default 30s)
//	-max-timeout D      clamp for per-request timeouts (default 2m)
//	-budget N           default/maximum SAT conflict budget (default 2000000)
//	-max-entries N      reject matrices with more than N cells (default 1048576)
//	-max-portfolio K    clamp per-request portfolio sizes (default 8, 0/-1 = off)
//	-tenants SPEC       tenant map: name:key:weight[:quota[:priority]],... (default: none)
//	-max-jobs N         async jobs retained in the registry (default 1024)
//	-job-ttl D          how long a finished job stays pollable (default 10m)
//	-store DIR          durable result store directory (default: no store)
//	-store-sync MODE    store fsync policy: interval, always, never (default interval)
//	-job-journal DIR    job journal directory: journaled submits survive restarts (default: off)
//	-webhook-allow LIST callback_url allowlist: URL prefixes or hosts, comma-separated (default: webhooks off)
//	-trace-sample N     trace one solve in N (1 = every solve; -1 = tracing off)
//	-slow-solve-ms N    log solves slower than N ms with their span tree (0 = off)
//	-debug-addr A       serve net/http/pprof and expvar on a separate listener (default: off)
//	-quiet              no per-request log lines
//
// With -addr ending in :0 the kernel picks a free port; the actual address
// is printed in the "listening on" log line (scripts parse it from there).
//
// Endpoints:
//
//	POST /v1/solve    {"matrix":"101\n011", "options":{"timeout_ms":500}}
//	POST /v1/batch    {"requests":[{...},{...}]}
//	POST /v1/jobs     async submit: 202 + job ID immediately
//	GET  /v1/jobs/{id}          poll a job snapshot
//	DELETE /v1/jobs/{id}        cancel (propagates into the SAT search)
//	GET  /v1/jobs/{id}/events   SSE anytime progress + terminal result
//	POST /v1/fill     cache-fill replication (gateway-internal)
//	GET  /v1/healthz
//	GET  /v1/metrics
//	GET  /v1/debug/traces   recent and slowest solve traces (span trees + progress)
//
// -tenants maps API keys to tenants with a fair-share weight, an optional
// outstanding-work quota and a strict-priority lane; under contention slots
// are granted by deficit round robin in weight proportion. Example:
//
//	-tenants 'prod:key1:3:0:-1,batch:key2:1:16:1'
//
// With -store, every proved-optimal result is written through to a
// checksummed WAL + snapshot in DIR and reloaded on boot: a restarted
// daemon (even after kill -9) answers its whole history from cache without
// re-solving. The "listening on" line reports how many records loaded.
//
// With -job-journal, every accepted async job is journaled at admission and
// again at its terminal state (same -store-sync fsync policy). A restarted
// daemon replays the journal: unfinished jobs are re-admitted under their
// original IDs (clients polling see "queued" again, never a 404), and with
// -store alongside, already-proved results are served from the store
// instead of re-solved. Terminal webhooks (callback_url on submit, gated by
// -webhook-allow) are journaled too, so a notification that hadn't been
// acknowledged before a crash is retried after the restart.
//
// SIGINT/SIGTERM drains gracefully: healthz flips to 503, new solves are
// rejected, in-flight solves get up to the max timeout to finish, and the
// store is flushed and closed only after the listener has fully drained —
// a result computed during the drain window still reaches the WAL.
package main

import (
	"context"
	"errors"
	"flag"
	"io"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/store"
)

// splitList parses a comma-separated flag value, dropping empty elements.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func main() {
	addr := flag.String("addr", ":8421", "listen address")
	cache := flag.Int("cache", 1024, "result-cache capacity (entries)")
	concurrency := flag.Int("concurrency", runtime.GOMAXPROCS(0), "max concurrent solves")
	queue := flag.Int("queue", 64, "max queued solves (0 = reject unless a slot is free)")
	defaultTimeout := flag.Duration("default-timeout", 30*time.Second, "per-solve deadline when the request asks for none")
	maxTimeout := flag.Duration("max-timeout", 2*time.Minute, "clamp for per-request timeouts")
	budget := flag.Int64("budget", server.DefaultConflictBudget, "default and maximum SAT conflict budget (0 = unlimited, trusted clients only)")
	maxEntries := flag.Int("max-entries", 1<<20, "reject matrices with more cells than this")
	maxPortfolio := flag.Int("max-portfolio", 8, "clamp per-request portfolio sizes (0 or -1 disables racing)")
	tenantSpec := flag.String("tenants", "", "tenant map: name:key:weight[:quota[:priority]],... (empty = default tenant only)")
	maxJobs := flag.Int("max-jobs", 1024, "async jobs retained in the registry")
	jobTTL := flag.Duration("job-ttl", 10*time.Minute, "how long a finished job stays pollable")
	storeDir := flag.String("store", "", "durable result store directory (empty = no store)")
	storeSync := flag.String("store-sync", "interval", "store fsync policy: interval, always, never")
	journalDir := flag.String("job-journal", "", "job journal directory (empty = jobs do not survive restarts)")
	webhookAllow := flag.String("webhook-allow", "", "callback_url allowlist: URL prefixes or hosts, comma-separated (empty = webhooks off)")
	traceSample := flag.Int("trace-sample", 1, "trace one solve in N (1 = every solve, negative = off)")
	slowSolveMS := flag.Int64("slow-solve-ms", 0, "log solves slower than this with their span tree (0 = off)")
	debugAddr := flag.String("debug-addr", "", "serve pprof and expvar on this separate address (empty = off)")
	quiet := flag.Bool("quiet", false, "no per-request log lines")
	flag.Parse()

	logger := log.New(os.Stderr, "ebmfd: ", log.LstdFlags)
	reqLogger := logger
	if *quiet {
		reqLogger = log.New(io.Discard, "", 0)
	}
	if *queue == 0 {
		*queue = -1 // Config convention: negative = no waiting
	}
	if *maxPortfolio == 0 {
		*maxPortfolio = -1 // Config convention: 0 = default, negative = off
	}
	// -budget is both the default for requests that ask for nothing and the
	// clamp for requests that ask for more (0 = unlimited, trusted clients
	// only).
	baseOpts := core.DefaultOptions()
	baseOpts.ConflictBudget = *budget

	tenants, err := server.ParseTenantFlag(*tenantSpec)
	if err != nil {
		logger.Fatalf("-tenants: %v", err)
	}

	var syncPolicy store.SyncPolicy
	switch *storeSync {
	case "interval":
		syncPolicy = store.SyncInterval
	case "always":
		syncPolicy = store.SyncAlways
	case "never":
		syncPolicy = store.SyncNever
	default:
		logger.Fatalf("-store-sync %q: want interval, always, or never", *storeSync)
	}

	// The store outlives the server: opened before New so boot warms the
	// cache from disk, closed only after Shutdown returns so solves that
	// finish during the drain window still reach the WAL.
	var durable *store.Store
	if *storeDir != "" {
		var err error
		durable, err = store.Open(*storeDir, store.Options{Sync: syncPolicy, Logger: logger})
		if err != nil {
			logger.Fatalf("store: %v", err)
		}
	}

	// The job journal follows the same lifecycle as the store: opened before
	// New so the server can replay unfinished jobs during construction,
	// closed last so terminal records and webhook acks written during the
	// drain window reach disk.
	var journal *store.Journal
	if *journalDir != "" {
		var err error
		journal, err = store.OpenJournal(*journalDir, store.Options{Sync: syncPolicy, Logger: logger})
		if err != nil {
			logger.Fatalf("job journal: %v", err)
		}
	}

	tracer := obs.New(obs.Config{
		SampleEvery:   *traceSample,
		SlowThreshold: time.Duration(*slowSolveMS) * time.Millisecond,
		Logger:        slog.New(slog.NewTextHandler(os.Stderr, nil)),
	})

	srv := server.New(server.Config{
		CacheCapacity:     *cache,
		MaxConcurrent:     *concurrency,
		MaxQueue:          *queue,
		DefaultTimeout:    *defaultTimeout,
		MaxTimeout:        *maxTimeout,
		MaxConflictBudget: *budget,
		MaxMatrixEntries:  *maxEntries,
		MaxPortfolio:      *maxPortfolio,
		Tenants:           tenants,
		MaxJobs:           *maxJobs,
		JobTTL:            *jobTTL,
		Options:           &baseOpts,
		Logger:            reqLogger,
		Store:             durable,
		Journal:           journal,
		WebhookAllow:      splitList(*webhookAllow),
		Tracer:            tracer,
	})
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// The debug listener (pprof, expvar) is deliberately separate from the
	// serving address: profiles and goroutine dumps must not be reachable by
	// solve clients, so -debug-addr is bound to loopback in practice and off
	// by default.
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			logger.Fatalf("debug listen: %v", err)
		}
		go func() {
			if err := http.Serve(dln, obs.DebugMux()); err != nil {
				logger.Printf("debug serve: %v", err)
			}
		}()
		logger.Printf("debug listening on %s (pprof, expvar)", dln.Addr())
	}

	// Listen explicitly (instead of ListenAndServe) so -addr :0 works: the
	// log line reports the port the kernel actually assigned, which is what
	// scripts/server_smoke.sh parses to avoid port collisions in CI.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatalf("listen: %v", err)
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	records := 0
	if durable != nil {
		records = durable.Len()
	}
	var recovered int64
	if journal != nil {
		recovered = journal.Stats().Loaded
	}
	logger.Printf("listening on %s (concurrency=%d queue=%d cache=%d max-portfolio=%d store-records=%d journal-jobs=%d)",
		ln.Addr(), *concurrency, *queue, *cache, *maxPortfolio, records, recovered)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		logger.Fatalf("serve: %v", err)
	case s := <-sig:
		logger.Printf("%v: draining (in-flight solves get up to %v)", s, *maxTimeout)
		srv.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *maxTimeout+5*time.Second)
		defer cancel()
		exit := 0
		// The store closes after Shutdown returns — even a failed drain has
		// stopped accepting work by then, and solves that did finish during
		// the window must still be flushed to the WAL before exit.
		if err := httpSrv.Shutdown(ctx); err != nil {
			logger.Printf("drain: %v", err)
			exit = 1
		} else if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Printf("serve: %v", err)
			exit = 1
		}
		// Stop the webhook deliverer and job janitor after the listener has
		// drained: an undelivered webhook stays journaled and is retried on
		// the next boot.
		srv.Close()
		if durable != nil {
			if err := durable.Close(); err != nil {
				logger.Printf("store close: %v", err)
				exit = 1
			} else {
				ss := durable.Stats()
				logger.Printf("store flushed (%d records, %d appended this run)",
					ss.Records, ss.Appends)
			}
		}
		if journal != nil {
			js := journal.Stats()
			if err := journal.Close(); err != nil {
				logger.Printf("journal close: %v", err)
				exit = 1
			} else {
				logger.Printf("journal flushed (%d pending jobs, %d undelivered webhooks)",
					js.Pending, js.Undelivered)
			}
		}
		if exit != 0 {
			os.Exit(exit)
		}
		st := srv.Cache().Stats()
		logger.Printf("drained cleanly (cache: %d entries, %.0f%% hit rate)",
			st.Entries, 100*st.HitRate())
	}
}
