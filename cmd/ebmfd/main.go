// Command ebmfd serves the depth-optimal addressing solver over HTTP: a
// production-shaped daemon with a canonical-fingerprint result cache,
// request batching and admission control in front of the SAP pipeline.
//
// Usage:
//
//	ebmfd [flags]
//
// Flags:
//
//	-addr A             listen address (default :8421)
//	-cache N            result-cache capacity in entries (default 1024)
//	-concurrency N      max solves running at once (default GOMAXPROCS)
//	-queue N            max solves waiting for a slot (default 64)
//	-default-timeout D  per-solve deadline when the request asks for none (default 30s)
//	-max-timeout D      clamp for per-request timeouts (default 2m)
//	-budget N           default/maximum SAT conflict budget (default 2000000)
//	-max-entries N      reject matrices with more than N cells (default 1048576)
//	-max-portfolio K    clamp per-request portfolio sizes (default 8, 0/-1 = off)
//	-quiet              no per-request log lines
//
// With -addr ending in :0 the kernel picks a free port; the actual address
// is printed in the "listening on" log line (scripts parse it from there).
//
// Endpoints:
//
//	POST /v1/solve    {"matrix":"101\n011", "options":{"timeout_ms":500}}
//	POST /v1/batch    {"requests":[{...},{...}]}
//	GET  /v1/healthz
//	GET  /v1/metrics
//
// SIGINT/SIGTERM drains gracefully: healthz flips to 503, new solves are
// rejected, and in-flight solves get up to the max timeout to finish.
package main

import (
	"context"
	"errors"
	"flag"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8421", "listen address")
	cache := flag.Int("cache", 1024, "result-cache capacity (entries)")
	concurrency := flag.Int("concurrency", runtime.GOMAXPROCS(0), "max concurrent solves")
	queue := flag.Int("queue", 64, "max queued solves (0 = reject unless a slot is free)")
	defaultTimeout := flag.Duration("default-timeout", 30*time.Second, "per-solve deadline when the request asks for none")
	maxTimeout := flag.Duration("max-timeout", 2*time.Minute, "clamp for per-request timeouts")
	budget := flag.Int64("budget", server.DefaultConflictBudget, "default and maximum SAT conflict budget (0 = unlimited, trusted clients only)")
	maxEntries := flag.Int("max-entries", 1<<20, "reject matrices with more cells than this")
	maxPortfolio := flag.Int("max-portfolio", 8, "clamp per-request portfolio sizes (0 or -1 disables racing)")
	quiet := flag.Bool("quiet", false, "no per-request log lines")
	flag.Parse()

	logger := log.New(os.Stderr, "ebmfd: ", log.LstdFlags)
	reqLogger := logger
	if *quiet {
		reqLogger = log.New(io.Discard, "", 0)
	}
	if *queue == 0 {
		*queue = -1 // Config convention: negative = no waiting
	}
	if *maxPortfolio == 0 {
		*maxPortfolio = -1 // Config convention: 0 = default, negative = off
	}
	// -budget is both the default for requests that ask for nothing and the
	// clamp for requests that ask for more (0 = unlimited, trusted clients
	// only).
	baseOpts := core.DefaultOptions()
	baseOpts.ConflictBudget = *budget
	srv := server.New(server.Config{
		CacheCapacity:     *cache,
		MaxConcurrent:     *concurrency,
		MaxQueue:          *queue,
		DefaultTimeout:    *defaultTimeout,
		MaxTimeout:        *maxTimeout,
		MaxConflictBudget: *budget,
		MaxMatrixEntries:  *maxEntries,
		MaxPortfolio:      *maxPortfolio,
		Options:           &baseOpts,
		Logger:            reqLogger,
	})
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Listen explicitly (instead of ListenAndServe) so -addr :0 works: the
	// log line reports the port the kernel actually assigned, which is what
	// scripts/server_smoke.sh parses to avoid port collisions in CI.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatalf("listen: %v", err)
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	logger.Printf("listening on %s (concurrency=%d queue=%d cache=%d max-portfolio=%d)",
		ln.Addr(), *concurrency, *queue, *cache, *maxPortfolio)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		logger.Fatalf("serve: %v", err)
	case s := <-sig:
		logger.Printf("%v: draining (in-flight solves get up to %v)", s, *maxTimeout)
		srv.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *maxTimeout+5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			logger.Fatalf("drain: %v", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Fatalf("serve: %v", err)
		}
		st := srv.Cache().Stats()
		logger.Printf("drained cleanly (cache: %d entries, %.0f%% hit rate)",
			st.Entries, 100*st.HitRate())
	}
}
