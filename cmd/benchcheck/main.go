// Command benchcheck is the CI bench gate: it parses `go test -bench`
// output on stdin, matches the measured benchmarks against the committed
// BENCH_*.json baselines, and fails when the geomean ns/op ratio regresses
// beyond the threshold. It always prints the comparison table, pass or
// fail, so the CI log shows the perf trajectory either way.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime=3x ./... | \
//	    benchcheck -baselines BENCH_solver.json,BENCH_server.json
//
// Flags:
//
//	-baselines F1,F2   baseline snapshot files (default BENCH_solver.json,BENCH_server.json)
//	-max-regression P  fail when the geomean ratio exceeds 1+P/100 (default 25)
//	-min-matched N     fail when fewer than N benchmarks matched (default 5,
//	                   guards against silent name drift turning the gate off)
//
// Matching: a benchmark "BenchmarkFoo-8" matches a baseline entry named
// "Foo" exactly, or — when no exact match exists — a unique baseline entry
// that "Foo" is a prefix of (so BenchmarkServerColdSolve matches the
// baseline "ServerColdSolveFig1b"). Benchmarks without a baseline twin and
// baseline entries without a bench twin are reported and skipped.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

type benchEntry struct {
	Name    string `json:"name"`
	NsPerOp int64  `json:"ns_per_op"`
	Iters   int    `json:"iters"`
}

type benchSnapshot struct {
	GoVersion string       `json:"go_version"`
	GOARCH    string       `json:"goarch"`
	When      string       `json:"when"`
	Benches   []benchEntry `json:"benches"`
}

// benchLine matches `BenchmarkName-8   3   12345 ns/op [extra metrics]`.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op`)

func main() {
	baselines := flag.String("baselines", "BENCH_solver.json,BENCH_server.json", "comma-separated baseline snapshot files")
	maxRegression := flag.Float64("max-regression", 25, "failure threshold for the geomean regression, in percent")
	minMatched := flag.Int("min-matched", 5, "minimum matched benchmarks for the gate to be meaningful")
	flag.Parse()

	base := map[string]int64{}
	for _, path := range strings.Split(*baselines, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			os.Exit(2)
		}
		var snap benchSnapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %s: %v\n", path, err)
			os.Exit(2)
		}
		for _, b := range snap.Benches {
			base[b.Name] = b.NsPerOp
		}
	}
	if len(base) == 0 {
		fmt.Fprintln(os.Stderr, "benchcheck: no baseline entries loaded")
		os.Exit(2)
	}

	current := map[string]float64{}
	var order []string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		if _, dup := current[name]; !dup {
			order = append(order, name)
		}
		current[name] = ns // last measurement wins on -count>1
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: reading stdin: %v\n", err)
		os.Exit(2)
	}

	// resolve maps a measured bench name to its baseline entry: exact
	// match first, unique-prefix fallback second.
	resolve := func(name string) (string, bool) {
		if _, ok := base[name]; ok {
			return name, true
		}
		match := ""
		for bn := range base {
			if strings.HasPrefix(bn, name) {
				if match != "" {
					return "", false // ambiguous
				}
				match = bn
			}
		}
		return match, match != ""
	}

	fmt.Printf("%-36s %14s %14s %7s %8s\n", "benchmark", "baseline ns", "current ns", "ratio", "delta")
	matchedBase := map[string]bool{}
	logSum, matched := 0.0, 0
	var unmatched []string
	for _, name := range order {
		bn, ok := resolve(name)
		if !ok {
			unmatched = append(unmatched, name)
			continue
		}
		ratio := current[name] / float64(base[bn])
		logSum += math.Log(ratio)
		matched++
		matchedBase[bn] = true
		fmt.Printf("%-36s %14d %14.0f %7.2f %+7.1f%%\n", bn, base[bn], current[name], ratio, 100*(ratio-1))
	}
	if len(unmatched) > 0 {
		sort.Strings(unmatched)
		fmt.Printf("\nno baseline (skipped): %s\n", strings.Join(unmatched, ", "))
	}
	var stale []string
	for bn := range base {
		if !matchedBase[bn] {
			stale = append(stale, bn)
		}
	}
	if len(stale) > 0 {
		sort.Strings(stale)
		fmt.Printf("baseline entries not measured: %s\n", strings.Join(stale, ", "))
	}
	if matched < *minMatched {
		fmt.Fprintf(os.Stderr, "benchcheck: only %d benchmarks matched a baseline (need %d) — name drift?\n", matched, *minMatched)
		os.Exit(1)
	}
	geomean := math.Exp(logSum / float64(matched))
	limit := 1 + *maxRegression/100
	fmt.Printf("\ngeomean ratio over %d matched benchmarks: %.3f (limit %.2f)\n", matched, geomean, limit)
	if geomean > limit {
		fmt.Fprintf(os.Stderr, "benchcheck: FAIL — geomean regression %.1f%% exceeds %.0f%%\n", 100*(geomean-1), *maxRegression)
		os.Exit(1)
	}
	fmt.Println("benchcheck: PASS")
}
