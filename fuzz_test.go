// Fuzz targets: robustness of the parser and end-to-end solver invariants
// under arbitrary inputs. Under plain `go test` these run on their seed
// corpus; `go test -fuzz=FuzzX` explores further.
package ebmf_test

import (
	"context"
	"strings"
	"testing"

	ebmf "repro"
	"repro/internal/rowpack"
	"repro/internal/sat"
)

// FuzzParse: the matrix parser must never panic and must round-trip
// whatever it accepts.
func FuzzParse(f *testing.F) {
	f.Add("101\n010")
	f.Add("# comment\n1 0 1\n0,1,1")
	f.Add("")
	f.Add("abc")
	f.Add("1\n10")
	f.Fuzz(func(t *testing.T, input string) {
		m, err := ebmf.Parse(input)
		if err != nil {
			return
		}
		back, err := ebmf.Parse(m.String())
		if err != nil || !back.Equal(m) {
			t.Fatalf("accepted input does not round-trip: %q", input)
		}
	})
}

// FuzzSolveSmall: for any small binary matrix described by a byte string,
// SAP returns a valid partition obeying all bounds.
func FuzzSolveSmall(f *testing.F) {
	f.Add(uint8(3), uint8(3), "101010011")
	f.Add(uint8(2), uint8(5), "1111100000")
	f.Add(uint8(1), uint8(1), "1")
	f.Fuzz(func(t *testing.T, rows, cols uint8, bits string) {
		r := int(rows%6) + 1
		c := int(cols%6) + 1
		m := ebmf.New(r, c)
		for idx := 0; idx < r*c && idx < len(bits); idx++ {
			if bits[idx]&1 == 1 {
				m.Set(idx/c, idx%c, true)
			}
		}
		opts := ebmf.DefaultOptions()
		opts.Packing.Trials = 2
		opts.ConflictBudget = 50_000
		res, err := ebmf.Solve(m, opts)
		if err != nil {
			t.Fatalf("solve error: %v", err)
		}
		if err := res.Partition.Validate(); err != nil {
			t.Fatalf("invalid partition: %v\n%s", err, m)
		}
		if res.Depth < res.RankLB || res.Depth > m.TrivialUpperBound() {
			t.Fatalf("depth %d outside [rank %d, trivial %d]", res.Depth, res.RankLB, m.TrivialUpperBound())
		}
	})
}

// FuzzSolveDecomposed: the decomposed parallel pipeline — including context
// cancellation mid-solve — must never panic, must always return a valid
// partition within bounds, and must agree with the monolithic whole-matrix
// solve on depth whenever both complete unbudgeted. The matrix is assembled
// as two independent sub-blocks placed on a diagonal, so most inputs
// genuinely exercise the multi-block path.
func FuzzSolveDecomposed(f *testing.F) {
	f.Add(uint8(3), uint8(3), "101010011110", false)
	f.Add(uint8(5), uint8(2), "11111", true)
	f.Add(uint8(1), uint8(1), "1", false)
	f.Fuzz(func(t *testing.T, rows, cols uint8, bits string, cancel bool) {
		r := int(rows%4) + 1
		c := int(cols%4) + 1
		// diag(a, b) from one bit string: a is r×c, b is c×r.
		m := ebmf.New(r+c, c+r)
		for idx := 0; idx < r*c && idx < len(bits); idx++ {
			if bits[idx]&1 == 1 {
				m.Set(idx/c, idx%c, true)
			}
		}
		for idx := 0; idx < c*r && r*c+idx < len(bits); idx++ {
			if bits[r*c+idx]&1 == 1 {
				m.Set(r+idx/r, c+idx%r, true)
			}
		}
		opts := ebmf.DefaultOptions()
		opts.Packing.Trials = 2
		opts.ConflictBudget = 50_000
		opts.Parallelism = 3
		ctx := context.Background()
		if cancel {
			var done context.CancelFunc
			ctx, done = context.WithCancel(ctx)
			done() // canceled before the SAT stage: heuristic result only
		}
		res, err := ebmf.SolveContext(ctx, m, opts)
		if err != nil {
			t.Fatalf("solve error: %v", err)
		}
		if err := res.Partition.Validate(); err != nil {
			t.Fatalf("invalid partition: %v\n%s", err, m)
		}
		if res.Depth < res.RankLB || res.Depth > m.TrivialUpperBound() {
			t.Fatalf("depth %d outside [rank %d, trivial %d]", res.Depth, res.RankLB, m.TrivialUpperBound())
		}
		if cancel {
			return
		}
		whole := opts
		whole.DisableDecomposition = true
		wres, err := ebmf.Solve(m, whole)
		if err != nil {
			t.Fatalf("whole-matrix solve error: %v", err)
		}
		if res.Optimal && wres.Optimal && res.Depth != wres.Depth {
			t.Fatalf("decomposed depth %d != whole depth %d on\n%s", res.Depth, wres.Depth, m)
		}
	})
}

// FuzzDIMACS: the DIMACS parser must never panic; accepted formulas must
// solve without crashing.
func FuzzDIMACS(f *testing.F) {
	f.Add("p cnf 2 1\n1 -2 0\n")
	f.Add("c comment\np cnf 1 2\n1 0\n-1 0\n")
	f.Add("p cnf 0 0\n")
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1<<12 {
			return
		}
		s, err := sat.ParseDIMACS(strings.NewReader(input))
		if err != nil {
			return
		}
		if s.NumVars() > 64 || s.NumClauses() > 256 {
			return // keep the fuzz iteration cheap
		}
		s.SetConflictBudget(10_000)
		s.Solve()
	})
}

// FuzzRowPack: row packing on arbitrary matrices must always produce a
// valid partition no worse than trivial.
func FuzzRowPack(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(4), "1011")
	f.Fuzz(func(t *testing.T, seed int64, rows, cols uint8, bits string) {
		r := int(rows%8) + 1
		c := int(cols%8) + 1
		m := ebmf.New(r, c)
		for idx := 0; idx < r*c && idx < len(bits); idx++ {
			if bits[idx]&1 == 1 {
				m.Set(idx/c, idx%c, true)
			}
		}
		p := rowpack.Pack(m, rowpack.Options{Trials: 2, Seed: seed})
		if err := p.Validate(); err != nil {
			t.Fatalf("invalid: %v\n%s", err, m)
		}
		if p.Depth() > m.TrivialUpperBound() {
			t.Fatalf("worse than trivial")
		}
	})
}
