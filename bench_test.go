// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus ablation benches for the design choices called out in
// DESIGN.md. Percentages that the paper reports are attached to the bench
// output via b.ReportMetric (look for pct_* metrics); runtimes come from the
// usual ns/op.
//
// The suites are scaled down from the paper's counts so `go test -bench=.`
// finishes on a laptop; scale up with cmd/evaltable -scale paper.
package ebmf_test

import (
	"fmt"
	"math/rand"
	"testing"

	ebmf "repro"
	"repro/internal/benchgen"
	"repro/internal/bitmat"
	"repro/internal/bmf"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/encode"
	"repro/internal/eval"
	"repro/internal/ftqc"
	"repro/internal/rowpack"
	"repro/internal/sat"
)

// benchEvalOptions are the per-instance budgets used by the Table I benches.
func benchEvalOptions() eval.Options {
	return eval.Options{
		TrialCounts:    []int{1, 10, 100},
		ConflictBudget: 1_000_000,
		MaxSATEntries:  400,
		Seed:           1,
	}
}

// reportRow attaches Table I percentages as bench metrics.
func reportRow(b *testing.B, row eval.Row) {
	b.Helper()
	den := float64(row.Decided)
	if den == 0 {
		return
	}
	b.ReportMetric(100*float64(row.RankEq)/den, "pct_rank")
	b.ReportMetric(100*float64(row.TrivialOpt)/den, "pct_trivial")
	for _, t := range []int{1, 10, 100} {
		b.ReportMetric(100*float64(row.PackOpt[t])/den, fmt.Sprintf("pct_rp%d", t))
	}
	b.ReportMetric(float64(row.Decided), "decided")
}

// --- Table I, rows 1–3: small random benchmarks ---

func benchTableIRandom(b *testing.B, rows, cols int) {
	suite := benchgen.RandomSuite(11, rows, cols, benchgen.PaperOccupanciesSmall(), 1)
	var row eval.Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row, _ = eval.EvalSuite("bench", suite, benchEvalOptions())
	}
	reportRow(b, row)
}

func BenchmarkTableIRand10x10(b *testing.B) { benchTableIRandom(b, 10, 10) }
func BenchmarkTableIRand10x20(b *testing.B) { benchTableIRandom(b, 10, 20) }
func BenchmarkTableIRand10x30(b *testing.B) { benchTableIRandom(b, 10, 30) }

// --- Table I, row 4: 100×100 random benchmarks (heuristics + rank
// certificate only; the exact stage is skipped exactly as in the paper) ---

func BenchmarkTableIRand100x100(b *testing.B) {
	suite := benchgen.RandomSuite(12, 100, 100, benchgen.PaperOccupanciesLarge(), 1)
	opts := benchEvalOptions()
	opts.TrialCounts = []int{1, 10, 100}
	var row eval.Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row, _ = eval.EvalSuite("bench", suite, opts)
	}
	reportRow(b, row)
}

// --- Table I, row 5: known-optimal benchmarks ---

func BenchmarkTableIOpt10x10(b *testing.B) {
	suite := benchgen.OptSuite(13, 10, 10, 10, 1)
	var row eval.Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row, _ = eval.EvalSuite("bench", suite, benchEvalOptions())
	}
	reportRow(b, row)
}

// --- Table I, rows 6–9: gap benchmarks ---

func benchTableIGap(b *testing.B, pairs int) {
	suite := benchgen.GapSuite(14+int64(pairs), 10, 10, []int{pairs}, 5)
	var row eval.Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row, _ = eval.EvalSuite("bench", suite, benchEvalOptions())
	}
	reportRow(b, row)
}

func BenchmarkTableIGap2(b *testing.B) { benchTableIGap(b, 2) }
func BenchmarkTableIGap3(b *testing.B) { benchTableIGap(b, 3) }
func BenchmarkTableIGap4(b *testing.B) { benchTableIGap(b, 4) }
func BenchmarkTableIGap5(b *testing.B) { benchTableIGap(b, 5) }

// --- Figure 4: hardest cases are UNSAT proofs; SAT time dominates pack
// time. The bench solves one hard gap instance exactly and reports the
// pack/SAT time split. ---

func BenchmarkFigure4HardestCase(b *testing.B) {
	// A gap-5 instance forces the solver to prove UNSAT below the packing
	// depth.
	suite := benchgen.GapSuite(99, 10, 10, []int{5}, 3)
	var packNS, satNS float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ins := range suite {
			opts := core.DefaultOptions()
			opts.Packing.Trials = 100
			opts.FoolingBudget = 0
			opts.ConflictBudget = 2_000_000
			res, err := core.Solve(ins.M, opts)
			if err != nil {
				b.Fatal(err)
			}
			packNS += float64(res.PackTime.Nanoseconds())
			satNS += float64(res.SATTime.Nanoseconds())
		}
	}
	b.ReportMetric(packNS/float64(b.N), "pack_ns")
	b.ReportMetric(satNS/float64(b.N), "sat_ns")
	if satNS > 0 {
		b.ReportMetric(satNS/(packNS+1), "sat_over_pack")
	}
}

// --- Figure 1b: the running example (optimal depth 5 via fooling set) ---

func BenchmarkFigure1b(b *testing.B) {
	m := bitmat.MustParse("101100\n010011\n101010\n010101\n111000\n000111")
	var depth int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Solve(m, core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		depth = res.Depth
	}
	b.ReportMetric(float64(depth), "depth")
}

// --- Figure 3: row packing order dependence (identity 5 vs shuffled 4) ---

func BenchmarkFigure3RowPacking(b *testing.B) {
	m := bitmat.MustParse("11000\n00110\n01100\n10011\n11111")
	var identityDepth, shuffledDepth int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		identityDepth = rowpack.Pack(m, rowpack.Options{Trials: 1, Order: rowpack.OrderIdentity, SkipTranspose: true}).Depth()
		shuffledDepth = rowpack.Pack(m, rowpack.Options{Trials: 200, Seed: 7}).Depth()
	}
	b.ReportMetric(float64(identityDepth), "depth_identity")
	b.ReportMetric(float64(shuffledDepth), "depth_shuffled")
}

// --- Figure 5 / Section V: two-level FTQC solve ---

func BenchmarkFigure5TwoLevel(b *testing.B) {
	logical := bitmat.MustParse("101100\n010011\n101010\n010101\n111000\n000111")
	patch := ftqc.TransversalPatch(5)
	var depth int
	var optimal bool
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ftqc.SolveTwoLevel(logical, patch, core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		depth = res.UpperBound
		optimal = res.Optimal
	}
	b.ReportMetric(float64(depth), "depth")
	b.ReportMetric(boolMetric(optimal), "optimal")
}

// --- Section V conjecture: row sufficiency for wide matrices ---

func BenchmarkQLDPCRowSufficiency(b *testing.B) {
	var square, wide ftqc.RowSufficiencyStat
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		square = ftqc.RowSufficiency(42, 10, 10, 0.5, 50)
		wide = ftqc.RowSufficiency(42, 10, 30, 0.5, 50)
	}
	b.ReportMetric(100*square.RowOptimalFraction(), "pct_rowopt_10x10")
	b.ReportMetric(100*wide.RowOptimalFraction(), "pct_rowopt_10x30")
}

// --- Ablations (design choices from DESIGN.md §6) ---

// Ablation 1: one-hot vs log encoding on the same decision problem.
func benchEncoding(b *testing.B, mk func(*bitmat.Matrix, int) encode.Encoder) {
	suite := benchgen.GapSuite(55, 8, 8, []int{3}, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ins := range suite {
			ub := rowpack.Pack(ins.M, rowpack.Options{Trials: 20, Seed: 1}).Depth()
			enc := mk(ins.M, ub-1)
			lb := ins.M.Rank()
			for enc.Bound() >= lb {
				st := enc.Solve()
				if st != sat.Sat {
					break
				}
				enc.Narrow()
			}
		}
	}
}

func BenchmarkAblationEncodingOneHot(b *testing.B) {
	benchEncoding(b, func(m *bitmat.Matrix, bound int) encode.Encoder {
		return encode.NewOneHot(m, bound, encode.AMOPairwise)
	})
}

func BenchmarkAblationEncodingLog(b *testing.B) {
	benchEncoding(b, func(m *bitmat.Matrix, bound int) encode.Encoder {
		return encode.NewLog(m, bound)
	})
}

// Ablation 2: at-most-one encodings. Native is the default (the solver's
// built-in propagator); pairwise and sequential are the encoded ablations.
func BenchmarkAblationAMONative(b *testing.B) {
	benchEncoding(b, func(m *bitmat.Matrix, bound int) encode.Encoder {
		return encode.NewOneHot(m, bound, encode.AMONative)
	})
}

func BenchmarkAblationAMOPairwise(b *testing.B) {
	benchEncoding(b, func(m *bitmat.Matrix, bound int) encode.Encoder {
		return encode.NewOneHot(m, bound, encode.AMOPairwise)
	})
}

func BenchmarkAblationAMOSequential(b *testing.B) {
	benchEncoding(b, func(m *bitmat.Matrix, bound int) encode.Encoder {
		return encode.NewOneHot(m, bound, encode.AMOSequential)
	})
}

// Ablation 3: row-packing basis update on/off (paper keeps it on).
func benchPackVariant(b *testing.B, opts rowpack.Options) {
	suite := benchgen.GapSuite(66, 10, 10, []int{4}, 10)
	var totalDepth int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		totalDepth = 0
		for _, ins := range suite {
			totalDepth += rowpack.Pack(ins.M, opts).Depth()
		}
	}
	b.ReportMetric(float64(totalDepth), "total_depth")
}

func BenchmarkAblationBasisUpdateOn(b *testing.B) {
	benchPackVariant(b, rowpack.Options{Trials: 20, Seed: 1})
}

func BenchmarkAblationBasisUpdateOff(b *testing.B) {
	benchPackVariant(b, rowpack.Options{Trials: 20, Seed: 1, DisableBasisUpdate: true})
}

// Ablation 4: shuffled vs popcount-sorted row order.
func BenchmarkAblationOrderShuffle(b *testing.B) {
	benchPackVariant(b, rowpack.Options{Trials: 20, Seed: 1, Order: rowpack.OrderShuffle})
}

func BenchmarkAblationOrderSorted(b *testing.B) {
	benchPackVariant(b, rowpack.Options{Trials: 1, Order: rowpack.OrderSortedAsc})
}

// Ablation 5: DLX exact-cover packing (the paper's future-work idea).
func BenchmarkAblationPackDLX(b *testing.B) {
	benchPackVariant(b, rowpack.Options{Trials: 20, Seed: 1, UseDLX: true})
}

// --- Solver / SAP benchmarks: the perf-tracked set (DESIGN.md §7). These
// isolate the CDCL core and the SAP narrowing loop on the Table I suites so
// the solver's trajectory across PRs is visible without packing/fooling
// noise; cmd/timing -json snapshots the same workloads. ---

// BenchmarkSolverTableIGapNarrowing drives the incremental narrowing loop —
// encode once at the heuristic bound, SolveAssuming per depth — over the
// Table I gap suites, down to the rank bound or UNSAT. The job list and
// loop live in internal/eval so cmd/timing -json measures the identical
// workload.
func BenchmarkSolverTableIGapNarrowing(b *testing.B) {
	jobs := eval.TableIGapSolverJobs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, j := range jobs {
			eval.NarrowToRank(j, true, true)
		}
	}
}

// BenchmarkSolverTableIGapDestructive is the ablation twin of the above:
// narrowing by unit clauses on one solver (the pre-incremental strategy).
func BenchmarkSolverTableIGapDestructive(b *testing.B) {
	jobs := eval.TableIGapSolverJobs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, j := range jobs {
			eval.NarrowToRank(j, false, true)
		}
	}
}

// BenchmarkSolverTableIGapNoSymBreak is the symmetry-breaking ablation:
// incremental narrowing without the slot-ordering clauses, so every UNSAT
// proof re-refutes permuted-slot duplicates.
func BenchmarkSolverTableIGapNoSymBreak(b *testing.B) {
	jobs := eval.TableIGapSolverJobs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, j := range jobs {
			eval.NarrowToRank(j, true, false)
		}
	}
}

// BenchmarkSAPBlockDiagParallel runs the staged pipeline (decompose +
// per-block SAP on the worker pool) over the block-diagonal perf suite.
func BenchmarkSAPBlockDiagParallel(b *testing.B) {
	ms := eval.BlockDiagSAPMatrices()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval.RunBlockDiagSAP(ms, true)
	}
}

// BenchmarkSAPBlockDiagSequentialWhole is its ablation twin: one monolithic
// SAP loop over each whole matrix, single-threaded — the pre-pipeline
// behaviour.
func BenchmarkSAPBlockDiagSequentialWhole(b *testing.B) {
	ms := eval.BlockDiagSAPMatrices()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval.RunBlockDiagSAP(ms, false)
	}
}

// BenchmarkSolverFig1bUnsat is the single hardest paper instance's final
// UNSAT proof, solver only.
func BenchmarkSolverFig1bUnsat(b *testing.B) {
	m := bitmat.MustParse("101100\n010011\n101010\n010101\n111000\n000111")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := encode.NewOneHot(m, 4, encode.AMOPairwise)
		if enc.Solve() != sat.Unsat {
			b.Fatal("b=4 must be UNSAT")
		}
	}
}

// BenchmarkSAPTableIGap runs the full SAP pipeline (pack + narrowing +
// certificates) over the Table I gap suites — the end-to-end number the
// paper's Table I reports.
func BenchmarkSAPTableIGap(b *testing.B) {
	ms := eval.GapSuiteMatrices()
	opts := eval.TableIGapSAPOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval.RunGapSuiteSAP(ms, opts)
	}
}

// BenchmarkSAPTableIGapPortfolio is the racing twin of SAPTableIGap: the
// same suite and budgets with a 3-strategy clause-sharing portfolio per
// block. The gap between the two is what racing buys (or costs) end to end.
func BenchmarkSAPTableIGapPortfolio(b *testing.B) {
	ms := eval.GapSuiteMatrices()
	opts := eval.TableIGapPortfolioOptions(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval.RunGapSuiteSAP(ms, opts)
	}
}

// BenchmarkSAPTableIRandom is the same over the small random suites.
func BenchmarkSAPTableIRandom(b *testing.B) {
	suite := benchgen.RandomSuite(11, 10, 10, benchgen.PaperOccupanciesSmall(), 1)
	opts := core.DefaultOptions()
	opts.FoolingBudget = 0
	opts.ConflictBudget = 2_000_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ins := range suite {
			if _, err := core.Solve(ins.M, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- micro-benchmarks of the substrates ---

func BenchmarkRowPack100x100(b *testing.B) {
	suite := benchgen.RandomSuite(77, 100, 100, []float64{0.05}, 1)
	m := suite[0].M
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rowpack.Pack(m, rowpack.Options{Trials: 1, Seed: int64(i)})
	}
}

func BenchmarkRank100x100(b *testing.B) {
	suite := benchgen.RandomSuite(78, 100, 100, []float64{0.10}, 1)
	m := suite[0].M
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.Rank() < 0 {
			b.Fatal("impossible")
		}
	}
}

func BenchmarkSATFig1bUnsatProof(b *testing.B) {
	m := bitmat.MustParse("101100\n010011\n101010\n010101\n111000\n000111")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := encode.NewOneHot(m, 4, encode.AMOPairwise)
		if enc.Solve() != sat.Unsat {
			b.Fatal("b=4 must be UNSAT")
		}
	}
}

func BenchmarkFoolingSetExact(b *testing.B) {
	m := bitmat.MustParse("101100\n010011\n101010\n010101\n111000\n000111")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if set, ok := ebmf.FoolingSet(m, 0); !ok || len(set) != 5 {
			b.Fatal("fooling set")
		}
	}
}

func boolMetric(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// --- Baseline comparison: approximate BMF (Zhang et al. / NIMFA) ---

func BenchmarkBaselineBMFvsRowPack(b *testing.B) {
	suite := benchgen.RandomSuite(88, 7, 7, []float64{0.45}, 5)
	var packOK, bmfOK int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		packOK, bmfOK = 0, 0
		for _, ins := range suite {
			packDepth := rowpack.Pack(ins.M, rowpack.Options{Trials: 10, Seed: 1}).Depth()
			packOK++
			if _, ok := bmf.SolveEBMF(ins.M, packDepth, bmf.Options{Restarts: 5, MaxSweeps: 60, Seed: 1}); ok {
				bmfOK++
			}
		}
	}
	b.ReportMetric(float64(packOK), "rowpack_solved")
	b.ReportMetric(float64(bmfOK), "bmf_solved")
}

// --- Circuit-level workload: total shots across program layers ---

func BenchmarkCircuitCompile(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	c := circuit.RandomCircuit(rng, 10, 10, 4, 0.3)
	opts := core.DefaultOptions()
	opts.Packing.Trials = 20
	opts.ConflictBudget = 200_000
	var total int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := circuit.Compile(c, opts)
		if err != nil {
			b.Fatal(err)
		}
		total = res.TotalShots
	}
	b.ReportMetric(float64(total), "total_shots")
}

// --- Certified optimality: UNSAT proof emission + independent checking ---

func BenchmarkCertifiedUnsatProof(b *testing.B) {
	// Figure 1b: rank 4 < r_B 5, so certification requires emitting and
	// replaying a DRAT proof for the b=4 UNSAT instance.
	m := bitmat.MustParse("101100\n010011\n101010\n010101\n111000\n000111")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := core.CertifyDepth(m, 5); err != nil {
			b.Fatal(err)
		}
	}
}
