// Circuit compilation scenario: a program is a sequence of Rz layers on a
// 12×12 atom array. Each layer's pattern is partitioned depth-optimally and
// compiled to a verified AOD schedule; the example compares the total shot
// count against per-qubit addressing (what full individual control would
// need) and row-by-row addressing, across three workload shapes.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/core"
)

func main() {
	opts := core.DefaultOptions()
	opts.Packing.Trials = 50
	opts.ConflictBudget = 500_000

	rng := rand.New(rand.NewSource(2024))
	workloads := []struct {
		name string
		c    *circuit.Circuit
	}{
		{"QAOA stripes (structured)", circuit.QAOACircuit(12, 12, 2)},
		{"random program layers", circuit.RandomCircuit(rng, 12, 12, 6, 0.3)},
		{"staircase (adversarial)", circuit.StaircaseCircuit(12, 12, 4)},
	}

	for _, w := range workloads {
		res, err := circuit.Compile(w.c, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s (%d layers) ==\n", w.name, len(w.c.Layers))
		fmt.Print(res.Summary())
		saved := res.NaiveShots - res.TotalShots
		fmt.Printf("shots saved vs per-qubit addressing: %d (%.1f× reduction), compile %v\n\n",
			saved, float64(res.NaiveShots)/float64(res.TotalShots), res.Elapsed.Round(1e6))
	}

	// Show one layer's partition the way Figure 1b draws it.
	layer := workloads[1].c.Layers[0]
	res, err := core.Solve(layer.Pattern, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("layer %q partition (markers = rectangles, %d shots):\n%s\n",
		layer.Name, res.Depth, res.Partition.Render())
}
