// qLDPC scenario (Figure 5b / Section V of the paper): logical blocks of a
// quantum LDPC code arranged in a 1D layout, each block holding several
// logical qubits at different offsets. Single-qubit logical operations give
// each block a different addressing pattern. The paper conjectures that
// addressing row by row (one shot per distinct block pattern) is usually
// depth-optimal, because wide random patterns are almost always full rank.
// This example measures that claim across shapes and occupancies.
package main

import (
	"fmt"

	"repro/internal/ftqc"
)

func main() {
	fmt.Println("Row-addressing sufficiency for 1D block layouts (Section V conjecture)")
	fmt.Println()
	fmt.Printf("%-10s %-10s %12s %12s\n", "blocks", "block size", "full rank", "row-optimal")

	const trials = 200
	occ := 0.5
	for _, shape := range [][2]int{{10, 10}, {10, 20}, {10, 30}, {8, 40}} {
		stat := ftqc.RowSufficiency(42, shape[0], shape[1], occ, trials)
		fmt.Printf("%-10d %-10d %11.1f%% %11.1f%%\n",
			shape[0], shape[1],
			100*stat.FullRankFraction(), 100*stat.RowOptimalFraction())
	}

	fmt.Println()
	fmt.Println("Occupancy sweep at 10 blocks × 30 offsets:")
	fmt.Printf("%-10s %12s %12s\n", "occupancy", "full rank", "row-optimal")
	for _, occ := range []float64{0.1, 0.2, 0.3, 0.5, 0.7, 0.9} {
		stat := ftqc.RowSufficiency(42, 10, 30, occ, trials)
		fmt.Printf("%-10.0f%% %11.1f%% %11.1f%%\n",
			100*occ, 100*stat.FullRankFraction(), 100*stat.RowOptimalFraction())
	}

	fmt.Println()
	fmt.Println("Reading: wider blocks reach full rank almost surely, so one shot per")
	fmt.Println("distinct block pattern is provably depth-optimal — row addressing")
	fmt.Println("suffices for 1D-arranged qLDPC memory blocks, as the paper conjectures.")
}
