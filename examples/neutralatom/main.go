// Neutral-atom scenario (Figure 1 of the paper): a 2D atom array with some
// vacant sites must receive an Rz gate on a target pattern through a crossed
// AOD. The example solves the pattern, compiles the partition into a pulse
// schedule, reorders shots to reduce AOD retuning, simulates the schedule,
// and verifies the addressing contract — including the don't-care solve
// that exploits vacancies to shrink the depth.
package main

import (
	"fmt"
	"log"
	"math/rand"

	ebmf "repro"
	"repro/internal/complete"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// An 8×8 array where ~15% of the traps failed to load (vacancies).
	atoms := ebmf.New(8, 8)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if rng.Float64() > 0.15 {
				atoms.Set(i, j, true)
			}
		}
	}
	arr := ebmf.NewArrayWithVacancies(atoms)

	// Target: address a random half of the loaded atoms.
	target := ebmf.New(8, 8)
	atoms.ForEachOne(func(i, j int) {
		if rng.Intn(2) == 0 {
			target.Set(i, j, true)
		}
	})

	fmt.Printf("array: 8×8, %d atoms loaded, %d targets\n\n", atoms.Ones(), target.Ones())

	// Plain EBMF solve: vacancies treated as forbidden 0s.
	res, err := ebmf.Solve(target, ebmf.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("EBMF depth (vacancies as 0s): %d (optimal=%v)\n", res.Depth, res.Optimal)

	sched := ebmf.CompileSchedule(res.Partition)
	sched.MinimizeReconfig()
	if err := sched.Verify(arr); err != nil {
		log.Fatalf("schedule verification failed: %v", err)
	}
	st := sched.ComputeStats()
	fmt.Printf("schedule verified: depth=%d, tones=%d, reconfig cost=%d\n\n",
		st.Depth, st.TotalTones, st.ReconfigCost)

	// Don't-care solve: vacant sites may be swept over freely, which can
	// only reduce the depth (the paper's future-work extension).
	dontCare := ebmf.New(8, 8)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if !atoms.Get(i, j) {
				dontCare.Set(i, j, true)
			}
		}
	}
	prob, err := complete.NewProblem(target, dontCare)
	if err != nil {
		log.Fatal(err)
	}
	cover, optimal := complete.SolveExact(prob, 2_000_000)
	if err := cover.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("don't-care depth (vacancies exploited): %d (optimal=%v)\n", cover.Depth(), optimal)
	fmt.Printf("depth saved by exploiting vacancies: %d shots\n", res.Depth-cover.Depth())

	// The don't-care cover also compiles to a schedule; overlaps land only
	// on vacant sites, so the verifier still accepts it.
	dcSched := &ebmf.Schedule{Target: target}
	for _, r := range cover.Rects {
		dcSched.Shots = append(dcSched.Shots, ebmf.Shot{
			RowTones: r.Rows.Clone(),
			ColTones: r.Cols.Clone(),
		})
	}
	if err := dcSched.Verify(arr); err != nil {
		log.Fatalf("don't-care schedule failed verification: %v", err)
	}
	fmt.Println("don't-care schedule verified against the vacancy mask")
}
