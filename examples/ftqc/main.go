// FTQC scenario (Figure 5a / Section V of the paper): a logical operation on
// a 2D pattern of surface-code patches expands to the tensor product of the
// logical pattern and the per-patch physical pattern. The two-level solve
// partitions each level independently and combines the partitions; Watson's
// bound (Eq. 5) certifies optimality for the common transversal case.
package main

import (
	"fmt"
	"log"

	ebmf "repro"
	"repro/internal/core"
	"repro/internal/ftqc"
)

func main() {
	// Logical level: which patches receive the operation U (Figure 5a uses
	// an alternating U/I pattern; we use the paper's Figure 1b pattern for
	// a nontrivial logical partition).
	logical := ebmf.MustParse(`101100
010011
101010
010101
111000
000111`)

	opts := core.DefaultOptions()

	for _, tc := range []struct {
		name  string
		patch *ebmf.Matrix
	}{
		{"transversal (all-ones patch)", ftqc.TransversalPatch(3)},
		{"checkerboard sublattice patch", ftqc.CheckerboardPatch(4)},
		{"diagonal patch (worst case)", ftqc.DiagonalPatch(3)},
	} {
		res, err := ftqc.SolveTwoLevel(logical, tc.patch, opts)
		if err != nil {
			log.Fatal(err)
		}
		full := ebmf.Tensor(logical, tc.patch)
		fmt.Printf("%s:\n", tc.name)
		fmt.Printf("  physical pattern %d×%d: r_B=%d\n",
			tc.patch.Rows(), tc.patch.Cols(), res.Physical.Depth)
		fmt.Printf("  full pattern %d×%d (%d physical qubits addressed)\n",
			full.Rows(), full.Cols(), full.Ones())
		fmt.Printf("  two-level depth: %d  (logical %d × physical %d)\n",
			res.UpperBound, res.Logical.Depth, res.Physical.Depth)
		fmt.Printf("  Watson lower bound (Eq. 5): %d  → optimal: %v\n\n",
			res.WatsonLB, res.Optimal)
	}

	fmt.Println("Observation (paper Section V): for transversal patches the physical")
	fmt.Println("pattern has r_B = ϕ = 1, so the logical partition alone is optimal;")
	fmt.Println("whether binary rank is multiplicative under ⊗ in general is open.")
}
