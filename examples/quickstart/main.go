// Quickstart: solve the paper's Figure 1b pattern end to end — parse a
// pattern, run SAP, inspect bounds and the certificate, and extract the
// EBMF factors.
package main

import (
	"fmt"
	"log"

	ebmf "repro"
)

func main() {
	// The 6×6 addressing pattern from Figure 1b of the paper.
	m := ebmf.MustParse(`101100
010011
101010
010101
111000
000111`)

	fmt.Printf("pattern (%d×%d, %d qubits to address):\n%s\n\n", m.Rows(), m.Cols(), m.Ones(), m)

	res, err := ebmf.Solve(m, ebmf.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("minimum addressing depth: %d\n", res.Depth)
	fmt.Printf("optimal: %v (certificate: %s)\n", res.Optimal, res.Certificate)
	fmt.Printf("lower bounds: rank=%d, fooling set=%d\n\n", res.RankLB, res.FoolingLB)
	fmt.Print(res.Partition)

	// Every partition is an exact binary matrix factorization M = H·W.
	h, w := res.Partition.Factors()
	fmt.Printf("\nEBMF factors (M = H·W over the reals):\nH =\n%s\nW =\n%s\n", h, w)

	// The fooling set certifying optimality (its 5 entries pairwise exclude
	// sharing a rectangle, so no partition can use fewer rectangles).
	set, exact := ebmf.FoolingSet(m, 0)
	fmt.Printf("\nfooling set (exact=%v): %v\n", exact, set)

	// Solve runs a staged pipeline: the matrix is compressed, split into
	// the connected components of its bipartite row-column graph (binary
	// rank is additive over them), and each block runs its own SAP loop —
	// concurrently, on a worker pool sized by Options.Parallelism (default
	// GOMAXPROCS). SolveContext threads cancellation into the SAT search
	// itself, so a canceled request stops mid-proof and still returns the
	// best valid partition found so far:
	//
	//	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	//	defer cancel()
	//	res, err = ebmf.SolveContext(ctx, m, ebmf.DefaultOptions())
	//	// res.Canceled reports a cancellation; res.Blocks the component count.
	//
	// The exact stage solves incrementally by default: one CNF encoding at
	// the heuristic bound, narrowed depth by depth with selector
	// assumptions so the solver keeps its learnt clauses warm, with
	// slot-ordering symmetry breaking killing the k! rectangle-permutation
	// duplicates. The Options knobs expose the ablations (see DESIGN.md §6):
	//
	//	opts := ebmf.DefaultOptions()
	//	opts.Parallelism = 1               // solve blocks one at a time
	//	opts.DisableDecomposition = true   // monolithic whole-matrix solve
	//	opts.DisableSymmetryBreaking = true // drop slot-ordering clauses
	//	opts.DisableIncremental = true     // narrow with unit clauses instead
	//	opts.DisablePhaseSaving = true     // forget polarities across backtracks
	//	opts.LBDCap = 5                    // retain more glue clauses
	//	res, err = ebmf.Solve(m, opts)
}
