// paper_test.go asserts, one by one, the concrete mathematical claims made
// in the paper's text. Each test cites the claim it checks. These tests are
// the ground truth the reproduction is judged against.
package ebmf_test

import (
	"math/rand"
	"testing"

	ebmf "repro"
	"repro/internal/bitmat"
	"repro/internal/core"
	"repro/internal/encode"
	"repro/internal/fooling"
	"repro/internal/rowpack"
	"repro/internal/sat"
)

// fig1b is the running example of Figures 1b and 2a.
const fig1b = `101100
010011
101010
010101
111000
000111`

// Claim (Fig. 1b): "This matrix can be partitioned into five rectangles."
func TestPaperFig1bPartitionsIntoFive(t *testing.T) {
	m := ebmf.MustParse(fig1b)
	rb, err := ebmf.BinaryRank(m)
	if err != nil {
		t.Fatal(err)
	}
	if rb != 5 {
		t.Fatalf("r_B = %d, want 5", rb)
	}
}

// Claim (Fig. 1b): "the shaded markers identify such a fooling set of size
// 5, implying that our partition into 5 rectangles is optimal."
func TestPaperFig1bFoolingSetFive(t *testing.T) {
	m := ebmf.MustParse(fig1b)
	size, exact := fooling.MaxSize(m, 0)
	if !exact || size != 5 {
		t.Fatalf("max fooling size = %d (exact=%v), want 5", size, exact)
	}
}

// Claim (Fig. 2a): "the basis is {{0,2},{1},{3},{4},{5}}, with the first set
// on the left decomposed into {0,2} ⊔ {3}" — i.e. the column-side normal set
// basis has 5 sets and row 0's support {0,2,3} splits as {0,2} ∪ {3}.
func TestPaperFig2aNormalSetBasis(t *testing.T) {
	m := ebmf.MustParse(fig1b)
	row0 := m.Row(0)
	if got := row0.OnesPositions(); len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("row 0 support = %v, want [0 2 3]", got)
	}
	// The claimed basis sets, as column vectors of length 6.
	basis := [][]int{{0, 2}, {1}, {3}, {4}, {5}}
	// They are disjoint and decompose every row's support.
	for i := 0; i < m.Rows(); i++ {
		support := map[int]bool{}
		m.Row(i).ForEachOne(func(j int) { support[j] = true })
		covered := map[int]bool{}
		for _, set := range basis {
			in := 0
			for _, c := range set {
				if support[c] {
					in++
				}
			}
			if in != 0 && in != len(set) {
				t.Fatalf("row %d splits basis set %v", i, set)
			}
			if in == len(set) {
				for _, c := range set {
					covered[c] = true
				}
			}
		}
		if len(covered) != len(support) {
			t.Fatalf("row %d not decomposed by the basis", i)
		}
	}
}

// Claim (Eq. 2): "3 rectangles are needed to partition [the matrix] but the
// size of any fooling set is ≤ 2."
func TestPaperEq2FoolingGap(t *testing.T) {
	m := ebmf.MustParse("110\n011\n111")
	rb, err := ebmf.BinaryRank(m)
	if err != nil {
		t.Fatal(err)
	}
	if rb != 3 {
		t.Fatalf("r_B = %d, want 3", rb)
	}
	size, exact := fooling.MaxSize(m, 0)
	if !exact || size > 2 {
		t.Fatalf("max fooling = %d (exact=%v), want ≤ 2", size, exact)
	}
}

// Claim (Sec. II): the EBMF counterexample — the 3×3 triangle matrix is NOT
// the real-addition sum of those two rectangles (top-left entry appears in
// both), although over GF(2) the equality would hold.
func TestPaperEBMFCounterexample(t *testing.T) {
	m := ebmf.MustParse("011\n101\n110")
	// The claimed (wrong) factorization: rects {0,2}×{0,1}... in paper
	// terms, H columns (1,0,1) and (1,1,0), W rows (1,1,0) and (1,0,1).
	h := ebmf.MustParse("11\n01\n10")
	w := ebmf.MustParse("110\n101")
	// Over the integers, entry (0,0) of H·W is 2, so H·W ≠ M.
	sum := 0
	for k := 0; k < 2; k++ {
		if h.Get(0, k) && w.Get(k, 0) {
			sum++
		}
	}
	if sum != 2 {
		t.Fatalf("top-left of H·W = %d, expected the double cover 2", sum)
	}
	// And indeed r_B of the triangle matrix is 3, not 2.
	rb, err := ebmf.BinaryRank(m)
	if err != nil {
		t.Fatal(err)
	}
	if rb != 3 {
		t.Fatalf("r_B(triangle) = %d, want 3", rb)
	}
}

// Claim (Eq. 3): rank_ℝ(M) ≤ r_B(M) for all binary M. Spot-checked
// exhaustively on all 3×3 binary matrices.
func TestPaperEq3RankLowerBoundExhaustive(t *testing.T) {
	for mask := 0; mask < 512; mask++ {
		m := ebmf.New(3, 3)
		for b := 0; b < 9; b++ {
			if mask&(1<<b) != 0 {
				m.Set(b/3, b%3, true)
			}
		}
		rb, err := ebmf.BinaryRank(m)
		if err != nil {
			t.Fatal(err)
		}
		if m.Rank() > rb {
			t.Fatalf("mask %d: rank %d > r_B %d", mask, m.Rank(), rb)
		}
	}
}

// Claim (Fig. 3): the 5×5 example needs 5 rectangles under one row order
// but only 4 under another; 4 is optimal (it equals the rank).
func TestPaperFig3OrderDependence(t *testing.T) {
	m := ebmf.MustParse("11000\n00110\n01100\n10011\n11111")
	idDepth := rowpack.Pack(m, rowpack.Options{
		Trials: 1, Order: rowpack.OrderIdentity, SkipTranspose: true,
	}).Depth()
	if idDepth != 5 {
		t.Fatalf("identity order depth = %d, want 5", idDepth)
	}
	rb, err := ebmf.BinaryRank(m)
	if err != nil {
		t.Fatal(err)
	}
	if rb != 4 || m.Rank() != 4 {
		t.Fatalf("r_B = %d rank = %d, want 4 and 4", rb, m.Rank())
	}
}

// Claim (Sec. III-B): "the algorithm introduces at most one rectangle for
// each non-repeating row, ensuring that the result is no worse than the
// trivial heuristic."
func TestPaperRowPackingNoWorseThanTrivial(t *testing.T) {
	// Exhaustive over all 3×4 binary matrices would be 4096 cases; sample
	// the full space of 3×3 instead (512 cases).
	for mask := 0; mask < 512; mask++ {
		m := ebmf.New(3, 3)
		for b := 0; b < 9; b++ {
			if mask&(1<<b) != 0 {
				m.Set(b/3, b%3, true)
			}
		}
		p := rowpack.Pack(m, rowpack.Options{Trials: 1, Seed: int64(mask)})
		if p.Depth() > m.TrivialUpperBound() {
			t.Fatalf("mask %d: packing %d worse than trivial %d", mask, p.Depth(), m.TrivialUpperBound())
		}
	}
}

// Claim (Sec. III-A / Eq. 4): the SMT formulation with narrowing decides
// r_B exactly. Cross-checked here on the two named matrices by driving the
// encoder directly through the full narrowing loop.
func TestPaperEq4NarrowingLoop(t *testing.T) {
	for _, tc := range []struct {
		src  string
		want int
	}{
		{fig1b, 5},
		{"110\n011\n111", 3},
	} {
		m := ebmf.MustParse(tc.src)
		ub := rowpack.Pack(m, rowpack.DefaultOptions()).Depth()
		enc := encode.NewOneHot(m, ub, encode.AMOPairwise)
		best := ub + 1
		for enc.Bound() >= 1 {
			if enc.Solve() != sat.Sat {
				break
			}
			best = enc.Bound()
			enc.Narrow()
		}
		if best > ub {
			best = ub
		}
		if best != tc.want {
			t.Fatalf("narrowing loop found %d, want %d", best, tc.want)
		}
	}
}

// Claim (Sec. V): "The real rank is multiplicative under a tensor product"
// and "rB(M̂ ⊗ M) ≤ rB(M̂)·rB(M)"; with an all-ones patch both collapse.
func TestPaperSectionVTensorClaims(t *testing.T) {
	a := ebmf.MustParse("110\n011\n111") // r_B = 3, rank = 3
	b := ebmf.AllOnes(2, 2)              // r_B = 1
	tp := ebmf.Tensor(a, b)
	if tp.Rank() != a.Rank()*b.Rank() {
		t.Fatalf("rank not multiplicative: %d vs %d·%d", tp.Rank(), a.Rank(), b.Rank())
	}
	rb, err := ebmf.BinaryRank(tp)
	if err != nil {
		t.Fatal(err)
	}
	if rb > 3*1 {
		t.Fatalf("r_B(⊗) = %d exceeds product bound 3", rb)
	}
	if rb != 3 {
		t.Fatalf("with all-ones patch r_B(⊗) = %d, want 3", rb)
	}
}

// Claim (Eq. 5, Watson): max(rB(Â)·ϕ(M), rB(M)·ϕ(Â)) ≤ rB(Â⊗M).
// Verified on small exactly-solved pairs.
func TestPaperEq5WatsonBound(t *testing.T) {
	pairs := [][2]string{
		{"11\n01", "10\n01"},
		{"110\n011\n111", "11\n11"},
		{"10\n01", "11\n01"},
	}
	for _, pr := range pairs {
		a := ebmf.MustParse(pr[0])
		b := ebmf.MustParse(pr[1])
		rbA, err := ebmf.BinaryRank(a)
		if err != nil {
			t.Fatal(err)
		}
		rbB, err := ebmf.BinaryRank(b)
		if err != nil {
			t.Fatal(err)
		}
		fA, _ := fooling.MaxSize(a, 0)
		fB, _ := fooling.MaxSize(b, 0)
		lower := rbA * fB
		if alt := rbB * fA; alt > lower {
			lower = alt
		}
		rbT, err := ebmf.BinaryRank(ebmf.Tensor(a, b))
		if err != nil {
			t.Fatal(err)
		}
		if rbT < lower || rbT > rbA*rbB {
			t.Fatalf("r_B(⊗)=%d outside [watson %d, product %d]", rbT, lower, rbA*rbB)
		}
	}
}

// Claim (Observation 2): on the known-optimal benchmarks even the trivial
// heuristic finds optimal solutions, "because ... the columns may be reduced
// by recognizing duplication" — checked on the paper's own 3×3 example.
func TestPaperObservation2Example(t *testing.T) {
	// (1,1,0)ᵀ(1,1,0) + (0,1,1)ᵀ(0,0,1) from the paper's Observation 2.
	m := ebmf.MustParse("110\n111\n001")
	// Column dedup: columns 0 and 1 are equal, so the trivial bound is
	// min(3 distinct rows, 2 distinct cols) = 2 = r_B.
	if got := m.TrivialUpperBound(); got != 2 {
		t.Fatalf("trivial bound = %d, want 2", got)
	}
	rb, err := ebmf.BinaryRank(m)
	if err != nil {
		t.Fatal(err)
	}
	if rb != 2 {
		t.Fatalf("r_B = %d, want 2", rb)
	}
}

// Claim (Observation 5): "the most time consuming cases are proving UNSAT"
// — structurally: for a gap matrix solved exactly, the UNSAT proof at
// depth r_B−1 costs more conflicts than all the SAT calls above it.
func TestPaperObservation5UnsatDominates(t *testing.T) {
	// A deterministic matrix with rank 3 < r_B: the triangle matrix ⊕ a
	// small block forces one UNSAT call below the packing depth.
	m := ebmf.MustParse("0110\n1010\n1100\n0001")
	opts := core.DefaultOptions()
	opts.FoolingBudget = 0 // force the SAT stage to do the proving
	res, err := core.Solve(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal {
		t.Fatal("must be decided")
	}
	if res.Certificate != core.CertUnsat && res.Depth != res.RankLB {
		t.Fatalf("expected an UNSAT certificate or rank match, got %v", res.Certificate)
	}
}

// Claim (Sec. V conjecture): "given the same occupancy, the 10×20 and 10×30
// random matrices are much easier to be full rank than the 10×10 matrices."
func TestPaperWideMatricesEasierFullRank(t *testing.T) {
	// Deterministic sampling; compare full-rank rates.
	countFullRank := func(cols int) int {
		n := 0
		for seed := int64(0); seed < 40; seed++ {
			m := randomMatrix(seed, 10, cols, 0.5)
			if m.Rank() == 10 {
				n++
			}
		}
		return n
	}
	narrow := countFullRank(10)
	wide := countFullRank(30)
	if wide <= narrow {
		t.Fatalf("10×30 full-rank count %d should exceed 10×10 count %d", wide, narrow)
	}
}

func randomMatrix(seed int64, rows, cols int, occ float64) *bitmat.Matrix {
	rng := newRand(seed)
	return bitmat.Random(rng, rows, cols, occ)
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
