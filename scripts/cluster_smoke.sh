#!/usr/bin/env bash
# Smoke test for the sharded gateway, run in CI after the unit tests:
# start two ebmfd backends and one ebmfgw on kernel-assigned free ports,
# solve the paper's Fig. 1b instance through the gateway, resubmit a
# row/column permutation and assert it comes back with the same depth as a
# cache hit (fingerprint routing + shard cache through the gateway), wait
# for the fresh result to be replicated to the ring successor so BOTH
# backends answer it from cache, then kill -9 the home backend of an
# in-flight async job and assert the gateway re-homes it to the survivor
# (same gw- ID, "rehomed":true, counted in /v1/metrics) while sync solves
# keep working. Any startup timeout fails fast with the daemons' logs.
set -euo pipefail

FIG1B='101100\n010011\n101010\n010101\n111000\n000111'
# Fig. 1b with rows and columns permuted; same canonical fingerprint.
FIG1B_PERM='110100\n111000\n000111\n001011\n010011\n101100'

LOG1=$(mktemp /tmp/ebmfd1-smoke.XXXXXX.log)
LOG2=$(mktemp /tmp/ebmfd2-smoke.XXXXXX.log)
LOGGW=$(mktemp /tmp/ebmfgw-smoke.XXXXXX.log)
go build -o /tmp/ebmfd-smoke ./cmd/ebmfd
go build -o /tmp/ebmfgw-smoke ./cmd/ebmfgw

PIDS=()
cleanup() {
  for pid in "${PIDS[@]}"; do kill "$pid" 2>/dev/null || true; done
}
trap cleanup EXIT

# wait_addr LOGFILE VAR — parse the "listening on" line a daemon prints.
wait_addr() {
  local log=$1 pid=$2 addr=
  for _ in $(seq 1 100); do
    addr=$(sed -n 's/.*listening on \(127\.0\.0\.1:[0-9]*\).*/\1/p' "$log" | head -1)
    [ -n "$addr" ] && { echo "$addr"; return 0; }
    if ! kill -0 "$pid" 2>/dev/null; then
      echo "FAIL: daemon exited during startup; log follows" >&2
      cat "$log" >&2
      return 1
    fi
    sleep 0.1
  done
  echo "FAIL: no listen address within 10s; log follows" >&2
  cat "$log" >&2
  return 1
}

/tmp/ebmfd-smoke -addr 127.0.0.1:0 >"$LOG1" 2>&1 &
PID1=$!; PIDS+=("$PID1")
/tmp/ebmfd-smoke -addr 127.0.0.1:0 >"$LOG2" 2>&1 &
PID2=$!; PIDS+=("$PID2")
ADDR1=$(wait_addr "$LOG1" "$PID1")
ADDR2=$(wait_addr "$LOG2" "$PID2")

# Fast probes + a short breaker cooldown so the backend-kill phase settles
# within the smoke budget.
/tmp/ebmfgw-smoke -addr 127.0.0.1:0 -backends "http://$ADDR1,http://$ADDR2" \
  -probe-interval 200ms -hedge-after 500ms -breaker-cooldown 1s >"$LOGGW" 2>&1 &
PIDGW=$!; PIDS+=("$PIDGW")
GW=$(wait_addr "$LOGGW" "$PIDGW")

for _ in $(seq 1 100); do
  curl -sf "http://$GW/v1/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
if ! curl -sf "http://$GW/v1/healthz" >/dev/null; then
  echo "FAIL: gateway healthz never came up on $GW; log follows"
  cat "$LOGGW"
  exit 1
fi

R1=$(curl -sf -X POST -d "{\"matrix\":\"$FIG1B\"}" "http://$GW/v1/solve")
R2=$(curl -sf -X POST -d "{\"matrix\":\"$FIG1B_PERM\"}" "http://$GW/v1/solve")
echo "cold:     $R1"
echo "permuted: $R2"

grep -q '"depth":5' <<<"$R1" || { echo "FAIL: cold solve depth != 5"; exit 1; }
grep -q '"optimal":true' <<<"$R1" || { echo "FAIL: cold solve not optimal"; exit 1; }
grep -q '"cache_hit":false' <<<"$R1" || { echo "FAIL: cold solve claims cache hit"; exit 1; }
grep -q '"depth":5' <<<"$R2" || { echo "FAIL: permuted solve depth != 5"; exit 1; }
grep -q '"cache_hit":true' <<<"$R2" || { echo "FAIL: permuted resubmission missed the cache through the gateway"; exit 1; }

FP1=$(sed -n 's/.*"fingerprint":"\([0-9a-f]*\)".*/\1/p' <<<"$R1")
FP2=$(sed -n 's/.*"fingerprint":"\([0-9a-f]*\)".*/\1/p' <<<"$R2")
[ -n "$FP1" ] && [ "$FP1" = "$FP2" ] || { echo "FAIL: fingerprints differ through the gateway"; exit 1; }

# Cache-fill replication: the fresh Fig. 1b result is asynchronously
# seeded to the ring successor. Wait for the gateway to report the fill
# stored, then both backends — home shard and successor — must answer the
# canonical instance from their own cache, with no new solve.
REPM=
for _ in $(seq 1 100); do
  REPM=$(curl -sf "http://$GW/v1/metrics")
  grep -q '"replication":{[^}]*"stored":1' <<<"$REPM" && break
  sleep 0.1
done
grep -q '"replication":{[^}]*"stored":1' <<<"$REPM" \
  || { echo "FAIL: gateway never stored a replication fill"; echo "$REPM"; exit 1; }
for A in "$ADDR1" "$ADDR2"; do
  RH=$(curl -sf -X POST -d "{\"matrix\":\"$FIG1B\"}" "http://$A/v1/solve")
  grep -q '"cache_hit":true' <<<"$RH" \
    || { echo "FAIL: backend $A cold after replication: $RH"; exit 1; }
done
# Exactly one backend accepted a fill; the other proved the result itself.
FILLS=0
for A in "$ADDR1" "$ADDR2"; do
  curl -sf "http://$A/v1/metrics" | grep -q '"fills":{"requests":1,"stored":1' && FILLS=$((FILLS + 1))
done
[ "$FILLS" = 1 ] || { echo "FAIL: expected exactly 1 backend with a stored fill, got $FILLS"; exit 1; }

# Batch through the gateway: split across shards, merged in order, with a
# per-item error for the invalid middle entry.
RB=$(curl -sf -X POST -d "{\"requests\":[{\"matrix\":\"10\\n01\"},{\"rows\":[]},{\"matrix\":\"$FIG1B\"}]}" "http://$GW/v1/batch")
echo "batch:    $RB"
grep -q '"depth":2' <<<"$RB" || { echo "FAIL: batch item 0 depth != 2"; exit 1; }
grep -q '"error":' <<<"$RB" || { echo "FAIL: zero-dimension batch item carried no error"; exit 1; }
grep -q '"depth":5' <<<"$RB" || { echo "FAIL: batch item 2 depth != 5"; exit 1; }

# Async job through the gateway: submit answers 202 with a gateway-minted
# ID, the SSE stream proxies through to a terminal done frame, the poll is
# sticky to the accepting backend, and the job shares the sync path's
# canonical key space (the same matrix re-solves as a cache hit).
JOBM='110101\n011011\n101110\n010111\n111010\n001101'
JOB=$(curl -sf -X POST -d "{\"matrix\":\"$JOBM\"}" "http://$GW/v1/jobs")
echo "job:      $JOB"
JOB_ID=$(sed -n 's/.*"id":"\(gw-[0-9a-f]*\)".*/\1/p' <<<"$JOB")
[ -n "$JOB_ID" ] || { echo "FAIL: gateway job submit returned no gw- ID: $JOB"; exit 1; }
STREAM=$(curl -sfN --max-time 60 "http://$GW/v1/jobs/$JOB_ID/events")
grep -q 'event: done' <<<"$STREAM" || { echo "FAIL: proxied job stream had no done event"; echo "$STREAM"; exit 1; }
grep -q "\"id\":\"$JOB_ID\"" <<<"$STREAM" || { echo "FAIL: proxied done frame not rewritten to gateway ID"; echo "$STREAM"; exit 1; }
JG=$(curl -sf "http://$GW/v1/jobs/$JOB_ID")
grep -q '"state":"done"' <<<"$JG" || { echo "FAIL: proxied job not done: $JG"; exit 1; }
grep -q '"optimal":true' <<<"$JG" || { echo "FAIL: proxied job not optimal: $JG"; exit 1; }
RJ=$(curl -sf -X POST -d "{\"matrix\":\"$JOBM\"}" "http://$GW/v1/solve")
grep -q '"cache_hit":true' <<<"$RJ" || { echo "FAIL: sync solve after job missed the cache: $RJ"; exit 1; }

# Observability: a fresh solve that genuinely runs SAT (8×8 gap matrix, so
# the trace carries depth-probe spans and solver progress) must yield ONE
# stitched trace on the gateway's debug endpoint — gateway root + proxy span
# + the backend's solve/block/probe subtree — while the client response
# carries no trace payload.
GAP8='10110101\n01101110\n11010011\n00111101\n11101010\n01011101\n10110110\n01101011'
RT=$(curl -sf -X POST -d "{\"matrix\":\"$GAP8\"}" "http://$GW/v1/solve")
grep -q '"depth":8' <<<"$RT" || { echo "FAIL: gap8 solve depth != 8"; exit 1; }
if grep -q '"trace"' <<<"$RT"; then
  echo "FAIL: gateway leaked the trace to the client"; exit 1
fi
GWTRACES=$(curl -sf "http://$GW/v1/debug/traces")
for span in gw.solve proxy solve block probe; do
  grep -q "\"name\":\"$span\"" <<<"$GWTRACES" \
    || { echo "FAIL: stitched trace missing $span span"; echo "$GWTRACES"; exit 1; }
done
grep -q '"t_us":' <<<"$GWTRACES" || { echo "FAIL: stitched trace carries no progress samples"; exit 1; }
# Cross-tier correlation: the newest gateway trace and the serving backend's
# ring must share one trace ID.
TID=$(grep -o '"trace_id":"[0-9a-f]*"' <<<"$GWTRACES" | head -1 | cut -d'"' -f4)
[ -n "$TID" ] || { echo "FAIL: no trace ID in gateway traces"; exit 1; }
BHIT=0
for A in "$ADDR1" "$ADDR2"; do
  curl -sf "http://$A/v1/debug/traces" | grep -q "$TID" && BHIT=$((BHIT + 1))
done
[ "$BHIT" -ge 1 ] || { echo "FAIL: no backend ring shares trace ID $TID"; exit 1; }

# A dimensionally invalid matrix must be a structured 400 at the gateway.
CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST -d '{"rows":[[]]}' "http://$GW/v1/solve")
[ "$CODE" = "400" ] || { echo "FAIL: zero-dimension matrix returned $CODE, want 400"; exit 1; }

# --- Job re-homing: kill a job's home backend mid-solve ---------------------
# Submit a slow job through the gateway, find which backend accepted it (its
# per-backend jobs.submitted counter moved), kill -9 that backend, and
# assert a single gateway poll answers a live re-homed snapshot — same gw-
# ID, "rehomed":true, no 502 — with the re-home counted in the gateway's
# /v1/metrics. The job must still reach done on the surviving backend.
HARD='1110101100\n1101010001\n1010111001\n1111101110\n0010101011\n0111001111\n1011000110\n0100101111\n0101010001\n1101100010'
jobs_submitted() {
  curl -sf "http://$1/v1/metrics" | grep -o '"jobs":{"submitted":[0-9]*' | grep -o '[0-9]*$'
}
B1_BEFORE=$(jobs_submitted "$ADDR1")
B2_BEFORE=$(jobs_submitted "$ADDR2")
RJOB=$(curl -sf -X POST -d "{\"matrix\":\"$HARD\"}" "http://$GW/v1/jobs")
echo "rehome-job: $RJOB"
RID=$(sed -n 's/.*"id":"\(gw-[0-9a-f]*\)".*/\1/p' <<<"$RJOB")
[ -n "$RID" ] || { echo "FAIL: slow job submit returned no gw- ID: $RJOB"; exit 1; }
HOMEPID=; HOMEADDR=
if [ "$(jobs_submitted "$ADDR1")" -gt "$B1_BEFORE" ]; then
  HOMEPID=$PID1; HOMEADDR=$ADDR1
elif [ "$(jobs_submitted "$ADDR2")" -gt "$B2_BEFORE" ]; then
  HOMEPID=$PID2; HOMEADDR=$ADDR2
fi
[ -n "$HOMEPID" ] || { echo "FAIL: no backend's jobs.submitted moved"; exit 1; }
kill -9 "$HOMEPID"
wait "$HOMEPID" 2>/dev/null || true

RSNAP=$(curl -sf "http://$GW/v1/jobs/$RID") \
  || { echo "FAIL: poll of dead-backend job failed (no re-home); log follows"; cat "$LOGGW"; exit 1; }
echo "rehomed:  $RSNAP"
grep -q "\"id\":\"$RID\"" <<<"$RSNAP" || { echo "FAIL: re-home changed the gateway ID: $RSNAP"; exit 1; }
grep -q '"rehomed":true' <<<"$RSNAP" || { echo "FAIL: snapshot not flagged rehomed: $RSNAP"; exit 1; }
for _ in $(seq 1 300); do
  RSNAP=$(curl -sf "http://$GW/v1/jobs/$RID") || { echo "FAIL: re-homed job poll failed"; exit 1; }
  grep -q '"state":"done"' <<<"$RSNAP" && break
  sleep 0.1
done
grep -q '"state":"done"' <<<"$RSNAP" || { echo "FAIL: re-homed job never finished: $RSNAP"; exit 1; }
grep -q '"rehomed":true' <<<"$RSNAP" || { echo "FAIL: terminal snapshot lost the rehomed flag: $RSNAP"; exit 1; }
GWM=$(curl -sf "http://$GW/v1/metrics")
grep -Eq '"rehomed":[1-9]' <<<"$GWM" || { echo "FAIL: gateway metrics count no re-home"; echo "$GWM"; exit 1; }

# The dead backend's loss must not take the gateway down for sync solves
# either (failover + probes).
R3=$(curl -sf -X POST -d '{"matrix":"110\n011\n101"}' "http://$GW/v1/solve") \
  || { echo "FAIL: solve after backend kill failed"; cat "$LOGGW"; exit 1; }
echo "failover: $R3"
grep -q '"optimal":true' <<<"$R3" || { echo "FAIL: post-kill solve not optimal"; exit 1; }
# And the cached pattern must still be served (local LRU or surviving shard).
R4=$(curl -sf -X POST -d "{\"matrix\":\"$FIG1B_PERM\"}" "http://$GW/v1/solve") \
  || { echo "FAIL: cached solve after backend kill failed"; exit 1; }
grep -q '"depth":5' <<<"$R4" || { echo "FAIL: post-kill cached solve depth != 5"; exit 1; }

# Metrics aggregate per-backend state, the cache split and the latency
# histograms (gateway end-to-end + merged per-backend proxy round-trips).
METRICS=$(curl -sf "http://$GW/v1/metrics")
grep -q '"backends":\[' <<<"$METRICS" || { echo "FAIL: metrics missing backends section"; exit 1; }
grep -q '"breaker"' <<<"$METRICS" || { echo "FAIL: metrics missing breaker state"; exit 1; }
grep -q '"local"' <<<"$METRICS" || { echo "FAIL: metrics missing local cache section"; exit 1; }
grep -q '"p50_ns":' <<<"$METRICS" || { echo "FAIL: metrics missing latency percentiles"; exit 1; }
grep -q '"proxy_latency":{' <<<"$METRICS" || { echo "FAIL: metrics missing merged proxy histogram"; exit 1; }

# Graceful drain: gateway healthz flips and the process exits cleanly.
kill -TERM "$PIDGW"
for _ in $(seq 1 100); do
  kill -0 "$PIDGW" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$PIDGW" 2>/dev/null; then
  echo "FAIL: ebmfgw did not drain within 10s; log follows"
  cat "$LOGGW"
  exit 1
fi
echo "PASS: cluster smoke (2 backends + gateway, permuted hit through gateway, replication, batch split, proxied job+SSE, stitched trace, job re-homing after backend kill, drain)"
