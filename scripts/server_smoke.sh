#!/usr/bin/env bash
# Smoke test for the ebmfd solve service, run in CI after the unit tests:
# start the daemon, solve the paper's Fig. 1b instance, resubmit a row/column
# permutation of it, and assert the permutation comes back with the same
# depth as a cache hit (the canonical-fingerprint + singleflight contract).
set -euo pipefail

ADDR=127.0.0.1:18573
FIG1B='101100\n010011\n101010\n010101\n111000\n000111'
# Fig. 1b with rows and columns permuted; same canonical fingerprint.
FIG1B_PERM='110100\n111000\n000111\n001011\n010011\n101100'

go build -o /tmp/ebmfd ./cmd/ebmfd
/tmp/ebmfd -addr "$ADDR" -quiet &
PID=$!
trap 'kill $PID 2>/dev/null || true' EXIT

for _ in $(seq 1 100); do
  curl -sf "http://$ADDR/v1/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -sf "http://$ADDR/v1/healthz" >/dev/null

R1=$(curl -sf -X POST -d "{\"matrix\":\"$FIG1B\"}" "http://$ADDR/v1/solve")
R2=$(curl -sf -X POST -d "{\"matrix\":\"$FIG1B_PERM\"}" "http://$ADDR/v1/solve")
echo "cold:     $R1"
echo "permuted: $R2"

grep -q '"depth":5' <<<"$R1" || { echo "FAIL: cold solve depth != 5"; exit 1; }
grep -q '"optimal":true' <<<"$R1" || { echo "FAIL: cold solve not optimal"; exit 1; }
grep -q '"cache_hit":false' <<<"$R1" || { echo "FAIL: cold solve claims cache hit"; exit 1; }
grep -q '"depth":5' <<<"$R2" || { echo "FAIL: permuted solve depth != 5"; exit 1; }
grep -q '"cache_hit":true' <<<"$R2" || { echo "FAIL: permuted resubmission missed the cache"; exit 1; }

FP1=$(sed -n 's/.*"fingerprint":"\([0-9a-f]*\)".*/\1/p' <<<"$R1")
FP2=$(sed -n 's/.*"fingerprint":"\([0-9a-f]*\)".*/\1/p' <<<"$R2")
[ -n "$FP1" ] && [ "$FP1" = "$FP2" ] || { echo "FAIL: fingerprints differ"; exit 1; }

METRICS=$(curl -sf "http://$ADDR/v1/metrics")
grep -q '"hits":1' <<<"$METRICS" || { echo "FAIL: metrics report no cache hit"; exit 1; }

# Graceful drain: healthz flips to 503 and the process exits cleanly.
kill -TERM $PID
for _ in $(seq 1 100); do
  kill -0 $PID 2>/dev/null || break
  sleep 0.1
done
if kill -0 $PID 2>/dev/null; then
  echo "FAIL: ebmfd did not drain within 10s"
  exit 1
fi
trap - EXIT
echo "PASS: server smoke (cold solve, permuted cache hit, drain)"
