#!/usr/bin/env bash
# Smoke test for the ebmfd solve service, run in CI after the unit tests:
# start the daemon on a kernel-assigned free port (so two CI jobs sharing a
# runner never collide), solve the paper's Fig. 1b instance, resubmit a
# row/column permutation of it, assert the permutation comes back with the
# same depth as a cache hit (the canonical-fingerprint + singleflight
# contract), and exercise the portfolio racing knobs end to end. Then the
# crash-recovery phase: kill -9 the daemon, corrupt the durable store's WAL
# (flip a byte in the last record, append a garbage tail), restart on the
# same store directory and assert the permuted instance is still a cache
# hit — proved work survives a crash, corruption costs only the records it
# touches. Any startup timeout fails fast with the daemon's log.
#
# In between, the async job API: submit → SSE stream → terminal result,
# cancel-mid-solve frees the slot, a tenant over its quota gets a coded 429,
# and a degrade-opted submit under the same quota pressure gets a heuristic
# answer instead.
#
# The final phase is durable jobs: with -job-journal, two in-flight jobs
# (one mid-solve, one queued with a callback_url) survive a kill -9 —
# the restarted daemon replays the journal, finishes both under their
# ORIGINAL IDs, serves the already-proved one from the store without
# re-solving, and delivers the webhook at least once through an injected
# first-attempt failure.
set -euo pipefail

FIG1B='101100\n010011\n101010\n010101\n111000\n000111'
# Fig. 1b with rows and columns permuted; same canonical fingerprint.
FIG1B_PERM='110100\n111000\n000111\n001011\n010011\n101100'
# A reproducible 10x10 whose exact solve takes ~1s: wide enough a window to
# cancel mid-solve deterministically.
HARD='1110101100\n1101010001\n1010111001\n1111101110\n0010101011\n0111001111\n1011000110\n0100101111\n0101010001\n1101100010'
# A reproducible 9x9 where the packing heuristic provably over-shoots the
# lower bound, so a heuristic-only (degraded) answer must be optimal=false.
GAPM='011100101\n010001001\n011101001\n100110100\n001101000\n010110110\n100100101\n101101110\n010100111'

LOG=$(mktemp /tmp/ebmfd-smoke.XXXXXX.log)
STORE=$(mktemp -d /tmp/ebmfd-smoke-store.XXXXXX)
go build -o /tmp/ebmfd-smoke ./cmd/ebmfd
/tmp/ebmfd-smoke -addr 127.0.0.1:0 -store "$STORE" -tenants 'smoke:smoke-key:3:1' >"$LOG" 2>&1 &
PID=$!
trap 'kill $PID 2>/dev/null || true; rm -rf "$STORE"' EXIT

# The daemon logs the actual address once the listener is up; parse it
# instead of hardcoding a port.
ADDR=
for _ in $(seq 1 100); do
  ADDR=$(sed -n 's/.*listening on \(127\.0\.0\.1:[0-9]*\).*/\1/p' "$LOG" | head -1)
  [ -n "$ADDR" ] && break
  if ! kill -0 "$PID" 2>/dev/null; then
    echo "FAIL: ebmfd exited during startup; log follows"
    cat "$LOG"
    exit 1
  fi
  sleep 0.1
done
if [ -z "$ADDR" ]; then
  echo "FAIL: ebmfd did not report a listen address within 10s; log follows"
  cat "$LOG"
  exit 1
fi

for _ in $(seq 1 100); do
  curl -sf "http://$ADDR/v1/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
if ! curl -sf "http://$ADDR/v1/healthz" >/dev/null; then
  echo "FAIL: healthz never came up on $ADDR; log follows"
  cat "$LOG"
  exit 1
fi

R1=$(curl -sf -X POST -d "{\"matrix\":\"$FIG1B\"}" "http://$ADDR/v1/solve")
R2=$(curl -sf -X POST -d "{\"matrix\":\"$FIG1B_PERM\"}" "http://$ADDR/v1/solve")
echo "cold:     $R1"
echo "permuted: $R2"

grep -q '"depth":5' <<<"$R1" || { echo "FAIL: cold solve depth != 5"; exit 1; }
grep -q '"optimal":true' <<<"$R1" || { echo "FAIL: cold solve not optimal"; exit 1; }
grep -q '"cache_hit":false' <<<"$R1" || { echo "FAIL: cold solve claims cache hit"; exit 1; }
grep -q '"depth":5' <<<"$R2" || { echo "FAIL: permuted solve depth != 5"; exit 1; }
grep -q '"cache_hit":true' <<<"$R2" || { echo "FAIL: permuted resubmission missed the cache"; exit 1; }

FP1=$(sed -n 's/.*"fingerprint":"\([0-9a-f]*\)".*/\1/p' <<<"$R1")
FP2=$(sed -n 's/.*"fingerprint":"\([0-9a-f]*\)".*/\1/p' <<<"$R2")
[ -n "$FP1" ] && [ "$FP1" = "$FP2" ] || { echo "FAIL: fingerprints differ"; exit 1; }

# Portfolio racing over the wire, on a matrix whose optimality genuinely
# needs the SAT stage (8×8, rank 7 < fooling-unreachable depth 8) so the
# race actually runs and the response must carry racing stats.
GAP8='10110101\n01101110\n11010011\n00111101\n11101010\n01011101\n10110110\n01101011'
R3=$(curl -sf -X POST -d "{\"matrix\":\"$GAP8\",\"options\":{\"portfolio\":3,\"share_clauses\":true}}" "http://$ADDR/v1/solve")
echo "raced:    $R3"
grep -q '"depth":8' <<<"$R3" || { echo "FAIL: raced solve depth != 8"; exit 1; }
grep -q '"optimal":true' <<<"$R3" || { echo "FAIL: raced solve not optimal"; exit 1; }
grep -q '"portfolio":{' <<<"$R3" || { echo "FAIL: raced solve carries no portfolio stats"; exit 1; }
grep -q '"wins":{"[a-z-]*":' <<<"$R3" || { echo "FAIL: raced solve recorded no strategy wins"; exit 1; }

# An unknown strategy must be a 400, not a 500.
CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
  -d '{"matrix":"11\n01","options":{"portfolio_strategies":["bogus"]}}' "http://$ADDR/v1/solve")
[ "$CODE" = "400" ] || { echo "FAIL: bogus strategy returned $CODE, want 400"; exit 1; }

METRICS=$(curl -sf "http://$ADDR/v1/metrics")
grep -q '"hits":1' <<<"$METRICS" || { echo "FAIL: metrics report no cache hit"; exit 1; }
grep -q '"portfolio"' <<<"$METRICS" || { echo "FAIL: metrics missing portfolio section"; exit 1; }
grep -q '"p50_ns":' <<<"$METRICS" || { echo "FAIL: metrics missing latency percentiles"; exit 1; }
grep -q '"queue_wait":{' <<<"$METRICS" || { echo "FAIL: metrics missing queue wait histogram"; exit 1; }

# Observability: solves are traced by default; the debug endpoint must hold
# span trees (per-block, per-stage, portfolio rounds) plus progress samples
# from the raced GAP8 solve, and a cached solve must be marked as a hit.
TRACES=$(curl -sf "http://$ADDR/v1/debug/traces")
for span in solve preprocess decompose block pack round; do
  grep -q "\"name\":\"$span\"" <<<"$TRACES" || { echo "FAIL: traces missing $span span"; echo "$TRACES"; exit 1; }
done
grep -q '"t_us":' <<<"$TRACES" || { echo "FAIL: traces carry no solver progress samples"; exit 1; }
grep -q '"cache_hit":"true"' <<<"$TRACES" || { echo "FAIL: no trace records a cache hit"; exit 1; }

# --- Async jobs: submit → stream → result ---------------------------------
# A submit answers 202 with an ID immediately; the SSE stream must deliver
# lifecycle events and end with a terminal done frame carrying the result.
JOB=$(curl -sf -X POST -d "{\"matrix\":\"$GAP8\"}" "http://$ADDR/v1/jobs")
echo "job:      $JOB"
JOB_ID=$(sed -n 's/.*"id":"\([^"]*\)".*/\1/p' <<<"$JOB")
[ -n "$JOB_ID" ] || { echo "FAIL: job submit returned no ID"; exit 1; }
STREAM=$(curl -sfN --max-time 60 "http://$ADDR/v1/jobs/$JOB_ID/events")
grep -q 'event: done' <<<"$STREAM" || { echo "FAIL: job stream had no done event"; echo "$STREAM"; exit 1; }
grep -q '"depth":8' <<<"$STREAM" || { echo "FAIL: job stream result depth != 8"; echo "$STREAM"; exit 1; }
J=$(curl -sf "http://$ADDR/v1/jobs/$JOB_ID")
grep -q '"state":"done"' <<<"$J" || { echo "FAIL: streamed job not done: $J"; exit 1; }
grep -q '"optimal":true' <<<"$J" || { echo "FAIL: streamed job not optimal: $J"; exit 1; }

# --- Cancel mid-solve frees the slot --------------------------------------
JOB=$(curl -sf -X POST -d "{\"matrix\":\"$HARD\"}" "http://$ADDR/v1/jobs")
JOB_ID=$(sed -n 's/.*"id":"\([^"]*\)".*/\1/p' <<<"$JOB")
for _ in $(seq 1 100); do
  STATE=$(curl -sf "http://$ADDR/v1/jobs/$JOB_ID" | sed -n 's/.*"state":"\([a-z]*\)".*/\1/p')
  [ "$STATE" = running ] && break
  sleep 0.1
done
[ "$STATE" = running ] || { echo "FAIL: hard job never started running (state=$STATE)"; exit 1; }
curl -sf -X DELETE "http://$ADDR/v1/jobs/$JOB_ID" >/dev/null
for _ in $(seq 1 100); do
  STATE=$(curl -sf "http://$ADDR/v1/jobs/$JOB_ID" | sed -n 's/.*"state":"\([a-z]*\)".*/\1/p')
  [ "$STATE" = canceled ] && break
  sleep 0.1
done
[ "$STATE" = canceled ] || { echo "FAIL: canceled job state=$STATE"; exit 1; }
# The freed slot must serve new work promptly (a cached solve suffices).
R6=$(curl -sf --max-time 5 -X POST -d "{\"matrix\":\"$FIG1B\"}" "http://$ADDR/v1/solve")
grep -q '"depth":5' <<<"$R6" || { echo "FAIL: solve after cancel broken: $R6"; exit 1; }

# --- Tenant quota: coded 429, degrade opt-in sheds gracefully -------------
# Tenant "smoke" has quota 1: a second outstanding job must be rejected with
# the machine-readable code and a Retry-After hint...
JOB=$(curl -sf -X POST -H 'Authorization: Bearer smoke-key' \
  -d "{\"matrix\":\"$HARD\"}" "http://$ADDR/v1/jobs")
QUOTA_JOB_ID=$(sed -n 's/.*"id":"\([^"]*\)".*/\1/p' <<<"$JOB")
HDRS=$(mktemp /tmp/ebmfd-smoke.XXXXXX.hdrs)
OVER=$(curl -s -D "$HDRS" -X POST -H 'Authorization: Bearer smoke-key' \
  -d "{\"matrix\":\"$FIG1B\"}" "http://$ADDR/v1/jobs")
echo "quota:    $OVER"
grep -q '"code":"quota_exceeded"' <<<"$OVER" || { echo "FAIL: quota rejection lacks code: $OVER"; exit 1; }
grep -qi '^HTTP/.* 429' "$HDRS" || { echo "FAIL: quota rejection not a 429"; cat "$HDRS"; exit 1; }
grep -qi '^Retry-After:' "$HDRS" || { echo "FAIL: quota 429 without Retry-After"; cat "$HDRS"; exit 1; }
rm -f "$HDRS"
# ...unless the client opted into degradation: then it gets a heuristic-only
# answer (optimal=false) instead of the 429.
DEG=$(curl -sf -X POST -H 'Authorization: Bearer smoke-key' \
  -d "{\"matrix\":\"$GAPM\",\"degrade\":true}" "http://$ADDR/v1/jobs")
DEG_ID=$(sed -n 's/.*"id":"\([^"]*\)".*/\1/p' <<<"$DEG")
for _ in $(seq 1 100); do
  DJ=$(curl -sf "http://$ADDR/v1/jobs/$DEG_ID" -H 'Authorization: Bearer smoke-key')
  grep -q '"state":"done"' <<<"$DJ" && break
  sleep 0.1
done
echo "degraded: $DJ"
grep -q '"degraded":true' <<<"$DJ" || { echo "FAIL: shed job not marked degraded: $DJ"; exit 1; }
grep -q '"optimal":false' <<<"$DJ" || { echo "FAIL: shed job claims optimality: $DJ"; exit 1; }
# Free the quota-filling job so it does not burn CPU into the next phase.
curl -sf -X DELETE "http://$ADDR/v1/jobs/$QUOTA_JOB_ID" -H 'Authorization: Bearer smoke-key' >/dev/null

# Crash recovery: kill -9 (no drain, no flush beyond the write-through),
# corrupt the WAL, restart on the same store directory. The last record
# (the raced 8x8) gets a byte flipped — its CRC must fail and only it may
# be dropped — and a garbage tail simulates a torn final write.
kill -9 $PID
wait $PID 2>/dev/null || true
WAL="$STORE/wal.log"
[ -s "$WAL" ] || { echo "FAIL: no WAL written at $WAL"; exit 1; }
SIZE=$(wc -c <"$WAL")
printf '\xff' | dd of="$WAL" bs=1 seek=$((SIZE - 1)) conv=notrunc 2>/dev/null
printf 'torn-tail-garbage' >>"$WAL"

LOG2=$(mktemp /tmp/ebmfd-smoke.XXXXXX.log)
/tmp/ebmfd-smoke -addr 127.0.0.1:0 -store "$STORE" >"$LOG2" 2>&1 &
PID=$!
trap 'kill $PID 2>/dev/null || true; rm -rf "$STORE"' EXIT

ADDR=
for _ in $(seq 1 100); do
  ADDR=$(sed -n 's/.*listening on \(127\.0\.0\.1:[0-9]*\).*/\1/p' "$LOG2" | head -1)
  [ -n "$ADDR" ] && break
  if ! kill -0 "$PID" 2>/dev/null; then
    echo "FAIL: ebmfd exited during crash recovery; log follows"
    cat "$LOG2"
    exit 1
  fi
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "FAIL: no listen address after restart; log follows"; cat "$LOG2"; exit 1; }
for _ in $(seq 1 100); do
  curl -sf "http://$ADDR/v1/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done

# The permuted Fig. 1b must be a warm hit on a cold process: its record
# survived the crash and the corruption of its neighbour.
R5=$(curl -sf -X POST -d "{\"matrix\":\"$FIG1B_PERM\"}" "http://$ADDR/v1/solve")
echo "recovered: $R5"
grep -q '"depth":5' <<<"$R5" || { echo "FAIL: post-crash solve depth != 5"; exit 1; }
grep -q '"cache_hit":true' <<<"$R5" || { echo "FAIL: post-crash permuted resubmission re-solved"; cat "$LOG2"; exit 1; }

METRICS=$(curl -sf "http://$ADDR/v1/metrics")
grep -q '"store":{' <<<"$METRICS" || { echo "FAIL: metrics missing store section"; exit 1; }
grep -q '"skipped_corrupt":1' <<<"$METRICS" || { echo "FAIL: corrupted record not skipped exactly once"; echo "$METRICS"; exit 1; }
grep -Eq '"truncated_bytes":[1-9]' <<<"$METRICS" || { echo "FAIL: damaged bytes not discarded"; echo "$METRICS"; exit 1; }
grep -qv '"loaded_wal":0' <<<"$METRICS" || { echo "FAIL: no records recovered from the WAL"; exit 1; }

# Graceful drain: healthz flips to 503, the store is flushed, and the
# process exits cleanly.
kill -TERM $PID
for _ in $(seq 1 100); do
  kill -0 $PID 2>/dev/null || break
  sleep 0.1
done
if kill -0 $PID 2>/dev/null; then
  echo "FAIL: ebmfd did not drain within 10s; log follows"
  cat "$LOG2"
  exit 1
fi
grep -q 'store flushed' "$LOG2" || { echo "FAIL: drain did not flush the store; log follows"; cat "$LOG2"; exit 1; }

# --- Durable jobs: kill -9 mid-job, restart, same IDs, webhook, no re-solve
go build -o /tmp/webhooksink-smoke ./cmd/webhooksink
HOOKOUT=$(mktemp /tmp/ebmfd-smoke.XXXXXX.hooks)
HOOKLOG=$(mktemp /tmp/ebmfd-smoke.XXXXXX.hooklog)
# The sink 500s the first delivery, so success proves the retry path.
/tmp/webhooksink-smoke -addr 127.0.0.1:0 -out "$HOOKOUT" -fail-first 1 >"$HOOKLOG" 2>&1 &
HOOKPID=$!
JOURNAL=$(mktemp -d /tmp/ebmfd-smoke-journal.XXXXXX)
LOG3=$(mktemp /tmp/ebmfd-smoke.XXXXXX.log)
trap 'kill $PID $HOOKPID 2>/dev/null || true; rm -rf "$STORE" "$JOURNAL"' EXIT

HOOKADDR=
for _ in $(seq 1 100); do
  HOOKADDR=$(sed -n 's/.*listening on \(127\.0\.0\.1:[0-9]*\).*/\1/p' "$HOOKLOG" | head -1)
  [ -n "$HOOKADDR" ] && break
  sleep 0.1
done
[ -n "$HOOKADDR" ] || { echo "FAIL: webhooksink never came up"; cat "$HOOKLOG"; exit 1; }

# -concurrency 1: the hard job occupies the only slot, so the second job
# (whose result the store already holds from phase one) is still queued at
# kill time.
/tmp/ebmfd-smoke -addr 127.0.0.1:0 -concurrency 1 -store "$STORE" \
  -job-journal "$JOURNAL" -webhook-allow 127.0.0.1 >"$LOG3" 2>&1 &
PID=$!
ADDR=
for _ in $(seq 1 100); do
  ADDR=$(sed -n 's/.*listening on \(127\.0\.0\.1:[0-9]*\).*/\1/p' "$LOG3" | head -1)
  [ -n "$ADDR" ] && break
  if ! kill -0 "$PID" 2>/dev/null; then
    echo "FAIL: ebmfd with -job-journal exited during startup; log follows"
    cat "$LOG3"; exit 1
  fi
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "FAIL: no listen address with -job-journal; log follows"; cat "$LOG3"; exit 1; }

HARD_JOB=$(curl -sf -X POST -d "{\"matrix\":\"$HARD\"}" "http://$ADDR/v1/jobs")
HARD_ID=$(sed -n 's/.*"id":"\([^"]*\)".*/\1/p' <<<"$HARD_JOB")
HOOK_JOB=$(curl -sf -X POST \
  -d "{\"matrix\":\"$FIG1B_PERM\",\"callback_url\":\"http://$HOOKADDR/hook\"}" "http://$ADDR/v1/jobs")
HOOK_ID=$(sed -n 's/.*"id":"\([^"]*\)".*/\1/p' <<<"$HOOK_JOB")
[ -n "$HARD_ID" ] && [ -n "$HOOK_ID" ] || { echo "FAIL: journaled submits returned no IDs"; exit 1; }

kill -9 $PID
wait $PID 2>/dev/null || true

LOG4=$(mktemp /tmp/ebmfd-smoke.XXXXXX.log)
/tmp/ebmfd-smoke -addr 127.0.0.1:0 -concurrency 1 -store "$STORE" \
  -job-journal "$JOURNAL" -webhook-allow 127.0.0.1 >"$LOG4" 2>&1 &
PID=$!
ADDR=
for _ in $(seq 1 100); do
  ADDR=$(sed -n 's/.*listening on \(127\.0\.0\.1:[0-9]*\).*/\1/p' "$LOG4" | head -1)
  [ -n "$ADDR" ] && break
  if ! kill -0 "$PID" 2>/dev/null; then
    echo "FAIL: ebmfd exited during journal replay; log follows"
    cat "$LOG4"; exit 1
  fi
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "FAIL: no listen address after journal replay; log follows"; cat "$LOG4"; exit 1; }
grep -Eq 'journal-jobs=[1-9]' "$LOG4" || { echo "FAIL: restart loaded no journal records"; cat "$LOG4"; exit 1; }

# Both journaled jobs must reach terminal under their ORIGINAL IDs — a
# poll that 404s here is the bug this phase pins down.
for _ in $(seq 1 300); do
  HJ=$(curl -sf "http://$ADDR/v1/jobs/$HARD_ID") || { echo "FAIL: replayed hard job $HARD_ID not found"; cat "$LOG4"; exit 1; }
  grep -q '"state":"done"' <<<"$HJ" && break
  sleep 0.1
done
grep -q '"state":"done"' <<<"$HJ" || { echo "FAIL: replayed hard job never finished: $HJ"; exit 1; }
grep -q '"recovered":true' <<<"$HJ" || { echo "FAIL: replayed hard job not marked recovered: $HJ"; exit 1; }
for _ in $(seq 1 300); do
  QJ=$(curl -sf "http://$ADDR/v1/jobs/$HOOK_ID") || { echo "FAIL: replayed stored job $HOOK_ID not found"; cat "$LOG4"; exit 1; }
  grep -q '"state":"done"' <<<"$QJ" && break
  sleep 0.1
done
echo "replayed: $QJ"
grep -q '"recovered":true' <<<"$QJ" || { echo "FAIL: replayed job not marked recovered: $QJ"; exit 1; }
# The proved result came back from the durable store, not a re-solve.
grep -q '"cache_hit":true' <<<"$QJ" || { echo "FAIL: replayed job re-solved a stored result: $QJ"; exit 1; }
grep -q '"depth":5' <<<"$QJ" || { echo "FAIL: replayed job depth != 5: $QJ"; exit 1; }

# The webhook fires after the restart, surviving the sink's injected
# first-delivery failure: at-least-once, across both a crash and a 500.
HOOKED=
for _ in $(seq 1 300); do
  if grep -q "$HOOK_ID" "$HOOKOUT" 2>/dev/null; then HOOKED=1; break; fi
  sleep 0.1
done
[ -n "$HOOKED" ] || { echo "FAIL: webhook never delivered; sink log follows"; cat "$HOOKLOG"; cat "$LOG4"; exit 1; }
grep -q '"state":"done"' "$HOOKOUT" || { echo "FAIL: webhook body not terminal"; cat "$HOOKOUT"; exit 1; }
METRICS=$(curl -sf "http://$ADDR/v1/metrics")
grep -Eq '"delivered":[1-9]' <<<"$METRICS" || { echo "FAIL: metrics count no webhook delivery"; echo "$METRICS"; exit 1; }

kill -TERM $PID
for _ in $(seq 1 100); do
  kill -0 $PID 2>/dev/null || break
  sleep 0.1
done
kill -0 $PID 2>/dev/null && { echo "FAIL: journaled daemon did not drain; log follows"; cat "$LOG4"; exit 1; }
grep -q 'journal flushed' "$LOG4" || { echo "FAIL: drain did not flush the journal; log follows"; cat "$LOG4"; exit 1; }
kill $HOOKPID 2>/dev/null || true

trap - EXIT
rm -rf "$STORE" "$JOURNAL"
echo "PASS: server smoke (free port, cold solve, permuted cache hit, portfolio, traces, jobs+SSE, cancel, quota codes, degrade, crash recovery, durable jobs kill -9 replay, webhook at-least-once, drain)"
