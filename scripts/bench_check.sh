#!/usr/bin/env bash
# CI bench gate: run the bench smoke (-benchtime=3x keeps it minutes, not
# hours) and compare the measured ns/op against the committed BENCH_*.json
# baselines with cmd/benchcheck. Fails on a >25% geomean regression (or
# BENCH_MAX_REGRESSION, for runners with known different baselines) and
# prints the comparison table either way.
set -euo pipefail
cd "$(dirname "$0")/.."

MAX_REGRESSION="${BENCH_MAX_REGRESSION:-25}"
OUT=$(mktemp /tmp/bench-gate.XXXXXX.txt)

echo "bench gate: running bench smoke (-benchtime=3x)..."
go test -run '^$' -bench . -benchtime=3x ./... | tee "$OUT"

echo
echo "bench gate: comparing against BENCH_solver.json + BENCH_server.json"
go run ./cmd/benchcheck -max-regression "$MAX_REGRESSION" <"$OUT"
