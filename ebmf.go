// Package ebmf is the public API of this reproduction of "Depth-Optimal
// Addressing of 2D Qubit Array with 1D Controls Based on Exact Binary Matrix
// Factorization" (Tan, Ping, Cong — DATE 2024).
//
// The central problem: given a binary pattern matrix M of qubits to address
// on a 2D array with row/column (AOD) controls, partition the 1s of M into
// the minimum number of combinatorial rectangles — each rectangle is one
// addressing shot, so the partition size is the schedule depth. The minimum
// equals the binary rank r_B(M), the smallest r with M = H·W for binary H, W
// (addition over ℝ).
//
// Quick start:
//
//	m := ebmf.MustParse("101\n011\n111")
//	res, err := ebmf.Solve(m, ebmf.DefaultOptions())
//	// res.Partition is a depth-optimal rectangle partition when res.Optimal.
//	sched := ebmf.CompileSchedule(res.Partition)
//	err = sched.Verify(ebmf.NewArray(m.Rows(), m.Cols()))
//
// The heavy lifting lives in the internal packages: bitmat (bitset linear
// algebra), rowpack (the paper's Algorithm 2 heuristic), sat + encode (a
// from-scratch arena-based CDCL solver replacing z3, with the paper's Eq.-4
// constraints compiled to CNF), core (the SAP loop, Algorithm 1), fooling
// (lower bounds), aod (pulse-schedule simulation), ftqc (Section V),
// benchgen + eval (the paper's benchmark suites and Table I / Figure 4
// harness), and complete (the don't-care extension).
//
// Solving runs as a staged pipeline: Preprocess (compression) → Decompose
// (the matrix splits into the connected components of its bipartite
// row-column graph; binary rank is additive over them) → per-block SAP on a
// bounded worker pool (Options.Parallelism, default GOMAXPROCS) → Recombine
// (partition union, certificate stitching). SolveContext threads a
// context.Context through the pipeline into the SAT search loop, so a
// canceled request stops mid-search and still returns the best valid
// partition found.
//
// For serving workloads, NewCache wraps the pipeline in a canonicalizing
// result cache: Fingerprint hashes matrices up to row/column permutation and
// duplication, so resubmitted patterns — the common case in addressing
// traffic — are answered in O(1) with the cached partition lifted into the
// request's index space, and concurrent identical requests share one solve.
// cmd/ebmfd serves the cache over an HTTP JSON API (internal/server) with
// request batching and admission control.
//
// The SAP loop solves incrementally: the decision formula is encoded once
// at the heuristic upper bound and each depth bound is tried by switching
// rectangle slots off with selector assumptions, so learnt clauses, VSIDS
// activities and saved phases carry over from bound to bound instead of
// re-encoding per depth. The one-hot encoding breaks the k! rectangle-slot
// permutation symmetry by ordering slots by first-row index. Options
// exposes the ablation knobs — DisableDecomposition (monolithic solve),
// DisableSymmetryBreaking (slot-ordering clauses off), DisableIncremental
// (unit-clause narrowing), DisablePhaseSaving, and LBDCap (glue-clause
// retention threshold) — alongside the existing encoding, budget and
// heuristic settings; see DESIGN.md for the measured trade-offs.
package ebmf

import (
	"context"
	"math/rand"

	"repro/internal/aod"
	"repro/internal/bitmat"
	"repro/internal/core"
	"repro/internal/fooling"
	"repro/internal/rect"
	"repro/internal/rowpack"
	"repro/internal/solvecache"
)

// Matrix is a dense binary matrix (see internal/bitmat).
type Matrix = bitmat.Matrix

// Vec is a packed binary vector.
type Vec = bitmat.Vec

// Rect is a combinatorial rectangle (row set × column set).
type Rect = rect.Rect

// Partition is a rectangle partition of a matrix — an EBMF.
type Partition = rect.Partition

// Result is the outcome of a Solve call, including the partition, lower
// bounds, optimality certificate, and stage timings.
type Result = core.Result

// Options configures Solve; see DefaultOptions.
type Options = core.Options

// PackOptions configures the row-packing heuristic.
type PackOptions = rowpack.Options

// Schedule is an AOD pulse schedule compiled from a partition.
type Schedule = aod.Schedule

// Shot is one AOD configuration (active row and column tones).
type Shot = aod.Shot

// Array is a 2D atom array, possibly with vacancies.
type Array = aod.Array

// Certificate says how a result's optimality was established.
type Certificate = core.Certificate

// Certificates.
const (
	CertNone    = core.CertNone
	CertRank    = core.CertRank
	CertFooling = core.CertFooling
	CertUnsat   = core.CertUnsat
)

// New returns an all-zero rows×cols matrix.
func New(rows, cols int) *Matrix { return bitmat.New(rows, cols) }

// FromRows builds a matrix from 0/1 int rows.
func FromRows(rows [][]int) *Matrix { return bitmat.FromRows(rows) }

// Parse reads a matrix from lines of '0'/'1' characters.
func Parse(s string) (*Matrix, error) { return bitmat.Parse(s) }

// MustParse is Parse that panics on error.
func MustParse(s string) *Matrix { return bitmat.MustParse(s) }

// Random returns a random matrix with the given occupancy.
func Random(rng *rand.Rand, rows, cols int, occupancy float64) *Matrix {
	return bitmat.Random(rng, rows, cols, occupancy)
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix { return bitmat.Identity(n) }

// AllOnes returns the all-ones matrix.
func AllOnes(rows, cols int) *Matrix { return bitmat.AllOnes(rows, cols) }

// Tensor returns the Kronecker product a ⊗ b.
func Tensor(a, b *Matrix) *Matrix { return bitmat.Tensor(a, b) }

// DefaultOptions returns the solver configuration used throughout the
// paper's evaluation at moderate effort.
func DefaultOptions() Options { return core.DefaultOptions() }

// Solve runs SAP (Algorithm 1): row packing for a fast upper bound, then
// SAT-backed narrowing toward the rank lower bound. The returned partition
// is always valid; Result.Optimal reports whether its depth is proved to be
// the binary rank.
func Solve(m *Matrix, opts Options) (*Result, error) { return core.Solve(m, opts) }

// SolveContext is Solve with cancellation: when ctx is canceled the SAT
// stage stops mid-search — the context is polled inside the CDCL propagate
// loop, not just between depth bounds — and the best partition found so far
// is returned with Result.Canceled set. Decomposed blocks run concurrently
// under Options.Parallelism; results are deterministic regardless of the
// setting.
func SolveContext(ctx context.Context, m *Matrix, opts Options) (*Result, error) {
	return core.SolveContext(ctx, m, opts)
}

// BinaryRank computes r_B(m) exactly, with no budgets (exponential worst
// case; intended for small matrices).
func BinaryRank(m *Matrix) (int, error) { return core.BinaryRank(m) }

// Fingerprint returns the canonical fingerprint of m: a hash that is equal
// for any two matrices related by row/column permutation, duplicated
// rows/columns or zero padding (the reductions that preserve the rectangle
// structure and hence the binary rank), and different otherwise. exact is
// false when canonicalization exceeded its work budget on a highly
// self-similar matrix; such hashes are deterministic but not
// permutation-invariant and are not usable as cache keys.
func Fingerprint(m *Matrix) (hash string, exact bool) {
	fp := bitmat.ComputeFingerprint(m)
	return fp.Hash, fp.Exact
}

// SolveCache is a fingerprint-keyed result cache with singleflight
// deduplication in front of the solve pipeline: resubmissions of a pattern —
// permuted, row/column-duplicated, or zero-padded — are answered from cache
// with the partition lifted into the request's index space, and N concurrent
// equivalent requests cost one pipeline run. Only proved-optimal results are
// stored (they are budget-independent facts about the matrix). The ebmfd
// service (internal/server, cmd/ebmfd) serves this cache over HTTP.
type SolveCache = solvecache.Cache

// CacheStats is a snapshot of a SolveCache's counters.
type CacheStats = solvecache.Stats

// NewCache returns a SolveCache holding up to capacity results (a default
// capacity when capacity <= 0). Solve through it with
// (*SolveCache).Solve / (*SolveCache).SolveContext, which mirror the
// package-level Solve / SolveContext contracts and additionally set
// Result.CacheHit on cache-served answers.
func NewCache(capacity int) *SolveCache { return solvecache.New(capacity) }

// CertifyDepth independently certifies that depth is the minimum partition
// depth of m: it rebuilds the depth-1 decision formula from scratch, solves
// it with DRAT proof logging, and replays the UNSAT proof through a
// reverse-unit-propagation checker (or uses the arithmetic rank bound when
// it already suffices). Nothing from prior solving runs is trusted.
func CertifyDepth(m *Matrix, depth int) error { return core.CertifyDepth(m, depth) }

// Pack runs only the row-packing heuristic (Algorithm 2) and returns the
// best partition over the configured trials.
func Pack(m *Matrix, opts PackOptions) *Partition { return rowpack.Pack(m, opts) }

// DefaultPackOptions mirror the paper's heuristic setting (100 shuffled
// trials, both orientations).
func DefaultPackOptions() PackOptions { return rowpack.DefaultOptions() }

// Trivial returns the paper's trivial partition (consolidated single rows or
// columns, whichever is smaller).
func Trivial(m *Matrix) *Partition { return rowpack.Trivial(m) }

// FoolingSet returns a maximum fooling set of m when the branch-and-bound
// search finishes within nodeBudget (≤ 0 for unlimited), or the best found.
// Its size lower-bounds the binary rank.
func FoolingSet(m *Matrix, nodeBudget int64) (set [][2]int, exact bool) {
	return fooling.Exact(m, nodeBudget)
}

// CompileSchedule converts a partition into an AOD pulse schedule, one shot
// per rectangle.
func CompileSchedule(p *Partition) *Schedule { return aod.Compile(p) }

// NewArray returns a fully loaded atom array.
func NewArray(rows, cols int) *Array { return aod.NewArray(rows, cols) }

// NewArrayWithVacancies returns an array with the given occupied sites.
func NewArrayWithVacancies(atoms *Matrix) *Array { return aod.NewArrayWithVacancies(atoms) }
