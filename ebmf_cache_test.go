package ebmf_test

import (
	"math/rand"
	"testing"

	ebmf "repro"
)

// TestPublicFingerprintAndCache exercises the serving-layer public API: the
// fingerprint is permutation-invariant and the cache answers permuted
// resubmissions without re-solving.
func TestPublicFingerprintAndCache(t *testing.T) {
	m := ebmf.MustParse("101100\n010011\n101010\n010101\n111000\n000111")
	h1, exact := ebmf.Fingerprint(m)
	if !exact || h1 == "" {
		t.Fatalf("fingerprint: %q exact=%v", h1, exact)
	}

	rng := rand.New(rand.NewSource(1))
	rp, cp := rng.Perm(m.Rows()), rng.Perm(m.Cols())
	p := ebmf.New(m.Rows(), m.Cols())
	m.ForEachOne(func(i, j int) { p.Set(rp[i], cp[j], true) })
	h2, _ := ebmf.Fingerprint(p)
	if h2 != h1 {
		t.Fatalf("permuted fingerprint differs")
	}

	c := ebmf.NewCache(0)
	r1, err := c.Solve(m, ebmf.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Solve(p, ebmf.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !r2.CacheHit || r2.Depth != r1.Depth {
		t.Fatalf("resubmission: hit=%v depth=%d, want true/%d", r2.CacheHit, r2.Depth, r1.Depth)
	}
	if err := r2.Partition.Validate(); err != nil {
		t.Fatalf("lifted partition invalid: %v", err)
	}
	var st ebmf.CacheStats = c.Stats()
	if st.Solves != 1 {
		t.Fatalf("cache ran %d solves, want 1", st.Solves)
	}
}
