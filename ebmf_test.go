package ebmf_test

import (
	"context"
	"math/rand"
	"testing"

	ebmf "repro"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	m := ebmf.MustParse("101\n011\n111")
	res, err := ebmf.Solve(m, ebmf.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal {
		t.Fatal("small instance must be decided")
	}
	if err := res.Partition.Validate(); err != nil {
		t.Fatal(err)
	}
	sched := ebmf.CompileSchedule(res.Partition)
	if err := sched.Verify(ebmf.NewArray(3, 3)); err != nil {
		t.Fatal(err)
	}
	if sched.Depth() != res.Depth {
		t.Fatal("schedule depth mismatch")
	}
}

func TestFacadeConstructors(t *testing.T) {
	if ebmf.New(2, 3).Rows() != 2 {
		t.Fatal("New")
	}
	if ebmf.Identity(3).Ones() != 3 {
		t.Fatal("Identity")
	}
	if ebmf.AllOnes(2, 2).Ones() != 4 {
		t.Fatal("AllOnes")
	}
	if ebmf.FromRows([][]int{{1, 0}}).Get(0, 0) != true {
		t.Fatal("FromRows")
	}
	if ebmf.Tensor(ebmf.Identity(2), ebmf.AllOnes(1, 1)).Ones() != 2 {
		t.Fatal("Tensor")
	}
	rng := rand.New(rand.NewSource(1))
	if m := ebmf.Random(rng, 5, 5, 1.0); m.Ones() != 25 {
		t.Fatal("Random at occupancy 1")
	}
	if _, err := ebmf.Parse("10\n01"); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeHeuristics(t *testing.T) {
	m := ebmf.MustParse("1100\n1100\n0011")
	if p := ebmf.Trivial(m); p.Depth() != 2 {
		t.Fatalf("trivial depth %d", p.Depth())
	}
	if p := ebmf.Pack(m, ebmf.DefaultPackOptions()); p.Depth() != 2 {
		t.Fatalf("pack depth %d", p.Depth())
	}
}

func TestFacadeFoolingSet(t *testing.T) {
	set, exact := ebmf.FoolingSet(ebmf.Identity(4), 0)
	if !exact || len(set) != 4 {
		t.Fatalf("fooling set %v exact=%v", set, exact)
	}
}

func TestFacadeBinaryRank(t *testing.T) {
	r, err := ebmf.BinaryRank(ebmf.MustParse("110\n011\n111"))
	if err != nil {
		t.Fatal(err)
	}
	if r != 3 {
		t.Fatalf("r_B = %d, want 3", r)
	}
}

func TestFacadeVacancies(t *testing.T) {
	atoms := ebmf.MustParse("10\n01")
	arr := ebmf.NewArrayWithVacancies(atoms)
	if arr.HasAtom(0, 1) || !arr.HasAtom(1, 1) {
		t.Fatal("vacancy mask wrong")
	}
}

func TestFacadeSolveContext(t *testing.T) {
	// Two independent components: the pipeline decomposes and solves both.
	m := ebmf.MustParse("1100\n1100\n0011\n0010")
	opts := ebmf.DefaultOptions()
	opts.Parallelism = 2
	res, err := ebmf.SolveContext(context.Background(), m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal || res.Depth != 3 || res.Blocks != 2 {
		t.Fatalf("want optimal depth 3 over 2 blocks, got depth %d blocks %d optimal %v",
			res.Depth, res.Blocks, res.Optimal)
	}
	if err := res.Partition.Validate(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err = ebmf.SolveContext(ctx, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Partition.Validate(); err != nil {
		t.Fatalf("canceled solve must still return a valid partition: %v", err)
	}
}

func TestFacadeCertifyDepth(t *testing.T) {
	m := ebmf.MustParse("101100\n010011\n101010\n010101\n111000\n000111")
	if err := ebmf.CertifyDepth(m, 5); err != nil {
		t.Fatal(err)
	}
	if err := ebmf.CertifyDepth(m, 6); err == nil {
		t.Fatal("suboptimal depth certified")
	}
}
