package solvecache

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bitmat"
	"repro/internal/core"
	"repro/internal/store"
)

func attachedCache(t *testing.T, dir string) *Cache {
	t.Helper()
	st, err := store.Open(dir, store.Options{Sync: store.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	c := New(0)
	c.AttachStore(st)
	return c
}

// A solve, a process restart (new Cache over the same store dir), and a
// permuted resubmission: the restarted cache must serve the result from the
// durable tier without a pipeline run.
func TestDurableWarmRestart(t *testing.T) {
	dir := t.TempDir()
	m := bitmat.MustParse(fig1b)
	opts := core.DefaultOptions()

	c1 := attachedCache(t, dir)
	r1, err := c1.Solve(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Optimal {
		t.Fatalf("seed solve not optimal: %+v", r1)
	}
	c1.Store().Close()

	// "Restart": a fresh cache and store over the same directory.
	c2 := attachedCache(t, dir)
	var solves atomic.Int64
	c2.solveFn = func(ctx context.Context, m *bitmat.Matrix, opts core.Options) (*core.Result, error) {
		solves.Add(1)
		return core.SolveContext(ctx, m, opts)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 4; trial++ {
		p := permute(m, rng)
		r2, err := c2.Solve(p, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !r2.CacheHit || !r2.Optimal || r2.Depth != r1.Depth {
			t.Fatalf("trial %d: hit=%v optimal=%v depth=%d, want warm hit at depth %d",
				trial, r2.CacheHit, r2.Optimal, r2.Depth, r1.Depth)
		}
		if err := r2.Partition.Validate(); err != nil {
			t.Fatalf("trial %d: lifted partition invalid: %v", trial, err)
		}
	}
	if n := solves.Load(); n != 0 {
		t.Fatalf("restarted cache ran %d pipeline solves, want 0", n)
	}
	s := c2.Stats()
	if s.DurableHits != 1 {
		t.Fatalf("durable hits = %d, want 1 (then LRU)", s.DurableHits)
	}
	if s.Hits != 3 {
		t.Fatalf("LRU hits after promotion = %d, want 3", s.Hits)
	}
}

// An LRU eviction must not cost a re-solve when the store still holds the
// record.
func TestDurableBackfillsEviction(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{Sync: store.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	c := New(1) // capacity 1: the second distinct matrix evicts the first
	c.AttachStore(st)
	opts := core.DefaultOptions()

	m1 := bitmat.MustParse(fig1b)
	m2 := bitmat.MustParse("11\n01")
	if _, err := c.Solve(m1, opts); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Solve(m2, opts); err != nil {
		t.Fatal(err)
	}
	var solves atomic.Int64
	c.solveFn = func(ctx context.Context, m *bitmat.Matrix, opts core.Options) (*core.Result, error) {
		solves.Add(1)
		return core.SolveContext(ctx, m, opts)
	}
	r, err := c.Solve(m1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !r.CacheHit || solves.Load() != 0 {
		t.Fatalf("evicted entry re-solved (hit=%v solves=%d), want durable backfill", r.CacheHit, solves.Load())
	}
	// Two evictions: m2 displaced m1, then promoting m1 displaced m2.
	if s := c.Stats(); s.DurableHits != 1 || s.Evictions != 2 {
		t.Fatalf("stats = %+v, want 1 durable hit and 2 evictions", s)
	}
}

// A leader whose pipeline panics must not wedge followers: they re-elect and
// solve. The panic itself propagates only to the leader's request.
func TestLeaderPanicFollowersReElect(t *testing.T) {
	c := New(0)
	m := bitmat.MustParse(fig1b)
	opts := core.DefaultOptions()

	leaderIn := make(chan struct{})
	release := make(chan struct{})
	var calls atomic.Int64
	c.solveFn = func(ctx context.Context, m *bitmat.Matrix, opts core.Options) (*core.Result, error) {
		if calls.Add(1) == 1 {
			close(leaderIn)
			<-release
			panic("injected pipeline panic")
		}
		return core.SolveContext(ctx, m, opts)
	}

	panicked := make(chan any, 1)
	go func() {
		defer func() { panicked <- recover() }()
		c.Solve(m, opts)
	}()
	<-leaderIn

	const followers = 4
	var wg sync.WaitGroup
	results := make([]*core.Result, followers)
	errs := make([]error, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.Solve(m, opts)
		}(i)
	}
	// Give followers time to park on the flight, then kill the leader.
	time.Sleep(20 * time.Millisecond)
	close(release)

	if p := <-panicked; p == nil {
		t.Fatal("leader's panic did not propagate to the leader")
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("followers wedged after leader panic")
	}
	for i := 0; i < followers; i++ {
		if errs[i] != nil {
			t.Fatalf("follower %d: %v", i, errs[i])
		}
		if !results[i].Optimal {
			t.Fatalf("follower %d got non-optimal result after re-election", i)
		}
	}
	// Exactly one re-elected leader solved; the rest hit the LRU or shared.
	if n := calls.Load(); n != 2 {
		t.Fatalf("pipeline calls = %d, want 2 (panicking leader + one re-election)", n)
	}
}

// A follower that waits out an abandoned flight must be able to satisfy its
// request from the durable tier without a pipeline run: seed the store while
// the doomed leader is in flight.
func TestLeaderPanicFollowerHitsDurable(t *testing.T) {
	dir := t.TempDir()
	m := bitmat.MustParse(fig1b)
	opts := core.DefaultOptions()

	// First, produce a durable record with a throwaway cache.
	warm := attachedCache(t, dir)
	if _, err := warm.Solve(m, opts); err != nil {
		t.Fatal(err)
	}
	warm.Store().Close()

	c := attachedCache(t, dir)
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	var calls atomic.Int64
	c.solveFn = func(ctx context.Context, m *bitmat.Matrix, opts core.Options) (*core.Result, error) {
		calls.Add(1)
		close(leaderIn)
		<-release
		panic("injected pipeline panic")
	}
	// The leader must not see the durable record, or it would never lead.
	// Empty its view first, then restore: simplest is to lead on a cold
	// cache whose durable tier gains the record mid-flight. Detach, lead,
	// re-attach before the followers re-elect.
	st := c.Store()
	c.AttachStore(nil)

	panicked := make(chan any, 1)
	go func() {
		defer func() { panicked <- recover() }()
		c.Solve(m, opts)
	}()
	<-leaderIn

	follower := make(chan error, 1)
	var fres *core.Result
	go func() {
		var err error
		fres, err = c.Solve(m, opts)
		follower <- err
	}()
	time.Sleep(20 * time.Millisecond)
	c.AttachStore(st)
	close(release)

	if p := <-panicked; p == nil {
		t.Fatal("leader's panic vanished")
	}
	select {
	case err := <-follower:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("follower wedged")
	}
	if !fres.CacheHit || !fres.Optimal {
		t.Fatalf("follower result hit=%v optimal=%v, want durable hit", fres.CacheHit, fres.Optimal)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("pipeline calls = %d, want 1 (only the panicking leader)", n)
	}
	if s := c.Stats(); s.DurableHits != 1 {
		t.Fatalf("durable hits = %d, want 1", s.DurableHits)
	}
}

// A leader that returns an error releases followers with that error (no
// abandonment: an error is a verdict).
func TestLeaderErrorSharedWithFollowers(t *testing.T) {
	c := New(0)
	m := bitmat.MustParse(fig1b)
	opts := core.DefaultOptions()
	injected := errors.New("injected solve error")

	leaderIn := make(chan struct{})
	release := make(chan struct{})
	var calls atomic.Int64
	c.solveFn = func(ctx context.Context, m *bitmat.Matrix, opts core.Options) (*core.Result, error) {
		if calls.Add(1) == 1 {
			close(leaderIn)
			<-release
			return nil, injected
		}
		return core.SolveContext(ctx, m, opts)
	}

	leadErr := make(chan error, 1)
	go func() {
		_, err := c.Solve(m, opts)
		leadErr <- err
	}()
	<-leaderIn
	folErr := make(chan error, 1)
	go func() {
		_, err := c.Solve(m, opts)
		folErr <- err
	}()
	time.Sleep(20 * time.Millisecond)
	close(release)

	if err := <-leadErr; !errors.Is(err, injected) {
		t.Fatalf("leader error = %v", err)
	}
	if err := <-folErr; !errors.Is(err, injected) {
		t.Fatalf("follower error = %v, want the leader's", err)
	}
}

// Seed injects a proved-optimal canonical result into both tiers; a
// permuted resubmission hits without any pipeline run — the replication
// fill path end to end.
func TestSeedServesPermutedResubmission(t *testing.T) {
	dir := t.TempDir()
	m := bitmat.MustParse(fig1b)
	opts := core.DefaultOptions()

	// Compute a canonical result out of band.
	fp := bitmat.ComputeFingerprint(m)
	canonRes, err := core.SolveContext(context.Background(), fp.Canonical, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !canonRes.Optimal {
		t.Fatal("canonical solve not optimal")
	}

	c := attachedCache(t, dir)
	var solves atomic.Int64
	c.solveFn = func(ctx context.Context, m *bitmat.Matrix, opts core.Options) (*core.Result, error) {
		solves.Add(1)
		return core.SolveContext(ctx, m, opts)
	}
	if !c.Seed(fp.Hash, canonRes) {
		t.Fatal("Seed rejected a proved-optimal result")
	}
	if c.Seed(fp.Hash, canonRes) {
		t.Fatal("duplicate Seed reported as stored")
	}
	heur := &core.Result{Partition: canonRes.Partition, Depth: canonRes.Depth}
	if c.Seed(fp.Hash, heur) {
		t.Fatal("Seed accepted a non-optimal result")
	}

	p := permute(m, rand.New(rand.NewSource(3)))
	r, err := c.Solve(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !r.CacheHit || !r.Optimal || solves.Load() != 0 {
		t.Fatalf("seeded entry missed: hit=%v optimal=%v solves=%d", r.CacheHit, r.Optimal, solves.Load())
	}
	if s := c.Stats(); s.Seeds != 1 {
		t.Fatalf("seeds = %d, want 1", s.Seeds)
	}

	// The seed is durable: a restart serves it too.
	c.Store().Close()
	c2 := attachedCache(t, dir)
	c2.solveFn = func(ctx context.Context, m *bitmat.Matrix, opts core.Options) (*core.Result, error) {
		t.Error("restarted cache re-solved a seeded matrix")
		return core.SolveContext(ctx, m, opts)
	}
	r2, err := c2.Solve(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.CacheHit {
		t.Fatal("seed did not survive restart")
	}
}

// A durable record corrupted in a way that survives framing (wrong depth
// metadata, bogus rectangles) must degrade to a miss-and-resolve, never an
// error or a wrong answer.
func TestCorruptDurableRecordDegradesToMiss(t *testing.T) {
	dir := t.TempDir()
	m := bitmat.MustParse(fig1b)
	opts := core.DefaultOptions()

	st, err := store.Open(dir, store.Options{Sync: store.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	fp := bitmat.ComputeFingerprint(m)
	// A structurally valid record whose partition does not cover the
	// matrix it claims: passes Validate, fails reconstruction's partition
	// check or the lift re-validation.
	bogus := &store.Record{
		Hash: fp.Hash, Rows: 2, Cols: 2, Depth: 1,
		Rects: []store.RectRecord{{Rows: []int{0}, Cols: []int{0}}},
	}
	if err := st.Put(bogus); err != nil {
		t.Fatal(err)
	}

	c := New(0)
	c.AttachStore(st)
	r, err := c.Solve(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r.CacheHit || !r.Optimal {
		t.Fatalf("corrupt durable record served: hit=%v optimal=%v", r.CacheHit, r.Optimal)
	}
	if s := c.Stats(); s.LiftFailures == 0 {
		t.Fatal("corrupt durable record was not counted as a lift failure")
	}
	// The bogus record was dropped and the real result written through.
	if rec, ok := st.Get(fp.Hash); !ok || rec.Depth != r.Depth {
		t.Fatalf("write-through after corrupt-record miss: %+v ok=%v", rec, ok)
	}
}
