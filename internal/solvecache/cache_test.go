package solvecache

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/bitmat"
	"repro/internal/core"
)

const fig1b = `101100
010011
101010
010101
111000
000111`

func permute(m *bitmat.Matrix, rng *rand.Rand) *bitmat.Matrix {
	rp := rng.Perm(m.Rows())
	cp := rng.Perm(m.Cols())
	out := bitmat.New(m.Rows(), m.Cols())
	m.ForEachOne(func(i, j int) { out.Set(rp[i], cp[j], true) })
	return out
}

func TestCacheHitOnResubmission(t *testing.T) {
	c := New(0)
	m := bitmat.MustParse(fig1b)
	opts := core.DefaultOptions()

	r1, err := c.Solve(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r1.CacheHit {
		t.Fatalf("first solve flagged as cache hit")
	}
	if !r1.Optimal || r1.Depth != 5 {
		t.Fatalf("fig1b: depth=%d optimal=%v, want 5/true", r1.Depth, r1.Optimal)
	}

	r2, err := c.Solve(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.CacheHit {
		t.Fatalf("identical resubmission missed the cache")
	}
	if r2.Depth != r1.Depth || !r2.Optimal {
		t.Fatalf("cached result depth=%d optimal=%v, want %d/true", r2.Depth, r2.Optimal, r1.Depth)
	}
	if r2.SATCalls != 0 || r2.Conflicts != 0 || r2.PackTime != 0 || r2.SATTime != 0 {
		t.Fatalf("cache hit did not zero solver-stage stats: %+v", r2)
	}
	if err := r2.Partition.Validate(); err != nil {
		t.Fatalf("cached partition invalid: %v", err)
	}
	if s := c.Stats(); s.Hits != 1 || s.Misses != 1 || s.Solves != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 solve", s)
	}
}

func TestCacheHitOnPermutedResubmission(t *testing.T) {
	c := New(0)
	opts := core.DefaultOptions()
	m := bitmat.MustParse(fig1b)
	r1, err := c.Solve(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 8; trial++ {
		p := permute(m, rng)
		r2, err := c.Solve(p, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !r2.CacheHit {
			t.Fatalf("trial %d: permuted resubmission missed", trial)
		}
		if r2.Depth != r1.Depth {
			t.Fatalf("trial %d: depth %d != %d", trial, r2.Depth, r1.Depth)
		}
		if r2.Partition.M != p {
			t.Fatalf("trial %d: partition not lifted onto the request matrix", trial)
		}
		if err := r2.Partition.Validate(); err != nil {
			t.Fatalf("trial %d: lifted partition invalid: %v", trial, err)
		}
	}
	if s := c.Stats(); s.Solves != 1 {
		t.Fatalf("permuted resubmissions triggered %d solves, want 1", s.Solves)
	}
}

func TestCacheHitOnDuplicatedAndPaddedResubmission(t *testing.T) {
	c := New(0)
	opts := core.DefaultOptions()
	m := bitmat.MustParse(fig1b)
	if _, err := c.Solve(m, opts); err != nil {
		t.Fatal(err)
	}
	// Duplicate every row and add zero columns: same canonical form, and the
	// lifted partition must cover the doubled matrix.
	rows := m.ToRows()
	var dup [][]int
	for _, r := range rows {
		wide := append(append([]int{0}, r...), 0)
		dup = append(dup, wide, wide)
	}
	big := bitmat.FromRows(dup)
	r, err := c.Solve(big, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !r.CacheHit {
		t.Fatalf("duplicated/padded resubmission missed the cache")
	}
	if err := r.Partition.Validate(); err != nil {
		t.Fatalf("lifted partition invalid: %v", err)
	}
	if r.Depth != 5 {
		t.Fatalf("depth = %d, want 5 (duplication preserves binary rank)", r.Depth)
	}
}

func TestCacheDoesNotStoreBudgetLimitedResults(t *testing.T) {
	c := New(0)
	opts := core.DefaultOptions()
	opts.ConflictBudget = 1 // guarantees TimedOut before optimality on fig1b
	opts.FoolingBudget = 0
	opts.Packing.Trials = 1
	opts.Packing.SkipTranspose = true
	m := bitmat.MustParse(fig1b)
	r, err := c.Solve(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r.Optimal && !r.TimedOut {
		t.Skip("budget unexpectedly sufficed; nothing to assert")
	}
	if s := c.Stats(); s.Stores != 0 {
		t.Fatalf("budget-limited result was stored: %+v", s)
	}
	r2, err := c.Solve(m, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r2.CacheHit {
		t.Fatalf("second solve hit a cache that should be empty")
	}
	if !r2.Optimal {
		t.Fatalf("unbudgeted solve not optimal")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := New(2)
	opts := core.DefaultOptions()
	ms := []*bitmat.Matrix{
		bitmat.MustParse("1"),
		bitmat.MustParse("10\n01"),
		bitmat.MustParse("110\n011"),
	}
	for _, m := range ms {
		if _, err := c.Solve(m, opts); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	if s.Entries != 2 || s.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 entries / 1 eviction", s)
	}
	// ms[0] was least recently used and must have been evicted.
	r, err := c.Solve(ms[0], opts)
	if err != nil {
		t.Fatal(err)
	}
	if r.CacheHit {
		t.Fatalf("evicted entry served as hit")
	}
	r2, err := c.Solve(ms[2], opts)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.CacheHit {
		t.Fatalf("recently used entry was evicted")
	}
}

// TestCacheEvictionOrderFollowsUse pins the LRU policy: a hit refreshes an
// entry's position, so under capacity pressure the entry evicted is the one
// least recently *used*, not the one least recently *stored*.
func TestCacheEvictionOrderFollowsUse(t *testing.T) {
	c := New(2)
	opts := core.DefaultOptions()
	a := bitmat.MustParse("1")
	b := bitmat.MustParse("10\n01")
	d := bitmat.MustParse("110\n011")
	for _, m := range []*bitmat.Matrix{a, b} {
		if _, err := c.Solve(m, opts); err != nil {
			t.Fatal(err)
		}
	}
	// Touch a (the older entry), then insert d: b must be the eviction
	// victim even though it was stored after a.
	if r, err := c.Solve(a, opts); err != nil || !r.CacheHit {
		t.Fatalf("warming hit on a: hit=%v err=%v", r != nil && r.CacheHit, err)
	}
	if _, err := c.Solve(d, opts); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Entries != 2 || s.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 entries / 1 eviction", s)
	}
	if r, err := c.Solve(a, opts); err != nil || !r.CacheHit {
		t.Fatalf("recently used entry a was evicted (hit=%v err=%v)", r != nil && r.CacheHit, err)
	}
	if r, err := c.Solve(b, opts); err != nil || r.CacheHit {
		t.Fatalf("least recently used entry b survived (hit=%v err=%v)", r != nil && r.CacheHit, err)
	}
}

// TestSingleflightLeaderCanceledFollowerResolves pins the sharing policy for
// interrupted leaders: when the in-flight request's context is canceled, its
// Canceled (non-optimal-quality) result must not be handed to a follower
// with a live context — the follower re-solves and gets the real answer.
func TestSingleflightLeaderCanceledFollowerResolves(t *testing.T) {
	c := New(0)
	m := bitmat.MustParse(fig1b)
	fp := bitmat.ComputeFingerprint(m)

	// Stage an in-progress flight, then have a follower with a background
	// context join it.
	f := &flight{done: make(chan struct{})}
	c.mu.Lock()
	c.flights[fp.Hash] = f
	c.mu.Unlock()

	type outcome struct {
		res *core.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := c.Solve(m, core.DefaultOptions())
		done <- outcome{res, err}
	}()
	select {
	case o := <-done:
		t.Fatalf("follower completed before the flight resolved: %+v, %v", o.res, o.err)
	case <-time.After(50 * time.Millisecond):
	}

	// The leader's context is canceled mid-flight: it resolves the flight
	// with a Canceled result, exactly what SolveContext produces when its
	// caller goes away.
	canceledCtx, cancel := context.WithCancel(context.Background())
	cancel()
	leaderRes, err := core.SolveContext(canceledCtx, fp.Canonical, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !leaderRes.Canceled {
		t.Skip("canceled-context solve unexpectedly completed; nothing to assert")
	}
	c.mu.Lock()
	delete(c.flights, fp.Hash)
	c.mu.Unlock()
	f.res, f.err = leaderRes, nil
	close(f.done)

	o := <-done
	if o.err != nil {
		t.Fatal(o.err)
	}
	if o.res.Canceled {
		t.Fatalf("follower received the leader's canceled result: %+v", o.res)
	}
	if o.res.CacheHit {
		t.Fatalf("follower counted a canceled leader result as a hit: %+v", o.res)
	}
	if !o.res.Optimal || o.res.Depth != 5 {
		t.Fatalf("follower re-solve: depth=%d optimal=%v, want 5/true", o.res.Depth, o.res.Optimal)
	}
	if err := o.res.Partition.Validate(); err != nil {
		t.Fatalf("follower partition invalid: %v", err)
	}
}

// TestLiftCanonicalRejectsCorruptPartitions pins the exported lift's
// validation contract: out-of-range indices and non-covering partitions are
// errors, never silently wrong answers.
func TestLiftCanonicalRejectsCorruptPartitions(t *testing.T) {
	m := bitmat.MustParse(fig1b)
	fp := bitmat.ComputeFingerprint(m)
	res, err := core.Solve(fp.Canonical, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	good := make([]RectIndices, 0, len(res.Partition.Rects))
	for _, r := range res.Partition.Rects {
		good = append(good, RectIndices{Rows: r.RowIndices(), Cols: r.ColIndices()})
	}
	if p, err := LiftCanonical(fp, m, good); err != nil {
		t.Fatalf("valid canonical partition failed to lift: %v", err)
	} else if p.Depth() != 5 {
		t.Fatalf("lifted depth %d, want 5", p.Depth())
	}
	// Out-of-range row index.
	bad := append([]RectIndices(nil), good...)
	bad[0] = RectIndices{Rows: []int{len(fp.RowMap)}, Cols: good[0].Cols}
	if _, err := LiftCanonical(fp, m, bad); err == nil {
		t.Fatalf("out-of-range canonical row lifted without error")
	}
	// Dropping a rectangle leaves ones uncovered: validation must fail.
	if _, err := LiftCanonical(fp, m, good[:len(good)-1]); err == nil {
		t.Fatalf("non-covering canonical partition lifted without error")
	}
	// Inexact fingerprints cannot be lifted through.
	if _, err := LiftCanonical(&bitmat.Fingerprint{}, m, good); err == nil {
		t.Fatalf("inexact fingerprint lifted without error")
	}
}

func TestSingleflightDeduplicatesConcurrentPermutations(t *testing.T) {
	c := New(0)
	opts := core.DefaultOptions()
	m := bitmat.MustParse(fig1b)
	rng := rand.New(rand.NewSource(99))
	const n = 32
	reqs := make([]*bitmat.Matrix, n)
	for i := range reqs {
		reqs[i] = permute(m, rng)
	}
	var wg sync.WaitGroup
	depths := make([]int, n)
	errs := make([]error, n)
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := c.Solve(reqs[i], opts)
			if err == nil {
				depths[i] = res.Depth
				err = res.Partition.Validate()
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if depths[i] != 5 {
			t.Fatalf("request %d: depth %d, want 5", i, depths[i])
		}
	}
	if s := c.Stats(); s.Solves != 1 {
		t.Fatalf("%d concurrent permutations triggered %d solves, want 1", n, s.Solves)
	}
}

// TestSingleflightDoesNotShareNonOptimalLeaderResults pins the sharing
// policy: a follower must not inherit a leader's request-specific
// (budget-limited / heuristic-only) result — it re-solves with its own
// options once the flight resolves.
func TestSingleflightDoesNotShareNonOptimalLeaderResults(t *testing.T) {
	c := New(0)
	m := bitmat.MustParse(fig1b)
	fp := bitmat.ComputeFingerprint(m)

	// Stage an in-progress flight, then have the follower request the same
	// matrix with full exact options.
	f := &flight{done: make(chan struct{})}
	c.mu.Lock()
	c.flights[fp.Hash] = f
	c.mu.Unlock()

	type outcome struct {
		res *core.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := c.Solve(m, core.DefaultOptions())
		done <- outcome{res, err}
	}()
	select {
	case o := <-done:
		t.Fatalf("follower completed before the flight resolved: %+v, %v", o.res, o.err)
	case <-time.After(50 * time.Millisecond):
	}

	// The "leader" finishes with a heuristic-only, non-optimal result on the
	// canonical matrix (fooling bound disabled so the bound cannot close).
	badOpts := core.DefaultOptions()
	badOpts.SkipSAT = true
	badOpts.FoolingBudget = 0
	badOpts.Packing.Trials = 1
	badOpts.Packing.SkipTranspose = true
	badRes, err := core.Solve(fp.Canonical, badOpts)
	if err != nil {
		t.Fatal(err)
	}
	if badRes.Optimal {
		t.Skip("heuristic result unexpectedly optimal; nothing to assert")
	}
	c.mu.Lock()
	delete(c.flights, fp.Hash)
	c.mu.Unlock()
	f.res, f.err = badRes, nil
	close(f.done)

	o := <-done
	if o.err != nil {
		t.Fatal(o.err)
	}
	if o.res.CacheHit {
		t.Fatalf("follower shared a non-optimal leader result: %+v", o.res)
	}
	if !o.res.Optimal || o.res.Depth != 5 {
		t.Fatalf("follower re-solve: depth=%d optimal=%v, want 5/true", o.res.Depth, o.res.Optimal)
	}
}

func TestCacheCanceledContextStillReturnsPartition(t *testing.T) {
	c := New(0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := bitmat.MustParse(fig1b)
	res, err := c.SolveContext(ctx, m, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Partition.Validate(); err != nil {
		t.Fatalf("canceled solve returned invalid partition: %v", err)
	}
	if res.Optimal && !res.Canceled {
		// Small instances can complete optimally before the first
		// cancellation poll; either outcome must be internally consistent.
		return
	}
	if res.Canceled && res.SATTime != 0 && res.SATCalls == 0 {
		t.Fatalf("canceled result has SAT time without SAT calls: %+v", res)
	}
}

func TestCacheNilMatrix(t *testing.T) {
	c := New(0)
	if _, err := c.Solve(nil, core.DefaultOptions()); err != core.ErrNilMatrix {
		t.Fatalf("err = %v, want ErrNilMatrix", err)
	}
}

func TestCacheZeroAndUnitMatrices(t *testing.T) {
	c := New(0)
	opts := core.DefaultOptions()
	for _, m := range []*bitmat.Matrix{bitmat.New(3, 4), bitmat.MustParse("1"), bitmat.New(1, 1)} {
		r, err := c.Solve(m, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Partition.Validate(); err != nil {
			t.Fatalf("partition invalid: %v", err)
		}
		if !r.Optimal {
			t.Fatalf("trivial matrix not optimal")
		}
	}
	// 3×4 and 1×1 zero matrices share a fingerprint: the second zero solve
	// must be a hit with an empty partition of the right dimensions.
	r, err := c.Solve(bitmat.New(7, 2), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !r.CacheHit || r.Depth != 0 {
		t.Fatalf("zero-matrix resubmission: hit=%v depth=%d, want true/0", r.CacheHit, r.Depth)
	}
	if r.Partition.M.Rows() != 7 || r.Partition.M.Cols() != 2 {
		t.Fatalf("partition not lifted onto request dimensions")
	}
}
