// Package solvecache puts a canonicalizing result cache in front of the core
// solve pipeline. Requests are keyed by the matrix's canonical fingerprint
// (bitmat.ComputeFingerprint), so any two matrices that are equal up to
// row/column permutation, duplicated rows/columns or zero padding share one
// cache slot: addressing workloads resubmit the same pattern shuffled, and
// the cache turns those resubmissions into O(1) lookups plus a lift.
//
// Four mechanisms compose:
//
//   - LRU result cache. Only proved-optimal, un-interrupted results are
//     stored: an optimal depth is the binary rank — a property of the matrix
//     alone — so a cached result is correct for every budget and option set,
//     while budget-limited results are request-specific and never cached.
//   - Singleflight. Concurrent requests with the same fingerprint elect one
//     leader that runs the pipeline on the canonical matrix; everyone else
//     waits and lifts the leader's result into their own index space. N
//     identical concurrent requests cost exactly one solve. A leader that
//     fails without a verdict (panic) abandons the flight; waiting
//     followers re-elect instead of wedging.
//   - Durable tier (optional, AttachStore). Fresh proved-optimal results
//     are written through to an internal/store WAL keyed by the same
//     fingerprint; an LRU miss falls back to the store before leading a
//     solve, so a restarted process serves its whole history warm and an
//     LRU eviction is not a death sentence. Seed injects replicated results
//     from other fleet members through the same door.
//   - Lifting. Cached partitions live on the canonical matrix. A hit maps
//     them through the request's Fingerprint (RowMap/ColMap, then the
//     request's own Compression) and re-validates against the request
//     matrix, so a corrupted or colliding entry degrades to a miss, never to
//     a wrong answer — the same insurance covers durable records and
//     replicated seeds.
//
// Options may differ freely across requests: only proved-optimal results
// cross request boundaries (from the store or from a singleflight leader),
// and an optimal result is correct under every option set — its metadata
// (certificate, lower bounds) reflects the solve that produced it. A
// non-optimal leader result is never shared; followers fall back to solving
// with their own options.
package solvecache

import (
	"container/list"
	"context"
	"fmt"
	"sync"

	"repro/internal/bitmat"
	"repro/internal/core"
	"repro/internal/rect"
	"repro/internal/store"
)

// DefaultCapacity is the entry capacity used when New is given cap <= 0.
const DefaultCapacity = 1024

// Cache is a fingerprint-keyed solve cache. It is safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	capacity int
	lru      *list.List // front = most recently used; values are *entry
	byKey    map[string]*list.Element
	flights  map[string]*flight
	durable  *store.Store // optional write-through durable tier; may be nil

	// solveFn runs the pipeline (core.SolveContext in production; tests
	// inject failures and panics through it).
	solveFn func(ctx context.Context, m *bitmat.Matrix, opts core.Options) (*core.Result, error)

	stats Stats
}

// entry is one cached canonical-space result. Immutable once stored.
type entry struct {
	key string
	res *core.Result // Partition indexes the canonical matrix
}

// flight is one in-progress leader solve that followers wait on. res/err/
// abandoned are written before done is closed and read only after it is
// closed.
type flight struct {
	done chan struct{}
	res  *core.Result
	err  error
	// abandoned marks a flight whose leader died without a verdict (its
	// pipeline panicked). Followers re-elect a new leader instead of
	// inheriting an error the matrix did not cause.
	abandoned bool
}

// Stats is a snapshot of the cache's counters.
type Stats struct {
	// Hits counts requests served from the LRU store.
	Hits int64 `json:"hits"`
	// DurableHits counts requests that missed the LRU but were served from
	// the attached durable store (boot-warm or post-eviction hits).
	DurableHits int64 `json:"durable_hits"`
	// Seeds counts results injected via Seed (cache-fill replication).
	Seeds int64 `json:"seeds"`
	// SharedHits counts requests that waited on an in-flight identical solve
	// and shared its result (singleflight followers).
	SharedHits int64 `json:"shared_hits"`
	// Misses counts requests that led a pipeline solve.
	Misses int64 `json:"misses"`
	// Uncacheable counts requests whose fingerprint exceeded the
	// canonicalization budget and bypassed the cache entirely.
	Uncacheable int64 `json:"uncacheable"`
	// Solves counts core pipeline runs issued through the cache (misses,
	// uncacheable bypasses, and canceled-waiter fallbacks).
	Solves int64 `json:"solves"`
	// Stores counts results inserted into the LRU (optimal, uninterrupted).
	Stores int64 `json:"stores"`
	// Evictions counts LRU entries displaced by capacity pressure.
	Evictions int64 `json:"evictions"`
	// LiftFailures counts cache entries that failed re-validation against
	// the request matrix and degraded to a miss (hash collision insurance;
	// expected to stay 0).
	LiftFailures int64 `json:"lift_failures"`
	// Entries is the current number of cached results.
	Entries int `json:"entries"`
}

// HitRate returns the fraction of fingerprinted requests served without a
// fresh pipeline run.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.DurableHits + s.SharedHits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.DurableHits+s.SharedHits) / float64(total)
}

// New returns a cache holding up to capacity results (DefaultCapacity when
// capacity <= 0).
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{
		capacity: capacity,
		lru:      list.New(),
		byKey:    make(map[string]*list.Element),
		flights:  make(map[string]*flight),
		solveFn:  core.SolveContext,
	}
}

// AttachStore wires a durable tier beneath the LRU: fresh proved-optimal
// results are written through to st, and LRU misses fall back to it before
// leading a pipeline solve. The store was loaded by store.Open, so attaching
// it is the boot-time warm start — every previously proved result is one
// map lookup away. The caller retains ownership of st (and must Close it).
func (c *Cache) AttachStore(st *store.Store) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.durable = st
}

// Store returns the attached durable tier (nil when none).
func (c *Cache) Store() *store.Store {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.durable
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.lru.Len()
	return s
}

// Solve is SolveContext with a background context.
func (c *Cache) Solve(m *bitmat.Matrix, opts core.Options) (*core.Result, error) {
	return c.SolveContext(context.Background(), m, opts)
}

// SolveContext solves m through the cache: fingerprint, LRU lookup,
// singleflight, and only then a pipeline run on the canonical matrix. The
// result contract matches core.SolveContext — a valid partition is always
// returned — with Result.CacheHit set (and solver-stage stats zeroed) when
// no pipeline work was done for this request.
func (c *Cache) SolveContext(ctx context.Context, m *bitmat.Matrix, opts core.Options) (*core.Result, error) {
	res, _, err := c.SolveContextKeyed(ctx, m, opts)
	return res, err
}

// SolveContextKeyed is SolveContext that additionally returns the matrix's
// canonical fingerprint hash ("" when canonicalization exceeded its budget
// and the request bypassed the cache).
func (c *Cache) SolveContextKeyed(ctx context.Context, m *bitmat.Matrix, opts core.Options) (*core.Result, string, error) {
	if m == nil {
		return nil, "", core.ErrNilMatrix
	}
	if ctx == nil {
		ctx = context.Background()
	}
	fp := bitmat.ComputeFingerprint(m)
	if !fp.Exact {
		c.count(func(s *Stats) { s.Uncacheable++; s.Solves++ })
		res, err := c.solveFn(ctx, m, opts)
		return res, "", err
	}

	triedDurable := false
	for {
		c.mu.Lock()
		if el, ok := c.byKey[fp.Hash]; ok {
			c.lru.MoveToFront(el)
			e := el.Value.(*entry)
			c.stats.Hits++
			c.mu.Unlock()
			res, err := liftResult(e.res, fp, m, true)
			if err == nil {
				return res, fp.Hash, nil
			}
			// Collision insurance: drop the entry and solve for real.
			c.invalidate(fp.Hash, el)
			continue
		}
		if f, ok := c.flights[fp.Hash]; ok {
			c.mu.Unlock()
			select {
			case <-ctx.Done():
				// Honour the SolveContext contract without waiting on the
				// leader: the pipeline on an already-canceled context still
				// returns a valid heuristic partition, marked Canceled.
				c.count(func(s *Stats) { s.Solves++ })
				res, err := c.solveFn(ctx, m, opts)
				return res, fp.Hash, err
			case <-f.done:
			}
			if f.abandoned {
				// The leader died without a verdict (its pipeline panicked).
				// That says nothing about this matrix — re-elect: the next
				// loop hits the durable tier or leads a fresh solve.
				continue
			}
			if f.err != nil {
				return nil, fp.Hash, f.err
			}
			if !cacheable(f.res) {
				// The leader's result is request-specific (budget-limited,
				// canceled, or heuristic-only under its options). Sharing it
				// could hand this request a weaker answer than its own
				// options would produce — loop and solve with them instead.
				continue
			}
			c.count(func(s *Stats) { s.SharedHits++ })
			if res, err := liftResult(f.res, fp, m, true); err == nil {
				return res, fp.Hash, nil
			}
			c.count(func(s *Stats) { s.LiftFailures++ })
			continue
		}
		if durable := c.durable; durable != nil && !triedDurable {
			// LRU miss, no flight: consult the durable tier before paying
			// for a pipeline run. Reconstruction and lifting run outside
			// the cache lock (the store has its own); racing requests at
			// worst promote the same record twice.
			c.mu.Unlock()
			triedDurable = true
			if res := durableLookup(durable, fp.Hash); res != nil {
				if lifted, err := liftResult(res, fp, m, true); err == nil {
					c.mu.Lock()
					c.store(fp.Hash, res)
					c.stats.DurableHits++
					c.mu.Unlock()
					return lifted, fp.Hash, nil
				}
				// The durable record failed re-validation against the
				// request matrix (corruption that passed the CRC, or a
				// fingerprint collision): drop it and solve for real.
				c.count(func(s *Stats) { s.LiftFailures++ })
				durable.Delete(fp.Hash)
			}
			continue
		}
		// Lead a solve of the canonical matrix.
		f := &flight{done: make(chan struct{})}
		c.flights[fp.Hash] = f
		c.stats.Misses++
		c.stats.Solves++
		c.mu.Unlock()

		res, err := c.leadSolve(ctx, fp, f, opts)
		if err != nil {
			return nil, fp.Hash, err
		}
		lifted, err := liftResult(res, fp, m, false)
		return lifted, fp.Hash, err
	}
}

// leadSolve runs the leader's pipeline with completion insurance: however
// the solve ends — result, error, or panic — the flight is resolved and
// waiting followers released. On a panic the flight is marked abandoned
// (followers re-elect) and the panic propagates to this request alone.
func (c *Cache) leadSolve(ctx context.Context, fp *bitmat.Fingerprint, f *flight, opts core.Options) (res *core.Result, err error) {
	completed := false
	defer func() {
		c.mu.Lock()
		delete(c.flights, fp.Hash)
		shouldStore := completed && err == nil && cacheable(res)
		if shouldStore {
			c.store(fp.Hash, res)
		}
		durable := c.durable
		c.mu.Unlock()
		if shouldStore && durable != nil {
			// Write-through to the durable tier, outside the cache lock
			// (Put may fsync). A disk failure is logged and counted by the
			// store; it never fails the solve that produced the result.
			durable.Put(recordFromResult(fp.Hash, res))
		}
		f.res, f.err, f.abandoned = res, err, !completed
		close(f.done)
	}()
	res, err = c.solveFn(ctx, fp.Canonical, opts)
	completed = true
	return res, err
}

// Seed injects an externally computed proved-optimal canonical result — the
// cache-fill replication path (POST /v1/fill): a gateway pushes results
// solved on one shard to its ring successors so a failover lands on a warm
// cache. res.Partition must index the canonical matrix for hash; the caller
// is responsible for having validated that (the server-side fill handler
// recomputes the fingerprint and re-validates the partition before calling
// Seed), and the usual lift-time re-validation still guards every future
// hit. Returns false when the result is not seedable (non-optimal) or an
// entry already exists in both tiers.
func (c *Cache) Seed(hash string, res *core.Result) bool {
	if hash == "" || res == nil || !cacheable(res) || res.Partition == nil {
		return false
	}
	c.mu.Lock()
	_, inLRU := c.byKey[hash]
	if !inLRU {
		c.store(hash, res)
		c.stats.Seeds++
	}
	durable := c.durable
	c.mu.Unlock()
	stored := !inLRU
	if durable != nil {
		if _, ok := durable.Get(hash); !ok {
			durable.Put(recordFromResult(hash, res))
			stored = true
		}
	}
	return stored
}

// cacheable reports whether a canonical-space result may be stored: only
// proved-optimal, uninterrupted results are budget-independent facts about
// the matrix.
func cacheable(res *core.Result) bool {
	return res.Optimal && !res.TimedOut && !res.Canceled
}

// store inserts a canonical-space result, evicting from the LRU tail.
// Caller holds c.mu.
func (c *Cache) store(key string, res *core.Result) {
	if el, ok := c.byKey[key]; ok {
		c.lru.MoveToFront(el)
		el.Value.(*entry).res = res
		return
	}
	c.byKey[key] = c.lru.PushFront(&entry{key: key, res: res})
	c.stats.Stores++
	for c.lru.Len() > c.capacity {
		tail := c.lru.Back()
		c.lru.Remove(tail)
		delete(c.byKey, tail.Value.(*entry).key)
		c.stats.Evictions++
	}
}

// invalidate removes a failed entry (if still present) and counts it. The
// durable tier drops the key too: the entry failed re-validation against a
// matrix that hashes to it, so re-serving it from disk would just fail the
// same way on the next miss.
func (c *Cache) invalidate(key string, el *list.Element) {
	c.mu.Lock()
	c.stats.LiftFailures++
	if cur, ok := c.byKey[key]; ok && cur == el {
		c.lru.Remove(el)
		delete(c.byKey, key)
	}
	durable := c.durable
	c.mu.Unlock()
	if durable != nil {
		durable.Delete(key)
	}
}

func (c *Cache) count(fn func(*Stats)) {
	c.mu.Lock()
	fn(&c.stats)
	c.mu.Unlock()
}

// RectIndices is one canonical-space rectangle as explicit index lists — the
// exchange form used by layers (the cluster gateway) that hold a partition of
// fp.Canonical without core.Result's bitset representation.
type RectIndices struct {
	Rows []int
	Cols []int
}

// LiftCanonical maps a partition of fp.Canonical (as row/col index lists)
// onto the request matrix m: each rectangle's indices map through the
// fingerprint's canonical→reduced maps, the partition lifts through the
// request's own compression record, and the result is re-validated against
// m — so a corrupted or colliding canonical-space partition is an error,
// never a wrong answer. fp must be Exact and m a matrix with fp's canonical
// form.
func LiftCanonical(fp *bitmat.Fingerprint, m *bitmat.Matrix, rects []RectIndices) (*rect.Partition, error) {
	if !fp.Exact {
		return nil, fmt.Errorf("solvecache: cannot lift through an inexact fingerprint")
	}
	red := fp.Comp.Reduced
	reduced := rect.NewPartition(red)
	for _, r := range rects {
		nr := rect.NewRect(red.Rows(), red.Cols())
		for _, i := range r.Rows {
			if i < 0 || i >= len(fp.RowMap) {
				return nil, fmt.Errorf("solvecache: canonical row %d out of range", i)
			}
			nr.Rows.Set(fp.RowMap[i], true)
		}
		for _, j := range r.Cols {
			if j < 0 || j >= len(fp.ColMap) {
				return nil, fmt.Errorf("solvecache: canonical col %d out of range", j)
			}
			nr.Cols.Set(fp.ColMap[j], true)
		}
		reduced.Add(nr)
	}
	lifted := rect.Lift(fp.Comp, m, reduced)
	if err := lifted.Validate(); err != nil {
		return nil, fmt.Errorf("solvecache: lifted partition invalid: %w", err)
	}
	return lifted, nil
}

// liftResult maps a canonical-space result onto the request matrix via
// LiftCanonical. hit marks the result as cache-served, zeroing the
// solver-stage stats (they describe work this request did not do).
func liftResult(res *core.Result, fp *bitmat.Fingerprint, m *bitmat.Matrix, hit bool) (*core.Result, error) {
	rects := make([]RectIndices, 0, len(res.Partition.Rects))
	for _, r := range res.Partition.Rects {
		rects = append(rects, RectIndices{Rows: r.RowIndices(), Cols: r.ColIndices()})
	}
	lifted, err := LiftCanonical(fp, m, rects)
	if err != nil {
		return nil, err
	}
	out := *res
	out.Partition = lifted
	out.Depth = lifted.Depth()
	if hit {
		out.CacheHit = true
		out.SATCalls = 0
		out.Conflicts = 0
		out.PackTime = 0
		out.SATTime = 0
		out.Portfolio = nil // racing stats describe the original solve's work
	}
	return &out, nil
}
