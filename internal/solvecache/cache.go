// Package solvecache puts a canonicalizing result cache in front of the core
// solve pipeline. Requests are keyed by the matrix's canonical fingerprint
// (bitmat.ComputeFingerprint), so any two matrices that are equal up to
// row/column permutation, duplicated rows/columns or zero padding share one
// cache slot: addressing workloads resubmit the same pattern shuffled, and
// the cache turns those resubmissions into O(1) lookups plus a lift.
//
// Three mechanisms compose:
//
//   - LRU result cache. Only proved-optimal, un-interrupted results are
//     stored: an optimal depth is the binary rank — a property of the matrix
//     alone — so a cached result is correct for every budget and option set,
//     while budget-limited results are request-specific and never cached.
//   - Singleflight. Concurrent requests with the same fingerprint elect one
//     leader that runs the pipeline on the canonical matrix; everyone else
//     waits and lifts the leader's result into their own index space. N
//     identical concurrent requests cost exactly one solve.
//   - Lifting. Cached partitions live on the canonical matrix. A hit maps
//     them through the request's Fingerprint (RowMap/ColMap, then the
//     request's own Compression) and re-validates against the request
//     matrix, so a corrupted or colliding entry degrades to a miss, never to
//     a wrong answer.
//
// Options may differ freely across requests: only proved-optimal results
// cross request boundaries (from the store or from a singleflight leader),
// and an optimal result is correct under every option set — its metadata
// (certificate, lower bounds) reflects the solve that produced it. A
// non-optimal leader result is never shared; followers fall back to solving
// with their own options.
package solvecache

import (
	"container/list"
	"context"
	"fmt"
	"sync"

	"repro/internal/bitmat"
	"repro/internal/core"
	"repro/internal/rect"
)

// DefaultCapacity is the entry capacity used when New is given cap <= 0.
const DefaultCapacity = 1024

// Cache is a fingerprint-keyed solve cache. It is safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	capacity int
	lru      *list.List // front = most recently used; values are *entry
	byKey    map[string]*list.Element
	flights  map[string]*flight

	stats Stats
}

// entry is one cached canonical-space result. Immutable once stored.
type entry struct {
	key string
	res *core.Result // Partition indexes the canonical matrix
}

// flight is one in-progress leader solve that followers wait on. res/err are
// written before done is closed and read only after it is closed.
type flight struct {
	done chan struct{}
	res  *core.Result
	err  error
}

// Stats is a snapshot of the cache's counters.
type Stats struct {
	// Hits counts requests served from the LRU store.
	Hits int64 `json:"hits"`
	// SharedHits counts requests that waited on an in-flight identical solve
	// and shared its result (singleflight followers).
	SharedHits int64 `json:"shared_hits"`
	// Misses counts requests that led a pipeline solve.
	Misses int64 `json:"misses"`
	// Uncacheable counts requests whose fingerprint exceeded the
	// canonicalization budget and bypassed the cache entirely.
	Uncacheable int64 `json:"uncacheable"`
	// Solves counts core pipeline runs issued through the cache (misses,
	// uncacheable bypasses, and canceled-waiter fallbacks).
	Solves int64 `json:"solves"`
	// Stores counts results inserted into the LRU (optimal, uninterrupted).
	Stores int64 `json:"stores"`
	// Evictions counts LRU entries displaced by capacity pressure.
	Evictions int64 `json:"evictions"`
	// LiftFailures counts cache entries that failed re-validation against
	// the request matrix and degraded to a miss (hash collision insurance;
	// expected to stay 0).
	LiftFailures int64 `json:"lift_failures"`
	// Entries is the current number of cached results.
	Entries int `json:"entries"`
}

// HitRate returns the fraction of fingerprinted requests served without a
// fresh pipeline run.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.SharedHits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.SharedHits) / float64(total)
}

// New returns a cache holding up to capacity results (DefaultCapacity when
// capacity <= 0).
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{
		capacity: capacity,
		lru:      list.New(),
		byKey:    make(map[string]*list.Element),
		flights:  make(map[string]*flight),
	}
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.lru.Len()
	return s
}

// Solve is SolveContext with a background context.
func (c *Cache) Solve(m *bitmat.Matrix, opts core.Options) (*core.Result, error) {
	return c.SolveContext(context.Background(), m, opts)
}

// SolveContext solves m through the cache: fingerprint, LRU lookup,
// singleflight, and only then a pipeline run on the canonical matrix. The
// result contract matches core.SolveContext — a valid partition is always
// returned — with Result.CacheHit set (and solver-stage stats zeroed) when
// no pipeline work was done for this request.
func (c *Cache) SolveContext(ctx context.Context, m *bitmat.Matrix, opts core.Options) (*core.Result, error) {
	res, _, err := c.SolveContextKeyed(ctx, m, opts)
	return res, err
}

// SolveContextKeyed is SolveContext that additionally returns the matrix's
// canonical fingerprint hash ("" when canonicalization exceeded its budget
// and the request bypassed the cache).
func (c *Cache) SolveContextKeyed(ctx context.Context, m *bitmat.Matrix, opts core.Options) (*core.Result, string, error) {
	if m == nil {
		return nil, "", core.ErrNilMatrix
	}
	if ctx == nil {
		ctx = context.Background()
	}
	fp := bitmat.ComputeFingerprint(m)
	if !fp.Exact {
		c.count(func(s *Stats) { s.Uncacheable++; s.Solves++ })
		res, err := core.SolveContext(ctx, m, opts)
		return res, "", err
	}

	for {
		c.mu.Lock()
		if el, ok := c.byKey[fp.Hash]; ok {
			c.lru.MoveToFront(el)
			e := el.Value.(*entry)
			c.stats.Hits++
			c.mu.Unlock()
			res, err := liftResult(e.res, fp, m, true)
			if err == nil {
				return res, fp.Hash, nil
			}
			// Collision insurance: drop the entry and solve for real.
			c.invalidate(fp.Hash, el)
			continue
		}
		if f, ok := c.flights[fp.Hash]; ok {
			c.mu.Unlock()
			select {
			case <-ctx.Done():
				// Honour the SolveContext contract without waiting on the
				// leader: the pipeline on an already-canceled context still
				// returns a valid heuristic partition, marked Canceled.
				c.count(func(s *Stats) { s.Solves++ })
				res, err := core.SolveContext(ctx, m, opts)
				return res, fp.Hash, err
			case <-f.done:
			}
			if f.err != nil {
				return nil, fp.Hash, f.err
			}
			if !cacheable(f.res) {
				// The leader's result is request-specific (budget-limited,
				// canceled, or heuristic-only under its options). Sharing it
				// could hand this request a weaker answer than its own
				// options would produce — loop and solve with them instead.
				continue
			}
			c.count(func(s *Stats) { s.SharedHits++ })
			if res, err := liftResult(f.res, fp, m, true); err == nil {
				return res, fp.Hash, nil
			}
			c.count(func(s *Stats) { s.LiftFailures++ })
			continue
		}
		// Lead a solve of the canonical matrix.
		f := &flight{done: make(chan struct{})}
		c.flights[fp.Hash] = f
		c.stats.Misses++
		c.stats.Solves++
		c.mu.Unlock()

		res, err := core.SolveContext(ctx, fp.Canonical, opts)
		c.mu.Lock()
		delete(c.flights, fp.Hash)
		if err == nil && cacheable(res) {
			c.store(fp.Hash, res)
		}
		c.mu.Unlock()
		f.res, f.err = res, err
		close(f.done)

		if err != nil {
			return nil, fp.Hash, err
		}
		lifted, err := liftResult(res, fp, m, false)
		return lifted, fp.Hash, err
	}
}

// cacheable reports whether a canonical-space result may be stored: only
// proved-optimal, uninterrupted results are budget-independent facts about
// the matrix.
func cacheable(res *core.Result) bool {
	return res.Optimal && !res.TimedOut && !res.Canceled
}

// store inserts a canonical-space result, evicting from the LRU tail.
// Caller holds c.mu.
func (c *Cache) store(key string, res *core.Result) {
	if el, ok := c.byKey[key]; ok {
		c.lru.MoveToFront(el)
		el.Value.(*entry).res = res
		return
	}
	c.byKey[key] = c.lru.PushFront(&entry{key: key, res: res})
	c.stats.Stores++
	for c.lru.Len() > c.capacity {
		tail := c.lru.Back()
		c.lru.Remove(tail)
		delete(c.byKey, tail.Value.(*entry).key)
		c.stats.Evictions++
	}
}

// invalidate removes a failed entry (if still present) and counts it.
func (c *Cache) invalidate(key string, el *list.Element) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.LiftFailures++
	if cur, ok := c.byKey[key]; ok && cur == el {
		c.lru.Remove(el)
		delete(c.byKey, key)
	}
}

func (c *Cache) count(fn func(*Stats)) {
	c.mu.Lock()
	fn(&c.stats)
	c.mu.Unlock()
}

// RectIndices is one canonical-space rectangle as explicit index lists — the
// exchange form used by layers (the cluster gateway) that hold a partition of
// fp.Canonical without core.Result's bitset representation.
type RectIndices struct {
	Rows []int
	Cols []int
}

// LiftCanonical maps a partition of fp.Canonical (as row/col index lists)
// onto the request matrix m: each rectangle's indices map through the
// fingerprint's canonical→reduced maps, the partition lifts through the
// request's own compression record, and the result is re-validated against
// m — so a corrupted or colliding canonical-space partition is an error,
// never a wrong answer. fp must be Exact and m a matrix with fp's canonical
// form.
func LiftCanonical(fp *bitmat.Fingerprint, m *bitmat.Matrix, rects []RectIndices) (*rect.Partition, error) {
	if !fp.Exact {
		return nil, fmt.Errorf("solvecache: cannot lift through an inexact fingerprint")
	}
	red := fp.Comp.Reduced
	reduced := rect.NewPartition(red)
	for _, r := range rects {
		nr := rect.NewRect(red.Rows(), red.Cols())
		for _, i := range r.Rows {
			if i < 0 || i >= len(fp.RowMap) {
				return nil, fmt.Errorf("solvecache: canonical row %d out of range", i)
			}
			nr.Rows.Set(fp.RowMap[i], true)
		}
		for _, j := range r.Cols {
			if j < 0 || j >= len(fp.ColMap) {
				return nil, fmt.Errorf("solvecache: canonical col %d out of range", j)
			}
			nr.Cols.Set(fp.ColMap[j], true)
		}
		reduced.Add(nr)
	}
	lifted := rect.Lift(fp.Comp, m, reduced)
	if err := lifted.Validate(); err != nil {
		return nil, fmt.Errorf("solvecache: lifted partition invalid: %w", err)
	}
	return lifted, nil
}

// liftResult maps a canonical-space result onto the request matrix via
// LiftCanonical. hit marks the result as cache-served, zeroing the
// solver-stage stats (they describe work this request did not do).
func liftResult(res *core.Result, fp *bitmat.Fingerprint, m *bitmat.Matrix, hit bool) (*core.Result, error) {
	rects := make([]RectIndices, 0, len(res.Partition.Rects))
	for _, r := range res.Partition.Rects {
		rects = append(rects, RectIndices{Rows: r.RowIndices(), Cols: r.ColIndices()})
	}
	lifted, err := LiftCanonical(fp, m, rects)
	if err != nil {
		return nil, err
	}
	out := *res
	out.Partition = lifted
	out.Depth = lifted.Depth()
	if hit {
		out.CacheHit = true
		out.SATCalls = 0
		out.Conflicts = 0
		out.PackTime = 0
		out.SATTime = 0
		out.Portfolio = nil // racing stats describe the original solve's work
	}
	return &out, nil
}
