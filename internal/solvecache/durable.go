package solvecache

// Conversion between the cache's in-memory canonical results and the durable
// tier's pure-data records. The store holds only the partition (as index
// lists) plus provenance; the canonical matrix is reconstructed from the
// rectangles themselves — a valid partition exactly covers the matrix's 1s,
// so persisting the matrix separately would only create a second source of
// truth to keep consistent.

import (
	"fmt"

	"repro/internal/bitmat"
	"repro/internal/core"
	"repro/internal/rect"
	"repro/internal/store"
)

// recordFromResult flattens a canonical-space result into a store.Record.
// res must be cacheable with a non-nil Partition indexing the canonical
// matrix.
func recordFromResult(hash string, res *core.Result) *store.Record {
	rects := make([]store.RectRecord, 0, len(res.Partition.Rects))
	for _, r := range res.Partition.Rects {
		rects = append(rects, store.RectRecord{Rows: r.RowIndices(), Cols: r.ColIndices()})
	}
	return &store.Record{
		Hash:           hash,
		Rows:           res.Partition.M.Rows(),
		Cols:           res.Partition.M.Cols(),
		Depth:          res.Depth,
		Certificate:    int(res.Certificate),
		RankLB:         res.RankLB,
		FoolingLB:      res.FoolingLB,
		Blocks:         res.Blocks,
		HeuristicDepth: res.HeuristicDepth,
		Rects:          rects,
	}
}

// resultFromRecord rebuilds a canonical-space result: the canonical matrix
// is the union of the record's rectangles, and the partition is validated
// against it — overlapping or inconsistent rectangles fail here rather than
// reaching the cache. The returned result is Optimal (only proved-optimal
// results are ever persisted) with CacheHit left false; liftResult sets the
// hit marking per request.
func resultFromRecord(rec *store.Record) (*core.Result, error) {
	if err := rec.Validate(); err != nil {
		return nil, err
	}
	m := bitmat.New(rec.Rows, rec.Cols)
	p := rect.NewPartition(m)
	for _, rr := range rec.Rects {
		nr := rect.NewRect(rec.Rows, rec.Cols)
		for _, i := range rr.Rows {
			nr.Rows.Set(i, true)
			for _, j := range rr.Cols {
				m.Set(i, j, true)
			}
		}
		for _, j := range rr.Cols {
			nr.Cols.Set(j, true)
		}
		p.Add(nr)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("solvecache: durable record %s: %w", rec.Hash, err)
	}
	return &core.Result{
		Partition:      p,
		Depth:          rec.Depth,
		RankLB:         rec.RankLB,
		FoolingLB:      rec.FoolingLB,
		Optimal:        true,
		Certificate:    core.Certificate(rec.Certificate),
		Blocks:         rec.Blocks,
		HeuristicDepth: rec.HeuristicDepth,
	}, nil
}

// durableLookup fetches and reconstructs hash from the store, dropping
// records that fail reconstruction (corruption that survived the CRC): a
// damaged record degrades to a cache miss, never to a wrong answer.
func durableLookup(st *store.Store, hash string) *core.Result {
	rec, ok := st.Get(hash)
	if !ok {
		return nil
	}
	res, err := resultFromRecord(rec)
	if err != nil {
		st.Delete(hash)
		return nil
	}
	return res
}
