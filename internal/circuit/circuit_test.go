package circuit

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/bitmat"
	"repro/internal/core"
)

func fastOptions() core.Options {
	o := core.DefaultOptions()
	o.Packing.Trials = 10
	o.FoolingBudget = 20_000
	o.ConflictBudget = 200_000
	return o
}

func TestAddLayerGeometryCheck(t *testing.T) {
	c := NewCircuit(4, 4)
	if err := c.AddLayer(Layer{Name: "bad", Pattern: bitmat.New(3, 4)}); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
	if err := c.AddLayer(Layer{Name: "ok", Pattern: bitmat.New(4, 4)}); err != nil {
		t.Fatal(err)
	}
}

func TestCompileEmptyCircuit(t *testing.T) {
	res, err := Compile(NewCircuit(4, 4), fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalShots != 0 || !res.AllOptimal {
		t.Fatalf("%+v", res)
	}
}

func TestCompileQAOAStructuredLayersAreRank1(t *testing.T) {
	c := QAOACircuit(8, 8, 2)
	res, err := Compile(c, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Every stripe layer is a single rectangle: 4 stripes × 2 rounds = 8.
	if res.TotalShots != 8 {
		t.Fatalf("total shots = %d, want 8", res.TotalShots)
	}
	if !res.AllOptimal {
		t.Fatal("stripe layers must be proved optimal")
	}
	// Rectangular addressing crushes per-qubit addressing here; row-by-row
	// ties (each stripe collapses to one distinct row) but never wins.
	if res.NaiveShots <= res.TotalShots {
		t.Fatalf("naive should lose: naive=%d shots=%d", res.NaiveShots, res.TotalShots)
	}
	if res.RowShots < res.TotalShots {
		t.Fatalf("rows cannot beat optimal: rows=%d shots=%d", res.RowShots, res.TotalShots)
	}
}

func TestCompileStaircaseIsFullRank(t *testing.T) {
	// A permutation-matrix layer has binary rank = n: rectangular
	// addressing degenerates to per-qubit addressing (the adversarial case).
	c := StaircaseCircuit(5, 5, 3)
	res, err := Compile(c, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalShots != 15 {
		t.Fatalf("total shots = %d, want 15 (3 layers × rank 5)", res.TotalShots)
	}
	if res.TotalShots != res.NaiveShots {
		t.Fatalf("staircase should match naive: %d vs %d", res.TotalShots, res.NaiveShots)
	}
}

func TestCompileRandomCircuit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := RandomCircuit(rng, 6, 6, 4, 0.4)
	res, err := Compile(c, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Layers) != 4 {
		t.Fatalf("layers = %d", len(res.Layers))
	}
	for _, lr := range res.Layers {
		if lr.Schedule.Depth() != lr.Solve.Depth {
			t.Fatal("schedule depth mismatch")
		}
	}
	if res.Elapsed <= 0 {
		t.Fatal("elapsed not recorded")
	}
}

func TestSummaryRenders(t *testing.T) {
	c := QAOACircuit(4, 4, 1)
	res, err := Compile(c, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary()
	if !strings.Contains(s, "round0-even-rows") || !strings.Contains(s, "total shots") {
		t.Fatalf("summary:\n%s", s)
	}
}

// Property: total shots are bounded by the two baselines from below by the
// sum of layer ranks, and never exceed row-by-row or naive addressing.
func TestQuickCompileBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := RandomCircuit(rng, 2+rng.Intn(5), 2+rng.Intn(5), 1+rng.Intn(3), 0.5)
		res, err := Compile(c, fastOptions())
		if err != nil {
			return false
		}
		rankSum := 0
		for _, l := range c.Layers {
			rankSum += l.Pattern.Rank()
		}
		return res.TotalShots >= rankSum &&
			res.TotalShots <= res.RowShots &&
			res.TotalShots <= res.NaiveShots
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
