// Package circuit models the workload that motivates the paper: a quantum
// program on a neutral-atom array executes as a sequence of layers, each
// layer applying the same single-qubit gate (e.g. an Rz rotation) to some 2D
// pattern of qubits through the row/column AOD controls. Compiling a circuit
// therefore means solving one EBMF per layer; the total pulse count is the
// sum of the per-layer rectangle partition depths.
//
// The package provides layer/circuit types, a compiler that runs the SAP
// solver per layer and accounts for total depth, and generators for
// realistic layer workloads (random program layers, QAOA-style phase
// patterns, and GHZ-ladder staircases).
package circuit

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/aod"
	"repro/internal/bitmat"
	"repro/internal/core"
)

// Layer is one single-qubit-gate layer: a pattern of qubits receiving the
// same gate, with a rotation angle for bookkeeping.
type Layer struct {
	// Name labels the layer in reports.
	Name string
	// Pattern marks the qubits addressed in this layer.
	Pattern *bitmat.Matrix
	// AngleMilliRad is the Rz angle in milliradians (metadata only; the
	// addressing problem is angle-independent).
	AngleMilliRad int
}

// Circuit is an ordered sequence of layers on one array geometry.
type Circuit struct {
	Rows, Cols int
	Layers     []Layer
}

// NewCircuit returns an empty circuit on a rows×cols array.
func NewCircuit(rows, cols int) *Circuit {
	return &Circuit{Rows: rows, Cols: cols}
}

// AddLayer appends a layer, validating its geometry.
func (c *Circuit) AddLayer(l Layer) error {
	if l.Pattern.Rows() != c.Rows || l.Pattern.Cols() != c.Cols {
		return fmt.Errorf("circuit: layer %q is %d×%d on a %d×%d array",
			l.Name, l.Pattern.Rows(), l.Pattern.Cols(), c.Rows, c.Cols)
	}
	c.Layers = append(c.Layers, l)
	return nil
}

// LayerResult is the compilation outcome for one layer.
type LayerResult struct {
	Layer Layer
	// Solve is the SAP result for the layer's pattern.
	Solve *core.Result
	// Schedule is the compiled AOD schedule for the layer.
	Schedule *aod.Schedule
}

// CompileResult is the compilation outcome for a whole circuit.
type CompileResult struct {
	Layers []LayerResult
	// TotalShots is Σ per-layer depth: the figure of merit the paper
	// minimizes, summed over the program.
	TotalShots int
	// NaiveShots is what per-qubit (one shot per addressed qubit)
	// addressing would cost — the control-complexity baseline.
	NaiveShots int
	// RowShots is what row-by-row addressing would cost (distinct nonzero
	// rows per layer).
	RowShots int
	// AllOptimal reports whether every layer was solved to proven
	// optimality.
	AllOptimal bool
	// Elapsed is the total compile time.
	Elapsed time.Duration
}

// Compile solves every layer with the given SAP options, verifies each
// schedule against a fully loaded array, and aggregates program-level
// statistics.
func Compile(c *Circuit, opts core.Options) (*CompileResult, error) {
	out := &CompileResult{AllOptimal: true}
	start := time.Now()
	arr := aod.NewArray(c.Rows, c.Cols)
	for _, l := range c.Layers {
		res, err := core.Solve(l.Pattern, opts)
		if err != nil {
			return nil, fmt.Errorf("circuit: layer %q: %w", l.Name, err)
		}
		sched := aod.Compile(res.Partition)
		sched.MinimizeReconfig()
		if err := sched.Verify(arr); err != nil {
			return nil, fmt.Errorf("circuit: layer %q schedule: %w", l.Name, err)
		}
		out.Layers = append(out.Layers, LayerResult{Layer: l, Solve: res, Schedule: sched})
		out.TotalShots += res.Depth
		out.NaiveShots += l.Pattern.Ones()
		out.RowShots += distinctNonzeroRows(l.Pattern)
		out.AllOptimal = out.AllOptimal && res.Optimal
	}
	out.Elapsed = time.Since(start)
	return out, nil
}

func distinctNonzeroRows(m *bitmat.Matrix) int {
	seen := map[string]bool{}
	for i := 0; i < m.Rows(); i++ {
		r := m.Row(i)
		if !r.IsZero() {
			seen[r.Key()] = true
		}
	}
	return len(seen)
}

// RandomCircuit generates a circuit of random layers at the given occupancy
// — a generic program workload.
func RandomCircuit(rng *rand.Rand, rows, cols, layers int, occupancy float64) *Circuit {
	c := NewCircuit(rows, cols)
	for i := 0; i < layers; i++ {
		l := Layer{
			Name:          fmt.Sprintf("rand-%02d", i),
			Pattern:       bitmat.Random(rng, rows, cols, occupancy),
			AngleMilliRad: rng.Intn(6284),
		}
		if err := c.AddLayer(l); err != nil {
			panic(err) // generator invariant
		}
	}
	return c
}

// QAOACircuit generates phase-separator-like layers: alternating stripe
// patterns (all even rows, all odd rows, even columns, odd columns) repeated
// per round — highly structured patterns with tiny binary rank, the regime
// where rectangular addressing wins by the largest factor.
func QAOACircuit(rows, cols, rounds int) *Circuit {
	c := NewCircuit(rows, cols)
	stripe := func(name string, pred func(i, j int) bool, angle int) {
		m := bitmat.New(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if pred(i, j) {
					m.Set(i, j, true)
				}
			}
		}
		if err := c.AddLayer(Layer{Name: name, Pattern: m, AngleMilliRad: angle}); err != nil {
			panic(err)
		}
	}
	for r := 0; r < rounds; r++ {
		stripe(fmt.Sprintf("round%d-even-rows", r), func(i, j int) bool { return i%2 == 0 }, 314)
		stripe(fmt.Sprintf("round%d-odd-rows", r), func(i, j int) bool { return i%2 == 1 }, 314)
		stripe(fmt.Sprintf("round%d-even-cols", r), func(i, j int) bool { return j%2 == 0 }, 628)
		stripe(fmt.Sprintf("round%d-odd-cols", r), func(i, j int) bool { return j%2 == 1 }, 628)
	}
	return c
}

// StaircaseCircuit generates GHZ-ladder style layers: layer t addresses the
// anti-diagonal band at offset t. Diagonal bands have high binary rank, the
// adversarial regime for rectangular addressing.
func StaircaseCircuit(rows, cols, layers int) *Circuit {
	c := NewCircuit(rows, cols)
	for t := 0; t < layers; t++ {
		m := bitmat.New(rows, cols)
		for i := 0; i < rows; i++ {
			j := (i + t) % cols
			m.Set(i, j, true)
		}
		if err := c.AddLayer(Layer{Name: fmt.Sprintf("stair-%02d", t), Pattern: m, AngleMilliRad: 100 * t}); err != nil {
			panic(err)
		}
	}
	return c
}

// Summary renders a per-layer table plus totals.
func (r *CompileResult) Summary() string {
	s := fmt.Sprintf("%-20s %7s %7s %9s %8s\n", "layer", "qubits", "shots", "optimal", "rank-lb")
	for _, lr := range r.Layers {
		s += fmt.Sprintf("%-20s %7d %7d %9v %8d\n",
			lr.Layer.Name, lr.Layer.Pattern.Ones(), lr.Solve.Depth, lr.Solve.Optimal, lr.Solve.RankLB)
	}
	s += fmt.Sprintf("total shots: %d (naive per-qubit %d, row-by-row %d)\n",
		r.TotalShots, r.NaiveShots, r.RowShots)
	return s
}
