// Package fooling computes fooling sets of binary matrices. A fooling set S
// is a set of 1-entries such that for any two distinct (i,j), (i',j') in S,
// M[i][j'] = 0 or M[i'][j] = 0. No rectangle can contain two elements of a
// fooling set, so |S| lower-bounds the binary rank (partition number). The
// bound is not always tight (Eq. 2 of the paper).
//
// Finding a maximum fooling set is itself NP-hard; it equals a maximum clique
// in the "fooling compatibility" graph over the 1-entries. The package
// provides a greedy heuristic and an exact branch-and-bound search with a
// node budget for small instances.
package fooling

import (
	"math/bits"

	"repro/internal/bitmat"
)

// compatible reports whether 1-entries (i,j) and (i2,j2) may coexist in a
// fooling set of m.
func compatible(m *bitmat.Matrix, i, j, i2, j2 int) bool {
	if i == i2 && j == j2 {
		return false
	}
	// Entries sharing a row or column always fail: one of the cross entries
	// is the entry itself (a 1).
	return !m.Get(i, j2) || !m.Get(i2, j)
}

// graph is the fooling-compatibility graph with bitset adjacency.
type graph struct {
	pos [][2]int
	adj []bitset
}

type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) get(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }
func (b bitset) clone() bitset  { c := make(bitset, len(b)); copy(c, b); return c }
func (b bitset) and(o bitset) {
	for k := range b {
		b[k] &= o[k]
	}
}
func (b bitset) clear(i int) { b[i/64] &^= 1 << (uint(i) % 64) }
func (b bitset) or(o bitset) {
	for k := range b {
		b[k] |= o[k]
	}
}
func (b bitset) empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

// forEach visits every set bit in ascending order.
func (b bitset) forEach(fn func(i int)) {
	for k, w := range b {
		for w != 0 {
			fn(k*64 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}
func (b bitset) count() int {
	t := 0
	for _, w := range b {
		t += bits.OnesCount64(w)
	}
	return t
}
func (b bitset) first() int {
	for k, w := range b {
		if w != 0 {
			return k*64 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// buildGraph constructs the adjacency bitsets 64 entries at a time instead
// of testing each of the n² pairs with two matrix probes. Entry b=(i2,j2) is
// INcompatible with a=(i,j) iff M[i][j2]=1 and M[i2][j]=1 — i.e. b's column
// is a 1-column of a's row AND b's row is a 1-row of a's column. Both sides
// are unions of precomputed per-row/per-column entry masks, so the bad set
// is two word-parallel ANDs and the adjacency is its complement.
func buildGraph(m *bitmat.Matrix) *graph {
	pos := m.OnesPositions()
	n := len(pos)
	g := &graph{pos: pos, adj: make([]bitset, n)}
	if n == 0 {
		return g
	}
	rowMask := make([]bitset, m.Rows()) // entries in row r
	colMask := make([]bitset, m.Cols()) // entries in column c
	for e, p := range pos {
		i, j := p[0], p[1]
		if rowMask[i] == nil {
			rowMask[i] = newBitset(n)
		}
		if colMask[j] == nil {
			colMask[j] = newBitset(n)
		}
		rowMask[i].set(e)
		colMask[j].set(e)
	}
	// rowUnion[i]: entries whose column holds a 1 in row i.
	// colUnion[j]: entries whose row holds a 1 in column j.
	rowUnion := make([]bitset, m.Rows())
	colUnion := make([]bitset, m.Cols())
	m.ForEachOne(func(i, j int) {
		if rowUnion[i] == nil {
			rowUnion[i] = newBitset(n)
		}
		rowUnion[i].or(colMask[j])
		if colUnion[j] == nil {
			colUnion[j] = newBitset(n)
		}
		colUnion[j].or(rowMask[i])
	})
	words := len(newBitset(n))
	tail := uint(n % 64)
	for e, p := range pos {
		adj := make(bitset, words)
		ru, cu := rowUnion[p[0]], colUnion[p[1]]
		for k := 0; k < words; k++ {
			adj[k] = ^(ru[k] & cu[k])
		}
		if tail != 0 {
			adj[words-1] &= (1 << tail) - 1
		}
		adj.clear(e) // never self-adjacent (the bad set contains e anyway)
		g.adj[e] = adj
	}
	return g
}

// Greedy returns a (maximal, not necessarily maximum) fooling set of m,
// built by repeatedly taking the candidate entry with the most remaining
// compatible candidates.
func Greedy(m *bitmat.Matrix) [][2]int {
	g := buildGraph(m)
	n := len(g.pos)
	if n == 0 {
		return nil
	}
	cand := newBitset(n)
	for i := 0; i < n; i++ {
		cand.set(i)
	}
	var out [][2]int
	for !cand.empty() {
		// Pick the candidate with maximum degree within the candidate set,
		// visiting only set bits (the candidate set shrinks fast, so late
		// rounds scan a handful of words instead of all n indices).
		best, bestDeg := -1, -1
		cand.forEach(func(i int) {
			if d := degreeWithin(g.adj[i], cand); d > bestDeg {
				best, bestDeg = i, d
			}
		})
		out = append(out, g.pos[best])
		cand.and(g.adj[best])
	}
	return out
}

func degreeWithin(adj, cand bitset) int {
	t := 0
	for k := range adj {
		t += bits.OnesCount64(adj[k] & cand[k])
	}
	return t
}

// Exact returns a maximum fooling set of m, found by branch-and-bound max
// clique, and whether the search completed within the node budget. When the
// budget is exhausted, the best set found so far is returned with ok=false.
// A budget ≤ 0 means unlimited.
func Exact(m *bitmat.Matrix, budget int64) (set [][2]int, ok bool) {
	g := buildGraph(m)
	n := len(g.pos)
	if n == 0 {
		return nil, true
	}
	// Seed the incumbent with the greedy solution.
	best := Greedy(m)
	bestSize := len(best)

	cand := newBitset(n)
	for i := 0; i < n; i++ {
		cand.set(i)
	}
	var cur []int
	nodes := int64(0)
	exceeded := false

	var bestIdx []int
	var rec func(cand bitset)
	rec = func(cand bitset) {
		if exceeded {
			return
		}
		nodes++
		if budget > 0 && nodes > budget {
			exceeded = true
			return
		}
		c := cand.count()
		if len(cur)+c <= bestSize {
			return // bound: cannot beat incumbent
		}
		if c == 0 {
			if len(cur) > bestSize {
				bestSize = len(cur)
				bestIdx = append(bestIdx[:0], cur...)
			}
			return
		}
		// Branch on candidates in order; standard clique enumeration with
		// the remaining-count bound.
		rest := cand.clone()
		for {
			v := rest.first()
			if v < 0 {
				return
			}
			if len(cur)+rest.count() <= bestSize {
				return
			}
			rest.clear(v)
			next := rest.clone()
			next.and(g.adj[v])
			cur = append(cur, v)
			rec(next)
			cur = cur[:len(cur)-1]
			if exceeded {
				return
			}
		}
	}
	rec(cand)

	if bestIdx != nil {
		best = make([][2]int, len(bestIdx))
		for i, v := range bestIdx {
			best[i] = g.pos[v]
		}
	}
	return best, !exceeded
}

// IsFoolingSet verifies that the given entries form a fooling set of m:
// every entry is a 1 and every pair satisfies the fooling condition.
func IsFoolingSet(m *bitmat.Matrix, set [][2]int) bool {
	for _, e := range set {
		if !m.Get(e[0], e[1]) {
			return false
		}
	}
	for a := 0; a < len(set); a++ {
		for b := a + 1; b < len(set); b++ {
			if !compatible(m, set[a][0], set[a][1], set[b][0], set[b][1]) {
				return false
			}
		}
	}
	return true
}

// MaxSize returns the exact maximum fooling set size when the search
// completes within budget, otherwise the best lower bound found.
func MaxSize(m *bitmat.Matrix, budget int64) (size int, exact bool) {
	set, ok := Exact(m, budget)
	return len(set), ok
}
