package fooling

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitmat"
)

func TestIdentityFoolingSet(t *testing.T) {
	// The diagonal of I_n is a fooling set of size n.
	for n := 1; n <= 6; n++ {
		m := bitmat.Identity(n)
		set, ok := Exact(m, 0)
		if !ok {
			t.Fatalf("n=%d: exact search did not finish", n)
		}
		if len(set) != n {
			t.Fatalf("n=%d: fooling size %d, want %d", n, len(set), n)
		}
		if !IsFoolingSet(m, set) {
			t.Fatal("returned set is not a fooling set")
		}
	}
}

func TestAllOnesFoolingSet(t *testing.T) {
	// All-ones matrix: any two 1s fail the condition, so max size 1.
	m := bitmat.AllOnes(4, 4)
	set, ok := Exact(m, 0)
	if !ok || len(set) != 1 {
		t.Fatalf("got %d (ok=%v), want 1", len(set), ok)
	}
}

func TestPaperEq2Gap(t *testing.T) {
	// Equation 2 of the paper: this matrix needs 3 rectangles but any
	// fooling set has size ≤ 2.
	m := bitmat.MustParse("110\n011\n111")
	set, ok := Exact(m, 0)
	if !ok {
		t.Fatal("search did not finish")
	}
	if len(set) != 2 {
		t.Fatalf("max fooling size = %d, want 2 (paper Eq. 2)", len(set))
	}
}

func TestFig1bFoolingSetSize5(t *testing.T) {
	// Figure 1b of the paper: a fooling set of size 5 exists, proving the
	// 5-rectangle partition optimal.
	m := bitmat.MustParse("101100\n010011\n101010\n010101\n111000\n000111")
	set, ok := Exact(m, 0)
	if !ok {
		t.Fatal("search did not finish")
	}
	if len(set) != 5 {
		t.Fatalf("max fooling size = %d, want 5", len(set))
	}
	if !IsFoolingSet(m, set) {
		t.Fatal("not a fooling set")
	}
}

func TestZeroMatrix(t *testing.T) {
	set, ok := Exact(bitmat.New(3, 3), 0)
	if !ok || len(set) != 0 {
		t.Fatalf("zero matrix: got %d (ok=%v)", len(set), ok)
	}
	if g := Greedy(bitmat.New(2, 2)); len(g) != 0 {
		t.Fatalf("greedy on zero matrix: %v", g)
	}
}

func TestGreedyIsValidFoolingSet(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		m := bitmat.Random(rng, 2+rng.Intn(8), 2+rng.Intn(8), 0.2+0.6*rng.Float64())
		set := Greedy(m)
		if !IsFoolingSet(m, set) {
			t.Fatalf("greedy returned invalid fooling set for\n%s", m)
		}
	}
}

func TestIsFoolingSetRejects(t *testing.T) {
	m := bitmat.AllOnes(2, 2)
	if IsFoolingSet(m, [][2]int{{0, 0}, {1, 1}}) {
		t.Fatal("two 1s of all-ones matrix cannot both be in a fooling set")
	}
	if IsFoolingSet(m, [][2]int{{0, 0}, {0, 0}}) {
		t.Fatal("duplicate entries are not a valid fooling set")
	}
	z := bitmat.New(2, 2)
	if IsFoolingSet(z, [][2]int{{0, 0}}) {
		t.Fatal("a 0 entry cannot be in a fooling set")
	}
}

func TestBudgetExhaustionStillValid(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := bitmat.Random(rng, 12, 12, 0.5)
	set, _ := Exact(m, 10) // tiny budget: must still return a valid set
	if !IsFoolingSet(m, set) {
		t.Fatal("budget-limited result is not a fooling set")
	}
	if len(set) == 0 && m.Ones() > 0 {
		t.Fatal("nonempty matrix must yield nonempty fooling set")
	}
}

// Property: exact ≥ greedy, and both are valid fooling sets; exact size is
// bounded by min(rows, cols) distinct... actually by the rank bound it is
// bounded by min(#rows, #cols) since a fooling set has ≤1 entry per row.
func TestQuickExactAtLeastGreedy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := bitmat.Random(rng, 1+rng.Intn(6), 1+rng.Intn(6), rng.Float64())
		g := Greedy(m)
		e, ok := Exact(m, 0)
		if !ok {
			return false
		}
		minDim := m.Rows()
		if m.Cols() < minDim {
			minDim = m.Cols()
		}
		return len(e) >= len(g) && IsFoolingSet(m, e) && IsFoolingSet(m, g) && len(e) <= minDim
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: a fooling set has at most one entry per row and per column.
func TestQuickOneEntryPerRowCol(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := bitmat.Random(rng, 1+rng.Intn(7), 1+rng.Intn(7), rng.Float64())
		set, _ := Exact(m, 100000)
		rows := map[int]bool{}
		cols := map[int]bool{}
		for _, e := range set {
			if rows[e[0]] || cols[e[1]] {
				return false
			}
			rows[e[0]] = true
			cols[e[1]] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the word-parallel buildGraph matches the scalar compatibility
// predicate pair by pair (guards the bitset rewrite).
func TestQuickGraphMatchesCompatible(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := bitmat.Random(rng, 1+rng.Intn(9), 1+rng.Intn(9), rng.Float64())
		g := buildGraph(m)
		for a := range g.pos {
			for b := range g.pos {
				want := compatible(m, g.pos[a][0], g.pos[a][1], g.pos[b][0], g.pos[b][1])
				if g.adj[a].get(b) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
