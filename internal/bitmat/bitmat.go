// Package bitmat implements dense binary matrices packed into 64-bit words,
// together with the exact linear-algebra primitives the EBMF solver needs:
// rank over the rationals (a lower bound on binary rank, Eq. 3 of the paper),
// rank over GF(2), tensor products, and row/column compression.
//
// A Matrix is addressed as (row, col) with row-major bitset storage. Rows are
// exposed as Vec values sharing the matrix's backing storage, which makes the
// row-packing heuristic's inner loops (subset tests, subtraction) run on
// whole words instead of single bits.
package bitmat

import (
	"fmt"
	"math/bits"
	"strings"
)

// wordBits is the number of bits per storage word.
const wordBits = 64

// wordsFor returns the number of 64-bit words needed to hold n bits.
func wordsFor(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + wordBits - 1) / wordBits
}

// Matrix is a dense binary matrix with bitset-packed rows.
// The zero value is an empty 0×0 matrix.
type Matrix struct {
	rows, cols int
	wpr        int // words per row
	bits       []uint64
}

// New returns an all-zero rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("bitmat: negative dimension %d×%d", rows, cols))
	}
	wpr := wordsFor(cols)
	return &Matrix{rows: rows, cols: cols, wpr: wpr, bits: make([]uint64, rows*wpr)}
}

// FromRows builds a matrix from a slice of 0/1 int rows.
// All rows must have equal length.
func FromRows(rows [][]int) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	n := len(rows[0])
	m := New(len(rows), n)
	for i, r := range rows {
		if len(r) != n {
			panic(fmt.Sprintf("bitmat: ragged rows: row %d has %d cols, want %d", i, len(r), n))
		}
		for j, v := range r {
			switch v {
			case 0:
			case 1:
				m.Set(i, j, true)
			default:
				panic(fmt.Sprintf("bitmat: entry (%d,%d)=%d is not binary", i, j, v))
			}
		}
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// WordsPerRow returns the number of 64-bit words backing each row.
func (m *Matrix) WordsPerRow() int { return m.wpr }

func (m *Matrix) checkIndex(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("bitmat: index (%d,%d) out of range %d×%d", i, j, m.rows, m.cols))
	}
}

// Get reports whether entry (i, j) is 1.
func (m *Matrix) Get(i, j int) bool {
	m.checkIndex(i, j)
	return m.bits[i*m.wpr+j/wordBits]&(1<<(uint(j)%wordBits)) != 0
}

// Set assigns entry (i, j).
func (m *Matrix) Set(i, j int, v bool) {
	m.checkIndex(i, j)
	w := &m.bits[i*m.wpr+j/wordBits]
	mask := uint64(1) << (uint(j) % wordBits)
	if v {
		*w |= mask
	} else {
		*w &^= mask
	}
}

// Row returns row i as a Vec sharing the matrix's storage. Mutating the Vec
// mutates the matrix.
func (m *Matrix) Row(i int) Vec {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("bitmat: row %d out of range %d", i, m.rows))
	}
	return Vec{n: m.cols, w: m.bits[i*m.wpr : (i+1)*m.wpr]}
}

// SetRow copies v into row i. v must have length Cols.
func (m *Matrix) SetRow(i int, v Vec) {
	if v.n != m.cols {
		panic(fmt.Sprintf("bitmat: SetRow length %d, want %d", v.n, m.cols))
	}
	copy(m.bits[i*m.wpr:(i+1)*m.wpr], v.w)
}

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{rows: m.rows, cols: m.cols, wpr: m.wpr, bits: make([]uint64, len(m.bits))}
	copy(c.bits, m.bits)
	return c
}

// Equal reports whether two matrices have identical dimensions and entries.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i := range m.bits {
		if m.bits[i] != o.bits[i] {
			return false
		}
	}
	return true
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	t := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		base := i * m.wpr
		for wi := 0; wi < m.wpr; wi++ {
			w := m.bits[base+wi]
			for w != 0 {
				b := bits.TrailingZeros64(w)
				w &= w - 1
				t.Set(wi*wordBits+b, i, true)
			}
		}
	}
	return t
}

// Ones returns the number of 1 entries in the matrix.
func (m *Matrix) Ones() int {
	total := 0
	for _, w := range m.bits {
		total += bits.OnesCount64(w)
	}
	return total
}

// RowOnes returns the number of 1 entries in row i.
func (m *Matrix) RowOnes(i int) int { return m.Row(i).Ones() }

// IsZero reports whether every entry is 0.
func (m *Matrix) IsZero() bool {
	for _, w := range m.bits {
		if w != 0 {
			return false
		}
	}
	return true
}

// Occupancy returns the fraction of entries that are 1 (0 for empty matrices).
func (m *Matrix) Occupancy() float64 {
	if m.rows == 0 || m.cols == 0 {
		return 0
	}
	return float64(m.Ones()) / float64(m.rows*m.cols)
}

// ForEachOne calls fn for every 1 entry in row-major order.
func (m *Matrix) ForEachOne(fn func(i, j int)) {
	for i := 0; i < m.rows; i++ {
		base := i * m.wpr
		for wi := 0; wi < m.wpr; wi++ {
			w := m.bits[base+wi]
			for w != 0 {
				b := bits.TrailingZeros64(w)
				w &= w - 1
				fn(i, wi*wordBits+b)
			}
		}
	}
}

// OnesPositions returns the (row, col) coordinates of all 1 entries in
// row-major order.
func (m *Matrix) OnesPositions() [][2]int {
	out := make([][2]int, 0, m.Ones())
	m.ForEachOne(func(i, j int) { out = append(out, [2]int{i, j}) })
	return out
}

// String renders the matrix as lines of '0'/'1' characters.
func (m *Matrix) String() string {
	var sb strings.Builder
	sb.Grow(m.rows * (m.cols + 1))
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if m.Get(i, j) {
				sb.WriteByte('1')
			} else {
				sb.WriteByte('0')
			}
		}
		if i != m.rows-1 {
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// Parse reads a matrix in the format produced by String: one row per line of
// '0'/'1' characters (spaces, tabs and commas between digits are ignored;
// blank lines and lines starting with '#' are skipped).
func Parse(s string) (*Matrix, error) {
	var rows [][]int
	for ln, line := range strings.Split(s, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var row []int
		for _, c := range line {
			switch c {
			case '0':
				row = append(row, 0)
			case '1':
				row = append(row, 1)
			case ' ', '\t', ',':
			default:
				return nil, fmt.Errorf("bitmat: line %d: invalid character %q", ln+1, c)
			}
		}
		if len(rows) > 0 && len(row) != len(rows[0]) {
			return nil, fmt.Errorf("bitmat: line %d: %d columns, want %d", ln+1, len(row), len(rows[0]))
		}
		rows = append(rows, row)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("bitmat: empty input")
	}
	return FromRows(rows), nil
}

// MustParse is Parse that panics on error; intended for tests and fixed
// literal matrices.
func MustParse(s string) *Matrix {
	m, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return m
}

// ToRows converts the matrix to a slice of 0/1 int rows.
func (m *Matrix) ToRows() [][]int {
	out := make([][]int, m.rows)
	for i := range out {
		r := make([]int, m.cols)
		for j := 0; j < m.cols; j++ {
			if m.Get(i, j) {
				r[j] = 1
			}
		}
		out[i] = r
	}
	return out
}
