package bitmat

// Tensor returns the Kronecker (tensor) product a ⊗ b: a matrix of dimension
// (a.Rows·b.Rows) × (a.Cols·b.Cols) where block (i, j) equals b when
// a(i,j)=1 and is zero otherwise. This is the two-level FTQC structure of
// Section V: logical pattern ⊗ physical patch pattern.
func Tensor(a, b *Matrix) *Matrix {
	out := New(a.rows*b.rows, a.cols*b.cols)
	a.ForEachOne(func(ai, aj int) {
		b.ForEachOne(func(bi, bj int) {
			out.Set(ai*b.rows+bi, aj*b.cols+bj, true)
		})
	})
	return out
}

// AllOnes returns the rows×cols matrix with every entry 1 (binary rank 1; the
// typical physical patch pattern of Section V, e.g. transversal X/Z/H).
func AllOnes(rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, true)
		}
	}
	return m
}

// Identity returns the n×n identity matrix (binary rank n).
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, true)
	}
	return m
}

// HStack returns [a | b], the horizontal concatenation of two matrices with
// equal row counts.
func HStack(a, b *Matrix) *Matrix {
	if a.rows != b.rows {
		panic("bitmat: HStack row mismatch")
	}
	out := New(a.rows, a.cols+b.cols)
	a.ForEachOne(func(i, j int) { out.Set(i, j, true) })
	b.ForEachOne(func(i, j int) { out.Set(i, a.cols+j, true) })
	return out
}

// VStack returns a over b, the vertical concatenation of two matrices with
// equal column counts.
func VStack(a, b *Matrix) *Matrix {
	if a.cols != b.cols {
		panic("bitmat: VStack column mismatch")
	}
	out := New(a.rows+b.rows, a.cols)
	a.ForEachOne(func(i, j int) { out.Set(i, j, true) })
	b.ForEachOne(func(i, j int) { out.Set(a.rows+i, j, true) })
	return out
}

// Submatrix returns the matrix restricted to the given row and column index
// lists (in the given order; indices may repeat).
func (m *Matrix) Submatrix(rows, cols []int) *Matrix {
	out := New(len(rows), len(cols))
	for oi, i := range rows {
		for oj, j := range cols {
			if m.Get(i, j) {
				out.Set(oi, oj, true)
			}
		}
	}
	return out
}

// PermuteRows returns a new matrix whose row i is m's row perm[i].
// perm must be a permutation of [0, Rows).
func (m *Matrix) PermuteRows(perm []int) *Matrix {
	if len(perm) != m.rows {
		panic("bitmat: PermuteRows length mismatch")
	}
	out := New(m.rows, m.cols)
	for i, p := range perm {
		out.SetRow(i, m.Row(p))
	}
	return out
}

// PermuteCols returns a new matrix whose column j is m's column perm[j].
// perm must be a permutation of [0, Cols).
func (m *Matrix) PermuteCols(perm []int) *Matrix {
	if len(perm) != m.cols {
		panic("bitmat: PermuteCols length mismatch")
	}
	out := New(m.rows, m.cols)
	for j, p := range perm {
		for i := 0; i < m.rows; i++ {
			if m.Get(i, p) {
				out.Set(i, j, true)
			}
		}
	}
	return out
}
