package bitmat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVecSetGet(t *testing.T) {
	v := NewVec(130)
	for _, i := range []int{0, 63, 64, 127, 128, 129} {
		v.Set(i, true)
		if !v.Get(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if v.Ones() != 6 {
		t.Fatalf("Ones = %d, want 6", v.Ones())
	}
}

func TestVecFromBits(t *testing.T) {
	v := VecFromBits([]int{1, 0, 1, 1})
	if v.String() != "1011" {
		t.Fatalf("got %s", v.String())
	}
}

func TestVecSubsetOf(t *testing.T) {
	a := VecFromBits([]int{1, 0, 1, 0})
	b := VecFromBits([]int{1, 1, 1, 0})
	if !a.SubsetOf(b) {
		t.Error("a should be subset of b")
	}
	if b.SubsetOf(a) {
		t.Error("b should not be subset of a")
	}
	if !a.SubsetOf(a) {
		t.Error("subset must be reflexive")
	}
	zero := NewVec(4)
	if !zero.SubsetOf(a) {
		t.Error("zero vec is subset of anything")
	}
}

func TestVecAndNot(t *testing.T) {
	a := VecFromBits([]int{1, 1, 1, 0})
	b := VecFromBits([]int{0, 1, 0, 0})
	a.AndNot(b)
	if a.String() != "1010" {
		t.Fatalf("got %s, want 1010", a.String())
	}
}

func TestVecOrAndXor(t *testing.T) {
	a := VecFromBits([]int{1, 0, 1})
	b := VecFromBits([]int{0, 1, 1})
	c := a.Clone()
	c.Or(b)
	if c.String() != "111" {
		t.Fatalf("Or got %s", c.String())
	}
	c = a.Clone()
	c.And(b)
	if c.String() != "001" {
		t.Fatalf("And got %s", c.String())
	}
	c = a.Clone()
	c.Xor(b)
	if c.String() != "110" {
		t.Fatalf("Xor got %s", c.String())
	}
}

func TestVecIntersects(t *testing.T) {
	a := VecFromBits([]int{1, 0})
	b := VecFromBits([]int{0, 1})
	if a.Intersects(b) {
		t.Error("disjoint vecs intersect")
	}
	b.Set(0, true)
	if !a.Intersects(b) {
		t.Error("overlapping vecs do not intersect")
	}
}

func TestVecLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	NewVec(3).Or(NewVec(4))
}

func TestVecNextOne(t *testing.T) {
	v := NewVec(200)
	v.Set(5, true)
	v.Set(70, true)
	v.Set(199, true)
	cases := []struct{ from, want int }{
		{0, 5}, {5, 5}, {6, 70}, {70, 70}, {71, 199}, {199, 199},
	}
	for _, c := range cases {
		if got := v.NextOne(c.from); got != c.want {
			t.Errorf("NextOne(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	v.Set(199, false)
	if got := v.NextOne(71); got != -1 {
		t.Errorf("NextOne past last = %d, want -1", got)
	}
	if NewVec(0).NextOne(0) != -1 {
		t.Error("empty vec NextOne should be -1")
	}
}

func TestVecKeyDistinguishes(t *testing.T) {
	a := VecFromBits([]int{1, 0, 0})
	b := VecFromBits([]int{0, 1, 0})
	if a.Key() == b.Key() {
		t.Error("distinct vecs share a key")
	}
	if a.Key() != a.Clone().Key() {
		t.Error("equal vecs have distinct keys")
	}
}

func TestVecOnesPositions(t *testing.T) {
	v := VecFromBits([]int{0, 1, 0, 1, 1})
	got := v.OnesPositions()
	want := []int{1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// Property: AndNot then Or with the same operand restores a superset
// relationship: (a \ b) ∪ b ⊇ a.
func TestQuickAndNotOrSuperset(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(150)
		a := RandomVec(rng, n, rng.Float64())
		b := RandomVec(rng, n, rng.Float64())
		c := a.Clone()
		c.AndNot(b)
		c.Or(b)
		return a.SubsetOf(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: subset is antisymmetric — mutual subsets are equal.
func TestQuickSubsetAntisymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		a := RandomVec(rng, n, 0.5)
		b := a.Clone()
		if rng.Intn(2) == 0 {
			b = RandomVec(rng, n, 0.5)
		}
		if a.SubsetOf(b) && b.SubsetOf(a) {
			return a.Equal(b)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
