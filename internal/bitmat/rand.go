package bitmat

import "math/rand"

// Random returns a rows×cols matrix whose entries are 1 independently with
// probability occupancy, drawn from rng. Deterministic for a fixed seed.
func Random(rng *rand.Rand, rows, cols int, occupancy float64) *Matrix {
	m := New(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < occupancy {
				m.Set(i, j, true)
			}
		}
	}
	return m
}

// RandomVec returns a length-n vector with each bit set independently with
// probability occupancy.
func RandomVec(rng *rand.Rand, n int, occupancy float64) Vec {
	v := NewVec(n)
	for i := 0; i < n; i++ {
		if rng.Float64() < occupancy {
			v.Set(i, true)
		}
	}
	return v
}

// RandomNonzeroVec returns a length-n vector with at least one bit set,
// each bit set independently with probability occupancy (resampled until
// nonzero).
func RandomNonzeroVec(rng *rand.Rand, n int, occupancy float64) Vec {
	for {
		v := RandomVec(rng, n, occupancy)
		if !v.IsZero() {
			return v
		}
	}
}

// ShuffledRows returns (m', perm) where m' is m with rows shuffled by rng and
// perm maps new index → original index (m'.Row(i) == m.Row(perm[i])).
func ShuffledRows(rng *rand.Rand, m *Matrix) (*Matrix, []int) {
	perm := rng.Perm(m.rows)
	return m.PermuteRows(perm), perm
}
