package bitmat

// Compression records how a matrix was reduced by dropping all-zero rows and
// columns and consolidating duplicates, together with the maps needed to
// lift a rectangle partition of the compressed matrix back to the original.
//
// Binary rank is invariant under this reduction: a zero row/column belongs to
// no rectangle, and duplicate rows (columns) can always share every rectangle
// of their representative.
type Compression struct {
	// Reduced is the compressed matrix with distinct nonzero rows/columns.
	Reduced *Matrix
	// RowGroups[i] lists the original row indices represented by reduced
	// row i (the representative first).
	RowGroups [][]int
	// ColGroups[j] lists the original column indices represented by reduced
	// column j.
	ColGroups [][]int
	// OrigRows and OrigCols are the dimensions of the original matrix.
	OrigRows, OrigCols int
}

// Compress removes all-zero rows/columns and merges duplicate rows and then
// duplicate columns, returning the reduction record. The compressed matrix
// has the same binary rank as the original.
func Compress(m *Matrix) *Compression {
	// Group duplicate nonzero rows.
	rowIdx := make(map[string]int)
	var rowGroups [][]int
	var rowReps []int
	for i := 0; i < m.rows; i++ {
		r := m.Row(i)
		if r.IsZero() {
			continue
		}
		k := r.Key()
		if g, ok := rowIdx[k]; ok {
			rowGroups[g] = append(rowGroups[g], i)
			continue
		}
		rowIdx[k] = len(rowGroups)
		rowGroups = append(rowGroups, []int{i})
		rowReps = append(rowReps, i)
	}
	// Build the row-deduplicated matrix, then group duplicate nonzero
	// columns of that.
	rd := New(len(rowReps), m.cols)
	for ri, orig := range rowReps {
		rd.SetRow(ri, m.Row(orig))
	}
	rdT := rd.Transpose()
	colIdx := make(map[string]int)
	var colGroups [][]int
	var colReps []int
	for j := 0; j < rdT.rows; j++ {
		c := rdT.Row(j)
		if c.IsZero() {
			continue
		}
		k := c.Key()
		if g, ok := colIdx[k]; ok {
			colGroups[g] = append(colGroups[g], j)
			continue
		}
		colIdx[k] = len(colGroups)
		colGroups = append(colGroups, []int{j})
		colReps = append(colReps, j)
	}
	reduced := rd.Submatrix(seq(len(rowReps)), colReps)
	return &Compression{
		Reduced:   reduced,
		RowGroups: rowGroups,
		ColGroups: colGroups,
		OrigRows:  m.rows,
		OrigCols:  m.cols,
	}
}

// ExpandRows maps a set of reduced row indices to the corresponding original
// row indices.
func (c *Compression) ExpandRows(reduced []int) []int {
	var out []int
	for _, r := range reduced {
		out = append(out, c.RowGroups[r]...)
	}
	return out
}

// ExpandCols maps a set of reduced column indices to original column indices.
func (c *Compression) ExpandCols(reduced []int) []int {
	var out []int
	for _, cc := range reduced {
		out = append(out, c.ColGroups[cc]...)
	}
	return out
}

func seq(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}
