package bitmat

import (
	"math/rand"
	"testing"
)

// permuteMatrix returns a copy of m with rows and columns permuted by the
// given permutations (perm[i] = destination index).
func permuteMatrix(m *Matrix, rowPerm, colPerm []int) *Matrix {
	out := New(m.Rows(), m.Cols())
	m.ForEachOne(func(i, j int) { out.Set(rowPerm[i], colPerm[j], true) })
	return out
}

func randPerm(rng *rand.Rand, n int) []int {
	return rng.Perm(n)
}

const fig1b = `101100
010011
101010
010101
111000
000111`

func TestFingerprintPermutationInvariance(t *testing.T) {
	cases := []string{
		fig1b,
		"1",
		"10\n01",
		"111\n111",
		"1100\n1100\n0011",
		"10101\n01010\n11111\n00000",
	}
	rng := rand.New(rand.NewSource(7))
	for ci, s := range cases {
		m := MustParse(s)
		fp := ComputeFingerprint(m)
		if !fp.Exact {
			t.Fatalf("case %d: fingerprint inexact", ci)
		}
		for trial := 0; trial < 20; trial++ {
			p := permuteMatrix(m, randPerm(rng, m.Rows()), randPerm(rng, m.Cols()))
			fpp := ComputeFingerprint(p)
			if fpp.Hash != fp.Hash {
				t.Fatalf("case %d trial %d: permuted fingerprint differs\nm:\n%s\np:\n%s", ci, trial, m, p)
			}
		}
	}
}

func TestFingerprintDuplicateAndZeroInvariance(t *testing.T) {
	m := MustParse(fig1b)
	fp := ComputeFingerprint(m)

	// Duplicate a row, then a column, then add an all-zero row and column:
	// the reduced form (hence the fingerprint) is unchanged.
	rows := m.ToRows()
	rows = append(rows, append([]int(nil), rows[2]...)) // dup row 2
	for i := range rows {
		rows[i] = append(rows[i], rows[i][4], 0) // dup col 4 + zero col
	}
	rows = append(rows, make([]int, m.Cols()+2)) // zero row
	fpb := ComputeFingerprint(FromRows(rows))
	if fpb.Hash != fp.Hash {
		t.Fatalf("duplicate/zero-augmented matrix changed fingerprint")
	}
	if got, want := fpb.Canonical.Rows(), fp.Canonical.Rows(); got != want {
		t.Fatalf("canonical rows = %d, want %d", got, want)
	}
}

func TestFingerprintBlockShuffleInvariance(t *testing.T) {
	// Two copies of the same block placed block-diagonally in either order.
	a := MustParse("110\n011")
	b := MustParse("101\n110\n011")
	ab := blockDiag(a, b)
	ba := blockDiag(b, a)
	fa, fb := ComputeFingerprint(ab), ComputeFingerprint(ba)
	if fa.Hash != fb.Hash {
		t.Fatalf("block order changed fingerprint")
	}
}

func blockDiag(ms ...*Matrix) *Matrix {
	rows, cols := 0, 0
	for _, m := range ms {
		rows += m.Rows()
		cols += m.Cols()
	}
	out := New(rows, cols)
	ro, co := 0, 0
	for _, m := range ms {
		m.ForEachOne(func(i, j int) { out.Set(ro+i, co+j, true) })
		ro += m.Rows()
		co += m.Cols()
	}
	return out
}

func TestFingerprintDistinguishesMatrices(t *testing.T) {
	seen := map[string]string{}
	add := func(s string) {
		m := MustParse(s)
		fp := ComputeFingerprint(m)
		if prev, ok := seen[fp.Hash]; ok {
			t.Fatalf("collision between:\n%s\nand:\n%s", prev, s)
		}
		seen[fp.Hash] = s
	}
	add(fig1b)
	add("1")
	add("10\n01")
	add("110\n011")
	add("111\n101")
}

func TestFingerprintAllOnesReducesToUnit(t *testing.T) {
	// All-ones matrices of any shape reduce (dup rows/cols) to the 1×1 unit,
	// so they all share one fingerprint — the documented duplication
	// invariance.
	f1 := ComputeFingerprint(MustParse("1"))
	f2 := ComputeFingerprint(AllOnes(3, 5))
	f3 := ComputeFingerprint(AllOnes(7, 2))
	if f2.Hash != f1.Hash || f3.Hash != f1.Hash {
		t.Fatalf("all-ones matrices do not share the unit fingerprint")
	}
}

func TestFingerprintZeroMatrix(t *testing.T) {
	f1 := ComputeFingerprint(New(3, 4))
	f2 := ComputeFingerprint(New(9, 1))
	if !f1.Exact || f1.Hash != f2.Hash {
		t.Fatalf("all-zero matrices should share an exact fingerprint")
	}
	if f1.Canonical.Rows() != 0 || f1.Canonical.Cols() != 0 {
		t.Fatalf("zero matrix canonical form should be empty, got %d×%d",
			f1.Canonical.Rows(), f1.Canonical.Cols())
	}
	fp := ComputeFingerprint(MustParse("1"))
	if fp.Hash == f1.Hash {
		t.Fatalf("unit and zero matrices collide")
	}
}

func TestFingerprintIdentityFamilies(t *testing.T) {
	// Identity matrices decompose into n unit blocks; the canonical form is
	// the identity again and distinct sizes stay distinct.
	f4 := ComputeFingerprint(Identity(4))
	f5 := ComputeFingerprint(Identity(5))
	if !f4.Exact || !f5.Exact {
		t.Fatalf("identity fingerprints should be exact")
	}
	if f4.Hash == f5.Hash {
		t.Fatalf("I4 and I5 collide")
	}
	rng := rand.New(rand.NewSource(3))
	p := permuteMatrix(Identity(5), randPerm(rng, 5), randPerm(rng, 5))
	if got := ComputeFingerprint(p); got.Hash != f5.Hash {
		t.Fatalf("permutation matrix does not match identity fingerprint")
	}
}

func TestFingerprintCirculantStaysWithinBudget(t *testing.T) {
	// A cycle (circulant with two diagonals) is vertex-transitive — the
	// hardest easy case for refinement. It must still canonicalize exactly
	// and invariantly at moderate size.
	n := 16
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, true)
		m.Set(i, (i+1)%n, true)
	}
	fp := ComputeFingerprint(m)
	if !fp.Exact {
		t.Skipf("circulant exceeded canonicalization budget (acceptable: cache bypass)")
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		p := permuteMatrix(m, randPerm(rng, n), randPerm(rng, n))
		if got := ComputeFingerprint(p); got.Hash != fp.Hash {
			t.Fatalf("circulant permutation changed fingerprint")
		}
	}
}

func TestFingerprintMapsReconstructMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		m := Random(rng, 1+rng.Intn(8), 1+rng.Intn(8), 0.4)
		fp := ComputeFingerprint(m)
		if !fp.Exact {
			continue
		}
		// Mapping the canonical matrix back through RowMap/ColMap must give
		// exactly the reduced matrix.
		r := fp.Comp.Reduced
		back := New(r.Rows(), r.Cols())
		fp.Canonical.ForEachOne(func(i, j int) {
			back.Set(fp.RowMap[i], fp.ColMap[j], true)
		})
		if !back.Equal(r) {
			t.Fatalf("trial %d: canonical maps do not reconstruct the reduced matrix\nm:\n%s", trial, m)
		}
	}
}

// FuzzFingerprintInvariance checks the two load-bearing properties on random
// matrices: permuting rows/columns never changes the hash, and equal hashes
// imply equal canonical matrices (soundness — a bit flip that changes the
// reduced form must change the hash).
func FuzzFingerprintInvariance(f *testing.F) {
	f.Add(uint16(6), uint16(6), int64(1), uint8(3))
	f.Add(uint16(1), uint16(1), int64(2), uint8(0))
	f.Add(uint16(12), uint16(5), int64(3), uint8(9))
	f.Fuzz(func(t *testing.T, rows, cols uint16, seed int64, flips uint8) {
		r := int(rows)%12 + 1
		c := int(cols)%12 + 1
		rng := rand.New(rand.NewSource(seed))
		m := Random(rng, r, c, 0.35)
		fp := ComputeFingerprint(m)
		if fp.Exact {
			p := permuteMatrix(m, randPerm(rng, r), randPerm(rng, c))
			fpp := ComputeFingerprint(p)
			if fpp.Hash != fp.Hash {
				t.Fatalf("permutation changed fingerprint\nm:\n%s\np:\n%s", m, p)
			}
		}
		// Flip some bits; if the hash is unchanged the canonical forms must
		// be identical matrices (permutation/duplication equivalence is the
		// only allowed cause of collisions).
		m2 := m.Clone()
		for k := 0; k < int(flips)%4+1; k++ {
			i, j := rng.Intn(r), rng.Intn(c)
			m2.Set(i, j, !m2.Get(i, j))
		}
		fp2 := ComputeFingerprint(m2)
		if fp.Exact && fp2.Exact && fp.Hash == fp2.Hash {
			if !fp.Canonical.Equal(fp2.Canonical) {
				t.Fatalf("hash collision with different canonical forms\nm:\n%s\nm2:\n%s", m, m2)
			}
		}
	})
}
