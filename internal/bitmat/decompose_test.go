package bitmat

import (
	"math/rand"
	"testing"
)

func TestDecomposeBlockDiagonal(t *testing.T) {
	m := MustParse(`1100
1100
0011
0011`)
	d := Decompose(m)
	if len(d.Blocks) != 2 {
		t.Fatalf("want 2 blocks, got %d", len(d.Blocks))
	}
	b0, b1 := d.Blocks[0], d.Blocks[1]
	if got := b0.M.String(); got != "11\n11" {
		t.Errorf("block 0:\n%s", got)
	}
	if got := b1.M.String(); got != "11\n11" {
		t.Errorf("block 1:\n%s", got)
	}
	if b0.Rows[0] != 0 || b0.Rows[1] != 1 || b0.Cols[0] != 0 || b0.Cols[1] != 1 {
		t.Errorf("block 0 maps: rows %v cols %v", b0.Rows, b0.Cols)
	}
	if b1.Rows[0] != 2 || b1.Cols[0] != 2 {
		t.Errorf("block 1 maps: rows %v cols %v", b1.Rows, b1.Cols)
	}
}

func TestDecomposeConnected(t *testing.T) {
	m := MustParse("101\n011")
	d := Decompose(m)
	if len(d.Blocks) != 1 {
		t.Fatalf("connected matrix must be one block, got %d", len(d.Blocks))
	}
	if !d.Blocks[0].M.Equal(m) {
		t.Fatalf("single block must equal the input:\n%s", d.Blocks[0].M)
	}
}

func TestDecomposeZeroAndIdentity(t *testing.T) {
	if d := Decompose(New(3, 4)); len(d.Blocks) != 0 {
		t.Fatalf("zero matrix: want 0 blocks, got %d", len(d.Blocks))
	}
	d := Decompose(Identity(5))
	if len(d.Blocks) != 5 {
		t.Fatalf("identity: want 5 blocks, got %d", len(d.Blocks))
	}
	for _, b := range d.Blocks {
		if b.M.Rows() != 1 || b.M.Cols() != 1 || !b.M.Get(0, 0) {
			t.Fatalf("identity block is not 1×1 one: %v", b.M)
		}
	}
}

func TestDecomposeDropsZeroRowsCols(t *testing.T) {
	m := MustParse(`100
000
001`)
	d := Decompose(m)
	if len(d.Blocks) != 2 {
		t.Fatalf("want 2 blocks, got %d", len(d.Blocks))
	}
	for _, b := range d.Blocks {
		for i := 0; i < b.M.Rows(); i++ {
			if b.M.Row(i).IsZero() {
				t.Fatalf("block has zero row")
			}
		}
	}
}

// TestDecomposeCoversAllOnes: every 1 of the input appears in exactly one
// block under the lift maps, and blocks never cover a 0.
func TestDecomposeCoversAllOnes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		m := Random(rng, 1+rng.Intn(12), 1+rng.Intn(12), 0.2)
		d := Decompose(m)
		seen := New(m.Rows(), m.Cols())
		for _, b := range d.Blocks {
			b.M.ForEachOne(func(i, j int) {
				oi, oj := b.Rows[i], b.Cols[j]
				if !m.Get(oi, oj) {
					t.Fatalf("block covers 0 at (%d,%d)", oi, oj)
				}
				if seen.Get(oi, oj) {
					t.Fatalf("entry (%d,%d) in two blocks", oi, oj)
				}
				seen.Set(oi, oj, true)
			})
		}
		if !seen.Equal(m) {
			t.Fatalf("blocks do not cover all ones:\n%s\nvs\n%s", seen, m)
		}
	}
}

// TestDecomposePermutedBlocks: hiding a block structure behind row/column
// permutations must still split into the same number of components with
// matching block contents up to permutation.
func TestDecomposePermutedBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := MustParse("11\n01")
	b := MustParse("111\n100")
	m := New(5, 5)
	// diag(a, b)
	a.ForEachOne(func(i, j int) { m.Set(i, j, true) })
	b.ForEachOne(func(i, j int) { m.Set(2+i, 2+j, true) })
	pm := m.PermuteRows(rng.Perm(5)).PermuteCols(rng.Perm(5))
	d := Decompose(pm)
	if len(d.Blocks) != 2 {
		t.Fatalf("want 2 blocks after permutation, got %d", len(d.Blocks))
	}
	ones := d.Blocks[0].M.Ones() + d.Blocks[1].M.Ones()
	if ones != m.Ones() {
		t.Fatalf("blocks lose entries: %d vs %d", ones, m.Ones())
	}
}
