package bitmat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewDimensions(t *testing.T) {
	m := New(3, 70) // spans two words per row
	if m.Rows() != 3 || m.Cols() != 70 {
		t.Fatalf("got %d×%d, want 3×70", m.Rows(), m.Cols())
	}
	if !m.IsZero() {
		t.Fatal("new matrix must be zero")
	}
	if m.WordsPerRow() != 2 {
		t.Fatalf("words per row = %d, want 2", m.WordsPerRow())
	}
}

func TestSetGetRoundTrip(t *testing.T) {
	m := New(5, 130)
	coords := [][2]int{{0, 0}, {4, 129}, {2, 63}, {2, 64}, {3, 127}, {3, 128}}
	for _, c := range coords {
		m.Set(c[0], c[1], true)
	}
	for _, c := range coords {
		if !m.Get(c[0], c[1]) {
			t.Errorf("(%d,%d) not set", c[0], c[1])
		}
	}
	if m.Ones() != len(coords) {
		t.Fatalf("Ones = %d, want %d", m.Ones(), len(coords))
	}
	for _, c := range coords {
		m.Set(c[0], c[1], false)
	}
	if !m.IsZero() {
		t.Fatal("matrix should be zero after clearing")
	}
}

func TestGetOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 2).Get(2, 0)
}

func TestFromRowsAndToRows(t *testing.T) {
	rows := [][]int{{1, 0, 1}, {0, 1, 1}}
	m := FromRows(rows)
	got := m.ToRows()
	for i := range rows {
		for j := range rows[i] {
			if rows[i][j] != got[i][j] {
				t.Fatalf("round trip mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged input")
		}
	}()
	FromRows([][]int{{1, 0}, {1}})
}

func TestFromRowsNonBinaryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-binary entry")
		}
	}()
	FromRows([][]int{{2}})
}

func TestParseStringRoundTrip(t *testing.T) {
	src := "101\n010\n111"
	m := MustParse(src)
	if m.String() != src {
		t.Fatalf("String() = %q, want %q", m.String(), src)
	}
}

func TestParseSkipsCommentsAndBlanks(t *testing.T) {
	m, err := Parse("# header\n\n1 0 1\n0,1,1\n")
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("got %d×%d, want 2×3", m.Rows(), m.Cols())
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(""); err == nil {
		t.Error("empty input should error")
	}
	if _, err := Parse("10\n1"); err == nil {
		t.Error("ragged input should error")
	}
	if _, err := Parse("1x0"); err == nil {
		t.Error("invalid character should error")
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		m := Random(rng, 1+rng.Intn(12), 1+rng.Intn(90), rng.Float64())
		if !m.Transpose().Transpose().Equal(m) {
			t.Fatalf("transpose not involutive for\n%s", m)
		}
	}
}

func TestTransposeEntries(t *testing.T) {
	m := MustParse("110\n001")
	tr := m.Transpose()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("transpose dims %d×%d", tr.Rows(), tr.Cols())
	}
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			if m.Get(i, j) != tr.Get(j, i) {
				t.Fatalf("entry mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	m := MustParse("10\n01")
	c := m.Clone()
	c.Set(0, 1, true)
	if m.Get(0, 1) {
		t.Fatal("clone mutation leaked into original")
	}
	if !m.Equal(m.Clone()) {
		t.Fatal("clone should equal original")
	}
}

func TestRowSharingAndSetRow(t *testing.T) {
	m := New(2, 10)
	r := m.Row(0)
	r.Set(3, true)
	if !m.Get(0, 3) {
		t.Fatal("Row must share storage")
	}
	v := NewVec(10)
	v.Set(7, true)
	m.SetRow(1, v)
	if !m.Get(1, 7) {
		t.Fatal("SetRow did not copy")
	}
	v.Set(8, true)
	if m.Get(1, 8) {
		t.Fatal("SetRow must copy, not alias")
	}
}

func TestForEachOneOrder(t *testing.T) {
	m := MustParse("0101\n1000")
	var got [][2]int
	m.ForEachOne(func(i, j int) { got = append(got, [2]int{i, j}) })
	want := [][2]int{{0, 1}, {0, 3}, {1, 0}}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestOccupancy(t *testing.T) {
	m := MustParse("11\n00")
	if m.Occupancy() != 0.5 {
		t.Fatalf("occupancy = %v, want 0.5", m.Occupancy())
	}
	if New(0, 0).Occupancy() != 0 {
		t.Fatal("empty occupancy should be 0")
	}
}

func TestOnesPositionsCount(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := Random(rng, 8, 8, 0.4)
	if len(m.OnesPositions()) != m.Ones() {
		t.Fatal("OnesPositions length != Ones")
	}
}

// Property: parse(String(m)) == m for random matrices.
func TestQuickStringParseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := Random(rng, 1+rng.Intn(10), 1+rng.Intn(10), rng.Float64())
		back, err := Parse(m.String())
		return err == nil && back.Equal(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: transpose preserves the number of ones.
func TestQuickTransposePreservesOnes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := Random(rng, 1+rng.Intn(20), 1+rng.Intn(90), rng.Float64())
		return m.Ones() == m.Transpose().Ones()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
