package bitmat

import "math/big"

// rankPrime is the modulus for the fast modular rank pre-pass. Any prime
// works for a lower bound; this one keeps products inside uint64.
const rankPrime = 1_000_000_007

// Rank returns the exact rank of m over the rationals. Per Eq. 3 of the
// paper this is a lower bound on the binary rank.
//
// The implementation first computes the rank over GF(p) for a fixed prime p,
// which is always ≤ the rational rank. If that already equals min(rows, cols)
// the rational rank must also be full and we return immediately. Otherwise
// the exact rank is computed with fraction-free Bareiss elimination over
// big.Int, which never rounds.
func (m *Matrix) Rank() int {
	if m.rows == 0 || m.cols == 0 {
		return 0
	}
	minDim := m.rows
	if m.cols < minDim {
		minDim = m.cols
	}
	if rp := m.rankMod(rankPrime); rp == minDim {
		return rp
	}
	return m.rankBareiss()
}

// rankMod computes rank over GF(p) by Gaussian elimination. The result is a
// lower bound on the rational rank (a nonzero minor over ℚ may vanish mod p,
// never the reverse for 0/1 matrices reduced mod p).
func (m *Matrix) rankMod(p uint64) int {
	a := make([][]uint64, m.rows)
	for i := range a {
		a[i] = make([]uint64, m.cols)
		for j := 0; j < m.cols; j++ {
			if m.Get(i, j) {
				a[i][j] = 1
			}
		}
	}
	rank := 0
	for col := 0; col < m.cols && rank < m.rows; col++ {
		pivot := -1
		for r := rank; r < m.rows; r++ {
			if a[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		a[rank], a[pivot] = a[pivot], a[rank]
		inv := modInverse(a[rank][col], p)
		for j := col; j < m.cols; j++ {
			a[rank][j] = a[rank][j] * inv % p
		}
		for r := 0; r < m.rows; r++ {
			if r == rank || a[r][col] == 0 {
				continue
			}
			f := a[r][col]
			for j := col; j < m.cols; j++ {
				a[r][j] = (a[r][j] + (p-f)*a[rank][j]) % p
			}
		}
		rank++
	}
	return rank
}

// modInverse returns a^{-1} mod p for prime p via Fermat's little theorem.
func modInverse(a, p uint64) uint64 {
	return modPow(a%p, p-2, p)
}

func modPow(base, exp, mod uint64) uint64 {
	result := uint64(1)
	base %= mod
	for exp > 0 {
		if exp&1 == 1 {
			result = result * base % mod
		}
		base = base * base % mod
		exp >>= 1
	}
	return result
}

// rankBareiss computes the exact rational rank with fraction-free Bareiss
// elimination over big.Int. All intermediate values are exact integers, so
// there is no rounding; a row is dependent iff it eliminates to exact zero.
func (m *Matrix) rankBareiss() int {
	a := make([][]*big.Int, m.rows)
	for i := range a {
		a[i] = make([]*big.Int, m.cols)
		for j := 0; j < m.cols; j++ {
			if m.Get(i, j) {
				a[i][j] = big.NewInt(1)
			} else {
				a[i][j] = big.NewInt(0)
			}
		}
	}
	prev := big.NewInt(1)
	rank := 0
	tmp := new(big.Int)
	for col := 0; col < m.cols && rank < m.rows; col++ {
		pivot := -1
		for r := rank; r < m.rows; r++ {
			if a[r][col].Sign() != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		a[rank], a[pivot] = a[pivot], a[rank]
		p := a[rank][col]
		for r := rank + 1; r < m.rows; r++ {
			f := new(big.Int).Set(a[r][col])
			for j := col; j < m.cols; j++ {
				// a[r][j] = (p*a[r][j] - f*a[rank][j]) / prev   (exact division)
				tmp.Mul(f, a[rank][j])
				a[r][j].Mul(p, a[r][j])
				a[r][j].Sub(a[r][j], tmp)
				a[r][j].Quo(a[r][j], prev)
			}
		}
		prev = new(big.Int).Set(p)
		rank++
	}
	return rank
}

// RankGF2 returns the rank of m over GF(2), computed with word-parallel
// Gaussian elimination on the bitset rows. Note rank over GF(2) is NOT a
// lower bound on the binary rank in general (EBMF addition is over ℝ); it is
// exposed for analysis and the gap-benchmark construction.
func (m *Matrix) RankGF2() int {
	rows := make([]Vec, m.rows)
	for i := 0; i < m.rows; i++ {
		rows[i] = m.Row(i).Clone()
	}
	rank := 0
	for col := 0; col < m.cols && rank < m.rows; col++ {
		pivot := -1
		for r := rank; r < m.rows; r++ {
			if rows[r].Get(col) {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		rows[rank], rows[pivot] = rows[pivot], rows[rank]
		for r := 0; r < m.rows; r++ {
			if r != rank && rows[r].Get(col) {
				rows[r].Xor(rows[rank])
			}
		}
		rank++
	}
	return rank
}

// TrivialUpperBound returns the paper's trivial upper bound on binary rank:
// the smaller of the number of distinct nonzero rows and distinct nonzero
// columns (partition into single consolidated rows or columns).
func (m *Matrix) TrivialUpperBound() int {
	distinct := func(mm *Matrix) int {
		seen := make(map[string]bool, mm.rows)
		for i := 0; i < mm.rows; i++ {
			r := mm.Row(i)
			if r.IsZero() {
				continue
			}
			seen[r.Key()] = true
		}
		return len(seen)
	}
	dr := distinct(m)
	dc := distinct(m.Transpose())
	if dc < dr {
		return dc
	}
	return dr
}
