package bitmat

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"
)

// Fingerprint is a canonical-form record of a matrix: Hash is identical for
// any two matrices that are equal up to row/column permutation, duplicate
// rows/columns and all-zero rows/columns, and (up to SHA-256 collisions)
// different otherwise. It composes the existing reduction stages — Compress
// drops zero lines and merges duplicates, Decompose splits the reduction into
// bipartite connected components — and then canonically labels each block, so
// permuted and block-shuffled resubmissions of the same pattern produce the
// same hash.
//
// The record keeps everything needed to move solver results between the
// request matrix and the canonical matrix: the request's own Compression and
// the canonical→reduced index maps. A rectangle partition of Canonical maps
// to the reduced matrix through RowMap/ColMap and then lifts through Comp —
// which is how a cached result for the canonical form is replayed onto any
// permuted equivalent of the matrix it was computed from.
type Fingerprint struct {
	// Hash is the hex SHA-256 of the canonical serialization. Two matrices
	// share a Hash iff they share a canonical form (i.e. are equal up to
	// permutation and duplication), modulo hash collisions.
	Hash string
	// Exact reports that a full canonical labeling was computed. It is false
	// only when the labeling work budget was exhausted (matrices with very
	// large automorphism-induced branch trees); the Hash is then still
	// deterministic but no longer permutation-invariant, Canonical and the
	// maps are nil, and the fingerprint must not be used as a cache key.
	Exact bool
	// Canonical is the canonically labeled compressed matrix (blocks in
	// canonical order along the diagonal). Solving Canonical solves the
	// request matrix up to the recorded maps.
	Canonical *Matrix
	// Comp is the compression record of the original matrix (always set).
	Comp *Compression
	// RowMap[i] is the row of Comp.Reduced that canonical row i labels.
	RowMap []int
	// ColMap[j] is the column of Comp.Reduced that canonical column j labels.
	ColMap []int
}

// canonicalLabelBudget bounds the number of refinement passes a single
// fingerprint may spend across all blocks and branches. Refinement discretizes
// almost immediately on real addressing patterns (distinct rows and columns,
// irregular degrees); the budget only trips on highly self-similar matrices
// such as large circulants, which then simply bypass the cache.
const canonicalLabelBudget = 4096

// ComputeFingerprint canonicalizes m and returns its fingerprint record.
func ComputeFingerprint(m *Matrix) *Fingerprint {
	comp := Compress(m)
	r := comp.Reduced
	dec := Decompose(r)

	budget := canonicalLabelBudget
	type labeledBlock struct {
		ser    []byte
		ro, co []int
		blk    Block
	}
	labeled := make([]labeledBlock, 0, len(dec.Blocks))
	for _, b := range dec.Blocks {
		ser, ro, co, ok := canonicalLabel(b.M, &budget)
		if !ok {
			// Deterministic but not permutation-invariant: hash the reduced
			// matrix as-is and mark the fingerprint unusable for caching.
			h := sha256.New()
			h.Write([]byte("ebmf/fp/v1/inexact\n"))
			writeMatrix(h.Write, r)
			return &Fingerprint{Hash: hex.EncodeToString(h.Sum(nil)), Comp: comp}
		}
		labeled = append(labeled, labeledBlock{ser: ser, ro: ro, co: co, blk: b})
	}
	// Canonical block order: by serialization; ties are identical blocks, so
	// the hash is unaffected — break them by first original row only to keep
	// the maps deterministic for a fixed input.
	sort.Slice(labeled, func(a, b int) bool {
		if c := bytes.Compare(labeled[a].ser, labeled[b].ser); c != 0 {
			return c < 0
		}
		return labeled[a].blk.Rows[0] < labeled[b].blk.Rows[0]
	})

	h := sha256.New()
	h.Write([]byte("ebmf/fp/v1\n"))
	var scratch [binary.MaxVarintLen64]byte
	writeUvarint(h.Write, scratch[:], uint64(len(labeled)))
	totR, totC := 0, 0
	for _, lb := range labeled {
		writeUvarint(h.Write, scratch[:], uint64(len(lb.ser)))
		h.Write(lb.ser)
		totR += lb.blk.M.Rows()
		totC += lb.blk.M.Cols()
	}

	fp := &Fingerprint{
		Hash:      hex.EncodeToString(h.Sum(nil)),
		Exact:     true,
		Canonical: New(totR, totC),
		Comp:      comp,
		RowMap:    make([]int, totR),
		ColMap:    make([]int, totC),
	}
	rowOff, colOff := 0, 0
	for _, lb := range labeled {
		b := lb.blk
		for p, br := range lb.ro {
			fp.RowMap[rowOff+p] = b.Rows[br]
		}
		for q, bc := range lb.co {
			fp.ColMap[colOff+q] = b.Cols[bc]
		}
		for p, br := range lb.ro {
			row := b.M.Row(br)
			for q, bc := range lb.co {
				if row.Get(bc) {
					fp.Canonical.Set(rowOff+p, colOff+q, true)
				}
			}
		}
		rowOff += b.M.Rows()
		colOff += b.M.Cols()
	}
	return fp
}

// writeUvarint writes x varint-encoded through w (a hash writer; error-free).
func writeUvarint(w func([]byte) (int, error), scratch []byte, x uint64) {
	n := binary.PutUvarint(scratch, x)
	w(scratch[:n])
}

// writeMatrix streams a self-delimiting serialization of m (dims + row bits).
func writeMatrix(w func([]byte) (int, error), m *Matrix) {
	var scratch [binary.MaxVarintLen64]byte
	writeUvarint(w, scratch[:], uint64(m.Rows()))
	writeUvarint(w, scratch[:], uint64(m.Cols()))
	for i := 0; i < m.Rows(); i++ {
		w([]byte(m.Row(i).Key()))
	}
}

// labeler computes a canonical labeling of one connected block by color
// refinement (1-dimensional Weisfeiler–Leman on the bipartite row–column
// graph) with individuation branching on ties. The returned labeling is
// invariant under row/column permutation: colors are hashes of
// permutation-invariant structure only, cells are ordered by color value, and
// ties branch over every cell member keeping the lexicographically smallest
// serialized matrix, so the result depends on the isomorphism class alone.
type labeler struct {
	m, mt  *Matrix
	budget *int
}

// canonicalLabel returns rowOrder/colOrder (canonical position → block index)
// and the canonical serialization of m, or ok=false when the shared budget is
// exhausted.
func canonicalLabel(m *Matrix, budget *int) (ser []byte, rowOrder, colOrder []int, ok bool) {
	l := &labeler{m: m, mt: m.Transpose(), budget: budget}
	rc := make([]uint64, m.Rows())
	cc := make([]uint64, m.Cols())
	for i := range rc {
		rc[i] = mix64(0xa5a5_1157_0000_0001, uint64(m.Row(i).Ones()))
	}
	for j := range cc {
		cc[j] = mix64(0xc3c3_2291_0000_0002, uint64(l.mt.Row(j).Ones()))
	}
	return l.canonical(rc, cc)
}

func (l *labeler) canonical(rc, cc []uint64) (ser []byte, rowOrder, colOrder []int, ok bool) {
	*l.budget--
	if *l.budget < 0 {
		return nil, nil, nil, false
	}
	l.refine(rc, cc)

	isRow, members := chooseCell(rc, cc)
	if members == nil {
		// Discrete partition: order rows and columns by color value.
		rowOrder = argsortByColor(rc)
		colOrder = argsortByColor(cc)
		return l.serialize(rowOrder, colOrder), rowOrder, colOrder, true
	}
	// Branch: individuate each member of the target cell in turn and keep the
	// lexicographically smallest canonical form. Iterating members in block
	// index order is safe — every member is tried, so the minimum over the
	// branch set is order-independent.
	for _, v := range members {
		rc2 := append([]uint64(nil), rc...)
		cc2 := append([]uint64(nil), cc...)
		if isRow {
			rc2[v] = mix64(rc2[v], 0x517e_0000_0000_0003)
		} else {
			cc2[v] = mix64(cc2[v], 0x517e_0000_0000_0003)
		}
		s, ro, co, bok := l.canonical(rc2, cc2)
		if !bok {
			return nil, nil, nil, false
		}
		if ser == nil || bytes.Compare(s, ser) < 0 {
			ser, rowOrder, colOrder = s, ro, co
		}
	}
	return ser, rowOrder, colOrder, true
}

// refine runs color refinement to a fixpoint: a row's new color folds in the
// sorted multiset of its 1-columns' colors and vice versa. The distinct-color
// count is monotone nondecreasing and bounded, so the loop terminates.
func (l *labeler) refine(rc, cc []uint64) {
	last := countColors(rc) + countColors(cc)
	maxIter := len(rc) + len(cc) + 2
	neigh := make([]uint64, 0, 64)
	for iter := 0; iter < maxIter; iter++ {
		nrc := make([]uint64, len(rc))
		for i := range rc {
			neigh = neigh[:0]
			l.m.Row(i).ForEachOne(func(j int) { neigh = append(neigh, cc[j]) })
			nrc[i] = foldColors(rc[i], neigh)
		}
		ncc := make([]uint64, len(cc))
		for j := range cc {
			neigh = neigh[:0]
			l.mt.Row(j).ForEachOne(func(i int) { neigh = append(neigh, nrc[i]) })
			ncc[j] = foldColors(cc[j], neigh)
		}
		copy(rc, nrc)
		copy(cc, ncc)
		now := countColors(rc) + countColors(cc)
		if now == last {
			return
		}
		last = now
	}
}

// serialize packs the matrix bits in canonical order, preceded by the
// dimensions, so serializations are self-delimiting and comparable.
func (l *labeler) serialize(rowOrder, colOrder []int) []byte {
	rows, cols := len(rowOrder), len(colOrder)
	var buf bytes.Buffer
	var scratch [binary.MaxVarintLen64]byte
	writeUvarint(buf.Write, scratch[:], uint64(rows))
	writeUvarint(buf.Write, scratch[:], uint64(cols))
	var acc byte
	nbits := 0
	for _, i := range rowOrder {
		row := l.m.Row(i)
		for _, j := range colOrder {
			acc <<= 1
			if row.Get(j) {
				acc |= 1
			}
			nbits++
			if nbits == 8 {
				buf.WriteByte(acc)
				acc, nbits = 0, 0
			}
		}
	}
	if nbits > 0 {
		buf.WriteByte(acc << (8 - nbits))
	}
	return buf.Bytes()
}

// chooseCell picks the branching cell: the smallest color class with more
// than one member, ties broken by smaller color value, rows before columns.
// The rule depends only on color values and class sizes, both
// permutation-invariant. members == nil means the partition is discrete.
func chooseCell(rc, cc []uint64) (isRow bool, members []int) {
	bestSize := -1
	var bestColor uint64
	consider := func(row bool, color uint64, cell []int) {
		if len(cell) < 2 {
			return
		}
		if bestSize == -1 || len(cell) < bestSize ||
			(len(cell) == bestSize && (color < bestColor || (color == bestColor && row && !isRow))) {
			bestSize, bestColor, isRow, members = len(cell), color, row, cell
		}
	}
	for color, cell := range colorCells(rc) {
		consider(true, color, cell)
	}
	for color, cell := range colorCells(cc) {
		consider(false, color, cell)
	}
	return isRow, members
}

// colorCells groups indices by color value, members in ascending index order.
func colorCells(colors []uint64) map[uint64][]int {
	cells := make(map[uint64][]int)
	for i, c := range colors {
		cells[c] = append(cells[c], i)
	}
	return cells
}

// argsortByColor returns indices ordered by ascending color value. Intended
// for discrete partitions, where colors are pairwise distinct.
func argsortByColor(colors []uint64) []int {
	order := make([]int, len(colors))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return colors[order[a]] < colors[order[b]] })
	return order
}

func countColors(colors []uint64) int {
	seen := make(map[uint64]struct{}, len(colors))
	for _, c := range colors {
		seen[c] = struct{}{}
	}
	return len(seen)
}

// foldColors hashes a base color with a sorted multiset of neighbour colors.
// sort.Slice makes the fold independent of neighbour enumeration order, so
// the result is an isomorphism invariant.
func foldColors(base uint64, neigh []uint64) uint64 {
	sort.Slice(neigh, func(a, b int) bool { return neigh[a] < neigh[b] })
	h := mix64(0x9e3779b97f4a7c15, base)
	for _, c := range neigh {
		h = mix64(h, c)
	}
	return h
}

// mix64 is a splitmix64-style mixing step: deterministic, platform-free, and
// well-spread, so accidental color collisions (which only merge cells and
// cost branching, never correctness) are vanishingly rare.
func mix64(h, x uint64) uint64 {
	h ^= x + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
