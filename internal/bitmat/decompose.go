package bitmat

import "sort"

// Block is one connected component of a matrix's bipartite row-column graph,
// extracted as a standalone matrix together with the index maps back to the
// matrix it was cut from (mirroring Compression's lift maps).
type Block struct {
	// M is the component's submatrix: M.Get(i, j) = orig.Get(Rows[i], Cols[j]).
	M *Matrix
	// Rows[i] is the original row index of block row i (ascending).
	Rows []int
	// Cols[j] is the original column index of block column j (ascending).
	Cols []int
}

// Decomposition splits a matrix into the connected components of its
// bipartite graph (rows and columns are vertices; each 1-entry is an edge).
// Rectangles never span components — a rectangle containing rows/columns of
// two components would cover a 0 — so binary rank is additive over blocks and
// a depth-optimal partition is the union of per-block optima. All-zero rows
// and columns belong to no block.
type Decomposition struct {
	// Blocks are the components, ordered by smallest original row index.
	Blocks []Block
	// OrigRows and OrigCols are the dimensions of the decomposed matrix.
	OrigRows, OrigCols int
}

// Decompose computes the bipartite connected-component decomposition of m.
// The union of the blocks' 1-entries is exactly the 1-entries of m; each
// block matrix has no all-zero row or column.
func Decompose(m *Matrix) *Decomposition {
	// Union-find over rows [0, rows) and columns [rows, rows+cols).
	parent := make([]int, m.rows+m.cols)
	for i := range parent {
		parent[i] = i
	}
	var find func(x int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	colUsed := make([]bool, m.cols)
	m.ForEachOne(func(i, j int) {
		union(i, m.rows+j)
		colUsed[j] = true
	})

	// Group nonzero rows and columns by component root.
	rowsOf := make(map[int][]int)
	colsOf := make(map[int][]int)
	for i := 0; i < m.rows; i++ {
		if !m.Row(i).IsZero() {
			r := find(i)
			rowsOf[r] = append(rowsOf[r], i)
		}
	}
	for j := 0; j < m.cols; j++ {
		if colUsed[j] {
			r := find(m.rows + j)
			colsOf[r] = append(colsOf[r], j)
		}
	}

	d := &Decomposition{OrigRows: m.rows, OrigCols: m.cols}
	roots := make([]int, 0, len(rowsOf))
	for r := range rowsOf {
		roots = append(roots, r)
	}
	// Deterministic block order: by smallest original row index.
	sort.Slice(roots, func(a, b int) bool { return rowsOf[roots[a]][0] < rowsOf[roots[b]][0] })
	for _, r := range roots {
		rows, cols := rowsOf[r], colsOf[r]
		d.Blocks = append(d.Blocks, Block{
			M:    m.Submatrix(rows, cols),
			Rows: rows,
			Cols: cols,
		})
	}
	return d
}

// ExpandRows maps block row indices to the corresponding original row
// indices.
func (b *Block) ExpandRows(block []int) []int {
	out := make([]int, len(block))
	for i, r := range block {
		out[i] = b.Rows[r]
	}
	return out
}

// ExpandCols maps block column indices to original column indices.
func (b *Block) ExpandCols(block []int) []int {
	out := make([]int, len(block))
	for i, c := range block {
		out[i] = b.Cols[c]
	}
	return out
}
