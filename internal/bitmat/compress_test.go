package bitmat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCompressRemovesZeroRowsCols(t *testing.T) {
	m := MustParse("000\n101\n000")
	c := Compress(m)
	// The zero rows drop, and the two surviving columns are duplicates of
	// each other, so they merge too: the reduction is 1×1.
	if c.Reduced.Rows() != 1 || c.Reduced.Cols() != 1 {
		t.Fatalf("reduced dims %d×%d, want 1×1", c.Reduced.Rows(), c.Reduced.Cols())
	}
	if got := c.ExpandCols([]int{0}); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("col group = %v, want [0 2]", got)
	}
}

func TestCompressMergesDuplicates(t *testing.T) {
	m := MustParse("110\n110\n001\n001")
	c := Compress(m)
	if c.Reduced.Rows() != 2 {
		t.Fatalf("reduced rows = %d, want 2", c.Reduced.Rows())
	}
	if len(c.RowGroups[0]) != 2 || len(c.RowGroups[1]) != 2 {
		t.Fatalf("row groups %v", c.RowGroups)
	}
}

func TestCompressMergesDuplicateColumns(t *testing.T) {
	m := MustParse("11\n11\n11")
	c := Compress(m)
	if c.Reduced.Rows() != 1 || c.Reduced.Cols() != 1 {
		t.Fatalf("reduced dims %d×%d, want 1×1", c.Reduced.Rows(), c.Reduced.Cols())
	}
	if got := c.ExpandCols([]int{0}); len(got) != 2 {
		t.Fatalf("expand cols %v", got)
	}
	if got := c.ExpandRows([]int{0}); len(got) != 3 {
		t.Fatalf("expand rows %v", got)
	}
}

func TestCompressPreservesRank(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 25; trial++ {
		m := Random(rng, 1+rng.Intn(10), 1+rng.Intn(10), rng.Float64())
		c := Compress(m)
		if c.Reduced.Rank() != m.Rank() {
			t.Fatalf("rank changed by compression:\n%s\n->\n%s", m, c.Reduced)
		}
	}
}

func TestCompressExpandCoversAllOnes(t *testing.T) {
	// Every original 1 must be recoverable from some reduced 1 via group
	// expansion.
	rng := rand.New(rand.NewSource(21))
	m := Random(rng, 8, 8, 0.4)
	c := Compress(m)
	covered := New(m.Rows(), m.Cols())
	c.Reduced.ForEachOne(func(ri, rj int) {
		for _, oi := range c.RowGroups[ri] {
			for _, oj := range c.ColGroups[rj] {
				covered.Set(oi, oj, true)
			}
		}
	})
	if !covered.Equal(m) {
		t.Fatalf("expansion mismatch:\norig\n%s\ncovered\n%s", m, covered)
	}
}

func TestCompressZeroMatrix(t *testing.T) {
	c := Compress(New(3, 3))
	if c.Reduced.Rows() != 0 {
		t.Fatalf("zero matrix should compress to 0 rows, got %d", c.Reduced.Rows())
	}
}

// Property: reduced matrix has no duplicate or zero rows/columns.
func TestQuickCompressCanonical(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := Random(rng, 1+rng.Intn(10), 1+rng.Intn(10), rng.Float64())
		r := Compress(m).Reduced
		seenR := map[string]bool{}
		for i := 0; i < r.Rows(); i++ {
			row := r.Row(i)
			if row.IsZero() || seenR[row.Key()] {
				return false
			}
			seenR[row.Key()] = true
		}
		rt := r.Transpose()
		seenC := map[string]bool{}
		for i := 0; i < rt.Rows(); i++ {
			col := rt.Row(i)
			if col.IsZero() || seenC[col.Key()] {
				return false
			}
			seenC[col.Key()] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
