package bitmat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRankIdentity(t *testing.T) {
	for n := 1; n <= 8; n++ {
		if got := Identity(n).Rank(); got != n {
			t.Errorf("rank(I_%d) = %d", n, got)
		}
	}
}

func TestRankAllOnes(t *testing.T) {
	if got := AllOnes(4, 7).Rank(); got != 1 {
		t.Fatalf("rank(J) = %d, want 1", got)
	}
}

func TestRankZero(t *testing.T) {
	if got := New(3, 5).Rank(); got != 0 {
		t.Fatalf("rank(0) = %d, want 0", got)
	}
	if got := New(0, 0).Rank(); got != 0 {
		t.Fatalf("rank(empty) = %d, want 0", got)
	}
}

func TestRankPaperEq2Matrix(t *testing.T) {
	// [[1,1,0],[0,1,1],[1,1,1]] has determinant 1, so full rational rank 3.
	m := MustParse("110\n011\n111")
	if got := m.Rank(); got != 3 {
		t.Fatalf("rank = %d, want 3", got)
	}
}

func TestRankGF2DiffersFromRational(t *testing.T) {
	// The 3×3 "triangle" matrix: rank 3 over ℚ but rank 2 over GF(2)
	// (rows sum to zero mod 2).
	m := MustParse("011\n101\n110")
	if got := m.Rank(); got != 3 {
		t.Fatalf("rational rank = %d, want 3", got)
	}
	if got := m.RankGF2(); got != 2 {
		t.Fatalf("GF2 rank = %d, want 2", got)
	}
}

func TestRankDuplicateRows(t *testing.T) {
	m := MustParse("101\n101\n010")
	if got := m.Rank(); got != 2 {
		t.Fatalf("rank = %d, want 2", got)
	}
}

func TestRankRectangular(t *testing.T) {
	// Rank cannot exceed the smaller dimension.
	rng := rand.New(rand.NewSource(3))
	m := Random(rng, 4, 30, 0.5)
	if got := m.Rank(); got > 4 {
		t.Fatalf("rank %d exceeds row count 4", got)
	}
}

func TestRankBareissMatchesNaive(t *testing.T) {
	// Compare Bareiss against a float-free rational elimination on small
	// matrices via brute force over all 3×3 binary matrices.
	for mask := 0; mask < 512; mask++ {
		m := New(3, 3)
		for b := 0; b < 9; b++ {
			if mask&(1<<b) != 0 {
				m.Set(b/3, b%3, true)
			}
		}
		want := naiveRankFloat(m)
		if got := m.rankBareiss(); got != want {
			t.Fatalf("mask %d: bareiss=%d naive=%d\n%s", mask, got, want, m)
		}
		if got := m.Rank(); got != want {
			t.Fatalf("mask %d: Rank=%d naive=%d", mask, got, want)
		}
	}
}

// naiveRankFloat computes rank with float Gaussian elimination; exact for
// tiny binary matrices.
func naiveRankFloat(m *Matrix) int {
	rows := m.Rows()
	cols := m.Cols()
	a := make([][]float64, rows)
	for i := range a {
		a[i] = make([]float64, cols)
		for j := 0; j < cols; j++ {
			if m.Get(i, j) {
				a[i][j] = 1
			}
		}
	}
	rank := 0
	for c := 0; c < cols && rank < rows; c++ {
		p := -1
		for r := rank; r < rows; r++ {
			if a[r][c] > 0.5 || a[r][c] < -0.5 {
				p = r
				break
			}
		}
		if p < 0 {
			continue
		}
		a[rank], a[p] = a[p], a[rank]
		for r := 0; r < rows; r++ {
			if r == rank || a[r][c] == 0 {
				continue
			}
			f := a[r][c] / a[rank][c]
			for j := c; j < cols; j++ {
				a[r][j] -= f * a[rank][j]
			}
		}
		rank++
	}
	return rank
}

func TestRankModLowerBoundsBareiss(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		m := Random(rng, 2+rng.Intn(8), 2+rng.Intn(8), 0.2+0.6*rng.Float64())
		rp := m.rankMod(rankPrime)
		rb := m.rankBareiss()
		if rp > rb {
			t.Fatalf("modular rank %d > rational rank %d\n%s", rp, rb, m)
		}
		if rp != rb {
			// For random 0/1 matrices and a billion-scale prime a strict gap
			// is essentially impossible; flag it so we notice.
			t.Logf("note: modular %d < rational %d (possible but rare)", rp, rb)
		}
	}
}

func TestTrivialUpperBound(t *testing.T) {
	// Duplicated rows collapse: 4 rows, 2 distinct.
	m := MustParse("110\n110\n001\n001")
	if got := m.TrivialUpperBound(); got != 2 {
		t.Fatalf("trivial bound = %d, want 2", got)
	}
	// All-ones 5×3: one distinct row, one distinct column → bound 1.
	if got := AllOnes(5, 3).TrivialUpperBound(); got != 1 {
		t.Fatalf("trivial bound(J) = %d, want 1", got)
	}
	if got := New(3, 3).TrivialUpperBound(); got != 0 {
		t.Fatalf("trivial bound(0) = %d, want 0", got)
	}
}

// Property: rank is invariant under transposition.
func TestQuickRankTransposeInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := Random(rng, 1+rng.Intn(8), 1+rng.Intn(8), rng.Float64())
		return m.Rank() == m.Transpose().Rank()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: rank ≤ TrivialUpperBound ≤ min(m, n); rank ≥ 0.
func TestQuickRankBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := Random(rng, 1+rng.Intn(9), 1+rng.Intn(9), rng.Float64())
		r := m.Rank()
		ub := m.TrivialUpperBound()
		minDim := m.Rows()
		if m.Cols() < minDim {
			minDim = m.Cols()
		}
		return r >= 0 && r <= ub && ub <= minDim
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: rank is multiplicative under tensor product (Section V).
func TestQuickRankTensorMultiplicative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := Random(rng, 1+rng.Intn(4), 1+rng.Intn(4), 0.5)
		b := Random(rng, 1+rng.Intn(4), 1+rng.Intn(4), 0.5)
		return Tensor(a, b).Rank() == a.Rank()*b.Rank()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestModInverse(t *testing.T) {
	for _, a := range []uint64{1, 2, 3, 12345, rankPrime - 1} {
		inv := modInverse(a, rankPrime)
		if a*inv%rankPrime != 1 {
			t.Errorf("modInverse(%d) wrong", a)
		}
	}
}
