package bitmat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTensorSmall(t *testing.T) {
	a := MustParse("10\n01")
	b := MustParse("11")
	got := Tensor(a, b)
	want := MustParse("1100\n0011")
	if !got.Equal(want) {
		t.Fatalf("tensor:\n%s\nwant:\n%s", got, want)
	}
}

func TestTensorDims(t *testing.T) {
	a := New(2, 3)
	b := New(4, 5)
	tp := Tensor(a, b)
	if tp.Rows() != 8 || tp.Cols() != 15 {
		t.Fatalf("dims %d×%d, want 8×15", tp.Rows(), tp.Cols())
	}
}

func TestTensorWithAllOnesPatch(t *testing.T) {
	// M̂ ⊗ J: each logical 1 becomes an all-ones patch (Section V).
	logical := MustParse("10\n11")
	patch := AllOnes(2, 2)
	tp := Tensor(logical, patch)
	if tp.Ones() != logical.Ones()*4 {
		t.Fatalf("ones = %d, want %d", tp.Ones(), logical.Ones()*4)
	}
	if tp.Rank() != logical.Rank() {
		t.Fatalf("rank = %d, want %d", tp.Rank(), logical.Rank())
	}
}

func TestIdentityAndAllOnes(t *testing.T) {
	if got := Identity(3).Ones(); got != 3 {
		t.Fatalf("I_3 ones = %d", got)
	}
	if got := AllOnes(3, 4).Ones(); got != 12 {
		t.Fatalf("J ones = %d", got)
	}
}

func TestHStackVStack(t *testing.T) {
	a := MustParse("10\n01")
	b := MustParse("11\n11")
	h := HStack(a, b)
	if h.String() != "1011\n0111" {
		t.Fatalf("HStack:\n%s", h)
	}
	v := VStack(a, b)
	if v.String() != "10\n01\n11\n11" {
		t.Fatalf("VStack:\n%s", v)
	}
}

func TestHStackMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	HStack(New(2, 2), New(3, 2))
}

func TestVStackMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	VStack(New(2, 2), New(2, 3))
}

func TestSubmatrix(t *testing.T) {
	m := MustParse("101\n010\n111")
	s := m.Submatrix([]int{0, 2}, []int{2, 0})
	if s.String() != "11\n11" {
		t.Fatalf("submatrix:\n%s", s)
	}
}

func TestPermuteRows(t *testing.T) {
	m := MustParse("100\n010\n001")
	p := m.PermuteRows([]int{2, 0, 1})
	if p.String() != "001\n100\n010" {
		t.Fatalf("permute:\n%s", p)
	}
}

func TestShuffledRowsPermValid(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := Random(rng, 6, 6, 0.5)
	sh, perm := ShuffledRows(rng, m)
	for i, p := range perm {
		if !sh.Row(i).Equal(m.Row(p)) {
			t.Fatalf("row %d does not match original row %d", i, p)
		}
	}
}

// Property: tensor ones count is multiplicative.
func TestQuickTensorOnesMultiplicative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := Random(rng, 1+rng.Intn(5), 1+rng.Intn(5), rng.Float64())
		b := Random(rng, 1+rng.Intn(5), 1+rng.Intn(5), rng.Float64())
		return Tensor(a, b).Ones() == a.Ones()*b.Ones()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: (a⊗b)ᵀ == aᵀ⊗bᵀ.
func TestQuickTensorTransposeCommutes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := Random(rng, 1+rng.Intn(4), 1+rng.Intn(4), 0.5)
		b := Random(rng, 1+rng.Intn(4), 1+rng.Intn(4), 0.5)
		return Tensor(a, b).Transpose().Equal(Tensor(a.Transpose(), b.Transpose()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
