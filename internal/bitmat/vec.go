package bitmat

import (
	"fmt"
	"math/bits"
	"strings"
)

// Vec is a binary vector packed into 64-bit words. Vecs returned by
// Matrix.Row share storage with the matrix; Vecs from NewVec own theirs.
type Vec struct {
	n int
	w []uint64
}

// NewVec returns an all-zero vector of length n.
func NewVec(n int) Vec {
	if n < 0 {
		panic(fmt.Sprintf("bitmat: negative vector length %d", n))
	}
	return Vec{n: n, w: make([]uint64, wordsFor(n))}
}

// VecFromBits builds a vector from 0/1 ints.
func VecFromBits(bits []int) Vec {
	v := NewVec(len(bits))
	for i, b := range bits {
		switch b {
		case 0:
		case 1:
			v.Set(i, true)
		default:
			panic(fmt.Sprintf("bitmat: bit %d=%d is not binary", i, b))
		}
	}
	return v
}

// Len returns the vector length in bits.
func (v Vec) Len() int { return v.n }

func (v Vec) checkIndex(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitmat: vec index %d out of range %d", i, v.n))
	}
}

// Get reports whether bit i is set.
func (v Vec) Get(i int) bool {
	v.checkIndex(i)
	return v.w[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Set assigns bit i.
func (v Vec) Set(i int, b bool) {
	v.checkIndex(i)
	if b {
		v.w[i/wordBits] |= 1 << (uint(i) % wordBits)
	} else {
		v.w[i/wordBits] &^= 1 << (uint(i) % wordBits)
	}
}

// Clone returns an independent copy of v.
func (v Vec) Clone() Vec {
	c := Vec{n: v.n, w: make([]uint64, len(v.w))}
	copy(c.w, v.w)
	return c
}

// Ones returns the number of set bits.
func (v Vec) Ones() int {
	total := 0
	for _, w := range v.w {
		total += bits.OnesCount64(w)
	}
	return total
}

// IsZero reports whether no bits are set.
func (v Vec) IsZero() bool {
	for _, w := range v.w {
		if w != 0 {
			return false
		}
	}
	return true
}

func (v Vec) checkSameLen(o Vec) {
	if v.n != o.n {
		panic(fmt.Sprintf("bitmat: vector length mismatch %d vs %d", v.n, o.n))
	}
}

// Equal reports whether v and o have the same length and bits.
func (v Vec) Equal(o Vec) bool {
	if v.n != o.n {
		return false
	}
	for i := range v.w {
		if v.w[i] != o.w[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every set bit of v is also set in o.
func (v Vec) SubsetOf(o Vec) bool {
	v.checkSameLen(o)
	for i := range v.w {
		if v.w[i]&^o.w[i] != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether v and o share a set bit.
func (v Vec) Intersects(o Vec) bool {
	v.checkSameLen(o)
	for i := range v.w {
		if v.w[i]&o.w[i] != 0 {
			return true
		}
	}
	return false
}

// AndNot clears in v every bit set in o (v ← v \ o), in place.
func (v Vec) AndNot(o Vec) {
	v.checkSameLen(o)
	for i := range v.w {
		v.w[i] &^= o.w[i]
	}
}

// Or sets in v every bit set in o (v ← v ∪ o), in place.
func (v Vec) Or(o Vec) {
	v.checkSameLen(o)
	for i := range v.w {
		v.w[i] |= o.w[i]
	}
}

// And keeps in v only bits also set in o (v ← v ∩ o), in place.
func (v Vec) And(o Vec) {
	v.checkSameLen(o)
	for i := range v.w {
		v.w[i] &= o.w[i]
	}
}

// Xor flips in v every bit set in o (symmetric difference), in place.
func (v Vec) Xor(o Vec) {
	v.checkSameLen(o)
	for i := range v.w {
		v.w[i] ^= o.w[i]
	}
}

// ForEachOne calls fn for every set bit index in increasing order.
func (v Vec) ForEachOne(fn func(i int)) {
	for wi, w := range v.w {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &= w - 1
			fn(wi*wordBits + b)
		}
	}
}

// OnesPositions returns the indices of all set bits in increasing order.
func (v Vec) OnesPositions() []int {
	out := make([]int, 0, v.Ones())
	v.ForEachOne(func(i int) { out = append(out, i) })
	return out
}

// NextOne returns the smallest set bit index ≥ from, or -1 if none.
func (v Vec) NextOne(from int) int {
	if from < 0 {
		from = 0
	}
	if from >= v.n {
		return -1
	}
	wi := from / wordBits
	w := v.w[wi] >> (uint(from) % wordBits)
	if w != 0 {
		return from + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(v.w); wi++ {
		if v.w[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(v.w[wi])
		}
	}
	return -1
}

// String renders the vector as '0'/'1' characters.
func (v Vec) String() string {
	var sb strings.Builder
	sb.Grow(v.n)
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Key returns a comparable string key for use in maps (raw word bytes).
// Two vectors of equal length have equal keys iff they are Equal.
func (v Vec) Key() string {
	var sb strings.Builder
	sb.Grow(len(v.w) * 8)
	for _, w := range v.w {
		for s := 0; s < 64; s += 8 {
			sb.WriteByte(byte(w >> uint(s)))
		}
	}
	return sb.String()
}
