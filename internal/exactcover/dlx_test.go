package exactcover

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestKnuthPaperExample(t *testing.T) {
	// The example from Knuth's Dancing Links paper:
	// rows: {2,4,5}, {0,3,6}, {1,2,5}, {0,3}, {1,6}, {3,4,6}
	// unique solution: rows 0, 3... wait: {0,3} ∪ {2,4,5} ∪ {1,6} covers all.
	p := NewProblem(7)
	p.AddRow([]int{2, 4, 5}) // 0
	p.AddRow([]int{0, 3, 6}) // 1
	p.AddRow([]int{1, 2, 5}) // 2
	p.AddRow([]int{0, 3})    // 3
	p.AddRow([]int{1, 6})    // 4
	p.AddRow([]int{3, 4, 6}) // 5
	sol, ok := p.FirstSolution()
	if !ok {
		t.Fatal("no solution found")
	}
	sort.Ints(sol)
	want := []int{0, 3, 4}
	if len(sol) != 3 || sol[0] != want[0] || sol[1] != want[1] || sol[2] != want[2] {
		t.Fatalf("solution %v, want %v", sol, want)
	}
	if got := p.CountSolutions(0); got != 1 {
		t.Fatalf("solutions = %d, want 1", got)
	}
}

func TestNoSolution(t *testing.T) {
	p := NewProblem(3)
	p.AddRow([]int{0})
	p.AddRow([]int{1})
	// Column 2 is uncoverable.
	if _, ok := p.FirstSolution(); ok {
		t.Fatal("found solution where none exists")
	}
}

func TestEmptyProblemHasEmptySolution(t *testing.T) {
	p := NewProblem(0)
	sol, ok := p.FirstSolution()
	if !ok || len(sol) != 0 {
		t.Fatalf("empty problem: sol=%v ok=%v", sol, ok)
	}
}

func TestOverlappingRowsRejectedInCover(t *testing.T) {
	// Two rows overlap on column 0; only disjoint unions are covers.
	p := NewProblem(2)
	p.AddRow([]int{0, 1}) // 0
	p.AddRow([]int{0})    // 1
	p.AddRow([]int{1})    // 2
	count := 0
	p.Solutions(func(rows []int) bool {
		count++
		sort.Ints(rows)
		if len(rows) == 1 && rows[0] != 0 {
			t.Fatalf("bad 1-row solution %v", rows)
		}
		return true
	})
	// Solutions: {0} and {1,2}.
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
}

func TestCountLimit(t *testing.T) {
	// n disjoint singletons in two copies each: 2^n covers; limit cuts off.
	p := NewProblem(3)
	for c := 0; c < 3; c++ {
		p.AddRow([]int{c})
		p.AddRow([]int{c})
	}
	if got := p.CountSolutions(5); got != 5 {
		t.Fatalf("limited count = %d, want 5", got)
	}
	if got := p.CountSolutions(0); got != 8 {
		t.Fatalf("full count = %d, want 8", got)
	}
}

func TestDuplicateColumnInRowIgnored(t *testing.T) {
	p := NewProblem(2)
	p.AddRow([]int{0, 0, 1})
	sol, ok := p.FirstSolution()
	if !ok || len(sol) != 1 {
		t.Fatalf("sol=%v ok=%v", sol, ok)
	}
}

// bruteForceCovers counts exact covers by subset enumeration.
func bruteForceCovers(nCols int, rows [][]int) int {
	count := 0
	n := len(rows)
	for mask := 0; mask < 1<<uint(n); mask++ {
		covered := make([]int, nCols)
		ok := true
		for r := 0; r < n && ok; r++ {
			if mask&(1<<uint(r)) == 0 {
				continue
			}
			for _, c := range rows[r] {
				covered[c]++
				if covered[c] > 1 {
					ok = false
					break
				}
			}
		}
		if !ok {
			continue
		}
		for _, c := range covered {
			if c != 1 {
				ok = false
				break
			}
		}
		if ok {
			count++
		}
	}
	return count
}

// Property: DLX solution count matches brute force on random instances.
func TestQuickAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nCols := 1 + rng.Intn(6)
		nRows := rng.Intn(10)
		rows := make([][]int, nRows)
		p := NewProblem(nCols)
		for r := range rows {
			var cols []int
			for c := 0; c < nCols; c++ {
				if rng.Intn(3) == 0 {
					cols = append(cols, c)
				}
			}
			if len(cols) == 0 {
				cols = []int{rng.Intn(nCols)}
			}
			rows[r] = cols
			p.AddRow(cols)
		}
		return p.CountSolutions(0) == bruteForceCovers(nCols, rows)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: every reported solution is a valid exact cover.
func TestQuickSolutionsAreExactCovers(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nCols := 2 + rng.Intn(5)
		rows := make([][]int, 2+rng.Intn(8))
		p := NewProblem(nCols)
		for r := range rows {
			var cols []int
			for c := 0; c < nCols; c++ {
				if rng.Intn(2) == 0 {
					cols = append(cols, c)
				}
			}
			if len(cols) == 0 {
				cols = []int{0}
			}
			rows[r] = cols
			p.AddRow(cols)
		}
		valid := true
		p.Solutions(func(sol []int) bool {
			covered := make([]int, nCols)
			for _, r := range sol {
				for _, c := range rows[r] {
					covered[c]++
				}
			}
			for _, c := range covered {
				if c != 1 {
					valid = false
				}
			}
			return valid
		})
		return valid
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
