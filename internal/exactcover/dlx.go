// Package exactcover implements Knuth's Algorithm X with dancing links
// (DLX). The row-packing heuristic's residue decomposition is an exact-cover
// problem: decompose a matrix row into a disjoint union of basis vectors.
// The paper lists Algorithm X as a future-work improvement over pure
// shuffling; package rowpack uses this solver in its DLX variant.
package exactcover

// node is a cell of the dancing-links mesh.
type node struct {
	left, right, up, down *node
	col                   *column
	rowID                 int
}

// column is a column header.
type column struct {
	node
	size int
	id   int
}

// Problem is an exact-cover instance: a set of columns (items to cover) and
// rows (candidate subsets). Build with NewProblem/AddRow, solve with
// FirstSolution or Solutions.
type Problem struct {
	root    *column
	cols    []*column
	numRows int
}

// NewProblem returns an instance with n columns, all mandatory.
func NewProblem(n int) *Problem {
	p := &Problem{root: &column{id: -1}}
	p.root.left = &p.root.node
	p.root.right = &p.root.node
	p.cols = make([]*column, n)
	for i := 0; i < n; i++ {
		c := &column{id: i}
		c.col = c
		c.up = &c.node
		c.down = &c.node
		// Insert at the end of the header list.
		c.left = p.root.left
		c.right = &p.root.node
		p.root.left.right = &c.node
		p.root.left = &c.node
		p.cols[i] = c
	}
	return p
}

// AddRow adds a candidate subset covering the given column indices and
// returns its row id. Duplicate column indices within a row are ignored.
func (p *Problem) AddRow(cols []int) int {
	id := p.numRows
	p.numRows++
	var first *node
	seen := map[int]bool{}
	for _, ci := range cols {
		if ci < 0 || ci >= len(p.cols) || seen[ci] {
			if seen[ci] {
				continue
			}
			panic("exactcover: column index out of range")
		}
		seen[ci] = true
		c := p.cols[ci]
		n := &node{col: c, rowID: id}
		// Vertical insertion at the bottom of the column.
		n.up = c.up
		n.down = &c.node
		c.up.down = n
		c.up = n
		c.size++
		// Horizontal circular list within the row.
		if first == nil {
			first = n
			n.left = n
			n.right = n
		} else {
			n.left = first.left
			n.right = first
			first.left.right = n
			first.left = n
		}
	}
	return id
}

func (p *Problem) cover(c *column) {
	c.right.left = c.left
	c.left.right = c.right
	for i := c.down; i != &c.node; i = i.down {
		for j := i.right; j != i; j = j.right {
			j.down.up = j.up
			j.up.down = j.down
			j.col.size--
		}
	}
}

func (p *Problem) uncover(c *column) {
	for i := c.up; i != &c.node; i = i.up {
		for j := i.left; j != i; j = j.left {
			j.col.size++
			j.down.up = j
			j.up.down = j
		}
	}
	c.right.left = &c.node
	c.left.right = &c.node
}

// Solutions invokes fn with the row ids of every exact cover, in search
// order, until fn returns false or the search space is exhausted. It reports
// whether the search ran to completion (false if fn stopped it).
func (p *Problem) Solutions(fn func(rows []int) bool) bool {
	var sol []int
	stopped := false
	var search func()
	search = func() {
		if stopped {
			return
		}
		if p.root.right == &p.root.node {
			out := make([]int, len(sol))
			copy(out, sol)
			if !fn(out) {
				stopped = true
			}
			return
		}
		// Choose the column with the fewest rows (Knuth's S heuristic).
		var best *column
		for c := p.root.right; c != &p.root.node; c = c.right {
			cc := c.col
			if best == nil || cc.size < best.size {
				best = cc
			}
		}
		if best.size == 0 {
			return // dead end
		}
		p.cover(best)
		for r := best.down; r != &best.node; r = r.down {
			sol = append(sol, r.rowID)
			for j := r.right; j != r; j = j.right {
				p.cover(j.col)
			}
			search()
			for j := r.left; j != r; j = j.left {
				p.uncover(j.col)
			}
			sol = sol[:len(sol)-1]
			if stopped {
				break
			}
		}
		p.uncover(best)
	}
	search()
	return !stopped
}

// FirstSolution returns the row ids of one exact cover, or ok=false when
// none exists.
func (p *Problem) FirstSolution() (rows []int, ok bool) {
	p.Solutions(func(r []int) bool {
		rows = r
		ok = true
		return false
	})
	return rows, ok
}

// CountSolutions returns the number of exact covers, up to the given limit
// (limit ≤ 0 counts all).
func (p *Problem) CountSolutions(limit int) int {
	count := 0
	p.Solutions(func([]int) bool {
		count++
		return limit <= 0 || count < limit
	})
	return count
}
