package sat

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestParseDIMACSBasic(t *testing.T) {
	src := `c a comment
p cnf 3 2
1 -2 0
2 3 0
`
	s, err := ParseDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumVars() != 3 {
		t.Fatalf("vars = %d", s.NumVars())
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("status %v", got)
	}
}

func TestParseDIMACSMultilineClause(t *testing.T) {
	src := "p cnf 2 1\n1\n2 0\n"
	s, err := ParseDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumClauses() != 1 {
		t.Fatalf("clauses = %d, want 1", s.NumClauses())
	}
}

func TestParseDIMACSGrowsVars(t *testing.T) {
	// Literals beyond the declared count grow the variable set.
	src := "p cnf 1 1\n5 0\n"
	s, err := ParseDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumVars() != 5 {
		t.Fatalf("vars = %d, want 5", s.NumVars())
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	cases := []string{
		"p cnf x 1\n",
		"p dnf 2 1\n1 0\n",
		"p cnf 2 1\n1 a 0\n",
		"p cnf 2 1\n1 2\n", // missing terminator
	}
	for _, src := range cases {
		if _, err := ParseDIMACS(strings.NewReader(src)); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cls, nv := randomCNF(rng, 6, 25, 3)
	s := New()
	for i := 0; i < nv; i++ {
		s.NewVar()
	}
	for _, c := range cls {
		s.AddClause(c...)
	}
	want := s.Solve()

	var buf bytes.Buffer
	if err := s.WriteDIMACS(&buf); err != nil {
		t.Fatal(err)
	}
	s2, err := ParseDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Solve(); got != want {
		t.Fatalf("round trip changed status %v → %v", want, got)
	}
}

func TestWriteDIMACSIncludesRootUnits(t *testing.T) {
	s := New()
	a := s.NewVar()
	b := s.NewVar()
	s.AddClause(PosLit(a))
	s.AddClause(NegLit(a), PosLit(b))
	var buf bytes.Buffer
	if err := s.WriteDIMACS(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "1 0") {
		t.Fatalf("unit clause missing from:\n%s", out)
	}
}
