package sat

// Config collects the solver's tunable search heuristics in one value, so
// callers that build families of differently-configured solvers (the
// portfolio racer, the ablation benches) can describe a configuration as
// data instead of a sequence of field pokes. The fields mirror the exported
// knobs on Solver; NewWithConfig applies them to a fresh solver.
type Config struct {
	// DeepMinimize enables recursive learnt-clause minimization.
	DeepMinimize bool
	// PhaseSaving reuses each variable's last polarity on decisions.
	PhaseSaving bool
	// LBDCap is the glue threshold for reduceDB retention (0 = default 2).
	LBDCap int
	// LubyRestarts switches from Glucose LBD restarts to the Luby sequence.
	LubyRestarts bool
	// Inprocess enables between-restart clause vivification and binary
	// self-subsumption.
	Inprocess bool
}

// DefaultConfig is the configuration New uses: deep minimization, phase
// saving, glue cap 2, Glucose restarts, inprocessing on.
func DefaultConfig() Config {
	return Config{DeepMinimize: true, PhaseSaving: true, LBDCap: 2, Inprocess: true}
}

// ApplyTo writes the configuration onto an existing solver (the way the
// portfolio racer configures the solver an encoder already built). LBDCap 0
// keeps the solver's current cap.
func (cfg Config) ApplyTo(s *Solver) {
	s.DeepMinimize = cfg.DeepMinimize
	s.PhaseSaving = cfg.PhaseSaving
	if cfg.LBDCap > 0 {
		s.LBDCap = cfg.LBDCap
	}
	s.LubyRestarts = cfg.LubyRestarts
	s.Inprocess = cfg.Inprocess
}

// NewWithConfig returns an empty solver with the given heuristics.
func NewWithConfig(cfg Config) *Solver {
	s := New()
	cfg.ApplyTo(s)
	return s
}

// ConfigOf snapshots a solver's current heuristic configuration.
func ConfigOf(s *Solver) Config {
	return Config{
		DeepMinimize: s.DeepMinimize,
		PhaseSaving:  s.PhaseSaving,
		LBDCap:       s.LBDCap,
		LubyRestarts: s.LubyRestarts,
		Inprocess:    s.Inprocess,
	}
}
