package sat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Proof logging. The optimality claims of the EBMF solver rest on UNSAT
// results (Figure 4 of the paper: proving UNSAT is the expensive, load-
// bearing step). With a trace attached, the solver emits every learnt
// clause and deletion in DRAT format, and CheckDRAT replays the trace with
// reverse-unit-propagation (RUP) checks, independently certifying the UNSAT
// verdict without trusting the solver's internals.

// AttachProof starts DRAT logging to w. It must be called on a fresh solver
// before the first Solve; incremental AddClause after solving invalidates a
// DRAT trace, so callers certifying an EBMF bound rebuild the formula at
// that bound and solve once.
func (s *Solver) AttachProof(w io.Writer) {
	s.proof = bufio.NewWriter(w)
}

// FlushProof flushes buffered proof lines; call it after Solve returns.
func (s *Solver) FlushProof() error {
	if s.proof == nil {
		return nil
	}
	return s.proof.Flush()
}

// proofAdd logs a learnt (derived) clause.
func (s *Solver) proofAdd(lits []Lit) {
	if s.proof == nil {
		return
	}
	writeDRATClause(s.proof, lits)
}

// proofDelete logs a clause deletion.
func (s *Solver) proofDelete(lits []Lit) {
	if s.proof == nil {
		return
	}
	s.proof.WriteString("d ")
	writeDRATClause(s.proof, lits)
}

// proofEmpty logs the final empty clause that certifies UNSAT.
func (s *Solver) proofEmpty() {
	if s.proof == nil {
		return
	}
	s.proof.WriteString("0\n")
}

func writeDRATClause(w *bufio.Writer, lits []Lit) {
	var buf [14]byte
	for _, l := range lits {
		x := int64(l.Var() + 1)
		if l.Sign() {
			x = -x
		}
		w.Write(strconv.AppendInt(buf[:0], x, 10))
		w.WriteByte(' ')
	}
	w.WriteString("0\n")
}

// dratChecker is a watched-literal unit-propagation engine over an evolving
// clause database, used to verify RUP steps.
type dratChecker struct {
	nVars   int
	clauses []*dratClause
	watches [][]*dratClause
	units   []Lit // top-level unit clauses of the database
	assign  []lbool
	trail   []Lit
	byKey   map[string][]*dratClause // live clauses indexed by sorted-literal key
}

type dratClause struct {
	lits    []Lit
	deleted bool
}

func newDratChecker(nVars int) *dratChecker {
	return &dratChecker{
		nVars:   nVars,
		watches: make([][]*dratClause, 2*nVars),
		assign:  make([]lbool, nVars),
		byKey:   make(map[string][]*dratClause),
	}
}

func (c *dratChecker) grow(v Var) {
	for c.nVars <= v {
		c.nVars++
		c.watches = append(c.watches, nil, nil)
		c.assign = append(c.assign, lUndef)
	}
}

// addClause installs a clause into the database (no checking).
func (c *dratChecker) addClause(lits []Lit) {
	for _, l := range lits {
		c.grow(l.Var())
	}
	switch len(lits) {
	case 0:
		// The empty clause in the database: everything is provable; record
		// as a false unit via a sentinel — callers handle this before.
	case 1:
		c.units = append(c.units, lits[0])
	default:
		cl := &dratClause{lits: append([]Lit(nil), lits...)}
		c.clauses = append(c.clauses, cl)
		c.watches[cl.lits[0].Neg()] = append(c.watches[cl.lits[0].Neg()], cl)
		c.watches[cl.lits[1].Neg()] = append(c.watches[cl.lits[1].Neg()], cl)
		key := clauseKey(lits)
		c.byKey[key] = append(c.byKey[key], cl)
	}
}

// deleteClause marks a clause with the given literal multiset deleted. The
// key index makes this O(|clause|) instead of a scan over the database —
// the solver's LBD-based reduction emits deletions in bulk.
func (c *dratChecker) deleteClause(lits []Lit) {
	if len(lits) == 1 {
		for i, u := range c.units {
			if u == lits[0] {
				c.units = append(c.units[:i], c.units[i+1:]...)
				return
			}
		}
		return
	}
	key := clauseKey(lits)
	list := c.byKey[key]
	for i, cl := range list {
		if !cl.deleted {
			cl.deleted = true
			list[i] = list[len(list)-1]
			c.byKey[key] = list[:len(list)-1]
			return
		}
	}
}

func clauseKey(lits []Lit) string {
	xs := make([]Lit, len(lits))
	copy(xs, lits)
	// Insertion sort (clauses are short).
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
	buf := make([]byte, 0, 8*len(xs))
	for _, x := range xs {
		buf = strconv.AppendInt(buf, int64(x), 10)
		buf = append(buf, ',')
	}
	return string(buf)
}

func (c *dratChecker) value(l Lit) lbool {
	v := c.assign[l.Var()]
	if v == lUndef {
		return lUndef
	}
	if l.Sign() {
		return -v
	}
	return v
}

// assume enqueues a literal; returns false on immediate conflict.
func (c *dratChecker) assume(l Lit) bool {
	switch c.value(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	if l.Sign() {
		c.assign[l.Var()] = lFalse
	} else {
		c.assign[l.Var()] = lTrue
	}
	c.trail = append(c.trail, l)
	return true
}

// propagate runs unit propagation from qhead 0; returns true on conflict.
func (c *dratChecker) propagate() bool {
	qhead := 0
	for qhead < len(c.trail) {
		p := c.trail[qhead]
		qhead++
		ws := c.watches[p]
		kept := ws[:0]
		conflict := false
		for wi := 0; wi < len(ws); wi++ {
			cl := ws[wi]
			if cl.deleted {
				continue
			}
			if conflict {
				kept = append(kept, ws[wi:]...)
				break
			}
			falseLit := p.Neg()
			if cl.lits[0] == falseLit {
				cl.lits[0], cl.lits[1] = cl.lits[1], cl.lits[0]
			}
			if c.value(cl.lits[0]) == lTrue {
				kept = append(kept, cl)
				continue
			}
			moved := false
			for k := 2; k < len(cl.lits); k++ {
				if c.value(cl.lits[k]) != lFalse {
					cl.lits[1], cl.lits[k] = cl.lits[k], cl.lits[1]
					c.watches[cl.lits[1].Neg()] = append(c.watches[cl.lits[1].Neg()], cl)
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			kept = append(kept, cl)
			if !c.assume(cl.lits[0]) {
				conflict = true
			}
		}
		c.watches[p] = kept
		if conflict {
			return true
		}
	}
	return false
}

// reset undoes all assignments.
func (c *dratChecker) reset() {
	for _, l := range c.trail {
		c.assign[l.Var()] = lUndef
	}
	c.trail = c.trail[:0]
}

// rup checks whether the clause is a reverse-unit-propagation consequence of
// the current database: asserting its negation must propagate to a conflict.
func (c *dratChecker) rup(lits []Lit) bool {
	defer c.reset()
	// Top-level units first.
	for _, u := range c.units {
		if !c.assume(u) {
			return true // database itself is contradictory: anything follows
		}
	}
	if c.propagate() {
		return true
	}
	for _, l := range lits {
		if !c.assume(l.Neg()) {
			return true // clause contains a literal already propagated true
		}
	}
	return c.propagate()
}

// CheckDRAT verifies a DRAT proof of unsatisfiability: formula clauses are
// given in DIMACS (as written by WriteDIMACS), the proof in the format
// emitted by AttachProof. It returns nil iff every derived clause is RUP at
// its position and the proof derives the empty clause.
func CheckDRAT(formula io.Reader, proof io.Reader) error {
	chk := newDratChecker(0)
	// Load the formula.
	fs, err := ParseDIMACS(formula)
	if err != nil {
		return fmt.Errorf("sat: drat: formula: %w", err)
	}
	chk.grow(fs.NumVars() - 1)
	var buf []Lit
	for _, cl := range fs.clauses {
		buf = fs.ca.appendLits(buf[:0], cl)
		chk.addClause(buf)
	}
	for _, l := range fs.trail {
		if fs.level[l.Var()] == 0 {
			chk.addClause([]Lit{l})
		}
	}
	if fs.unsatRoot {
		return nil // the formula is already contradictory at the root
	}

	sc := bufio.NewScanner(proof)
	sc.Buffer(make([]byte, 1<<16), 1<<26)
	line := 0
	derivedEmpty := false
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "c") {
			continue
		}
		isDelete := false
		if strings.HasPrefix(text, "d ") {
			isDelete = true
			text = strings.TrimPrefix(text, "d ")
		}
		lits, err := parseDRATLits(text)
		if err != nil {
			return fmt.Errorf("sat: drat line %d: %w", line, err)
		}
		for _, l := range lits {
			chk.grow(l.Var())
		}
		if isDelete {
			chk.deleteClause(lits)
			continue
		}
		if !chk.rup(lits) {
			return fmt.Errorf("sat: drat line %d: clause %v is not RUP", line, lits)
		}
		if len(lits) == 0 {
			derivedEmpty = true
			break
		}
		chk.addClause(lits)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if !derivedEmpty {
		return fmt.Errorf("sat: drat: proof does not derive the empty clause")
	}
	return nil
}

// parseDRATLits parses "l1 l2 ... 0".
func parseDRATLits(text string) ([]Lit, error) {
	fields := strings.Fields(text)
	var lits []Lit
	terminated := false
	for _, f := range fields {
		x, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad literal %q", f)
		}
		if x == 0 {
			terminated = true
			break
		}
		v := x
		if v < 0 {
			v = -v
		}
		lits = append(lits, MkLit(v-1, x < 0))
	}
	if !terminated {
		return nil, fmt.Errorf("missing 0 terminator")
	}
	return lits, nil
}
