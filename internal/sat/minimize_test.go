package sat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: deep and basic minimization agree with brute force (and hence
// with each other) on random instances.
func TestQuickMinimizationModesAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nVars := 3 + rng.Intn(8)
		cls, _ := randomCNF(rng, nVars, 5+rng.Intn(40), 3)
		want := bruteForceSat(nVars, cls)
		for _, deep := range []bool{true, false} {
			s := New()
			s.DeepMinimize = deep
			for i := 0; i < nVars; i++ {
				s.NewVar()
			}
			for _, c := range cls {
				s.AddClause(c...)
			}
			got := s.Solve()
			if (got == Sat) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDeepMinimizationOnPigeonhole(t *testing.T) {
	// Both modes must prove PHP(7,6) UNSAT; deep minimization usually
	// learns shorter clauses (not asserted — just decided correctly).
	for _, deep := range []bool{true, false} {
		s := pigeonhole(7, 6)
		s.DeepMinimize = deep
		if got := s.Solve(); got != Unsat {
			t.Fatalf("deep=%v: %v", deep, got)
		}
	}
}
