package sat

import (
	"fmt"
	"sort"
)

// Native at-most-one propagation. The EBMF one-hot encoding is dominated by
// at-most-one constraints (one per 1-entry of the matrix); encoding each as
// O(b²) pairwise clauses makes the watched-literal loop grind through binary
// watch traffic on exactly the constraints every instance is made of. A
// registered AMO group instead propagates "one member true ⇒ all other
// members false" in O(group) directly from the trail, with no clauses, no
// watchers and no auxiliary variables.
//
// Conflict analysis needs a clausal justification for every propagated
// assignment, so AMO consequences carry a *tagged* reason: the top bit of the
// reason cref marks it as an AMO reason and the low bits hold the triggering
// literal (arena crefs are provably below 1<<31, see clauseArena.alloc).
// When analyze, or clause minimization, dereferences such a reason, the
// binary justification clause [asserted, ¬trigger] — a clause of the group's
// pairwise expansion — is synthesized on demand into a scratch buffer. The
// clauses are never allocated in the arena: they exist only at the moment a
// resolution step needs them, and in the DIMACS rendering of the formula
// (WriteDIMACS emits each group's pairwise expansion), which is what keeps
// every learnt clause a RUP consequence and DRAT certification working
// unchanged. See DESIGN.md §12.

// amoReasonFlag tags a reason cref as an AMO propagation; the remaining bits
// hold the triggering literal. crefUndef also has the top bit set, so every
// reason dereference checks crefUndef first.
const amoReasonFlag cref = 1 << 31

// amoConflictRef is the sentinel conflict cref returned by propagate when two
// members of one AMO group are true; the conflicting binary clause is staged
// in Solver.amoConflLits. It can never collide with a tagged reason: the
// literal it would encode is out of range for any real instance, and it is
// never stored in reason[].
const amoConflictRef cref = ^cref(0) - 1

// AddAtMostOne registers the constraint "at most one of lits is true" with
// the native propagator. Like AddClause it must be called at decision level 0
// and may be interleaved with Solve calls. Degenerate inputs reduce to their
// unit consequences instead of a group registration: a duplicated literal
// must be false, a complementary pair l/¬l forces every other member false
// (one of the pair is always true), and so does a root-true member;
// root-false members drop out. A group of fewer than two surviving members
// constrains nothing.
func (s *Solver) AddAtMostOne(lits ...Lit) {
	if s.unsatRoot {
		return
	}
	s.cancelUntil(0)
	ls := make([]Lit, len(lits))
	copy(ls, lits)
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })

	// Normalize: l and ¬l sort adjacently (2v, 2v+1), duplicates likewise.
	group := ls[:0]
	var forceFalse []Lit // duplicated literals: must be false outright
	pairs := 0           // complementary pairs l/¬l: each contributes one true member
	for i := 0; i < len(ls); i++ {
		l := ls[i]
		if l.Var() >= s.NumVars() {
			panic(fmt.Sprintf("sat: literal %v references undeclared variable", l))
		}
		if i+1 < len(ls) && ls[i+1] == l {
			forceFalse = append(forceFalse, l)
			for i+1 < len(ls) && ls[i+1] == l {
				i++
			}
			continue
		}
		if i+1 < len(ls) && ls[i+1] == l.Neg() {
			pairs++
			i++
			continue
		}
		if s.value(l) == lFalse {
			continue // can never be the one member; drop
		}
		group = append(group, l)
	}
	if pairs >= 2 {
		// Two complementary pairs are two guaranteed-true members: the
		// constraint is contradictory outright (WriteDIMACS renders the
		// root-unsat state as an explicit empty clause, as AddClause does).
		s.unsatRoot = true
		return
	}
	pairSat := pairs == 1

	trueAt := -1
	if !pairSat {
		// With a complementary pair in the group the "one" is the pair itself:
		// a root-true member elsewhere is a second true member, so it must NOT
		// be exempted here — forcing its negation below exposes the conflict.
		for i, l := range group {
			if s.value(l) == lTrue {
				trueAt = i
				break
			}
		}
	}
	if pairSat || trueAt >= 0 {
		// The "one" is already spoken for: every other member must be false,
		// and the surviving constraint is implied by those units — no group.
		for i, l := range group {
			if i == trueAt {
				continue
			}
			if !s.enqueue(l.Neg(), crefUndef) {
				s.unsatRoot = true
				return
			}
		}
		for _, l := range forceFalse {
			if !s.enqueue(l.Neg(), crefUndef) {
				s.unsatRoot = true
				return
			}
		}
		if s.propagate() != crefUndef {
			s.unsatRoot = true
		}
		return
	}

	if len(group) >= 2 {
		s.registerAMO(group)
	}
	for _, l := range forceFalse {
		if !s.enqueue(l.Neg(), crefUndef) {
			s.unsatRoot = true
			return
		}
	}
	if s.propagate() != crefUndef {
		s.unsatRoot = true
	}
}

// registerAMO appends a normalized group (≥2 distinct unassigned literals)
// to the flat group store and indexes it in the per-literal occurrence lists.
func (s *Solver) registerAMO(group []Lit) {
	if s.amoStart == nil {
		s.amoStart = append(s.amoStart, 0)
	}
	for len(s.amoOcc) < 2*s.NumVars() {
		s.amoOcc = append(s.amoOcc, nil)
	}
	g := int32(len(s.amoStart) - 1)
	s.amoLits = append(s.amoLits, group...)
	s.amoStart = append(s.amoStart, int32(len(s.amoLits)))
	for _, l := range group {
		s.amoOcc[l] = append(s.amoOcc[l], g)
	}
}

// NumAMOGroups returns the number of registered at-most-one groups.
func (s *Solver) NumAMOGroups() int {
	if len(s.amoStart) == 0 {
		return 0
	}
	return len(s.amoStart) - 1
}

// amoPropagate enforces every group containing the just-assigned true
// literal p: all other members become false with a tagged reason naming p.
// It returns amoConflictRef (with the conflicting binary clause staged in
// amoConflLits) when another member is already true, crefUndef otherwise.
func (s *Solver) amoPropagate(p Lit) cref {
	reason := amoReasonFlag | cref(p)
	for _, g := range s.amoOcc[p] {
		lits := s.amoLits[s.amoStart[g]:s.amoStart[g+1]]
		for _, m := range lits {
			if m == p {
				continue
			}
			if !s.enqueue(m.Neg(), reason) {
				// m is true too: the group's pairwise clause [¬p, ¬m] is
				// falsified.
				s.amoConflLits[0] = uint32(p.Neg())
				s.amoConflLits[1] = uint32(m.Neg())
				return amoConflictRef
			}
		}
	}
	return crefUndef
}

// amoReasonLit recovers the trigger literal from a tagged reason.
func amoReasonLit(r cref) Lit { return Lit(r &^ amoReasonFlag) }

// isAMOReason reports whether a reason cref is a tagged AMO reason (the
// crefUndef sentinel also has the tag bit set and must be excluded).
func isAMOReason(r cref) bool { return r != crefUndef && r&amoReasonFlag != 0 }

// sharesAMOGroup reports whether literals a and b appear together in some
// registered group — i.e. the binary clause [¬a, ¬b] is implied by a group's
// pairwise expansion. Occurrence lists are sorted (groups are appended in
// registration order), so a linear merge suffices.
func (s *Solver) sharesAMOGroup(a, b Lit) bool {
	if len(s.amoOcc) == 0 {
		return false
	}
	ga, gb := s.amoOcc[a], s.amoOcc[b]
	i, j := 0, 0
	for i < len(ga) && j < len(gb) {
		switch {
		case ga[i] == gb[j]:
			return true
		case ga[i] < gb[j]:
			i++
		default:
			j++
		}
	}
	return false
}
