package sat

import "testing"

// php builds the pigeonhole formula PHP(holes+1, holes): unsatisfiable and
// expensive enough that the search loop runs for many rounds.
func php(holes int) *Solver {
	s := New()
	pigeons := holes + 1
	vars := make([][]Var, pigeons)
	for p := range vars {
		vars[p] = make([]Var, holes)
		for h := range vars[p] {
			vars[p][h] = s.NewVar()
		}
	}
	for p := 0; p < pigeons; p++ {
		lits := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			lits[h] = PosLit(vars[p][h])
		}
		s.AddClause(lits...)
	}
	for h := 0; h < holes; h++ {
		for p := 0; p < pigeons; p++ {
			for q := p + 1; q < pigeons; q++ {
				s.AddClause(NegLit(vars[p][h]), NegLit(vars[q][h]))
			}
		}
	}
	return s
}

// TestInterruptStopsSearch: a firing interrupt hook makes Solve return
// Unknown promptly; clearing it lets the same solver finish the proof.
func TestInterruptStopsSearch(t *testing.T) {
	s := php(8)
	calls := 0
	s.SetInterrupt(func() bool { calls++; return true })
	if st := s.Solve(); st != Unknown {
		t.Fatalf("interrupted solve returned %v, want Unknown", st)
	}
	if calls == 0 {
		t.Fatal("interrupt hook never polled")
	}
	if s.decisionLevel() != 0 {
		t.Fatalf("interrupted solver left at level %d", s.decisionLevel())
	}
	s.SetInterrupt(nil)
	if st := s.Solve(); st != Unsat {
		t.Fatalf("resumed solve returned %v, want Unsat", st)
	}
}

// TestInterruptNotFiring: a hook that never fires must not change the
// outcome.
func TestInterruptNotFiring(t *testing.T) {
	s := php(6)
	s.SetInterrupt(func() bool { return false })
	if st := s.Solve(); st != Unsat {
		t.Fatalf("got %v, want Unsat", st)
	}
}
