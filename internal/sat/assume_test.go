package sat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAssumptionsBasic(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(PosLit(a), PosLit(b))
	if got := s.SolveAssuming(NegLit(a)); got != Sat {
		t.Fatalf("¬a: %v", got)
	}
	if !s.Value(b) {
		t.Fatal("b must be true under ¬a")
	}
	if got := s.SolveAssuming(NegLit(a), NegLit(b)); got != Unsat {
		t.Fatalf("¬a∧¬b: %v", got)
	}
	// The formula itself stays satisfiable after the failed assumptions.
	if got := s.Solve(); got != Sat {
		t.Fatalf("formula poisoned by assumptions: %v", got)
	}
}

func TestAssumptionsContradictory(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(PosLit(a), NegLit(a)) // tautology, formula trivially SAT
	if got := s.SolveAssuming(PosLit(a), NegLit(a)); got != Unsat {
		t.Fatalf("contradictory assumptions: %v", got)
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("formula must remain SAT: %v", got)
	}
}

func TestAssumptionAlreadyImplied(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(PosLit(a))
	s.AddClause(NegLit(a), PosLit(b))
	if got := s.SolveAssuming(PosLit(a), PosLit(b)); got != Sat {
		t.Fatalf("implied assumptions: %v", got)
	}
}

func TestAssumptionsOnPigeonhole(t *testing.T) {
	// PHP(4,4) is SAT; assuming pigeon 0 out of all holes makes it UNSAT.
	s := pigeonhole(4, 4)
	if got := s.Solve(); got != Sat {
		t.Fatalf("PHP(4,4): %v", got)
	}
	assume := []Lit{NegLit(0), NegLit(1), NegLit(2), NegLit(3)}
	if got := s.SolveAssuming(assume...); got != Unsat {
		t.Fatalf("blocked pigeon: %v", got)
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("PHP(4,4) after assumptions: %v", got)
	}
}

// Property: SolveAssuming(lits) agrees with adding the lits as unit clauses
// to a fresh copy of the formula.
func TestQuickAssumptionsMatchUnits(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nVars := 3 + rng.Intn(6)
		cls, _ := randomCNF(rng, nVars, 5+rng.Intn(25), 3)
		nAssume := 1 + rng.Intn(3)
		assume := make([]Lit, nAssume)
		for i := range assume {
			assume[i] = MkLit(rng.Intn(nVars), rng.Intn(2) == 0)
		}

		s1 := New()
		for i := 0; i < nVars; i++ {
			s1.NewVar()
		}
		for _, c := range cls {
			s1.AddClause(c...)
		}
		got := s1.SolveAssuming(assume...)

		s2 := New()
		for i := 0; i < nVars; i++ {
			s2.NewVar()
		}
		for _, c := range cls {
			s2.AddClause(c...)
		}
		for _, a := range assume {
			s2.AddClause(a)
		}
		want := s2.Solve()
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

// Property: repeated SolveAssuming calls are independent (no state leak):
// the same query gives the same answer before and after other queries.
func TestQuickAssumptionsStateless(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nVars := 3 + rng.Intn(5)
		cls, _ := randomCNF(rng, nVars, 5+rng.Intn(20), 3)
		s := New()
		for i := 0; i < nVars; i++ {
			s.NewVar()
		}
		for _, c := range cls {
			s.AddClause(c...)
		}
		q1 := []Lit{MkLit(rng.Intn(nVars), false)}
		q2 := []Lit{MkLit(rng.Intn(nVars), true)}
		first := s.SolveAssuming(q1...)
		s.SolveAssuming(q2...)
		return s.SolveAssuming(q1...) == first
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
