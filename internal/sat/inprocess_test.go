package sat

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// forceInprocess makes the next restart-point check run a pass regardless of
// how many conflicts have accumulated.
func forceInprocess(s *Solver) { s.lastInprocess = -inprocessInterval }

func TestInprocessDirectPass(t *testing.T) {
	// Generate learnt clauses with a budgeted solve, then run one pass
	// directly and finish the proof — the full DRAT trace (search learnts +
	// inprocessing rewrites) must check.
	s := pigeonhole(7, 6)
	var formula bytes.Buffer
	if err := s.WriteDIMACS(&formula); err != nil {
		t.Fatal(err)
	}
	var proof bytes.Buffer
	s.AttachProof(&proof)
	s.SetConflictBudget(500)
	if got := s.Solve(); got != Unknown {
		t.Skipf("PHP(7,6) decided within 500 conflicts: %v", got)
	}
	forceInprocess(s)
	s.maybeInprocess()
	if s.InprocPasses != 1 {
		t.Fatalf("InprocPasses = %d, want 1", s.InprocPasses)
	}
	s.SetConflictBudget(-1)
	if got := s.Solve(); got != Unsat {
		t.Fatalf("PHP(7,6): %v", got)
	}
	if err := s.FlushProof(); err != nil {
		t.Fatal(err)
	}
	if err := CheckDRAT(&formula, &proof); err != nil {
		t.Fatalf("proof with inprocessing rejected: %v", err)
	}
}

func TestInprocessSelfSubsumption(t *testing.T) {
	// C = (a ∨ b ∨ c) with binary (¬c ∨ b) resolves to (a ∨ b).
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(PosLit(a), PosLit(b), PosLit(c))
	s.AddClause(NegLit(c), PosLit(b))
	s.selfSubsumeSweep()
	if s.InprocStrengthened != 1 {
		t.Fatalf("InprocStrengthened = %d, want 1", s.InprocStrengthened)
	}
	// The strengthened database must still be equivalent: ¬b forces a.
	if got := s.SolveAssuming(NegLit(b)); got != Sat {
		t.Fatalf("status %v", got)
	}
	if !s.Value(a) {
		t.Fatal("¬b must force a through the strengthened clause")
	}
}

func TestInprocessSelfSubsumptionViaAMO(t *testing.T) {
	// The group AMO(b, c) implies (¬b ∨ ¬c), so C = (a ∨ ¬b ∨ c) resolves on
	// c (using ¬c ∨ ¬b? no — C ∋ c and ¬b: the implied binary [¬c, ¬b] has
	// its second literal in C) down to (a ∨ ¬b).
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddAtMostOne(PosLit(b), PosLit(c))
	s.AddClause(PosLit(a), NegLit(b), PosLit(c))
	s.selfSubsumeSweep()
	if s.InprocStrengthened != 1 {
		t.Fatalf("InprocStrengthened = %d, want 1", s.InprocStrengthened)
	}
	if got := s.SolveAssuming(PosLit(b), NegLit(a)); got != Unsat {
		t.Fatalf("status %v, want Unsat (b ∧ ¬a contradicts a ∨ ¬b)", got)
	}
}

func TestInprocessMutualSubsumptionCycleSound(t *testing.T) {
	// b ↔ c equivalence: both (¬b ∨ c) and (¬c ∨ b) exist. A naive sweep
	// would drop BOTH b and c from (a ∨ b ∨ c), which is unsound; dropping
	// one at a time against the remaining clause must keep it satisfiable
	// with a false.
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(PosLit(a), PosLit(b), PosLit(c))
	s.AddClause(NegLit(b), PosLit(c))
	s.AddClause(NegLit(c), PosLit(b))
	s.selfSubsumeSweep()
	if got := s.SolveAssuming(NegLit(a)); got != Sat {
		t.Fatalf("status %v: b=c=true must still satisfy the clause", got)
	}
}

func TestInprocessVivification(t *testing.T) {
	// Learnt clause (a ∨ b ∨ c) where the database already implies ¬a → b:
	// vivification assuming ¬a propagates b and truncates the clause to
	// (a ∨ b).
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	_ = c
	s.AddClause(PosLit(a), PosLit(b)) // ¬a → b
	if !s.ImportLearnt([]Lit{PosLit(a), PosLit(b), PosLit(c)}, 2) {
		t.Fatal("import refused")
	}
	s.vivifySweep()
	if s.InprocStrengthened != 1 {
		t.Fatalf("InprocStrengthened = %d, want 1", s.InprocStrengthened)
	}
	if n := s.ca.size(s.learnts[0]); n != 2 {
		t.Fatalf("vivified clause size = %d, want 2", n)
	}
}

func TestInprocessAblationAgrees(t *testing.T) {
	for n := 5; n <= 6; n++ {
		on := pigeonhole(n+1, n)
		forceInprocess(on)
		off := pigeonhole(n+1, n)
		off.Inprocess = false
		if a, b := on.Solve(), off.Solve(); a != b || a != Unsat {
			t.Fatalf("PHP(%d,%d): inprocess=%v, ablation=%v", n+1, n, a, b)
		}
	}
}

func TestQuickInprocessDifferentialRandom(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nVars := 4 + rng.Intn(10)
		native, encoded := randomAMOInstance(rng, nVars)
		encoded.Inprocess = false
		var formula bytes.Buffer
		if err := native.WriteDIMACS(&formula); err != nil {
			t.Fatal(err)
		}
		var proof bytes.Buffer
		native.AttachProof(&proof)
		// Run a pass mid-solve on every instance, not just those that restart.
		native.SetConflictBudget(30)
		got := native.Solve()
		if got == Unknown {
			forceInprocess(native)
			native.maybeInprocess()
			native.SetConflictBudget(-1)
			got = native.Solve()
		}
		if err := native.FlushProof(); err != nil {
			t.Fatal(err)
		}
		want := encoded.Solve()
		if got != want {
			t.Logf("seed %d: inprocessed %v, plain %v", seed, got, want)
			return false
		}
		if got == Unsat {
			if err := CheckDRAT(&formula, &proof); err != nil {
				t.Logf("seed %d: inprocessed proof rejected: %v", seed, err)
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 150})
	if err != nil {
		t.Fatal(err)
	}
}
