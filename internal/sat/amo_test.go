package sat

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// pigeonholeAMO is the pigeonhole formula with the per-hole at-most-one
// constraints registered natively instead of encoded as pairwise clauses.
func pigeonholeAMO(pigeons, holes int) *Solver {
	s := New()
	vars := make([][]Var, pigeons)
	for p := range vars {
		vars[p] = make([]Var, holes)
		for h := range vars[p] {
			vars[p][h] = s.NewVar()
		}
	}
	for p := 0; p < pigeons; p++ {
		lits := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			lits[h] = PosLit(vars[p][h])
		}
		s.AddClause(lits...)
	}
	for h := 0; h < holes; h++ {
		lits := make([]Lit, pigeons)
		for p := 0; p < pigeons; p++ {
			lits[p] = PosLit(vars[p][h])
		}
		s.AddAtMostOne(lits...)
	}
	return s
}

func TestAMOBasicPropagation(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddAtMostOne(PosLit(a), PosLit(b), PosLit(c))
	s.AddClause(PosLit(a))
	if got := s.Solve(); got != Sat {
		t.Fatalf("status %v", got)
	}
	if !s.Value(a) || s.Value(b) || s.Value(c) {
		t.Fatalf("a=%v b=%v c=%v, want true/false/false", s.Value(a), s.Value(b), s.Value(c))
	}
}

func TestAMOTwoTrueUnsat(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddAtMostOne(PosLit(a), PosLit(b), PosLit(c))
	s.AddClause(PosLit(a))
	s.AddClause(PosLit(b))
	if got := s.Solve(); got != Unsat {
		t.Fatalf("status %v", got)
	}
}

func TestAMODegenerateInputs(t *testing.T) {
	t.Run("duplicate literal forces false", func(t *testing.T) {
		s := New()
		a, b := s.NewVar(), s.NewVar()
		s.AddAtMostOne(PosLit(a), PosLit(a), PosLit(b))
		if got := s.Solve(); got != Sat {
			t.Fatalf("status %v", got)
		}
		if s.Value(a) {
			t.Fatal("duplicated member must be forced false")
		}
	})
	t.Run("complementary pair forces others false", func(t *testing.T) {
		s := New()
		a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
		s.AddAtMostOne(PosLit(a), NegLit(a), PosLit(b), PosLit(c))
		if got := s.Solve(); got != Sat {
			t.Fatalf("status %v", got)
		}
		if s.Value(b) || s.Value(c) {
			t.Fatal("one of a/¬a is always true, so b and c must be false")
		}
	})
	t.Run("root-true member forces others false", func(t *testing.T) {
		s := New()
		a, b := s.NewVar(), s.NewVar()
		s.AddClause(PosLit(a))
		s.AddAtMostOne(PosLit(a), PosLit(b))
		if got := s.Solve(); got != Sat {
			t.Fatalf("status %v", got)
		}
		if s.Value(b) {
			t.Fatal("b must be forced false by the root-true member")
		}
	})
	t.Run("root-false members drop out", func(t *testing.T) {
		s := New()
		a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
		s.AddClause(NegLit(a))
		s.AddAtMostOne(PosLit(a), PosLit(b), PosLit(c))
		if s.NumAMOGroups() != 1 {
			t.Fatalf("groups = %d, want 1", s.NumAMOGroups())
		}
		s.AddClause(PosLit(b))
		if got := s.Solve(); got != Sat {
			t.Fatalf("status %v", got)
		}
		if s.Value(c) {
			t.Fatal("c must be false once b is true")
		}
	})
	t.Run("tiny groups constrain nothing", func(t *testing.T) {
		s := New()
		a := s.NewVar()
		s.AddAtMostOne(PosLit(a))
		s.AddAtMostOne()
		if s.NumAMOGroups() != 0 {
			t.Fatalf("groups = %d, want 0", s.NumAMOGroups())
		}
	})
}

func TestAMOPigeonholeUnsat(t *testing.T) {
	for n := 2; n <= 6; n++ {
		s := pigeonholeAMO(n+1, n)
		if got := s.Solve(); got != Unsat {
			t.Fatalf("PHP(%d,%d) with native AMO: %v", n+1, n, got)
		}
	}
}

func TestAMOPigeonholeSat(t *testing.T) {
	for n := 2; n <= 6; n++ {
		s := pigeonholeAMO(n, n)
		if got := s.Solve(); got != Sat {
			t.Fatalf("PHP(%d,%d) with native AMO: %v", n, n, got)
		}
		// Model must respect every group.
		for h := 0; h < n; h++ {
			trues := 0
			for p := 0; p < n; p++ {
				if s.Value(p*n + h) {
					trues++
				}
			}
			if trues > 1 {
				t.Fatalf("hole %d holds %d pigeons", h, trues)
			}
		}
	}
}

func TestAMODRATProofChecks(t *testing.T) {
	for n := 2; n <= 5; n++ {
		s := pigeonholeAMO(n+1, n)
		var formula bytes.Buffer
		if err := s.WriteDIMACS(&formula); err != nil {
			t.Fatal(err)
		}
		var proof bytes.Buffer
		s.AttachProof(&proof)
		if got := s.Solve(); got != Unsat {
			t.Fatalf("PHP(%d,%d): %v", n+1, n, got)
		}
		if err := s.FlushProof(); err != nil {
			t.Fatal(err)
		}
		if err := CheckDRAT(&formula, &proof); err != nil {
			t.Fatalf("PHP(%d,%d) native-AMO proof rejected: %v", n+1, n, err)
		}
	}
}

func TestAMOIncrementalAssumptions(t *testing.T) {
	// Selector-style narrowing over a native group: assumptions must compose
	// with AMO propagation and leave no permanent constraints.
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddAtMostOne(PosLit(a), PosLit(b), PosLit(c))
	s.AddClause(PosLit(a), PosLit(b), PosLit(c))
	if got := s.SolveAssuming(NegLit(a), NegLit(b)); got != Sat {
		t.Fatalf("status %v", got)
	}
	if !s.Value(c) {
		t.Fatal("c must carry the clause under assumptions")
	}
	if got := s.SolveAssuming(PosLit(a), PosLit(b)); got != Unsat {
		t.Fatalf("two group members assumed true: %v", got)
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("assumptions must not persist: %v", got)
	}
}

// randomAMOInstance builds the same random instance twice: once with native
// groups, once with the pairwise clause expansion.
func randomAMOInstance(rng *rand.Rand, nVars int) (native, encoded *Solver) {
	native, encoded = New(), New()
	for i := 0; i < nVars; i++ {
		native.NewVar()
		encoded.NewVar()
	}
	nGroups := 2 + rng.Intn(4)
	for g := 0; g < nGroups; g++ {
		size := 2 + rng.Intn(3)
		lits := make([]Lit, size)
		for i := range lits {
			lits[i] = MkLit(rng.Intn(nVars), rng.Intn(2) == 0)
		}
		native.AddAtMostOne(lits...)
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				if lits[i] == lits[j] {
					encoded.AddClause(lits[i].Neg())
					continue
				}
				encoded.AddClause(lits[i].Neg(), lits[j].Neg())
			}
		}
	}
	nClauses := 3 + rng.Intn(3*nVars)
	for c := 0; c < nClauses; c++ {
		k := 1 + rng.Intn(3)
		cl := make([]Lit, k)
		for i := range cl {
			cl[i] = MkLit(rng.Intn(nVars), rng.Intn(2) == 0)
		}
		native.AddClause(cl...)
		encoded.AddClause(cl...)
	}
	return native, encoded
}

func TestQuickAMODifferentialRandom(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nVars := 4 + rng.Intn(10)
		native, encoded := randomAMOInstance(rng, nVars)
		var formula bytes.Buffer
		if err := native.WriteDIMACS(&formula); err != nil {
			t.Fatal(err)
		}
		var proof bytes.Buffer
		native.AttachProof(&proof)
		got := native.Solve()
		if err := native.FlushProof(); err != nil {
			t.Fatal(err)
		}
		want := encoded.Solve()
		if got != want {
			t.Logf("seed %d: native %v, encoded %v", seed, got, want)
			return false
		}
		if got == Unsat {
			if err := CheckDRAT(&formula, &proof); err != nil {
				t.Logf("seed %d: native proof rejected: %v", seed, err)
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAMOSurvivesGarbageCollection(t *testing.T) {
	// Force learnt-clause churn so reduceDB + arena compaction run with
	// tagged AMO reasons live on the trail.
	s := pigeonholeAMO(8, 7)
	s.SetConflictBudget(50_000)
	if got := s.Solve(); got != Unsat {
		t.Fatalf("PHP(8,7): %v", got)
	}
	if s.NumAMOGroups() != 7 {
		t.Fatalf("groups = %d, want 7", s.NumAMOGroups())
	}
}
