package sat

import "testing"

// TestConfigRoundTrip: NewWithConfig applies every knob and ConfigOf reads
// them back.
func TestConfigRoundTrip(t *testing.T) {
	cfg := Config{DeepMinimize: false, PhaseSaving: false, LBDCap: 4, LubyRestarts: true}
	s := NewWithConfig(cfg)
	if got := ConfigOf(s); got != cfg {
		t.Fatalf("ConfigOf = %+v, want %+v", got, cfg)
	}
	if def := ConfigOf(New()); def != DefaultConfig() {
		t.Fatalf("New() config = %+v, want DefaultConfig %+v", def, DefaultConfig())
	}
}

// TestLearntHookObservesClauses: the hook sees learnt clauses during a
// conflict-heavy solve, and uninstalling it stops the flow.
func TestLearntHookObservesClauses(t *testing.T) {
	s := New()
	// Pigeonhole 4→3: UNSAT with plenty of conflicts.
	const holes, pigeons = 3, 4
	v := make([][]Var, pigeons)
	for p := range v {
		v[p] = make([]Var, holes)
		for h := range v[p] {
			v[p][h] = s.NewVar()
		}
	}
	for p := 0; p < pigeons; p++ {
		lits := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			lits[h] = PosLit(v[p][h])
		}
		s.AddClause(lits...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(NegLit(v[p1][h]), NegLit(v[p2][h]))
			}
		}
	}
	var seen int
	s.SetLearntHook(func(lits []Lit, lbd int) {
		if len(lits) == 0 {
			t.Error("hook received an empty clause")
		}
		if lbd < 0 {
			t.Errorf("hook received negative LBD %d", lbd)
		}
		seen++
	})
	if s.Solve() != Unsat {
		t.Fatal("pigeonhole 4→3 must be UNSAT")
	}
	if seen == 0 {
		t.Fatal("hook never fired on an UNSAT proof")
	}
	if int64(seen) != s.Learned {
		t.Fatalf("hook fired %d times, solver learned %d clauses", seen, s.Learned)
	}
}

// TestImportLearnt: imported clauses land in the learnt database, propagate,
// and survive normalization edge cases.
func TestImportLearnt(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(PosLit(a), PosLit(b))
	s.AddClause(PosLit(a), NegLit(b), PosLit(c))

	if !s.ImportLearnt([]Lit{NegLit(b), PosLit(c)}, 1) {
		t.Fatal("useful import rejected")
	}
	if s.NumLearnts() != 1 {
		t.Fatalf("learnt count = %d, want 1", s.NumLearnts())
	}
	// Tautology and duplicate-literal normalization.
	if s.ImportLearnt([]Lit{PosLit(a), NegLit(a)}, 1) {
		t.Fatal("tautology import accepted")
	}
	// Unit import assigns at the root.
	if !s.ImportLearnt([]Lit{PosLit(a)}, 1) {
		t.Fatal("unit import rejected")
	}
	if s.Solve() != Sat {
		t.Fatal("expected Sat")
	}
	if !s.Value(a) {
		t.Fatal("imported unit not honoured by the model")
	}
}

// TestImportLearntEquivalentSolvers: clauses exported by one solver on a
// shared formula import soundly into a twin and do not change the verdict.
func TestImportLearntEquivalentSolvers(t *testing.T) {
	build := func() *Solver {
		s := New()
		const holes, pigeons = 3, 4
		v := make([][]Var, pigeons)
		for p := range v {
			v[p] = make([]Var, holes)
			for h := range v[p] {
				v[p][h] = s.NewVar()
			}
		}
		for p := 0; p < pigeons; p++ {
			lits := make([]Lit, holes)
			for h := 0; h < holes; h++ {
				lits[h] = PosLit(v[p][h])
			}
			s.AddClause(lits...)
		}
		for h := 0; h < holes; h++ {
			for p1 := 0; p1 < pigeons; p1++ {
				for p2 := p1 + 1; p2 < pigeons; p2++ {
					s.AddClause(NegLit(v[p1][h]), NegLit(v[p2][h]))
				}
			}
		}
		return s
	}
	src, dst := build(), build()
	var shared [][]Lit
	src.SetLearntHook(func(lits []Lit, lbd int) {
		if lbd <= 2 && len(lits) <= 8 {
			shared = append(shared, append([]Lit(nil), lits...))
		}
	})
	if src.Solve() != Unsat {
		t.Fatal("source must prove UNSAT")
	}
	for _, cl := range shared {
		dst.ImportLearnt(cl, 2)
	}
	if dst.Solve() != Unsat {
		t.Fatal("importing sound clauses flipped the verdict")
	}
}

// TestImportLearntRefusedUnderDRAT: importing while proof logging is active
// would record underivable clauses, so it must be refused.
func TestImportLearntRefusedUnderDRAT(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(PosLit(a), PosLit(b))
	var sink nopWriter
	s.AttachProof(&sink)
	if s.ImportLearnt([]Lit{NegLit(a), PosLit(b)}, 1) {
		t.Fatal("import accepted while DRAT logging is active")
	}
}

type nopWriter struct{}

func (nopWriter) Write(p []byte) (int, error) { return len(p), nil }
