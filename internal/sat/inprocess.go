package sat

// Inprocessing: between restarts the solver spends a bounded slice of work
// simplifying the clause database in place — clause vivification (assume the
// negation of a clause prefix and let unit propagation prove a shorter
// clause) and binary self-subsumption (resolve a clause against an existing
// binary, or a binary implied by an AMO group's pairwise expansion, to drop
// a literal). Both produce clauses that are RUP consequences of the current
// database, so each replacement is DRAT-logged add-then-delete and proof
// checking keeps working. Passes are gated by a conflict interval and capped
// by a propagation budget so inprocessing can never dominate search time.
// See DESIGN.md §12.

const (
	// inprocessInterval is the number of conflicts between passes.
	inprocessInterval = 3_000
	// inprocessPropBudget caps the unit propagations one vivification pass
	// may spend (the pass stops mid-sweep and the rotating cursor resumes
	// next time).
	inprocessPropBudget = 20_000
	// inprocessPairBudget caps literal-pair lookups per self-subsumption
	// sweep.
	inprocessPairBudget = 50_000
	// vivifyMinSize is the smallest clause vivification attempts: binary
	// clauses are load-bearing for the watcher fast path (binary watchers
	// never consult the arena, so a binary clause must never be deleted) and
	// can only shrink to units, which propagation would have found anyway.
	vivifyMinSize = 3
)

// maybeInprocess runs one inprocessing pass when enough conflicts have
// accumulated since the last one. Must be called at decision level 0 (the
// restart point). On a root conflict it marks the instance unsatisfiable and
// logs the empty clause; the caller checks unsatRoot.
func (s *Solver) maybeInprocess() {
	if !s.Inprocess || s.unsatRoot || s.decisionLevel() != 0 {
		return
	}
	if s.Conflicts-s.lastInprocess < inprocessInterval {
		return
	}
	s.lastInprocess = s.Conflicts
	s.InprocPasses++
	if s.propagate() != crefUndef {
		s.rootConflict()
		return
	}
	s.selfSubsumeSweep()
	if s.unsatRoot {
		return
	}
	s.vivifySweep()
}

// rootConflict records unsatisfiability discovered at level 0.
func (s *Solver) rootConflict() {
	s.unsatRoot = true
	s.proofEmpty()
}

// strengthenClause replaces the clause at list[i] with newLits, logging the
// replacement to the DRAT trace. The old clause must have size ≥ 3 (binary
// clauses are never deleted) and must not be a reason (guaranteed at level 0
// by skipping root-satisfied clauses: a root reason's asserted literal is
// root-true). newLits must be nonempty — vivification of a clause with no
// root-true literal can shrink it to a unit at minimum. Returns false when
// the unit case exposed a root conflict.
func (s *Solver) strengthenClause(list []cref, i int, newLits []Lit) bool {
	old := list[i]
	s.InprocStrengthened++
	s.proofAdd(newLits)
	if len(newLits) == 1 {
		// The clause collapsed to a root unit: assert it and drop the clause
		// from its list (the caller compacts crefUndef entries).
		s.proofBuf = s.ca.appendLits(s.proofBuf[:0], old)
		s.proofDelete(s.proofBuf)
		s.ca.markDeleted(old)
		list[i] = crefUndef
		if !s.enqueue(newLits[0], crefUndef) || s.propagate() != crefUndef {
			s.rootConflict()
			return false
		}
		return true
	}
	c := s.ca.alloc(newLits, s.ca.learnt(old))
	if s.ca.learnt(old) {
		s.ca.setActivity(c, s.ca.activity(old))
		lbd := s.ca.lbd(old)
		if m := len(newLits) - 1; m < lbd {
			lbd = m
		}
		if lbd < 1 {
			lbd = 1
		}
		s.ca.setLBD(c, lbd)
	}
	// alloc may have grown the backing array, but crefs are indices, so the
	// old clause's literals are still addressable for the deletion record.
	s.proofBuf = s.ca.appendLits(s.proofBuf[:0], old)
	s.proofDelete(s.proofBuf)
	s.ca.markDeleted(old)
	list[i] = c
	s.attachClause(c)
	return true
}

// compactList drops crefUndef entries left by unit-collapsed clauses.
func compactList(list []cref) []cref {
	kept := list[:0]
	for _, c := range list {
		if c != crefUndef {
			kept = append(kept, c)
		}
	}
	return kept
}

// binKey packs an unordered literal pair into a map key.
func binKey(a, b Lit) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

// selfSubsumeSweep strengthens clauses by self-subsuming resolution with the
// binary clauses of the database and the binaries implied by AMO groups:
// clause C ∋ l with a binary [¬l, m] where m ∈ C\{l} resolves to C\{l}.
// Each drop is re-checked against the *remaining* clause so chains through
// mutually-subsuming binary pairs (l ↔ m equivalences) stay sound.
func (s *Solver) selfSubsumeSweep() {
	bins := make(map[uint64]struct{})
	collect := func(list []cref) {
		for _, c := range list {
			if !s.ca.deleted(c) && s.ca.size(c) == 2 {
				bins[binKey(s.ca.lit(c, 0), s.ca.lit(c, 1))] = struct{}{}
			}
		}
	}
	collect(s.clauses)
	collect(s.learnts)
	if len(bins) == 0 && len(s.amoStart) == 0 {
		return
	}
	// hasBin: does the binary clause [a, b] exist (explicitly or via an AMO
	// group containing ¬a and ¬b)?
	hasBin := func(a, b Lit) bool {
		if _, ok := bins[binKey(a, b)]; ok {
			return true
		}
		return s.sharesAMOGroup(a.Neg(), b.Neg())
	}
	budget := inprocessPairBudget
	var buf []Lit
	sweep := func(list []cref) []cref {
		for i, c := range list {
			if budget <= 0 {
				break
			}
			if c == crefUndef || s.ca.deleted(c) || s.ca.size(c) < vivifyMinSize {
				continue
			}
			buf = s.ca.appendLits(buf[:0], c)
			satisfied := false
			for _, l := range buf {
				if s.value(l) == lTrue {
					satisfied = true // root-satisfied (and possibly a reason): skip
					break
				}
			}
			if satisfied {
				continue
			}
			changed := false
			// Drop one literal at a time, restarting the pair scan against
			// the shrunken clause after each drop.
			for again := true; again && len(buf) >= 2; {
				again = false
				for di := 0; di < len(buf) && !again; di++ {
					for mi := 0; mi < len(buf); mi++ {
						if mi == di || buf[mi] == buf[di].Neg() {
							continue
						}
						budget--
						if budget <= 0 {
							break
						}
						if hasBin(buf[di].Neg(), buf[mi]) {
							buf = append(buf[:di], buf[di+1:]...)
							changed, again = true, true
							break
						}
					}
				}
			}
			if changed {
				if !s.strengthenClause(list, i, buf) {
					return compactList(list)
				}
				if len(buf) == 2 {
					bins[binKey(buf[0], buf[1])] = struct{}{}
				}
			}
		}
		return compactList(list)
	}
	s.clauses = sweep(s.clauses)
	if s.unsatRoot {
		return
	}
	s.learnts = sweep(s.learnts)
	s.flushDeletions()
}

// vivifySweep runs clause vivification over the learnt database (rotating
// cursor, propagation budget): for clause [l1..lk], assume ¬l1, ¬l2, … one
// per decision level and propagate. A conflict proves the assumed prefix is
// already a clause; a satisfied later literal truncates the clause at that
// literal; a falsified later literal is redundant and drops out. Every
// outcome is a RUP consequence of the database (the clause itself included),
// so the shrunken clause is DRAT-sound via add-then-delete.
func (s *Solver) vivifySweep() {
	if len(s.learnts) == 0 {
		return
	}
	// Vivification probes must not pollute the saved phases: the assumed
	// literals are clause negations, not search decisions.
	savedPhase := s.PhaseSaving
	s.PhaseSaving = false
	defer func() { s.PhaseSaving = savedPhase }()

	startProps := s.Propagations
	n := len(s.learnts)
	var buf []Lit
	for visited := 0; visited < n; visited++ {
		if s.Propagations-startProps > inprocessPropBudget {
			break
		}
		i := s.vivifyIdx % len(s.learnts)
		s.vivifyIdx++
		c := s.learnts[i]
		if c == crefUndef || s.ca.deleted(c) || s.ca.size(c) < vivifyMinSize {
			continue
		}
		buf = s.ca.appendLits(buf[:0], c)
		skip := false
		for _, l := range buf {
			if s.value(l) == lTrue {
				skip = true // root-satisfied (covers root reason clauses)
				break
			}
		}
		if skip {
			continue
		}
		orig := len(buf)
		out := buf[:0]
		for _, l := range buf {
			switch s.value(l) {
			case lTrue:
				// Implied by the assumed prefix: [out…, l] subsumes the rest.
				out = append(out, l)
				goto done
			case lFalse:
				continue // falsified by the prefix (or the root): redundant
			}
			out = append(out, l)
			s.trailLim = append(s.trailLim, len(s.trail))
			s.enqueue(l.Neg(), crefUndef)
			if s.propagate() != crefUndef {
				goto done // the assumed prefix refutes itself: [out…] is a clause
			}
		}
	done:
		s.cancelUntil(0)
		if len(out) < orig {
			if !s.strengthenClause(s.learnts, i, out) {
				break
			}
		}
	}
	s.learnts = compactList(s.learnts)
	s.flushDeletions()
}
