package sat

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// solveWithProof builds a solver from clauses, attaches a proof, solves, and
// returns the status plus the DIMACS formula and proof texts.
func solveWithProof(t *testing.T, nVars int, cls [][]Lit) (Status, string, string) {
	t.Helper()
	s := New()
	for i := 0; i < nVars; i++ {
		s.NewVar()
	}
	for _, c := range cls {
		s.AddClause(c...)
	}
	var formula bytes.Buffer
	if err := s.WriteDIMACS(&formula); err != nil {
		t.Fatal(err)
	}
	var proof bytes.Buffer
	s.AttachProof(&proof)
	st := s.Solve()
	if err := s.FlushProof(); err != nil {
		t.Fatal(err)
	}
	return st, formula.String(), proof.String()
}

func TestDRATPigeonholeProofChecks(t *testing.T) {
	for n := 2; n <= 5; n++ {
		s := pigeonhole(n+1, n)
		var formula bytes.Buffer
		if err := s.WriteDIMACS(&formula); err != nil {
			t.Fatal(err)
		}
		var proof bytes.Buffer
		s.AttachProof(&proof)
		if got := s.Solve(); got != Unsat {
			t.Fatalf("PHP(%d,%d): %v", n+1, n, got)
		}
		if err := s.FlushProof(); err != nil {
			t.Fatal(err)
		}
		if err := CheckDRAT(&formula, &proof); err != nil {
			t.Fatalf("PHP(%d,%d) proof rejected: %v", n+1, n, err)
		}
	}
}

func TestDRATSatInstanceHasNoEmptyClause(t *testing.T) {
	st, _, proof := solveWithProof(t, 3, [][]Lit{
		{PosLit(0), PosLit(1)},
		{NegLit(1), PosLit(2)},
	})
	if st != Sat {
		t.Fatalf("status %v", st)
	}
	if strings.Contains(proof, "\n0\n") || proof == "0\n" {
		t.Fatal("SAT run must not derive the empty clause")
	}
}

func TestDRATTamperedProofRejected(t *testing.T) {
	s := pigeonhole(4, 3)
	var formula bytes.Buffer
	if err := s.WriteDIMACS(&formula); err != nil {
		t.Fatal(err)
	}
	var proof bytes.Buffer
	s.AttachProof(&proof)
	if got := s.Solve(); got != Unsat {
		t.Fatalf("status %v", got)
	}
	if err := s.FlushProof(); err != nil {
		t.Fatal(err)
	}
	// Drop everything but the final empty clause: it is no longer RUP.
	lines := strings.Split(strings.TrimSpace(proof.String()), "\n")
	tampered := lines[len(lines)-1]
	if tampered != "0" {
		t.Fatalf("last proof line %q, want empty clause", tampered)
	}
	err := CheckDRAT(strings.NewReader(formula.String()), strings.NewReader(tampered+"\n"))
	if err == nil {
		t.Fatal("checker accepted a truncated proof")
	}
}

func TestDRATForeignClauseRejected(t *testing.T) {
	// A proof asserting an arbitrary non-implied unit must be rejected.
	formula := "p cnf 2 1\n1 2 0\n"
	proof := "-1 0\n-2 0\n0\n"
	err := CheckDRAT(strings.NewReader(formula), strings.NewReader(proof))
	if err == nil {
		t.Fatal("checker accepted a bogus derivation")
	}
}

func TestDRATProofWithDeletions(t *testing.T) {
	// Force reduceDB so deletion lines appear, then check the proof still
	// verifies (deletions never hurt soundness of later RUP steps in our
	// forward checker).
	s := pigeonhole(6, 5)
	s.maxLearnts = 5 // aggressive deletion
	var formula bytes.Buffer
	if err := s.WriteDIMACS(&formula); err != nil {
		t.Fatal(err)
	}
	var proof bytes.Buffer
	s.AttachProof(&proof)
	if got := s.Solve(); got != Unsat {
		t.Fatalf("status %v", got)
	}
	if err := s.FlushProof(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(proof.String(), "d ") {
		t.Log("note: no deletions emitted at this size")
	}
	if err := CheckDRAT(&formula, &proof); err != nil {
		t.Fatalf("proof with deletions rejected: %v", err)
	}
}

func TestDRATMalformedProofLines(t *testing.T) {
	formula := "p cnf 2 1\n1 2 0\n" // satisfiable, so the proof is parsed
	cases := []string{
		"1 x 0\n", // bad literal
		"1 2\n",   // missing terminator
	}
	for _, p := range cases {
		if err := CheckDRAT(strings.NewReader(formula), strings.NewReader(p)); err == nil {
			t.Errorf("accepted malformed proof %q", p)
		}
	}
}

func TestDRATRootContradictoryFormula(t *testing.T) {
	// A formula already contradictory at the root needs no proof.
	formula := "p cnf 1 2\n1 0\n-1 0\n"
	if err := CheckDRAT(strings.NewReader(formula), strings.NewReader("")); err != nil {
		t.Fatalf("root-unsat formula rejected: %v", err)
	}
}

// Property: every UNSAT verdict on random instances carries a checkable
// proof; SAT verdicts never derive the empty clause.
func TestQuickDRATSoundOnRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nVars := 3 + rng.Intn(6)
		cls, _ := randomCNF(rng, nVars, 10+rng.Intn(40), 2)
		s := New()
		for i := 0; i < nVars; i++ {
			s.NewVar()
		}
		for _, c := range cls {
			s.AddClause(c...)
		}
		var formula bytes.Buffer
		if s.WriteDIMACS(&formula) != nil {
			return false
		}
		var proof bytes.Buffer
		s.AttachProof(&proof)
		st := s.Solve()
		if s.FlushProof() != nil {
			return false
		}
		if st == Unsat {
			return CheckDRAT(&formula, &proof) == nil
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
