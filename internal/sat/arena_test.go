package sat

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// These tests pin the arena refactor against the pre-refactor solver's
// observable behavior: identical SAT/UNSAT verdicts on random CNF (with
// models verified against the clauses, and UNSAT verdicts against brute
// force), and DRAT proofs that still pass the RUP checker even when clause
// deletion and arena compaction run mid-search.

// satisfies reports whether the model makes every clause true.
func satisfies(model []bool, cls [][]Lit) bool {
	for _, c := range cls {
		ok := false
		for _, l := range c {
			if model[l.Var()] != l.Sign() {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// TestQuickDifferentialRandom3CNF is the differential harness: the arena
// solver must agree with brute force on random 3-CNF, and every Sat verdict
// must come with a model that actually satisfies the clauses.
func TestQuickDifferentialRandom3CNF(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nVars := 3 + rng.Intn(10)
		cls, _ := randomCNF(rng, nVars, 5+rng.Intn(50), 3)
		want := bruteForceSat(nVars, cls)
		s := New()
		for i := 0; i < nVars; i++ {
			s.NewVar()
		}
		for _, c := range cls {
			s.AddClause(c...)
		}
		got := s.Solve()
		if (got == Sat) != want {
			return false
		}
		if got == Sat && !satisfies(s.Model(), cls) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestDifferentialReduceDBAndGC forces aggressive learnt-clause reduction
// (and with it arena compaction) by shrinking the learnt budget, then checks
// verdicts against brute force. This exercises markDeleted, the lazy watcher
// cleanup and maybeCollectGarbage on every instance.
func TestDifferentialReduceDBAndGC(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 150; trial++ {
		nVars := 8 + rng.Intn(8)
		cls, _ := randomCNF(rng, nVars, 3*nVars+rng.Intn(40), 3)
		want := bruteForceSat(nVars, cls)
		s := New()
		s.maxLearnts = 5 // force reduceDB on nearly every conflict wave
		s.learntAdjust = 1 << 30
		for i := 0; i < nVars; i++ {
			s.NewVar()
		}
		for _, c := range cls {
			s.AddClause(c...)
		}
		got := s.Solve()
		if (got == Sat) != want {
			t.Fatalf("trial %d: got %v, brute force says sat=%v", trial, got, want)
		}
		if got == Sat && !satisfies(s.Model(), cls) {
			t.Fatalf("trial %d: model does not satisfy the clauses", trial)
		}
	}
}

// TestDRATProofsAfterArenaRefactor is the proof regression: UNSAT runs that
// go through clause deletion and compaction still emit DRAT traces the RUP
// checker accepts.
func TestDRATProofsAfterArenaRefactor(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	unsatSeen := 0
	for trial := 0; trial < 200 && unsatSeen < 40; trial++ {
		nVars := 6 + rng.Intn(6)
		cls, _ := randomCNF(rng, nVars, 5*nVars, 3)
		s := New()
		s.maxLearnts = 5
		s.learntAdjust = 1 << 30
		for i := 0; i < nVars; i++ {
			s.NewVar()
		}
		for _, c := range cls {
			s.AddClause(c...)
		}
		var formula bytes.Buffer
		if err := s.WriteDIMACS(&formula); err != nil {
			t.Fatal(err)
		}
		var proof bytes.Buffer
		s.AttachProof(&proof)
		if s.Solve() != Unsat {
			continue
		}
		unsatSeen++
		if err := s.FlushProof(); err != nil {
			t.Fatal(err)
		}
		if err := CheckDRAT(&formula, &proof); err != nil {
			t.Fatalf("trial %d: proof rejected after reduceDB/GC: %v", trial, err)
		}
	}
	if unsatSeen < 10 {
		t.Fatalf("only %d UNSAT instances generated; want ≥ 10 for coverage", unsatSeen)
	}
}

// TestArenaCompactionPreservesState drives one large pigeonhole proof with a
// tiny learnt budget so multiple GC cycles happen inside a single Solve, and
// cross-checks the final verdict and the proof.
func TestArenaCompactionPreservesState(t *testing.T) {
	s := pigeonhole(7, 6)
	s.maxLearnts = 10
	s.learntAdjust = 1 << 30
	var formula bytes.Buffer
	if err := s.WriteDIMACS(&formula); err != nil {
		t.Fatal(err)
	}
	var proof bytes.Buffer
	s.AttachProof(&proof)
	if got := s.Solve(); got != Unsat {
		t.Fatalf("PHP(7,6): %v", got)
	}
	if err := s.FlushProof(); err != nil {
		t.Fatal(err)
	}
	if err := CheckDRAT(&formula, &proof); err != nil {
		t.Fatalf("proof rejected: %v", err)
	}
}

// TestPhaseSavingKnob checks the ablation switch changes nothing about
// verdicts (only heuristics).
func TestPhaseSavingKnob(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		nVars := 5 + rng.Intn(8)
		cls, _ := randomCNF(rng, nVars, 4*nVars, 3)
		want := bruteForceSat(nVars, cls)
		for _, saving := range []bool{true, false} {
			s := New()
			s.PhaseSaving = saving
			for i := 0; i < nVars; i++ {
				s.NewVar()
			}
			for _, c := range cls {
				s.AddClause(c...)
			}
			if got := s.Solve(); (got == Sat) != want {
				t.Fatalf("trial %d phaseSaving=%v: got %v want sat=%v", trial, saving, got, want)
			}
		}
	}
}

// TestLBDComputation sanity-checks litsLBD on a constructed trail.
func TestLBDComputation(t *testing.T) {
	s := New()
	vars := make([]Var, 6)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	// Open three decision levels by hand.
	for lvl := 0; lvl < 3; lvl++ {
		s.trailLim = append(s.trailLim, len(s.trail))
		s.enqueue(PosLit(vars[lvl]), crefUndef)
		s.enqueue(PosLit(vars[3+lvl]), crefUndef) // same level
	}
	lits := []Lit{NegLit(vars[0]), NegLit(vars[3]), NegLit(vars[1]), NegLit(vars[5])}
	if got := s.litsLBD(lits); got != 3 {
		t.Fatalf("LBD = %d, want 3 (levels 1,2,3)", got)
	}
	if got := s.litsLBD([]Lit{NegLit(vars[0]), NegLit(vars[3])}); got != 1 {
		t.Fatalf("LBD = %d, want 1", got)
	}
	s.cancelUntil(0)
}

// TestIncrementalAssumptionReuse simulates the SAP narrowing pattern at the
// solver level: selector-guarded "slots", disabled one by one via
// assumptions, must agree with fresh solvers built per bound.
func TestIncrementalAssumptionReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		nVars := 6 + rng.Intn(6)
		cls, _ := randomCNF(rng, nVars, 3*nVars, 3)

		// Incremental solver: one selector per original variable group.
		inc := New()
		for i := 0; i < nVars; i++ {
			inc.NewVar()
		}
		for _, c := range cls {
			inc.AddClause(c...)
		}
		sels := make([]Lit, nVars)
		for i := 0; i < nVars; i++ {
			sv := inc.NewVar()
			// sel_i → ¬x_i
			inc.AddClause(NegLit(sv), NegLit(Var(i)))
			sels[i] = PosLit(sv)
		}
		// Progressively force more variables false via selectors; compare
		// with a fresh solver that gets the same constraint as unit clauses.
		var active []Lit
		for i := 0; i < nVars; i++ {
			active = append(active, sels[i])
			got := inc.SolveAssuming(active...)

			fresh := New()
			for j := 0; j < nVars; j++ {
				fresh.NewVar()
			}
			for _, c := range cls {
				fresh.AddClause(c...)
			}
			for j := 0; j <= i; j++ {
				fresh.AddClause(NegLit(Var(j)))
			}
			want := fresh.Solve()
			if got != want {
				t.Fatalf("trial %d, %d selectors: incremental %v vs fresh %v", trial, i+1, got, want)
			}
			if got == Unsat {
				break
			}
		}
	}
}
