// Package sat implements a CDCL (conflict-driven clause learning) SAT solver
// from scratch on the standard library. It is the decision engine behind the
// EBMF optimality proofs, substituting for the z3 SMT solver used in the
// paper: the paper's uninterpreted-function formula over a finite domain is
// compiled to CNF by package encode and decided here.
//
// Features: a flat clause arena addressed by 32-bit refs (no per-clause
// allocations), two-watched-literal propagation with blocker literals and a
// binary-clause fast path, VSIDS decision heuristic with a binary heap,
// first-UIP clause learning with recursive minimization, LBD-based
// learnt-clause reduction with glue retention, Glucose-style LBD-driven
// restarts (Luby as ablation), phase saving, incremental solving via both
// clause addition between Solve calls and SolveAssuming with assumption
// literals, DRAT proof logging, and conflict budgets so callers can bound
// worst-case runtime (the problem is NP-hard; Figure 4 of the paper is all
// about UNSAT proofs being expensive). See DESIGN.md §2 for rationale.
package sat

import "fmt"

// Var is a propositional variable index, starting at 0.
type Var = int

// Lit is a literal: variable 2*v encodes v, 2*v+1 encodes ¬v.
type Lit int32

// LitUndef is the sentinel "no literal".
const LitUndef Lit = -1

// MkLit returns the literal for variable v, negated if neg.
func MkLit(v Var, neg bool) Lit {
	if neg {
		return Lit(2*v + 1)
	}
	return Lit(2 * v)
}

// PosLit returns the positive literal of v.
func PosLit(v Var) Lit { return Lit(2 * v) }

// NegLit returns the negative literal of v.
func NegLit(v Var) Lit { return Lit(2*v + 1) }

// Var returns the variable of the literal.
func (l Lit) Var() Var { return int(l) >> 1 }

// Sign reports whether the literal is negated.
func (l Lit) Sign() bool { return l&1 == 1 }

// Neg returns the complementary literal.
func (l Lit) Neg() Lit { return l ^ 1 }

// String renders the literal as v or ¬v (1-based, DIMACS style).
func (l Lit) String() string {
	if l == LitUndef {
		return "undef"
	}
	if l.Sign() {
		return fmt.Sprintf("-%d", l.Var()+1)
	}
	return fmt.Sprintf("%d", l.Var()+1)
}

// lbool is a three-valued boolean.
type lbool int8

const (
	lUndef lbool = 0
	lTrue  lbool = 1
	lFalse lbool = -1
)

// Status is the result of a Solve call.
type Status int

const (
	// Unknown means the solver exhausted its budget before deciding.
	Unknown Status = iota
	// Sat means a satisfying assignment was found (see Solver.Value).
	Sat
	// Unsat means the formula is unsatisfiable.
	Unsat
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	default:
		return "UNKNOWN"
	}
}
