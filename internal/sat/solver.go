package sat

import (
	"bufio"
	"fmt"
	"sort"
)

// Solver is a CDCL SAT solver. The zero value is not usable; call New.
// Clauses may be added between Solve calls (the solver restarts from decision
// level 0), which is how the EBMF loop narrows the rectangle budget; the
// preferred incremental style is SolveAssuming with selector literals, which
// keeps learnt clauses and VSIDS state valid across calls without mutating
// the formula.
//
// All clauses live in a flat arena (see arena.go) and are addressed by
// 32-bit crefs; watch lists carry blocker literals so satisfied clauses are
// skipped without a memory load from the arena.
type Solver struct {
	ca      clauseArena
	clauses []cref // problem clauses
	learnts []cref // learnt clauses
	// watches holds the two-watched-literal lists of clauses with ≥3
	// literals; binary clauses live in binWatches, where an entry's
	// blocker is the entire rest of the clause (see attachClause).
	watches    [][]watcher
	binWatches [][]watcher

	// assign is indexed by LITERAL, not variable: assign[l] is l's truth
	// value under the current assignment (both polarities are written on
	// every enqueue). Indexing by literal makes value() a single array
	// load — no Var/Sign extraction, no conditional negation — which is
	// what the propagate inner loop spends most of its time asking.
	assign   []lbool
	level    []int // decision level per assigned variable
	reason   []cref
	trail    []Lit
	trailLim []int // trail index per decision level
	qhead    int

	activity   []float64
	varInc     float64
	claInc     float32
	heap       *varHeap
	phase      []bool // saved polarity per variable
	seen       []bool // scratch for analyze
	analyzeBuf []Lit
	clearBuf   []Lit   // literals whose seen flag must be reset after analyze
	addBuf     []Lit   // scratch for AddClause normalization
	lvlStamp   []int64 // per-decision-level scratch for LBD computation
	stamp      int64
	redStamp   []int64 // per-variable memo stamps for litRedundantDeep
	redVal     []bool  // memoized verdicts, valid when redStamp matches
	redEpoch   int64

	// Glucose-style restart state: a sliding window of recent learnt-clause
	// LBDs against the lifetime average, plus a trail-size EMA that blocks
	// restarts when the search looks close to a model.
	lbdWin    [50]int64
	lbdWinSum int64
	lbdWinN   int
	lbdWinIdx int
	lbdSum    float64
	trailAvg  float64

	unsatRoot bool // formula already false at level 0

	// Native at-most-one propagator state (see amo.go): all groups in one
	// flat literal store with start offsets, indexed per literal. The scratch
	// buffers hold the synthesized conflict/justification clauses analyze
	// dereferences through the tagged-reason scheme.
	amoLits      []Lit
	amoStart     []int32
	amoOcc       [][]int32
	amoConflLits [2]uint32
	amoReasonBuf [2]uint32

	lastInprocess int64 // Conflicts at the last inprocessing pass
	vivifyIdx     int   // rotating cursor over the learnt list for vivification

	// DeepMinimize enables recursive learnt-clause minimization (default
	// on; switch off to fall back to one-step self-subsumption).
	DeepMinimize bool
	// PhaseSaving remembers each variable's last polarity across
	// backtracking and reuses it on the next decision (default on; switch
	// off for the ablation).
	PhaseSaving bool
	// LBDCap is the literal-blocks-distance at or below which a learnt
	// clause is always retained by reduceDB ("glue" clauses). Default 2.
	LBDCap int
	// LubyRestarts switches from the default Glucose-style LBD-driven
	// restarts back to the Luby sequence (ablation).
	LubyRestarts bool
	// Inprocess enables between-restart clause vivification and binary
	// self-subsumption (default on; see inprocess.go). Switch off for the
	// ablation.
	Inprocess bool

	proof    *bufio.Writer // DRAT trace (nil when disabled)
	proofBuf []Lit         // scratch for proof deletions

	learntHook func(lits []Lit, lbd int) // observes every learnt clause

	interrupt     func() bool // polled during search; true stops with Unknown
	interruptTick uint32      // iteration counter between interrupt polls

	progressFn    func(Progress) // sampled search telemetry (nil = off)
	progressEvery int64          // conflicts between samples
	progressNext  int64          // conflict count at which to fire next

	// Statistics.
	Conflicts    int64
	Decisions    int64
	Propagations int64
	Restarts     int64
	Learned      int64
	// InprocPasses and InprocStrengthened count inprocessing activity:
	// passes run, and clauses shrunk (by vivification or self-subsumption).
	InprocPasses       int64
	InprocStrengthened int64

	maxLearnts   float64
	learntAdjust int64

	budgetConflicts int64 // <0 means unlimited
}

// New returns an empty solver with no variables.
func New() *Solver {
	s := &Solver{
		varInc:          1.0,
		claInc:          1.0,
		budgetConflicts: -1,
		DeepMinimize:    true,
		PhaseSaving:     true,
		LBDCap:          2,
		Inprocess:       true,
		lvlStamp:        make([]int64, 1),
	}
	s.heap = newVarHeap(&s.activity)
	return s
}

// ReserveVars grows the per-variable (and per-literal) backing arrays to
// hold at least n variables, so a burst of NewVar calls — an encoder
// building a formula — allocates each array once instead of doubling its
// way up. Purely a capacity hint: no variables are created.
func (s *Solver) ReserveVars(n int) {
	if n <= cap(s.level) {
		return
	}
	growL := func(b []lbool) []lbool { nb := make([]lbool, len(b), 2*n); copy(nb, b); return nb }
	s.assign = growL(s.assign)
	s.level = append(make([]int, 0, n), s.level...)
	s.reason = append(make([]cref, 0, n), s.reason...)
	s.activity = append(make([]float64, 0, n), s.activity...)
	s.phase = append(make([]bool, 0, n), s.phase...)
	s.seen = append(make([]bool, 0, n), s.seen...)
	s.lvlStamp = append(make([]int64, 0, n+1), s.lvlStamp...)
	s.redStamp = append(make([]int64, 0, n), s.redStamp...)
	s.redVal = append(make([]bool, 0, n), s.redVal...)
	s.watches = append(make([][]watcher, 0, 2*n), s.watches...)
	s.binWatches = append(make([][]watcher, 0, 2*n), s.binWatches...)
	if s.amoOcc != nil {
		s.amoOcc = append(make([][]int32, 0, 2*n), s.amoOcc...)
	}
	s.heap.reserve(n)
}

// ReserveClauseWords pre-sizes the clause arena for about n words of clause
// storage (header plus literals per clause), with the same
// allocate-once-instead-of-doubling intent as ReserveVars.
func (s *Solver) ReserveClauseWords(n int) {
	if n <= cap(s.ca.data) {
		return
	}
	s.ca.data = append(make([]uint32, 0, n), s.ca.data...)
}

// NewVar introduces a fresh variable and returns its index.
func (s *Solver) NewVar() Var {
	v := len(s.assign) / 2
	s.assign = append(s.assign, lUndef, lUndef)
	s.level = append(s.level, -1)
	s.reason = append(s.reason, crefUndef)
	s.activity = append(s.activity, 0)
	s.phase = append(s.phase, false)
	s.seen = append(s.seen, false)
	s.lvlStamp = append(s.lvlStamp, 0) // levels range over 0..NumVars
	s.redStamp = append(s.redStamp, 0)
	s.redVal = append(s.redVal, false)
	s.watches = append(s.watches, nil, nil)
	s.binWatches = append(s.binWatches, nil, nil)
	if s.amoOcc != nil {
		s.amoOcc = append(s.amoOcc, nil, nil)
	}
	s.heap.insert(v)
	return v
}

// NumVars returns the number of variables.
func (s *Solver) NumVars() int { return len(s.assign) / 2 }

// NumClauses returns the number of problem clauses (excluding learnt ones).
func (s *Solver) NumClauses() int { return len(s.clauses) }

// NumLearnts returns the number of retained learnt clauses.
func (s *Solver) NumLearnts() int { return len(s.learnts) }

// SetConflictBudget bounds the number of conflicts of subsequent Solve calls;
// a negative value removes the bound. When the budget is exhausted Solve
// returns Unknown.
func (s *Solver) SetConflictBudget(n int64) { s.budgetConflicts = n }

// SetInterrupt installs a callback polled periodically inside the search
// loop (every interruptPollMask+1 propagate rounds). When it returns true
// the current Solve call backtracks to the root and returns Unknown, leaving
// the solver in a consistent state for further Solve calls. nil removes the
// hook. This is how context cancellation reaches a search in flight: the
// caller installs func() bool { return ctx.Err() != nil }.
func (s *Solver) SetInterrupt(fn func() bool) { s.interrupt = fn }

// SetLearntHook installs a callback invoked for every clause the solver
// learns (including units), with the clause's literals and its LBD at learn
// time. The slice is a scratch buffer reused by the next conflict: the hook
// must copy what it keeps and must not block — it runs inside the search
// loop. nil removes the hook. This is the export side of portfolio clause
// sharing (see internal/portfolio).
func (s *Solver) SetLearntHook(fn func(lits []Lit, lbd int)) { s.learntHook = fn }

// Progress is a point-in-time sample of the search, handed to the hook
// installed with SetProgress.
type Progress struct {
	Conflicts    int64
	Decisions    int64
	Propagations int64
	Restarts     int64
	Learned      int64 // clauses learnt in total
	Learnts      int   // learnt clauses currently retained
}

// SetProgress installs a callback fired roughly every `every` conflicts with
// a snapshot of the search counters — the feed for live solve telemetry. The
// hook runs inside the search loop and must not block. every <= 0 or fn ==
// nil removes the hook. The off state costs one nil check per conflict.
func (s *Solver) SetProgress(every int64, fn func(Progress)) {
	if fn == nil || every <= 0 {
		s.progressFn = nil
		s.progressEvery = 0
		return
	}
	s.progressFn = fn
	s.progressEvery = every
	s.progressNext = s.Conflicts + every
}

// pollProgress fires the progress hook when the conflict count has crossed
// the next sampling point.
func (s *Solver) pollProgress() {
	if s.progressFn == nil || s.Conflicts < s.progressNext {
		return
	}
	s.progressNext = s.Conflicts + s.progressEvery
	s.progressFn(Progress{
		Conflicts:    s.Conflicts,
		Decisions:    s.Decisions,
		Propagations: s.Propagations,
		Restarts:     s.Restarts,
		Learned:      s.Learned,
		Learnts:      len(s.learnts),
	})
}

// interruptPollMask spaces interrupt polls: a closure call per propagate
// round would be measurable on hot UNSAT proofs, so poll every 128 rounds
// (still sub-millisecond reaction at realistic propagation rates).
const interruptPollMask = 127

// interrupted polls the interrupt hook at the configured spacing.
func (s *Solver) interrupted() bool {
	if s.interrupt == nil {
		return false
	}
	s.interruptTick++
	return s.interruptTick&interruptPollMask == 0 && s.interrupt()
}

func (s *Solver) value(l Lit) lbool { return s.assign[l] }

// Value returns the model value of variable v after a Sat result.
func (s *Solver) Value(v Var) bool { return s.assign[PosLit(v)] == lTrue }

// AddClause adds a clause over the given literals. It must be called at
// decision level 0 (i.e. not from within Solve). Adding an empty or
// root-falsified clause marks the instance unsatisfiable.
func (s *Solver) AddClause(lits ...Lit) {
	if s.unsatRoot {
		return
	}
	// A previous Solve may have left the trail at a high decision level
	// (e.g. after Sat); incremental clause addition happens at the root.
	s.cancelUntil(0)
	out, keep := s.prepareClause(lits)
	if !keep {
		return
	}
	switch len(out) {
	case 0:
		s.unsatRoot = true
	case 1:
		if !s.enqueue(out[0], crefUndef) {
			s.unsatRoot = true
			return
		}
		if s.propagate() != crefUndef {
			s.unsatRoot = true
		}
	default:
		c := s.ca.alloc(out, false)
		s.clauses = append(s.clauses, c)
		s.attachClause(c)
	}
}

// prepareClause normalizes a clause at decision level 0: sort + dedupe, drop
// root-false literals, detect tautologies and root-satisfied clauses (keep =
// false means the clause carries no information and must be skipped). The
// scratch buffer and insertion sort keep clause loading allocation-free
// (encoders add hundreds of thousands of short clauses); the returned slice
// aliases s.addBuf and is only valid until the next call.
func (s *Solver) prepareClause(lits []Lit) (out []Lit, keep bool) {
	ls := append(s.addBuf[:0], lits...)
	s.addBuf = ls
	if len(ls) > 64 {
		sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	} else {
		for i := 1; i < len(ls); i++ {
			for j := i; j > 0 && ls[j] < ls[j-1]; j-- {
				ls[j], ls[j-1] = ls[j-1], ls[j]
			}
		}
	}
	out = ls[:0]
	var prev Lit = LitUndef
	for _, l := range ls {
		if l.Var() >= s.NumVars() {
			panic(fmt.Sprintf("sat: literal %v references undeclared variable", l))
		}
		if l == prev {
			continue
		}
		if prev != LitUndef && l == prev.Neg() {
			return nil, false // tautology
		}
		switch s.value(l) {
		case lTrue:
			return nil, false // already satisfied at root
		case lFalse:
			continue // drop
		}
		out = append(out, l)
		prev = l
	}
	return out, true
}

// ImportLearnt installs a clause learned by another solver over the same
// variable space as a learnt clause of this one, with the given learn-time
// LBD. It must be called between Solve calls (the interrupt/budget machinery
// returns with the trail at the root, so importing between conflict chunks
// of an interrupted search is safe — this is the import side of portfolio
// clause sharing). The caller is responsible for the clause being an
// implicate of a formula equisatisfiable with this solver's; the clause
// lands in the learnt database, so reduceDB may evict it like any other
// learnt clause (shared clauses at or below LBDCap are glue and survive).
// It reports whether the clause added any new information (false for
// tautologies, root-satisfied clauses, and solvers already unsat). Importing
// is refused while DRAT logging is active: a foreign clause is not derivable
// from this solver's trace, so recording it would break proof checking.
func (s *Solver) ImportLearnt(lits []Lit, lbd int) bool {
	if s.unsatRoot || s.proof != nil {
		return false
	}
	s.cancelUntil(0)
	out, keep := s.prepareClause(lits)
	if !keep {
		return false
	}
	switch len(out) {
	case 0:
		s.unsatRoot = true
	case 1:
		if !s.enqueue(out[0], crefUndef) {
			s.unsatRoot = true
			return true
		}
		if s.propagate() != crefUndef {
			s.unsatRoot = true
		}
	default:
		c := s.ca.alloc(out, true)
		s.ca.setActivity(c, s.claInc)
		if lbd < 1 {
			lbd = 1
		}
		s.ca.setLBD(c, lbd)
		s.learnts = append(s.learnts, c)
		s.attachClause(c)
	}
	return true
}

// attachClause installs the watchers of c: each watched literal's negation
// maps to a watcher blocking on the other watched literal. Binary clauses
// go to the dedicated binary watch lists, where the blocker IS the whole
// rest of the clause and propagation is a straight enqueue per entry — no
// arena access, no flag tests, no list compaction (binary clauses are
// never deleted).
func (s *Solver) attachClause(c cref) {
	l0, l1 := s.ca.lit(c, 0), s.ca.lit(c, 1)
	if s.ca.size(c) == 2 {
		s.binWatches[l0.Neg()] = append(s.binWatches[l0.Neg()], watcher{c, l1})
		s.binWatches[l1.Neg()] = append(s.binWatches[l1.Neg()], watcher{c, l0})
		return
	}
	s.watches[l0.Neg()] = append(s.watches[l0.Neg()], watcher{c, l1})
	s.watches[l1.Neg()] = append(s.watches[l1.Neg()], watcher{c, l0})
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// enqueue assigns literal l with the given reason clause. It returns false
// on an immediate conflict with the current assignment.
func (s *Solver) enqueue(l Lit, from cref) bool {
	switch s.value(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	v := l.Var()
	s.assign[l] = lTrue
	s.assign[l.Neg()] = lFalse
	s.level[v] = s.decisionLevel()
	if len(s.trailLim) == 0 {
		// Root-level assignments never need their reason inspected
		// (analyze skips level-0 literals), and a reason recorded here
		// could be a clause inprocessing later deletes while the unit
		// stays on the trail forever — arena GC must not chase it.
		from = crefUndef
	}
	s.reason[v] = from
	s.trail = append(s.trail, l)
	return true
}

// propagate performs unit propagation; it returns a conflicting clause or
// crefUndef.
func (s *Solver) propagate() cref {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead] // p is true; visit clauses watching ¬p
		s.qhead++
		s.Propagations++
		if s.amoOcc != nil && len(s.amoOcc[p]) > 0 {
			if confl := s.amoPropagate(p); confl != crefUndef {
				s.qhead = len(s.trail)
				return confl
			}
		}
		// Binary pass: every entry is unit, satisfied or conflicting right
		// now, so a single enqueue resolves it — no arena access, no list
		// compaction (binary watchers never move or die).
		for _, w := range s.binWatches[p] {
			if !s.enqueue(w.blocker, w.c) {
				s.qhead = len(s.trail)
				return w.c
			}
		}
		ws := s.watches[p]
		kept := ws[:0]
		confl := crefUndef
		// The arena never allocates during propagation, so its backing
		// store can be hoisted out of the watcher loop; clauses are then
		// addressed by absolute word index, skipping the per-watcher
		// header decode and slice construction of ca.lits.
		data := s.ca.data
		falseLit := uint32(p.Neg())
		for wi := 0; wi < len(ws); wi++ {
			w := ws[wi]
			// Blocker check: a true blocker means the clause is satisfied
			// and we never touch the arena.
			if s.assign[w.blocker] == lTrue {
				kept = append(kept, w)
				continue
			}
			// No deleted-clause check here: watch lists are swept eagerly
			// whenever clauses are marked deleted (reduceDB, inprocessing),
			// so the hot loop never pays for lazy deletion.
			c := w.c
			base := c + hdrWords
			// Normalize so the false literal (¬p ... i.e. the one whose
			// negation is p) is the second watched literal.
			if data[base] == falseLit {
				data[base], data[base+1] = data[base+1], data[base]
			}
			// If the first literal is true the clause is satisfied;
			// re-watch with it as the blocker.
			first := Lit(data[base])
			nw := watcher{c, first}
			if first != w.blocker && s.assign[first] == lTrue {
				kept = append(kept, nw)
				continue
			}
			// Look for a replacement for the false watched literal. Moving
			// the watch (rather than parking on a true blocker) keeps hot
			// literals' lists short, which measures faster on the dense
			// EBMF instances. A CaDiCaL-style saved-position resume was
			// also tried and rejected: changing the replacement order
			// perturbs the learnt-clause trajectory and cost ~60% more
			// conflicts on the Table I suites.
			moved := false
			for k, end := base+2, base+cref(data[c]>>2); k < end; k++ {
				lk := Lit(data[k])
				if s.assign[lk] != lFalse {
					data[base+1], data[k] = data[k], data[base+1]
					s.watches[lk.Neg()] = append(s.watches[lk.Neg()], nw)
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			// Clause is unit or conflicting.
			kept = append(kept, nw)
			if !s.enqueue(first, c) {
				confl = c
				s.qhead = len(s.trail)
				kept = append(kept, ws[wi+1:]...)
				break
			}
		}
		s.watches[p] = kept
		if confl != crefUndef {
			return confl
		}
	}
	return crefUndef
}

// litsLBD computes the literal-blocks-distance of a clause: the number of
// distinct nonzero decision levels among its literals (Glucose's quality
// measure for learnt clauses). Must be called while the literals' levels are
// still assigned, i.e. before backtracking.
func (s *Solver) litsLBD(lits []Lit) int {
	s.stamp++
	n := 0
	for _, l := range lits {
		lvl := s.level[l.Var()]
		if lvl > 0 && s.lvlStamp[lvl] != s.stamp {
			s.lvlStamp[lvl] = s.stamp
			n++
		}
	}
	return n
}

// clauseLBD is litsLBD over an arena clause.
func (s *Solver) clauseLBD(c cref) int {
	s.stamp++
	n := 0
	for _, w := range s.ca.lits(c) {
		lvl := s.level[Lit(w).Var()]
		if lvl > 0 && s.lvlStamp[lvl] != s.stamp {
			s.lvlStamp[lvl] = s.stamp
			n++
		}
	}
	return n
}

// bumpClause raises a learnt clause's activity and refreshes its LBD
// downward (Glucose's dynamic LBD: a clause participating in conflicts at a
// lower block count than recorded is more valuable than its birth LBD says).
func (s *Solver) bumpClause(c cref) {
	a := s.ca.activity(c) + s.claInc
	s.ca.setActivity(c, a)
	if a > 1e20 {
		for _, lc := range s.learnts {
			s.ca.setActivity(lc, s.ca.activity(lc)*1e-20)
		}
		s.claInc *= 1e-20
	}
	if nl := s.clauseLBD(c); nl < s.ca.lbd(c) {
		s.ca.setLBD(c, nl)
	}
}

// analyze derives a first-UIP learnt clause from the conflict and returns it
// together with the backtrack level. learnt[0] is the asserting literal.
func (s *Solver) analyze(confl cref) (learnt []Lit, btLevel int) {
	learnt = append(s.analyzeBuf[:0], LitUndef) // slot for asserting literal
	counter := 0
	p := LitUndef
	index := len(s.trail) - 1

	for {
		var lits []uint32
		switch {
		case confl == amoConflictRef:
			// AMO conflict: the falsified pairwise clause was staged by
			// amoPropagate (first iteration only; never stored as a reason).
			lits = s.amoConflLits[:]
		case confl&amoReasonFlag != 0:
			// Tagged AMO reason of the asserted literal p: synthesize the
			// binary justification [p, ¬trigger] — a clause of the group's
			// pairwise expansion — on demand.
			s.amoReasonBuf[0] = uint32(p)
			s.amoReasonBuf[1] = uint32(amoReasonLit(confl).Neg())
			lits = s.amoReasonBuf[:]
		default:
			if s.ca.learnt(confl) {
				s.bumpClause(confl)
			}
			lits = s.ca.lits(confl)
			if p != LitUndef && Lit(lits[0]) != p {
				// Binary clauses propagate straight from the watcher without
				// normalizing the asserted literal into slot 0; fix up lazily.
				lits[0], lits[1] = lits[1], lits[0]
			}
		}
		start := 0
		if p != LitUndef {
			start = 1 // lits[0] is the asserted literal p itself
		}
		for i := start; i < len(lits); i++ {
			q := Lit(lits[i])
			v := q.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.bumpVar(v)
			if s.level[v] >= s.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Select next literal to expand from the trail.
		for !s.seen[s.trail[index].Var()] {
			index--
		}
		p = s.trail[index]
		index--
		s.seen[p.Var()] = false
		counter--
		if counter == 0 {
			break
		}
		confl = s.reason[p.Var()]
	}
	learnt[0] = p.Neg()

	// Remember every literal whose seen flag is still set so the cleanup
	// below also covers literals dropped by minimization (leaking a seen
	// flag corrupts counting in later conflicts).
	s.clearBuf = append(s.clearBuf[:0], learnt[1:]...)

	// Clause minimization: drop literals implied by the rest of the learnt
	// clause. Deep mode follows implication chains recursively (MiniSat's
	// ccmin-mode=2); basic mode checks one step only.
	j := 1
	if s.DeepMinimize {
		s.redEpoch++ // invalidates the per-variable memo in O(1)
		for i := 1; i < len(learnt); i++ {
			if !s.litRedundantDeep(learnt[i]) {
				learnt[j] = learnt[i]
				j++
			}
		}
	} else {
		for i := 1; i < len(learnt); i++ {
			if !s.litRedundantBasic(learnt[i]) {
				learnt[j] = learnt[i]
				j++
			}
		}
	}
	learnt = learnt[:j]

	// Find backtrack level: the second-highest decision level in the clause.
	btLevel = 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = s.level[learnt[1].Var()]
	}

	// Clear all seen flags, including those of minimized-away literals.
	s.seen[learnt[0].Var()] = false
	for _, l := range s.clearBuf {
		s.seen[l.Var()] = false
	}
	s.analyzeBuf = learnt
	return learnt, btLevel
}

// litRedundantDeep reports whether literal l is implied by the seen literals
// of the learnt clause through any chain of reason clauses. Verdicts are
// memoized per variable in stamp-indexed arrays valid for one analyze call
// (redEpoch), so the hot path never allocates; s.seen is never modified, so
// a failed exploration needs no rollback.
func (s *Solver) litRedundantDeep(l Lit) bool {
	v := l.Var()
	if s.redStamp[v] == s.redEpoch {
		return s.redVal[v]
	}
	r := s.reason[v]
	// Mark before recursing: cuts cycles conservatively (an in-progress
	// variable reads as not-redundant, avoiding circular proofs).
	s.redStamp[v] = s.redEpoch
	s.redVal[v] = false
	if r == crefUndef {
		return false
	}
	if r&amoReasonFlag != 0 {
		// AMO reason: the justification is [l, ¬trigger] — the only other
		// literal to chase is the trigger's negation.
		q := amoReasonLit(r).Neg()
		if !s.seen[q.Var()] && s.level[q.Var()] != 0 && !s.litRedundantDeep(q) {
			return false
		}
		s.redVal[v] = true
		return true
	}
	for i, n := 0, s.ca.size(r); i < n; i++ {
		q := s.ca.lit(r, i)
		if q.Var() == v {
			continue
		}
		if s.seen[q.Var()] || s.level[q.Var()] == 0 {
			continue
		}
		if !s.litRedundantDeep(q) {
			return false
		}
	}
	s.redVal[v] = true
	return true
}

// litRedundantBasic reports whether literal l of a learnt clause is implied
// by the remaining literals via its reason clause (one-step self-subsumption).
func (s *Solver) litRedundantBasic(l Lit) bool {
	r := s.reason[l.Var()]
	if r == crefUndef {
		return false
	}
	if r&amoReasonFlag != 0 {
		q := amoReasonLit(r).Neg()
		return s.seen[q.Var()] || s.level[q.Var()] == 0
	}
	for i, n := 0, s.ca.size(r); i < n; i++ {
		q := s.ca.lit(r, i)
		if q.Var() == l.Var() {
			continue
		}
		if !s.seen[q.Var()] && s.level[q.Var()] != 0 {
			return false
		}
	}
	return true
}

func (s *Solver) bumpVar(v Var) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.heap.update(v)
}

func (s *Solver) decayVarActivity() { s.varInc /= 0.95 }
func (s *Solver) decayClaActivity() { s.claInc /= 0.999 }

// cancelUntil backtracks to the given decision level.
func (s *Solver) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	bound := s.trailLim[lvl]
	for i := len(s.trail) - 1; i >= bound; i-- {
		l := s.trail[i]
		v := l.Var()
		if s.PhaseSaving {
			// The trail literal is the one that was true.
			s.phase[v] = !l.Sign()
		}
		s.assign[l] = lUndef
		s.assign[l.Neg()] = lUndef
		s.reason[v] = crefUndef
		s.level[v] = -1
		s.heap.insert(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

// pickBranchVar returns the unassigned variable with the highest activity.
func (s *Solver) pickBranchVar() Var {
	for !s.heap.empty() {
		v := s.heap.pop()
		if s.assign[PosLit(v)] == lUndef {
			return v
		}
	}
	return -1
}

// recordLearnt installs a learnt clause with the given LBD and asserts its
// first literal.
func (s *Solver) recordLearnt(lits []Lit, lbd int) {
	s.Learned++
	s.proofAdd(lits)
	if s.learntHook != nil {
		s.learntHook(lits, lbd)
	}
	if len(lits) == 1 {
		// Asserting unit at level 0.
		if !s.enqueue(lits[0], crefUndef) {
			s.unsatRoot = true
			s.proofEmpty()
		}
		return
	}
	c := s.ca.alloc(lits, true)
	s.ca.setActivity(c, s.claInc)
	s.ca.setLBD(c, lbd)
	s.learnts = append(s.learnts, c)
	s.attachClause(c)
	s.enqueue(lits[0], c)
}

// reduceDB removes roughly half of the learnt clauses. Clauses are ranked by
// LBD first (Glucose), clause activity second; binary clauses, glue clauses
// (LBD ≤ LBDCap) and reason clauses are always kept.
func (s *Solver) reduceDB() {
	ca := &s.ca
	sort.Slice(s.learnts, func(i, j int) bool {
		ci, cj := s.learnts[i], s.learnts[j]
		if li, lj := ca.lbd(ci), ca.lbd(cj); li != lj {
			return li < lj
		}
		return ca.activity(ci) > ca.activity(cj)
	})
	locked := func(c cref) bool {
		v := ca.lit(c, 0).Var()
		return s.assign[PosLit(v)] != lUndef && s.reason[v] == c
	}
	kept := s.learnts[:0]
	for i, c := range s.learnts {
		if ca.size(c) <= 2 || ca.lbd(c) <= s.LBDCap || locked(c) || i < len(s.learnts)/2 {
			kept = append(kept, c)
		} else {
			s.proofBuf = ca.appendLits(s.proofBuf[:0], c)
			s.proofDelete(s.proofBuf)
			ca.markDeleted(c)
		}
	}
	s.learnts = kept
	s.flushDeletions()
}

// flushDeletions makes deleted clauses invisible to propagation: either the
// arena GC ran (which rebuilds every watch list from the live clauses) or
// the watch lists are swept in place. Must be called after any batch of
// markDeleted calls before search resumes — propagate has no lazy
// deleted-clause check.
func (s *Solver) flushDeletions() {
	if s.maybeCollectGarbage() {
		return
	}
	// Binary watch lists never hold deleted clauses (binaries are never
	// deleted), so only the long-clause lists need sweeping.
	for i, ws := range s.watches {
		kept := ws[:0]
		for _, w := range ws {
			if s.ca.deleted(w.c) {
				continue
			}
			kept = append(kept, w)
		}
		s.watches[i] = kept
	}
}

// maybeCollectGarbage compacts the arena when at least a third of it is
// deleted clauses: alive clauses are copied to a fresh backing store in
// list order and every cref (clause lists, reasons) is remapped; watch lists
// are rebuilt. Preserving each clause's literal order keeps the two-watched-
// literal invariant, so compaction is sound at any decision level.
func (s *Solver) maybeCollectGarbage() bool {
	if s.ca.wasted*3 < len(s.ca.data) {
		return false
	}
	old := s.ca.data
	data := make([]uint32, 0, len(old)-s.ca.wasted)
	// move copies a clause and leaves a forwarding pointer in the old
	// header (deleted bit set, word 1 = new cref); a second move of the
	// same clause returns the forwarded cref. Genuinely deleted clauses
	// are never moved: they appear in no clause list and no reason.
	move := func(c cref) cref {
		if old[c]&1 != 0 {
			return cref(old[c+1])
		}
		n := cref(len(data))
		end := int(c) + hdrWords + int(old[c]>>2)
		data = append(data, old[c:end]...)
		old[c] |= 1
		old[c+1] = n
		return n
	}
	for i, c := range s.clauses {
		s.clauses[i] = move(c)
	}
	for i, c := range s.learnts {
		s.learnts[i] = move(c)
	}
	for v := range s.reason {
		// Tagged AMO reasons hold a literal, not an arena address: skip.
		if r := s.reason[v]; r != crefUndef && r&amoReasonFlag == 0 {
			s.reason[v] = move(r)
		}
	}
	s.ca.data = data
	s.ca.wasted = 0
	for i := range s.watches {
		s.watches[i] = s.watches[i][:0]
		s.binWatches[i] = s.binWatches[i][:0]
	}
	for _, c := range s.clauses {
		s.attachClause(c)
	}
	for _, c := range s.learnts {
		s.attachClause(c)
	}
	return true
}

// recordRestartStats feeds one conflict's LBD into the restart policy.
// Called at the conflict, before backtracking, so the trail length reflects
// how deep the search was. When the search trail is much larger than its
// running average the solver looks close to a model, and the LBD window is
// cleared to block an imminent restart (Glucose's restart blocking).
func (s *Solver) recordRestartStats(lbd int) {
	s.lbdSum += float64(lbd)
	if s.lbdWinN == len(s.lbdWin) {
		s.lbdWinSum -= s.lbdWin[s.lbdWinIdx]
	} else {
		s.lbdWinN++
	}
	s.lbdWin[s.lbdWinIdx] = int64(lbd)
	s.lbdWinSum += int64(lbd)
	s.lbdWinIdx = (s.lbdWinIdx + 1) % len(s.lbdWin)
	s.trailAvg += (float64(len(s.trail)) - s.trailAvg) / 5000
	if s.Conflicts > 10000 && s.lbdWinN == len(s.lbdWin) &&
		float64(len(s.trail)) > 1.4*s.trailAvg {
		s.lbdWinN, s.lbdWinSum, s.lbdWinIdx = 0, 0, 0
	}
}

// shouldRestart implements the restart policy: by default restart when
// 0.8 × (average LBD of the last 50 conflicts) exceeds the lifetime average
// LBD — recent learnt-clause quality has degraded, so the search region is
// bad (Glucose). With LubyRestarts, the classic conflict-count schedule.
func (s *Solver) shouldRestart(conflictsThisRestart, lubyLimit int64) bool {
	if s.LubyRestarts {
		return conflictsThisRestart >= lubyLimit
	}
	if s.lbdWinN < len(s.lbdWin) {
		return false
	}
	restart := float64(s.lbdWinSum)*0.8 > float64(len(s.lbdWin))*(s.lbdSum/float64(s.Conflicts))
	if restart {
		s.lbdWinN, s.lbdWinSum, s.lbdWinIdx = 0, 0, 0
	}
	return restart
}

// luby returns the i-th element (1-based) of the Luby restart sequence
// scaled by base.
func luby(base int64, i int64) int64 {
	// Find the finite subsequence containing index i and its position.
	var size, seq int64 = 1, 0
	for size < i+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != i {
		size = (size - 1) / 2
		seq--
		i = i % size
	}
	return base << uint(seq)
}

// Solve runs the CDCL search until the formula is decided or the conflict
// budget is exhausted. It may be called repeatedly, interleaved with
// AddClause.
func (s *Solver) Solve() Status { return s.solve(nil) }

// SolveAssuming solves under the given assumption literals, tried as the
// first decisions. Unsat means unsatisfiable *under the assumptions* (the
// formula itself is not marked unsatisfiable unless it conflicts at the
// root with no assumption involved). Assumptions leave no permanent
// constraints behind, unlike AddClause; learnt clauses and activities carry
// over to later calls, which is what makes assumption-based narrowing
// incremental.
func (s *Solver) SolveAssuming(assumptions ...Lit) Status {
	return s.solve(assumptions)
}

func (s *Solver) solve(assumptions []Lit) Status {
	if s.unsatRoot {
		return Unsat
	}
	s.cancelUntil(0)
	if s.propagate() != crefUndef {
		s.unsatRoot = true
		s.proofEmpty()
		return Unsat
	}

	if s.maxLearnts == 0 {
		s.maxLearnts = float64(len(s.clauses)) / 3
		if s.maxLearnts < 1000 {
			s.maxLearnts = 1000
		}
		s.learntAdjust = 100
	}

	startConflicts := s.Conflicts
	budget := s.budgetConflicts
	var restartNum int64
	conflictsThisRestart := int64(0)
	restartLimit := luby(100, restartNum)

	for {
		if s.interrupted() {
			s.cancelUntil(0)
			return Unknown
		}
		confl := s.propagate()
		if confl != crefUndef {
			s.Conflicts++
			conflictsThisRestart++
			if s.decisionLevel() == 0 {
				s.unsatRoot = true
				s.proofEmpty()
				return Unsat
			}
			learnt, btLevel := s.analyze(confl)
			lbd := s.litsLBD(learnt) // before backtracking clears levels
			s.recordRestartStats(lbd)
			s.cancelUntil(btLevel)
			s.recordLearnt(learnt, lbd)
			if s.unsatRoot {
				return Unsat
			}
			s.decayVarActivity()
			s.decayClaActivity()
			s.learntAdjust--
			if s.learntAdjust <= 0 {
				s.learntAdjust = 100
				s.maxLearnts *= 1.05
			}
			s.pollProgress()
			if budget >= 0 && s.Conflicts-startConflicts >= budget {
				s.cancelUntil(0)
				return Unknown
			}
			continue
		}

		// No conflict.
		if s.shouldRestart(conflictsThisRestart, restartLimit) {
			restartNum++
			s.Restarts++
			conflictsThisRestart = 0
			restartLimit = luby(100, restartNum)
			s.cancelUntil(0)
			s.maybeInprocess()
			if s.unsatRoot {
				return Unsat
			}
			continue
		}
		if float64(len(s.learnts)) >= s.maxLearnts+float64(len(s.trail)) {
			s.reduceDB()
		}

		// Assumption literals come before free decisions: one per level.
		if dl := s.decisionLevel(); dl < len(assumptions) {
			a := assumptions[dl]
			if a.Var() >= s.NumVars() {
				panic(fmt.Sprintf("sat: assumption %v references undeclared variable", a))
			}
			switch s.value(a) {
			case lTrue:
				// Already implied: open an empty level so indices line up.
				s.trailLim = append(s.trailLim, len(s.trail))
				continue
			case lFalse:
				// Conflicts with the formula under earlier assumptions.
				s.cancelUntil(0)
				return Unsat
			}
			s.trailLim = append(s.trailLim, len(s.trail))
			s.enqueue(a, crefUndef)
			continue
		}

		v := s.pickBranchVar()
		if v < 0 {
			return Sat // all variables assigned
		}
		s.Decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		s.enqueue(MkLit(v, !s.phase[v]), crefUndef)
	}
}

// Model returns a copy of the satisfying assignment after a Sat result.
func (s *Solver) Model() []bool {
	m := make([]bool, s.NumVars())
	for v := range m {
		m[v] = s.Value(v)
	}
	return m
}
