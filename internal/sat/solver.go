package sat

import (
	"bufio"
	"fmt"
	"sort"
)

// clause is a disjunction of literals. lits[0] and lits[1] are the watched
// literals of non-unit clauses.
type clause struct {
	lits     []Lit
	activity float64
	learnt   bool
	deleted  bool
}

// Solver is a CDCL SAT solver. The zero value is not usable; call New.
// Clauses may be added between Solve calls (the solver restarts from decision
// level 0), which is how the EBMF loop narrows the rectangle budget.
type Solver struct {
	clauses []*clause // problem clauses
	learnts []*clause // learnt clauses
	watches [][]*clause

	assign   []lbool // current assignment per variable
	level    []int   // decision level per assigned variable
	reason   []*clause
	trail    []Lit
	trailLim []int // trail index per decision level
	qhead    int

	activity   []float64
	varInc     float64
	heap       *varHeap
	phase      []bool // saved polarity per variable
	seen       []bool // scratch for analyze
	analyzeBuf []Lit
	clearBuf   []Lit // literals whose seen flag must be reset after analyze

	unsatRoot bool // formula already false at level 0

	// DeepMinimize enables recursive learnt-clause minimization (default
	// on; switch off to fall back to one-step self-subsumption).
	DeepMinimize bool

	proof *bufio.Writer // DRAT trace (nil when disabled)

	// Statistics.
	Conflicts    int64
	Decisions    int64
	Propagations int64
	Restarts     int64
	Learned      int64

	maxLearnts   float64
	learntAdjust int64

	budgetConflicts int64 // <0 means unlimited
}

// New returns an empty solver with no variables.
func New() *Solver {
	s := &Solver{
		varInc:          1.0,
		budgetConflicts: -1,
		DeepMinimize:    true,
	}
	s.heap = newVarHeap(&s.activity)
	return s
}

// NewVar introduces a fresh variable and returns its index.
func (s *Solver) NewVar() Var {
	v := len(s.assign)
	s.assign = append(s.assign, lUndef)
	s.level = append(s.level, -1)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.phase = append(s.phase, false)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.heap.insert(v)
	return v
}

// NumVars returns the number of variables.
func (s *Solver) NumVars() int { return len(s.assign) }

// NumClauses returns the number of problem clauses (excluding learnt ones).
func (s *Solver) NumClauses() int { return len(s.clauses) }

// NumLearnts returns the number of retained learnt clauses.
func (s *Solver) NumLearnts() int { return len(s.learnts) }

// SetConflictBudget bounds the number of conflicts of subsequent Solve calls;
// a negative value removes the bound. When the budget is exhausted Solve
// returns Unknown.
func (s *Solver) SetConflictBudget(n int64) { s.budgetConflicts = n }

func (s *Solver) value(l Lit) lbool {
	v := s.assign[l.Var()]
	if v == lUndef {
		return lUndef
	}
	if l.Sign() {
		return -v
	}
	return v
}

// Value returns the model value of variable v after a Sat result.
func (s *Solver) Value(v Var) bool { return s.assign[v] == lTrue }

// AddClause adds a clause over the given literals. It must be called at
// decision level 0 (i.e. not from within Solve). Adding an empty or
// root-falsified clause marks the instance unsatisfiable.
func (s *Solver) AddClause(lits ...Lit) {
	if s.unsatRoot {
		return
	}
	// A previous Solve may have left the trail at a high decision level
	// (e.g. after Sat); incremental clause addition happens at the root.
	s.cancelUntil(0)
	// Sort + dedupe, drop root-false literals, detect tautologies and
	// root-true clauses.
	ls := make([]Lit, len(lits))
	copy(ls, lits)
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	out := ls[:0]
	var prev Lit = LitUndef
	for _, l := range ls {
		if l.Var() >= s.NumVars() {
			panic(fmt.Sprintf("sat: literal %v references undeclared variable", l))
		}
		if l == prev {
			continue
		}
		if prev != LitUndef && l == prev.Neg() {
			return // tautology
		}
		switch s.value(l) {
		case lTrue:
			return // already satisfied at root
		case lFalse:
			continue // drop
		}
		out = append(out, l)
		prev = l
	}
	switch len(out) {
	case 0:
		s.unsatRoot = true
	case 1:
		if !s.enqueue(out[0], nil) {
			s.unsatRoot = true
			return
		}
		if s.propagate() != nil {
			s.unsatRoot = true
		}
	default:
		c := &clause{lits: append([]Lit(nil), out...)}
		s.clauses = append(s.clauses, c)
		s.watchClause(c)
	}
}

func (s *Solver) watchClause(c *clause) {
	// Watch the negations: when lits[0] or lits[1] becomes false we visit c.
	s.watches[c.lits[0].Neg()] = append(s.watches[c.lits[0].Neg()], c)
	s.watches[c.lits[1].Neg()] = append(s.watches[c.lits[1].Neg()], c)
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// enqueue assigns literal l with the given reason clause. It returns false
// on an immediate conflict with the current assignment.
func (s *Solver) enqueue(l Lit, from *clause) bool {
	switch s.value(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	v := l.Var()
	if l.Sign() {
		s.assign[v] = lFalse
	} else {
		s.assign[v] = lTrue
	}
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, l)
	return true
}

// propagate performs unit propagation; it returns a conflicting clause or
// nil.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead] // p is true; visit clauses watching ¬p
		s.qhead++
		s.Propagations++
		ws := s.watches[p]
		kept := ws[:0]
		var confl *clause
		for wi := 0; wi < len(ws); wi++ {
			c := ws[wi]
			if c.deleted {
				continue
			}
			if confl != nil {
				kept = append(kept, ws[wi:]...)
				break
			}
			// Normalize so the false literal (¬p ... i.e. the one whose
			// negation is p) is lits[1].
			falseLit := p.Neg()
			if c.lits[0] == falseLit {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			// If lits[0] is true the clause is satisfied.
			if s.value(c.lits[0]) == lTrue {
				kept = append(kept, c)
				continue
			}
			// Look for a new literal to watch.
			moved := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Neg()] = append(s.watches[c.lits[1].Neg()], c)
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			// Clause is unit or conflicting.
			kept = append(kept, c)
			if !s.enqueue(c.lits[0], c) {
				confl = c
				s.qhead = len(s.trail)
			}
		}
		s.watches[p] = kept
		if confl != nil {
			return confl
		}
	}
	return nil
}

// analyze derives a first-UIP learnt clause from the conflict and returns it
// together with the backtrack level. learnt[0] is the asserting literal.
func (s *Solver) analyze(confl *clause) (learnt []Lit, btLevel int) {
	learnt = append(s.analyzeBuf[:0], LitUndef) // slot for asserting literal
	counter := 0
	p := LitUndef
	index := len(s.trail) - 1

	for {
		start := 0
		if p != LitUndef {
			start = 1 // lits[0] is the asserted literal p itself
		}
		for i := start; i < len(confl.lits); i++ {
			q := confl.lits[i]
			v := q.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.bumpVar(v)
			if s.level[v] >= s.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Select next literal to expand from the trail.
		for !s.seen[s.trail[index].Var()] {
			index--
		}
		p = s.trail[index]
		index--
		s.seen[p.Var()] = false
		counter--
		if counter == 0 {
			break
		}
		confl = s.reason[p.Var()]
	}
	learnt[0] = p.Neg()

	// Remember every literal whose seen flag is still set so the cleanup
	// below also covers literals dropped by minimization (leaking a seen
	// flag corrupts counting in later conflicts).
	s.clearBuf = append(s.clearBuf[:0], learnt[1:]...)

	// Clause minimization: drop literals implied by the rest of the learnt
	// clause. Deep mode follows implication chains recursively (MiniSat's
	// ccmin-mode=2); basic mode checks one step only.
	j := 1
	if s.DeepMinimize {
		cache := map[Var]bool{}
		for i := 1; i < len(learnt); i++ {
			if !s.litRedundantDeep(learnt[i], cache) {
				learnt[j] = learnt[i]
				j++
			}
		}
	} else {
		for i := 1; i < len(learnt); i++ {
			if !s.litRedundantBasic(learnt[i]) {
				learnt[j] = learnt[i]
				j++
			}
		}
	}
	learnt = learnt[:j]

	// Find backtrack level: the second-highest decision level in the clause.
	btLevel = 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = s.level[learnt[1].Var()]
	}

	// Clear all seen flags, including those of minimized-away literals.
	s.seen[learnt[0].Var()] = false
	for _, l := range s.clearBuf {
		s.seen[l.Var()] = false
	}
	s.analyzeBuf = learnt
	return learnt, btLevel
}

// litRedundantDeep reports whether literal l is implied by the seen literals
// of the learnt clause through any chain of reason clauses. cache memoizes
// per-variable verdicts within one analyze call; s.seen is never modified,
// so a failed exploration needs no rollback.
func (s *Solver) litRedundantDeep(l Lit, cache map[Var]bool) bool {
	if v, ok := cache[l.Var()]; ok {
		return v
	}
	r := s.reason[l.Var()]
	if r == nil {
		cache[l.Var()] = false
		return false
	}
	// Tentatively mark to cut cycles (a cycle through reasons means the
	// literal is supported by the marked set, which is sound to treat as
	// redundant only if every other path checks out; be conservative and
	// treat in-progress vars as not-redundant to avoid circular proofs).
	cache[l.Var()] = false
	for _, q := range r.lits {
		if q.Var() == l.Var() {
			continue
		}
		if s.seen[q.Var()] || s.level[q.Var()] == 0 {
			continue
		}
		if !s.litRedundantDeep(q, cache) {
			return false
		}
	}
	cache[l.Var()] = true
	return true
}

// litRedundantBasic reports whether literal l of a learnt clause is implied
// by the remaining literals via its reason clause (one-step self-subsumption).
func (s *Solver) litRedundantBasic(l Lit) bool {
	r := s.reason[l.Var()]
	if r == nil {
		return false
	}
	for _, q := range r.lits {
		if q.Var() == l.Var() {
			continue
		}
		if !s.seen[q.Var()] && s.level[q.Var()] != 0 {
			return false
		}
	}
	return true
}

func (s *Solver) bumpVar(v Var) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.heap.update(v)
}

func (s *Solver) decayVarActivity() { s.varInc /= 0.95 }

// cancelUntil backtracks to the given decision level.
func (s *Solver) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	bound := s.trailLim[lvl]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		s.phase[v] = s.assign[v] == lTrue
		s.assign[v] = lUndef
		s.reason[v] = nil
		s.level[v] = -1
		s.heap.insert(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

// pickBranchVar returns the unassigned variable with the highest activity.
func (s *Solver) pickBranchVar() Var {
	for !s.heap.empty() {
		v := s.heap.pop()
		if s.assign[v] == lUndef {
			return v
		}
	}
	return -1
}

// recordLearnt installs a learnt clause and asserts its first literal.
func (s *Solver) recordLearnt(lits []Lit) {
	s.Learned++
	s.proofAdd(lits)
	if len(lits) == 1 {
		// Asserting unit at level 0.
		if !s.enqueue(lits[0], nil) {
			s.unsatRoot = true
			s.proofEmpty()
		}
		return
	}
	c := &clause{lits: append([]Lit(nil), lits...), learnt: true, activity: s.varInc}
	s.learnts = append(s.learnts, c)
	s.watchClause(c)
	s.enqueue(lits[0], c)
}

// reduceDB removes roughly half of the learnt clauses, keeping binary
// clauses, reason clauses and the most active ones.
func (s *Solver) reduceDB() {
	sort.Slice(s.learnts, func(i, j int) bool {
		return s.learnts[i].activity > s.learnts[j].activity
	})
	locked := func(c *clause) bool {
		v := c.lits[0].Var()
		return s.assign[v] != lUndef && s.reason[v] == c
	}
	kept := s.learnts[:0]
	for i, c := range s.learnts {
		if len(c.lits) <= 2 || locked(c) || i < len(s.learnts)/2 {
			kept = append(kept, c)
		} else {
			c.deleted = true
			s.proofDelete(c.lits)
		}
	}
	s.learnts = kept
}

// luby returns the i-th element (1-based) of the Luby restart sequence
// scaled by base.
func luby(base int64, i int64) int64 {
	// Find the finite subsequence containing index i and its position.
	var size, seq int64 = 1, 0
	for size < i+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != i {
		size = (size - 1) / 2
		seq--
		i = i % size
	}
	return base << uint(seq)
}

// Solve runs the CDCL search until the formula is decided or the conflict
// budget is exhausted. It may be called repeatedly, interleaved with
// AddClause.
func (s *Solver) Solve() Status { return s.solve(nil) }

// SolveAssuming solves under the given assumption literals, tried as the
// first decisions. Unsat means unsatisfiable *under the assumptions* (the
// formula itself is not marked unsatisfiable unless it conflicts at the
// root with no assumption involved). Assumptions leave no permanent
// constraints behind, unlike AddClause.
func (s *Solver) SolveAssuming(assumptions ...Lit) Status {
	return s.solve(assumptions)
}

func (s *Solver) solve(assumptions []Lit) Status {
	if s.unsatRoot {
		return Unsat
	}
	s.cancelUntil(0)
	if s.propagate() != nil {
		s.unsatRoot = true
		s.proofEmpty()
		return Unsat
	}

	if s.maxLearnts == 0 {
		s.maxLearnts = float64(len(s.clauses)) / 3
		if s.maxLearnts < 1000 {
			s.maxLearnts = 1000
		}
		s.learntAdjust = 100
	}

	startConflicts := s.Conflicts
	budget := s.budgetConflicts
	var restartNum int64
	conflictsThisRestart := int64(0)
	restartLimit := luby(100, restartNum)

	for {
		confl := s.propagate()
		if confl != nil {
			s.Conflicts++
			conflictsThisRestart++
			if s.decisionLevel() == 0 {
				s.unsatRoot = true
				s.proofEmpty()
				return Unsat
			}
			learnt, btLevel := s.analyze(confl)
			s.cancelUntil(btLevel)
			s.recordLearnt(learnt)
			if s.unsatRoot {
				return Unsat
			}
			s.decayVarActivity()
			s.learntAdjust--
			if s.learntAdjust <= 0 {
				s.learntAdjust = 100
				s.maxLearnts *= 1.05
			}
			if budget >= 0 && s.Conflicts-startConflicts >= budget {
				s.cancelUntil(0)
				return Unknown
			}
			continue
		}

		// No conflict.
		if conflictsThisRestart >= restartLimit {
			restartNum++
			s.Restarts++
			conflictsThisRestart = 0
			restartLimit = luby(100, restartNum)
			s.cancelUntil(0)
			continue
		}
		if float64(len(s.learnts)) >= s.maxLearnts+float64(len(s.trail)) {
			s.reduceDB()
		}

		// Assumption literals come before free decisions: one per level.
		if dl := s.decisionLevel(); dl < len(assumptions) {
			a := assumptions[dl]
			if a.Var() >= s.NumVars() {
				panic(fmt.Sprintf("sat: assumption %v references undeclared variable", a))
			}
			switch s.value(a) {
			case lTrue:
				// Already implied: open an empty level so indices line up.
				s.trailLim = append(s.trailLim, len(s.trail))
				continue
			case lFalse:
				// Conflicts with the formula under earlier assumptions.
				s.cancelUntil(0)
				return Unsat
			}
			s.trailLim = append(s.trailLim, len(s.trail))
			s.enqueue(a, nil)
			continue
		}

		v := s.pickBranchVar()
		if v < 0 {
			return Sat // all variables assigned
		}
		s.Decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		s.enqueue(MkLit(v, !s.phase[v]), nil)
	}
}

// Model returns a copy of the satisfying assignment after a Sat result.
func (s *Solver) Model() []bool {
	m := make([]bool, s.NumVars())
	for v := range m {
		m[v] = s.Value(v)
	}
	return m
}
