package sat

// varHeap is a max-heap of variables ordered by VSIDS activity, with an
// index table for O(log n) updates. A variable may be absent (popped); it is
// re-inserted on backtracking.
type varHeap struct {
	activity *[]float64
	heap     []Var
	indices  []int // position in heap, -1 if absent
}

func newVarHeap(activity *[]float64) *varHeap {
	return &varHeap{activity: activity}
}

func (h *varHeap) empty() bool { return len(h.heap) == 0 }

// reserve pre-sizes the heap storage for n variables (capacity hint only).
func (h *varHeap) reserve(n int) {
	if n > cap(h.heap) {
		h.heap = append(make([]Var, 0, n), h.heap...)
	}
	if n > cap(h.indices) {
		h.indices = append(make([]int, 0, n), h.indices...)
	}
}

func (h *varHeap) contains(v Var) bool {
	return v < len(h.indices) && h.indices[v] >= 0
}

func (h *varHeap) less(a, b Var) bool {
	return (*h.activity)[a] > (*h.activity)[b]
}

// insert adds v if absent.
func (h *varHeap) insert(v Var) {
	for len(h.indices) <= v {
		h.indices = append(h.indices, -1)
	}
	if h.indices[v] >= 0 {
		return
	}
	h.indices[v] = len(h.heap)
	h.heap = append(h.heap, v)
	h.siftUp(h.indices[v])
}

// update restores heap order after v's activity increased.
func (h *varHeap) update(v Var) {
	if h.contains(v) {
		h.siftUp(h.indices[v])
	}
}

// pop removes and returns the most active variable.
func (h *varHeap) pop() Var {
	v := h.heap[0]
	last := h.heap[len(h.heap)-1]
	h.heap[0] = last
	h.indices[last] = 0
	h.heap = h.heap[:len(h.heap)-1]
	h.indices[v] = -1
	if len(h.heap) > 0 {
		h.siftDown(0)
	}
	return v
}

func (h *varHeap) siftUp(i int) {
	x := h.heap[i]
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(x, h.heap[p]) {
			break
		}
		h.heap[i] = h.heap[p]
		h.indices[h.heap[i]] = i
		i = p
	}
	h.heap[i] = x
	h.indices[x] = i
}

func (h *varHeap) siftDown(i int) {
	x := h.heap[i]
	n := len(h.heap)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		c := l
		if r := l + 1; r < n && h.less(h.heap[r], h.heap[l]) {
			c = r
		}
		if !h.less(h.heap[c], x) {
			break
		}
		h.heap[i] = h.heap[c]
		h.indices[h.heap[i]] = i
		i = c
	}
	h.heap[i] = x
	h.indices[x] = i
}
