package sat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseDIMACS reads a CNF formula in DIMACS format and loads it into a fresh
// solver. Comment lines ("c ...") are ignored; the problem line
// ("p cnf <vars> <clauses>") sets the variable count.
func ParseDIMACS(r io.Reader) (*Solver, error) {
	s := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	declared := -1
	var cur []Lit
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			f := strings.Fields(line)
			if len(f) != 4 || f[1] != "cnf" {
				return nil, fmt.Errorf("sat: line %d: malformed problem line %q", lineNo, line)
			}
			n, err := strconv.Atoi(f[2])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("sat: line %d: bad variable count", lineNo)
			}
			declared = n
			for s.NumVars() < n {
				s.NewVar()
			}
			continue
		}
		for _, tok := range strings.Fields(line) {
			x, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("sat: line %d: bad literal %q", lineNo, tok)
			}
			if x == 0 {
				s.AddClause(cur...)
				cur = cur[:0]
				continue
			}
			v := x
			if v < 0 {
				v = -v
			}
			for s.NumVars() < v {
				s.NewVar()
			}
			cur = append(cur, MkLit(v-1, x < 0))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(cur) > 0 {
		return nil, fmt.Errorf("sat: trailing clause without 0 terminator")
	}
	_ = declared
	return s, nil
}

// WriteDIMACS writes the problem clauses (not learnt clauses) in DIMACS CNF
// format. Native at-most-one groups (AddAtMostOne) are rendered as their
// pairwise clause expansion: the groups ARE those clauses semantically, the
// solver just never materializes them in the arena — emitting them here is
// what makes every AMO-derived learnt clause a RUP consequence of the
// written formula, so DRAT certification works unchanged.
func (s *Solver) WriteDIMACS(w io.Writer) error {
	bw := bufio.NewWriter(w)
	nClauses := len(s.clauses)
	for g := 0; g+1 < len(s.amoStart); g++ {
		k := int(s.amoStart[g+1] - s.amoStart[g])
		nClauses += k * (k - 1) / 2
	}
	// Root-level units are part of the formula too.
	var units []Lit
	for _, l := range s.trail {
		if s.level[l.Var()] == 0 {
			units = append(units, l)
		}
	}
	// A formula found contradictory while adding clauses has no surviving
	// witness clause; emit an explicit empty clause so the written formula
	// is equivalent to the solver's state.
	empty := 0
	if s.unsatRoot {
		empty = 1
	}
	if _, err := fmt.Fprintf(bw, "p cnf %d %d\n", s.NumVars(), nClauses+len(units)+empty); err != nil {
		return err
	}
	if s.unsatRoot {
		if _, err := fmt.Fprintln(bw, "0"); err != nil {
			return err
		}
	}
	var ibuf [14]byte
	emit := func(lits []Lit) error {
		for _, l := range lits {
			x := int64(l.Var() + 1)
			if l.Sign() {
				x = -x
			}
			if _, err := bw.Write(strconv.AppendInt(ibuf[:0], x, 10)); err != nil {
				return err
			}
			if err := bw.WriteByte(' '); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintln(bw, "0")
		return err
	}
	for _, u := range units {
		if err := emit([]Lit{u}); err != nil {
			return err
		}
	}
	var buf []Lit
	for _, c := range s.clauses {
		buf = s.ca.appendLits(buf[:0], c)
		if err := emit(buf); err != nil {
			return err
		}
	}
	for g := 0; g+1 < len(s.amoStart); g++ {
		lits := s.amoLits[s.amoStart[g]:s.amoStart[g+1]]
		for i := 0; i < len(lits); i++ {
			for j := i + 1; j < len(lits); j++ {
				if err := emit([]Lit{lits[i].Neg(), lits[j].Neg()}); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}
