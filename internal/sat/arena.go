package sat

import "math"

// The clause arena stores every clause — problem and learnt — in one flat
// []uint32 backing store, MiniSat/Glucose style. A clause is addressed by a
// 32-bit cref (the index of its header word), which replaces *clause
// throughout the solver: watch lists, reason pointers and the clause lists
// all hold crefs. Keeping all literals contiguous removes the per-clause
// allocations and pointer chases of the previous [][]*clause layout, and
// makes clause-database reduction a compacting copy instead of a garbage-
// collector workload.
//
// Layout per clause (hdrWords header words followed by the literals):
//
//	word 0: size<<2 | learnt<<1 | deleted
//	word 1: activity (float32 bits; learnt clauses only)
//	word 2: LBD — the literal-blocks-distance at learn time (learnt only)
//	word 3…: the literals, as uint32-cast Lit values
type cref = uint32

// crefUndef is the nil clause reference (no reason / no conflict).
const crefUndef cref = ^cref(0)

// binFlag is the reserved top cref bit: crefs must stay below it so tagged
// values (the AMO reason tag, crefUndef and the conflict sentinels in
// amo.go) can never collide with a real arena address.
const binFlag cref = 1 << 31

const hdrWords = 3

// watcher is one entry of a literal's watch list. blocker is a literal of
// the clause (initially the other watched literal): when it is already true
// the clause is satisfied and propagation can skip it without touching the
// arena at all — the common case on dense instances.
type watcher struct {
	c       cref
	blocker Lit
}

type clauseArena struct {
	data   []uint32
	wasted int // words occupied by deleted clauses, drives garbage collection
}

// alloc appends a clause and returns its reference.
func (a *clauseArena) alloc(lits []Lit, learnt bool) cref {
	if len(a.data)+hdrWords+len(lits) >= int(binFlag) {
		// crefs at or above binFlag would collide with the binary-watcher
		// tag (and eventually crefUndef); fail loudly rather than corrupt
		// propagation. 2^31 words = 8 GiB of clauses.
		panic("sat: clause arena exceeds 2^31 words")
	}
	c := cref(len(a.data))
	meta := uint32(len(lits)) << 2
	if learnt {
		meta |= 2
	}
	a.data = append(a.data, meta, 0, 0)
	for _, l := range lits {
		a.data = append(a.data, uint32(l))
	}
	return c
}

func (a *clauseArena) size(c cref) int     { return int(a.data[c] >> 2) }
func (a *clauseArena) learnt(c cref) bool  { return a.data[c]&2 != 0 }
func (a *clauseArena) deleted(c cref) bool { return a.data[c]&1 != 0 }

func (a *clauseArena) markDeleted(c cref) {
	if a.data[c]&1 == 0 {
		a.data[c] |= 1
		a.wasted += hdrWords + a.size(c)
	}
}

func (a *clauseArena) activity(c cref) float32 {
	return math.Float32frombits(a.data[c+1])
}

func (a *clauseArena) setActivity(c cref, v float32) {
	a.data[c+1] = math.Float32bits(v)
}

func (a *clauseArena) lbd(c cref) int        { return int(a.data[c+2]) }
func (a *clauseArena) setLBD(c cref, v int)  { a.data[c+2] = uint32(v) }
func (a *clauseArena) lit(c cref, i int) Lit { return Lit(a.data[int(c)+hdrWords+i]) }

// lits returns the literal span of c as raw words (cast each element to Lit).
// The view is only valid until the next alloc.
func (a *clauseArena) lits(c cref) []uint32 {
	base := int(c) + hdrWords
	return a.data[base : base+a.size(c)]
}

// appendLits appends the literals of c to buf.
func (a *clauseArena) appendLits(buf []Lit, c cref) []Lit {
	for _, w := range a.lits(c) {
		buf = append(buf, Lit(w))
	}
	return buf
}
