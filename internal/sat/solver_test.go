package sat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTrivialSat(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(PosLit(a))
	if got := s.Solve(); got != Sat {
		t.Fatalf("status %v", got)
	}
	if !s.Value(a) {
		t.Fatal("unit clause not honored")
	}
}

func TestTrivialUnsat(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(PosLit(a))
	s.AddClause(NegLit(a))
	if got := s.Solve(); got != Unsat {
		t.Fatalf("status %v", got)
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := New()
	s.NewVar()
	s.AddClause()
	if got := s.Solve(); got != Unsat {
		t.Fatalf("status %v", got)
	}
}

func TestEmptyFormulaSat(t *testing.T) {
	s := New()
	if got := s.Solve(); got != Sat {
		t.Fatalf("empty formula: %v", got)
	}
}

func TestTautologyIgnored(t *testing.T) {
	s := New()
	a := s.NewVar()
	b := s.NewVar()
	s.AddClause(PosLit(a), NegLit(a))
	s.AddClause(PosLit(b))
	if got := s.Solve(); got != Sat {
		t.Fatalf("status %v", got)
	}
	if !s.Value(b) {
		t.Fatal("b must be true")
	}
}

func TestDuplicateLiteralsCollapsed(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(PosLit(a), PosLit(a), PosLit(a))
	if got := s.Solve(); got != Sat || !s.Value(a) {
		t.Fatalf("status %v value %v", got, s.Value(a))
	}
}

func TestImplicationChain(t *testing.T) {
	// x0 ∧ (x0→x1) ∧ (x1→x2) ∧ ... all must be true.
	s := New()
	const n = 50
	vars := make([]Var, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	s.AddClause(PosLit(vars[0]))
	for i := 0; i+1 < n; i++ {
		s.AddClause(NegLit(vars[i]), PosLit(vars[i+1]))
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("status %v", got)
	}
	for i, v := range vars {
		if !s.Value(v) {
			t.Fatalf("x%d false", i)
		}
	}
}

func TestXorChainUnsat(t *testing.T) {
	// x0 ⊕ x1, x1 ⊕ x2, x0 ⊕ x2 with odd parity forced is UNSAT:
	// encode x0≠x1, x1≠x2, x0=x2 ... then force contradiction x0≠x2.
	s := New()
	x0, x1, x2 := s.NewVar(), s.NewVar(), s.NewVar()
	neq := func(a, b Var) {
		s.AddClause(PosLit(a), PosLit(b))
		s.AddClause(NegLit(a), NegLit(b))
	}
	neq(x0, x1)
	neq(x1, x2)
	neq(x0, x2) // x0≠x1≠x2≠x0 over booleans is impossible
	if got := s.Solve(); got != Unsat {
		t.Fatalf("status %v", got)
	}
}

// pigeonhole encodes PHP(n+1, n): n+1 pigeons into n holes — classic hard
// UNSAT family, exercises clause learning.
func pigeonhole(pigeons, holes int) *Solver {
	s := New()
	vars := make([][]Var, pigeons)
	for p := range vars {
		vars[p] = make([]Var, holes)
		for h := range vars[p] {
			vars[p][h] = s.NewVar()
		}
	}
	for p := 0; p < pigeons; p++ {
		lits := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			lits[h] = PosLit(vars[p][h])
		}
		s.AddClause(lits...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(NegLit(vars[p1][h]), NegLit(vars[p2][h]))
			}
		}
	}
	return s
}

func TestPigeonholeUnsat(t *testing.T) {
	for n := 2; n <= 6; n++ {
		s := pigeonhole(n+1, n)
		if got := s.Solve(); got != Unsat {
			t.Fatalf("PHP(%d,%d): %v", n+1, n, got)
		}
	}
}

func TestPigeonholeSatWhenEnoughHoles(t *testing.T) {
	s := pigeonhole(5, 5)
	if got := s.Solve(); got != Sat {
		t.Fatalf("PHP(5,5): %v", got)
	}
}

func TestConflictBudgetReturnsUnknown(t *testing.T) {
	s := pigeonhole(9, 8) // hard enough to exceed a 10-conflict budget
	s.SetConflictBudget(10)
	if got := s.Solve(); got != Unknown {
		t.Fatalf("status %v, want Unknown", got)
	}
	// Removing the budget must finish the proof.
	s.SetConflictBudget(-1)
	if got := s.Solve(); got != Unsat {
		t.Fatalf("status %v, want Unsat after removing budget", got)
	}
}

func TestIncrementalAddClause(t *testing.T) {
	// Solve, then constrain the found model away repeatedly; counts models
	// of a 3-variable free formula: must enumerate 8 and then UNSAT.
	s := New()
	vars := []Var{s.NewVar(), s.NewVar(), s.NewVar()}
	count := 0
	for {
		st := s.Solve()
		if st == Unsat {
			break
		}
		if st != Sat {
			t.Fatalf("unexpected %v", st)
		}
		count++
		if count > 8 {
			t.Fatal("more than 8 models of 3 free variables")
		}
		// Block this model.
		block := make([]Lit, len(vars))
		for i, v := range vars {
			block[i] = MkLit(v, s.Value(v))
		}
		s.AddClause(block...)
	}
	if count != 8 {
		t.Fatalf("enumerated %d models, want 8", count)
	}
}

func TestModelSatisfiesFormula(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		cls, nv := randomCNF(rng, 8, 30, 3)
		s := New()
		for i := 0; i < nv; i++ {
			s.NewVar()
		}
		for _, c := range cls {
			s.AddClause(c...)
		}
		if s.Solve() != Sat {
			continue
		}
		for _, c := range cls {
			if !clauseSatisfied(s, c) {
				t.Fatalf("model does not satisfy clause %v", c)
			}
		}
	}
}

func clauseSatisfied(s *Solver, c []Lit) bool {
	for _, l := range c {
		if s.Value(l.Var()) != l.Sign() {
			return true
		}
	}
	return false
}

// randomCNF generates a random k-CNF instance.
func randomCNF(rng *rand.Rand, nVars, nClauses, k int) ([][]Lit, int) {
	cls := make([][]Lit, nClauses)
	for i := range cls {
		c := make([]Lit, k)
		for j := range c {
			c[j] = MkLit(rng.Intn(nVars), rng.Intn(2) == 0)
		}
		cls[i] = c
	}
	return cls, nVars
}

// bruteForceSat decides satisfiability by enumeration (≤ 20 vars).
func bruteForceSat(nVars int, cls [][]Lit) bool {
	for mask := 0; mask < 1<<uint(nVars); mask++ {
		ok := true
		for _, c := range cls {
			sat := false
			for _, l := range c {
				val := mask&(1<<uint(l.Var())) != 0
				if val != l.Sign() {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// Property: CDCL agrees with brute force on random small instances.
func TestQuickAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nVars := 3 + rng.Intn(8)
		nClauses := 1 + rng.Intn(40)
		k := 1 + rng.Intn(3)
		cls, _ := randomCNF(rng, nVars, nClauses, k)
		s := New()
		for i := 0; i < nVars; i++ {
			s.NewVar()
		}
		for _, c := range cls {
			s.AddClause(c...)
		}
		got := s.Solve()
		want := bruteForceSat(nVars, cls)
		if want {
			return got == Sat
		}
		return got == Unsat
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: adding clauses is monotone — a formula that was UNSAT stays
// UNSAT after more clauses.
func TestQuickMonotoneUnsat(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nVars := 3 + rng.Intn(5)
		cls, _ := randomCNF(rng, nVars, 20+rng.Intn(30), 2)
		s := New()
		for i := 0; i < nVars; i++ {
			s.NewVar()
		}
		for _, c := range cls {
			s.AddClause(c...)
		}
		if s.Solve() != Unsat {
			return true // only testing UNSAT persistence
		}
		extra, _ := randomCNF(rng, nVars, 5, 2)
		for _, c := range extra {
			s.AddClause(c...)
		}
		return s.Solve() == Unsat
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(1, int64(i)); got != w {
			t.Fatalf("luby(1,%d) = %d, want %d", i, got, w)
		}
	}
}

func TestLitHelpers(t *testing.T) {
	l := MkLit(3, false)
	if l.Var() != 3 || l.Sign() {
		t.Fatal("positive literal wrong")
	}
	n := l.Neg()
	if n.Var() != 3 || !n.Sign() {
		t.Fatal("negation wrong")
	}
	if n.Neg() != l {
		t.Fatal("double negation")
	}
	if PosLit(2).String() != "3" || NegLit(2).String() != "-3" {
		t.Fatalf("String: %s %s", PosLit(2), NegLit(2))
	}
	if LitUndef.String() != "undef" {
		t.Fatal("undef string")
	}
}

func TestStatusString(t *testing.T) {
	if Sat.String() != "SAT" || Unsat.String() != "UNSAT" || Unknown.String() != "UNKNOWN" {
		t.Fatal("status strings")
	}
}

func TestGraphColoring(t *testing.T) {
	// C5 (odd cycle) is 3-colorable but not 2-colorable.
	color := func(nColors int) Status {
		s := New()
		n := 5
		vars := make([][]Var, n)
		for i := range vars {
			vars[i] = make([]Var, nColors)
			for c := range vars[i] {
				vars[i][c] = s.NewVar()
			}
			lits := make([]Lit, nColors)
			for c := range lits {
				lits[c] = PosLit(vars[i][c])
			}
			s.AddClause(lits...)
		}
		for i := 0; i < n; i++ {
			j := (i + 1) % n
			for c := 0; c < nColors; c++ {
				s.AddClause(NegLit(vars[i][c]), NegLit(vars[j][c]))
			}
		}
		return s.Solve()
	}
	if got := color(2); got != Unsat {
		t.Fatalf("C5 2-coloring: %v", got)
	}
	if got := color(3); got != Sat {
		t.Fatalf("C5 3-coloring: %v", got)
	}
}
