package rect

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/bitmat"
)

// Partition is an ordered family of rectangles intended to partition the 1s
// of a specific matrix. Order matters operationally (it is the AOD pulse
// schedule) but not for validity.
type Partition struct {
	// M is the matrix being partitioned.
	M *bitmat.Matrix
	// Rects are the rectangles, one per addressing shot.
	Rects []Rect
}

// NewPartition returns an empty partition of m.
func NewPartition(m *bitmat.Matrix) *Partition {
	return &Partition{M: m}
}

// Depth returns the number of rectangles (the addressing depth).
func (p *Partition) Depth() int { return len(p.Rects) }

// Add appends a rectangle to the partition.
func (p *Partition) Add(r Rect) { p.Rects = append(p.Rects, r) }

// Clone returns a deep copy of the partition.
func (p *Partition) Clone() *Partition {
	c := &Partition{M: p.M, Rects: make([]Rect, len(p.Rects))}
	for i, r := range p.Rects {
		c.Rects[i] = r.Clone()
	}
	return c
}

// Validation failure modes.
var (
	// ErrNotMonochromatic marks a rectangle covering a 0 of the matrix.
	ErrNotMonochromatic = errors.New("rect: rectangle covers a 0 entry")
	// ErrOverlap marks two rectangles sharing an entry.
	ErrOverlap = errors.New("rect: rectangles overlap")
	// ErrUncovered marks a 1 of the matrix covered by no rectangle.
	ErrUncovered = errors.New("rect: a 1 entry is uncovered")
	// ErrEmptyRect marks a rectangle with an empty row or column set.
	ErrEmptyRect = errors.New("rect: empty rectangle")
	// ErrDimension marks a rectangle whose vectors do not match the matrix.
	ErrDimension = errors.New("rect: rectangle dimension mismatch")
)

// Validate checks that the partition is an exact binary matrix factorization
// of p.M: every rectangle is nonempty, 1-monochromatic, pairwise disjoint
// from the others, and together they cover every 1. It returns nil when
// valid, otherwise an error wrapping one of the Err* sentinels with details.
func (p *Partition) Validate() error {
	m := p.M
	cover := bitmat.New(m.Rows(), m.Cols())
	for idx, r := range p.Rects {
		if r.Rows.Len() != m.Rows() || r.Cols.Len() != m.Cols() {
			return fmt.Errorf("rectangle %d is %d×%d-dimensional for a %d×%d matrix: %w",
				idx, r.Rows.Len(), r.Cols.Len(), m.Rows(), m.Cols(), ErrDimension)
		}
		if r.IsEmpty() {
			return fmt.Errorf("rectangle %d: %w", idx, ErrEmptyRect)
		}
		var fail error
		r.Rows.ForEachOne(func(i int) {
			if fail != nil {
				return
			}
			row := m.Row(i)
			conflict := r.Cols.Clone()
			conflict.AndNot(row)
			if !conflict.IsZero() {
				fail = fmt.Errorf("rectangle %d covers 0 at (%d,%d): %w",
					idx, i, conflict.NextOne(0), ErrNotMonochromatic)
				return
			}
			covRow := cover.Row(i)
			overlap := r.Cols.Clone()
			overlap.And(covRow)
			if !overlap.IsZero() {
				fail = fmt.Errorf("rectangle %d overlaps earlier rectangle at (%d,%d): %w",
					idx, i, overlap.NextOne(0), ErrOverlap)
				return
			}
			covRow.Or(r.Cols)
		})
		if fail != nil {
			return fail
		}
	}
	if !cover.Equal(m) {
		// Locate one uncovered 1 for the error message.
		for i := 0; i < m.Rows(); i++ {
			missing := m.Row(i).Clone()
			missing.AndNot(cover.Row(i))
			if !missing.IsZero() {
				return fmt.Errorf("entry (%d,%d): %w", i, missing.NextOne(0), ErrUncovered)
			}
		}
	}
	return nil
}

// Factors converts the partition into explicit EBMF factors H ∈ B^{m×r} and
// W ∈ B^{r×n} with M = H·W over ℝ: column i of H is the row indicator of
// rectangle i and row i of W its column indicator.
func (p *Partition) Factors() (h, w *bitmat.Matrix) {
	r := len(p.Rects)
	h = bitmat.New(p.M.Rows(), r)
	w = bitmat.New(r, p.M.Cols())
	for k, rec := range p.Rects {
		rec.Rows.ForEachOne(func(i int) { h.Set(i, k, true) })
		w.SetRow(k, rec.Cols)
	}
	return h, w
}

// FromFactors reconstructs a partition from EBMF factors: rectangle k is
// (column k of H) × (row k of W). The result is not validated.
func FromFactors(m, h, w *bitmat.Matrix) *Partition {
	if h.Cols() != w.Rows() {
		panic("rect: factor inner dimension mismatch")
	}
	p := NewPartition(m)
	ht := h.Transpose()
	for k := 0; k < h.Cols(); k++ {
		p.Add(Rect{Rows: ht.Row(k).Clone(), Cols: w.Row(k).Clone()})
	}
	return p
}

// Assignment returns, for every 1 entry of the matrix, the index of the
// rectangle covering it, as a map keyed by [2]int{row, col}. Valid only for
// validated partitions (later rectangles win on overlap).
func (p *Partition) Assignment() map[[2]int]int {
	out := make(map[[2]int]int)
	for k, r := range p.Rects {
		r.Rows.ForEachOne(func(i int) {
			r.Cols.ForEachOne(func(j int) {
				out[[2]int{i, j}] = k
			})
		})
	}
	return out
}

// String renders the partition as one rectangle per line.
func (p *Partition) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "partition of %d×%d matrix, depth %d\n", p.M.Rows(), p.M.Cols(), p.Depth())
	for i, r := range p.Rects {
		fmt.Fprintf(&sb, "  P%d = %s\n", i, r)
	}
	return sb.String()
}

// Canonicalize sorts the rectangles deterministically (useful for comparing
// partitions in tests) and returns the partition.
func (p *Partition) Canonicalize() *Partition {
	SortRects(p.Rects)
	return p
}

// Lift maps a partition of a compressed matrix back to a partition of the
// original matrix using the compression record: each reduced row/column index
// expands to its duplicate group.
func Lift(c *bitmat.Compression, orig *bitmat.Matrix, p *Partition) *Partition {
	out := NewPartition(orig)
	for _, r := range p.Rects {
		nr := NewRect(orig.Rows(), orig.Cols())
		r.Rows.ForEachOne(func(ri int) {
			for _, oi := range c.RowGroups[ri] {
				nr.Rows.Set(oi, true)
			}
		})
		r.Cols.ForEachOne(func(rj int) {
			for _, oj := range c.ColGroups[rj] {
				nr.Cols.Set(oj, true)
			}
		})
		out.Add(nr)
	}
	return out
}

// TensorPartitions combines partitions of Â and B into a partition of Â⊗B by
// taking all pairwise tensor products of rectangles (Section V upper-bound
// construction): depth(out) = depth(a)·depth(b).
func TensorPartitions(a, b *Partition) *Partition {
	tm := bitmat.Tensor(a.M, b.M)
	out := NewPartition(tm)
	br, bc := b.M.Rows(), b.M.Cols()
	for _, ra := range a.Rects {
		for _, rb := range b.Rects {
			nr := NewRect(tm.Rows(), tm.Cols())
			ra.Rows.ForEachOne(func(ai int) {
				rb.Rows.ForEachOne(func(bi int) {
					nr.Rows.Set(ai*br+bi, true)
				})
			})
			ra.Cols.ForEachOne(func(aj int) {
				rb.Cols.ForEachOne(func(bj int) {
					nr.Cols.Set(aj*bc+bj, true)
				})
			})
			out.Add(nr)
		}
	}
	return out
}
