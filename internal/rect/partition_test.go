package rect

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitmat"
)

// fig1b is the 6×6 example matrix from Figure 1b of the paper.
const fig1b = `101100
010011
101010
010101
111000
000111`

// fig1bPartition returns the 5-rectangle partition from Figure 1b / 2a:
// normal set basis {{0,2},{1},{3},{4},{5}} on the column side.
func fig1bPartition(m *bitmat.Matrix) *Partition {
	p := NewPartition(m)
	p.Add(FromIndices(6, 6, []int{0, 2, 4}, []int{0, 2}))
	p.Add(FromIndices(6, 6, []int{1, 3, 4}, []int{1}))
	p.Add(FromIndices(6, 6, []int{0, 3, 5}, []int{3}))
	p.Add(FromIndices(6, 6, []int{1, 2, 5}, []int{4}))
	p.Add(FromIndices(6, 6, []int{1, 3, 5}, []int{5}))
	return p
}

func TestFig1bPartitionValid(t *testing.T) {
	m := bitmat.MustParse(fig1b)
	p := fig1bPartition(m)
	if err := p.Validate(); err != nil {
		t.Fatalf("paper's Figure 1b partition invalid: %v", err)
	}
	if p.Depth() != 5 {
		t.Fatalf("depth = %d, want 5", p.Depth())
	}
}

func TestValidateDetectsNonMonochromatic(t *testing.T) {
	m := bitmat.MustParse("10\n01")
	p := NewPartition(m)
	p.Add(FromIndices(2, 2, []int{0, 1}, []int{0})) // (1,0) is 0
	err := p.Validate()
	if !errors.Is(err, ErrNotMonochromatic) {
		t.Fatalf("got %v, want ErrNotMonochromatic", err)
	}
}

func TestValidateDetectsOverlap(t *testing.T) {
	m := bitmat.MustParse("11\n11")
	p := NewPartition(m)
	p.Add(FromIndices(2, 2, []int{0, 1}, []int{0, 1}))
	p.Add(FromIndices(2, 2, []int{0}, []int{0}))
	err := p.Validate()
	if !errors.Is(err, ErrOverlap) {
		t.Fatalf("got %v, want ErrOverlap", err)
	}
}

func TestValidateDetectsUncovered(t *testing.T) {
	m := bitmat.MustParse("11\n00")
	p := NewPartition(m)
	p.Add(FromIndices(2, 2, []int{0}, []int{0}))
	err := p.Validate()
	if !errors.Is(err, ErrUncovered) {
		t.Fatalf("got %v, want ErrUncovered", err)
	}
}

func TestValidateDetectsEmptyRect(t *testing.T) {
	m := bitmat.MustParse("1")
	p := NewPartition(m)
	p.Add(NewRect(1, 1))
	p.Add(FromIndices(1, 1, []int{0}, []int{0}))
	err := p.Validate()
	if !errors.Is(err, ErrEmptyRect) {
		t.Fatalf("got %v, want ErrEmptyRect", err)
	}
}

func TestValidateDetectsDimensionMismatch(t *testing.T) {
	m := bitmat.MustParse("11")
	p := NewPartition(m)
	p.Add(FromIndices(2, 2, []int{0}, []int{0}))
	err := p.Validate()
	if !errors.Is(err, ErrDimension) {
		t.Fatalf("got %v, want ErrDimension", err)
	}
}

func TestValidateEmptyPartitionOfZeroMatrix(t *testing.T) {
	p := NewPartition(bitmat.New(3, 3))
	if err := p.Validate(); err != nil {
		t.Fatalf("empty partition of zero matrix must be valid: %v", err)
	}
}

func TestFactorsReconstruct(t *testing.T) {
	m := bitmat.MustParse(fig1b)
	p := fig1bPartition(m)
	h, w := p.Factors()
	if h.Rows() != 6 || h.Cols() != 5 || w.Rows() != 5 || w.Cols() != 6 {
		t.Fatalf("factor dims H=%d×%d W=%d×%d", h.Rows(), h.Cols(), w.Rows(), w.Cols())
	}
	// Verify M = H·W over the integers (every product entry 0 or 1 and
	// equal to M).
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			sum := 0
			for k := 0; k < h.Cols(); k++ {
				if h.Get(i, k) && w.Get(k, j) {
					sum++
				}
			}
			want := 0
			if m.Get(i, j) {
				want = 1
			}
			if sum != want {
				t.Fatalf("(H·W)[%d][%d] = %d, want %d", i, j, sum, want)
			}
		}
	}
	// Round trip through FromFactors.
	back := FromFactors(m, h, w)
	if err := back.Validate(); err != nil {
		t.Fatalf("FromFactors partition invalid: %v", err)
	}
	if back.Depth() != p.Depth() {
		t.Fatalf("depth changed: %d vs %d", back.Depth(), p.Depth())
	}
}

func TestAssignmentCoversAllOnes(t *testing.T) {
	m := bitmat.MustParse(fig1b)
	p := fig1bPartition(m)
	asg := p.Assignment()
	if len(asg) != m.Ones() {
		t.Fatalf("assignment size %d, want %d", len(asg), m.Ones())
	}
	for pos, k := range asg {
		if k < 0 || k >= p.Depth() {
			t.Fatalf("entry %v assigned to invalid rectangle %d", pos, k)
		}
		if !p.Rects[k].Contains(pos[0], pos[1]) {
			t.Fatalf("rectangle %d does not contain %v", k, pos)
		}
	}
}

func TestLiftThroughCompression(t *testing.T) {
	// A matrix with duplicate rows and columns; partition the reduction and
	// lift back.
	m := bitmat.MustParse("1100\n1100\n0011")
	c := bitmat.Compress(m)
	// The reduction is 2×2 identity-like; partition with singleton rects.
	p := NewPartition(c.Reduced)
	for i := 0; i < c.Reduced.Rows(); i++ {
		row := c.Reduced.Row(i)
		r := NewRect(c.Reduced.Rows(), c.Reduced.Cols())
		r.Rows.Set(i, true)
		row.ForEachOne(func(j int) { r.Cols.Set(j, true) })
		p.Add(r)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("reduced partition invalid: %v", err)
	}
	lifted := Lift(c, m, p)
	if err := lifted.Validate(); err != nil {
		t.Fatalf("lifted partition invalid: %v", err)
	}
	if lifted.Depth() != p.Depth() {
		t.Fatalf("lift changed depth %d → %d", p.Depth(), lifted.Depth())
	}
}

func TestTensorPartitions(t *testing.T) {
	a := bitmat.MustParse("10\n11")
	b := bitmat.AllOnes(2, 2)
	pa := NewPartition(a)
	pa.Add(FromIndices(2, 2, []int{0, 1}, []int{0}))
	pa.Add(FromIndices(2, 2, []int{1}, []int{1}))
	if err := pa.Validate(); err != nil {
		t.Fatal(err)
	}
	pb := NewPartition(b)
	pb.Add(FromIndices(2, 2, []int{0, 1}, []int{0, 1}))
	if err := pb.Validate(); err != nil {
		t.Fatal(err)
	}
	tp := TensorPartitions(pa, pb)
	if err := tp.Validate(); err != nil {
		t.Fatalf("tensor partition invalid: %v", err)
	}
	if tp.Depth() != pa.Depth()*pb.Depth() {
		t.Fatalf("tensor depth = %d, want %d", tp.Depth(), pa.Depth()*pb.Depth())
	}
}

// Property: the sum of rectangle sizes of a valid partition equals the
// number of 1s (disjointness + exact cover).
func TestQuickPartitionSizesSumToOnes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, p := randomValidPartition(rng, 3+rng.Intn(5), 3+rng.Intn(5))
		if err := p.Validate(); err != nil {
			return false
		}
		total := 0
		for _, r := range p.Rects {
			total += r.Size()
		}
		return total == m.Ones()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Factors round-trips depth and validity.
func TestQuickFactorsRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, p := randomValidPartition(rng, 2+rng.Intn(6), 2+rng.Intn(6))
		h, w := p.Factors()
		back := FromFactors(m, h, w)
		return back.Validate() == nil && back.Depth() == p.Depth()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
