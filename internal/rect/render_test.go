package rect

import (
	"strings"
	"testing"

	"repro/internal/bitmat"
)

func TestRenderMarkersAndDots(t *testing.T) {
	m := bitmat.MustParse("110\n110\n001")
	p := NewPartition(m)
	p.Add(FromIndices(3, 3, []int{0, 1}, []int{0, 1}))
	p.Add(FromIndices(3, 3, []int{2}, []int{2}))
	got := p.Render()
	want := "AA·\nAA·\n··B"
	if got != want {
		t.Fatalf("render:\n%s\nwant:\n%s", got, want)
	}
}

func TestRenderUncoveredShowsQuestionMark(t *testing.T) {
	m := bitmat.MustParse("11")
	p := NewPartition(m)
	p.Add(FromIndices(1, 2, []int{0}, []int{0}))
	if got := p.Render(); got != "A?" {
		t.Fatalf("got %q", got)
	}
}

func TestRenderManyRectanglesFallsBackToHash(t *testing.T) {
	n := len(markerAlphabet) + 2
	m := bitmat.Identity(n)
	p := NewPartition(m)
	for i := 0; i < n; i++ {
		p.Add(FromIndices(n, n, []int{i}, []int{i}))
	}
	out := p.Render()
	if !strings.Contains(out, "#") {
		t.Fatal("expected '#' fallback markers")
	}
}
