package rect

import (
	"math/rand"
	"testing"

	"repro/internal/bitmat"
)

func TestRectBasics(t *testing.T) {
	r := FromIndices(4, 5, []int{0, 2}, []int{1, 3, 4})
	if r.Size() != 6 {
		t.Fatalf("size = %d, want 6", r.Size())
	}
	if !r.Contains(2, 3) || r.Contains(1, 3) || r.Contains(0, 0) {
		t.Fatal("Contains wrong")
	}
	if r.IsEmpty() {
		t.Fatal("nonempty rect reported empty")
	}
	if !NewRect(3, 3).IsEmpty() {
		t.Fatal("empty rect not reported empty")
	}
}

func TestRectOverlaps(t *testing.T) {
	a := FromIndices(4, 4, []int{0, 1}, []int{0, 1})
	b := FromIndices(4, 4, []int{1, 2}, []int{1, 2})
	c := FromIndices(4, 4, []int{2, 3}, []int{0, 1})
	if !a.Overlaps(b) {
		t.Error("a and b share (1,1)")
	}
	if a.Overlaps(c) {
		t.Error("a and c are disjoint (no shared row)")
	}
	// Shared rows but disjoint columns do not overlap.
	d := FromIndices(4, 4, []int{0, 1}, []int{2, 3})
	if a.Overlaps(d) {
		t.Error("a and d are disjoint (no shared column)")
	}
}

func TestRectCoveredOnly1s(t *testing.T) {
	m := bitmat.MustParse("110\n111\n011")
	good := FromIndices(3, 3, []int{0, 1}, []int{0, 1})
	if !good.CoveredOnly1s(m) {
		t.Error("good rect rejected")
	}
	bad := FromIndices(3, 3, []int{0, 2}, []int{0}) // (2,0) is 0
	if bad.CoveredOnly1s(m) {
		t.Error("bad rect accepted")
	}
}

func TestRectToMatrix(t *testing.T) {
	r := FromIndices(3, 3, []int{0, 2}, []int{1})
	m := r.ToMatrix()
	want := bitmat.MustParse("010\n000\n010")
	if !m.Equal(want) {
		t.Fatalf("got\n%s\nwant\n%s", m, want)
	}
	if m.Rank() != 1 {
		t.Fatalf("rectangle matrix must have rank 1, got %d", m.Rank())
	}
}

func TestRectString(t *testing.T) {
	r := FromIndices(4, 4, []int{1, 3}, []int{0})
	if got := r.String(); got != "{1,3}×{0}" {
		t.Fatalf("String = %q", got)
	}
}

func TestSortRectsDeterministic(t *testing.T) {
	a := FromIndices(3, 3, []int{2}, []int{0})
	b := FromIndices(3, 3, []int{0}, []int{2})
	c := FromIndices(3, 3, []int{0}, []int{0})
	rs := []Rect{a, b, c}
	SortRects(rs)
	if rs[0].Canonical() != c.Canonical() || rs[1].Canonical() != b.Canonical() || rs[2].Canonical() != a.Canonical() {
		t.Fatalf("sort order wrong: %v", rs)
	}
}

func TestRectCloneIndependent(t *testing.T) {
	r := FromIndices(3, 3, []int{0}, []int{0})
	c := r.Clone()
	c.Rows.Set(1, true)
	if r.Rows.Get(1) {
		t.Fatal("clone shares storage")
	}
}

func randomValidPartition(rng *rand.Rand, m, n int) (*bitmat.Matrix, *Partition) {
	// Build a matrix from random disjoint rectangles, so the partition is
	// valid by construction.
	mat := bitmat.New(m, n)
	p := NewPartition(mat)
	used := bitmat.New(m, n)
	for k := 0; k < 1+rng.Intn(4); k++ {
		rows := randSubset(rng, m)
		cols := randSubset(rng, n)
		r := FromIndices(m, n, rows, cols)
		// Reject rectangles overlapping previous ones.
		ok := true
		for _, i := range rows {
			for _, j := range cols {
				if used.Get(i, j) {
					ok = false
				}
			}
		}
		if !ok || r.IsEmpty() {
			continue
		}
		for _, i := range rows {
			for _, j := range cols {
				used.Set(i, j, true)
				mat.Set(i, j, true)
			}
		}
		p.Add(r)
	}
	return mat, p
}

func randSubset(rng *rand.Rand, n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		if rng.Intn(3) == 0 {
			out = append(out, i)
		}
	}
	if len(out) == 0 {
		out = append(out, rng.Intn(n))
	}
	return out
}

func TestRandomValidPartitionsValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		_, p := randomValidPartition(rng, 3+rng.Intn(6), 3+rng.Intn(6))
		if err := p.Validate(); err != nil {
			t.Fatalf("trial %d: valid-by-construction partition rejected: %v", trial, err)
		}
	}
}
