// Package rect defines combinatorial rectangles and rectangle partitions of
// binary matrices — the objects an exact binary matrix factorization (EBMF)
// produces. A rectangle is a set X'×Y' of rows and columns; a partition is a
// family of rectangles whose union covers every 1 of the matrix exactly once
// and touches no 0 (the "depth" of the rectangular addressing schedule is the
// partition size).
package rect

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bitmat"
)

// Rect is a combinatorial rectangle: the product of a set of rows and a set
// of columns. Both sets are stored as bit vectors over the dimensions of the
// matrix being partitioned.
type Rect struct {
	// Rows has bit i set if row i belongs to the rectangle.
	Rows bitmat.Vec
	// Cols has bit j set if column j belongs to the rectangle.
	Cols bitmat.Vec
}

// NewRect returns an empty rectangle for an m×n matrix.
func NewRect(m, n int) Rect {
	return Rect{Rows: bitmat.NewVec(m), Cols: bitmat.NewVec(n)}
}

// FromIndices builds a rectangle from explicit row and column index lists
// for an m×n matrix.
func FromIndices(m, n int, rows, cols []int) Rect {
	r := NewRect(m, n)
	for _, i := range rows {
		r.Rows.Set(i, true)
	}
	for _, j := range cols {
		r.Cols.Set(j, true)
	}
	return r
}

// Clone returns an independent copy of the rectangle.
func (r Rect) Clone() Rect {
	return Rect{Rows: r.Rows.Clone(), Cols: r.Cols.Clone()}
}

// Size returns the number of matrix entries the rectangle covers
// (|rows|·|cols|).
func (r Rect) Size() int { return r.Rows.Ones() * r.Cols.Ones() }

// IsEmpty reports whether the rectangle covers no entries.
func (r Rect) IsEmpty() bool { return r.Rows.IsZero() || r.Cols.IsZero() }

// Contains reports whether entry (i, j) lies in the rectangle.
func (r Rect) Contains(i, j int) bool { return r.Rows.Get(i) && r.Cols.Get(j) }

// Overlaps reports whether two rectangles share at least one entry.
func (r Rect) Overlaps(o Rect) bool {
	return r.Rows.Intersects(o.Rows) && r.Cols.Intersects(o.Cols)
}

// CoveredOnly1s reports whether every entry of the rectangle is a 1 of m,
// i.e. the rectangle is 1-monochromatic.
func (r Rect) CoveredOnly1s(m *bitmat.Matrix) bool {
	ok := true
	r.Rows.ForEachOne(func(i int) {
		if !ok {
			return
		}
		if !r.Cols.SubsetOf(m.Row(i)) {
			ok = false
		}
	})
	return ok
}

// ToMatrix renders the rectangle as an m×n 0/1 matrix (the rank-1 term P_i of
// the factorization).
func (r Rect) ToMatrix() *bitmat.Matrix {
	m := bitmat.New(r.Rows.Len(), r.Cols.Len())
	r.Rows.ForEachOne(func(i int) {
		r.Cols.ForEachOne(func(j int) {
			m.Set(i, j, true)
		})
	})
	return m
}

// RowIndices returns the sorted row indices of the rectangle.
func (r Rect) RowIndices() []int { return r.Rows.OnesPositions() }

// ColIndices returns the sorted column indices of the rectangle.
func (r Rect) ColIndices() []int { return r.Cols.OnesPositions() }

// String renders the rectangle as "{rows}×{cols}".
func (r Rect) String() string {
	return fmt.Sprintf("{%s}×{%s}", joinInts(r.RowIndices()), joinInts(r.ColIndices()))
}

func joinInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprint(x)
	}
	return strings.Join(parts, ",")
}

// Canonical returns a canonical string key for the rectangle (for dedup and
// deterministic ordering in tests).
func (r Rect) Canonical() string {
	return r.Rows.Key() + "|" + r.Cols.Key()
}

// SortRects orders rectangles deterministically: by first row, then first
// column, then canonical key. It sorts in place and returns its argument.
func SortRects(rs []Rect) []Rect {
	sort.Slice(rs, func(a, b int) bool {
		ra, rb := rs[a], rs[b]
		fa, fb := ra.Rows.NextOne(0), rb.Rows.NextOne(0)
		if fa != fb {
			return fa < fb
		}
		ca, cb := ra.Cols.NextOne(0), rb.Cols.NextOne(0)
		if ca != cb {
			return ca < cb
		}
		return ra.Canonical() < rb.Canonical()
	})
	return rs
}
