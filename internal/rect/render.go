package rect

import "strings"

// markerAlphabet assigns one printable marker per rectangle, echoing the
// distinct markers of Figure 1b in the paper.
const markerAlphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"

// Render draws the partition as a character grid: each 1 of the matrix shows
// the marker of its rectangle, 0s show '·'. Rectangles beyond the marker
// alphabet all render as '#'. Invalid (overlapping) partitions render the
// marker of the last rectangle covering a cell.
func (p *Partition) Render() string {
	m := p.M
	grid := make([][]rune, m.Rows())
	for i := range grid {
		grid[i] = make([]rune, m.Cols())
		for j := range grid[i] {
			if m.Get(i, j) {
				grid[i][j] = '?' // a 1 not covered by any rectangle
			} else {
				grid[i][j] = '·'
			}
		}
	}
	for k, r := range p.Rects {
		marker := '#'
		if k < len(markerAlphabet) {
			marker = rune(markerAlphabet[k])
		}
		r.Rows.ForEachOne(func(i int) {
			r.Cols.ForEachOne(func(j int) {
				grid[i][j] = marker
			})
		})
	}
	var sb strings.Builder
	for i, row := range grid {
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(string(row))
	}
	return sb.String()
}
