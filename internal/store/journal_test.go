package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// submitRec builds a valid submit record for job i.
func submitRec(i int, callback string) *JobRecord {
	return &JobRecord{
		Kind:     JobSubmit,
		ID:       fmt.Sprintf("j-%04x", i),
		Tenant:   "default",
		Matrix:   "10\n01",
		Options:  json.RawMessage(`{"timeout_ms":1000}`),
		Callback: callback,
	}
}

// terminalRec builds the matching terminal record.
func terminalRec(i int, callback string) *JobRecord {
	return &JobRecord{
		Kind:     JobTerminal,
		ID:       fmt.Sprintf("j-%04x", i),
		State:    "done",
		Callback: callback,
		Job:      json.RawMessage(fmt.Sprintf(`{"id":"j-%04x","state":"done"}`, i)),
	}
}

func mustOpenJournal(t *testing.T, dir string, opts Options) *Journal {
	t.Helper()
	j, err := OpenJournal(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

func mustAppend(t *testing.T, j *Journal, recs ...*JobRecord) {
	t.Helper()
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
}

func pendingIDs(r JournalReplay) []string {
	ids := make([]string, 0, len(r.Pending))
	for _, rec := range r.Pending {
		ids = append(ids, rec.ID)
	}
	return ids
}

func TestJournalLifecycle(t *testing.T) {
	dir := t.TempDir()
	j := mustOpenJournal(t, dir, Options{Sync: SyncNever})

	mustAppend(t, j, submitRec(0, "http://hook.internal/cb"))
	if r := j.Replay(); len(r.Pending) != 1 || r.Pending[0].ID != "j-0000" {
		t.Fatalf("after submit: %+v", r)
	}

	mustAppend(t, j, terminalRec(0, "http://hook.internal/cb"))
	r := j.Replay()
	if len(r.Pending) != 0 {
		t.Fatalf("terminal job still pending: %+v", r)
	}
	if len(r.Undelivered) != 1 || r.Undelivered[0].Callback != "http://hook.internal/cb" {
		t.Fatalf("terminal with callback not undelivered: %+v", r)
	}

	mustAppend(t, j, &JobRecord{Kind: JobWebhook, ID: "j-0000"})
	if r := j.Replay(); len(r.Pending) != 0 || len(r.Undelivered) != 0 {
		t.Fatalf("acked job still outstanding: %+v", r)
	}
}

// TestJournalCrashBetweenSubmitAndTerminal is the tentpole's core recovery
// property: a replay re-admits exactly the unfinished set, in submit order.
func TestJournalCrashBetweenSubmitAndTerminal(t *testing.T) {
	dir := t.TempDir()
	j := mustOpenJournal(t, dir, Options{Sync: SyncNever})
	// Jobs 0..4 submitted; 1 and 3 finished (no callback). Crash.
	for i := 0; i < 5; i++ {
		mustAppend(t, j, submitRec(i, ""))
	}
	mustAppend(t, j, terminalRec(1, ""), terminalRec(3, ""))
	// Abandon without Close: kill -9 leaves exactly these bytes.

	j2 := mustOpenJournal(t, dir, Options{})
	r := j2.Replay()
	got := pendingIDs(r)
	want := []string{"j-0000", "j-0002", "j-0004"}
	if len(got) != len(want) {
		t.Fatalf("pending after crash = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pending after crash = %v, want %v", got, want)
		}
	}
	if len(r.Undelivered) != 0 {
		t.Fatalf("callback-free terminals reported undelivered: %+v", r)
	}
	// The submit record must carry everything needed to re-admit.
	p := r.Pending[0]
	if p.Matrix == "" || p.Tenant != "default" || len(p.Options) == 0 {
		t.Fatalf("replayed submit lost fields: %+v", p)
	}
}

func TestJournalUndeliveredWebhookSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	j := mustOpenJournal(t, dir, Options{Sync: SyncNever})
	mustAppend(t, j, submitRec(0, "http://hook.internal/cb"))
	// Terminal journaled without its own callback copy: Replay must lift it
	// from the submit record so delivery can resume from either shape.
	mustAppend(t, j, terminalRec(0, ""))

	j2 := mustOpenJournal(t, dir, Options{})
	r := j2.Replay()
	if len(r.Undelivered) != 1 {
		t.Fatalf("undelivered after restart: %+v", r)
	}
	u := r.Undelivered[0]
	if u.Callback != "http://hook.internal/cb" || len(u.Job) == 0 {
		t.Fatalf("undelivered record incomplete: %+v", u)
	}

	// Ack, restart again: nothing outstanding and the file compacts empty.
	mustAppend(t, j2, &JobRecord{Kind: JobWebhook, ID: "j-0000"})
	j2.Close()
	j3 := mustOpenJournal(t, dir, Options{})
	if r := j3.Replay(); len(r.Pending) != 0 || len(r.Undelivered) != 0 {
		t.Fatalf("settled job resurfaced: %+v", r)
	}
	if st := j3.Stats(); st.Bytes != 0 {
		t.Fatalf("settled journal not compacted empty: %+v", st)
	}
}

// journalCorrupt flips bytes in the journal file at the given offset.
func journalCorrupt(t *testing.T, dir string, off int64, b []byte) {
	t.Helper()
	f, err := os.OpenFile(filepath.Join(dir, journalName), os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteAt(b, off); err != nil {
		t.Fatal(err)
	}
}

func journalSize(t *testing.T, dir string) int64 {
	t.Helper()
	fi, err := os.Stat(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

func TestJournalByteFlipSkipsOnlyDamagedRecord(t *testing.T) {
	dir := t.TempDir()
	j := mustOpenJournal(t, dir, Options{Sync: SyncNever})
	var ends []int64
	for i := 0; i < 3; i++ {
		mustAppend(t, j, submitRec(i, ""))
		j.Flush()
		ends = append(ends, journalSize(t, dir))
	}
	j.Close()

	// Flip one payload byte inside the middle record.
	journalCorrupt(t, dir, ends[0]+frameHeader+4, []byte{0xFF})

	j2 := mustOpenJournal(t, dir, Options{})
	st := j2.Stats()
	if st.SkippedCorrupt != 1 {
		t.Fatalf("skipped = %d, want 1: %+v", st.SkippedCorrupt, st)
	}
	got := pendingIDs(j2.Replay())
	if len(got) != 2 || got[0] != "j-0000" || got[1] != "j-0002" {
		t.Fatalf("pending after byte flip = %v, want [j-0000 j-0002]", got)
	}
	// New appends after recovery must still be readable.
	mustAppend(t, j2, submitRec(7, ""))
	j2.Close()
	j3 := mustOpenJournal(t, dir, Options{})
	if got := pendingIDs(j3.Replay()); len(got) != 3 {
		t.Fatalf("pending after heal = %v, want 3 jobs", got)
	}
}

func TestJournalTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	j := mustOpenJournal(t, dir, Options{Sync: SyncNever})
	mustAppend(t, j, submitRec(0, ""), submitRec(1, ""))
	j.Close()

	// Simulate a crash mid-append: chop the last record in half.
	full := journalSize(t, dir)
	f, err := os.OpenFile(filepath.Join(dir, journalName), os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(full - (full / 4)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2 := mustOpenJournal(t, dir, Options{})
	if st := j2.Stats(); st.TruncatedBytes == 0 {
		t.Fatalf("torn tail not reported: %+v", st)
	}
	if got := pendingIDs(j2.Replay()); len(got) != 1 || got[0] != "j-0000" {
		t.Fatalf("pending after torn tail = %v, want [j-0000]", got)
	}
	// The tail was truncated away; appends land cleanly on the new end.
	mustAppend(t, j2, submitRec(9, ""))
	j2.Close()
	j3 := mustOpenJournal(t, dir, Options{})
	if st := j3.Stats(); st.SkippedCorrupt != 0 || st.TruncatedBytes != 0 {
		t.Fatalf("healed journal reports damage: %+v", st)
	}
	if got := pendingIDs(j3.Replay()); len(got) != 2 {
		t.Fatalf("pending after heal = %v, want 2 jobs", got)
	}
}

func TestJournalCompactionDropsSettledJobs(t *testing.T) {
	dir := t.TempDir()
	j := mustOpenJournal(t, dir, Options{Sync: SyncNever})
	for i := 0; i < 20; i++ {
		mustAppend(t, j, submitRec(i, ""))
		if i%2 == 0 {
			mustAppend(t, j, terminalRec(i, ""))
		}
	}
	before := j.Stats().Bytes
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	st := j.Stats()
	if st.Bytes >= before {
		t.Fatalf("compaction did not shrink: %d -> %d", before, st.Bytes)
	}
	if st.Pending != 10 || st.Undelivered != 0 {
		t.Fatalf("outstanding set changed by compaction: %+v", st)
	}
	// Appends after the rotation land in the new file and survive reopen.
	mustAppend(t, j, submitRec(100, ""))
	j.Close()
	j2 := mustOpenJournal(t, dir, Options{})
	if got := pendingIDs(j2.Replay()); len(got) != 11 {
		t.Fatalf("pending after compaction+reopen = %v, want 11 jobs", got)
	}
}

func TestJournalAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	j := mustOpenJournal(t, dir, Options{Sync: SyncNever, CompactAfterBytes: 512})
	for i := 0; i < 50; i++ {
		mustAppend(t, j, submitRec(i, ""), terminalRec(i, ""))
	}
	st := j.Stats()
	if st.Compactions == 0 {
		t.Fatalf("threshold never triggered compaction: %+v", st)
	}
	if st.Bytes > 512+256 {
		t.Fatalf("journal grew without bound: %+v", st)
	}
}

func TestJournalRejectsInvalidRecords(t *testing.T) {
	j := mustOpenJournal(t, t.TempDir(), Options{Sync: SyncNever})
	bad := []*JobRecord{
		{},                             // no ID
		{Kind: "bogus", ID: "j-1"},     // unknown kind
		{Kind: JobSubmit, ID: "j-1"},   // submit without matrix
		{Kind: JobTerminal, ID: "j-1"}, // terminal without state
	}
	for i, rec := range bad {
		if err := j.Append(rec); err == nil {
			t.Errorf("bad record %d accepted", i)
		}
	}
	if st := j.Stats(); st.Appends != 0 {
		t.Fatalf("invalid records were appended: %+v", st)
	}
}

func TestJournalClosedRejectsOperations(t *testing.T) {
	j := mustOpenJournal(t, t.TempDir(), Options{Sync: SyncNever})
	j.Close()
	if err := j.Append(submitRec(0, "")); err != ErrJournalClose {
		t.Fatalf("Append after Close: %v", err)
	}
	if err := j.Compact(); err != ErrJournalClose {
		t.Fatalf("Compact after Close: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}
