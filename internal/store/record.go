package store

import (
	"errors"
	"fmt"
)

// RectRecord is one canonical-space rectangle as explicit index lists —
// the same exchange form as solvecache.RectIndices / wire.RectJSON, kept
// dependency-free here so the store stays a pure persistence layer.
type RectRecord struct {
	Rows []int `json:"r"`
	Cols []int `json:"c"`
}

// Record is one durable proved-optimal canonical result. It is pure data:
// the partition indexes the canonical matrix (Rows×Cols), which the reader
// reconstructs from the rectangles themselves — a partition exactly covers
// the canonical matrix's 1s, so the matrix needs no separate serialization.
//
// Records are immutable facts. An optimal depth is the binary rank of the
// matrix — a property of the matrix alone, independent of any budget or
// option set — so a record written once is correct forever and the store
// never needs an invalidation path.
type Record struct {
	// Hash is the canonical fingerprint (bitmat.Fingerprint.Hash).
	Hash string `json:"hash"`
	// Rows, Cols are the canonical matrix dimensions.
	Rows int `json:"rows"`
	Cols int `json:"cols"`
	// Depth is the proved-optimal depth (= len(Rects)).
	Depth int `json:"depth"`
	// Certificate is the core.Certificate ordinal that proved optimality.
	Certificate int `json:"certificate,omitempty"`
	// RankLB, FoolingLB, Blocks, HeuristicDepth preserve the original
	// solve's provenance so a durable hit reports the same metadata as an
	// LRU hit.
	RankLB         int `json:"rank_lb,omitempty"`
	FoolingLB      int `json:"fooling_lb,omitempty"`
	Blocks         int `json:"blocks,omitempty"`
	HeuristicDepth int `json:"heuristic_depth,omitempty"`
	// Rects is the canonical-space partition.
	Rects []RectRecord `json:"rects"`
}

// Record validation failure modes.
var (
	errNoHash        = errors.New("store: record has no fingerprint hash")
	errBadDims       = errors.New("store: record has non-positive dimensions")
	errDepthMismatch = errors.New("store: record depth != rectangle count")
	errEmptyRect     = errors.New("store: record has an empty rectangle")
	errIndexRange    = errors.New("store: record rectangle index out of range")
)

// maxDim bounds the claimed canonical dimensions so a corrupt length field
// that happens to checksum correctly cannot make a reader allocate gigabytes.
const maxDim = 1 << 20

// Validate checks the record's internal consistency: positive in-bounds
// dimensions, depth matching the rectangle count, and every rectangle
// nonempty with indices inside the canonical matrix. Semantic validity
// (does the partition actually factor the matrix?) is re-checked by the
// cache at hit time via lifting — a record that passes Validate but lies
// about its matrix degrades to a cache miss, never to a wrong answer.
func (r *Record) Validate() error {
	if r.Hash == "" {
		return errNoHash
	}
	if r.Rows <= 0 || r.Cols <= 0 || r.Rows > maxDim || r.Cols > maxDim {
		return fmt.Errorf("%w: %dx%d", errBadDims, r.Rows, r.Cols)
	}
	if r.Depth != len(r.Rects) {
		return fmt.Errorf("%w: depth %d, %d rects", errDepthMismatch, r.Depth, len(r.Rects))
	}
	for i, rect := range r.Rects {
		if len(rect.Rows) == 0 || len(rect.Cols) == 0 {
			return fmt.Errorf("rect %d: %w", i, errEmptyRect)
		}
		for _, v := range rect.Rows {
			if v < 0 || v >= r.Rows {
				return fmt.Errorf("rect %d row %d: %w", i, v, errIndexRange)
			}
		}
		for _, v := range rect.Cols {
			if v < 0 || v >= r.Cols {
				return fmt.Errorf("rect %d col %d: %w", i, v, errIndexRange)
			}
		}
	}
	return nil
}
