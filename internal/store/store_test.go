package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// testRecord builds a small valid record with a distinguishable hash.
func testRecord(i int) *Record {
	return &Record{
		Hash:  fmt.Sprintf("%064x", i+1),
		Rows:  2,
		Cols:  2,
		Depth: 2,
		Rects: []RectRecord{
			{Rows: []int{0}, Cols: []int{0, 1}},
			{Rows: []int{1}, Cols: []int{0}},
		},
	}
}

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func mustPut(t *testing.T, s *Store, recs ...*Record) {
	t.Helper()
	for _, r := range recs {
		if err := s.Put(r); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAppendReopenReplay(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Sync: SyncNever})
	for i := 0; i < 10; i++ {
		mustPut(t, s, testRecord(i))
	}
	// Abandon without Close: a kill -9 leaves exactly this state (appends
	// are written through to the fd; only fsync is skipped, and the page
	// cache survives the process).
	s2 := mustOpen(t, dir, Options{})
	if s2.Len() != 10 {
		t.Fatalf("recovered %d records, want 10", s2.Len())
	}
	st := s2.Stats()
	if st.LoadedWAL != 10 || st.LoadedSnapshot != 0 {
		t.Fatalf("loaded snapshot=%d wal=%d, want 0/10", st.LoadedSnapshot, st.LoadedWAL)
	}
	if st.SkippedCorrupt != 0 || st.TruncatedBytes != 0 {
		t.Fatalf("clean log reported damage: %+v", st)
	}
	for i := 0; i < 10; i++ {
		want := testRecord(i)
		got, ok := s2.Get(want.Hash)
		if !ok || got.Depth != want.Depth || len(got.Rects) != 2 {
			t.Fatalf("record %d: got %+v ok=%v", i, got, ok)
		}
	}
}

func TestDuplicatePutIsNoOp(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Sync: SyncNever})
	mustPut(t, s, testRecord(0), testRecord(0), testRecord(0))
	if st := s.Stats(); st.Appends != 1 {
		t.Fatalf("appends = %d, want 1", st.Appends)
	}
}

func TestPutRejectsInvalidRecords(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{Sync: SyncNever})
	bad := []*Record{
		{},                                      // no hash
		{Hash: "a", Rows: 0, Cols: 2},           // bad dims
		{Hash: "a", Rows: 2, Cols: 2, Depth: 1}, // depth != rects
		{Hash: "a", Rows: 2, Cols: 2, Depth: 1,
			Rects: []RectRecord{{Rows: []int{5}, Cols: []int{0}}}}, // out of range
		{Hash: "a", Rows: 2, Cols: 2, Depth: 1,
			Rects: []RectRecord{{Rows: nil, Cols: []int{0}}}}, // empty rect
	}
	for i, rec := range bad {
		if err := s.Put(rec); err == nil {
			t.Errorf("bad record %d accepted", i)
		}
	}
	if s.Len() != 0 {
		t.Fatalf("invalid records entered the index")
	}
}

// corrupt flips bytes in the WAL at the given offset.
func corrupt(t *testing.T, dir string, off int64, b []byte) {
	t.Helper()
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteAt(b, off); err != nil {
		t.Fatal(err)
	}
}

func walSize(t *testing.T, dir string) int64 {
	t.Helper()
	fi, err := os.Stat(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

func TestCorruptMiddleRecordSkipped(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Sync: SyncNever})
	frameLens := make([]int64, 3)
	for i := 0; i < 3; i++ {
		before := s.Stats().WALBytes
		mustPut(t, s, testRecord(i))
		frameLens[i] = s.Stats().WALBytes - before
	}
	s.Close()

	// Flip a payload byte inside the middle record: its CRC fails, the
	// parser resyncs to record 2's magic, and records 0 and 2 survive.
	corrupt(t, dir, frameLens[0]+frameHeader+4, []byte{0xFF})

	s2 := mustOpen(t, dir, Options{})
	if s2.Len() != 2 {
		t.Fatalf("recovered %d records, want 2", s2.Len())
	}
	if _, ok := s2.Get(testRecord(1).Hash); ok {
		t.Fatal("corrupt record served")
	}
	for _, i := range []int{0, 2} {
		if _, ok := s2.Get(testRecord(i).Hash); !ok {
			t.Fatalf("record %d lost to a neighbour's corruption", i)
		}
	}
	if st := s2.Stats(); st.SkippedCorrupt < 1 {
		t.Fatalf("skipped_corrupt = %d, want >= 1", st.SkippedCorrupt)
	}
}

func TestCorruptLengthFieldSkipped(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Sync: SyncNever})
	var firstLen int64
	for i := 0; i < 3; i++ {
		mustPut(t, s, testRecord(i))
		if i == 0 {
			firstLen = s.Stats().WALBytes
		}
	}
	s.Close()

	// Clobber record 1's length field with an absurd value.
	var lenBytes [4]byte
	binary.LittleEndian.PutUint32(lenBytes[:], 0x7FFFFFFF)
	corrupt(t, dir, firstLen+4, lenBytes[:])

	s2 := mustOpen(t, dir, Options{})
	if s2.Len() != 2 {
		t.Fatalf("recovered %d records, want 2", s2.Len())
	}
	for _, i := range []int{0, 2} {
		if _, ok := s2.Get(testRecord(i).Hash); !ok {
			t.Fatalf("record %d lost", i)
		}
	}
}

func TestTruncatedTailRecovered(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Sync: SyncNever})
	for i := 0; i < 3; i++ {
		mustPut(t, s, testRecord(i))
	}
	s.Close()

	// Chop the file mid-frame: the classic torn append.
	size := walSize(t, dir)
	if err := os.Truncate(filepath.Join(dir, walName), size-7); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{Sync: SyncNever})
	if s2.Len() != 2 {
		t.Fatalf("recovered %d records, want 2", s2.Len())
	}
	if st := s2.Stats(); st.TruncatedBytes == 0 {
		t.Fatal("torn tail not reported")
	}
	// The tail must have been physically truncated so new appends land on a
	// frame boundary; a third reopen must see old records plus the new one.
	mustPut(t, s2, testRecord(3))
	s2.Close()
	s3 := mustOpen(t, dir, Options{})
	if s3.Len() != 3 {
		t.Fatalf("after post-recovery append: %d records, want 3", s3.Len())
	}
	if st := s3.Stats(); st.SkippedCorrupt != 0 || st.TruncatedBytes != 0 {
		t.Fatalf("recovered log still reports damage: %+v", st)
	}
}

func TestGarbageTailRecovered(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Sync: SyncNever})
	mustPut(t, s, testRecord(0))
	s.Close()

	// Append a partial header of garbage (a torn append that wrote junk).
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02, 0x03})
	f.Close()

	s2 := mustOpen(t, dir, Options{Sync: SyncNever})
	if s2.Len() != 1 {
		t.Fatalf("recovered %d records, want 1", s2.Len())
	}
	mustPut(t, s2, testRecord(1))
	s2.Close()
	s3 := mustOpen(t, dir, Options{})
	if s3.Len() != 2 {
		t.Fatalf("append after garbage tail: %d records, want 2", s3.Len())
	}
}

func TestWholeFileGarbage(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, walName), bytes.Repeat([]byte{0x5A}, 4096), 0o644); err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, dir, Options{Sync: SyncNever})
	if s.Len() != 0 {
		t.Fatalf("garbage produced %d records", s.Len())
	}
	mustPut(t, s, testRecord(0))
	s.Close()
	s2 := mustOpen(t, dir, Options{})
	if s2.Len() != 1 {
		t.Fatalf("append after garbage file: %d records, want 1", s2.Len())
	}
}

func TestCompactionRotatesSnapshotAtomically(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Sync: SyncNever})
	for i := 0; i < 20; i++ {
		mustPut(t, s, testRecord(i))
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Compactions != 1 || st.WALBytes != 0 || st.SnapshotBytes == 0 {
		t.Fatalf("post-compaction stats: %+v", st)
	}
	if _, err := os.Stat(filepath.Join(dir, snapTempName)); !os.IsNotExist(err) {
		t.Fatal("snapshot temp file left behind")
	}
	// Appends continue into the truncated WAL.
	mustPut(t, s, testRecord(20))
	s.Close()

	s2 := mustOpen(t, dir, Options{})
	if s2.Len() != 21 {
		t.Fatalf("recovered %d records, want 21", s2.Len())
	}
	st = s2.Stats()
	if st.LoadedSnapshot != 20 || st.LoadedWAL != 1 {
		t.Fatalf("loaded snapshot=%d wal=%d, want 20/1", st.LoadedSnapshot, st.LoadedWAL)
	}
}

func TestAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Sync: SyncNever, CompactAfterBytes: 256})
	for i := 0; i < 10; i++ {
		mustPut(t, s, testRecord(i))
	}
	if st := s.Stats(); st.Compactions == 0 {
		t.Fatal("WAL grew past CompactAfterBytes without compaction")
	}
	s.Close()
	s2 := mustOpen(t, dir, Options{})
	if s2.Len() != 10 {
		t.Fatalf("recovered %d records, want 10", s2.Len())
	}
}

func TestCrashBetweenRotateAndTruncateDeduplicates(t *testing.T) {
	// Simulate the one non-atomic window in compaction: the snapshot was
	// renamed into place but the crash landed before the WAL truncate. The
	// WAL then replays records the snapshot already holds.
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Sync: SyncNever})
	for i := 0; i < 5; i++ {
		mustPut(t, s, testRecord(i))
	}
	s.Close()
	wal, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	// Snapshot := current WAL contents; WAL left as-is (stale duplicates).
	if err := os.WriteFile(filepath.Join(dir, snapshotName), wal, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, Options{})
	if s2.Len() != 5 {
		t.Fatalf("deduplicated load got %d records, want 5", s2.Len())
	}
	st := s2.Stats()
	if st.SkippedCorrupt != 0 {
		t.Fatalf("duplicates counted as corruption: %+v", st)
	}
}

func TestDeleteSurvivesCompaction(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Sync: SyncNever})
	mustPut(t, s, testRecord(0), testRecord(1))
	s.Delete(testRecord(0).Hash)
	if _, ok := s.Get(testRecord(0).Hash); ok {
		t.Fatal("deleted record still served")
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := mustOpen(t, dir, Options{})
	if _, ok := s2.Get(testRecord(0).Hash); ok {
		t.Fatal("deleted record resurrected after compaction")
	}
	if s2.Len() != 1 {
		t.Fatalf("recovered %d records, want 1", s2.Len())
	}
}

func TestSyncPolicies(t *testing.T) {
	t.Run("always", func(t *testing.T) {
		s := mustOpen(t, t.TempDir(), Options{Sync: SyncAlways})
		mustPut(t, s, testRecord(0), testRecord(1))
		if st := s.Stats(); st.Flushes != 2 || st.LastFlushNS <= 0 {
			t.Fatalf("SyncAlways stats: %+v", st)
		}
	})
	t.Run("interval", func(t *testing.T) {
		s := mustOpen(t, t.TempDir(), Options{Sync: SyncInterval, SyncEvery: 5 * time.Millisecond})
		mustPut(t, s, testRecord(0))
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if s.Stats().Flushes > 0 {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatal("interval flusher never synced")
	})
	t.Run("never", func(t *testing.T) {
		s := mustOpen(t, t.TempDir(), Options{Sync: SyncNever})
		mustPut(t, s, testRecord(0))
		if st := s.Stats(); st.Flushes != 0 {
			t.Fatalf("SyncNever flushed: %+v", st)
		}
		// Close always performs the final flush.
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if st := s.Stats(); st.Flushes != 1 {
			t.Fatalf("Close did not flush: %+v", st)
		}
	})
}

func TestClosedStoreRejectsOperations(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{Sync: SyncNever})
	s.Close()
	if err := s.Put(testRecord(0)); err != ErrClosed {
		t.Fatalf("Put after Close: %v, want ErrClosed", err)
	}
	if err := s.Flush(); err != ErrClosed {
		t.Fatalf("Flush after Close: %v, want ErrClosed", err)
	}
	if err := s.Compact(); err != ErrClosed {
		t.Fatalf("Compact after Close: %v, want ErrClosed", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{Sync: SyncInterval, SyncEvery: time.Millisecond, CompactAfterBytes: 512})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				rec := testRecord(g*50 + i)
				if err := s.Put(rec); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				if _, ok := s.Get(rec.Hash); !ok {
					t.Errorf("own record invisible")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 400 {
		t.Fatalf("index has %d records, want 400", s.Len())
	}
}

func FuzzParseLog(f *testing.F) {
	// Seeds: a valid two-record log, a corrupted one, raw garbage.
	rec0, _ := encodeRecord(testRecord(0))
	rec1, _ := encodeRecord(testRecord(1))
	valid := append(append([]byte{}, rec0...), rec1...)
	f.Add(valid)
	damaged := append([]byte{}, valid...)
	damaged[frameHeader+3] ^= 0xFF
	f.Add(damaged)
	f.Add([]byte("not a log at all"))
	f.Fuzz(func(t *testing.T, data []byte) {
		res := parseLog(data, 1<<20)
		// Whatever comes back must be fully valid and within bounds.
		for _, rec := range res.records {
			if err := rec.Validate(); err != nil {
				t.Fatalf("parseLog returned invalid record: %v", err)
			}
		}
		if res.validEnd > int64(len(data)) || res.validEnd < 0 {
			t.Fatalf("validEnd %d out of range for %d bytes", res.validEnd, len(data))
		}
	})
}
