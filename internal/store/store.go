// Package store is the durable tier beneath the solve caches: an
// append-only, checksummed write-ahead log plus a periodically compacted
// snapshot of proved-optimal canonical results, keyed by canonical
// fingerprint.
//
// The workload is ideal for an append-only design: results are
// proved-optimal and budget-independent (an optimal depth is the binary
// rank, a property of the matrix alone), so records never invalidate and
// the only mutations are appends and compaction. The full index lives in
// memory — records are a few hundred bytes of rectangle indices — so reads
// are O(1) map lookups and the disk is written, never read, outside of
// Open.
//
// Crash safety:
//
//   - Every append is written through to the file descriptor immediately
//     (no userspace buffering), so a kill -9 loses nothing: the page cache
//     survives the process. fsync — which defends against machine crashes
//     and power loss — is governed by the configurable SyncPolicy.
//   - Each record is framed with a magic marker, length, and CRC-32C.
//     Recovery tolerates a torn/truncated tail (truncated back to the last
//     whole frame) and skips corrupt records by scanning to the next
//     marker, so one flipped bit costs one record, not the corpus.
//   - Snapshot rotation is atomic: write to a temp file, fsync, rename over
//     the old snapshot, fsync the directory, then truncate the WAL. A crash
//     between rename and truncate merely replays WAL records that are
//     already in the snapshot — deduplicated harmlessly on load.
package store

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// File is the subset of *os.File the store writes through. It exists so
// tests can inject disk faults (short writes, write errors, failed syncs)
// without touching a real filesystem's failure modes.
type File interface {
	io.Writer
	io.Closer
	Sync() error
	Truncate(size int64) error
}

// SyncPolicy says when appended records are fsynced to stable storage.
type SyncPolicy int

const (
	// SyncInterval fsyncs dirty data every Options.SyncEvery from a
	// background flusher (default 100ms): bounded data loss on power
	// failure, negligible append latency. The default.
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs inside every Append: zero loss on power failure at
	// the cost of one fsync per fresh result (fresh solves are rare and
	// expensive; the fsync is noise next to the SAT time).
	SyncAlways
	// SyncNever leaves syncing to the OS (and Close/Compact, which always
	// sync). kill -9 still loses nothing; only machine crashes can.
	SyncNever
)

// Log file names inside the store directory.
const (
	walName      = "wal.log"
	snapshotName = "snapshot.log"
	snapTempName = "snapshot.tmp"
)

// Options tunes a Store. The zero value means "all defaults".
type Options struct {
	// Sync is the fsync policy (default SyncInterval).
	Sync SyncPolicy
	// SyncEvery is the background flush period under SyncInterval
	// (default 100ms).
	SyncEvery time.Duration
	// CompactAfterBytes triggers a snapshot compaction when the WAL grows
	// past this size (default 8 MiB; negative disables auto-compaction).
	CompactAfterBytes int64
	// MaxRecordBytes bounds one record's encoded size, both appended and
	// recovered (default 16 MiB).
	MaxRecordBytes int
	// OpenFile opens the log files for writing (default os.OpenFile).
	// Fault-injection hook: tests wrap it to fail writes and syncs.
	OpenFile func(path string, flag int, perm fs.FileMode) (File, error)
	// ReadFile reads a log file on Open (default os.ReadFile). Missing
	// files must report fs.ErrNotExist.
	ReadFile func(path string) ([]byte, error)
	// Logger receives recovery and compaction reports (default: discard).
	Logger *log.Logger
}

func (o Options) withDefaults() Options {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 100 * time.Millisecond
	}
	if o.CompactAfterBytes == 0 {
		o.CompactAfterBytes = 8 << 20
	}
	if o.MaxRecordBytes <= 0 {
		o.MaxRecordBytes = 16 << 20
	}
	if o.OpenFile == nil {
		o.OpenFile = func(path string, flag int, perm fs.FileMode) (File, error) {
			return os.OpenFile(path, flag, perm)
		}
	}
	if o.ReadFile == nil {
		o.ReadFile = os.ReadFile
	}
	if o.Logger == nil {
		o.Logger = log.New(io.Discard, "", 0)
	}
	return o
}

// Stats is a snapshot of the store's counters.
type Stats struct {
	// Records is the current in-memory index size.
	Records int `json:"records"`
	// LoadedSnapshot and LoadedWAL count records replayed on Open from the
	// snapshot and the WAL respectively (WAL records are the ones a crash
	// would have cost without the log).
	LoadedSnapshot int64 `json:"loaded_snapshot"`
	LoadedWAL      int64 `json:"loaded_wal"`
	// SkippedCorrupt counts records dropped during recovery for CRC,
	// framing, decode or validation failures.
	SkippedCorrupt int64 `json:"skipped_corrupt"`
	// TruncatedBytes counts torn-tail and resync-scan bytes discarded
	// during recovery.
	TruncatedBytes int64 `json:"truncated_bytes"`
	// Appends counts records durably appended; AppendErrors counts appends
	// that failed at the disk layer (the record stays in memory).
	Appends      int64 `json:"appends"`
	AppendErrors int64 `json:"append_errors"`
	// WALBytes is the current WAL length; SnapshotBytes the snapshot's.
	WALBytes      int64 `json:"wal_bytes"`
	SnapshotBytes int64 `json:"snapshot_bytes"`
	// Flushes counts fsyncs; FlushNS their cumulative latency and
	// LastFlushNS the most recent one's.
	Flushes     int64 `json:"flushes"`
	FlushNS     int64 `json:"flush_ns"`
	LastFlushNS int64 `json:"last_flush_ns"`
	// Compactions counts snapshot rotations.
	Compactions int64 `json:"compactions"`
	// Deletes counts collision-insurance drops (entries that failed
	// re-validation at hit time; expected to stay 0).
	Deletes int64 `json:"deletes"`
}

// Store is a durable map of canonical fingerprint → proved-optimal result.
// Safe for concurrent use. Create with Open; always Close (it performs the
// final flush).
type Store struct {
	dir  string
	opts Options

	mu       sync.Mutex
	index    map[string]*Record
	order    []string // insertion order, for deterministic compaction
	wal      File     // nil after Close or an unrecoverable reopen failure
	walBytes int64
	dirty    bool // bytes written since the last fsync
	closed   bool
	stats    Stats

	flusherStop chan struct{}
	flusherDone chan struct{}
}

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")

// Open loads the snapshot and WAL from dir (creating it if needed),
// recovers what is recoverable, truncates any torn WAL tail, and returns a
// store ready for appends.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	s := &Store{
		dir:   dir,
		opts:  opts,
		index: make(map[string]*Record),
	}

	// Replay snapshot first, then WAL: WAL records are newer (a crash
	// between snapshot rotation and WAL truncation replays duplicates;
	// last-write-wins keeps that harmless).
	snapRes, snapLen, err := s.loadFile(filepath.Join(dir, snapshotName))
	if err != nil {
		return nil, err
	}
	for _, rec := range snapRes.records {
		s.insert(rec)
	}
	s.stats.LoadedSnapshot = int64(len(snapRes.records))
	s.stats.SnapshotBytes = snapLen

	walRes, _, err := s.loadFile(filepath.Join(dir, walName))
	if err != nil {
		return nil, err
	}
	for _, rec := range walRes.records {
		s.insert(rec)
	}
	s.stats.LoadedWAL = int64(len(walRes.records))
	s.stats.SkippedCorrupt = snapRes.skippedRecords + walRes.skippedRecords
	s.stats.TruncatedBytes = snapRes.skippedBytes + snapRes.tornBytes +
		walRes.skippedBytes + walRes.tornBytes

	// Open the WAL for appending, truncated back to the last whole frame so
	// new appends never land after garbage.
	wal, err := opts.OpenFile(filepath.Join(dir, walName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open wal: %w", err)
	}
	if err := wal.Truncate(walRes.validEnd); err != nil {
		wal.Close()
		return nil, fmt.Errorf("store: truncate torn wal tail: %w", err)
	}
	if _, err := seekEnd(wal); err != nil {
		wal.Close()
		return nil, fmt.Errorf("store: seek wal: %w", err)
	}
	s.wal = wal
	s.walBytes = walRes.validEnd

	if s.stats.SkippedCorrupt > 0 || s.stats.TruncatedBytes > 0 {
		opts.Logger.Printf("store: recovered %d records (%d snapshot, %d wal), skipped %d corrupt, discarded %d bytes",
			len(s.index), s.stats.LoadedSnapshot, s.stats.LoadedWAL,
			s.stats.SkippedCorrupt, s.stats.TruncatedBytes)
	}

	if opts.Sync == SyncInterval {
		s.flusherStop = make(chan struct{})
		s.flusherDone = make(chan struct{})
		go s.flusher()
	}
	return s, nil
}

// seekEnd positions an appendable File at its end when it supports seeking
// (fault-injection Files may not; they are expected to open at the end).
func seekEnd(f File) (int64, error) {
	if sk, ok := f.(io.Seeker); ok {
		return sk.Seek(0, io.SeekEnd)
	}
	return 0, nil
}

// loadFile reads and parses one log file; a missing file is an empty log.
func (s *Store) loadFile(path string) (parseResult, int64, error) {
	data, err := s.opts.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return parseResult{}, 0, nil
	}
	if err != nil {
		return parseResult{}, 0, fmt.Errorf("store: read %s: %w", filepath.Base(path), err)
	}
	return parseLog(data, s.opts.MaxRecordBytes), int64(len(data)), nil
}

// insert puts a record into the in-memory index (last write wins).
func (s *Store) insert(rec *Record) {
	if _, ok := s.index[rec.Hash]; !ok {
		s.order = append(s.order, rec.Hash)
	}
	s.index[rec.Hash] = rec
}

// Get returns the record for a canonical fingerprint. The returned record
// is shared and must be treated as read-only.
func (s *Store) Get(hash string) (*Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.index[hash]
	return rec, ok
}

// Len returns the number of durable records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Records = len(s.index)
	st.WALBytes = s.walBytes
	return st
}

// Put appends one record durably. A record that fails Validate is an
// error; a duplicate hash is a no-op (results never change, so the first
// record is as good as the last). Disk failures are counted and reported
// but leave the record queryable in memory — the current process keeps its
// warm cache; only restart durability is degraded.
func (s *Store) Put(rec *Record) error {
	if err := rec.Validate(); err != nil {
		return err
	}
	frame, err := encodeRecord(rec)
	if err != nil {
		return fmt.Errorf("store: encode: %w", err)
	}
	if len(frame) > s.opts.MaxRecordBytes {
		return fmt.Errorf("store: record %s exceeds MaxRecordBytes", rec.Hash)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, ok := s.index[rec.Hash]; ok {
		return nil
	}
	s.insert(rec)
	if s.wal == nil {
		s.stats.AppendErrors++
		return errors.New("store: wal unavailable")
	}
	n, err := s.wal.Write(frame)
	if err != nil || n != len(frame) {
		// A partial frame may be on disk; recovery's torn-tail handling
		// absorbs it. Try to cut it off now so the file stays clean.
		s.stats.AppendErrors++
		if terr := s.wal.Truncate(s.walBytes); terr == nil {
			if _, serr := seekEnd(s.wal); serr != nil {
				s.wal = nil
			}
		} else {
			s.wal = nil // can't trust the offset anymore; stop appending
		}
		if err == nil {
			err = io.ErrShortWrite
		}
		s.opts.Logger.Printf("store: append %s failed: %v", rec.Hash, err)
		return fmt.Errorf("store: append: %w", err)
	}
	s.walBytes += int64(n)
	s.dirty = true
	s.stats.Appends++
	if s.opts.Sync == SyncAlways {
		if err := s.syncLocked(); err != nil {
			return fmt.Errorf("store: fsync: %w", err)
		}
	}
	if s.opts.CompactAfterBytes > 0 && s.walBytes > s.opts.CompactAfterBytes {
		if err := s.compactLocked(); err != nil {
			s.opts.Logger.Printf("store: auto-compaction failed: %v", err)
		}
	}
	return nil
}

// Delete drops a record from the in-memory index (collision insurance: a
// cache hit that failed re-validation). The WAL is append-only, so the
// record physically disappears at the next compaction; until then a reload
// would resurrect it — and its next hit would fail validation and be
// deleted again, so correctness never depends on the physical removal.
func (s *Store) Delete(hash string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[hash]; !ok {
		return
	}
	delete(s.index, hash)
	for i, h := range s.order {
		if h == hash {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.stats.Deletes++
}

// Flush fsyncs any unsynced appends.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.syncLocked()
}

// syncLocked fsyncs the WAL if dirty. Caller holds s.mu.
func (s *Store) syncLocked() error {
	if !s.dirty || s.wal == nil {
		return nil
	}
	t0 := time.Now()
	err := s.wal.Sync()
	d := time.Since(t0).Nanoseconds()
	s.stats.Flushes++
	s.stats.FlushNS += d
	s.stats.LastFlushNS = d
	if err != nil {
		s.opts.Logger.Printf("store: fsync failed: %v", err)
		return err
	}
	s.dirty = false
	return nil
}

// flusher is the SyncInterval background loop.
func (s *Store) flusher() {
	defer close(s.flusherDone)
	t := time.NewTicker(s.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-s.flusherStop:
			return
		case <-t.C:
			s.mu.Lock()
			if !s.closed {
				s.syncLocked()
			}
			s.mu.Unlock()
		}
	}
}

// Compact rewrites the full index as a fresh snapshot and truncates the
// WAL. Rotation is atomic (temp + fsync + rename + dir fsync), so a crash
// at any point leaves either the old snapshot plus the full WAL or the new
// snapshot plus a possibly-stale WAL — both replay to the same index.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	tmpPath := filepath.Join(s.dir, snapTempName)
	tmp, err := s.opts.OpenFile(tmpPath, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: open snapshot temp: %w", err)
	}
	var snapBytes int64
	for _, hash := range s.order {
		frame, err := encodeRecord(s.index[hash])
		if err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return fmt.Errorf("store: encode %s: %w", hash, err)
		}
		n, err := tmp.Write(frame)
		if err != nil || n != len(frame) {
			tmp.Close()
			os.Remove(tmpPath)
			if err == nil {
				err = io.ErrShortWrite
			}
			return fmt.Errorf("store: write snapshot: %w", err)
		}
		snapBytes += int64(n)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("store: sync snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("store: close snapshot: %w", err)
	}
	if err := os.Rename(tmpPath, filepath.Join(s.dir, snapshotName)); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("store: rotate snapshot: %w", err)
	}
	syncDir(s.dir)

	// The snapshot now holds everything; restart the WAL. If truncation
	// fails the WAL merely replays records the snapshot already has.
	if s.wal != nil {
		if err := s.wal.Truncate(0); err == nil {
			if _, err := seekEnd(s.wal); err != nil {
				s.wal = nil
			} else {
				s.walBytes = 0
				s.dirty = false
			}
		}
	}
	s.stats.Compactions++
	s.stats.SnapshotBytes = snapBytes
	s.opts.Logger.Printf("store: compacted %d records into %d-byte snapshot", len(s.index), snapBytes)
	return nil
}

// syncDir fsyncs a directory so a completed rename survives power loss.
// Best-effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// Close flushes and closes the store. Further operations return ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.syncLocked()
	if s.wal != nil {
		if cerr := s.wal.Close(); err == nil {
			err = cerr
		}
		s.wal = nil
	}
	s.mu.Unlock()
	if s.flusherStop != nil {
		close(s.flusherStop)
		<-s.flusherDone
	}
	return err
}
