package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// The job journal: the async job surface's crash log, built on the same
// checksummed WAL framing as the result store. Where the result store holds
// facts (proved-optimal results, immutable forever), the journal holds
// intentions: "this submission was accepted and must reach a terminal
// state", "this terminal snapshot must be delivered to its callback URL".
//
// Per job the journal sees at most three records, appended in order:
//
//	submit    at admission, before the 202 goes out — the matrix, options
//	          and callback needed to re-admit the job after a crash
//	terminal  at completion — the final JobJSON snapshot
//	webhook   after the callback delivery succeeded (only for jobs with one)
//
// Recovery groups records by job ID: a submit with no terminal is an
// unfinished job (re-admitted by the server under the same ID), a terminal
// with an unacked callback is an undelivered webhook (delivery resumes),
// and anything fully settled is garbage the next compaction drops. The
// journal deliberately stores the client's solve payload, not the result —
// results a finished job already proved live in the result store, so a
// replayed job that was solved before the crash completes as a cache hit,
// never a re-solve.

// Journal record kinds.
const (
	JobSubmit   = "submit"
	JobTerminal = "terminal"
	JobWebhook  = "webhook"
)

// JobRecord is one journal entry. Which fields are meaningful depends on
// Kind; the payloads the server owns (options, snapshots) are carried as raw
// JSON so the store stays dependency-free.
type JobRecord struct {
	// Kind is JobSubmit, JobTerminal or JobWebhook.
	Kind string `json:"kind"`
	// ID is the job ID all three record kinds share.
	ID string `json:"id"`

	// Submit fields: everything needed to re-admit the job after a restart.
	Tenant             string          `json:"tenant,omitempty"`
	Matrix             string          `json:"matrix,omitempty"`
	Options            json.RawMessage `json:"options,omitempty"`
	Callback           string          `json:"callback,omitempty"`
	Degrade            bool            `json:"degrade,omitempty"`
	CancelOnDisconnect bool            `json:"cancel_on_disconnect,omitempty"`

	// Terminal fields: the final state and the full JobJSON snapshot (the
	// webhook delivery payload).
	State string          `json:"state,omitempty"`
	Job   json.RawMessage `json:"job,omitempty"`
}

// Journal record validation failure modes.
var (
	errNoJobID      = errors.New("store: journal record has no job ID")
	errBadKind      = errors.New("store: journal record has an unknown kind")
	errNoMatrix     = errors.New("store: submit record has no matrix")
	errNoState      = errors.New("store: terminal record has no state")
	ErrJournalClose = errors.New("store: journal closed")
)

// Validate checks a journal record's internal consistency. Like the result
// store's Record.Validate, it gates both appends and recovery: a corrupt
// frame that happens to checksum correctly still cannot smuggle in a record
// the replay logic would trip over.
func (r *JobRecord) Validate() error {
	if r.ID == "" {
		return errNoJobID
	}
	switch r.Kind {
	case JobSubmit:
		if r.Matrix == "" {
			return errNoMatrix
		}
	case JobTerminal:
		if r.State == "" {
			return errNoState
		}
	case JobWebhook:
		// The ID is the whole payload.
	default:
		return fmt.Errorf("%w: %q", errBadKind, r.Kind)
	}
	return nil
}

// journalEntry is one job's accumulated journal state.
type journalEntry struct {
	submit    *JobRecord
	terminal  *JobRecord
	delivered bool // a webhook record acked the callback
}

// settled reports whether nothing about this job needs to survive a
// compaction: it reached a terminal state and either never had a callback
// or had it delivered.
func (e *journalEntry) settled() bool {
	if e.terminal == nil {
		return false
	}
	callback := e.terminal.Callback
	if e.submit != nil && e.submit.Callback != "" {
		callback = e.submit.Callback
	}
	return callback == "" || e.delivered
}

// JournalStats is a snapshot of the journal's counters.
type JournalStats struct {
	// Pending is the number of journaled jobs with no terminal record;
	// Undelivered the number of terminal jobs whose webhook is unacked.
	Pending     int `json:"pending"`
	Undelivered int `json:"undelivered"`
	// Loaded counts records replayed on open; SkippedCorrupt and
	// TruncatedBytes mirror the result store's recovery counters.
	Loaded         int64 `json:"loaded"`
	SkippedCorrupt int64 `json:"skipped_corrupt"`
	TruncatedBytes int64 `json:"truncated_bytes"`
	// Appends counts records durably appended; AppendErrors disk-layer
	// failures (the record's effect stays in memory for this process).
	Appends      int64 `json:"appends"`
	AppendErrors int64 `json:"append_errors"`
	// Bytes is the journal file's current length; Compactions counts
	// rewrites.
	Bytes       int64 `json:"bytes"`
	Compactions int64 `json:"compactions"`
}

// JournalReplay is what a restarted server learns from the journal.
type JournalReplay struct {
	// Pending are submit records with no terminal record, in journal order:
	// jobs the crash interrupted, to be re-admitted under the same ID.
	Pending []*JobRecord
	// Undelivered are terminal records whose callback was never acked, in
	// journal order: webhook deliveries to resume. Each carries the full
	// terminal snapshot in Job and the callback URL in Callback (copied from
	// the submit record when the terminal record lacks it).
	Undelivered []*JobRecord
}

// journalName is the journal file inside its directory.
const journalName = "jobs.log"

// Journal is the durable job log. Safe for concurrent use. Create with
// OpenJournal; always Close (it performs the final flush).
type Journal struct {
	dir  string
	opts Options

	mu      sync.Mutex
	entries map[string]*journalEntry
	order   []string // first-seen job order, for deterministic compaction
	f       File     // nil after Close or an unrecoverable write failure
	bytes   int64
	dirty   bool
	closed  bool
	stats   JournalStats

	flusherStop chan struct{}
	flusherDone chan struct{}
}

// OpenJournal loads the job journal from dir (creating it if needed),
// recovers what is recoverable, compacts away settled jobs, and returns a
// journal ready for appends. Read the recovered work with Replay before
// appending new records.
func OpenJournal(dir string, opts Options) (*Journal, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create journal dir: %w", err)
	}
	j := &Journal{
		dir:     dir,
		opts:    opts,
		entries: make(map[string]*journalEntry),
	}

	path := filepath.Join(dir, journalName)
	data, err := opts.ReadFile(path)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("store: read journal: %w", err)
	}
	scan := scanFrames(data, opts.MaxRecordBytes, func(payload []byte) bool {
		rec := new(JobRecord)
		if err := json.Unmarshal(payload, rec); err != nil || rec.Validate() != nil {
			return false
		}
		j.applyLocked(rec)
		j.stats.Loaded++
		return true
	})
	j.stats.SkippedCorrupt = scan.skippedRecords
	j.stats.TruncatedBytes = scan.skippedBytes + scan.tornBytes

	f, err := opts.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open journal: %w", err)
	}
	if err := f.Truncate(scan.validEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: truncate torn journal tail: %w", err)
	}
	if _, err := seekEnd(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: seek journal: %w", err)
	}
	j.f = f
	j.bytes = scan.validEnd

	if j.stats.SkippedCorrupt > 0 || j.stats.TruncatedBytes > 0 {
		opts.Logger.Printf("journal: recovered %d records, skipped %d corrupt, discarded %d bytes",
			j.stats.Loaded, j.stats.SkippedCorrupt, j.stats.TruncatedBytes)
	}
	// Boot-time compaction drops settled jobs so the journal stays
	// proportional to outstanding work, not lifetime traffic.
	if len(data) > 0 {
		if err := j.compactLocked(); err != nil {
			opts.Logger.Printf("journal: boot compaction failed: %v", err)
		}
	}

	if opts.Sync == SyncInterval {
		j.flusherStop = make(chan struct{})
		j.flusherDone = make(chan struct{})
		go j.flusher()
	}
	return j, nil
}

// applyLocked folds one record into the entry map. Last write wins per
// field; a terminal record for a job with no submit still creates an entry
// (its webhook may need delivering even though the submit frame was lost).
func (j *Journal) applyLocked(rec *JobRecord) {
	e, ok := j.entries[rec.ID]
	if !ok {
		e = &journalEntry{}
		j.entries[rec.ID] = e
		j.order = append(j.order, rec.ID)
	}
	switch rec.Kind {
	case JobSubmit:
		e.submit = rec
	case JobTerminal:
		e.terminal = rec
	case JobWebhook:
		e.delivered = true
	}
}

// Replay reports the outstanding work recovered from disk: unfinished jobs
// to re-admit and undelivered webhooks to resume.
func (j *Journal) Replay() JournalReplay {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out JournalReplay
	for _, id := range j.order {
		e := j.entries[id]
		switch {
		case e.terminal == nil && e.submit != nil:
			out.Pending = append(out.Pending, e.submit)
		case e.terminal != nil && !e.settled():
			term := *e.terminal
			if term.Callback == "" && e.submit != nil {
				term.Callback = e.submit.Callback
			}
			out.Undelivered = append(out.Undelivered, &term)
		}
	}
	return out
}

// Append writes one record durably and folds it into the in-memory state.
// Disk failures are counted and reported but leave the record applied in
// memory — the running process keeps working; only restart durability is
// degraded (matching the result store's contract).
func (j *Journal) Append(rec *JobRecord) error {
	if err := rec.Validate(); err != nil {
		return err
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encode journal record: %w", err)
	}
	frame := appendFrame(nil, payload)
	if len(frame) > j.opts.MaxRecordBytes {
		return fmt.Errorf("store: journal record %s exceeds MaxRecordBytes", rec.ID)
	}

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrJournalClose
	}
	j.applyLocked(rec)
	if j.f == nil {
		j.stats.AppendErrors++
		return errors.New("store: journal unavailable")
	}
	n, err := j.f.Write(frame)
	if err != nil || n != len(frame) {
		j.stats.AppendErrors++
		if terr := j.f.Truncate(j.bytes); terr == nil {
			if _, serr := seekEnd(j.f); serr != nil {
				j.f = nil
			}
		} else {
			j.f = nil
		}
		if err == nil {
			err = io.ErrShortWrite
		}
		j.opts.Logger.Printf("journal: append %s/%s failed: %v", rec.Kind, rec.ID, err)
		return fmt.Errorf("store: journal append: %w", err)
	}
	j.bytes += int64(n)
	j.dirty = true
	j.stats.Appends++
	if j.opts.Sync == SyncAlways {
		if err := j.syncLocked(); err != nil {
			return fmt.Errorf("store: journal fsync: %w", err)
		}
	}
	if j.opts.CompactAfterBytes > 0 && j.bytes > j.opts.CompactAfterBytes {
		if err := j.compactLocked(); err != nil {
			j.opts.Logger.Printf("journal: auto-compaction failed: %v", err)
		}
	}
	return nil
}

// Compact rewrites the journal keeping only unsettled jobs: the submit
// record of every unfinished job, plus submit+terminal of every job with an
// undelivered webhook. Rotation is atomic (temp + fsync + rename + dir
// fsync), so a crash at any point leaves a journal that replays to the same
// outstanding set.
func (j *Journal) Compact() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrJournalClose
	}
	return j.compactLocked()
}

func (j *Journal) compactLocked() error {
	tmpPath := filepath.Join(j.dir, journalName+".tmp")
	tmp, err := j.opts.OpenFile(tmpPath, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: open journal temp: %w", err)
	}
	var keptIDs []string
	kept := make(map[string]*journalEntry, len(j.entries))
	var bytes int64
	write := func(rec *JobRecord) error {
		payload, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		frame := appendFrame(nil, payload)
		n, err := tmp.Write(frame)
		if err != nil || n != len(frame) {
			if err == nil {
				err = io.ErrShortWrite
			}
			return err
		}
		bytes += int64(n)
		return nil
	}
	for _, id := range j.order {
		e := j.entries[id]
		if e.settled() || (e.submit == nil && e.terminal == nil) {
			continue
		}
		if e.submit != nil {
			if err := write(e.submit); err != nil {
				tmp.Close()
				os.Remove(tmpPath)
				return fmt.Errorf("store: write journal: %w", err)
			}
		}
		if e.terminal != nil {
			if err := write(e.terminal); err != nil {
				tmp.Close()
				os.Remove(tmpPath)
				return fmt.Errorf("store: write journal: %w", err)
			}
		}
		keptIDs = append(keptIDs, id)
		kept[id] = e
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("store: sync journal temp: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("store: close journal temp: %w", err)
	}
	if err := os.Rename(tmpPath, filepath.Join(j.dir, journalName)); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("store: rotate journal: %w", err)
	}
	syncDir(j.dir)

	// The rename replaced the inode the old handle pointed at: reopen so
	// future appends land in the new file.
	if j.f != nil {
		j.f.Close()
	}
	f, err := j.opts.OpenFile(filepath.Join(j.dir, journalName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		j.f = nil
		return fmt.Errorf("store: reopen journal: %w", err)
	}
	if _, err := seekEnd(f); err != nil {
		f.Close()
		j.f = nil
		return fmt.Errorf("store: seek journal: %w", err)
	}
	j.f = f
	j.bytes = bytes
	j.dirty = false
	j.order = keptIDs
	j.entries = kept
	j.stats.Compactions++
	return nil
}

// Flush fsyncs any unsynced appends.
func (j *Journal) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrJournalClose
	}
	return j.syncLocked()
}

func (j *Journal) syncLocked() error {
	if !j.dirty || j.f == nil {
		return nil
	}
	if err := j.f.Sync(); err != nil {
		j.opts.Logger.Printf("journal: fsync failed: %v", err)
		return err
	}
	j.dirty = false
	return nil
}

// flusher is the SyncInterval background loop.
func (j *Journal) flusher() {
	defer close(j.flusherDone)
	t := time.NewTicker(j.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-j.flusherStop:
			return
		case <-t.C:
			j.mu.Lock()
			if !j.closed {
				j.syncLocked()
			}
			j.mu.Unlock()
		}
	}
}

// Stats returns a snapshot of the journal's counters.
func (j *Journal) Stats() JournalStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := j.stats
	st.Bytes = j.bytes
	for _, e := range j.entries {
		switch {
		case e.terminal == nil && e.submit != nil:
			st.Pending++
		case e.terminal != nil && !e.settled():
			st.Undelivered++
		}
	}
	return st
}

// Close flushes and closes the journal. Further operations return
// ErrJournalClose.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	err := j.syncLocked()
	if j.f != nil {
		if cerr := j.f.Close(); err == nil {
			err = cerr
		}
		j.f = nil
	}
	j.mu.Unlock()
	if j.flusherStop != nil {
		close(j.flusherStop)
		<-j.flusherDone
	}
	return err
}
