package store

// Disk fault injection: the OpenFile/ReadFile hooks let tests fail writes,
// syncs and reads deterministically, without needing a faulty filesystem.
// The invariant under every injected fault: the store never serves a wrong
// record, never loses already-durable records, and keeps the current
// process's results queryable in memory even when the disk is gone.

import (
	"errors"
	"io/fs"
	"os"
	"strings"
	"sync"
	"testing"
)

var errInjected = errors.New("injected disk fault")

// faultFile wraps a real file and fails operations on command.
type faultFile struct {
	f *os.File

	mu         sync.Mutex
	failWrites bool
	failSyncs  bool
	shortWrite bool // write half the bytes, then error: a torn append
}

func (f *faultFile) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.shortWrite {
		n, _ := f.f.Write(p[:len(p)/2])
		return n, errInjected
	}
	if f.failWrites {
		return 0, errInjected
	}
	return f.f.Write(p)
}

func (f *faultFile) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failSyncs {
		return errInjected
	}
	return f.f.Sync()
}

func (f *faultFile) Truncate(size int64) error { return f.f.Truncate(size) }
func (f *faultFile) Close() error              { return f.f.Close() }
func (f *faultFile) Seek(offset int64, whence int) (int64, error) {
	return f.f.Seek(offset, whence)
}

// faultyStore opens a store whose WAL file is a faultFile; the returned
// handle arms the faults.
func faultyStore(t *testing.T, dir string, opts Options) (*Store, *faultFile) {
	t.Helper()
	var ff *faultFile
	opts.OpenFile = func(path string, flag int, perm fs.FileMode) (File, error) {
		f, err := os.OpenFile(path, flag, perm)
		if err != nil {
			return nil, err
		}
		wrapped := &faultFile{f: f}
		if strings.HasSuffix(path, walName) {
			ff = wrapped
		}
		return wrapped, nil
	}
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	if ff == nil {
		t.Fatal("WAL file never opened through the hook")
	}
	return s, ff
}

func TestWriteErrorKeepsRecordInMemory(t *testing.T) {
	dir := t.TempDir()
	s, ff := faultyStore(t, dir, Options{Sync: SyncNever})
	mustPut(t, s, testRecord(0))

	ff.mu.Lock()
	ff.failWrites = true
	ff.mu.Unlock()

	rec := testRecord(1)
	if err := s.Put(rec); !errors.Is(err, errInjected) {
		t.Fatalf("Put with failing disk: %v, want injected fault", err)
	}
	// The record is lost to durability but not to this process.
	if _, ok := s.Get(rec.Hash); !ok {
		t.Fatal("record vanished from memory after disk failure")
	}
	if st := s.Stats(); st.AppendErrors != 1 || st.Appends != 1 {
		t.Fatalf("stats after write fault: %+v", st)
	}

	// Disk heals: later appends work and a reopen sees everything durable.
	ff.mu.Lock()
	ff.failWrites = false
	ff.mu.Unlock()
	mustPut(t, s, testRecord(2))
	s.Close()

	s2 := mustOpen(t, dir, Options{})
	if _, ok := s2.Get(testRecord(0).Hash); !ok {
		t.Fatal("pre-fault record lost")
	}
	if _, ok := s2.Get(testRecord(2).Hash); !ok {
		t.Fatal("post-fault record lost")
	}
	if st := s2.Stats(); st.SkippedCorrupt != 0 || st.TruncatedBytes != 0 {
		t.Fatalf("healed log reports damage: %+v", st)
	}
}

func TestShortWriteTornFrameRecovered(t *testing.T) {
	dir := t.TempDir()
	s, ff := faultyStore(t, dir, Options{Sync: SyncNever})
	mustPut(t, s, testRecord(0))

	ff.mu.Lock()
	ff.shortWrite = true
	ff.mu.Unlock()
	if err := s.Put(testRecord(1)); !errors.Is(err, errInjected) {
		t.Fatalf("short write not reported: %v", err)
	}
	ff.mu.Lock()
	ff.shortWrite = false
	ff.mu.Unlock()

	// The torn half-frame was truncated away; the next append must land
	// cleanly and both durable records must survive a reopen.
	mustPut(t, s, testRecord(2))
	s.Close()

	s2 := mustOpen(t, dir, Options{})
	if s2.Len() != 2 {
		t.Fatalf("recovered %d records, want 2", s2.Len())
	}
	for _, i := range []int{0, 2} {
		if _, ok := s2.Get(testRecord(i).Hash); !ok {
			t.Fatalf("record %d lost to torn frame", i)
		}
	}
}

func TestSyncErrorSurfacesUnderSyncAlways(t *testing.T) {
	dir := t.TempDir()
	s, ff := faultyStore(t, dir, Options{Sync: SyncAlways})
	ff.mu.Lock()
	ff.failSyncs = true
	ff.mu.Unlock()
	if err := s.Put(testRecord(0)); !errors.Is(err, errInjected) {
		t.Fatalf("SyncAlways swallowed an fsync failure: %v", err)
	}
	// The bytes are written (only the fsync failed): the record is in
	// memory and durable against process death, just not power loss.
	if _, ok := s.Get(testRecord(0).Hash); !ok {
		t.Fatal("record lost after fsync failure")
	}
}

func TestReadErrorFailsOpen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Sync: SyncNever})
	mustPut(t, s, testRecord(0))
	s.Close()

	_, err := Open(dir, Options{
		ReadFile: func(path string) ([]byte, error) { return nil, errInjected },
	})
	if !errors.Is(err, errInjected) {
		t.Fatalf("unreadable log must fail Open loudly, got %v", err)
	}
}
