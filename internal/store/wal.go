package store

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
)

// Log format: a stream of self-delimiting frames, identical for the WAL and
// the snapshot (a snapshot is just a compacted log replayed first on boot).
//
//	magic   uint32  frame marker, also the resync anchor after corruption
//	length  uint32  payload byte count
//	crc     uint32  CRC-32C (Castagnoli) of the payload
//	payload []byte  one JSON-encoded Record
//
// All integers little-endian. Recovery tolerates two distinct failure
// shapes:
//
//   - Torn/truncated tail: a crash mid-append leaves a partial frame at the
//     end of the file. The parser stops at the first frame that runs past
//     EOF, reports the byte count, and the store truncates the file back to
//     the end of the last whole frame before appending again.
//   - Corrupt record: a flipped bit anywhere in a frame fails the CRC (or
//     the magic/length sanity checks) and the parser scans forward for the
//     next magic marker, skipping only the damaged frame. Records after the
//     damage are recovered.
const (
	logMagic    = uint32(0x45424D46) // "EBMF"
	frameHeader = 12                 // magic + length + crc
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendFrame encodes one record as a frame onto buf.
func appendFrame(buf []byte, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], logMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[8:12], crc32.Checksum(payload, castagnoli))
	return append(append(buf, hdr[:]...), payload...)
}

// encodeRecord marshals one record into its framed wire form.
func encodeRecord(rec *Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	return appendFrame(nil, payload), nil
}

// frameScan is one log replay's framing outcome, independent of the record
// type carried in the payloads. Both the result store (Record) and the job
// journal (JobRecord) recover through it.
type frameScan struct {
	// skippedRecords counts frames dropped for CRC/decode/validation
	// failures; skippedBytes counts raw bytes consumed by resync scans.
	skippedRecords int64
	skippedBytes   int64
	// tornBytes is the length of the truncated tail (0 when the file ends
	// exactly on a frame boundary).
	tornBytes int64
	// validEnd is the offset just past the last successfully parsed frame —
	// the truncation point that removes trailing garbage without touching
	// any recovered record.
	validEnd int64
}

// scanFrames replays one log file's bytes, calling accept for each
// whole, checksum-valid payload. It never fails: damage is skipped and
// counted, and whatever whole valid frames exist are visited in file order.
// maxRecord bounds a single frame's claimed payload so a corrupt length
// field cannot make the parser swallow the rest of the file as one record.
// accept returning false marks a well-framed but semantically invalid
// record: it is counted as skipped, but — since the frame delimits itself
// fine — the scan advances normally and validEnd still covers it.
func scanFrames(data []byte, maxRecord int, accept func(payload []byte) bool) frameScan {
	var out frameScan
	var magicBytes [4]byte
	binary.LittleEndian.PutUint32(magicBytes[:], logMagic)

	off := 0
	// resync advances past a damaged region to the next magic marker,
	// counting the scan. from is the first byte that might start a frame.
	resync := func(from int) {
		i := bytes.Index(data[from:], magicBytes[:])
		if i < 0 {
			out.skippedBytes += int64(len(data) - off)
			off = len(data)
			return
		}
		out.skippedBytes += int64(from + i - off)
		off = from + i
	}

	for off < len(data) {
		if len(data)-off < frameHeader {
			// Partial header at EOF: torn tail.
			out.tornBytes = int64(len(data) - off)
			break
		}
		if binary.LittleEndian.Uint32(data[off:]) != logMagic {
			// Not a frame boundary (garbage or a previous frame's damage):
			// scan forward.
			resync(off + 1)
			continue
		}
		length := int(binary.LittleEndian.Uint32(data[off+4:]))
		if length <= 0 || length > maxRecord {
			// Corrupt length field; the frame cannot be trusted to delimit
			// itself, so skip this marker and resync.
			out.skippedRecords++
			resync(off + 1)
			continue
		}
		if off+frameHeader+length > len(data) {
			// Frame runs past EOF. Either a torn tail (nothing but this
			// frame left) or a corrupt length that happens to be large;
			// both are handled by checking whether another marker follows.
			if i := bytes.Index(data[off+1:], magicBytes[:]); i >= 0 {
				out.skippedRecords++
				resync(off + 1)
				continue
			}
			out.tornBytes = int64(len(data) - off)
			break
		}
		payload := data[off+frameHeader : off+frameHeader+length]
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(data[off+8:]) {
			out.skippedRecords++
			resync(off + 1)
			continue
		}
		if !accept(payload) {
			out.skippedRecords++
		}
		off += frameHeader + length
		out.validEnd = int64(off)
	}
	return out
}

// parseResult is the result store's log replay outcome: the frame scan plus
// the decoded records.
type parseResult struct {
	frameScan
	records []*Record
}

// parseLog replays one result-store log file's bytes into Records.
func parseLog(data []byte, maxRecord int) parseResult {
	var out parseResult
	out.frameScan = scanFrames(data, maxRecord, func(payload []byte) bool {
		rec := new(Record)
		if err := json.Unmarshal(payload, rec); err != nil || rec.Validate() != nil {
			return false
		}
		out.records = append(out.records, rec)
		return true
	})
	return out
}
