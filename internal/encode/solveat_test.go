package encode

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitmat"
	"repro/internal/sat"
)

func TestSolveAtMatchesNarrowing(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 15; trial++ {
		m := bitmat.Random(rng, 4, 4, 0.5)
		if m.Ones() == 0 {
			continue
		}
		ub := m.TrivialUpperBound()
		probe := NewOneHot(m, ub, AMOPairwise)
		// Probe every bound non-destructively, then compare against fresh
		// formulas.
		for b := ub; b >= 0; b-- {
			got := probe.SolveAt(b)
			fresh := NewOneHot(m, b, AMOPairwise)
			want := fresh.Solve()
			if got != want {
				t.Fatalf("b=%d: probe %v vs fresh %v for\n%s", b, got, want, m)
			}
		}
		// The probing must not have narrowed the formula.
		if got := probe.Solve(); got != sat.Sat {
			t.Fatalf("formula damaged by probing: %v", got)
		}
	}
}

func TestSolveAtBoundsClamped(t *testing.T) {
	m := bitmat.MustParse("11\n11")
	e := NewOneHot(m, 2, AMOPairwise)
	if got := e.SolveAt(100); got != sat.Sat {
		t.Fatalf("over-bound probe: %v", got)
	}
	if got := e.SolveAt(-3); got != sat.Unsat {
		t.Fatalf("negative probe: %v", got)
	}
	z := NewOneHot(bitmat.New(2, 2), 0, AMOPairwise)
	if got := z.SolveAt(0); got != sat.Sat {
		t.Fatalf("zero-matrix probe: %v", got)
	}
}

// Property: SolveAt is monotone in the bound — SAT at b implies SAT at b+1.
func TestQuickSolveAtMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := bitmat.Random(rng, 1+rng.Intn(4), 1+rng.Intn(4), 0.6)
		if m.Ones() == 0 {
			return true
		}
		ub := m.TrivialUpperBound()
		e := NewOneHot(m, ub, AMOPairwise)
		prev := sat.Unsat
		for b := 0; b <= ub; b++ {
			got := e.SolveAt(b)
			if prev == sat.Sat && got != sat.Sat {
				return false
			}
			prev = got
		}
		return prev == sat.Sat // the trivial bound is always feasible
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
