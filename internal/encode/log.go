package encode

import (
	"fmt"

	"repro/internal/bitmat"
	"repro/internal/rect"
	"repro/internal/sat"
)

// Log is the bit-vector-flavoured CNF compilation: each entry's rectangle
// index f(e) is a ⌈log₂ b⌉-bit word. It matches the paper's SMT formulation
// most literally and serves as the encoding ablation; the one-hot encoding
// usually solves faster.
type Log struct {
	m     *bitmat.Matrix
	idx   *entryIndex
	s     *sat.Solver
	b     int
	built int
	nbit  int
	bits  [][]sat.Var // bits[e][l], little-endian
	sel   []sat.Var   // incremental mode: selector per value; sel[v] false forbids value v
	inc   bool
}

var _ Encoder = (*Log)(nil)

// NewLog builds the log-encoded formula for r_B(m) ≤ b. Narrowing mutates
// the formula; use NewLogIncremental for the assumption-based variant.
func NewLog(m *bitmat.Matrix, b int) *Log {
	return newLog(m, b, false)
}

// NewLogIncremental builds the log formula plus one selector variable per
// rectangle value, with clauses sel[v] ∨ (f(e) ≠ v) per entry. Narrowing
// then disables values by assumption instead of adding clauses, so learnt
// clauses and heuristic state persist across depth bounds.
func NewLogIncremental(m *bitmat.Matrix, b int) *Log {
	return newLog(m, b, true)
}

func newLog(m *bitmat.Matrix, b int, incremental bool) *Log {
	e := &Log{m: m, idx: newEntryIndex(m), s: sat.New(), b: b, built: b, inc: incremental}
	n := len(e.idx.pos)
	if n == 0 {
		return e
	}
	if b < 1 {
		e.s.AddClause()
		return e
	}
	e.nbit = bitsFor(b)
	e.bits = make([][]sat.Var, n)
	for en := range e.bits {
		e.bits[en] = make([]sat.Var, e.nbit)
		for l := range e.bits[en] {
			e.bits[en][l] = e.s.NewVar()
		}
	}
	// Domain constraint: f(e) < b, plus symmetry breaking f(e_t) ≤ t.
	for en := 0; en < n; en++ {
		max := b - 1
		if en < max {
			max = en
		}
		e.forbidAbove(en, max)
	}
	// Closure constraints per unordered pair.
	for a := 0; a < n; a++ {
		for c := a + 1; c < n; c++ {
			kind, crossA, crossB := classifyPair(m, e.idx, a, c)
			switch kind {
			case pairSkip:
			case pairConflict:
				e.addDiffer(a, c)
			case pairClosure:
				neq := e.addNeqVar(a, c)
				// ¬neq (i.e. equal) forces each cross's bits to equal a's.
				e.addEqualUnless(neq, a, crossA)
				e.addEqualUnless(neq, a, crossB)
			}
		}
	}
	if incremental {
		e.sel = make([]sat.Var, b)
		for v := range e.sel {
			e.sel[v] = e.s.NewVar()
		}
		for en := 0; en < n; en++ {
			for v := 0; v < b; v++ {
				lits := e.neqLits(en, v)
				e.s.AddClause(append(lits, sat.PosLit(e.sel[v]))...)
			}
		}
	}
	return e
}

// bitsFor returns ⌈log₂ b⌉ (at least 1).
func bitsFor(b int) int {
	n := 1
	for (1 << uint(n)) < b {
		n++
	}
	return n
}

// forbidAbove adds clauses excluding every value v with max < v < 2^nbit for
// entry en.
func (e *Log) forbidAbove(en, max int) {
	for v := max + 1; v < (1 << uint(e.nbit)); v++ {
		lits := make([]sat.Lit, e.nbit)
		for l := 0; l < e.nbit; l++ {
			// Exclude the exact pattern of v: at least one bit must differ.
			if v&(1<<uint(l)) != 0 {
				lits[l] = sat.NegLit(e.bits[en][l])
			} else {
				lits[l] = sat.PosLit(e.bits[en][l])
			}
		}
		e.s.AddClause(lits...)
	}
}

// addDiffer enforces f(a) ≠ f(c) via per-bit difference variables.
func (e *Log) addDiffer(a, c int) {
	ds := make([]sat.Lit, e.nbit)
	for l := 0; l < e.nbit; l++ {
		d := e.s.NewVar()
		// d → (bits differ at l): d → (a_l ∨ c_l) and d → (¬a_l ∨ ¬c_l).
		e.s.AddClause(sat.NegLit(d), sat.PosLit(e.bits[a][l]), sat.PosLit(e.bits[c][l]))
		e.s.AddClause(sat.NegLit(d), sat.NegLit(e.bits[a][l]), sat.NegLit(e.bits[c][l]))
		ds[l] = sat.PosLit(d)
	}
	e.s.AddClause(ds...) // some bit differs
}

// addNeqVar introduces neq with neq → f(a) ≠ f(c) (one-directional: when
// neq is false the solver must treat the entries as equal and honour the
// closure implications attached by addEqualUnless).
func (e *Log) addNeqVar(a, c int) sat.Var {
	neq := e.s.NewVar()
	ds := make([]sat.Lit, 0, e.nbit+1)
	ds = append(ds, sat.NegLit(neq))
	for l := 0; l < e.nbit; l++ {
		d := e.s.NewVar()
		e.s.AddClause(sat.NegLit(d), sat.PosLit(e.bits[a][l]), sat.PosLit(e.bits[c][l]))
		e.s.AddClause(sat.NegLit(d), sat.NegLit(e.bits[a][l]), sat.NegLit(e.bits[c][l]))
		ds = append(ds, sat.PosLit(d))
	}
	e.s.AddClause(ds...)
	// The reverse direction: if the words differ at any bit, neq must hold,
	// else the closure implications would be vacuously strong but sound;
	// adding it keeps the encoding faithful: (a_l ≠ c_l) → neq.
	for l := 0; l < e.nbit; l++ {
		e.s.AddClause(sat.PosLit(neq), sat.PosLit(e.bits[a][l]), sat.NegLit(e.bits[c][l]))
		e.s.AddClause(sat.PosLit(neq), sat.NegLit(e.bits[a][l]), sat.PosLit(e.bits[c][l]))
	}
	return neq
}

// addEqualUnless enforces: ¬neq → (f(cross) = f(a)), bitwise.
func (e *Log) addEqualUnless(neq sat.Var, a, cross int) {
	for l := 0; l < e.nbit; l++ {
		e.s.AddClause(sat.PosLit(neq), sat.NegLit(e.bits[a][l]), sat.PosLit(e.bits[cross][l]))
		e.s.AddClause(sat.PosLit(neq), sat.PosLit(e.bits[a][l]), sat.NegLit(e.bits[cross][l]))
	}
}

// Bound returns the current rectangle budget.
func (e *Log) Bound() int { return e.b }

// CoreVars returns 0: the log encoding interleaves difference auxiliaries
// with the per-entry bit words, so no stable shared variable prefix exists
// and log-encoded racers do not participate in clause sharing.
func (e *Log) CoreVars() int { return 0 }

// Solver exposes the SAT solver.
func (e *Log) Solver() *sat.Solver { return e.s }

// Solve decides the current bound. In incremental mode values at or above
// the bound are forbidden by assuming their selectors false, leaving the
// formula and the solver's learnt clauses intact for the next bound.
func (e *Log) Solve() sat.Status {
	if len(e.idx.pos) == 0 {
		return sat.Sat
	}
	if !e.inc {
		return e.s.Solve()
	}
	assumptions := make([]sat.Lit, 0, e.built-e.b)
	for v := e.b; v < e.built; v++ {
		assumptions = append(assumptions, sat.NegLit(e.sel[v]))
	}
	return e.s.SolveAssuming(assumptions...)
}

// Narrow forbids value b-1 for every entry, reducing the bound by one. In
// incremental mode it only moves the bound; the next Solve disables the
// value by assumption.
func (e *Log) Narrow() {
	if e.b <= 0 {
		return
	}
	e.b--
	if e.inc || len(e.idx.pos) == 0 {
		return
	}
	if e.b == 0 {
		e.s.AddClause()
		return
	}
	for en := range e.bits {
		e.forbidExact(en, e.b)
	}
}

// neqLits returns the clause literals asserting f(en) ≠ v: at least one bit
// of entry en's word differs from v's pattern.
func (e *Log) neqLits(en, v int) []sat.Lit {
	lits := make([]sat.Lit, e.nbit, e.nbit+1)
	for l := 0; l < e.nbit; l++ {
		if v&(1<<uint(l)) != 0 {
			lits[l] = sat.NegLit(e.bits[en][l])
		} else {
			lits[l] = sat.PosLit(e.bits[en][l])
		}
	}
	return lits
}

// forbidExact excludes the single value v for entry en.
func (e *Log) forbidExact(en, v int) {
	e.s.AddClause(e.neqLits(en, v)...)
}

// ReadPartition decodes the last Sat model into a partition.
func (e *Log) ReadPartition() (*rect.Partition, error) {
	if len(e.idx.pos) == 0 {
		return rect.NewPartition(e.m), nil
	}
	slot := make([]int, len(e.idx.pos))
	for en := range e.bits {
		v := 0
		for l := 0; l < e.nbit; l++ {
			if e.s.Value(e.bits[en][l]) {
				v |= 1 << uint(l)
			}
		}
		slot[en] = v
	}
	maxSlot := 1 << uint(e.nbit)
	p, err := partitionFromAssignment(e.m, e.idx, slot, maxSlot)
	if err != nil {
		return nil, fmt.Errorf("log encoding: %w", err)
	}
	return p, nil
}
