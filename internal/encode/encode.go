// Package encode compiles the EBMF decision problem "does matrix M admit a
// partition into at most b rectangles?" (equivalently r_B(M) ≤ b) to CNF for
// the sat package.
//
// The paper formulates this for an SMT solver as a function f: E → P over
// the 1-entries E with the closure constraints of its Eq. 4:
//
//	f(i,j) ≠ f(i',j')                      if M[i][j'] = 0
//	f(i,j) = f(i',j') ⇒ f(i,j) = f(i,j')   if M[i][j'] = 1
//
// Two CNF compilations are provided:
//
//   - OneHot (default): x[e][k] ⇔ entry e is assigned rectangle k, with
//     exactly-one-per-entry constraints, closure clauses per rectangle slot,
//     and first-occurrence symmetry breaking. Narrowing the bound from b to
//     b-1 is adding the unit clauses ¬x[e][b-1], mirroring the paper's
//     narrow_down_depth step.
//
//   - Log: f(e) as a ⌈log₂ b⌉-bit vector per entry, closest to the paper's
//     bit-vector story; kept as an ablation (it propagates worse).
package encode

import (
	"fmt"

	"repro/internal/bitmat"
	"repro/internal/rect"
	"repro/internal/sat"
)

// AMO selects the at-most-one encoding used by the one-hot compilation.
type AMO int

const (
	// AMONative (the default) registers each per-entry constraint with the
	// solver's native at-most-one propagator (sat.AddAtMostOne): no clauses,
	// no auxiliary variables, O(b) propagation per assignment. DRAT output is
	// unaffected — the solver renders groups as their pairwise expansion when
	// writing the formula.
	AMONative AMO = iota
	// AMOPairwise uses O(b²) binary clauses per entry (the classic encoding,
	// kept as an ablation and differential baseline).
	AMOPairwise
	// AMOSequential uses the sequential counter with O(b) auxiliary
	// variables and clauses per entry.
	AMOSequential
)

// String names the AMO mode (flag values for -amo and wire options).
func (a AMO) String() string {
	switch a {
	case AMOPairwise:
		return "pairwise"
	case AMOSequential:
		return "sequential"
	default:
		return "native"
	}
}

// ParseAMO maps a mode name to the AMO enum.
func ParseAMO(name string) (AMO, error) {
	switch name {
	case "", "native":
		return AMONative, nil
	case "pairwise":
		return AMOPairwise, nil
	case "sequential":
		return AMOSequential, nil
	}
	return AMONative, fmt.Errorf("encode: unknown AMO mode %q (valid: native, pairwise, sequential)", name)
}

// Encoder is the common interface of the two compilations. A fresh encoder
// is built at the row-packing upper bound; the SAP loop then alternates
// Solve and Narrow.
type Encoder interface {
	// Bound returns the current rectangle budget b.
	Bound() int
	// Solver exposes the underlying SAT solver (for budgets and stats).
	Solver() *sat.Solver
	// Solve decides whether r_B(M) ≤ Bound() under the current budget.
	Solve() sat.Status
	// Narrow reduces the bound by one by constraining the formula
	// (only valid after a Sat result or before any solving).
	Narrow()
	// ReadPartition extracts the rectangle partition from the last Sat
	// model.
	ReadPartition() (*rect.Partition, error)
	// CoreVars returns the count of leading solver variables whose meaning
	// is a function of (matrix, built bound) alone — identical across every
	// encoder of the same family built for the same matrix and initial
	// bound, regardless of AMO encoding, symmetry breaking or incremental
	// mode. Learnt clauses mentioning only variables below this count may
	// soundly be exchanged between such encoders (portfolio clause
	// sharing). 0 means the encoding exposes no shareable variable space.
	CoreVars() int
}

// entryIndex enumerates the 1-entries of m in row-major order — the index
// function e(i,j) of the paper.
type entryIndex struct {
	pos [][2]int
	at  map[[2]int]int
}

func newEntryIndex(m *bitmat.Matrix) *entryIndex {
	pos := m.OnesPositions()
	at := make(map[[2]int]int, len(pos))
	for idx, p := range pos {
		at[p] = idx
	}
	return &entryIndex{pos: pos, at: at}
}

// pairKind classifies an unordered pair of entries for the closure
// constraints.
type pairKind int

const (
	pairSkip     pairKind = iota // shares a row or column: no constraint
	pairConflict                 // a cross entry is 0: never the same rectangle
	pairClosure                  // both crosses are 1: same rectangle forces crosses in
)

// classifyPair applies Eq. 4 to entries a=(i,j), b=(i',j') and returns the
// pair kind and (for closure pairs) the two cross entry indices.
func classifyPair(m *bitmat.Matrix, idx *entryIndex, a, b int) (pairKind, int, int) {
	i, j := idx.pos[a][0], idx.pos[a][1]
	i2, j2 := idx.pos[b][0], idx.pos[b][1]
	if i == i2 || j == j2 {
		return pairSkip, 0, 0
	}
	if !m.Get(i, j2) || !m.Get(i2, j) {
		return pairConflict, 0, 0
	}
	return pairClosure, idx.at[[2]int{i, j2}], idx.at[[2]int{i2, j}]
}

// partitionFromAssignment reconstructs rectangles from an entry→slot
// assignment, validating on the way.
func partitionFromAssignment(m *bitmat.Matrix, idx *entryIndex, slot []int, b int) (*rect.Partition, error) {
	p := rect.NewPartition(m)
	byRect := make([][]int, b)
	for e, k := range slot {
		if k < 0 || k >= b {
			return nil, fmt.Errorf("encode: entry %d assigned invalid slot %d", e, k)
		}
		byRect[k] = append(byRect[k], e)
	}
	for _, entries := range byRect {
		if len(entries) == 0 {
			continue
		}
		r := rect.NewRect(m.Rows(), m.Cols())
		for _, e := range entries {
			r.Rows.Set(idx.pos[e][0], true)
			r.Cols.Set(idx.pos[e][1], true)
		}
		p.Add(r)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("encode: model does not induce a valid partition: %w", err)
	}
	return p, nil
}
