package encode

import (
	"fmt"

	"repro/internal/bitmat"
	"repro/internal/rect"
	"repro/internal/sat"
)

// OneHot is the direct CNF compilation: one variable per (entry, rectangle
// slot) pair.
type OneHot struct {
	m     *bitmat.Matrix
	idx   *entryIndex
	s     *sat.Solver
	b     int
	vars  [][]sat.Var // vars[e][k]
	built int         // initial bound the formula was built for
	sel   []sat.Var   // incremental mode: selector per slot; sel[k] false disables slot k
	inc   bool
}

var _ Encoder = (*OneHot)(nil)

// OneHotConfig tunes the one-hot compilation.
type OneHotConfig struct {
	// AMO selects the at-most-one encoding.
	AMO AMO
	// Incremental adds per-slot selector variables (see
	// NewOneHotIncremental).
	Incremental bool
	// DisableSlotOrdering drops the lexicographic slot-signature symmetry
	// breaking (first-row-index ordering over the row-usage variables
	// r[i][k]); kept as an ablation knob. The weaker per-entry break
	// (entry t opens slots ≤ t) is always on.
	DisableSlotOrdering bool
}

// NewOneHot builds the formula for r_B(m) ≤ b with the chosen at-most-one
// encoding and symmetry breaking. b must be ≥ 1 unless the matrix is zero.
// Narrowing mutates the formula with unit clauses; use NewOneHotIncremental
// for the assumption-based variant.
func NewOneHot(m *bitmat.Matrix, b int, amo AMO) *OneHot {
	return NewOneHotConfig(m, b, OneHotConfig{AMO: amo})
}

// NewOneHotIncremental builds the same formula plus one selector variable
// per rectangle slot, with clauses sel[k] ∨ ¬x[e][k] tying each slot's
// entry variables to its selector. Narrowing then never mutates the
// formula: Solve assumes ¬sel[k] for every slot at or above the current
// bound, so learnt clauses, saved phases and VSIDS activities stay valid
// and are reused across the whole depth-narrowing run — the paper's
// narrow_down_depth as an assumption instead of a re-encode.
func NewOneHotIncremental(m *bitmat.Matrix, b int, amo AMO) *OneHot {
	return NewOneHotConfig(m, b, OneHotConfig{AMO: amo, Incremental: true})
}

// NewOneHotConfig builds the one-hot formula with full control over the
// compilation knobs.
func NewOneHotConfig(m *bitmat.Matrix, b int, cfg OneHotConfig) *OneHot {
	return newOneHot(m, b, cfg)
}

func newOneHot(m *bitmat.Matrix, b int, cfg OneHotConfig) *OneHot {
	amo, incremental := cfg.AMO, cfg.Incremental
	e := &OneHot{m: m, idx: newEntryIndex(m), s: sat.New(), b: b, built: b, inc: incremental}
	n := len(e.idx.pos)
	if n == 0 {
		return e
	}
	if b < 1 {
		// No slots but entries to cover: immediately unsatisfiable.
		e.s.AddClause()
		return e
	}
	// Size the solver's backing arrays up front: n*b entry-slot variables
	// plus selectors and slot-ordering auxiliaries, and roughly n²b/2
	// words of clause storage (the closure/conflict pair loop dominates).
	// Pure capacity hints — encoding is allocation-bound without them.
	e.s.ReserveVars(n*b + b + 2*(m.Rows()+1)*b)
	e.s.ReserveClauseWords(n * b * (n/2 + 4))
	e.vars = make([][]sat.Var, n)
	flat := make([]sat.Var, n*b)
	for en := range e.vars {
		e.vars[en] = flat[en*b : (en+1)*b : (en+1)*b]
		for k := range e.vars[en] {
			e.vars[en][k] = e.s.NewVar()
		}
	}
	// Exactly-one slot per entry.
	for en := 0; en < n; en++ {
		lits := make([]sat.Lit, b)
		for k := 0; k < b; k++ {
			lits[k] = sat.PosLit(e.vars[en][k])
		}
		e.s.AddClause(lits...)
		e.addAMO(e.vars[en], amo)
	}
	// Closure constraints (Eq. 4) per unordered pair and slot.
	for a := 0; a < n; a++ {
		for c := a + 1; c < n; c++ {
			kind, crossA, crossB := classifyPair(m, e.idx, a, c)
			switch kind {
			case pairSkip:
			case pairConflict:
				for k := 0; k < b; k++ {
					e.s.AddClause(sat.NegLit(e.vars[a][k]), sat.NegLit(e.vars[c][k]))
				}
			case pairClosure:
				for k := 0; k < b; k++ {
					e.s.AddClause(sat.NegLit(e.vars[a][k]), sat.NegLit(e.vars[c][k]),
						sat.PosLit(e.vars[crossA][k]))
					e.s.AddClause(sat.NegLit(e.vars[a][k]), sat.NegLit(e.vars[c][k]),
						sat.PosLit(e.vars[crossB][k]))
				}
			}
		}
	}
	// Symmetry breaking: entry t may only open slots 0..t (rectangles are
	// interchangeable, so order them by their first entry).
	for en := 0; en < n && en < b; en++ {
		for k := en + 1; k < b; k++ {
			e.s.AddClause(sat.NegLit(e.vars[en][k]))
		}
	}
	if !cfg.DisableSlotOrdering {
		e.addSlotOrdering()
	}
	if incremental {
		e.sel = make([]sat.Var, b)
		for k := range e.sel {
			e.sel[k] = e.s.NewVar()
		}
		for en := 0; en < n; en++ {
			for k := 0; k < b; k++ {
				e.s.AddClause(sat.PosLit(e.sel[k]), sat.NegLit(e.vars[en][k]))
			}
		}
	}
	return e
}

// addSlotOrdering adds the lexicographic slot-signature symmetry breaking:
// slots, read in index order, must have non-decreasing first-row index, with
// empty slots sorting last. This kills the k! permutation symmetry of the
// rectangle slots beyond what the per-entry break prunes — every UNSAT proof
// otherwise re-refutes row-permuted copies of the same partition attempt.
//
// Encoding: row-usage variables r[i][k] ⇔ slot k contains an entry of row i,
// prefix variables u[i][k] ⇔ slot k uses some row ≤ i (chained per slot), and
// ordering clauses u[i][k+1] → u[i][k]. The prefix property for every i is
// equivalent to firstRow(k) ≤ firstRow(k+1) (empty slots have all-false u, so
// used slots are forced into a prefix). The constraint is satisfied by the
// canonical representative of the per-entry break — slots numbered by first
// entry in row-major order have non-decreasing first rows — so adding both is
// sound, and it composes with selector-based narrowing: a disabled slot's x
// variables are all false, which forces its r and u chains false, making the
// ordering clauses vacuous for the disabled suffix.
func (e *OneHot) addSlotOrdering() {
	// Entries of each nonzero row, in row order (row-major entry index).
	n := len(e.idx.pos)
	var rows []int          // distinct rows with entries, ascending
	rowEntries := [][]int{} // entries per row, parallel to rows
	for en := 0; en < n; en++ {
		i := e.idx.pos[en][0]
		if len(rows) == 0 || rows[len(rows)-1] != i {
			rows = append(rows, i)
			rowEntries = append(rowEntries, nil)
		}
		rowEntries[len(rowEntries)-1] = append(rowEntries[len(rowEntries)-1], en)
	}
	u := make([][]sat.Var, len(rows)) // u[ri][k]
	for ri := range u {
		u[ri] = make([]sat.Var, e.b)
	}
	lits := make([]sat.Lit, 0, 8)
	for k := 0; k < e.b; k++ {
		for ri := range rows {
			// r ⇔ some entry of this row is in slot k.
			r := e.s.NewVar()
			lits = lits[:0]
			for _, en := range rowEntries[ri] {
				e.s.AddClause(sat.NegLit(e.vars[en][k]), sat.PosLit(r))
				lits = append(lits, sat.PosLit(e.vars[en][k]))
			}
			e.s.AddClause(append(lits, sat.NegLit(r))...)
			// u[ri][k] ⇔ r ∨ u[ri-1][k].
			uk := e.s.NewVar()
			u[ri][k] = uk
			e.s.AddClause(sat.NegLit(r), sat.PosLit(uk))
			if ri > 0 {
				prev := u[ri-1][k]
				e.s.AddClause(sat.NegLit(prev), sat.PosLit(uk))
				e.s.AddClause(sat.NegLit(uk), sat.PosLit(r), sat.PosLit(prev))
			} else {
				e.s.AddClause(sat.NegLit(uk), sat.PosLit(r))
			}
		}
	}
	// Ordering: slot k+1 may only reach into row prefixes slot k already
	// uses.
	for k := 0; k+1 < e.b; k++ {
		for ri := range rows {
			e.s.AddClause(sat.NegLit(u[ri][k+1]), sat.PosLit(u[ri][k]))
		}
	}
}

// addAMO constrains at most one of vs to be true.
func (e *OneHot) addAMO(vs []sat.Var, amo AMO) {
	switch amo {
	case AMOSequential:
		e.addAMOSequential(vs)
	case AMOPairwise:
		for a := 0; a < len(vs); a++ {
			for b := a + 1; b < len(vs); b++ {
				e.s.AddClause(sat.NegLit(vs[a]), sat.NegLit(vs[b]))
			}
		}
	default: // AMONative
		lits := make([]sat.Lit, len(vs))
		for i, v := range vs {
			lits[i] = sat.PosLit(v)
		}
		e.s.AddAtMostOne(lits...)
	}
}

// addAMOSequential is the sequential-counter at-most-one: s_k carries
// "some x_{≤k} is true".
func (e *OneHot) addAMOSequential(vs []sat.Var) {
	if len(vs) <= 1 {
		return
	}
	prev := sat.Var(-1)
	for k, x := range vs {
		if k == len(vs)-1 {
			if prev >= 0 {
				e.s.AddClause(sat.NegLit(x), sat.NegLit(prev))
			}
			break
		}
		sk := e.s.NewVar()
		e.s.AddClause(sat.NegLit(x), sat.PosLit(sk))
		if prev >= 0 {
			e.s.AddClause(sat.NegLit(prev), sat.PosLit(sk))
			e.s.AddClause(sat.NegLit(x), sat.NegLit(prev))
		}
		prev = sk
	}
}

// Bound returns the current rectangle budget.
func (e *OneHot) Bound() int { return e.b }

// CoreVars returns the size of the x[e][k] variable block: the first
// len(entries)×built variables are the entry-slot indicators, allocated in
// the same order by every one-hot encoder over the same matrix and initial
// bound (AMO/ordering/selector auxiliaries all come later). Clauses over
// this prefix are safe to share between one-hot racers.
func (e *OneHot) CoreVars() int {
	if len(e.idx.pos) == 0 || e.built < 1 {
		return 0
	}
	return len(e.idx.pos) * e.built
}

// Solver exposes the SAT solver.
func (e *OneHot) Solver() *sat.Solver { return e.s }

// Solve decides the current bound. In incremental mode every slot at or
// above the bound is switched off by assuming its selector false; the
// formula itself is never touched, so the solver's learnt clauses survive
// from one bound to the next.
func (e *OneHot) Solve() sat.Status {
	if len(e.idx.pos) == 0 {
		return sat.Sat
	}
	if !e.inc {
		return e.s.Solve()
	}
	assumptions := make([]sat.Lit, 0, e.built-e.b)
	for k := e.b; k < e.built; k++ {
		assumptions = append(assumptions, sat.NegLit(e.sel[k]))
	}
	return e.s.SolveAssuming(assumptions...)
}

// Narrow forbids the highest remaining slot, reducing the bound by one —
// the paper's narrow_down_depth: add f(e) ≠ b for every entry. In
// incremental mode it only moves the bound; the next Solve disables the
// slot by assumption.
func (e *OneHot) Narrow() {
	if e.b <= 0 {
		return
	}
	e.b--
	if e.inc || len(e.idx.pos) == 0 {
		return
	}
	if e.b == 0 {
		e.s.AddClause() // entries exist but no slots remain
		return
	}
	for en := range e.vars {
		e.s.AddClause(sat.NegLit(e.vars[en][e.b]))
	}
}

// SolveAt decides r_B(m) ≤ bound without permanently narrowing the formula,
// by assuming every slot ≥ bound away (solver assumptions instead of unit
// clauses). bound must be ≤ the bound the formula was built for. Useful for
// probing several bounds on one formula; the SAP loop itself uses the
// destructive Narrow, which lets the solver keep the learnt clauses sound
// across calls either way.
func (e *OneHot) SolveAt(bound int) sat.Status {
	if len(e.idx.pos) == 0 {
		return sat.Sat
	}
	if bound < 0 {
		bound = 0
	}
	if bound > e.built {
		bound = e.built
	}
	if bound == 0 {
		return sat.Unsat // entries exist but no slots allowed
	}
	var assumptions []sat.Lit
	if e.inc {
		// One selector assumption per disabled slot.
		for k := bound; k < e.built; k++ {
			assumptions = append(assumptions, sat.NegLit(e.sel[k]))
		}
	} else {
		for en := range e.vars {
			for k := bound; k < e.built; k++ {
				assumptions = append(assumptions, sat.NegLit(e.vars[en][k]))
			}
		}
	}
	return e.s.SolveAssuming(assumptions...)
}

// ReadPartition decodes the last Sat model into a partition.
func (e *OneHot) ReadPartition() (*rect.Partition, error) {
	if len(e.idx.pos) == 0 {
		return rect.NewPartition(e.m), nil
	}
	slot := make([]int, len(e.idx.pos))
	for en := range e.vars {
		slot[en] = -1
		for k := 0; k < e.built; k++ {
			if e.s.Value(e.vars[en][k]) {
				if slot[en] >= 0 {
					return nil, fmt.Errorf("encode: entry %d in two slots", en)
				}
				slot[en] = k
			}
		}
	}
	return partitionFromAssignment(e.m, e.idx, slot, e.built)
}
