package encode

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitmat"
	"repro/internal/sat"
)

// encoders under test, by name.
func allEncoders(m *bitmat.Matrix, b int) map[string]Encoder {
	return map[string]Encoder{
		"onehot-native":     NewOneHot(m, b, AMONative),
		"onehot-pairwise":   NewOneHot(m, b, AMOPairwise),
		"onehot-sequential": NewOneHot(m, b, AMOSequential),
		"log":               NewLog(m, b),
	}
}

// amoModes is the differential matrix for the three at-most-one encodings of
// the one-hot compilation.
var amoModes = []AMO{AMONative, AMOPairwise, AMOSequential}

// bruteBinaryRank computes r_B(M) by brute-force search over partitions of
// the 1-entries into rectangles (exponential; tiny matrices only). It works
// by trying increasing b and checking assignments recursively.
func bruteBinaryRank(m *bitmat.Matrix) int {
	ones := m.OnesPositions()
	if len(ones) == 0 {
		return 0
	}
	for b := 1; b <= len(ones); b++ {
		if bruteAssign(m, ones, nil, b) {
			return b
		}
	}
	return len(ones)
}

// bruteAssign tries to extend the partial assignment (slot per processed
// entry) to all entries with at most b rectangles.
func bruteAssign(m *bitmat.Matrix, ones [][2]int, slots []int, b int) bool {
	if len(slots) == len(ones) {
		return true
	}
	e := len(slots)
	maxSlot := 0
	for _, s := range slots {
		if s+1 > maxSlot {
			maxSlot = s + 1
		}
	}
	limit := maxSlot // may open one new rectangle
	if limit >= b {
		limit = b - 1
	}
	for k := 0; k <= limit; k++ {
		if validExtension(m, ones, slots, e, k) {
			if bruteAssign(m, ones, append(slots, k), b) {
				return true
			}
		}
	}
	return false
}

// validExtension checks the rectangle closure conditions between entry e
// (assigned k) and all earlier entries.
func validExtension(m *bitmat.Matrix, ones [][2]int, slots []int, e, k int) bool {
	i, j := ones[e][0], ones[e][1]
	for o, ko := range slots {
		if ko != k {
			continue
		}
		i2, j2 := ones[o][0], ones[o][1]
		if i2 == i || j2 == j {
			continue
		}
		if !m.Get(i, j2) || !m.Get(i2, j) {
			return false
		}
	}
	// Also ensure closure entries would be assignable: both crosses must be
	// in the same rectangle eventually. The recursive search handles this
	// implicitly only if crosses processed later may still pick k; crosses
	// processed earlier must already be in k.
	for o, ko := range slots {
		if ko != k {
			continue
		}
		i2, j2 := ones[o][0], ones[o][1]
		if i2 == i || j2 == j {
			continue
		}
		// crosses (i, j2) and (i2, j) must be in slot k if already assigned.
		for c, kc := range slots {
			ci, cj := ones[c][0], ones[c][1]
			if (ci == i && cj == j2) || (ci == i2 && cj == j) {
				if kc != k {
					return false
				}
			}
		}
	}
	return true
}

func TestEncodersOnFig1b(t *testing.T) {
	m := bitmat.MustParse("101100\n010011\n101010\n010101\n111000\n000111")
	// The paper proves r_B = 5 via a fooling set.
	for name, e := range allEncoders(m, 5) {
		if got := e.Solve(); got != sat.Sat {
			t.Fatalf("%s: b=5 should be SAT, got %v", name, got)
		}
		p, err := e.ReadPartition()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Depth() > 5 {
			t.Fatalf("%s: depth %d > 5", name, p.Depth())
		}
		e.Narrow()
		if got := e.Solve(); got != sat.Unsat {
			t.Fatalf("%s: b=4 should be UNSAT, got %v", name, got)
		}
	}
}

func TestEncodersOnEq2(t *testing.T) {
	// Eq. 2 matrix: r_B = 3 although fooling number is 2.
	m := bitmat.MustParse("110\n011\n111")
	for name, e := range allEncoders(m, 3) {
		if got := e.Solve(); got != sat.Sat {
			t.Fatalf("%s: b=3 should be SAT, got %v", name, got)
		}
		e.Narrow()
		if got := e.Solve(); got != sat.Unsat {
			t.Fatalf("%s: b=2 should be UNSAT, got %v", name, got)
		}
	}
}

func TestEncodersZeroMatrix(t *testing.T) {
	m := bitmat.New(3, 4)
	for name, e := range allEncoders(m, 0) {
		if got := e.Solve(); got != sat.Sat {
			t.Fatalf("%s: zero matrix b=0 should be SAT, got %v", name, got)
		}
		p, err := e.ReadPartition()
		if err != nil || p.Depth() != 0 {
			t.Fatalf("%s: depth=%d err=%v", name, p.Depth(), err)
		}
	}
}

func TestEncodersBoundZeroNonzeroMatrix(t *testing.T) {
	m := bitmat.MustParse("1")
	for name, e := range allEncoders(m, 0) {
		if got := e.Solve(); got != sat.Unsat {
			t.Fatalf("%s: b=0 with 1-entries should be UNSAT, got %v", name, got)
		}
	}
}

func TestNarrowToZero(t *testing.T) {
	m := bitmat.MustParse("1")
	for name, e := range allEncoders(m, 1) {
		if got := e.Solve(); got != sat.Sat {
			t.Fatalf("%s: b=1, got %v", name, got)
		}
		e.Narrow()
		if e.Bound() != 0 {
			t.Fatalf("%s: bound = %d", name, e.Bound())
		}
		if got := e.Solve(); got != sat.Unsat {
			t.Fatalf("%s: b=0, got %v", name, got)
		}
	}
}

func TestEncodersAgreeWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 25; trial++ {
		m := bitmat.Random(rng, 2+rng.Intn(3), 2+rng.Intn(3), 0.3+0.5*rng.Float64())
		if m.Ones() == 0 || m.Ones() > 9 {
			continue
		}
		want := bruteBinaryRank(m)
		for name, factory := range map[string]func(int) Encoder{
			"onehot": func(b int) Encoder { return NewOneHot(m, b, AMOPairwise) },
			"log":    func(b int) Encoder { return NewLog(m, b) },
		} {
			// want is SAT, want-1 is UNSAT.
			e := factory(want)
			if got := e.Solve(); got != sat.Sat {
				t.Fatalf("%s: b=%d should be SAT for\n%s", name, want, m)
			}
			if _, err := e.ReadPartition(); err != nil {
				t.Fatalf("%s: readout: %v", name, err)
			}
			if want > 1 {
				e2 := factory(want - 1)
				if got := e2.Solve(); got != sat.Unsat {
					t.Fatalf("%s: b=%d should be UNSAT for\n%s", name, want-1, m)
				}
			}
		}
	}
}

func TestIncrementalNarrowingMatchesFresh(t *testing.T) {
	// Narrowing an existing formula must decide the same as building fresh.
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 15; trial++ {
		m := bitmat.Random(rng, 3, 4, 0.5)
		if m.Ones() == 0 {
			continue
		}
		ub := m.TrivialUpperBound()
		inc := NewOneHot(m, ub, AMOPairwise)
		for b := ub; b >= 1; b-- {
			gotInc := inc.Solve()
			fresh := NewOneHot(m, b, AMOPairwise)
			gotFresh := fresh.Solve()
			if gotInc != gotFresh {
				t.Fatalf("b=%d: incremental %v vs fresh %v for\n%s", b, gotInc, gotFresh, m)
			}
			if gotInc == sat.Unsat {
				break
			}
			inc.Narrow()
		}
	}
}

// Property: whenever an encoder reports SAT, the decoded partition is valid
// with depth ≤ bound; one-hot and log agree on satisfiability.
func TestQuickEncodersConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := bitmat.Random(rng, 1+rng.Intn(4), 1+rng.Intn(4), rng.Float64())
		if m.Ones() == 0 {
			return true
		}
		b := 1 + rng.Intn(m.Ones())
		oh := NewOneHot(m, b, AMOPairwise)
		lg := NewLog(m, b)
		ro, rl := oh.Solve(), lg.Solve()
		if ro != rl {
			return false
		}
		if ro == sat.Sat {
			p, err := oh.ReadPartition()
			if err != nil || p.Depth() > b {
				return false
			}
			p2, err2 := lg.ReadPartition()
			if err2 != nil || p2.Depth() > b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// narrowedDepth runs the full narrowing loop with one AMO mode and returns
// the optimal depth plus the final SAT model's partition.
func narrowedDepth(t *testing.T, m *bitmat.Matrix, mode AMO) int {
	t.Helper()
	ub := m.TrivialUpperBound()
	if ub == 0 {
		return 0
	}
	e := NewOneHot(m, ub, mode)
	best := -1
	for {
		if e.Solve() != sat.Sat {
			break
		}
		p, err := e.ReadPartition()
		if err != nil {
			t.Fatalf("%v at b=%d: %v\n%s", mode, e.Bound(), err, m)
		}
		if p.Depth() > e.Bound() {
			t.Fatalf("%v at b=%d: depth %d exceeds bound\n%s", mode, e.Bound(), p.Depth(), m)
		}
		best = e.Bound()
		if e.Bound() == 0 {
			break
		}
		e.Narrow()
	}
	if best < 0 {
		t.Fatalf("%v: UNSAT at the trivial upper bound %d\n%s", mode, ub, m)
	}
	return best
}

// TestAMOModesAgreeOnCorpus narrows every seed-corpus matrix to its optimal
// depth under each of the three AMO encodings: the depths must be identical
// and every intermediate model must decode to a valid partition.
func TestAMOModesAgreeOnCorpus(t *testing.T) {
	corpus := []*bitmat.Matrix{
		bitmat.MustParse("101100\n010011\n101010\n010101\n111000\n000111"), // Fig. 1b
		bitmat.MustParse("110\n011\n111"),                                  // Eq. 2
		bitmat.MustParse("1"),
		bitmat.MustParse("11\n11"),
		bitmat.MustParse("10\n01"),
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 12; trial++ {
		m := bitmat.Random(rng, 2+rng.Intn(4), 2+rng.Intn(4), 0.3+0.5*rng.Float64())
		if m.Ones() > 0 {
			corpus = append(corpus, m)
		}
	}
	for i, m := range corpus {
		want := narrowedDepth(t, m, AMONative)
		for _, mode := range amoModes[1:] {
			if got := narrowedDepth(t, m, mode); got != want {
				t.Fatalf("corpus[%d]: %v depth %d, native depth %d\n%s", i, mode, got, want, m)
			}
		}
	}
}

// FuzzAMOEquivalence: for any small matrix and bound, the three AMO
// encodings must agree on satisfiability, and SAT models must decode to
// valid partitions within the bound.
func FuzzAMOEquivalence(f *testing.F) {
	f.Add(uint8(3), uint8(3), uint8(2), "101010011")
	f.Add(uint8(2), uint8(5), uint8(3), "1111100000")
	f.Add(uint8(6), uint8(6), uint8(4), "101100010011101010010101111000000111")
	f.Add(uint8(1), uint8(1), uint8(1), "1")
	f.Fuzz(func(t *testing.T, rows, cols, bound uint8, bits string) {
		r := int(rows%6) + 1
		c := int(cols%6) + 1
		m := bitmat.New(r, c)
		for idx := 0; idx < r*c && idx < len(bits); idx++ {
			if bits[idx]&1 == 1 {
				m.Set(idx/c, idx%c, true)
			}
		}
		if m.Ones() == 0 {
			return
		}
		b := int(bound)%m.Ones() + 1
		var status [3]sat.Status
		for i, mode := range amoModes {
			e := NewOneHot(m, b, mode)
			status[i] = e.Solve()
			if status[i] == sat.Sat {
				p, err := e.ReadPartition()
				if err != nil {
					t.Fatalf("%v: %v\n%s", mode, err, m)
				}
				if p.Depth() > b {
					t.Fatalf("%v: depth %d > bound %d\n%s", mode, p.Depth(), b, m)
				}
			}
		}
		if status[0] != status[1] || status[1] != status[2] {
			t.Fatalf("AMO modes disagree at b=%d: native=%v pairwise=%v sequential=%v\n%s",
				b, status[0], status[1], status[2], m)
		}
	})
}

// Property: rank(M) ≤ r_B(M) — at b = rank-1 the formula must be UNSAT.
func TestQuickRankBoundRespected(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := bitmat.Random(rng, 2+rng.Intn(3), 2+rng.Intn(3), 0.5)
		r := m.Rank()
		if r < 2 {
			return true
		}
		e := NewOneHot(m, r-1, AMOPairwise)
		return e.Solve() == sat.Unsat
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
