package encode

import (
	"math/rand"
	"testing"

	"repro/internal/bitmat"
	"repro/internal/sat"
)

// encoderPair runs the SAP narrowing loop on both the destructive and the
// incremental variant of an encoder family and checks that every bound gets
// the same verdict and that Sat models decode to valid partitions.
func runNarrowingPair(t *testing.T, m *bitmat.Matrix, mk func(incremental bool) Encoder) {
	t.Helper()
	dest := mk(false)
	inc := mk(true)
	for {
		sd := dest.Solve()
		si := inc.Solve()
		if sd != si {
			t.Fatalf("bound %d: destructive %v vs incremental %v for\n%s", dest.Bound(), sd, si, m)
		}
		if sd != sat.Sat {
			return
		}
		if _, err := dest.ReadPartition(); err != nil {
			t.Fatalf("bound %d: destructive model invalid: %v", dest.Bound(), err)
		}
		if _, err := inc.ReadPartition(); err != nil {
			t.Fatalf("bound %d: incremental model invalid: %v", inc.Bound(), err)
		}
		if dest.Bound() == 0 {
			return
		}
		dest.Narrow()
		inc.Narrow()
		if dest.Bound() != inc.Bound() {
			t.Fatalf("bounds diverged: %d vs %d", dest.Bound(), inc.Bound())
		}
	}
}

func TestIncrementalOneHotMatchesDestructive(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 25; trial++ {
		m := bitmat.Random(rng, 3+rng.Intn(3), 3+rng.Intn(3), 0.5)
		if m.Ones() == 0 {
			continue
		}
		ub := m.TrivialUpperBound()
		runNarrowingPair(t, m, func(incremental bool) Encoder {
			if incremental {
				return NewOneHotIncremental(m, ub, AMOPairwise)
			}
			return NewOneHot(m, ub, AMOPairwise)
		})
	}
}

func TestIncrementalLogMatchesDestructive(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 25; trial++ {
		m := bitmat.Random(rng, 3+rng.Intn(3), 3+rng.Intn(3), 0.5)
		if m.Ones() == 0 {
			continue
		}
		ub := m.TrivialUpperBound()
		runNarrowingPair(t, m, func(incremental bool) Encoder {
			if incremental {
				return NewLogIncremental(m, ub)
			}
			return NewLog(m, ub)
		})
	}
}

// TestIncrementalSolveAtUsesSelectors: probing an incremental formula at
// several bounds must match fresh formulas, and the probes must not damage
// the formula (assumptions are transient).
func TestIncrementalSolveAtUsesSelectors(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 10; trial++ {
		m := bitmat.Random(rng, 4, 4, 0.5)
		if m.Ones() == 0 {
			continue
		}
		ub := m.TrivialUpperBound()
		probe := NewOneHotIncremental(m, ub, AMOPairwise)
		for b := ub; b >= 0; b-- {
			got := probe.SolveAt(b)
			want := NewOneHot(m, b, AMOPairwise).Solve()
			if got != want {
				t.Fatalf("b=%d: incremental probe %v vs fresh %v for\n%s", b, got, want, m)
			}
		}
		if got := probe.Solve(); got != sat.Sat {
			t.Fatalf("formula damaged by probing: %v", got)
		}
	}
}

// TestIncrementalNarrowToZero: narrowing an incremental encoder all the way
// to bound 0 on a nonzero matrix must end Unsat without mutating the
// formula into a permanently unsatisfiable state at higher bounds.
func TestIncrementalNarrowToZero(t *testing.T) {
	m := bitmat.MustParse("11\n11")
	e := NewOneHotIncremental(m, 2, AMOPairwise)
	if got := e.Solve(); got != sat.Sat {
		t.Fatalf("b=2: %v", got)
	}
	e.Narrow()
	if got := e.Solve(); got != sat.Sat {
		t.Fatalf("b=1 (full matrix is one rectangle): %v", got)
	}
	e.Narrow()
	if e.Bound() != 0 {
		t.Fatalf("bound = %d, want 0", e.Bound())
	}
	if got := e.Solve(); got != sat.Unsat {
		t.Fatalf("b=0 with entries: %v", got)
	}
	// The formula itself is still satisfiable at the built bound.
	if got := e.SolveAt(2); got != sat.Sat {
		t.Fatalf("formula poisoned by narrowing to zero: %v", got)
	}
}

// TestIncrementalReusesLearntClauses is the point of the exercise: after a
// full narrowing run the incremental solver must have accumulated learnt
// clauses in one solver instance (no re-encode), and the destructive and
// incremental paths agree on the final UNSAT bound.
func TestIncrementalReusesLearntClauses(t *testing.T) {
	// Figure 1b: depth 5, so b=4 is the UNSAT frontier.
	m := bitmat.MustParse("101100\n010011\n101010\n010101\n111000\n000111")
	e := NewOneHotIncremental(m, 6, AMOPairwise)
	bounds := 0
	for {
		st := e.Solve()
		bounds++
		if st == sat.Unsat {
			break
		}
		if st != sat.Sat {
			t.Fatalf("bound %d: %v", e.Bound(), st)
		}
		e.Narrow()
	}
	if e.Bound() != 4 {
		t.Fatalf("UNSAT frontier at bound %d, want 4", e.Bound())
	}
	if bounds < 3 {
		t.Fatalf("expected ≥ 3 Solve calls on one solver, got %d", bounds)
	}
	if e.Solver().Conflicts == 0 {
		t.Fatal("expected conflicts accumulated across bounds")
	}
}
