package portfolio

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bitmat"
	"repro/internal/encode"
	"repro/internal/obs"
	"repro/internal/rect"
	"repro/internal/sat"
)

// RaceSpec describes one block's depth-narrowing race.
type RaceSpec struct {
	// M is the (block) matrix.
	M *bitmat.Matrix
	// Block is the block's index within the enclosing solve — telemetry
	// only (round spans and progress samples are labelled with it).
	Block int
	// Start is the first bound to decide — heuristic depth − 1, exactly
	// where the sequential narrowing loop starts.
	Start int
	// LB is the lower bound: a bound proven satisfiable at LB ends the race
	// (optimal by bound).
	LB int
	// Strategies are the racer configurations (at least one).
	Strategies []Strategy
	// StrategyBudgets optionally caps each racer's lifetime conflicts
	// across the whole race (aligned with Strategies; ≤ 0 = uncapped). A
	// racer that exhausts its cap drops out of subsequent rounds. This is
	// how tests force each strategy to win in turn.
	StrategyBudgets []int64
	// ConflictBudget is the block's shared budget with winner-side
	// accounting: only the round winner's conflicts are charged, so racing
	// does not exhaust a budget K× faster than the sequential loop. ≤ 0
	// means unlimited.
	ConflictBudget int64
	// Deadline is the shared wall-clock deadline (zero = none).
	Deadline time.Time
	// ShareClauses exchanges short glue clauses between same-family racers.
	ShareClauses bool
	// Chunk is the conflict-chunk size between cancellation/import points
	// (default 4096).
	Chunk int64
	// HeadStart delays the portfolio: the first strategy runs alone with
	// this many conflicts per round, and the competitors are only built
	// and launched when a round survives the head start (0 = default 3000,
	// negative = race from the first conflict). Easy instances thus pay no
	// racing overhead at all, and because the trigger is the solo racer's
	// own deterministic conflict count, the solo/raced decision — and with
	// it the whole result — stays a pure function of the input.
	HeadStart int64
}

// Outcome is what a race proved, plus its work accounting.
type Outcome struct {
	// BestBound is the lowest bound proven satisfiable (−1 if none was).
	BestBound int
	// UnsatProven reports that the round below the final BestBound (or the
	// Start bound itself when BestBound is −1) was proven unsatisfiable, so
	// the depth BestBound+1 (resp. Start+1) is optimal.
	UnsatProven bool
	// Rounds is the number of depth-decision rounds run (SAT calls).
	Rounds int
	// Wins counts round wins per strategy name.
	Wins map[string]int
	// Winner is the strategy that decided the final round ("" when the race
	// ended on budgets rather than a verdict).
	Winner string
	// WinnerConflicts is the total conflicts spent by round winners — the
	// work the sequential loop would also have had to do.
	WinnerConflicts int64
	// LoserConflicts is the total conflicts spent by cancelled or exhausted
	// racers — the cost of racing.
	LoserConflicts int64
	// SharedExported and SharedImported count exchange traffic.
	SharedExported, SharedImported int64
	// Partition is the model of the final satisfiable round when that round
	// was decided by the solo head-start phase (a deterministic
	// single-solver narrowing loop, so the model needs no canonical
	// re-derivation) — including races that escalated only afterwards, for
	// the closing UNSAT round. nil when a competitor decided the final
	// satisfiable bound or no bound was proven satisfiable.
	Partition *rect.Partition
	// Escalated reports that the competitors were actually built and
	// raced (false = the solo head start decided every round).
	Escalated bool
	// TimedOut reports that budgets, the deadline or cancellation ended the
	// race before a verdict.
	TimedOut bool
	// Canceled reports the context was canceled.
	Canceled bool
}

// racer is one strategy's persistent state across rounds.
type racer struct {
	id       int
	strat    Strategy
	enc      encode.Encoder
	ex       *Exchange
	cursor   uint64
	cap      int64 // lifetime conflict cap (≤0 = none)
	spent    int64
	imported int64
	out      bool // dropped out (cap exhausted)
}

// Race runs the per-bound strategy competition from spec.Start down to
// spec.LB. The first strategy starts alone; when a round survives its
// conflict head start, the remaining strategies are built (at spec.Start,
// so their variable layouts match for clause sharing, then narrowed into
// lockstep) and every subsequent decision is raced: one goroutine per live
// racer, the first to decide the bound wins, and the rest are cancelled
// through SetInterrupt. Racers keep their solver state (learnt clauses,
// phases, activities) across rounds, narrowing in lockstep after every
// satisfiable verdict.
func Race(ctx context.Context, spec RaceSpec) *Outcome {
	out := &Outcome{BestBound: -1, Wins: map[string]int{}}
	if spec.Start < spec.LB || len(spec.Strategies) == 0 {
		return out
	}
	chunk := spec.Chunk
	if chunk <= 0 {
		chunk = 4096
	}
	headStart := spec.HeadStart
	if headStart == 0 {
		headStart = 3000
	}

	var ex *Exchange
	attachHook := func(r *racer) {
		if !spec.ShareClauses || r.enc.CoreVars() == 0 {
			return
		}
		if ex == nil {
			ex = NewExchange(0)
		}
		r.ex = ex
		coreVars := r.enc.CoreVars()
		id := r.id
		r.enc.Solver().SetLearntHook(func(lits []sat.Lit, lbd int) {
			if lbd > ShareMaxLBD || len(lits) > ShareMaxLen || len(lits) == 0 {
				return
			}
			for _, l := range lits {
				if int(l.Var()) >= coreVars {
					return
				}
			}
			ex.Publish(id, lits, lbd)
		})
	}
	newRacer := func(i int) *racer {
		r := &racer{id: i, strat: spec.Strategies[i], enc: spec.Strategies[i].NewEncoder(spec.M, spec.Start)}
		if i < len(spec.StrategyBudgets) {
			r.cap = spec.StrategyBudgets[i]
		}
		return r
	}

	racers := []*racer{newRacer(0)}
	defer func() {
		for _, r := range racers {
			r.enc.Solver().SetLearntHook(nil)
		}
		if ex != nil {
			out.SharedExported = ex.Exported()
		}
		for _, r := range racers {
			out.SharedImported += r.imported
		}
	}()

	// The solo phase captures the model of each Sat round it decides; the
	// capture survives escalation and is returned whenever it still matches
	// the final BestBound, so a race that escalates only for the closing
	// UNSAT round spares the caller the canonical re-derivation.
	var soloPartition *rect.Partition
	soloBound := -2
	defer func() {
		if soloPartition != nil && out.BestBound == soloBound {
			out.Partition = soloPartition
		} else {
			out.Partition = nil
		}
	}()

	// escalate builds the competitors at spec.Start (identical variable
	// layout per family, so sharing stays sound) and narrows them into the
	// current round's bound.
	escalate := func(b int) {
		out.Escalated = true
		attachHook(racers[0])
		for i := 1; i < len(spec.Strategies); i++ {
			r := newRacer(i)
			for nb := spec.Start; nb > b; nb-- {
				r.enc.Narrow()
			}
			attachHook(r)
			racers = append(racers, r)
		}
	}

	remaining := spec.ConflictBudget // ≤0: unlimited
	charge := func(winSpent int64) bool {
		if spec.ConflictBudget <= 0 {
			return true
		}
		remaining -= winSpent
		return remaining > 0
	}

	for b := spec.Start; b >= spec.LB; b-- {
		var (
			status    sat.Status
			winner    int
			winSpent  int64
			loseSpent int64
		)
		_, rsp := obs.StartSpan(ctx, "round")
		rsp.SetAttrInt("bound", int64(b))
		solo := !out.Escalated && len(spec.Strategies) > 1 && headStart > 0
		if solo {
			stopProgress := soloProgress(ctx, racers[0], spec.Block, b, spec.LB)
			status, winSpent = racers[0].soloAttempt(ctx, spec.Deadline, headStart, remaining)
			stopProgress()
			out.WinnerConflicts += winSpent
			if status == sat.Unknown {
				if ctx.Err() != nil || deadlineExpired(spec.Deadline) || !charge(winSpent) {
					out.TimedOut = true
					out.Canceled = ctx.Err() != nil
					out.Winner = "" // any earlier round's winner did not decide this block
					rsp.SetAttr("status", status.String())
					rsp.End()
					return out
				}
				// Note: a lead racer that exhausted its own strategy cap
				// also lands here — the competitors still get their shot.
				// The head start was not enough: bring in the portfolio and
				// re-run this bound as a full race (racer 0 keeps its
				// learnt state and continues from where it stopped).
				escalate(b)
				status, winner, winSpent, loseSpent = runRound(ctx, racers, spec.Deadline, chunk, remaining)
				out.WinnerConflicts += winSpent
				out.LoserConflicts += loseSpent
			}
		} else {
			if !out.Escalated && len(spec.Strategies) > 1 {
				escalate(b)
			}
			status, winner, winSpent, loseSpent = runRound(ctx, racers, spec.Deadline, chunk, remaining)
			out.WinnerConflicts += winSpent
			out.LoserConflicts += loseSpent
		}
		out.Rounds++
		if status == sat.Unknown {
			out.TimedOut = true
			out.Canceled = ctx.Err() != nil
			out.Winner = "" // any earlier round's winner did not decide this block
			rsp.SetAttr("status", status.String())
			rsp.End()
			return out
		}
		name := racers[winner].strat.Name
		out.Wins[name]++
		out.Winner = name
		rsp.SetAttr("status", status.String())
		rsp.SetAttr("winner", name)
		rsp.SetAttrInt("conflicts", winSpent)
		rsp.End()
		if status == sat.Unsat {
			out.UnsatProven = true
			return out
		}
		out.BestBound = b
		if !out.Escalated {
			// Solo phase: capture the model now — it is the deterministic
			// narrowing loop's own partition, so the caller can skip the
			// canonical re-derivation. A readout failure just falls back.
			if p, err := racers[0].enc.ReadPartition(); err == nil {
				soloPartition, soloBound = p, b
			} else {
				soloPartition = nil
			}
		}
		if b == spec.LB {
			return out // optimal by bound
		}
		if !charge(winSpent) {
			out.TimedOut = true
			out.Winner = "" // the block's final round went undecided
			return out
		}
		for _, r := range racers {
			r.enc.Narrow()
		}
	}
	return out
}

// soloProgress installs the sampled search-telemetry hook on the lead racer
// for one solo round and returns the uninstaller. Solo only: the hook and
// soloAttempt run on Race's own goroutine, so the captured bound needs no
// synchronization — raced rounds (runRound) deliberately carry no hook.
// No-op on untraced contexts.
func soloProgress(ctx context.Context, r *racer, block, bound, lb int) func() {
	every := obs.ProgressEvery(ctx)
	if every <= 0 {
		return func() {}
	}
	s := r.enc.Solver()
	s.SetProgress(every, func(p sat.Progress) {
		obs.AddProgress(ctx, obs.ProgressSample{
			Time:         time.Now(),
			Block:        block,
			Bound:        bound,
			LB:           lb,
			Conflicts:    p.Conflicts,
			Restarts:     p.Restarts,
			Propagations: p.Propagations,
			Learnts:      p.Learnts,
		})
	})
	return func() { s.SetProgress(0, nil) }
}

// soloAttempt is the head-start phase of a round: the lead racer alone, one
// bounded budget, no competitors to cancel it.
func (r *racer) soloAttempt(ctx context.Context, deadline time.Time, headStart, roundCap int64) (sat.Status, int64) {
	if ctx.Err() != nil || deadlineExpired(deadline) {
		return sat.Unknown, 0
	}
	budget := headStart
	if r.cap > 0 {
		rem := r.cap - r.spent
		if rem <= 0 {
			r.out = true
			return sat.Unknown, 0
		}
		if rem < budget {
			budget = rem
		}
	}
	if roundCap > 0 && roundCap < budget {
		budget = roundCap
	}
	s := r.enc.Solver()
	s.SetInterrupt(func() bool { return ctx.Err() != nil })
	defer s.SetInterrupt(nil)
	s.SetConflictBudget(budget)
	before := s.Conflicts
	st := r.enc.Solve()
	spent := s.Conflicts - before
	r.spent += spent
	if st != sat.Unknown {
		s.SetConflictBudget(-1)
	} else if r.cap > 0 && r.cap-r.spent <= 0 {
		r.out = true
	}
	return st, spent
}

// runRound races all live racers on the current bound. It returns the round
// status (Unknown when every racer gave up), the winning racer index and
// the conflicts spent by the winner and by everyone else. roundCap bounds
// any single racer's spend this round (≤0 = unbounded) so the shared budget
// is honoured even when no racer reaches a verdict.
func runRound(ctx context.Context, racers []*racer, deadline time.Time, chunk, roundCap int64) (sat.Status, int, int64, int64) {
	var (
		winner    atomic.Int32
		status    sat.Status // written once by the CAS winner before close(done)
		winSpent  int64      // written by the CAS winner
		loseSpent atomic.Int64
		done      = make(chan struct{})
		wg        sync.WaitGroup
	)
	winner.Store(-1)
	for _, r := range racers {
		if r.out {
			continue
		}
		wg.Add(1)
		go func(r *racer) {
			defer wg.Done()
			st, spent := r.solveRound(ctx, deadline, done, chunk, roundCap)
			if st != sat.Unknown {
				if winner.CompareAndSwap(-1, int32(r.id)) {
					status = st
					winSpent = spent
					close(done)
					return
				}
				// Lost the CAS: the winner exists and closes done after
				// writing status, so waiting on done makes reading it safe.
				<-done
				if st != status {
					// Two sound solvers cannot disagree on a decision
					// problem; if they do, clause sharing (or a solver bug)
					// corrupted a racer. Fail loudly rather than return a
					// wrong verdict.
					panic(fmt.Sprintf("portfolio: racers disagree on bound (%v vs %v)", st, status))
				}
			}
			loseSpent.Add(spent)
		}(r)
	}
	wg.Wait()
	if w := winner.Load(); w >= 0 {
		return status, int(w), winSpent, loseSpent.Load()
	}
	return sat.Unknown, -1, 0, loseSpent.Load()
}

// solveRound runs one racer's conflict-chunked solve loop for the current
// bound, polling the round's done channel and the context through the
// solver interrupt so a decided round cancels mid-search.
func (r *racer) solveRound(ctx context.Context, deadline time.Time, done <-chan struct{}, chunk, roundCap int64) (sat.Status, int64) {
	s := r.enc.Solver()
	s.SetInterrupt(func() bool {
		select {
		case <-done:
			return true
		default:
		}
		return ctx.Err() != nil
	})
	defer s.SetInterrupt(nil)

	var spent int64
	for {
		select {
		case <-done:
			return sat.Unknown, spent
		default:
		}
		if ctx.Err() != nil || deadlineExpired(deadline) {
			return sat.Unknown, spent
		}
		budget := chunk
		if r.cap > 0 {
			rem := r.cap - r.spent
			if rem <= 0 {
				r.out = true
				return sat.Unknown, spent
			}
			if rem < budget {
				budget = rem
			}
		}
		if roundCap > 0 {
			if rem := roundCap - spent; rem <= 0 {
				return sat.Unknown, spent
			} else if rem < budget {
				budget = rem
			}
		}
		// Import pending shared clauses at the root, between chunks — the
		// only point where the solver is guaranteed to be at level 0.
		if r.ex != nil {
			r.cursor = r.ex.Collect(r.cursor, r.id, func(lits []sat.Lit, lbd int) {
				if s.ImportLearnt(lits, lbd) {
					r.imported++
				}
			})
		}
		s.SetConflictBudget(budget)
		before := s.Conflicts
		st := r.enc.Solve()
		spent += s.Conflicts - before
		r.spent += s.Conflicts - before
		if st != sat.Unknown {
			s.SetConflictBudget(-1)
			return st, spent
		}
	}
}

// deadlineExpired reports whether a nonzero deadline has passed.
func deadlineExpired(deadline time.Time) bool {
	return !deadline.IsZero() && !time.Now().Before(deadline)
}
