// Package portfolio implements per-block strategy racing for the SAP
// narrowing loop: K diversely-configured solver/encoder pairs attack the
// same depth-decision problem concurrently, the first to answer wins the
// round, and the losers are cancelled through the solver's interrupt hook.
// No single configuration dominates the Table I suites — the hard UNSAT
// tails want incremental narrowing with symmetry breaking, easy SAT
// instances often fall faster to Luby restarts or destructive narrowing —
// so racing takes the per-instance minimum at the price of redundant work,
// which clause sharing (see exchange.go) partly refunds.
//
// Determinism contract: a race only ever decides *statuses* (is depth ≤ b
// feasible?), which are properties of the matrix and therefore identical no
// matter which racer answers first — so depth, optimality and certificate
// always match the sequential solver's. The winning partition is re-derived
// by the caller with a fresh canonical solver at the proven bound, a pure
// function of (matrix, bound, options), so the partition too is identical
// regardless of race timing or which racer won (see core.solveBlockPortfolio).
package portfolio

import (
	"fmt"
	"strings"

	"repro/internal/bitmat"
	"repro/internal/encode"
	"repro/internal/sat"
)

// Encoding selects the CNF compilation a strategy races with.
type Encoding int

const (
	// EncodingOneHot is the direct slot encoding.
	EncodingOneHot Encoding = iota
	// EncodingLog is the bit-vector encoding (no clause sharing).
	EncodingLog
)

// Strategy is one racer configuration: an encoder shape plus the solver's
// search heuristics.
type Strategy struct {
	// Name identifies the strategy in stats, metrics and wire options.
	Name string
	// Encoding selects the CNF compilation.
	Encoding Encoding
	// AMO selects the at-most-one encoding (one-hot only).
	AMO encode.AMO
	// Destructive narrows by unit clauses instead of selector assumptions.
	Destructive bool
	// NoSymmetryBreaking drops the slot-ordering clauses (one-hot only).
	NoSymmetryBreaking bool
	// Solver is the CDCL heuristic configuration.
	Solver sat.Config
}

// NewEncoder builds the strategy's encoder for r_B(m) ≤ b with its solver
// configuration applied.
func (st Strategy) NewEncoder(m *bitmat.Matrix, b int) encode.Encoder {
	var enc encode.Encoder
	switch {
	case st.Encoding == EncodingLog && st.Destructive:
		enc = encode.NewLog(m, b)
	case st.Encoding == EncodingLog:
		enc = encode.NewLogIncremental(m, b)
	default:
		enc = encode.NewOneHotConfig(m, b, encode.OneHotConfig{
			AMO:                 st.AMO,
			Incremental:         !st.Destructive,
			DisableSlotOrdering: st.NoSymmetryBreaking,
		})
	}
	st.Solver.ApplyTo(enc.Solver())
	return enc
}

// equivalent reports whether two strategies describe the same configuration
// (names aside), so the default set never races a clone of the canonical
// strategy against itself.
func (st Strategy) equivalent(o Strategy) bool {
	return st.Encoding == o.Encoding && st.AMO == o.AMO &&
		st.Destructive == o.Destructive &&
		st.NoSymmetryBreaking == o.NoSymmetryBreaking &&
		st.Solver == o.Solver
}

// Canonical is the default single-strategy configuration: incremental
// one-hot with native AMO propagation, slot-ordering symmetry breaking and
// Glucose restarts — the same configuration core.Solve uses when racing is
// off.
func Canonical() Strategy {
	return Strategy{Name: "canonical", Solver: sat.DefaultConfig()}
}

// variants is the diversity pool the default set draws from, ordered by how
// often each setting wins somewhere on the Table I suites (PR 1's ablation
// matrix). Every entry differs from Canonical in exactly the dimension its
// name states.
func variants() []Strategy {
	def := sat.DefaultConfig()
	luby := def
	luby.LubyRestarts = true
	noPhase := def
	noPhase.PhaseSaving = false
	glue4 := def
	glue4.LBDCap = 4
	return []Strategy{
		{Name: "destructive", Destructive: true, Solver: def},
		{Name: "luby", Solver: luby},
		{Name: "no-phase", Solver: noPhase},
		{Name: "seq-amo", AMO: encode.AMOSequential, Solver: def},
		// native-amo is the canonical configuration under its explicit name —
		// it lets -strategies race the native propagator against the encoded
		// ablations below (the default pool skips it as a canonical clone).
		{Name: "native-amo", Solver: def},
		{Name: "pairwise-amo", AMO: encode.AMOPairwise, Solver: def},
		{Name: "glue4", Solver: glue4},
		{Name: "no-symbreak", NoSymmetryBreaking: true, Solver: def},
		{Name: "luby-destructive", Destructive: true, Solver: luby},
		{Name: "log", Encoding: EncodingLog, Solver: def},
	}
}

// UnknownStrategyError reports a strategy name that resolves to nothing,
// carrying the full valid-name list so callers (CLI flag validation, wire
// option decoding) can surface it structurally instead of re-deriving it.
type UnknownStrategyError struct {
	Name  string
	Valid []string
}

func (e *UnknownStrategyError) Error() string {
	return fmt.Sprintf("portfolio: unknown strategy %q (valid: %s)",
		e.Name, strings.Join(e.Valid, ", "))
}

// ByName resolves a strategy name ("canonical" or any variant name). The
// error, when non-nil, is an *UnknownStrategyError.
func ByName(name string) (Strategy, error) {
	if name == "canonical" {
		return Canonical(), nil
	}
	for _, v := range variants() {
		if v.Name == name {
			return v, nil
		}
	}
	return Strategy{}, &UnknownStrategyError{Name: name, Valid: Names()}
}

// Names lists every known strategy name, canonical first.
func Names() []string {
	out := []string{"canonical"}
	for _, v := range variants() {
		out = append(out, v.Name)
	}
	return out
}

// DefaultStrategies builds a k-strategy racing set: the base (canonical)
// configuration first, then k−1 variants chosen by a deterministic shuffle
// of the diversity pool under seed — so every block races the same set for
// the same matrix, but different blocks diversify differently. Variants
// equivalent to base are skipped. k is clamped to the pool size + 1.
func DefaultStrategies(base Strategy, k int, seed uint64) []Strategy {
	if base.Name == "" {
		base.Name = "canonical"
	}
	out := []Strategy{base}
	if k <= 1 {
		return out
	}
	pool := variants()
	kept := pool[:0]
	for _, v := range pool {
		if !v.equivalent(base) {
			kept = append(kept, v)
		}
	}
	pool = kept
	rng := splitmix64(seed)
	for i := len(pool) - 1; i > 0; i-- {
		j := int(rng() % uint64(i+1))
		pool[i], pool[j] = pool[j], pool[i]
	}
	for _, v := range pool {
		if len(out) == k {
			break
		}
		out = append(out, v)
	}
	return out
}

// Resolve maps strategy names to configurations, substituting base for
// "canonical" so server/CLI option overlays keep applying to racer 0.
func Resolve(base Strategy, names []string) ([]Strategy, error) {
	out := make([]Strategy, 0, len(names))
	for _, n := range names {
		if n == "canonical" {
			b := base
			b.Name = "canonical"
			out = append(out, b)
			continue
		}
		st, err := ByName(n)
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
	return out, nil
}

// Seed hashes a matrix into a strategy-selection seed (FNV-1a over the
// dimensions and set-bit positions): deterministic across runs, distinct
// across blocks.
func Seed(m *bitmat.Matrix) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(x uint64) {
		h ^= x
		h *= prime
	}
	mix(uint64(m.Rows()))
	mix(uint64(m.Cols()))
	m.ForEachOne(func(i, j int) {
		mix(uint64(i)<<32 | uint64(uint32(j)))
	})
	return h
}

// splitmix64 returns a deterministic 64-bit PRNG (Steele et al.) for the
// strategy shuffle — math/rand would work, but an explicit tiny generator
// keeps the block→strategy mapping stable across Go releases.
func splitmix64(seed uint64) func() uint64 {
	x := seed
	return func() uint64 {
		x += 0x9E3779B97F4A7C15
		z := x
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
}
