package portfolio

import (
	"context"
	"testing"
	"time"

	"repro/internal/bitmat"
	"repro/internal/rowpack"
	"repro/internal/sat"
)

func fig1b(t testing.TB) *bitmat.Matrix {
	t.Helper()
	return bitmat.MustParse("101100\n010011\n101010\n010101\n111000\n000111")
}

func TestNamesResolve(t *testing.T) {
	for _, name := range Names() {
		st, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if st.Name != name {
			t.Fatalf("ByName(%q) returned %q", name, st.Name)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown strategy resolved")
	}
}

func TestDefaultStrategiesDeterministic(t *testing.T) {
	base := Canonical()
	a := DefaultStrategies(base, 4, 42)
	b := DefaultStrategies(base, 4, 42)
	if len(a) != 4 || len(b) != 4 {
		t.Fatalf("expected 4 strategies, got %d and %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatalf("same seed produced different sets: %v vs %v", a, b)
		}
	}
	if a[0].Name != "canonical" {
		t.Fatalf("strategy 0 must be the base, got %q", a[0].Name)
	}
	seen := map[string]bool{}
	for _, st := range a {
		if seen[st.Name] {
			t.Fatalf("duplicate strategy %q", st.Name)
		}
		seen[st.Name] = true
	}
	// A different seed may reorder the companions.
	c := DefaultStrategies(base, 9, 7)
	if len(c) != 9 {
		t.Fatalf("k beyond the pool should clamp to pool+1, got %d", len(c))
	}
}

func TestSeedStableAndDiscriminating(t *testing.T) {
	m := fig1b(t)
	if Seed(m) != Seed(m.Clone()) {
		t.Fatal("seed not a function of the matrix")
	}
	other := m.Clone()
	other.Set(0, 1, true)
	if Seed(m) == Seed(other) {
		t.Fatal("seed collision on a one-bit flip (vanishingly unlikely)")
	}
}

func TestExchangePublishCollect(t *testing.T) {
	ex := NewExchange(4)
	ex.Publish(0, []sat.Lit{sat.PosLit(1), sat.NegLit(2)}, 2)
	ex.Publish(1, []sat.Lit{sat.PosLit(3)}, 1)

	var got [][]sat.Lit
	cursor := ex.Collect(0, 0, func(lits []sat.Lit, lbd int) {
		got = append(got, append([]sat.Lit(nil), lits...))
	})
	if len(got) != 1 || got[0][0] != sat.PosLit(3) {
		t.Fatalf("collector 0 should only see racer 1's clause, got %v", got)
	}
	// Nothing new: cursor advanced to head.
	n := 0
	cursor = ex.Collect(cursor, 0, func([]sat.Lit, int) { n++ })
	if n != 0 {
		t.Fatalf("stale cursor re-delivered %d clauses", n)
	}
	// Lapping: publish 2×capacity more, the stale reader resumes at the
	// oldest surviving entry instead of reading recycled slots twice.
	for i := 0; i < 8; i++ {
		ex.Publish(1, []sat.Lit{sat.PosLit(sat.Var(10 + i))}, 1)
	}
	n = 0
	ex.Collect(cursor, 0, func([]sat.Lit, int) { n++ })
	if n != 4 {
		t.Fatalf("lapped reader should see exactly capacity entries, got %d", n)
	}
	if ex.Exported() != 10 {
		t.Fatalf("exported = %d, want 10", ex.Exported())
	}
}

// TestRaceFig1bUnsatImmediately: the heuristic finds depth 5 (optimal), so
// the race's only round proves bound 4 UNSAT.
func TestRaceFig1bUnsatImmediately(t *testing.T) {
	m := fig1b(t)
	ub := rowpack.Pack(m, rowpack.Options{Trials: 100, Seed: 1}).Depth()
	if ub != 5 {
		t.Fatalf("fig1b heuristic depth = %d, want 5", ub)
	}
	for _, share := range []bool{false, true} {
		out := Race(context.Background(), RaceSpec{
			M:            m,
			Start:        ub - 1,
			LB:           m.Rank(),
			Strategies:   DefaultStrategies(Canonical(), 3, Seed(m)),
			ShareClauses: share,
		})
		if !out.UnsatProven || out.BestBound != -1 {
			t.Fatalf("share=%v: want immediate UNSAT, got %+v", share, out)
		}
		if out.Rounds != 1 || out.Winner == "" {
			t.Fatalf("share=%v: want one decided round, got %+v", share, out)
		}
		if out.Wins[out.Winner] != 1 {
			t.Fatalf("share=%v: winner not recorded in Wins: %+v", share, out)
		}
	}
}

// TestRaceNarrowsToBound: a matrix whose heuristic overshoots races down to
// the rank bound and stops there, satisfiable.
func TestRaceNarrowsToBound(t *testing.T) {
	// Identity-like matrix: depth = rank = 3, but give the race a start
	// above the bound so it must prove Sat rounds on the way down.
	m := bitmat.MustParse("100\n010\n001")
	out := Race(context.Background(), RaceSpec{
		M:          m,
		Start:      4,
		LB:         3,
		Strategies: DefaultStrategies(Canonical(), 3, Seed(m)),
	})
	if out.BestBound != 3 || out.UnsatProven {
		t.Fatalf("want Sat down to bound 3, got %+v", out)
	}
	if out.Rounds != 2 {
		t.Fatalf("want 2 rounds (bounds 4 and 3), got %+v", out)
	}
}

// TestRaceStrategyBudgetsForceWinner: starving all but one racer forces the
// verdict to come from the survivor, and the statuses stay correct.
func TestRaceStrategyBudgetsForceWinner(t *testing.T) {
	m := fig1b(t)
	strategies := DefaultStrategies(Canonical(), 3, Seed(m))
	for forced := range strategies {
		budgets := make([]int64, len(strategies))
		for i := range budgets {
			budgets[i] = 1
		}
		budgets[forced] = 0 // uncapped
		out := Race(context.Background(), RaceSpec{
			M:               m,
			Start:           4,
			LB:              m.Rank(),
			Strategies:      strategies,
			StrategyBudgets: budgets,
		})
		if !out.UnsatProven {
			t.Fatalf("forced=%d: race failed to prove UNSAT: %+v", forced, out)
		}
		// The bound-4 refutation needs well over one conflict, so only the
		// uncapped racer can have delivered it.
		if out.Winner != strategies[forced].Name {
			t.Fatalf("forced=%d: winner = %q, want %q", forced, out.Winner, strategies[forced].Name)
		}
	}
}

// TestRaceGlobalBudgetExhausts: a tiny shared budget ends the race undecided.
func TestRaceGlobalBudgetExhausts(t *testing.T) {
	m := fig1b(t)
	out := Race(context.Background(), RaceSpec{
		M:              m,
		Start:          4,
		LB:             m.Rank(),
		Strategies:     DefaultStrategies(Canonical(), 3, Seed(m)),
		ConflictBudget: 1,
		Chunk:          1,
	})
	if !out.TimedOut {
		t.Fatalf("want TimedOut on a 1-conflict budget, got %+v", out)
	}
}

// TestRaceCanceledContext: cancellation surfaces as TimedOut+Canceled.
func TestRaceCanceledContext(t *testing.T) {
	m := fig1b(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out := Race(ctx, RaceSpec{
		M:          m,
		Start:      4,
		LB:         m.Rank(),
		Strategies: DefaultStrategies(Canonical(), 3, Seed(m)),
		Chunk:      64,
	})
	if !out.TimedOut || !out.Canceled {
		t.Fatalf("want canceled outcome, got %+v", out)
	}
}

// TestRaceDeadline: an already-expired deadline ends the race undecided.
func TestRaceDeadline(t *testing.T) {
	m := fig1b(t)
	out := Race(context.Background(), RaceSpec{
		M:          m,
		Start:      4,
		LB:         m.Rank(),
		Strategies: DefaultStrategies(Canonical(), 3, Seed(m)),
		Deadline:   time.Now().Add(-time.Second),
	})
	if !out.TimedOut || out.Canceled {
		t.Fatalf("want deadline timeout, got %+v", out)
	}
}

// TestRaceSharingTraffic: with sharing on, a conflict-heavy UNSAT proof
// exports glue clauses and at least lets other racers import them without
// corrupting the verdict (the disagreement panic in runRound guards
// soundness on every test that races).
func TestRaceSharingTraffic(t *testing.T) {
	m := fig1b(t)
	// Pin an all-one-hot set (every racer has CoreVars > 0 and therefore a
	// sharing hook): the default shuffle may draw the log encoder, which
	// shares nothing and can win this tiny round before the sharers learn.
	sts, err := Resolve(Canonical(), []string{"canonical", "pairwise-amo", "seq-amo", "destructive"})
	if err != nil {
		t.Fatal(err)
	}
	out := Race(context.Background(), RaceSpec{
		M:            m,
		Start:        4,
		LB:           m.Rank(),
		Strategies:   sts,
		ShareClauses: true,
		Chunk:        256, // frequent import points
		HeadStart:    -1,  // race from the first conflict
	})
	if !out.Escalated {
		t.Fatal("HeadStart<0 must race immediately")
	}
	if !out.UnsatProven {
		t.Fatalf("want UNSAT, got %+v", out)
	}
	if out.SharedExported == 0 {
		t.Fatal("sharing enabled but nothing was exported")
	}
}
