package portfolio

import (
	"sync/atomic"

	"repro/internal/sat"
)

// Sharing filters (per the racing design): only short glue clauses travel
// between racers — long or high-LBD clauses cost more to import than they
// prune, and the exchange is bounded anyway.
const (
	// ShareMaxLBD caps the learn-time LBD of exchanged clauses.
	ShareMaxLBD = 2
	// ShareMaxLen caps the length of exchanged clauses.
	ShareMaxLen = 8
	// defaultExchangeCap is the ring capacity in clauses.
	defaultExchangeCap = 512
)

// sharedClause is one immutable exchange entry. Entries are never mutated
// after publication; the atomic slot pointer store/load pair provides the
// happens-before edge that makes the literal slice safe to read.
type sharedClause struct {
	src  int // publishing racer id, so racers skip their own exports
	lbd  int
	lits []sat.Lit
}

// Exchange is a bounded lock-free multi-producer multi-consumer clause ring.
// Publishers claim a slot with an atomic counter increment and store an
// immutable entry pointer; consumers scan forward from a private cursor.
// The ring intentionally trades completeness for freedom from locks: a slow
// consumer that gets lapped misses the overwritten clauses, and a consumer
// may occasionally observe a newer entry in a recycled slot twice — both
// are harmless, because every published clause is a sound implicate and
// ImportLearnt normalizes duplicates away.
type Exchange struct {
	slots    []atomic.Pointer[sharedClause]
	head     atomic.Uint64
	exported atomic.Int64
}

// NewExchange builds a ring with the given capacity (default 512 when ≤ 0).
func NewExchange(capacity int) *Exchange {
	if capacity <= 0 {
		capacity = defaultExchangeCap
	}
	return &Exchange{slots: make([]atomic.Pointer[sharedClause], capacity)}
}

// Publish copies lits into the ring. src tags the publishing racer. Safe for
// concurrent use; never blocks.
func (x *Exchange) Publish(src int, lits []sat.Lit, lbd int) {
	e := &sharedClause{src: src, lbd: lbd, lits: append([]sat.Lit(nil), lits...)}
	i := x.head.Add(1) - 1
	x.slots[i%uint64(len(x.slots))].Store(e)
	x.exported.Add(1)
}

// Exported returns the number of clauses ever published.
func (x *Exchange) Exported() int64 { return x.exported.Load() }

// Collect visits every entry published since cursor that did not originate
// from racer src, and returns the new cursor. When the consumer has been
// lapped it resumes at the oldest surviving entry.
func (x *Exchange) Collect(cursor uint64, src int, fn func(lits []sat.Lit, lbd int)) uint64 {
	head := x.head.Load()
	capU := uint64(len(x.slots))
	if head-cursor > capU {
		cursor = head - capU
	}
	for i := cursor; i < head; i++ {
		e := x.slots[i%capU].Load()
		if e == nil || e.src == src {
			continue
		}
		fn(e.lits, e.lbd)
	}
	return head
}
