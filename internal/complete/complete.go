// Package complete implements the paper's future-work extension: rectangular
// addressing with vacancies. Array sites without atoms are "don't cares" —
// addressing them any number of times is harmless — so the problem becomes
// binary matrix completion rather than factorization: cover every required 1
// exactly once with rectangles that avoid required 0s, where rectangles may
// overlap freely on don't-care cells.
//
// Exploiting don't cares can only reduce the depth: any EBMF of the pattern
// is also a valid don't-care cover.
package complete

import (
	"errors"
	"fmt"

	"repro/internal/bitmat"
	"repro/internal/rect"
	"repro/internal/sat"
)

// Problem is a completion instance.
type Problem struct {
	// M marks the required 1s (qubits to address).
	M *bitmat.Matrix
	// DontCare marks sites that rectangles may cover freely (vacancies).
	// A cell must not be both required and don't-care.
	DontCare *bitmat.Matrix
}

// NewProblem validates and returns a completion instance.
func NewProblem(m, dontCare *bitmat.Matrix) (*Problem, error) {
	if m.Rows() != dontCare.Rows() || m.Cols() != dontCare.Cols() {
		return nil, fmt.Errorf("complete: pattern %d×%d vs mask %d×%d",
			m.Rows(), m.Cols(), dontCare.Rows(), dontCare.Cols())
	}
	for i := 0; i < m.Rows(); i++ {
		row := m.Row(i).Clone()
		row.And(dontCare.Row(i))
		if !row.IsZero() {
			return nil, fmt.Errorf("complete: cell (%d,%d) is both required and don't-care",
				i, row.NextOne(0))
		}
	}
	return &Problem{M: m, DontCare: dontCare}, nil
}

// cellKind classifies a cell of the array.
func (p *Problem) cellKind(i, j int) byte {
	switch {
	case p.M.Get(i, j):
		return '1'
	case p.DontCare.Get(i, j):
		return 'X'
	default:
		return '0'
	}
}

// Cover is a set of rectangles addressing the required pattern.
type Cover struct {
	P     *Problem
	Rects []rect.Rect
}

// Depth returns the number of rectangles.
func (c *Cover) Depth() int { return len(c.Rects) }

// Validation failure modes.
var (
	// ErrCoversZero marks a rectangle touching a required 0.
	ErrCoversZero = errors.New("complete: rectangle covers a required 0")
	// ErrMultiplyCovered marks a required 1 covered more than once.
	ErrMultiplyCovered = errors.New("complete: required 1 covered twice")
	// ErrUncovered marks a required 1 covered by no rectangle.
	ErrUncovered = errors.New("complete: required 1 uncovered")
)

// Validate checks the don't-care covering contract: no rectangle touches a
// required 0; every required 1 is covered exactly once; don't-care overlap
// is unrestricted.
func (c *Cover) Validate() error {
	m := c.P.M
	counts := bitmat.New(m.Rows(), m.Cols())
	for idx, r := range c.Rects {
		var fail error
		r.Rows.ForEachOne(func(i int) {
			if fail != nil {
				return
			}
			r.Cols.ForEachOne(func(j int) {
				if fail != nil {
					return
				}
				switch c.P.cellKind(i, j) {
				case '0':
					fail = fmt.Errorf("rectangle %d at (%d,%d): %w", idx, i, j, ErrCoversZero)
				case '1':
					if counts.Get(i, j) {
						fail = fmt.Errorf("rectangle %d at (%d,%d): %w", idx, i, j, ErrMultiplyCovered)
						return
					}
					counts.Set(i, j, true)
				}
			})
		})
		if fail != nil {
			return fail
		}
	}
	if !counts.Equal(m) {
		for i := 0; i < m.Rows(); i++ {
			missing := m.Row(i).Clone()
			missing.AndNot(counts.Row(i))
			if !missing.IsZero() {
				return fmt.Errorf("cell (%d,%d): %w", i, missing.NextOne(0), ErrUncovered)
			}
		}
	}
	return nil
}

// Greedy builds a cover by growing maximal rectangles around uncovered 1s:
// for each uncovered required 1 in row-major order, extend along the row
// over compatible columns, then down over compatible rows.
func Greedy(p *Problem) *Cover {
	m := p.M
	covered := bitmat.New(m.Rows(), m.Cols())
	cov := &Cover{P: p}
	m.ForEachOne(func(i, j int) {
		if covered.Get(i, j) {
			return
		}
		// Column set: uncovered 1s and don't-cares along row i, always
		// including j.
		cols := bitmat.NewVec(m.Cols())
		for cc := 0; cc < m.Cols(); cc++ {
			switch p.cellKind(i, cc) {
			case '1':
				if !covered.Get(i, cc) {
					cols.Set(cc, true)
				}
			case 'X':
				cols.Set(cc, true)
			}
		}
		// Row set: rows where every chosen column is an uncovered 1 or a
		// don't-care.
		rows := bitmat.NewVec(m.Rows())
		for rr := 0; rr < m.Rows(); rr++ {
			ok := true
			cols.ForEachOne(func(cc int) {
				if !ok {
					return
				}
				switch p.cellKind(rr, cc) {
				case '0':
					ok = false
				case '1':
					if covered.Get(rr, cc) {
						ok = false
					}
				}
			})
			if ok {
				rows.Set(rr, true)
			}
		}
		// Trim columns that cover no required 1 within the chosen rows;
		// they only constrain without helping (pure don't-care columns are
		// harmless but make rectangles gratuitously wide).
		cols.ForEachOne(func(cc int) {
			any := false
			rows.ForEachOne(func(rr int) {
				if p.cellKind(rr, cc) == '1' {
					any = true
				}
			})
			if !any {
				cols.Set(cc, false)
			}
		})
		r := rect.Rect{Rows: rows, Cols: cols}
		r.Rows.ForEachOne(func(rr int) {
			r.Cols.ForEachOne(func(cc int) {
				if p.cellKind(rr, cc) == '1' {
					covered.Set(rr, cc, true)
				}
			})
		})
		cov.Rects = append(cov.Rects, r)
	})
	return cov
}

// SolveExact finds a minimum-depth cover by SAT narrowing from the greedy
// upper bound, with an optional conflict budget (≤ 0 unlimited). It returns
// the best cover found and whether it is proved optimal.
func SolveExact(p *Problem, conflictBudget int64) (*Cover, bool) {
	best := Greedy(p)
	if best.Depth() <= 1 {
		return best, true
	}
	ones := p.M.OnesPositions()
	at := make(map[[2]int]int, len(ones))
	for idx, pos := range ones {
		at[pos] = idx
	}
	for b := best.Depth() - 1; b >= 1; b-- {
		s := sat.New()
		vars := make([][]sat.Var, len(ones))
		for e := range vars {
			vars[e] = make([]sat.Var, b)
			for k := range vars[e] {
				vars[e][k] = s.NewVar()
			}
		}
		for e := range vars {
			lits := make([]sat.Lit, b)
			for k := 0; k < b; k++ {
				lits[k] = sat.PosLit(vars[e][k])
			}
			s.AddClause(lits...)
			for k1 := 0; k1 < b; k1++ {
				for k2 := k1 + 1; k2 < b; k2++ {
					s.AddClause(sat.NegLit(vars[e][k1]), sat.NegLit(vars[e][k2]))
				}
			}
			// Symmetry breaking: entry e opens slots 0..e only.
			for k := e + 1; k < b; k++ {
				s.AddClause(sat.NegLit(vars[e][k]))
			}
		}
		// Closure with don't-cares: same rectangle forces required-1 crosses
		// into the rectangle, forbids 0 crosses, ignores don't-care crosses.
		for a := 0; a < len(ones); a++ {
			for c := a + 1; c < len(ones); c++ {
				i, j := ones[a][0], ones[a][1]
				i2, j2 := ones[c][0], ones[c][1]
				if i == i2 || j == j2 {
					continue
				}
				addCross := func(ci, cj int) bool {
					switch p.cellKind(ci, cj) {
					case '0':
						for k := 0; k < b; k++ {
							s.AddClause(sat.NegLit(vars[a][k]), sat.NegLit(vars[c][k]))
						}
						return true
					case '1':
						cross := at[[2]int{ci, cj}]
						for k := 0; k < b; k++ {
							s.AddClause(sat.NegLit(vars[a][k]), sat.NegLit(vars[c][k]),
								sat.PosLit(vars[cross][k]))
						}
					}
					return false
				}
				if addCross(i, j2) {
					continue // pair already fully conflicting
				}
				addCross(i2, j)
			}
		}
		if conflictBudget > 0 {
			s.SetConflictBudget(conflictBudget)
		}
		switch s.Solve() {
		case sat.Sat:
			cov := &Cover{P: p}
			byRect := make([][]int, b)
			for e := range vars {
				for k := 0; k < b; k++ {
					if s.Value(vars[e][k]) {
						byRect[k] = append(byRect[k], e)
						break
					}
				}
			}
			for _, entries := range byRect {
				if len(entries) == 0 {
					continue
				}
				r := rect.NewRect(p.M.Rows(), p.M.Cols())
				for _, e := range entries {
					r.Rows.Set(ones[e][0], true)
					r.Cols.Set(ones[e][1], true)
				}
				cov.Rects = append(cov.Rects, r)
			}
			if err := cov.Validate(); err != nil {
				// The decoded rectangles may sweep over don't-cares; that is
				// legal, but a required-0 violation would be an encoder bug.
				panic(fmt.Sprintf("complete: internal error: %v", err))
			}
			best = cov
		case sat.Unsat:
			return best, true
		default:
			return best, false
		}
	}
	return best, true
}
