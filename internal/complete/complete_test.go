package complete

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitmat"
	"repro/internal/core"
	"repro/internal/rect"
)

func mustProblem(t *testing.T, pattern, dontCare string) *Problem {
	t.Helper()
	p, err := NewProblem(bitmat.MustParse(pattern), bitmat.MustParse(dontCare))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewProblemRejectsOverlap(t *testing.T) {
	_, err := NewProblem(bitmat.MustParse("10\n00"), bitmat.MustParse("10\n00"))
	if err == nil {
		t.Fatal("required∩don't-care must be rejected")
	}
}

func TestNewProblemRejectsShapeMismatch(t *testing.T) {
	_, err := NewProblem(bitmat.New(2, 2), bitmat.New(3, 2))
	if err == nil {
		t.Fatal("shape mismatch must be rejected")
	}
}

func TestGreedyNoDontCaresMatchesPartitionSemantics(t *testing.T) {
	p := mustProblem(t, "110\n110\n001", "000\n000\n000")
	cov := Greedy(p)
	if err := cov.Validate(); err != nil {
		t.Fatal(err)
	}
	if cov.Depth() != 2 {
		t.Fatalf("depth = %d, want 2", cov.Depth())
	}
}

func TestDontCaresReduceDepth(t *testing.T) {
	// Pattern needs 2 rectangles without don't-cares; with the blocking 0
	// turned into a vacancy, one rectangle suffices.
	pattern := "11\n10"
	noDC := mustProblem(t, pattern, "00\n00")
	covNo, okNo := SolveExact(noDC, 0)
	if !okNo || covNo.Depth() != 2 {
		t.Fatalf("no-DC depth = %d (ok=%v), want 2", covNo.Depth(), okNo)
	}
	withDC := mustProblem(t, pattern, "00\n01")
	covDC, okDC := SolveExact(withDC, 0)
	if !okDC || covDC.Depth() != 1 {
		t.Fatalf("DC depth = %d (ok=%v), want 1", covDC.Depth(), okDC)
	}
	if err := covDC.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateDetectsZeroCoverage(t *testing.T) {
	p := mustProblem(t, "10\n00", "00\n00")
	cov := &Cover{P: p, Rects: []rect.Rect{rect.FromIndices(2, 2, []int{0}, []int{0, 1})}}
	if err := cov.Validate(); !errors.Is(err, ErrCoversZero) {
		t.Fatalf("got %v", err)
	}
}

func TestValidateDetectsDoubleCover(t *testing.T) {
	p := mustProblem(t, "10\n00", "00\n00")
	r := rect.FromIndices(2, 2, []int{0}, []int{0})
	cov := &Cover{P: p, Rects: []rect.Rect{r, r.Clone()}}
	if err := cov.Validate(); !errors.Is(err, ErrMultiplyCovered) {
		t.Fatalf("got %v", err)
	}
}

func TestValidateDetectsUncovered(t *testing.T) {
	p := mustProblem(t, "11\n00", "00\n00")
	cov := &Cover{P: p, Rects: []rect.Rect{rect.FromIndices(2, 2, []int{0}, []int{0})}}
	if err := cov.Validate(); !errors.Is(err, ErrUncovered) {
		t.Fatalf("got %v", err)
	}
}

func TestValidateAllowsDCOverlap(t *testing.T) {
	p := mustProblem(t, "101\n000", "010\n000")
	cov := &Cover{P: p, Rects: []rect.Rect{
		rect.FromIndices(2, 3, []int{0}, []int{0, 1}),
		rect.FromIndices(2, 3, []int{0}, []int{1, 2}),
	}}
	if err := cov.Validate(); err != nil {
		t.Fatalf("DC overlap must be legal: %v", err)
	}
}

func TestSolveExactZeroPattern(t *testing.T) {
	p := mustProblem(t, "00\n00", "10\n00")
	cov, ok := SolveExact(p, 0)
	if !ok || cov.Depth() != 0 {
		t.Fatalf("depth=%d ok=%v", cov.Depth(), ok)
	}
}

func TestSolveExactNeverWorseThanGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		m := bitmat.Random(rng, 5, 5, 0.4)
		dc := bitmat.New(5, 5)
		for i := 0; i < 5; i++ {
			for j := 0; j < 5; j++ {
				if !m.Get(i, j) && rng.Intn(4) == 0 {
					dc.Set(i, j, true)
				}
			}
		}
		p, err := NewProblem(m, dc)
		if err != nil {
			t.Fatal(err)
		}
		g := Greedy(p)
		if err := g.Validate(); err != nil {
			t.Fatalf("greedy invalid: %v", err)
		}
		e, _ := SolveExact(p, 50_000)
		if err := e.Validate(); err != nil {
			t.Fatalf("exact invalid: %v", err)
		}
		if e.Depth() > g.Depth() {
			t.Fatalf("exact %d worse than greedy %d", e.Depth(), g.Depth())
		}
	}
}

// Property: with an empty don't-care mask, the exact cover depth equals the
// binary rank (completion degenerates to factorization).
func TestQuickNoDCEqualsBinaryRank(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := bitmat.Random(rng, 1+rng.Intn(4), 1+rng.Intn(4), 0.5)
		p, err := NewProblem(m, bitmat.New(m.Rows(), m.Cols()))
		if err != nil {
			return false
		}
		cov, ok := SolveExact(p, 0)
		if !ok {
			return false
		}
		rb, err := core.BinaryRank(m)
		if err != nil {
			return false
		}
		return cov.Depth() == rb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: adding don't-cares never increases the optimal depth.
func TestQuickDCMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := bitmat.Random(rng, 1+rng.Intn(4), 1+rng.Intn(4), 0.5)
		empty := bitmat.New(m.Rows(), m.Cols())
		dc := bitmat.New(m.Rows(), m.Cols())
		for i := 0; i < m.Rows(); i++ {
			for j := 0; j < m.Cols(); j++ {
				if !m.Get(i, j) && rng.Intn(3) == 0 {
					dc.Set(i, j, true)
				}
			}
		}
		p0, err0 := NewProblem(m, empty)
		p1, err1 := NewProblem(m, dc)
		if err0 != nil || err1 != nil {
			return false
		}
		c0, ok0 := SolveExact(p0, 0)
		c1, ok1 := SolveExact(p1, 0)
		if !ok0 || !ok1 {
			return true
		}
		return c1.Depth() <= c0.Depth()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
