package benchgen

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitmat"
)

func TestRandomOccupancyRoughlyMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := Random(rng, 100, 100, 0.3)
	occ := m.Occupancy()
	if occ < 0.25 || occ > 0.35 {
		t.Fatalf("occupancy %.3f too far from 0.3", occ)
	}
}

func TestKnownOptimalCertifiedRank(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for k := 1; k <= 8; k++ {
		m, p := KnownOptimal(rng, 10, 10, k)
		if m.Rank() != k {
			t.Fatalf("k=%d: rank = %d", k, m.Rank())
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("k=%d: partition invalid: %v", k, err)
		}
		if p.Depth() != k {
			t.Fatalf("k=%d: partition depth %d", k, p.Depth())
		}
	}
}

func TestKnownOptimalPanicsOnBadRank(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	KnownOptimal(rand.New(rand.NewSource(1)), 3, 3, 4)
}

func TestGapStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for pairs := 2; pairs <= 5; pairs++ {
		m := Gap(rng, 10, 10, pairs)
		// Rows 2j and 2j+1 must be disjoint and sum to the same base row.
		base := m.Row(0).Clone()
		base.Or(m.Row(1))
		for j := 0; j < pairs; j++ {
			r1, r2 := m.Row(2*j), m.Row(2*j+1)
			if r1.Intersects(r2) {
				t.Fatalf("pair %d rows overlap", j)
			}
			sum := r1.Clone()
			sum.Or(r2)
			if !sum.Equal(base) {
				t.Fatalf("pair %d does not sum to the base row", j)
			}
			if r1.IsZero() || r2.IsZero() {
				t.Fatalf("pair %d has an empty part", j)
			}
		}
	}
}

func TestGapRankStructure(t *testing.T) {
	// Real rank of the 2k pair rows alone is at most k+1 (the paper's
	// "should be k+1": each pair can add at most one direction beyond the
	// shared base row; repeated splits may add fewer) and at least 2
	// whenever a split is nontrivial.
	rng := rand.New(rand.NewSource(4))
	sawFull := false
	for trial := 0; trial < 30; trial++ {
		for pairs := 2; pairs <= 5; pairs++ {
			m := Gap(rng, 2*pairs, 12, pairs) // no filler rows
			got := m.Rank()
			if got > pairs+1 || got < 2 {
				t.Fatalf("pairs=%d: rank %d outside [2, %d]\n%s", pairs, got, pairs+1, m)
			}
			if got == pairs+1 {
				sawFull = true
			}
		}
	}
	if !sawFull {
		t.Fatal("no instance reached the generic rank k+1 — construction degenerate")
	}
}

func TestGapPanicsOnTooManyPairs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Gap(rand.New(rand.NewSource(1)), 4, 4, 3)
}

func TestSuitesDeterministic(t *testing.T) {
	a := RandomSuite(7, 10, 10, []float64{0.3}, 3)
	b := RandomSuite(7, 10, 10, []float64{0.3}, 3)
	for i := range a {
		if !a[i].M.Equal(b[i].M) || a[i].Name != b[i].Name {
			t.Fatal("suites not deterministic")
		}
	}
}

func TestSuiteSizesAndNames(t *testing.T) {
	rs := RandomSuite(1, 10, 20, PaperOccupanciesSmall(), 2)
	if len(rs) != 18 {
		t.Fatalf("random suite size %d, want 18", len(rs))
	}
	os := OptSuite(1, 10, 10, 5, 2)
	if len(os) != 10 {
		t.Fatalf("opt suite size %d, want 10", len(os))
	}
	for _, ins := range os {
		if ins.KnownOptimal < 1 {
			t.Fatalf("%s missing known optimal", ins.Name)
		}
	}
	gs := GapSuite(1, 10, 10, []int{2, 3}, 4)
	if len(gs) != 8 {
		t.Fatalf("gap suite size %d, want 8", len(gs))
	}
	seen := map[string]bool{}
	for _, ins := range append(append(rs, os...), gs...) {
		if seen[ins.Name] {
			t.Fatalf("duplicate name %s", ins.Name)
		}
		seen[ins.Name] = true
	}
}

func TestPaperOccupancies(t *testing.T) {
	small := PaperOccupanciesSmall()
	if len(small) != 9 || small[0] != 0.1 || small[8] != 0.9 {
		t.Fatalf("small occupancies: %v", small)
	}
	large := PaperOccupanciesLarge()
	if len(large) != 5 || large[0] != 0.01 || large[4] != 0.20 {
		t.Fatalf("large occupancies: %v", large)
	}
}

func TestInstanceIORoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, _ := KnownOptimal(rng, 6, 6, 3)
	ins := Instance{Name: "t1", Family: FamilyOpt, M: m, KnownOptimal: 3}
	var buf bytes.Buffer
	if err := WriteInstance(&buf, ins); err != nil {
		t.Fatal(err)
	}
	back, err := ReadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "t1" || back.Family != FamilyOpt || back.KnownOptimal != 3 {
		t.Fatalf("metadata lost: %+v", back)
	}
	if !back.M.Equal(m) {
		t.Fatal("matrix changed in round trip")
	}
}

func TestSuiteFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	suite := GapSuite(9, 8, 8, []int{2}, 3)
	if err := SaveSuite(dir, suite); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSuite(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(suite) {
		t.Fatalf("loaded %d, want %d", len(back), len(suite))
	}
	for i := range back {
		if !back[i].M.Equal(suite[i].M) || back[i].GapPairs != suite[i].GapPairs {
			t.Fatalf("instance %d mismatch", i)
		}
	}
}

// Property: gap matrices have a real rank at most rows-pairs+1 (the paper:
// "total real rank equal to or slightly lower than m−k+1").
func TestQuickGapRankUpperBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pairs := 2 + rng.Intn(4)
		rows := 2*pairs + rng.Intn(4)
		m := Gap(rng, rows, 10, pairs)
		return m.Rank() <= rows-pairs+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: known-optimal matrices are binary with a valid k-partition and
// rank exactly k; the matrix must be reconstructible as the partition sum.
func TestQuickKnownOptimalReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(6)
		m, p := KnownOptimal(rng, 8, 8, k)
		if m.Rank() != k || p.Validate() != nil {
			return false
		}
		sum := bitmat.New(m.Rows(), m.Cols())
		for _, r := range p.Rects {
			r.Rows.ForEachOne(func(i int) {
				r.Cols.ForEachOne(func(j int) {
					if sum.Get(i, j) {
						// overlap would mean non-binary sum
						panic("overlap")
					}
					sum.Set(i, j, true)
				})
			})
		}
		return sum.Equal(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// BlockDiagSuite instances must decompose into at least the requested
// number of components (a gap block may itself split when one of its random
// tail rows shares no column with the rest), permuted or not, with entry
// counts preserved.
func TestBlockDiagSuiteComponents(t *testing.T) {
	for _, permute := range []bool{false, true} {
		for _, ins := range BlockDiagSuite(41, 4, 6, 6, 2, 3, permute) {
			if ins.Family != FamilyBlockDiag {
				t.Fatalf("wrong family %q", ins.Family)
			}
			d := bitmat.Decompose(ins.M)
			if len(d.Blocks) < 4 {
				t.Fatalf("%s: want ≥4 components, got %d", ins.Name, len(d.Blocks))
			}
			ones := 0
			for _, b := range d.Blocks {
				ones += b.M.Ones()
			}
			if ones != ins.M.Ones() {
				t.Fatalf("%s: blocks lose entries", ins.Name)
			}
		}
	}
}
