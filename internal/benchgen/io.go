package benchgen

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/bitmat"
)

// WriteInstance writes one instance in the package's text format: comment
// headers with metadata followed by the 0/1 matrix.
func WriteInstance(w io.Writer, ins Instance) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# name: %s\n", ins.Name)
	fmt.Fprintf(bw, "# family: %s\n", ins.Family)
	if ins.Occupancy > 0 {
		fmt.Fprintf(bw, "# occupancy: %g\n", ins.Occupancy)
	}
	if ins.KnownOptimal >= 0 {
		fmt.Fprintf(bw, "# known_optimal: %d\n", ins.KnownOptimal)
	}
	if ins.GapPairs > 0 {
		fmt.Fprintf(bw, "# gap_pairs: %d\n", ins.GapPairs)
	}
	fmt.Fprintln(bw, ins.M.String())
	return bw.Flush()
}

// ReadInstance parses the format written by WriteInstance.
func ReadInstance(r io.Reader) (Instance, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return Instance{}, err
	}
	ins := Instance{KnownOptimal: -1}
	var matLines []string
	for _, line := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "#") {
			kv := strings.SplitN(strings.TrimPrefix(trimmed, "#"), ":", 2)
			if len(kv) != 2 {
				continue
			}
			key := strings.TrimSpace(kv[0])
			val := strings.TrimSpace(kv[1])
			switch key {
			case "name":
				ins.Name = val
			case "family":
				ins.Family = Family(val)
			case "occupancy":
				if f, err := strconv.ParseFloat(val, 64); err == nil {
					ins.Occupancy = f
				}
			case "known_optimal":
				if n, err := strconv.Atoi(val); err == nil {
					ins.KnownOptimal = n
				}
			case "gap_pairs":
				if n, err := strconv.Atoi(val); err == nil {
					ins.GapPairs = n
				}
			}
			continue
		}
		if trimmed != "" {
			matLines = append(matLines, trimmed)
		}
	}
	m, err := bitmat.Parse(strings.Join(matLines, "\n"))
	if err != nil {
		return Instance{}, fmt.Errorf("benchgen: %w", err)
	}
	ins.M = m
	return ins, nil
}

// SaveSuite writes every instance to dir as <name>.ebmf.
func SaveSuite(dir string, suite []Instance) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, ins := range suite {
		f, err := os.Create(filepath.Join(dir, ins.Name+".ebmf"))
		if err != nil {
			return err
		}
		if err := WriteInstance(f, ins); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// LoadSuite reads every *.ebmf file in dir, sorted by name.
func LoadSuite(dir string) ([]Instance, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".ebmf") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var out []Instance
	for _, name := range names {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		ins, err := ReadInstance(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		out = append(out, ins)
	}
	return out, nil
}
