// Package benchgen constructs the paper's three benchmark families
// (Section IV-A):
//
//  1. random matrices with controlled occupancy;
//  2. matrices with known optimal solutions: M = Σ cᵢ·rᵢ with pairwise
//     disjoint row patterns rᵢ and linearly independent column indicators
//     cᵢ, so rank(M) = r_B(M) = k;
//  3. "gap" matrices designed to separate the rational rank from the binary
//     rank: a random row r is split into k disjoint pairs r = r'ⱼ + r”ⱼ;
//     over the rationals any pair recovers r (rank stays low), but an EBMF
//     cannot use subtraction, pushing the binary rank above the rank.
//
// All generation is deterministic given the seed.
package benchgen

import (
	"fmt"
	"math/rand"

	"repro/internal/bitmat"
	"repro/internal/rect"
)

// Family labels a benchmark family.
type Family string

// Families of Section IV-A, plus the decomposition suite.
const (
	FamilyRandom Family = "rand"
	FamilyOpt    Family = "opt"
	FamilyGap    Family = "gap"
	// FamilyBlockDiag are block-diagonal compositions of gap instances
	// (optionally hidden behind row/column permutations) — the workload for
	// the connected-component decomposition and parallel per-block solving.
	FamilyBlockDiag Family = "blockdiag"
)

// Instance is one benchmark matrix with provenance.
type Instance struct {
	// Name is a unique, human-readable identifier.
	Name string
	// Family is the generating family.
	Family Family
	// M is the matrix.
	M *bitmat.Matrix
	// Occupancy is the target occupancy for random instances (0 otherwise).
	Occupancy float64
	// KnownOptimal is r_B(M) when the construction certifies it, else -1.
	KnownOptimal int
	// GapPairs is the number of row pairs for gap instances (0 otherwise).
	GapPairs int
}

// Random returns a rows×cols matrix with the given occupancy.
func Random(rng *rand.Rand, rows, cols int, occupancy float64) *bitmat.Matrix {
	return bitmat.Random(rng, rows, cols, occupancy)
}

// KnownOptimal builds a matrix with certified binary rank k together with
// its optimal partition. It retries until the column indicators come out
// linearly independent; k must be ≤ min(rows, cols).
func KnownOptimal(rng *rand.Rand, rows, cols, k int) (*bitmat.Matrix, *rect.Partition) {
	if k < 1 || k > rows || k > cols {
		panic(fmt.Sprintf("benchgen: invalid rank %d for %d×%d", k, rows, cols))
	}
	for {
		// Disjoint nonzero row patterns: partition a random subset of the
		// columns into k nonempty parts.
		parts := splitDisjoint(rng, cols, k)
		// Random nonzero column indicators.
		cs := make([]bitmat.Vec, k)
		for i := range cs {
			cs[i] = bitmat.RandomNonzeroVec(rng, rows, 0.5)
		}
		m := bitmat.New(rows, cols)
		p := rect.NewPartition(m)
		for i := 0; i < k; i++ {
			r := rect.NewRect(rows, cols)
			cs[i].ForEachOne(func(ri int) {
				r.Rows.Set(ri, true)
				for _, c := range parts[i] {
					m.Set(ri, c, true)
				}
			})
			for _, c := range parts[i] {
				r.Cols.Set(c, true)
			}
			p.Add(r)
		}
		// The construction certifies optimality only when rank(M) = k.
		if m.Rank() != k {
			continue
		}
		if err := p.Validate(); err != nil {
			panic(fmt.Sprintf("benchgen: internal error: %v", err))
		}
		return m, p
	}
}

// splitDisjoint partitions a random nonempty subset of [0, n) into k
// nonempty parts.
func splitDisjoint(rng *rand.Rand, n, k int) [][]int {
	perm := rng.Perm(n)
	// Use between k and n of the columns.
	use := k + rng.Intn(n-k+1)
	parts := make([][]int, k)
	for i := 0; i < k; i++ {
		parts[i] = []int{perm[i]}
	}
	for _, c := range perm[k:use] {
		i := rng.Intn(k)
		parts[i] = append(parts[i], c)
	}
	return parts
}

// Gap builds a rows×cols matrix per the paper's third family with the given
// number of row pairs (pairs ≤ rows/2): rows 2j and 2j+1 are a disjoint
// split of a common base row; the remaining rows are random with 50%
// occupancy.
func Gap(rng *rand.Rand, rows, cols, pairs int) *bitmat.Matrix {
	if pairs < 1 || 2*pairs > rows {
		panic(fmt.Sprintf("benchgen: invalid pairs %d for %d rows", pairs, rows))
	}
	m := bitmat.New(rows, cols)
	// Base row at ~50% occupancy like the paper (resampled until it has at
	// least 2 ones so splits into two nonzero parts exist). The paper notes
	// the pair block rank "should be" pairs+1; it does not enforce this and
	// neither do we — repeated splits occasionally lower it, and that is
	// part of the benchmark's distribution.
	var base bitmat.Vec
	for {
		base = bitmat.RandomVec(rng, cols, 0.5)
		if base.Ones() >= 2 {
			break
		}
	}
	for j := 0; j < pairs; j++ {
		r1, r2 := splitRow(rng, base)
		m.SetRow(2*j, r1)
		m.SetRow(2*j+1, r2)
	}
	for i := 2 * pairs; i < rows; i++ {
		m.SetRow(i, bitmat.RandomVec(rng, cols, 0.5))
	}
	return m
}

// splitRow decomposes base into two disjoint nonzero parts r1 + r2 = base.
func splitRow(rng *rand.Rand, base bitmat.Vec) (r1, r2 bitmat.Vec) {
	n := base.Len()
	for {
		r1 = bitmat.NewVec(n)
		r2 = bitmat.NewVec(n)
		base.ForEachOne(func(c int) {
			if rng.Intn(2) == 0 {
				r1.Set(c, true)
			} else {
				r2.Set(c, true)
			}
		})
		if !r1.IsZero() && !r2.IsZero() {
			return r1, r2
		}
	}
}

// RandomSuite generates count instances per occupancy, named like the
// paper's first benchmark set.
func RandomSuite(seed int64, rows, cols int, occupancies []float64, count int) []Instance {
	rng := rand.New(rand.NewSource(seed))
	var out []Instance
	for _, occ := range occupancies {
		for i := 0; i < count; i++ {
			out = append(out, Instance{
				Name:         fmt.Sprintf("rand-%dx%d-occ%02.0f-%02d", rows, cols, occ*100, i),
				Family:       FamilyRandom,
				M:            Random(rng, rows, cols, occ),
				Occupancy:    occ,
				KnownOptimal: -1,
			})
		}
	}
	return out
}

// OptSuite generates count instances per rank k = 1..maxRank of the
// known-optimal family (paper's second set: 10 each for k = 1..10 at 10×10).
func OptSuite(seed int64, rows, cols, maxRank, count int) []Instance {
	rng := rand.New(rand.NewSource(seed))
	var out []Instance
	for k := 1; k <= maxRank; k++ {
		for i := 0; i < count; i++ {
			m, _ := KnownOptimal(rng, rows, cols, k)
			out = append(out, Instance{
				Name:         fmt.Sprintf("opt-%dx%d-k%02d-%02d", rows, cols, k, i),
				Family:       FamilyOpt,
				M:            m,
				KnownOptimal: k,
			})
		}
	}
	return out
}

// GapSuite generates count instances per pair count (paper's third set:
// 100 each for 2..5 pairs at 10×10).
func GapSuite(seed int64, rows, cols int, pairCounts []int, count int) []Instance {
	rng := rand.New(rand.NewSource(seed))
	var out []Instance
	for _, pairs := range pairCounts {
		for i := 0; i < count; i++ {
			out = append(out, Instance{
				Name:         fmt.Sprintf("gap-%dx%d-p%d-%03d", rows, cols, pairs, i),
				Family:       FamilyGap,
				M:            Gap(rng, rows, cols, pairs),
				KnownOptimal: -1,
				GapPairs:     pairs,
			})
		}
	}
	return out
}

// BlockDiagonal assembles diag(blocks...) — a matrix whose bipartite graph
// has one connected component per (nonzero) block, placed along the
// diagonal.
func BlockDiagonal(blocks ...*bitmat.Matrix) *bitmat.Matrix {
	rows, cols := 0, 0
	for _, b := range blocks {
		rows += b.Rows()
		cols += b.Cols()
	}
	m := bitmat.New(rows, cols)
	r0, c0 := 0, 0
	for _, b := range blocks {
		ro, co := r0, c0
		b.ForEachOne(func(i, j int) { m.Set(ro+i, co+j, true) })
		r0 += b.Rows()
		c0 += b.Cols()
	}
	return m
}

// BlockDiagSuite generates count block-diagonal instances, each composed of
// `components` gap blocks of blockRows×blockCols with the given pair count.
// With permute set the block structure is hidden behind random row and
// column permutations, so only a genuine connected-component split can
// recover it. Binary rank is additive over the blocks, but the per-block
// ranks are not certified, so KnownOptimal stays -1.
func BlockDiagSuite(seed int64, components, blockRows, blockCols, pairs, count int, permute bool) []Instance {
	rng := rand.New(rand.NewSource(seed))
	var out []Instance
	for i := 0; i < count; i++ {
		blocks := make([]*bitmat.Matrix, components)
		for c := range blocks {
			blocks[c] = Gap(rng, blockRows, blockCols, pairs)
		}
		m := BlockDiagonal(blocks...)
		tag := "diag"
		if permute {
			m = m.PermuteRows(rng.Perm(m.Rows())).PermuteCols(rng.Perm(m.Cols()))
			tag = "perm"
		}
		out = append(out, Instance{
			Name:         fmt.Sprintf("blockdiag-%s-c%d-%dx%d-p%d-%02d", tag, components, blockRows, blockCols, pairs, i),
			Family:       FamilyBlockDiag,
			M:            m,
			KnownOptimal: -1,
			GapPairs:     pairs,
		})
	}
	return out
}

// PaperOccupanciesSmall are the occupancies of the small random benchmarks
// (10%, 20%, …, 90%).
func PaperOccupanciesSmall() []float64 {
	out := make([]float64, 9)
	for i := range out {
		out[i] = float64(i+1) / 10
	}
	return out
}

// PaperOccupanciesLarge are the occupancies of the 100×100 random
// benchmarks (1%, 2%, 5%, 10%, 20%).
func PaperOccupanciesLarge() []float64 {
	return []float64{0.01, 0.02, 0.05, 0.10, 0.20}
}
