// Package ftqc implements Section V of the paper: rectangular addressing in
// fault-tolerant quantum computing.
//
// A logical operation on a 2D pattern M̂ of surface-code patches, each patch
// applying a physical pattern M, addresses the tensor product M̂ ⊗ M. The
// two-level structure lets us partition each level independently and combine
// the partitions, giving the upper bound r_B(M̂⊗M) ≤ r_B(M̂)·r_B(M); Watson's
// fooling-set argument gives the lower bound of Eq. 5. When the physical
// pattern is all-ones (transversal X/Z/H), both bounds meet and the
// two-level solution is optimal.
//
// The package also contains the Section V conjecture experiment for qLDPC
// blocks in a 1D layout: wide random patterns are almost always full rank,
// so row-by-row addressing is almost always optimal.
package ftqc

import (
	"fmt"
	"math/rand"

	"repro/internal/bitmat"
	"repro/internal/core"
	"repro/internal/fooling"
	"repro/internal/rect"
)

// TwoLevelResult is the outcome of a two-level tensor-product solve.
type TwoLevelResult struct {
	// Logical and Physical are the per-level SAP results.
	Logical, Physical *core.Result
	// Combined is the tensor-product partition of M̂ ⊗ M.
	Combined *rect.Partition
	// UpperBound is Combined.Depth() = depth(logical)·depth(physical).
	UpperBound int
	// WatsonLB is Eq. 5: max(r_B(M̂)·ϕ(M), r_B(M)·ϕ(M̂)) computed with the
	// best available values (exact when both levels solved optimally).
	WatsonLB int
	// Optimal reports that UpperBound = WatsonLB, proving the combined
	// partition depth-optimal for the full tensor pattern.
	Optimal bool
}

// SolveTwoLevel partitions the logical and physical patterns independently
// and combines them (Section V). The returned partition is always valid for
// the tensor pattern; Optimal is set when Watson's bound closes the gap.
func SolveTwoLevel(logical, physical *bitmat.Matrix, opts core.Options) (*TwoLevelResult, error) {
	lr, err := core.Solve(logical, opts)
	if err != nil {
		return nil, fmt.Errorf("ftqc: logical level: %w", err)
	}
	pr, err := core.Solve(physical, opts)
	if err != nil {
		return nil, fmt.Errorf("ftqc: physical level: %w", err)
	}
	combined := rect.TensorPartitions(lr.Partition, pr.Partition)
	if err := combined.Validate(); err != nil {
		return nil, fmt.Errorf("ftqc: tensor partition invalid: %w", err)
	}
	res := &TwoLevelResult{
		Logical:    lr,
		Physical:   pr,
		Combined:   combined,
		UpperBound: combined.Depth(),
	}
	res.WatsonLB = WatsonLowerBound(logical, physical, lr, pr, opts.FoolingBudget)
	res.Optimal = lr.Optimal && pr.Optimal && res.WatsonLB == res.UpperBound
	return res, nil
}

// WatsonLowerBound evaluates Eq. 5, max(r_B(Â)·ϕ(B), r_B(B)·ϕ(Â)), using
// the per-level solve results for r_B (their Depth when optimal, otherwise
// their rank lower bound) and exact-or-greedy fooling numbers.
func WatsonLowerBound(a, b *bitmat.Matrix, ra, rb *core.Result, foolingBudget int64) int {
	rbA, rbB := ra.RankLB, rb.RankLB
	if ra.Optimal {
		rbA = ra.Depth
	}
	if rb.Optimal {
		rbB = rb.Depth
	}
	if foolingBudget <= 0 {
		foolingBudget = 100_000
	}
	fa, _ := fooling.Exact(a, foolingBudget)
	fb, _ := fooling.Exact(b, foolingBudget)
	lb := rbA * len(fb)
	if alt := rbB * len(fa); alt > lb {
		lb = alt
	}
	return lb
}

// TransversalPatch returns the physical pattern of a transversal operation
// on a distance-d surface-code patch: all d×d data qubits addressed
// (binary rank 1, fooling number 1), the common case the paper highlights.
func TransversalPatch(d int) *bitmat.Matrix {
	return bitmat.AllOnes(d, d)
}

// DiagonalPatch returns a d×d patch addressing only the diagonal (binary
// rank d) — a worst-case physical pattern for contrast in experiments.
func DiagonalPatch(d int) *bitmat.Matrix {
	return bitmat.Identity(d)
}

// CheckerboardPatch returns a d×d patch addressing alternate sites, e.g.
// one sublattice of data qubits (binary rank 2 for d ≥ 2: it is the
// disjoint union of two rectangles on the even and odd rows... in fact its
// binary rank is 2 because rows alternate between two complementary
// patterns).
func CheckerboardPatch(d int) *bitmat.Matrix {
	m := bitmat.New(d, d)
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			if (i+j)%2 == 0 {
				m.Set(i, j, true)
			}
		}
	}
	return m
}

// RowSufficiencyStat is the outcome of the Section V conjecture experiment
// for one (rows, cols, occupancy) point.
type RowSufficiencyStat struct {
	Rows, Cols int
	Occupancy  float64
	Trials     int
	// FullRank counts instances whose rational rank equals the number of
	// rows.
	FullRank int
	// RowOptimal counts instances where the trivial row-by-row partition is
	// provably optimal (depth equals the rank lower bound).
	RowOptimal int
}

// FullRankFraction is FullRank/Trials.
func (s RowSufficiencyStat) FullRankFraction() float64 {
	if s.Trials == 0 {
		return 0
	}
	return float64(s.FullRank) / float64(s.Trials)
}

// RowOptimalFraction is RowOptimal/Trials.
func (s RowSufficiencyStat) RowOptimalFraction() float64 {
	if s.Trials == 0 {
		return 0
	}
	return float64(s.RowOptimal) / float64(s.Trials)
}

// RowSufficiency samples random block patterns (rows = 1D-arranged logical
// blocks, cols = qubit offsets within a block) and measures how often
// addressing row by row is provably depth-optimal — the paper's conjecture
// is that for wide matrices this is almost always the case.
func RowSufficiency(seed int64, rows, cols int, occupancy float64, trials int) RowSufficiencyStat {
	rng := rand.New(rand.NewSource(seed))
	stat := RowSufficiencyStat{Rows: rows, Cols: cols, Occupancy: occupancy, Trials: trials}
	for t := 0; t < trials; t++ {
		m := bitmat.Random(rng, rows, cols, occupancy)
		rank := m.Rank()
		if rank == rows {
			stat.FullRank++
		}
		if distinctNonzeroRows(m) == rank {
			stat.RowOptimal++
		}
	}
	return stat
}

// distinctNonzeroRows is the depth of the row-by-row addressing schedule:
// duplicate rows share a shot, zero rows need none.
func distinctNonzeroRows(m *bitmat.Matrix) int {
	seen := map[string]bool{}
	for i := 0; i < m.Rows(); i++ {
		r := m.Row(i)
		if !r.IsZero() {
			seen[r.Key()] = true
		}
	}
	return len(seen)
}
