package ftqc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitmat"
)

func TestProbeTensorRankKnownCases(t *testing.T) {
	cases := []struct {
		a, b string
		want bool // multiplicative
	}{
		{"11\n01", "10\n01", true},
		{"1", "1", true},
		{"11\n11", "10\n01", true},
	}
	for _, c := range cases {
		probe, err := ProbeTensorRank(bitmat.MustParse(c.a), bitmat.MustParse(c.b))
		if err != nil {
			t.Fatal(err)
		}
		if probe.Multiplicative != c.want {
			t.Fatalf("A=%q B=%q: rbT=%d rbA=%d rbB=%d", c.a, c.b, probe.RBT, probe.RBA, probe.RBB)
		}
		if probe.RBT > probe.RBA*probe.RBB {
			t.Fatal("tensor rank exceeds product upper bound — solver bug")
		}
	}
}

func TestSearchTensorCounterexampleFindsNoneSmall(t *testing.T) {
	// No counterexample is known; at 2×2 scale none should appear.
	probe, err := SearchTensorCounterexample(5, 2, 15)
	if err != nil {
		t.Fatal(err)
	}
	if probe != nil {
		t.Fatalf("unexpected counterexample: r_B=%d < %d·%d\nA:\n%s\nB:\n%s",
			probe.RBT, probe.RBA, probe.RBB, probe.A, probe.B)
	}
}

// Property: on all sampled pairs up to 3×3, binary rank is multiplicative
// under tensor product (consistent with the open question — no
// counterexample at this scale).
func TestQuickTensorRankMultiplicativeSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("exact tensor solves are slow in -short mode")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := bitmat.Random(rng, 1+rng.Intn(3), 1+rng.Intn(3), 0.6)
		b := bitmat.Random(rng, 1+rng.Intn(3), 1+rng.Intn(3), 0.6)
		if a.Ones() == 0 || b.Ones() == 0 {
			return true
		}
		probe, err := ProbeTensorRank(a, b)
		if err != nil {
			return false
		}
		// Watson's bound and the product bound must sandwich RBT; at this
		// scale every sampled pair has been multiplicative.
		return probe.RBT <= probe.RBA*probe.RBB && probe.Multiplicative
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
