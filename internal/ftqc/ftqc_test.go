package ftqc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitmat"
	"repro/internal/core"
)

func fastOptions() core.Options {
	o := core.DefaultOptions()
	o.Packing.Trials = 10
	o.FoolingBudget = 50_000
	return o
}

func TestTransversalPatchProperties(t *testing.T) {
	p := TransversalPatch(3)
	if p.Rank() != 1 || p.Ones() != 9 {
		t.Fatalf("rank=%d ones=%d", p.Rank(), p.Ones())
	}
}

func TestDiagonalPatch(t *testing.T) {
	if DiagonalPatch(4).Rank() != 4 {
		t.Fatal("diagonal patch rank")
	}
}

func TestCheckerboardPatchBinaryRank(t *testing.T) {
	p := CheckerboardPatch(4)
	r, err := core.BinaryRank(p)
	if err != nil {
		t.Fatal(err)
	}
	if r != 2 {
		t.Fatalf("checkerboard r_B = %d, want 2", r)
	}
}

func TestTwoLevelTransversalIsOptimal(t *testing.T) {
	// The paper's key observation: with an all-ones physical patch,
	// ϕ(M) = r_B(M) = 1, so the logical partition alone is optimal.
	logical := bitmat.MustParse("101100\n010011\n101010\n010101\n111000\n000111")
	res, err := SolveTwoLevel(logical, TransversalPatch(3), fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal {
		t.Fatalf("transversal two-level should be optimal: ub=%d watson=%d",
			res.UpperBound, res.WatsonLB)
	}
	if res.UpperBound != res.Logical.Depth {
		t.Fatalf("depth %d, want logical depth %d", res.UpperBound, res.Logical.Depth)
	}
	if err := res.Combined.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTwoLevelDiagonalPhysical(t *testing.T) {
	// Identity physical patch: r_B = ϕ = d, so Watson's bound is again
	// tight: r_B(Â⊗I_d) = r_B(Â)·d.
	logical := bitmat.MustParse("11\n01")
	res, err := SolveTwoLevel(logical, DiagonalPatch(3), fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Logical.Optimal || res.Logical.Depth != 2 {
		t.Fatalf("logical depth %d", res.Logical.Depth)
	}
	if res.UpperBound != 6 {
		t.Fatalf("upper bound %d, want 6", res.UpperBound)
	}
	if !res.Optimal {
		t.Fatalf("identity-patch tensor should be tight: watson=%d", res.WatsonLB)
	}
}

func TestTwoLevelBoundsOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 8; trial++ {
		a := bitmat.Random(rng, 3, 3, 0.6)
		b := bitmat.Random(rng, 3, 3, 0.6)
		if a.Ones() == 0 || b.Ones() == 0 {
			continue
		}
		res, err := SolveTwoLevel(a, b, fastOptions())
		if err != nil {
			t.Fatal(err)
		}
		if res.WatsonLB > res.UpperBound {
			t.Fatalf("Watson LB %d exceeds upper bound %d", res.WatsonLB, res.UpperBound)
		}
		if err := res.Combined.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRowSufficiencyWideEasierThanSquare(t *testing.T) {
	// The paper's observation: at equal occupancy, 10×20 and 10×30 random
	// matrices are much easier to be full rank than 10×10.
	square := RowSufficiency(1, 10, 10, 0.5, 60)
	wide := RowSufficiency(1, 10, 30, 0.5, 60)
	if wide.FullRankFraction() < square.FullRankFraction() {
		t.Fatalf("wide %f should be ≥ square %f",
			wide.FullRankFraction(), square.FullRankFraction())
	}
	if wide.RowOptimalFraction() < 0.9 {
		t.Fatalf("10×30 at 50%% should be row-optimal almost always, got %f",
			wide.RowOptimalFraction())
	}
}

func TestRowSufficiencyZeroTrials(t *testing.T) {
	s := RowSufficiency(1, 5, 5, 0.5, 0)
	if s.FullRankFraction() != 0 || s.RowOptimalFraction() != 0 {
		t.Fatal("zero trials should give zero fractions")
	}
}

// Property: tensor depth really is the product of the level depths, and the
// combined partition covers exactly ones(Â)·ones(M) entries.
func TestQuickTensorDepthProduct(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := bitmat.Random(rng, 1+rng.Intn(3), 1+rng.Intn(3), 0.7)
		b := bitmat.Random(rng, 1+rng.Intn(3), 1+rng.Intn(3), 0.7)
		res, err := SolveTwoLevel(a, b, fastOptions())
		if err != nil {
			return false
		}
		if res.UpperBound != res.Logical.Depth*res.Physical.Depth {
			return false
		}
		total := 0
		for _, r := range res.Combined.Rects {
			total += r.Size()
		}
		return total == a.Ones()*b.Ones()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: the multiplicative rank bound r_B(A⊗B) ≥ rank(A)·rank(B) is
// consistent with the tensor partition depth.
func TestQuickTensorRankBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := bitmat.Random(rng, 1+rng.Intn(3), 1+rng.Intn(3), 0.6)
		b := bitmat.Random(rng, 1+rng.Intn(3), 1+rng.Intn(3), 0.6)
		tp := bitmat.Tensor(a, b)
		res, err := SolveTwoLevel(a, b, fastOptions())
		if err != nil {
			return false
		}
		return res.UpperBound >= tp.Rank()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
