package ftqc

import (
	"fmt"
	"math/rand"

	"repro/internal/bitmat"
	"repro/internal/core"
)

// TensorRankProbe is one data point of the paper's future-work experiment:
// "the SMT tool could aid in investigating the behavior of binary rank under
// a tensor product". Whether r_B is multiplicative under ⊗ is open; the
// probe solves r_B(A), r_B(B) and r_B(A⊗B) exactly and reports the gap to
// the product upper bound.
type TensorRankProbe struct {
	A, B *bitmat.Matrix
	// RBA, RBB, RBT are the exact binary ranks of A, B and A⊗B.
	RBA, RBB, RBT int
	// Multiplicative reports RBT == RBA·RBB.
	Multiplicative bool
}

// ProbeTensorRank solves all three binary ranks exactly. Intended for tiny
// matrices (the tensor product's SAT instance grows with ones(A)·ones(B)).
func ProbeTensorRank(a, b *bitmat.Matrix) (*TensorRankProbe, error) {
	rba, err := core.BinaryRank(a)
	if err != nil {
		return nil, fmt.Errorf("ftqc: r_B(A): %w", err)
	}
	rbb, err := core.BinaryRank(b)
	if err != nil {
		return nil, fmt.Errorf("ftqc: r_B(B): %w", err)
	}
	rbt, err := core.BinaryRank(bitmat.Tensor(a, b))
	if err != nil {
		return nil, fmt.Errorf("ftqc: r_B(A⊗B): %w", err)
	}
	return &TensorRankProbe{
		A: a, B: b,
		RBA: rba, RBB: rbb, RBT: rbt,
		Multiplicative: rbt == rba*rbb,
	}, nil
}

// SearchTensorCounterexample samples random pairs up to the given dimension
// and returns the first probe where r_B(A⊗B) < r_B(A)·r_B(B), or nil if
// none is found within the trial budget. (Finding one would answer the open
// question of Section V in the negative.)
func SearchTensorCounterexample(seed int64, maxDim, trials int) (*TensorRankProbe, error) {
	rng := rand.New(rand.NewSource(seed))
	for t := 0; t < trials; t++ {
		a := bitmat.Random(rng, 1+rng.Intn(maxDim), 1+rng.Intn(maxDim), 0.4+0.3*rng.Float64())
		b := bitmat.Random(rng, 1+rng.Intn(maxDim), 1+rng.Intn(maxDim), 0.4+0.3*rng.Float64())
		if a.Ones() == 0 || b.Ones() == 0 {
			continue
		}
		probe, err := ProbeTensorRank(a, b)
		if err != nil {
			return nil, err
		}
		if !probe.Multiplicative {
			return probe, nil
		}
	}
	return nil, nil
}
