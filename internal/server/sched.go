package server

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// TenantConfig declares one tenant of the service: who may submit work (API
// keys), how much of the machine they are entitled to under contention
// (weight, priority lane) and how much they may have outstanding (quota).
type TenantConfig struct {
	// Name identifies the tenant in job snapshots and metrics.
	Name string
	// Keys are the API keys (Authorization: Bearer <key> or X-API-Key) that
	// resolve to this tenant. The built-in "default" tenant has no key and
	// serves unauthenticated requests; naming a config entry "default"
	// overrides its weight/quota/priority instead of adding a tenant.
	Keys []string
	// Weight is the tenant's fair share within its priority lane (default 1).
	// Under contention two same-lane tenants with weights 3:1 get slots in a
	// 3:1 ratio.
	Weight int
	// Quota caps the tenant's outstanding work — queued plus running — across
	// solves and jobs (0 = no per-tenant cap; the global MaxQueue still
	// applies). Exceeding it is a 429 with code "quota_exceeded".
	Quota int
	// Priority selects the strict-priority lane (lower = served first;
	// default 0). A lane is considered only when every lower lane is empty.
	Priority int
}

// ParseTenantFlag parses the ebmfd -tenants flag syntax: comma-separated
// entries of name:key:weight[:quota[:priority]]. An empty key makes the
// entry apply to unauthenticated traffic (the "default" tenant).
func ParseTenantFlag(s string) ([]TenantConfig, error) {
	var out []TenantConfig
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, ":")
		if len(parts) < 3 || len(parts) > 5 {
			return nil, fmt.Errorf("tenant %q: want name:key:weight[:quota[:priority]]", entry)
		}
		tc := TenantConfig{Name: parts[0]}
		if tc.Name == "" {
			return nil, fmt.Errorf("tenant %q: empty name", entry)
		}
		if parts[1] != "" {
			tc.Keys = []string{parts[1]}
		}
		var err error
		if tc.Weight, err = strconv.Atoi(parts[2]); err != nil || tc.Weight <= 0 {
			return nil, fmt.Errorf("tenant %q: bad weight %q", entry, parts[2])
		}
		if len(parts) > 3 && parts[3] != "" {
			if tc.Quota, err = strconv.Atoi(parts[3]); err != nil || tc.Quota < 0 {
				return nil, fmt.Errorf("tenant %q: bad quota %q", entry, parts[3])
			}
		}
		if len(parts) > 4 && parts[4] != "" {
			if tc.Priority, err = strconv.Atoi(parts[4]); err != nil {
				return nil, fmt.Errorf("tenant %q: bad priority %q", entry, parts[4])
			}
		}
		out = append(out, tc)
	}
	return out, nil
}

// DefaultTenant is the tenant unauthenticated requests are accounted to.
const DefaultTenant = "default"

// Admission errors surfaced by the scheduler.
var (
	errQuotaFull  = errors.New("server: tenant quota exceeded")
	errUnknownKey = errors.New("server: unknown API key")
)

// scheduler replaces the old semaphore+atomic-counter admission pair with an
// exact, tenant-aware gate: MaxConcurrent slots, at most maxQueue waiters
// in total, per-tenant FIFO queues served by deficit round-robin within
// strict priority lanes. Everything mutates under one mutex, which makes the
// old overshoot bug (a burst of atomics transiently exceeding MaxQueue)
// structurally impossible and keeps these invariants:
//
//   - free > 0 ⇒ every queue is empty (a releasing slot is handed to a
//     waiter before it is returned to the pool).
//   - queued == Σ tenant.queued ≤ maxQueue, exactly, at every instant.
//   - within a lane, grant counts converge to the weight ratio (unit-cost
//     DRR: a visit tops the tenant's deficit up by its weight, each grant
//     spends 1, the rotation pointer only advances when the deficit is
//     spent or the queue empties).
type scheduler struct {
	mu     sync.Mutex
	free   int // unheld solve slots
	queued int // total waiters, all tenants

	maxConcurrent int
	maxQueue      int

	lanes  []*lane // ascending Priority
	byName map[string]*tenant
	byKey  map[string]*tenant
	def    *tenant

	granted int64 // lifetime slot grants (fast path + queue)
}

type lane struct {
	prio   int
	active []*tenant // tenants with waiters, DRR rotation order
	cur    int       // rotation pointer into active
}

type tenant struct {
	cfg     TenantConfig
	lane    *lane
	deficit int
	queue   []*waiter // waiting admissions, FIFO
	running int       // slots held

	// Lifetime counters, mutated under the scheduler mutex.
	admitted      int64 // slots granted
	rejectedQuota int64
	shed          int64 // jobs degraded to the heuristic path
}

type waiter struct {
	ch      chan struct{}
	granted bool
}

// newScheduler builds the admission gate. The default tenant always exists;
// cfg entries named "default" override it, others add keyed tenants.
func newScheduler(maxConcurrent, maxQueue int, tenants []TenantConfig) *scheduler {
	sc := &scheduler{
		free:          maxConcurrent,
		maxConcurrent: maxConcurrent,
		maxQueue:      maxQueue,
		byName:        make(map[string]*tenant),
		byKey:         make(map[string]*tenant),
	}
	add := func(tc TenantConfig) *tenant {
		if tc.Weight <= 0 {
			tc.Weight = 1
		}
		t, ok := sc.byName[tc.Name]
		if !ok {
			t = &tenant{}
			sc.byName[tc.Name] = t
		}
		t.cfg = tc
		for _, k := range tc.Keys {
			if k != "" {
				sc.byKey[k] = t
			}
		}
		return t
	}
	sc.def = add(TenantConfig{Name: DefaultTenant, Weight: 1})
	for _, tc := range tenants {
		add(tc)
	}
	// Build the strict-priority lanes from the distinct priorities in use.
	prios := map[int]*lane{}
	for _, t := range sc.byName {
		ln, ok := prios[t.cfg.Priority]
		if !ok {
			ln = &lane{prio: t.cfg.Priority}
			prios[t.cfg.Priority] = ln
			sc.lanes = append(sc.lanes, ln)
		}
		t.lane = ln
	}
	sort.Slice(sc.lanes, func(i, j int) bool { return sc.lanes[i].prio < sc.lanes[j].prio })
	return sc
}

// tenantForKey resolves an API key to its tenant. An empty key is the
// default tenant; an unknown key is errUnknownKey (a 401, never a silent
// fallback to default — that would let a typo'd key consume another
// tenant's share).
func (sc *scheduler) tenantForKey(key string) (*tenant, error) {
	if key == "" {
		return sc.def, nil
	}
	sc.mu.Lock()
	t := sc.byKey[key]
	sc.mu.Unlock()
	if t == nil {
		return nil, errUnknownKey
	}
	return t, nil
}

// tenantByName resolves a tenant name to its tenant, falling back to the
// default tenant for names no longer configured. Used by journal replay: a
// job journaled under a tenant that was removed across the restart is still
// re-admitted, just under default accounting.
func (sc *scheduler) tenantByName(name string) *tenant {
	sc.mu.Lock()
	t := sc.byName[name]
	sc.mu.Unlock()
	if t == nil {
		return sc.def
	}
	return t
}

// reservation is a slot grant or a held queue position: the admission
// decision made synchronously (exactly, under the lock), with the wait
// deferred so async submitters can answer the client before a slot frees.
type reservation struct {
	sc *scheduler
	t  *tenant
	w  *waiter // nil: a slot is already held
}

// reserve makes the admission decision for tenant t (nil = default): an
// immediate slot grant when one is free, a queue position otherwise, or a
// rejection (errQuotaFull / errQueueFull) — never an overshoot, the counts
// are checked and updated under one lock. A successful reservation MUST be
// consumed by wait (or abandon, for a queued one).
func (sc *scheduler) reserve(t *tenant) (*reservation, error) {
	if t == nil {
		t = sc.def
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if q := t.cfg.Quota; q > 0 && len(t.queue)+t.running >= q {
		t.rejectedQuota++
		return nil, errQuotaFull
	}
	if sc.free > 0 {
		// Invariant: free slots mean empty queues, so this cannot jump the
		// line ahead of a waiter.
		sc.free--
		t.running++
		t.admitted++
		sc.granted++
		return &reservation{sc: sc, t: t}, nil
	}
	if sc.queued >= sc.maxQueue {
		return nil, errQueueFull
	}
	w := &waiter{ch: make(chan struct{})}
	t.queue = append(t.queue, w)
	sc.queued++
	if len(t.queue) == 1 {
		t.lane.activate(t)
	}
	return &reservation{sc: sc, t: t, w: w}, nil
}

// wait blocks until the reservation's slot is granted (immediately for a
// fast-path grant) or ctx aborts, in which case the queue position — or the
// racing grant — is given back exactly.
func (res *reservation) wait(ctx context.Context) (release func(), err error) {
	sc, t := res.sc, res.t
	if res.w == nil {
		return func() { sc.release(t) }, nil
	}
	select {
	case <-res.w.ch:
		return func() { sc.release(t) }, nil
	case <-ctx.Done():
		res.abandon()
		return nil, ctx.Err()
	}
}

// abandon gives up a reservation without running: the queue position is
// vacated, or — when a grant raced the abort — the slot is released to the
// next waiter.
func (res *reservation) abandon() {
	sc, t, w := res.sc, res.t, res.w
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if w == nil || w.granted {
		sc.releaseLocked(t)
		return
	}
	t.unqueue(w)
	sc.queued--
	if len(t.queue) == 0 {
		t.lane.deactivate(t)
		t.deficit = 0
	}
}

// acquire obtains a solve slot for tenant t (nil = default), waiting in t's
// queue when none is free. The returned release must be called once the
// solve finishes. ctx abort while waiting leaves the queue exactly.
func (sc *scheduler) acquire(ctx context.Context, t *tenant) (release func(), err error) {
	res, err := sc.reserve(t)
	if err != nil {
		return nil, err
	}
	return res.wait(ctx)
}

// release returns a slot and hands it to the next waiter per DRR.
func (sc *scheduler) release(t *tenant) {
	sc.mu.Lock()
	sc.releaseLocked(t)
	sc.mu.Unlock()
}

func (sc *scheduler) releaseLocked(t *tenant) {
	t.running--
	sc.free++
	sc.dispatch()
}

// dispatch grants free slots to waiters: strict priority between lanes,
// unit-cost deficit round-robin within a lane. Called with sc.mu held.
func (sc *scheduler) dispatch() {
	for sc.free > 0 && sc.queued > 0 {
		var ln *lane
		for _, l := range sc.lanes {
			if len(l.active) > 0 {
				ln = l
				break
			}
		}
		if ln == nil {
			return
		}
		for sc.free > 0 && len(ln.active) > 0 {
			if ln.cur >= len(ln.active) {
				ln.cur = 0
			}
			t := ln.active[ln.cur]
			if t.deficit <= 0 {
				t.deficit += t.cfg.Weight
			}
			for sc.free > 0 && t.deficit > 0 && len(t.queue) > 0 {
				w := t.queue[0]
				t.queue = t.queue[1:]
				sc.queued--
				sc.free--
				t.running++
				t.admitted++
				sc.granted++
				t.deficit--
				w.granted = true
				close(w.ch)
			}
			switch {
			case len(t.queue) == 0:
				// Emptied: leave the rotation; an idle tenant banks no credit.
				t.deficit = 0
				ln.deactivate(t)
			case t.deficit <= 0:
				ln.cur++
			default:
				// Out of slots mid-deficit: keep cur and the remaining
				// deficit so the tenant resumes exactly here next release.
				return
			}
		}
	}
}

func (ln *lane) activate(t *tenant) { ln.active = append(ln.active, t) }

func (ln *lane) deactivate(t *tenant) {
	for i, at := range ln.active {
		if at == t {
			ln.active = append(ln.active[:i], ln.active[i+1:]...)
			if i < ln.cur {
				ln.cur--
			}
			return
		}
	}
}

func (t *tenant) unqueue(w *waiter) {
	for i, qw := range t.queue {
		if qw == w {
			t.queue = append(t.queue[:i], t.queue[i+1:]...)
			return
		}
	}
}

// countShed records one degraded (shed-to-heuristic) answer for t.
func (sc *scheduler) countShed(t *tenant) {
	if t == nil {
		t = sc.def
	}
	sc.mu.Lock()
	t.shed++
	sc.mu.Unlock()
}

// TenantSnapshot is one tenant's scheduler state in /v1/metrics.
type TenantSnapshot struct {
	Name          string `json:"name"`
	Weight        int    `json:"weight"`
	Priority      int    `json:"priority"`
	Quota         int    `json:"quota,omitempty"`
	Queued        int    `json:"queued"`
	Running       int    `json:"running"`
	Admitted      int64  `json:"admitted"`
	RejectedQuota int64  `json:"rejected_quota"`
	Shed          int64  `json:"shed"`
}

// snapshot reports the scheduler's queue depth, running count and per-tenant
// state (sorted by name for stable output).
func (sc *scheduler) snapshot() (queued, running int, tenants []TenantSnapshot) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	for name, t := range sc.byName {
		tenants = append(tenants, TenantSnapshot{
			Name:          name,
			Weight:        t.cfg.Weight,
			Priority:      t.cfg.Priority,
			Quota:         t.cfg.Quota,
			Queued:        len(t.queue),
			Running:       t.running,
			Admitted:      t.admitted,
			RejectedQuota: t.rejectedQuota,
			Shed:          t.shed,
		})
		running += t.running
	}
	sort.Slice(tenants, func(i, j int) bool { return tenants[i].Name < tenants[j].Name })
	return sc.queued, running, tenants
}
