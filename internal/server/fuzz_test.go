package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/wire"
)

// FuzzWireDecode throws arbitrary request bodies at the solve and batch
// handlers of both tiers — an ebmfd server and an ebmfgw gateway fronting
// it — and requires that nothing panics and nothing turns into a 5xx: a
// malformed body is the client's fault (400-shaped), never the service's.
// Runs nightly alongside the solver fuzz targets (nightly.yml).
func FuzzWireDecode(f *testing.F) {
	for _, seed := range []string{
		`{}`,
		`{"matrix":"101\n011"}`,
		`{"matrix":"101100\n010011\n101010\n010101\n111000\n000111"}`,
		`{"rows":[[1,0],[0,1]]}`,
		`{"rows":[]}`,
		`{"rows":[[]]}`,
		`{"rows":[[],[]]}`,
		`{"rows":[[1,0],[1]]}`,
		`{"rows":[[1,2,3]]}`,
		`{"matrix":"1","rows":[[1]]}`,
		`{"matrix":"10\n2x"}`,
		`{"matrix":"1","options":{"encoding":"log","timeout_ms":5}}`,
		`{"matrix":"1","options":{"encoding":"cnf3"}}`,
		`{"matrix":"1","options":{"portfolio_strategies":["bogus"]}}`,
		`{"matrecks":"1"}`,
		`{"requests":[{"matrix":"1"},{"rows":[[]]},{}]}`,
		`{"requests":[]}`,
		`{"matrix":"` + strings.Repeat("1", 300) + `"}`,
		`not json`,
		`null`,
		`"str"`,
		`[1,2,3]`,
		"\xff\xfe\x00",
	} {
		f.Add([]byte(seed))
	}

	// Small, fast service limits: matrices are capped tiny and solves are
	// deadline-bounded, so even a fuzz-found "hard" valid matrix answers in
	// milliseconds (possibly as timed_out — still a 200).
	cfg := Config{
		MaxMatrixEntries: 144,
		MaxBodyBytes:     1 << 16,
		DefaultTimeout:   50 * time.Millisecond,
		MaxTimeout:       100 * time.Millisecond,
		MaxPortfolio:     -1,
		MaxBatch:         8,
	}
	srv := New(cfg)
	backend := httptest.NewServer(srv.Handler())
	f.Cleanup(backend.Close)
	gw, err := cluster.New(cluster.Config{
		Backends:         []string{backend.URL},
		ProbeInterval:    -1,
		HedgeAfter:       -1,
		MaxMatrixEntries: 144,
		MaxBodyBytes:     1 << 16,
		MaxBatch:         8,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(gw.Close)

	tiers := []struct {
		name string
		h    http.Handler
	}{
		{"server", srv.Handler()},
		{"gateway", gw.Handler()},
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		for _, path := range []string{"/v1/solve", "/v1/batch"} {
			for _, tier := range tiers {
				req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
				req.Header.Set("Content-Type", "application/json")
				rec := httptest.NewRecorder()
				tier.h.ServeHTTP(rec, req) // a panic here fails the fuzz run
				if rec.Code >= 500 {
					t.Fatalf("%s %s answered %d for body %q\nresponse: %s",
						tier.name, path, rec.Code, body, rec.Body.Bytes())
				}
				if rec.Code != http.StatusOK {
					var e wire.ErrorResponse
					if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
						t.Fatalf("%s %s: %d body is not a structured wire error: %s",
							tier.name, path, rec.Code, rec.Body.Bytes())
					}
				}
			}
		}
	})
}
