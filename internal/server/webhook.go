package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"repro/internal/backoff"
	"repro/internal/wire"
)

// Terminal webhooks: a job submitted with callback_url receives its
// terminal JobJSON as a POST, at least once. "At least once" is split
// between two mechanisms: within one process run, the deliverer retries
// with jittered exponential backoff until WebhookMaxRetries; across runs,
// the journal holds the terminal record until a delivery is acked (the ack
// is written only after a 2xx), so a crash — or exhausted retries — leaves
// the delivery to be resumed by the next boot's replay. Receivers must
// therefore deduplicate by job ID.
//
// The URL is validated at submit against Config.WebhookAllow — a webhook
// target is a server-side request (SSRF surface), so only fleet-internal
// destinations the operator listed are accepted, and a server configured
// without an allowlist rejects callback_url outright.

// validateCallback checks a submit's callback_url against the allowlist.
func (s *Server) validateCallback(raw string) error {
	u, err := url.Parse(raw)
	if err != nil {
		return fmt.Errorf("invalid URL: %v", err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return errors.New("scheme must be http or https")
	}
	if u.Host == "" {
		return errors.New("missing host")
	}
	if len(s.cfg.WebhookAllow) == 0 {
		return errors.New("webhooks are not enabled on this server")
	}
	for _, allow := range s.cfg.WebhookAllow {
		if allow == "" {
			continue
		}
		if strings.Contains(allow, "://") {
			// URL-prefix entry. The prefix must end on a component boundary:
			// "http://hooks.internal" may not authorize
			// "http://hooks.internal.evil.example".
			if !strings.HasPrefix(raw, allow) {
				continue
			}
			if len(raw) == len(allow) || strings.HasSuffix(allow, "/") {
				return nil
			}
			switch raw[len(allow)] {
			case '/', '?', '#', ':':
				return nil
			}
			continue
		}
		// Bare host (or host:port) entry.
		if u.Host == allow || u.Hostname() == allow {
			return nil
		}
	}
	return errors.New("URL not in the webhook allowlist")
}

// webhookTask is one pending delivery: the terminal snapshot, pre-encoded.
type webhookTask struct {
	id      string
	url     string
	payload []byte
}

// webhookDeliverer drains deliveries one at a time on its own goroutine.
// Serial delivery is deliberate: webhook targets are fleet-internal
// services, and a burst of terminals must not open a connection storm
// against them. The queue is unbounded in memory but bounded in practice by
// MaxJobs and the journal's outstanding set.
type webhookDeliverer struct {
	s      *Server
	client *http.Client

	mu    sync.Mutex
	queue []webhookTask

	wake chan struct{} // capacity 1: enqueue signal
	stop chan struct{}
	done chan struct{}
}

func newWebhookDeliverer(s *Server) *webhookDeliverer {
	d := &webhookDeliverer{
		s:      s,
		client: &http.Client{Timeout: s.cfg.WebhookTimeout},
		wake:   make(chan struct{}, 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go d.loop()
	return d
}

// enqueue schedules a terminal snapshot for delivery.
func (d *webhookDeliverer) enqueue(id, url string, snap *wire.JobJSON) {
	payload, err := json.Marshal(snap)
	if err != nil {
		d.s.cfg.Logger.Printf("webhook %s: encode: %v", id, err)
		return
	}
	d.enqueueRaw(id, url, payload)
}

// enqueueRaw schedules a pre-encoded payload (the journal replay path).
func (d *webhookDeliverer) enqueueRaw(id, url string, payload []byte) {
	d.mu.Lock()
	d.queue = append(d.queue, webhookTask{id: id, url: url, payload: payload})
	d.mu.Unlock()
	select {
	case d.wake <- struct{}{}:
	default:
	}
}

func (d *webhookDeliverer) loop() {
	defer close(d.done)
	for {
		d.mu.Lock()
		var task *webhookTask
		if len(d.queue) > 0 {
			t := d.queue[0]
			d.queue = d.queue[1:]
			task = &t
		}
		d.mu.Unlock()
		if task == nil {
			select {
			case <-d.stop:
				return
			case <-d.wake:
				continue
			}
		}
		if !d.deliver(*task) {
			return // stopped mid-retry; the journal still holds the record
		}
	}
}

// deliver runs one task's retry loop. Returns false only when the
// deliverer was stopped (server shutdown) — the journal's unacked terminal
// record carries the delivery obligation across the restart.
func (d *webhookDeliverer) deliver(task webhookTask) bool {
	met := &d.s.met
	for attempt := 0; ; attempt++ {
		if d.attempt(task) {
			met.webhooksDelivered.Add(1)
			d.s.journalWebhookAck(task.id)
			return true
		}
		met.webhooksRetried.Add(1)
		if attempt >= d.s.cfg.WebhookMaxRetries {
			met.webhooksAbandoned.Add(1)
			d.s.cfg.Logger.Printf("webhook %s -> %s: gave up after %d attempts (journal retries after restart)",
				task.id, task.url, attempt+1)
			return true
		}
		select {
		case <-d.stop:
			return false
		case <-time.After(backoff.Delay(d.s.cfg.WebhookRetryBase, attempt, d.s.cfg.WebhookRetryMax)):
		}
	}
}

// attempt makes one POST; any 2xx acknowledges the delivery.
func (d *webhookDeliverer) attempt(task webhookTask) bool {
	req, err := http.NewRequest(http.MethodPost, task.url, bytes.NewReader(task.payload))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := d.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	return resp.StatusCode >= 200 && resp.StatusCode < 300
}

func (d *webhookDeliverer) close() {
	close(d.stop)
	<-d.done
}
