package server

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/bitmat"
	"repro/internal/core"
	"repro/internal/solvecache"
)

// benchMatrix is a moderately hard instance (Fig. 1b) whose cold solve runs
// the full pipeline including the SAT narrowing stage.
func benchMatrix() *bitmat.Matrix {
	return bitmat.MustParse("101100\n010011\n101010\n010101\n111000\n000111")
}

// BenchmarkServerColdSolve measures the uncached pipeline latency through
// the cache layer (fingerprint + solve + lift): the cost a first-of-its-kind
// request pays.
func BenchmarkServerColdSolve(b *testing.B) {
	m := benchMatrix()
	opts := core.DefaultOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := solvecache.New(0)
		if _, err := c.Solve(m, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerCacheHit measures a permuted resubmission served from
// cache: fingerprint + lookup + lift + re-validation, no pipeline work.
func BenchmarkServerCacheHit(b *testing.B) {
	m := benchMatrix()
	opts := core.DefaultOptions()
	c := solvecache.New(0)
	if _, err := c.Solve(m, opts); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	perms := make([]*bitmat.Matrix, 16)
	for i := range perms {
		rp, cp := rng.Perm(m.Rows()), rng.Perm(m.Cols())
		p := bitmat.New(m.Rows(), m.Cols())
		m.ForEachOne(func(r, q int) { p.Set(rp[r], cp[q], true) })
		perms[i] = p
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := c.Solve(perms[i%len(perms)], opts)
		if err != nil {
			b.Fatal(err)
		}
		if !res.CacheHit {
			b.Fatal("expected cache hit")
		}
	}
}

// BenchmarkServerHTTPCacheHit measures the full HTTP round trip for a cached
// solve — JSON decode, admission, cache hit, JSON encode.
func BenchmarkServerHTTPCacheHit(b *testing.B) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body, _ := json.Marshal(map[string]string{"matrix": benchMatrix().String()})
	warm, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	warm.Body.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
	}
}

// BenchmarkServerFingerprint isolates canonicalization, the fixed per-request
// overhead the cache adds to every solve.
func BenchmarkServerFingerprint(b *testing.B) {
	m := benchMatrix()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if fp := bitmat.ComputeFingerprint(m); !fp.Exact {
			b.Fatal("inexact fingerprint")
		}
	}
}
