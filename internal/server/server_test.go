package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/bitmat"
	"repro/internal/wire"
)

const fig1b = `101100
010011
101010
010101
111000
000111`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func decodeResult(t *testing.T, data []byte) *wire.ResultJSON {
	t.Helper()
	var res wire.ResultJSON
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("bad result JSON: %v\n%s", err, data)
	}
	return &res
}

func TestSolveEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/solve", wire.SolveRequest{Matrix: fig1b})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	res := decodeResult(t, body)
	if res.Depth != 5 || !res.Optimal {
		t.Fatalf("depth=%d optimal=%v, want 5/true", res.Depth, res.Optimal)
	}
	if res.CacheHit {
		t.Fatalf("first solve reported cache_hit")
	}
	if res.Fingerprint == "" {
		t.Fatalf("no fingerprint in response")
	}
	if len(res.Partition) != 5 {
		t.Fatalf("partition has %d rects, want 5", len(res.Partition))
	}
}

func TestSolveEndpointRowsFormAndCacheAcrossForms(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/solve", wire.SolveRequest{Matrix: fig1b})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	first := decodeResult(t, body)

	rows := bitmat.MustParse(fig1b).ToRows()
	resp, body = postJSON(t, ts.URL+"/v1/solve", wire.SolveRequest{Rows: rows})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	second := decodeResult(t, body)
	if !second.CacheHit {
		t.Fatalf("rows-form resubmission missed the cache")
	}
	if second.Depth != first.Depth || second.Fingerprint != first.Fingerprint {
		t.Fatalf("rows form disagrees with matrix form: %+v vs %+v", second, first)
	}
	if second.SATCalls != 0 || second.PackNS != 0 || second.SATNS != 0 {
		t.Fatalf("cache hit did not zero solver stages: %+v", second)
	}
}

func TestSolvePermutedResubmissionHits(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/solve", wire.SolveRequest{Matrix: fig1b})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	first := decodeResult(t, body)

	// Permute rows and columns; the solve must be served from cache with
	// identical depth.
	m := bitmat.MustParse(fig1b)
	rng := rand.New(rand.NewSource(17))
	rp, cp := rng.Perm(m.Rows()), rng.Perm(m.Cols())
	p := bitmat.New(m.Rows(), m.Cols())
	m.ForEachOne(func(i, j int) { p.Set(rp[i], cp[j], true) })

	resp, body = postJSON(t, ts.URL+"/v1/solve", wire.SolveRequest{Matrix: p.String()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	res := decodeResult(t, body)
	if !res.CacheHit || res.Depth != first.Depth {
		t.Fatalf("permuted resubmission: hit=%v depth=%d, want true/%d", res.CacheHit, res.Depth, first.Depth)
	}
	if st := s.Cache().Stats(); st.Solves != 1 {
		t.Fatalf("cache stats report %d solves, want 1", st.Solves)
	}
}

func TestSolveBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxMatrixEntries: 16})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"empty", `{}`, http.StatusBadRequest},
		{"both forms", `{"matrix":"1","rows":[[1]]}`, http.StatusBadRequest},
		{"bad chars", `{"matrix":"10\n2x"}`, http.StatusBadRequest},
		{"ragged rows", `{"rows":[[1,0],[1]]}`, http.StatusBadRequest},
		{"zero rows", `{"rows":[]}`, http.StatusBadRequest},
		{"zero cols", `{"rows":[[]]}`, http.StatusBadRequest},
		{"zero cols multi", `{"rows":[[],[]]}`, http.StatusBadRequest},
		{"non-binary rows", `{"rows":[[1,2]]}`, http.StatusBadRequest},
		{"unknown field", `{"matrecks":"1"}`, http.StatusBadRequest},
		{"bad encoding", `{"matrix":"1","options":{"encoding":"cnf3"}}`, http.StatusBadRequest},
		{"too large", `{"matrix":"` + strings.Repeat("11111\\n", 5) + `"}`, http.StatusBadRequest},
		{"not json", `hello`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		var e wire.ErrorResponse
		decErr := json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
		// Regression (dimensionally invalid matrices used to slip past the
		// wire layer): every rejection must carry a structured wire error,
		// not a bare status.
		if decErr != nil || e.Error == "" {
			t.Errorf("%s: body is not a structured wire error (%v)", tc.name, decErr)
		}
	}
}

func TestBatchEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := wire.BatchRequest{Requests: []wire.SolveRequest{
		{Matrix: fig1b},
		{Matrix: "not a matrix"},
		{Matrix: "10\n01"},
		{Matrix: fig1b}, // duplicate of the first: cache or singleflight hit
	}}
	resp, body := postJSON(t, ts.URL+"/v1/batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var br wire.BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 4 {
		t.Fatalf("%d results, want 4", len(br.Results))
	}
	if br.Results[0].Result == nil || br.Results[0].Result.Depth != 5 {
		t.Fatalf("item 0: %+v", br.Results[0])
	}
	if br.Results[1].Error == "" || br.Results[1].Result != nil {
		t.Fatalf("item 1 should be an error: %+v", br.Results[1])
	}
	if br.Results[2].Result == nil || br.Results[2].Result.Depth != 2 {
		t.Fatalf("item 2: %+v", br.Results[2])
	}
	if br.Results[3].Result == nil || br.Results[3].Result.Depth != 5 {
		t.Fatalf("item 3: %+v", br.Results[3])
	}
}

func TestBatchTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatch: 2})
	req := wire.BatchRequest{Requests: make([]wire.SolveRequest, 3)}
	resp, _ := postJSON(t, ts.URL+"/v1/batch", req)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}

func TestHealthzAndDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, body := get(t, ts.URL+"/v1/healthz")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"ok"`)) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}
	s.BeginDrain()
	resp, body = get(t, ts.URL+"/v1/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable || !bytes.Contains(body, []byte(`"draining"`)) {
		t.Fatalf("draining healthz: %d %s", resp.StatusCode, body)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/solve", wire.SolveRequest{Matrix: "1"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("solve during drain: %d, want 503", resp.StatusCode)
	}
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// holdSlot occupies one solve slot through the scheduler (as the default
// tenant) and returns its release.
func holdSlot(t *testing.T, s *Server) func() {
	t.Helper()
	release, err := s.sched.acquire(context.Background(), nil)
	if err != nil {
		t.Fatalf("holdSlot: %v", err)
	}
	return release
}

func TestAdmissionQueueFull(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1, MaxQueue: -1})
	// Occupy the only solve slot, then any request must bounce with 429
	// because no waiting is allowed.
	release := holdSlot(t, s)
	defer release()
	resp, body := postJSON(t, ts.URL+"/v1/solve", wire.SolveRequest{Matrix: "1"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
	}
	// The rejection carries the machine-readable code and a Retry-After hint.
	var e wire.ErrorResponse
	if err := json.Unmarshal(body, &e); err != nil || e.Code != wire.CodeQueueFull {
		t.Fatalf("429 body code = %q (%v), want %q: %s", e.Code, err, wire.CodeQueueFull, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 carries no Retry-After header")
	}
	snap := s.metricsSnapshot()
	if snap.Requests.RejectedQueue != 1 {
		t.Fatalf("rejected_queue_full = %d, want 1", snap.Requests.RejectedQueue)
	}
}

func TestAdmissionQueueWaitsForSlot(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1, MaxQueue: 4})
	release := holdSlot(t, s)
	done := make(chan *http.Response, 1)
	go func() {
		resp, _ := postJSON(t, ts.URL+"/v1/solve", wire.SolveRequest{Matrix: "10\n01"})
		done <- resp
	}()
	// The request should be queued, not rejected.
	select {
	case resp := <-done:
		t.Fatalf("request completed with %d while the slot was held", resp.StatusCode)
	case <-time.After(100 * time.Millisecond):
	}
	release() // free the slot
	select {
	case resp := <-done:
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("queued request finished with %d", resp.StatusCode)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("queued request never completed")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postJSON(t, ts.URL+"/v1/solve", wire.SolveRequest{Matrix: fig1b})
	postJSON(t, ts.URL+"/v1/solve", wire.SolveRequest{Matrix: fig1b})
	resp, body := get(t, ts.URL+"/v1/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("bad metrics JSON: %v\n%s", err, body)
	}
	if snap.Requests.Solve != 2 || snap.Solves.Completed != 2 {
		t.Fatalf("metrics: %+v", snap)
	}
	if snap.Cache.Hits != 1 || snap.HitRate == 0 {
		t.Fatalf("cache metrics: %+v", snap.Cache)
	}
	if snap.Solves.AvgNS <= 0 || snap.Solves.MaxNS < snap.Solves.AvgNS {
		t.Fatalf("latency metrics inconsistent: %+v", snap.Solves)
	}
}

func TestPerRequestTimeoutProducesConsistentResult(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// A 1 ms budget on a nontrivial matrix: the solve may finish optimally
	// (fast machine) or come back canceled — either way the response must be
	// well-formed with a full partition.
	req := wire.SolveRequest{
		Matrix:  fig1b,
		Options: &wire.SolveOptions{TimeoutMS: 1},
	}
	resp, body := postJSON(t, ts.URL+"/v1/solve", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	res := decodeResult(t, body)
	if len(res.Partition) != res.Depth || res.Depth == 0 {
		t.Fatalf("inconsistent partition: %+v", res)
	}
	if res.Canceled && res.SATNS != 0 && res.SATCalls == 0 {
		t.Fatalf("canceled result has SAT time without SAT calls: %+v", res)
	}
}

func TestHeuristicOption(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := wire.SolveRequest{
		Matrix:  fig1b,
		Options: &wire.SolveOptions{Heuristic: true, Trials: 3},
	}
	resp, body := postJSON(t, ts.URL+"/v1/solve", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	res := decodeResult(t, body)
	if res.SATCalls != 0 {
		t.Fatalf("heuristic request ran the SAT stage: %+v", res)
	}
	if len(res.Partition) != res.Depth {
		t.Fatalf("inconsistent partition: %+v", res)
	}
}

// TestSolveEdgeShapeMatrices runs the degenerate client shapes end to end:
// all-zero, 1×1, single-row, and duplicate-rows-across-blocks matrices must
// produce valid optimal responses (and their resubmissions cache hits).
func TestSolveEdgeShapeMatrices(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name  string
		req   wire.SolveRequest
		depth int
	}{
		{"all-zero", wire.SolveRequest{Rows: [][]int{{0, 0}, {0, 0}, {0, 0}}}, 0},
		{"1x1", wire.SolveRequest{Matrix: "1"}, 1},
		{"single row", wire.SolveRequest{Matrix: "10110"}, 1},
		{"duplicate rows across blocks", wire.SolveRequest{Matrix: "1100\n0011\n1100\n0011"}, 2},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/solve", tc.req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", tc.name, resp.StatusCode, body)
		}
		res := decodeResult(t, body)
		if res.Depth != tc.depth || !res.Optimal {
			t.Errorf("%s: depth=%d optimal=%v, want %d/true", tc.name, res.Depth, res.Optimal, tc.depth)
		}
		if len(res.Partition) != tc.depth {
			t.Errorf("%s: %d rects, want %d", tc.name, len(res.Partition), tc.depth)
		}
		resp, body = postJSON(t, ts.URL+"/v1/solve", tc.req)
		if resp.StatusCode != http.StatusOK || !decodeResult(t, body).CacheHit {
			t.Errorf("%s: resubmission was not a cache hit", tc.name)
		}
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/solve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/solve: %d, want 405", resp.StatusCode)
	}
}

// ExampleServer shows the minimal client flow against the service.
func ExampleServer() {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body := `{"matrix":"11\n01"}`
	resp, _ := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(body))
	var res wire.ResultJSON
	json.NewDecoder(resp.Body).Decode(&res)
	resp.Body.Close()
	fmt.Println(res.Depth, res.Optimal)
	// Output: 2 true
}
