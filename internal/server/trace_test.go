package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/obs"
	"repro/internal/wire"
)

// gap8 is a matrix whose heuristic depth exceeds its rank lower bound, so a
// solve genuinely runs SAT depth probes — the spans and progress samples the
// trace assertions need. (fig1b's packing matches the bound, so its trace
// has no probe span.)
const gap8 = `10110101
01101110
11010011
00111101
11101010
01011101
10110110
01101011`

// postTraced posts one solve with a traceparent header, as a gateway would.
func postTraced(t *testing.T, url, traceparent string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func spanNames(tj *obs.TraceJSON) map[string]int {
	names := make(map[string]int)
	for _, sp := range tj.Spans {
		names[sp.Name]++
	}
	return names
}

// TestSolveWithTraceparentReturnsTrace is the backend half of cross-tier
// stitching: a request carrying a traceparent header gets the span tree back
// in the response, under the caller's trace ID, rooted at the caller's span.
func TestSolveWithTraceparentReturnsTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const traceID = "0123456789abcdef0123456789abcdef"
	const parentID = "00000000000000aa"
	resp, body := postTraced(t, ts.URL+"/v1/solve", "00-"+traceID+"-"+parentID+"-01",
		wire.SolveRequest{Matrix: gap8})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	res := decodeResult(t, body)
	if res.Trace == nil {
		t.Fatalf("no trace in response to traced request")
	}
	if res.Trace.TraceID != traceID {
		t.Fatalf("trace ID %s, want caller's %s", res.Trace.TraceID, traceID)
	}
	names := spanNames(res.Trace)
	for _, want := range []string{"solve", "preprocess", "decompose", "block", "pack", "probe"} {
		if names[want] == 0 {
			t.Fatalf("trace missing %q span; have %v", want, names)
		}
	}
	// The backend root must link to the caller's span so the gateway-side
	// tree assembles without extra roots.
	for _, sp := range res.Trace.Spans {
		if sp.Name == "solve" {
			if sp.Parent != "aa" {
				t.Fatalf("backend root parent %q, want %q", sp.Parent, "aa")
			}
		}
	}
	if len(res.Trace.Progress) == 0 {
		t.Fatalf("no progress samples in traced SAT solve")
	}
}

// TestSolveWithoutTraceparentOmitsTrace: plain clients never pay for (or
// see) the span payload, but the ring still records the trace server-side.
func TestSolveWithoutTraceparentOmitsTrace(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/solve", wire.SolveRequest{Matrix: fig1b})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if res := decodeResult(t, body); res.Trace != nil {
		t.Fatalf("untraced request got a trace payload")
	}
	if traces := s.cfg.Tracer.Traces(); len(traces.Recent) == 0 {
		t.Fatalf("server ring recorded no traces")
	}
}

// TestDebugTracesEndpoint: GET /v1/debug/traces serves the rings.
func TestDebugTracesEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postJSON(t, ts.URL+"/v1/solve", wire.SolveRequest{Matrix: fig1b})
	resp, err := http.Get(ts.URL + "/v1/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var traces obs.TracesJSON
	if err := json.NewDecoder(resp.Body).Decode(&traces); err != nil {
		t.Fatal(err)
	}
	if len(traces.Recent) == 0 || len(traces.Slowest) == 0 {
		t.Fatalf("empty trace rings after a solve: %d recent, %d slowest",
			len(traces.Recent), len(traces.Slowest))
	}
	if names := spanNames(traces.Recent[0]); names["solve"] == 0 {
		t.Fatalf("recent trace has no solve span: %v", names)
	}
}

// TestMetricsHistogramPercentiles: /v1/metrics carries percentile summaries
// and the legacy scalars now derive from them.
func TestMetricsHistogramPercentiles(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for i := 0; i < 3; i++ {
		postJSON(t, ts.URL+"/v1/solve", wire.SolveRequest{Matrix: fig1b})
	}
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	lat := snap.Solves.Latency
	if lat.Count != 3 || lat.P50NS <= 0 || lat.P99NS < lat.P50NS || lat.MaxNS <= 0 {
		t.Fatalf("bad latency snapshot: %+v", lat)
	}
	if snap.Solves.AvgNS != lat.AvgNS || snap.Solves.MaxNS != lat.MaxNS {
		t.Fatalf("compat scalars diverge from histogram: %+v vs %+v", snap.Solves, lat)
	}
	if snap.Solves.QueueWait.Count == 0 {
		t.Fatalf("queue wait histogram never observed")
	}
}
