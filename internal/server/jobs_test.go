package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/bitmat"
	"repro/internal/wire"
)

// Test matrices, regenerated deterministically. The seeds were picked so the
// instances have the properties the tests rely on:
//
//   - hardMatrix: the exact solve takes on the order of a second (a wide
//     window for mid-solve cancellation), and is interruptible throughout —
//     cancellation reaches the CDCL search between conflicts.
//   - gapMatrix: the heuristic pipeline (SkipSAT) leaves the optimality gap
//     open — pack depth 9 against a best bound of 8 — so a degraded answer
//     is observably non-optimal.
//   - progressMatrix: hard enough (~100ms exact) to emit live progress
//     events, easy enough that the streaming test finishes quickly.
func hardMatrix() *bitmat.Matrix {
	return bitmat.Random(rand.New(rand.NewSource(6509)), 10, 10, 0.55)
}

func gapMatrix() *bitmat.Matrix {
	return bitmat.Random(rand.New(rand.NewSource(6408)), 9, 9, 0.55)
}

func progressMatrix() *bitmat.Matrix {
	return bitmat.Random(rand.New(rand.NewSource(4510)), 10, 10, 0.35)
}

func decodeJob(t *testing.T, data []byte) *wire.JobJSON {
	t.Helper()
	var j wire.JobJSON
	if err := json.Unmarshal(data, &j); err != nil {
		t.Fatalf("bad job JSON: %v\n%s", err, data)
	}
	return &j
}

func decodeError(t *testing.T, data []byte) *wire.ErrorResponse {
	t.Helper()
	var e wire.ErrorResponse
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatalf("bad error JSON: %v\n%s", err, data)
	}
	return &e
}

// submitJob posts a job request with optional API key and returns the
// response.
func submitJob(t *testing.T, url, key string, req wire.JobRequest) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, url+"/v1/jobs", strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if key != "" {
		hreq.Header.Set("Authorization", "Bearer "+key)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := bufio.NewReader(resp.Body).WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	return resp, []byte(sb.String())
}

// jobRoundTrip GETs /v1/jobs/{id} with optional key.
func getJob(t *testing.T, url, key, id string) (*http.Response, []byte) {
	t.Helper()
	hreq, err := http.NewRequest(http.MethodGet, url+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		hreq.Header.Set("Authorization", "Bearer "+key)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	bufio.NewReader(resp.Body).WriteTo(&sb)
	return resp, []byte(sb.String())
}

// waitJobState polls until the job reaches a state satisfying ok, failing
// the test after the deadline.
func waitJobState(t *testing.T, url, key, id string, ok func(*wire.JobJSON) bool) *wire.JobJSON {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, body := getJob(t, url, key, id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll job %s: %d: %s", id, resp.StatusCode, body)
		}
		j := decodeJob(t, body)
		if ok(j) {
			return j
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached the wanted state", id)
	return nil
}

func TestJobSubmitPollDone(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := submitJob(t, ts.URL, "", wire.JobRequest{API: wire.V1, Matrix: fig1b})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", resp.StatusCode, body)
	}
	j := decodeJob(t, body)
	if j.ID == "" || wire.JobTerminal(j.State) && j.Result == nil {
		t.Fatalf("submit snapshot: %+v", j)
	}
	if j.API != wire.V1 || j.Tenant != DefaultTenant {
		t.Fatalf("submit snapshot api=%d tenant=%q, want %d/%q", j.API, j.Tenant, wire.V1, DefaultTenant)
	}
	fin := waitJobState(t, ts.URL, "", j.ID, func(j *wire.JobJSON) bool { return wire.JobTerminal(j.State) })
	if fin.State != wire.JobDone || fin.Result == nil {
		t.Fatalf("final state: %+v", fin)
	}
	if fin.Result.Depth != 5 || !fin.Result.Optimal {
		t.Fatalf("job result depth=%d optimal=%v, want 5/true", fin.Result.Depth, fin.Result.Optimal)
	}
	if fin.Degraded {
		t.Fatalf("normally-admitted job marked degraded")
	}

	// The job's answer and the sync path must agree (the job populated the
	// cache, so the sync resubmission is a hit with the same fingerprint).
	sresp, sbody := postJSON(t, ts.URL+"/v1/solve", wire.SolveRequest{Matrix: fig1b})
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("sync solve: %d", sresp.StatusCode)
	}
	sync := decodeResult(t, sbody)
	if !sync.CacheHit || sync.Depth != fin.Result.Depth || sync.Fingerprint != fin.Result.Fingerprint {
		t.Fatalf("sync path disagrees with job result: %+v vs %+v", sync, fin.Result)
	}
}

func TestJobSubmitRejectsUnknownAPI(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := submitJob(t, ts.URL, "", wire.JobRequest{API: 99, Matrix: fig1b})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if e := decodeError(t, body); e.Code != wire.CodeUnsupportedAPI {
		t.Fatalf("code %q, want %q", e.Code, wire.CodeUnsupportedAPI)
	}
}

// sseFrame is one parsed text/event-stream event.
type sseFrame struct {
	id    string
	name  string
	event wire.JobEvent
}

// readSSE consumes an SSE body until the stream closes or a terminal (done)
// event arrives, returning the frames in order.
func readSSE(t *testing.T, body *bufio.Scanner) []sseFrame {
	t.Helper()
	var frames []sseFrame
	var cur sseFrame
	var data string
	flush := func() {
		if data == "" {
			return
		}
		if err := json.Unmarshal([]byte(data), &cur.event); err != nil {
			t.Fatalf("bad SSE data %q: %v", data, err)
		}
		frames = append(frames, cur)
		cur, data = sseFrame{}, ""
	}
	for body.Scan() {
		line := body.Text()
		switch {
		case line == "":
			flush()
			if len(frames) > 0 && frames[len(frames)-1].event.Job != nil {
				return frames
			}
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		}
	}
	flush()
	return frames
}

// streamEvents opens GET /v1/jobs/{id}/events (optionally resuming after
// lastID) and reads frames until the terminal event.
func streamEvents(t *testing.T, ctx context.Context, url, id string, lastID int64) []sseFrame {
	t.Helper()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastID > 0 {
		hreq.Header.Set("Last-Event-ID", fmt.Sprint(lastID))
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type %q", ct)
	}
	return readSSE(t, bufio.NewScanner(resp.Body))
}

// TestJobEventsStream covers the anytime-result contract: the SSE stream
// shows the lifecycle (queued → running → done), live solver progress whose
// per-block bounds only tighten, and a terminal snapshot whose result
// matches what the sync path returns for the same matrix.
func TestJobEventsStream(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	rows := progressMatrix().ToRows()
	resp, body := submitJob(t, ts.URL, "", wire.JobRequest{Rows: rows})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", resp.StatusCode, body)
	}
	id := decodeJob(t, body).ID

	frames := streamEvents(t, context.Background(), ts.URL, id, 0)
	if len(frames) < 3 {
		t.Fatalf("only %d events; want at least queued, running, done", len(frames))
	}
	var sawQueued, sawRunning, progress int
	var lastSeq int64
	bounds := map[int]int{} // block → last seen bound
	for _, f := range frames {
		if f.event.Seq <= lastSeq {
			t.Fatalf("event seq not strictly increasing: %d after %d", f.event.Seq, lastSeq)
		}
		lastSeq = f.event.Seq
		if f.id != fmt.Sprint(f.event.Seq) {
			t.Fatalf("SSE id %q != seq %d", f.id, f.event.Seq)
		}
		switch {
		case f.event.Job != nil:
			if f.name != wire.EventDone {
				t.Fatalf("terminal event named %q", f.name)
			}
		case f.event.Progress != nil:
			if f.name != wire.EventProgress {
				t.Fatalf("progress event named %q", f.name)
			}
			progress++
			p := f.event.Progress
			if prev, ok := bounds[p.Block]; ok && p.Bound > prev {
				t.Fatalf("block %d bound loosened: %d after %d", p.Block, p.Bound, prev)
			}
			bounds[p.Block] = p.Bound
			if p.LB > p.Bound {
				t.Fatalf("progress lb %d above bound %d", p.LB, p.Bound)
			}
		default:
			if f.event.State == wire.JobQueued {
				sawQueued++
			}
			if f.event.State == wire.JobRunning {
				sawRunning++
			}
		}
	}
	if sawQueued == 0 || sawRunning == 0 || progress == 0 {
		t.Fatalf("lifecycle incomplete: queued=%d running=%d progress=%d", sawQueued, sawRunning, progress)
	}
	term := frames[len(frames)-1].event
	if term.Job == nil || term.Job.State != wire.JobDone || term.Job.Result == nil {
		t.Fatalf("no terminal done event: %+v", term)
	}

	// Anytime bounds must land on the sync answer: resolving the same
	// matrix on the sync path yields the identical depth and fingerprint.
	sresp, sbody := postJSON(t, ts.URL+"/v1/solve", wire.SolveRequest{Rows: rows})
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("sync solve: %d", sresp.StatusCode)
	}
	sync := decodeResult(t, sbody)
	if sync.Depth != term.Job.Result.Depth || sync.Fingerprint != term.Job.Result.Fingerprint {
		t.Fatalf("stream result disagrees with sync path: %+v vs %+v", term.Job.Result, sync)
	}

	// Resuming mid-stream with Last-Event-ID replays only the tail, still
	// ending in the same terminal snapshot.
	mid := frames[len(frames)/2].event.Seq
	tail := streamEvents(t, context.Background(), ts.URL, id, mid)
	if len(tail) == 0 || tail[0].event.Seq <= mid {
		t.Fatalf("resume from %d replayed seq %d", mid, tail[0].event.Seq)
	}
	last := tail[len(tail)-1].event
	if last.Job == nil || last.Job.State != wire.JobDone {
		t.Fatalf("resumed stream missing terminal event")
	}
}

// TestJobCancelMidSolveFreesSlot is the DELETE acceptance path: canceling a
// running job interrupts its CDCL search promptly and hands the freed slot
// to the next queued job.
func TestJobCancelMidSolveFreesSlot(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 1})
	hard := hardMatrix().ToRows()

	resp, body := submitJob(t, ts.URL, "", wire.JobRequest{Rows: hard})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit hard: %d: %s", resp.StatusCode, body)
	}
	hardID := decodeJob(t, body).ID
	waitJobState(t, ts.URL, "", hardID, func(j *wire.JobJSON) bool { return j.State == wire.JobRunning })

	// Second job queues behind the only slot.
	resp, body = submitJob(t, ts.URL, "", wire.JobRequest{Matrix: fig1b})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit queued: %d: %s", resp.StatusCode, body)
	}
	queuedID := decodeJob(t, body).ID
	if st := decodeJob(t, body).State; st != wire.JobQueued {
		t.Fatalf("second job state %q, want queued", st)
	}

	// DELETE the running job: it must reach canceled (not sit until its
	// 30s default timeout), and the queued job must get the slot and finish.
	dreq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+hardID, nil)
	dresp, err := http.DefaultClient.Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d", dresp.StatusCode)
	}
	canceled := waitJobState(t, ts.URL, "", hardID, func(j *wire.JobJSON) bool { return wire.JobTerminal(j.State) })
	if canceled.State != wire.JobCanceled {
		t.Fatalf("hard job state %q, want canceled", canceled.State)
	}
	if canceled.Result != nil && !canceled.Result.Canceled {
		t.Fatalf("canceled job carries a non-canceled result: %+v", canceled.Result)
	}
	fin := waitJobState(t, ts.URL, "", queuedID, func(j *wire.JobJSON) bool { return wire.JobTerminal(j.State) })
	if fin.State != wire.JobDone || fin.Result == nil || fin.Result.Depth != 5 {
		t.Fatalf("queued job after cancel: %+v", fin)
	}

	// Cancel is idempotent: deleting a terminal job re-answers the snapshot.
	dreq, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+hardID, nil)
	dresp, err = http.DefaultClient.Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("idempotent cancel: %d", dresp.StatusCode)
	}
}

// TestJobCancelOnDisconnect: when the last /events watcher of an opted-in
// job disconnects mid-solve, the job is canceled and its goroutines drain —
// no runner or watcher leaks.
func TestJobCancelOnDisconnect(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 1})
	before := runtime.NumGoroutine()

	resp, body := submitJob(t, ts.URL, "", wire.JobRequest{
		Rows:               hardMatrix().ToRows(),
		CancelOnDisconnect: true,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", resp.StatusCode, body)
	}
	id := decodeJob(t, body).ID

	// Open the stream, read until the running event, then drop the
	// connection — the solve must be canceled, not left to burn the slot.
	ctx, cancel := context.WithCancel(context.Background())
	hreq, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/jobs/"+id+"/events", nil)
	sresp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(sresp.Body)
	running := false
	for sc.Scan() && !running {
		running = strings.Contains(sc.Text(), `"state":"running"`)
	}
	if !running {
		t.Fatalf("stream closed before the job ran")
	}
	cancel()
	sresp.Body.Close()

	fin := waitJobState(t, ts.URL, "", id, func(j *wire.JobJSON) bool { return wire.JobTerminal(j.State) })
	if fin.State != wire.JobCanceled {
		t.Fatalf("job state after disconnect %q, want canceled", fin.State)
	}

	// Goroutines must settle back: the runner exited with the canceled
	// solve and the SSE handler returned. Allow slack for the HTTP stack's
	// transient conns.
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+3 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after disconnect-cancel", before, runtime.NumGoroutine())
}

// TestJobShedDegrade is the graceful-degradation acceptance: on a saturated
// queue an opted-in job gets a heuristic-only answer (optimal=false,
// degraded) instead of a 429, while a non-opted job still gets the coded
// 429.
func TestJobShedDegrade(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1, MaxQueue: -1})
	release := holdSlot(t, s)
	defer release()

	rows := gapMatrix().ToRows()

	// Without the opt-in: coded queue_full rejection with Retry-After.
	resp, body := submitJob(t, ts.URL, "", wire.JobRequest{Rows: rows})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submit: %d, want 429", resp.StatusCode)
	}
	if e := decodeError(t, body); e.Code != wire.CodeQueueFull {
		t.Fatalf("code %q, want %q", e.Code, wire.CodeQueueFull)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("429 without Retry-After")
	}

	// With the opt-in: accepted, answered by the heuristic pipeline.
	resp, body = submitJob(t, ts.URL, "", wire.JobRequest{Rows: rows, Degrade: true})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("degrade submit: %d: %s", resp.StatusCode, body)
	}
	id := decodeJob(t, body).ID
	fin := waitJobState(t, ts.URL, "", id, func(j *wire.JobJSON) bool { return wire.JobTerminal(j.State) })
	if fin.State != wire.JobDone || !fin.Degraded || fin.Result == nil {
		t.Fatalf("degraded job: %+v", fin)
	}
	if fin.Result.Optimal {
		t.Fatalf("degraded answer claims optimality: %+v", fin.Result)
	}
	if fin.Result.SATCalls != 0 {
		t.Fatalf("degraded answer ran the SAT stage: %+v", fin.Result)
	}
	if len(fin.Result.Partition) != fin.Result.Depth || fin.Result.Depth == 0 {
		t.Fatalf("degraded partition inconsistent: %+v", fin.Result)
	}

	snap := s.metricsSnapshot()
	if snap.Jobs.Shed != 1 || snap.Jobs.Done != 1 {
		t.Fatalf("shed metrics: %+v", snap.Jobs)
	}
}

// TestJobQuotaAndVisibility: per-tenant quota rejections carry the
// machine-readable code, degrade still answers under quota pressure, and a
// job is only visible to its own tenant.
func TestJobQuotaAndVisibility(t *testing.T) {
	s, ts := newTestServer(t, Config{
		MaxConcurrent: 1,
		Tenants: []TenantConfig{
			{Name: "alpha", Keys: []string{"alpha-key"}, Quota: 1},
			{Name: "beta", Keys: []string{"beta-key"}},
		},
	})
	release := holdSlot(t, s)
	defer release()

	resp, body := submitJob(t, ts.URL, "alpha-key", wire.JobRequest{Matrix: fig1b})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d: %s", resp.StatusCode, body)
	}
	alphaJob := decodeJob(t, body).ID

	// Quota hit: coded 429 with Retry-After.
	resp, body = submitJob(t, ts.URL, "alpha-key", wire.JobRequest{Matrix: fig1b})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("quota submit: %d, want 429", resp.StatusCode)
	}
	if e := decodeError(t, body); e.Code != wire.CodeQuotaExceeded {
		t.Fatalf("code %q, want %q", e.Code, wire.CodeQuotaExceeded)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("quota 429 without Retry-After")
	}

	// Degrade converts the quota rejection into a heuristic answer too.
	resp, body = submitJob(t, ts.URL, "alpha-key", wire.JobRequest{Rows: gapMatrix().ToRows(), Degrade: true})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("degrade-under-quota: %d: %s", resp.StatusCode, body)
	}
	shedID := decodeJob(t, body).ID
	fin := waitJobState(t, ts.URL, "alpha-key", shedID, func(j *wire.JobJSON) bool { return wire.JobTerminal(j.State) })
	if !fin.Degraded || fin.Tenant != "alpha" {
		t.Fatalf("degraded-under-quota job: %+v", fin)
	}

	// Visibility: another tenant — or no tenant — sees a 404, not the job;
	// an unknown key is a coded 401.
	for _, key := range []string{"beta-key", ""} {
		resp, body := getJob(t, ts.URL, key, alphaJob)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("key %q sees alpha's job: %d %s", key, resp.StatusCode, body)
		}
		if e := decodeError(t, body); e.Code != wire.CodeNotFound {
			t.Fatalf("cross-tenant code %q, want %q", e.Code, wire.CodeNotFound)
		}
	}
	resp, body = getJob(t, ts.URL, "no-such-key", alphaJob)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unknown key: %d, want 401", resp.StatusCode)
	}
	if e := decodeError(t, body); e.Code != wire.CodeUnauthorized {
		t.Fatalf("auth code %q, want %q", e.Code, wire.CodeUnauthorized)
	}

	// Cleanup: cancel alpha's queued job so the server drains.
	dreq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+alphaJob, nil)
	dreq.Header.Set("Authorization", "Bearer alpha-key")
	if dresp, err := http.DefaultClient.Do(dreq); err == nil {
		dresp.Body.Close()
	}
}

// TestJobFairShareThroughput is the QoS acceptance: 64 concurrent jobs from
// two tenants with weights 3:1 share the (single) solve slot in proportion.
// The deterministic form of "within 10%": any consistent scheduler snapshot
// taken while both queues are non-empty shows admitted counts within one
// DRR round of the exact 3:1 line, |admitted(heavy) − 3·admitted(light)| ≤ 3.
func TestJobFairShareThroughput(t *testing.T) {
	s, ts := newTestServer(t, Config{
		MaxConcurrent: 1,
		MaxQueue:      128,
		Tenants: []TenantConfig{
			{Name: "heavy", Keys: []string{"kh"}, Weight: 3},
			{Name: "light", Keys: []string{"kl"}, Weight: 1},
		},
	})
	release := holdSlot(t, s) // fill both queues before any grant

	const perTenant = 32
	rng := rand.New(rand.NewSource(7))
	ids := map[string][]string{}
	for i := 0; i < perTenant; i++ {
		for _, key := range []string{"kh", "kl"} {
			// Distinct cheap instances per job: no cache hits, no
			// singleflight collapsing — every job costs a real solve.
			rows := bitmat.Random(rng, 8, 8, 0.5).ToRows()
			resp, body := submitJob(t, ts.URL, key, wire.JobRequest{Rows: rows})
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("submit %s #%d: %d: %s", key, i, resp.StatusCode, body)
			}
			ids[key] = append(ids[key], decodeJob(t, body).ID)
		}
	}

	admitted := func() (heavy, light int64) {
		_, _, tenants := s.sched.snapshot()
		for _, ts := range tenants {
			switch ts.Name {
			case "heavy":
				heavy = ts.Admitted
			case "light":
				light = ts.Admitted
			}
		}
		return
	}

	release() // start the drain; sample the ratio while both queues move
	inWindow := 0
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		h, l := admitted()
		if h+l >= 2*perTenant {
			break
		}
		// Both queues non-empty while heavy has grants left beyond its
		// 10 full rounds: check the proportionality invariant.
		if total := h + l; total >= 4 && total <= 40 {
			if d := h - 3*l; d < -3 || d > 3 {
				t.Fatalf("fair-share violated: heavy=%d light=%d (|h-3l|=%d > 3)", h, l, d)
			}
			inWindow++
		}
		time.Sleep(200 * time.Microsecond)
	}
	if inWindow == 0 {
		t.Fatalf("no scheduler samples landed in the contention window; solves drained too fast to observe")
	}

	for key, list := range ids {
		for _, id := range list {
			fin := waitJobState(t, ts.URL, key, id, func(j *wire.JobJSON) bool { return wire.JobTerminal(j.State) })
			if fin.State != wire.JobDone {
				t.Fatalf("%s job %s finished %q", key, id, fin.State)
			}
		}
	}
	h, l := admitted()
	if h != perTenant || l != perTenant {
		t.Fatalf("final admitted heavy=%d light=%d, want %d each", h, l, perTenant)
	}
}

// TestJobCancelLeaderFollowerReelects: canceling a job that leads a
// singleflight group must not strand a sync follower on the same
// fingerprint — the follower re-elects itself and completes.
func TestJobCancelLeaderFollowerReelects(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 2})
	rows := hardMatrix().ToRows()

	resp, body := submitJob(t, ts.URL, "", wire.JobRequest{Rows: rows})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", resp.StatusCode, body)
	}
	id := decodeJob(t, body).ID
	waitJobState(t, ts.URL, "", id, func(j *wire.JobJSON) bool { return j.State == wire.JobRunning })

	// The sync solve of the same matrix joins the job's singleflight group
	// as a follower.
	type syncDone struct {
		res  *wire.ResultJSON
		code int
	}
	followerDone := make(chan syncDone, 1)
	go func() {
		resp, body := postJSON(t, ts.URL+"/v1/solve", wire.SolveRequest{Rows: rows})
		var res wire.ResultJSON
		json.Unmarshal(body, &res)
		followerDone <- syncDone{&res, resp.StatusCode}
	}()
	time.Sleep(100 * time.Millisecond) // let the follower join the flight

	dreq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	dresp, err := http.DefaultClient.Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()

	select {
	case d := <-followerDone:
		if d.code != http.StatusOK {
			t.Fatalf("follower after leader cancel: %d", d.code)
		}
		if len(d.res.Partition) != d.res.Depth || d.res.Depth == 0 {
			t.Fatalf("follower result inconsistent: %+v", d.res)
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("follower hung after the leading job was canceled")
	}
}
