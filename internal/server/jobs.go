package server

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/bitmat"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/wire"
)

// The async job surface:
//
//	POST   /v1/jobs             submit; 202 + job snapshot (state "queued")
//	GET    /v1/jobs/{id}        poll; snapshot with result once done
//	DELETE /v1/jobs/{id}        cancel; propagated into the CDCL search via
//	                            the job context → SolveContext/SetInterrupt
//	GET    /v1/jobs/{id}/events SSE: status transitions, anytime progress
//	                            (best depth, proven lower bound, conflicts,
//	                            per-block position), terminal snapshot
//
// A job is a solve whose lifetime is decoupled from any HTTP request: the
// submit returns immediately, the solve runs under the job's own context,
// and any number of watchers stream its events. Jobs go through the same
// tenant scheduler as sync solves — one admission economy, so a tenant
// cannot bypass its fair share by switching surfaces.
//
// Overload shedding: a job submitted with "degrade": true converts an
// admission rejection (queue full, tenant quota) into a heuristic-only
// answer — the SkipSAT pipeline's row packing plus rank/greedy-fooling
// bounds, optimal=false (the CLI's exit-code-2 semantics) — instead of a
// 429. Sheds bypass the solve slots but are bounded by their own small
// semaphore; they cost milliseconds, not solver minutes.

// jobRegistry owns every live and recently-terminal job, bounded by
// MaxJobs with terminal-first eviction. TTL expiry runs on every lookup and
// on a periodic janitor sweep, so terminal jobs expire on schedule even on
// an otherwise idle daemon.
type jobRegistry struct {
	mu    sync.Mutex
	jobs  map[string]*job
	order []*job // insertion order, for eviction scans
	max   int
	ttl   time.Duration
	now   func() time.Time // injectable clock for TTL tests

	janitorStop chan struct{}
	janitorDone chan struct{}
}

func newJobRegistry(max int, ttl time.Duration) *jobRegistry {
	return &jobRegistry{jobs: make(map[string]*job), max: max, ttl: ttl, now: time.Now}
}

// startJanitor begins the periodic TTL sweep. Stop with stopJanitor.
func (r *jobRegistry) startJanitor() {
	r.janitorStop = make(chan struct{})
	r.janitorDone = make(chan struct{})
	period := r.ttl / 4
	if period <= 0 || period > time.Minute {
		period = time.Minute
	}
	go func() {
		defer close(r.janitorDone)
		t := time.NewTicker(period)
		defer t.Stop()
		for {
			select {
			case <-r.janitorStop:
				return
			case <-t.C:
				r.mu.Lock()
				r.evictLocked()
				r.mu.Unlock()
			}
		}
	}()
}

func (r *jobRegistry) stopJanitor() {
	if r.janitorStop == nil {
		return
	}
	close(r.janitorStop)
	<-r.janitorDone
	r.janitorStop = nil
}

// newJobID mints an unguessable job ID: 64 bits from crypto/rand. IDs are
// bearer-ish (tenant visibility is checked, but an unauthenticated default-
// tenant job is reachable by anyone who knows the ID), so they must not be
// enumerable from a counter.
func newJobID(prefix string) string {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		// crypto/rand failing means the platform's entropy source is gone;
		// refusing to mint guessable IDs is the safe failure.
		panic(fmt.Sprintf("server: crypto/rand unavailable: %v", err))
	}
	return prefix + hex.EncodeToString(b[:])
}

// jobEventRing caps the per-job replay buffer. Progress events beyond it
// age out oldest-first; late subscribers still see every state transition
// they need because the terminal snapshot is delivered from the job, not
// the ring.
const jobEventRing = 256

// job is one async solve. Mutable state sits behind mu; the runner
// goroutine is the only writer of state transitions.
type job struct {
	id       string
	tenant   *tenant
	lifetime context.Context    // the job's own context; outlives the submit request
	cancel   context.CancelFunc // aborts queue wait and CDCL search

	cancelOnDisconnect bool
	callback           string // validated callback_url ("" = no webhook)
	recovered          bool   // re-admitted from the journal after a restart

	mu       sync.Mutex
	state    string
	degraded bool
	created  time.Time
	started  time.Time // slot granted
	finished time.Time
	result   *wire.ResultJSON
	errMsg   string

	seq      int64            // last event sequence number issued
	events   []wire.JobEvent  // replay ring, oldest first
	subs     map[*jobSub]bool // live /events watchers
	watchers int
	done     chan struct{} // closed on terminal transition
}

// jobSub is one /events subscriber: a buffered live feed. A slow consumer
// drops progress events (the channel is full) but never the terminal
// snapshot — that is read from the job after done closes.
type jobSub struct {
	ch chan wire.JobEvent
}

func (r *jobRegistry) newJob(t *tenant, cancelOnDisconnect bool, cancel context.CancelFunc) *job {
	return r.insert("", t, cancelOnDisconnect, cancel)
}

// insert registers a job under id — freshly minted when empty (the normal
// submit path), or a journaled ID being restored after a restart so clients
// polling it keep working. A restore colliding with a live entry yields the
// existing job (replay is idempotent).
func (r *jobRegistry) insert(id string, t *tenant, cancelOnDisconnect bool, cancel context.CancelFunc) *job {
	r.mu.Lock()
	defer r.mu.Unlock()
	if id == "" {
		for {
			id = newJobID("j-")
			if _, taken := r.jobs[id]; !taken {
				break
			}
		}
	} else if existing := r.jobs[id]; existing != nil {
		return existing
	}
	j := &job{
		id:                 id,
		tenant:             t,
		cancel:             cancel,
		cancelOnDisconnect: cancelOnDisconnect,
		state:              wire.JobQueued,
		created:            r.now(),
		subs:               make(map[*jobSub]bool),
		done:               make(chan struct{}),
	}
	r.jobs[j.id] = j
	r.order = append(r.order, j)
	r.evictLocked()
	return j
}

// evictLocked drops expired terminal jobs, then — if still over capacity —
// the oldest terminal jobs. Live jobs are never evicted: their runner
// goroutine and cancellation handle must stay reachable.
func (r *jobRegistry) evictLocked() {
	now := r.now()
	kept := r.order[:0]
	for _, j := range r.order {
		j.mu.Lock()
		expired := wire.JobTerminal(j.state) && r.ttl > 0 && now.Sub(j.finished) > r.ttl
		j.mu.Unlock()
		if expired {
			delete(r.jobs, j.id)
			continue
		}
		kept = append(kept, j)
	}
	r.order = kept
	if len(r.order) <= r.max {
		return
	}
	kept = r.order[:0]
	over := len(r.order) - r.max
	for _, j := range r.order {
		j.mu.Lock()
		terminal := wire.JobTerminal(j.state)
		j.mu.Unlock()
		if over > 0 && terminal {
			delete(r.jobs, j.id)
			over--
			continue
		}
		kept = append(kept, j)
	}
	r.order = kept
}

// get resolves a job ID, expiring on the way: TTL eviction runs before the
// lookup so a terminal job past its TTL 404s even when no submission has
// run the eviction scan since it expired.
func (r *jobRegistry) get(id string) *job {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.evictLocked()
	return r.jobs[id]
}

func (r *jobRegistry) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.jobs)
}

// snapshot renders the job's wire form.
func (j *job) snapshot() *wire.JobJSON {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snapshotLocked()
}

func (j *job) snapshotLocked() *wire.JobJSON {
	out := &wire.JobJSON{
		API:       wire.V1,
		ID:        j.id,
		State:     j.state,
		Tenant:    j.tenant.cfg.Name,
		Degraded:  j.degraded,
		Recovered: j.recovered,
		Result:    j.result,
		Error:     j.errMsg,
	}
	switch {
	case !j.started.IsZero():
		out.QueuedMS = j.started.Sub(j.created).Milliseconds()
		end := j.finished
		if end.IsZero() {
			end = time.Now()
		}
		out.RunMS = end.Sub(j.started).Milliseconds()
	case !j.finished.IsZero(): // terminal without ever running
		out.QueuedMS = j.finished.Sub(j.created).Milliseconds()
	default:
		out.QueuedMS = time.Since(j.created).Milliseconds()
	}
	return out
}

// publishLocked appends an event to the ring and fans it out to live
// subscribers. Callers hold j.mu.
func (j *job) publishLocked(ev wire.JobEvent) {
	j.seq++
	ev.API = wire.V1
	ev.Seq = j.seq
	if len(j.events) >= jobEventRing {
		j.events = j.events[1:]
	}
	j.events = append(j.events, ev)
	for sub := range j.subs {
		select {
		case sub.ch <- ev:
		default: // slow consumer: drop; the ring and done-snapshot recover
		}
	}
}

// publishProgress converts one solver sample into a progress event. Called
// from solver goroutines via the obs progress sink.
func (j *job) publishProgress(s obs.ProgressSample) {
	p := obs.ProgressToJSON(s)
	j.mu.Lock()
	if !wire.JobTerminal(j.state) {
		j.publishLocked(wire.JobEvent{State: j.state, Progress: &p})
	}
	j.mu.Unlock()
}

// setRunning transitions queued → running (no-op if the job was canceled
// first) and reports whether the transition happened.
func (j *job) setRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != wire.JobQueued {
		return false
	}
	j.state = wire.JobRunning
	j.started = time.Now()
	j.publishLocked(wire.JobEvent{State: j.state})
	return true
}

// finish moves the job to a terminal state, publishes the terminal event
// and wakes every watcher. Only the first terminal transition wins.
func (j *job) finish(state string, res *wire.ResultJSON, errMsg string, degraded bool) bool {
	j.mu.Lock()
	if wire.JobTerminal(j.state) {
		j.mu.Unlock()
		return false
	}
	j.state = state
	j.result = res
	j.errMsg = errMsg
	j.degraded = degraded
	j.finished = time.Now()
	j.publishLocked(wire.JobEvent{State: state, Job: j.snapshotLocked()})
	j.mu.Unlock()
	close(j.done)
	return true
}

// subscribe registers an /events watcher and returns the replay of events
// after seq (0 = from the start) plus the live feed.
func (j *job) subscribe(after int64) (replay []wire.JobEvent, sub *jobSub) {
	sub = &jobSub{ch: make(chan wire.JobEvent, 64)}
	j.mu.Lock()
	for _, ev := range j.events {
		if ev.Seq > after {
			replay = append(replay, ev)
		}
	}
	j.subs[sub] = true
	j.watchers++
	j.mu.Unlock()
	return replay, sub
}

// unsubscribe drops a watcher. When the last watcher of a
// cancel_on_disconnect job leaves before the job finished, the job is
// canceled — the client that wanted the stream is gone.
func (j *job) unsubscribe(sub *jobSub) {
	j.mu.Lock()
	delete(j.subs, sub)
	j.watchers--
	cancelNow := j.watchers == 0 && j.cancelOnDisconnect && !wire.JobTerminal(j.state)
	j.mu.Unlock()
	if cancelNow {
		j.cancel()
	}
}

// ---------------------------------------------------------------------------
// Handlers.

// handleJobSubmit answers POST /v1/jobs: authenticate, validate, make the
// admission decision now (queue position, shed, or coded rejection), then
// hand the solve to the runner goroutine and answer 202 with the snapshot.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	s.met.jobsSubmitted.Add(1)
	t, ok := s.resolveTenant(w, r)
	if !ok {
		return
	}
	if s.draining.Load() {
		s.met.rejectedDrain.Add(1)
		s.writeError(w, apiErrorf(http.StatusServiceUnavailable, wire.CodeDraining, "server draining"))
		return
	}
	var req wire.JobRequest
	if err := s.decode(w, r, &req); err != nil {
		s.badRequest(w, err)
		return
	}
	if err := wire.CheckAPI(req.API); err != nil {
		s.met.badRequests.Add(1)
		s.writeError(w, apiErrorf(http.StatusBadRequest, wire.CodeUnsupportedAPI, "%v", err))
		return
	}
	if req.CallbackURL != "" {
		if err := s.validateCallback(req.CallbackURL); err != nil {
			s.met.badRequests.Add(1)
			s.writeError(w, apiErrorf(http.StatusBadRequest, wire.CodeBadRequest, "callback_url: %v", err))
			return
		}
	}
	sreq := req.SolveRequest()
	m, aerr := s.requestMatrix(sreq)
	if aerr != nil {
		s.met.badRequests.Add(1)
		s.writeError(w, aerr)
		return
	}
	opts, timeout, err := sreq.Options.Apply(*s.cfg.Options)
	if err != nil {
		s.badRequest(w, err)
		return
	}
	opts, timeout = s.solveBudgets(opts, timeout)

	// The admission decision happens here, synchronously and exactly: a
	// queue position (or immediate slot) is reserved before the 202 goes
	// out, so MaxQueue bounds jobs and sync solves together and a rejected
	// job never exists.
	resv, rerr := s.sched.reserve(t)
	if rerr != nil {
		if req.Degrade {
			// Graceful shed: answer with a heuristic-only result instead of
			// a 429. The job exists, runs the cheap pipeline, and completes
			// degraded.
			j := s.newJob(t, &req, m)
			go s.runShedJob(j, t, m, opts)
			writeJSON(w, http.StatusAccepted, j.snapshot())
			return
		}
		s.met.countRejection(admissionError(rerr))
		s.writeError(w, admissionError(rerr))
		return
	}
	j := s.newJob(t, &req, m)
	go s.runJob(j, t, m, opts, timeout, resv)
	writeJSON(w, http.StatusAccepted, j.snapshot())
}

// newJob creates the registry entry with its cancelable lifetime context
// already wired into j.cancel, and journals the accepted submission — the
// record hits the journal before the 202 goes out, so an accepted job is
// never forgotten by a crash.
func (s *Server) newJob(t *tenant, req *wire.JobRequest, m *bitmat.Matrix) *job {
	ctx, cancel := context.WithCancel(context.Background())
	j := s.jobs.newJob(t, req.CancelOnDisconnect, cancel)
	j.callback = req.CallbackURL
	j.mu.Lock()
	j.lifetime = ctx
	j.publishLocked(wire.JobEvent{State: wire.JobQueued})
	j.mu.Unlock()
	s.journalSubmit(j, req, m)
	return j
}

// finishJob is the server-level terminal transition: the job's own finish
// (first win only), then the durability tail — terminal record to the
// journal, webhook delivery if the job asked for one.
func (s *Server) finishJob(j *job, state string, res *wire.ResultJSON, errMsg string, degraded bool) {
	if !j.finish(state, res, errMsg, degraded) {
		return
	}
	snap := j.snapshot()
	s.journalTerminal(j, snap)
	if j.callback != "" && s.webhooks != nil {
		s.webhooks.enqueue(j.id, j.callback, snap)
	}
}

// runJob is the job runner: wait for the reserved slot, solve under the
// job's own context (so DELETE interrupts the CDCL search), finish.
func (s *Server) runJob(j *job, t *tenant, m *bitmat.Matrix, opts core.Options, timeout time.Duration, resv *reservation) {
	tq := time.Now()
	release, err := resv.wait(j.lifetime)
	if err != nil {
		// Canceled while queued: never ran, slot never held.
		s.met.jobsCanceled.Add(1)
		s.finishJob(j, wire.JobCanceled, nil, "", false)
		return
	}
	s.met.queueHist.Observe(time.Since(tq))
	defer release()
	if !j.setRunning() {
		return // already terminal (defensive; cancellation flows via ctx)
	}

	solveCtx := obs.WithProgressSink(j.lifetime, 0, j.publishProgress)
	if timeout > 0 {
		var cancel context.CancelFunc
		solveCtx, cancel = context.WithTimeout(solveCtx, timeout)
		defer cancel()
	}
	t0 := time.Now()
	res, fp, err := s.cache.SolveContextKeyed(solveCtx, m, opts)
	if err != nil {
		s.met.jobsFailed.Add(1)
		s.met.internalErrors.Add(1)
		s.finishJob(j, wire.JobFailed, nil, err.Error(), false)
		return
	}
	s.met.observeSolve(res, time.Since(t0))
	rj := wire.FromResult(res, fp)
	if res.Canceled && j.lifetime.Err() != nil {
		// DELETE mid-solve: the partial result (best depth so far) is kept
		// on the canceled snapshot.
		s.met.jobsCanceled.Add(1)
		s.finishJob(j, wire.JobCanceled, rj, "", false)
		return
	}
	s.met.jobsDone.Add(1)
	s.finishJob(j, wire.JobDone, rj, "", false)
}

// shedConcurrency bounds concurrent shed (heuristic-only) solves. Sheds
// bypass the solve slots — that is their point: answer when the queue
// can't — but they are not free, so a saturated server under a shed storm
// still does bounded work.
const shedConcurrency = 2

// runShedJob answers an admission-rejected, degrade-opted job with the
// heuristic-only pipeline: row packing plus rank/greedy-fooling lower
// bounds, never the SAT stage. The result is marked optimal=false unless
// the bounds happen to close the gap (or the cache already holds the
// proved answer — shedding never makes a cached instance worse).
func (s *Server) runShedJob(j *job, t *tenant, m *bitmat.Matrix, opts core.Options) {
	s.shedSem <- struct{}{}
	defer func() { <-s.shedSem }()
	if !j.setRunning() {
		return // already terminal (defensive; cancellation flows via ctx)
	}
	s.met.jobsShed.Add(1)
	s.sched.countShed(t)
	opts.SkipSAT = true
	opts.Portfolio = core.PortfolioOptions{}
	t0 := time.Now()
	res, fp, err := s.cache.SolveContextKeyed(j.lifetime, m, opts)
	if err != nil {
		s.met.jobsFailed.Add(1)
		s.finishJob(j, wire.JobFailed, nil, err.Error(), true)
		return
	}
	s.met.observeSolve(res, time.Since(t0))
	if j.lifetime.Err() != nil {
		s.met.jobsCanceled.Add(1)
		s.finishJob(j, wire.JobCanceled, nil, "", true)
		return
	}
	s.met.jobsDone.Add(1)
	s.finishJob(j, wire.JobDone, wire.FromResult(res, fp), "", true)
}

// jobFor resolves {id} to a job visible to the requesting tenant,
// answering the error itself otherwise. Visibility is per-tenant: a job ID
// from another tenant is a 404, not a 403 — existence is not leaked.
func (s *Server) jobFor(w http.ResponseWriter, r *http.Request) (*job, bool) {
	t, ok := s.resolveTenant(w, r)
	if !ok {
		return nil, false
	}
	j := s.jobs.get(r.PathValue("id"))
	if j == nil || j.tenant != t {
		s.writeError(w, apiErrorf(http.StatusNotFound, wire.CodeNotFound, "no such job"))
		return nil, false
	}
	return j, true
}

// handleJobGet answers GET /v1/jobs/{id} with the current snapshot.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

// handleJobCancel answers DELETE /v1/jobs/{id}: cancel the job's context —
// a queued job leaves the queue, a running one interrupts its CDCL search
// via the SolveContext/SetInterrupt plumbing and frees its slot. Canceling
// a terminal job is a no-op answering the final snapshot (idempotent).
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	j.cancel()
	writeJSON(w, http.StatusOK, j.snapshot())
}

// handleJobEvents answers GET /v1/jobs/{id}/events with an SSE stream:
// replayed history (resumable via Last-Event-ID), live status/progress
// events, and a final terminal snapshot, after which the stream closes.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	rc := http.NewResponseController(w)
	s.met.jobStreams.Add(1)

	after, _ := strconv.ParseInt(r.Header.Get("Last-Event-ID"), 10, 64)
	replay, sub := j.subscribe(after)
	defer j.unsubscribe(sub)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no") // proxies must not buffer SSE
	w.WriteHeader(http.StatusOK)

	var last int64
	write := func(ev wire.JobEvent) bool {
		if ev.Seq <= last {
			return true
		}
		last = ev.Seq
		if err := writeSSE(w, ev); err != nil {
			return false
		}
		rc.Flush()
		return true
	}
	for _, ev := range replay {
		if !write(ev) {
			return
		}
	}
	for {
		select {
		case ev := <-sub.ch:
			if !write(ev) {
				return
			}
			if ev.Job != nil {
				return // terminal event delivered live
			}
		case <-j.done:
			// Drain anything still buffered, then deliver the terminal tail
			// from the ring — a slow consumer may have dropped live events,
			// but the terminal snapshot must always arrive.
			for {
				select {
				case ev := <-sub.ch:
					if !write(ev) {
						return
					}
					if ev.Job != nil {
						return
					}
					continue
				default:
				}
				break
			}
			j.mu.Lock()
			tail := make([]wire.JobEvent, 0, 2)
			for _, ev := range j.events {
				if ev.Seq > last {
					tail = append(tail, ev)
				}
			}
			j.mu.Unlock()
			for _, ev := range tail {
				if !write(ev) {
					return
				}
			}
			return
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE emits one event in text/event-stream framing: the sequence as
// id (resumption via Last-Event-ID), the event name from the payload
// shape, the JSON-encoded JobEvent as data.
func writeSSE(w http.ResponseWriter, ev wire.JobEvent) error {
	name := wire.EventStatus
	switch {
	case ev.Job != nil:
		name = wire.EventDone
	case ev.Progress != nil:
		name = wire.EventProgress
	}
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, name, data)
	return err
}
