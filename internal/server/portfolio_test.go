package server

import (
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/core"
	"repro/internal/wire"
)

// TestPortfolioSolveEndToEnd: a raced solve returns the same depth as the
// default path, carries racing stats, and shows up in /v1/metrics.
func TestPortfolioSolveEndToEnd(t *testing.T) {
	// Disable the fooling bound so fig1b's optimality needs the UNSAT proof
	// at depth 4 — otherwise the race never runs and the stats are empty.
	base := core.DefaultOptions()
	base.FoolingBudget = 0
	base.ConflictBudget = DefaultConflictBudget
	_, ts := newTestServer(t, Config{Options: &base})
	req := wire.SolveRequest{
		Matrix: fig1b,
		Options: &wire.SolveOptions{
			Portfolio:    3,
			ShareClauses: true,
		},
	}
	resp, body := postJSON(t, ts.URL+"/v1/solve", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	res := decodeResult(t, body)
	if res.Depth != 5 || !res.Optimal {
		t.Fatalf("raced solve wrong: %s", body)
	}
	if res.Portfolio == nil {
		t.Fatalf("raced solve missing portfolio stats: %s", body)
	}
	if len(res.Portfolio.Wins) == 0 || res.Portfolio.BlockWinners[0] == "" {
		t.Fatalf("portfolio stats empty: %+v", res.Portfolio)
	}

	mresp, mbody := get(t, ts.URL+"/v1/metrics")
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", mresp.StatusCode)
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal(mbody, &snap); err != nil {
		t.Fatalf("bad metrics JSON: %v", err)
	}
	if snap.Portfolio.Solves != 1 {
		t.Fatalf("portfolio solves = %d, want 1", snap.Portfolio.Solves)
	}
	total := int64(0)
	for _, n := range snap.Portfolio.Wins {
		total += n
	}
	if total == 0 {
		t.Fatalf("no per-strategy wins in metrics: %+v", snap.Portfolio)
	}
	if snap.Portfolio.MaxPortfolio != 8 {
		t.Fatalf("default MaxPortfolio = %d, want 8", snap.Portfolio.MaxPortfolio)
	}
}

// TestPortfolioClamped: K beyond the configured maximum is clamped, and a
// negative MaxPortfolio disables racing entirely.
func TestPortfolioClamped(t *testing.T) {
	s := New(Config{MaxPortfolio: 2})
	opts, _ := s.solveBudgets(core.Options{Portfolio: core.PortfolioOptions{Size: 64}}, 0)
	if opts.Portfolio.Size != 2 {
		t.Fatalf("Size clamped to %d, want 2", opts.Portfolio.Size)
	}
	opts, _ = s.solveBudgets(core.Options{Portfolio: core.PortfolioOptions{
		Strategies: []string{"canonical", "luby", "destructive"},
	}}, 0)
	if len(opts.Portfolio.Strategies) != 2 {
		t.Fatalf("strategy list clamped to %d, want 2", len(opts.Portfolio.Strategies))
	}

	off := New(Config{MaxPortfolio: -1})
	opts, _ = off.solveBudgets(core.Options{Portfolio: core.PortfolioOptions{Size: 4, ShareClauses: true}}, 0)
	if opts.Portfolio.Enabled() || opts.Portfolio.ShareClauses {
		t.Fatalf("racing not disabled: %+v", opts.Portfolio)
	}
}

// TestPortfolioBadStrategy400: an unknown strategy name is a client error.
func TestPortfolioBadStrategy400(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := wire.SolveRequest{
		Matrix:  fig1b,
		Options: &wire.SolveOptions{PortfolioStrategies: []string{"canonical", "bogus"}},
	}
	resp, body := postJSON(t, ts.URL+"/v1/solve", req)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
	}
}
