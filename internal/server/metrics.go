package server

import (
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/solvecache"
	"repro/internal/store"
	"repro/internal/wire"
)

// metrics holds the service counters. All fields are atomics so the handlers
// never serialize on a stats lock; the snapshot is eventually consistent
// across fields, which is fine for monitoring.
type metrics struct {
	solveRequests  atomic.Int64
	batchRequests  atomic.Int64
	badRequests    atomic.Int64
	rejectedQueue  atomic.Int64
	rejectedQuota  atomic.Int64
	rejectedDrain  atomic.Int64
	rejectedBatch  atomic.Int64
	rejectedAuth   atomic.Int64
	clientGone     atomic.Int64
	internalErrors atomic.Int64

	// Job counters (POST /v1/jobs lifecycle).
	jobsSubmitted atomic.Int64
	jobsDone      atomic.Int64
	jobsCanceled  atomic.Int64
	jobsFailed    atomic.Int64
	jobsShed      atomic.Int64 // degraded to the heuristic-only path
	jobsRecovered atomic.Int64 // re-admitted from the journal after restart
	jobStreams    atomic.Int64 // /events subscriptions opened

	// Webhook counters (terminal callback_url deliveries).
	webhooksDelivered atomic.Int64 // 2xx acknowledged
	webhooksRetried   atomic.Int64 // individual failed attempts
	webhooksAbandoned atomic.Int64 // gave up this run (journal retries after restart)

	// Fill counters (POST /v1/fill, the cache-fill replication path).
	fillRequests  atomic.Int64
	fillStored    atomic.Int64
	fillDuplicate atomic.Int64
	fillRejected  atomic.Int64

	solves     atomic.Int64
	optimal    atomic.Int64
	timedOut   atomic.Int64
	canceled   atomic.Int64
	satCalls   atomic.Int64
	conflicts  atomic.Int64
	depthTotal atomic.Int64

	// Latency histograms (log-bucketed, lock-free). solveHist covers the
	// whole solve wall time per request; packHist and satHist split the
	// stages (observed only for solves that actually ran the pipeline —
	// cache hits would drown the stage split in zeros); queueHist is
	// admission wait. The old avg/max scalar fields derive from solveHist
	// now, which also fixes the stale-max bug: the high-water mark never
	// decayed, so one slow solve at startup pinned max_ns forever. The
	// histogram's max is windowed (~2 minutes).
	solveHist obs.Histogram
	packHist  obs.Histogram
	satHist   obs.Histogram
	queueHist obs.Histogram

	// Portfolio counters. The win map is keyed by dynamic strategy names,
	// so unlike the counters above it sits behind a small mutex — it is
	// touched once per raced solve, not per request, so the lock is cold.
	portfolioSolves    atomic.Int64
	cancelledConflicts atomic.Int64
	sharedExports      atomic.Int64
	sharedImports      atomic.Int64
	winsMu             sync.Mutex
	wins               map[string]int64
}

// countRejection buckets a failed solveOne by its wire code (falling back to
// the HTTP status for codes without a dedicated counter).
func (m *metrics) countRejection(e *apiError) {
	switch e.code {
	case wire.CodeQueueFull:
		m.rejectedQueue.Add(1)
	case wire.CodeQuotaExceeded:
		m.rejectedQuota.Add(1)
	case wire.CodeDraining:
		m.rejectedDrain.Add(1)
	case wire.CodeClientGone:
		m.clientGone.Add(1)
	default:
		switch e.status {
		case http.StatusBadRequest:
			m.badRequests.Add(1)
		default:
			m.internalErrors.Add(1)
		}
	}
}

// observeSolve records one completed solve and its wall-clock latency.
// Per-stage times come from the Result itself (zero on cache hits by the
// Result.CacheHit contract), so the stage split mirrors actual work done.
func (m *metrics) observeSolve(res *core.Result, wall time.Duration) {
	m.solves.Add(1)
	m.solveHist.Observe(wall)
	if !res.CacheHit {
		m.packHist.Observe(res.PackTime)
		m.satHist.Observe(res.SATTime)
	}
	m.satCalls.Add(int64(res.SATCalls))
	m.conflicts.Add(res.Conflicts)
	m.depthTotal.Add(int64(res.Depth))
	if res.Optimal {
		m.optimal.Add(1)
	}
	if res.TimedOut {
		m.timedOut.Add(1)
	}
	if res.Canceled {
		m.canceled.Add(1)
	}
	if p := res.Portfolio; p != nil {
		m.portfolioSolves.Add(1)
		m.cancelledConflicts.Add(p.LoserConflicts)
		m.sharedExports.Add(p.SharedExported)
		m.sharedImports.Add(p.SharedImported)
		if len(p.Wins) > 0 {
			m.winsMu.Lock()
			if m.wins == nil {
				m.wins = make(map[string]int64)
			}
			for name, n := range p.Wins {
				m.wins[name] += int64(n)
			}
			m.winsMu.Unlock()
		}
	}
}

// portfolioWins snapshots the per-strategy win counters.
func (m *metrics) portfolioWins() map[string]int64 {
	m.winsMu.Lock()
	defer m.winsMu.Unlock()
	out := make(map[string]int64, len(m.wins))
	for name, n := range m.wins {
		out[name] = n
	}
	return out
}

// MetricsSnapshot is the GET /v1/metrics response body.
type MetricsSnapshot struct {
	UptimeMS  int64            `json:"uptime_ms"`
	Requests  RequestMetrics   `json:"requests"`
	Jobs      JobMetrics       `json:"jobs"`
	Webhooks  WebhookMetrics   `json:"webhooks"`
	Solves    SolveMetrics     `json:"solves"`
	Portfolio PortfolioMetrics `json:"portfolio"`
	Queue     QueueMetrics     `json:"queue"`
	Cache     solvecache.Stats `json:"cache"`
	HitRate   float64          `json:"cache_hit_rate"`
	// Fills reports the replication endpoint's activity; Store the durable
	// tier's state (nil when no store is attached); Journal the job
	// journal's state (nil when jobs are memory-only).
	Fills   FillMetrics         `json:"fills"`
	Store   *store.Stats        `json:"store,omitempty"`
	Journal *store.JournalStats `json:"journal,omitempty"`
}

// FillMetrics counts POST /v1/fill dispositions.
type FillMetrics struct {
	Requests  int64 `json:"requests"`
	Stored    int64 `json:"stored"`
	Duplicate int64 `json:"duplicate"`
	Rejected  int64 `json:"rejected"`
}

// PortfolioMetrics aggregates the racing layer's behaviour: which
// strategies actually win, how much work cancellation throws away, and how
// much the clause exchange moves.
type PortfolioMetrics struct {
	Solves             int64            `json:"solves"`
	Wins               map[string]int64 `json:"wins"`
	CancelledConflicts int64            `json:"cancelled_conflicts"`
	SharedExports      int64            `json:"shared_clause_exports"`
	SharedImports      int64            `json:"shared_clause_imports"`
	MaxPortfolio       int              `json:"max_portfolio"`
}

// RequestMetrics counts requests by disposition.
type RequestMetrics struct {
	Solve          int64 `json:"solve"`
	Batch          int64 `json:"batch"`
	Bad            int64 `json:"bad"`
	RejectedQueue  int64 `json:"rejected_queue_full"`
	RejectedQuota  int64 `json:"rejected_quota"`
	RejectedDrain  int64 `json:"rejected_draining"`
	RejectedBatch  int64 `json:"rejected_batch_size"`
	RejectedAuth   int64 `json:"rejected_auth"`
	ClientGone     int64 `json:"client_gone"`
	InternalErrors int64 `json:"internal_errors"`
}

// JobMetrics counts the async job surface's lifecycle dispositions.
type JobMetrics struct {
	Submitted int64 `json:"submitted"`
	Done      int64 `json:"done"`
	Canceled  int64 `json:"canceled"`
	Failed    int64 `json:"failed"`
	Shed      int64 `json:"shed"`
	Recovered int64 `json:"recovered"` // journal-replayed after a restart
	Streams   int64 `json:"streams"`
	Live      int   `json:"live"` // jobs currently in the registry
}

// WebhookMetrics counts terminal callback deliveries.
type WebhookMetrics struct {
	Delivered int64 `json:"delivered"`
	Retried   int64 `json:"retried"`
	Abandoned int64 `json:"abandoned"`
}

// SolveMetrics aggregates completed solves, with the per-stage split carried
// over from Result timings. The scalar total/avg/max/pack/sat fields are
// derived from the histograms and kept for compatibility; MaxNS is windowed
// (largest observation of the last ~2 minutes), not a lifetime high-water
// mark.
type SolveMetrics struct {
	Completed  int64 `json:"completed"`
	Optimal    int64 `json:"optimal"`
	TimedOut   int64 `json:"timed_out"`
	Canceled   int64 `json:"canceled"`
	TotalNS    int64 `json:"total_ns"`
	AvgNS      int64 `json:"avg_ns"`
	MaxNS      int64 `json:"max_ns"`
	PackNS     int64 `json:"pack_ns"`
	SATNS      int64 `json:"sat_ns"`
	SATCalls   int64 `json:"sat_calls"`
	Conflicts  int64 `json:"conflicts"`
	DepthTotal int64 `json:"depth_total"`
	// Latency is the full solve wall time per request (cache hits included);
	// PackLatency and SATLatency split the pipeline stages of non-cached
	// solves; QueueWait is time spent in admission control.
	Latency     obs.HistSnapshot `json:"latency"`
	PackLatency obs.HistSnapshot `json:"pack_latency"`
	SATLatency  obs.HistSnapshot `json:"sat_latency"`
	QueueWait   obs.HistSnapshot `json:"queue_wait"`
}

// QueueMetrics reports the admission-control state, per-tenant scheduler
// included.
type QueueMetrics struct {
	Depth         int64            `json:"depth"`
	Running       int              `json:"running"`
	MaxConcurrent int              `json:"max_concurrent"`
	MaxQueue      int              `json:"max_queue"`
	Tenants       []TenantSnapshot `json:"tenants"`
}

func (s *Server) metricsSnapshot() MetricsSnapshot {
	m := &s.met
	queued, running, tenants := s.sched.snapshot()
	snap := MetricsSnapshot{
		UptimeMS: time.Since(s.started).Milliseconds(),
		Requests: RequestMetrics{
			Solve:          m.solveRequests.Load(),
			Batch:          m.batchRequests.Load(),
			Bad:            m.badRequests.Load(),
			RejectedQueue:  m.rejectedQueue.Load(),
			RejectedQuota:  m.rejectedQuota.Load(),
			RejectedDrain:  m.rejectedDrain.Load(),
			RejectedBatch:  m.rejectedBatch.Load(),
			RejectedAuth:   m.rejectedAuth.Load(),
			ClientGone:     m.clientGone.Load(),
			InternalErrors: m.internalErrors.Load(),
		},
		Jobs: JobMetrics{
			Submitted: m.jobsSubmitted.Load(),
			Done:      m.jobsDone.Load(),
			Canceled:  m.jobsCanceled.Load(),
			Failed:    m.jobsFailed.Load(),
			Shed:      m.jobsShed.Load(),
			Recovered: m.jobsRecovered.Load(),
			Streams:   m.jobStreams.Load(),
			Live:      s.jobs.len(),
		},
		Webhooks: WebhookMetrics{
			Delivered: m.webhooksDelivered.Load(),
			Retried:   m.webhooksRetried.Load(),
			Abandoned: m.webhooksAbandoned.Load(),
		},
		Solves: SolveMetrics{
			Completed:   m.solves.Load(),
			Optimal:     m.optimal.Load(),
			TimedOut:    m.timedOut.Load(),
			Canceled:    m.canceled.Load(),
			SATCalls:    m.satCalls.Load(),
			Conflicts:   m.conflicts.Load(),
			DepthTotal:  m.depthTotal.Load(),
			Latency:     m.solveHist.Snapshot(),
			PackLatency: m.packHist.Snapshot(),
			SATLatency:  m.satHist.Snapshot(),
			QueueWait:   m.queueHist.Snapshot(),
		},
		Portfolio: PortfolioMetrics{
			Solves:             m.portfolioSolves.Load(),
			Wins:               m.portfolioWins(),
			CancelledConflicts: m.cancelledConflicts.Load(),
			SharedExports:      m.sharedExports.Load(),
			SharedImports:      m.sharedImports.Load(),
			MaxPortfolio:       s.cfg.MaxPortfolio,
		},
		Queue: QueueMetrics{
			Depth:         int64(queued),
			Running:       running,
			MaxConcurrent: s.cfg.MaxConcurrent,
			MaxQueue:      s.cfg.MaxQueue,
			Tenants:       tenants,
		},
		Cache: s.cache.Stats(),
		Fills: FillMetrics{
			Requests:  m.fillRequests.Load(),
			Stored:    m.fillStored.Load(),
			Duplicate: m.fillDuplicate.Load(),
			Rejected:  m.fillRejected.Load(),
		},
	}
	if st := s.cache.Store(); st != nil {
		stats := st.Stats()
		snap.Store = &stats
	}
	if s.cfg.Journal != nil {
		stats := s.cfg.Journal.Stats()
		snap.Journal = &stats
	}
	// Compatibility scalars, derived from the histograms.
	snap.Solves.TotalNS = snap.Solves.Latency.SumNS
	snap.Solves.AvgNS = snap.Solves.Latency.AvgNS
	snap.Solves.MaxNS = snap.Solves.Latency.MaxNS
	snap.Solves.PackNS = snap.Solves.PackLatency.SumNS
	snap.Solves.SATNS = snap.Solves.SATLatency.SumNS
	snap.HitRate = snap.Cache.HitRate()
	return snap
}
