package server

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"sync"
	"testing"

	"repro/internal/bitmat"
	"repro/internal/wire"
)

// TestLoadConcurrentPermutationsSingleSolve is the subsystem's acceptance
// test: 64 concurrent requests, each a different row/column permutation of
// one matrix, must all succeed with the same optimal depth while the
// fingerprint + singleflight machinery performs exactly one underlying
// pipeline solve.
func TestLoadConcurrentPermutationsSingleSolve(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxQueue: 256})
	m := bitmat.MustParse(fig1b)
	rng := rand.New(rand.NewSource(2024))

	const n = 64
	bodies := make([][]byte, n)
	for i := range bodies {
		rp, cp := rng.Perm(m.Rows()), rng.Perm(m.Cols())
		p := bitmat.New(m.Rows(), m.Cols())
		m.ForEachOne(func(r, c int) { p.Set(rp[r], cp[c], true) })
		data, err := json.Marshal(wire.SolveRequest{Matrix: p.String()})
		if err != nil {
			t.Fatal(err)
		}
		bodies[i] = data
	}

	client := ts.Client()
	client.Transport = &http.Transport{MaxIdleConnsPerHost: n}
	var wg sync.WaitGroup
	depths := make([]int, n)
	hits := make([]bool, n)
	errs := make([]error, n)
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp, err := client.Post(ts.URL+"/v1/solve", "application/json",
				bytes.NewReader(bodies[i]))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			var res wire.ResultJSON
			if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
				errs[i] = err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs[i] = &statusError{code: resp.StatusCode}
				return
			}
			depths[i] = res.Depth
			hits[i] = res.CacheHit
		}(i)
	}
	close(start)
	wg.Wait()

	misses := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if depths[i] != 5 {
			t.Fatalf("request %d: depth %d, want 5", i, depths[i])
		}
		if !hits[i] {
			misses++
		}
	}
	if misses != 1 {
		t.Errorf("%d responses were not cache/singleflight hits, want exactly 1 (the leader)", misses)
	}
	if st := s.Cache().Stats(); st.Solves != 1 {
		t.Fatalf("underlying pipeline ran %d times for %d concurrent permutations, want 1", st.Solves, n)
	}
}

type statusError struct{ code int }

func (e *statusError) Error() string { return http.StatusText(e.code) }
