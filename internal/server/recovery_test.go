package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sync"
	"testing"
	"time"

	"repro/internal/store"
	"repro/internal/wire"
)

// openTestJournal opens (or reopens) a job journal in dir.
func openTestJournal(t *testing.T, dir string) *store.Journal {
	t.Helper()
	jn, err := store.OpenJournal(dir, store.Options{Sync: store.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { jn.Close() })
	return jn
}

// TestRestartResumesJournaledJobs is the tentpole's acceptance path: jobs
// queued at crash time are re-admitted by the next boot under the same IDs
// and run to a terminal state.
func TestRestartResumesJournaledJobs(t *testing.T) {
	dir := t.TempDir()
	jn := openTestJournal(t, dir)
	s1, ts1 := newTestServer(t, Config{MaxConcurrent: 1, Journal: jn})

	// Hold the only slot so the submissions stay queued — the crash happens
	// before either job ran.
	release := holdSlot(t, s1)
	defer release()
	var ids []string
	for i := 0; i < 2; i++ {
		resp, body := submitJob(t, ts1.URL, "", wire.JobRequest{Matrix: progressMatrix().String()})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d %s", i, resp.StatusCode, body)
		}
		ids = append(ids, decodeJob(t, body).ID)
	}

	// Crash: drop the server without letting the jobs finish. The journal
	// handle is closed cleanly (the bytes are identical either way — crash
	// realism for torn frames is covered by the store's own fault tests).
	ts1.Close()
	s1.Close()
	jn.Close()

	jn2 := openTestJournal(t, dir)
	s2, ts2 := newTestServer(t, Config{Journal: jn2})
	for _, id := range ids {
		j := waitJobState(t, ts2.URL, "", id, func(j *wire.JobJSON) bool {
			return wire.JobTerminal(j.State)
		})
		if j.State != wire.JobDone {
			t.Fatalf("replayed job %s: state %q error %q", id, j.State, j.Error)
		}
		if !j.Recovered {
			t.Fatalf("replayed job %s not marked recovered: %+v", id, j)
		}
	}
	if got := s2.met.jobsRecovered.Load(); got != 2 {
		t.Fatalf("jobs recovered = %d, want 2", got)
	}
	// Settled jobs compact away: a third boot has nothing to replay.
	s2.Close()
}

// TestReplayServesStoredResultWithoutResolve: a job that crashed before
// finishing, whose matrix was already proved into the durable result store,
// completes on replay as a store hit — recovery re-admits, never re-proves.
func TestReplayServesStoredResultWithoutResolve(t *testing.T) {
	jdir, sdir := t.TempDir(), t.TempDir()
	jn := openTestJournal(t, jdir)
	st, err := store.Open(sdir, store.Options{Sync: store.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	s1, ts1 := newTestServer(t, Config{MaxConcurrent: 1, Journal: jn, Store: st})

	// Prove the matrix synchronously first — the result store now holds it.
	m := progressMatrix().String()
	resp, body := postJSON(t, ts1.URL+"/v1/solve", wire.SolveRequest{Matrix: m})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("priming solve: %d %s", resp.StatusCode, body)
	}
	// Queue the same matrix as a job behind a held slot, then crash.
	release := holdSlot(t, s1)
	resp, body = submitJob(t, ts1.URL, "", wire.JobRequest{Matrix: m})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	id := decodeJob(t, body).ID
	_ = release // never released: the job is still queued at "crash" time
	ts1.Close()
	s1.Close()
	jn.Close()
	st.Close()

	jn2 := openTestJournal(t, jdir)
	st2, err := store.Open(sdir, store.Options{Sync: store.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st2.Close() })
	s2, ts2 := newTestServer(t, Config{Journal: jn2, Store: st2})
	j := waitJobState(t, ts2.URL, "", id, func(j *wire.JobJSON) bool {
		return wire.JobTerminal(j.State)
	})
	if j.State != wire.JobDone || j.Result == nil || !j.Result.Optimal {
		t.Fatalf("replayed job: %+v", j)
	}
	if cs := s2.Cache().Stats(); cs.Hits+cs.DurableHits < 1 || cs.Solves != 0 {
		t.Fatalf("replayed solve missed the durable store and re-proved: %+v", cs)
	}
}

// webhookSink is a test receiver that can fail its first n requests.
type webhookSink struct {
	mu       sync.Mutex
	failLeft int
	got      []wire.JobJSON
}

func (ws *webhookSink) handler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ws.mu.Lock()
		defer ws.mu.Unlock()
		if ws.failLeft > 0 {
			ws.failLeft--
			http.Error(w, "outage", http.StatusServiceUnavailable)
			return
		}
		var j wire.JobJSON
		if err := json.NewDecoder(r.Body).Decode(&j); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		ws.got = append(ws.got, j)
		w.WriteHeader(http.StatusOK)
	}
}

func (ws *webhookSink) deliveries() []wire.JobJSON {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return append([]wire.JobJSON(nil), ws.got...)
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestWebhookAtLeastOnceAcrossOutage: the terminal webhook survives a
// receiver outage (in-process retries) and a daemon restart (journal
// resume), reaching the receiver at least once in both cases.
func TestWebhookAtLeastOnceAcrossOutage(t *testing.T) {
	sink := &webhookSink{failLeft: 2}
	recv := httptest.NewServer(sink.handler())
	t.Cleanup(recv.Close)

	dir := t.TempDir()
	jn := openTestJournal(t, dir)
	cfg := Config{
		Journal:          jn,
		WebhookAllow:     []string{recv.URL},
		WebhookRetryBase: 10 * time.Millisecond,
	}
	_, ts := newTestServer(t, cfg)
	resp, body := submitJob(t, ts.URL, "", wire.JobRequest{
		Matrix:      progressMatrix().String(),
		CallbackURL: recv.URL + "/hook",
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit with callback: %d %s", resp.StatusCode, body)
	}
	id := decodeJob(t, body).ID
	waitFor(t, "webhook delivery after outage", func() bool {
		return len(sink.deliveries()) >= 1
	})
	got := sink.deliveries()[0]
	if got.ID != id || got.State != wire.JobDone {
		t.Fatalf("webhook payload: %+v", got)
	}
}

// TestWebhookResumesAfterRestart: a webhook the first process never managed
// to deliver (receiver down the whole run, retries exhausted) is delivered
// by the next boot's journal replay.
func TestWebhookResumesAfterRestart(t *testing.T) {
	sink := &webhookSink{failLeft: 1 << 30} // receiver down for the whole first run
	recv := httptest.NewServer(sink.handler())
	t.Cleanup(recv.Close)

	dir := t.TempDir()
	jn := openTestJournal(t, dir)
	cfg := Config{
		Journal:           jn,
		WebhookAllow:      []string{recv.URL},
		WebhookRetryBase:  time.Millisecond,
		WebhookMaxRetries: 2,
	}
	s1, ts1 := newTestServer(t, cfg)
	resp, body := submitJob(t, ts1.URL, "", wire.JobRequest{
		Matrix:      progressMatrix().String(),
		CallbackURL: recv.URL + "/hook",
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	id := decodeJob(t, body).ID
	waitJobState(t, ts1.URL, "", id, func(j *wire.JobJSON) bool {
		return wire.JobTerminal(j.State)
	})
	waitFor(t, "first run to abandon the delivery", func() bool {
		return s1.met.webhooksAbandoned.Load() >= 1
	})
	ts1.Close()
	s1.Close()
	jn.Close()

	// Receiver heals; the restarted daemon must deliver from the journal
	// with no new submission involved.
	sink.mu.Lock()
	sink.failLeft = 0
	sink.mu.Unlock()
	jn2 := openTestJournal(t, dir)
	cfg.Journal = jn2
	s2, _ := newTestServer(t, cfg)
	waitFor(t, "webhook delivery after restart", func() bool {
		return len(sink.deliveries()) >= 1
	})
	if got := sink.deliveries()[0]; got.ID != id || got.State != wire.JobDone {
		t.Fatalf("resumed webhook payload: %+v", got)
	}
	_ = s2
}

// TestCallbackURLValidation: callback_url is rejected without an allowlist,
// outside the allowlist, with a non-HTTP scheme, and — the SSRF classic —
// when the allowed prefix is a proper prefix of a hostile host.
func TestCallbackURLValidation(t *testing.T) {
	_, tsNone := newTestServer(t, Config{})
	resp, body := submitJob(t, tsNone.URL, "", wire.JobRequest{
		Matrix: "1", CallbackURL: "http://hooks.internal/cb",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("callback without allowlist: %d %s", resp.StatusCode, body)
	}

	_, ts := newTestServer(t, Config{WebhookAllow: []string{"http://hooks.internal", "10.0.0.7:9000"}})
	cases := []struct {
		url string
		ok  bool
	}{
		{"http://hooks.internal/cb", true},
		{"http://hooks.internal:8080/cb", true},
		{"http://10.0.0.7:9000/x", true},
		{"http://hooks.internal.evil.example/cb", false},
		{"http://evil.example/cb", false},
		{"ftp://hooks.internal/cb", false},
		{"not a url at all ://", false},
	}
	for _, tc := range cases {
		resp, body := submitJob(t, ts.URL, "", wire.JobRequest{Matrix: "1", CallbackURL: tc.url})
		want := http.StatusAccepted
		if !tc.ok {
			want = http.StatusBadRequest
		}
		if resp.StatusCode != want {
			t.Errorf("callback %q: got %d want %d (%s)", tc.url, resp.StatusCode, want, body)
		}
	}
}

// TestTerminalJobExpiresWithoutNewSubmission is the satellite-1 regression:
// TTL eviction must not depend on a later submit to run. Fails against the
// pre-fix code, where eviction only ran inside newJob.
func TestTerminalJobExpiresWithoutNewSubmission(t *testing.T) {
	s, ts := newTestServer(t, Config{JobTTL: time.Minute})
	resp, body := submitJob(t, ts.URL, "", wire.JobRequest{Matrix: "1"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	id := decodeJob(t, body).ID
	waitJobState(t, ts.URL, "", id, func(j *wire.JobJSON) bool {
		return wire.JobTerminal(j.State)
	})

	// Advance the registry's clock past the TTL — no new submission happens.
	s.jobs.mu.Lock()
	s.jobs.now = func() time.Time { return time.Now().Add(2 * time.Minute) }
	s.jobs.mu.Unlock()

	resp, body = getJob(t, ts.URL, "", id)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("expired terminal job still pollable: %d %s", resp.StatusCode, body)
	}
	if n := s.jobs.len(); n != 0 {
		t.Fatalf("expired job still in the registry (len=%d)", n)
	}
}

// TestJobIDsUnguessable is the satellite-3 regression: IDs carry 64 bits
// from crypto/rand, not a counter plus 16 bits. Fails against the pre-fix
// "j-%08x-%04x" format.
func TestJobIDsUnguessable(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	idRE := regexp.MustCompile(`^j-[0-9a-f]{16}$`)
	seen := map[string]bool{}
	for i := 0; i < 4; i++ {
		resp, body := submitJob(t, ts.URL, "", wire.JobRequest{Matrix: "1"})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d %s", i, resp.StatusCode, body)
		}
		id := decodeJob(t, body).ID
		if !idRE.MatchString(id) {
			t.Fatalf("job ID %q is not 64 random bits", id)
		}
		if seen[id] {
			t.Fatalf("duplicate job ID %q", id)
		}
		seen[id] = true
	}
}
