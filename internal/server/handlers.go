package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/bitmat"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/rect"
	"repro/internal/wire"
)

// routes wires the v1 API onto the mux.
func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/solve", s.handleSolve)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/fill", s.handleFill)
	s.mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/debug/traces", s.handleTraces)
}

// apiError is a handler failure with everything needed to answer it: HTTP
// status, machine-readable wire code, human message, and an optional
// Retry-After hint (429s carry one so clients back off deliberately).
type apiError struct {
	status     int
	code       string
	msg        string
	retryAfter int // seconds; >0 adds a Retry-After header
}

func (e *apiError) Error() string { return e.msg }

func apiErrorf(status int, code, format string, args ...any) *apiError {
	return &apiError{status: status, code: code, msg: fmt.Sprintf(format, args...)}
}

// admissionError maps scheduler failures onto coded responses.
func admissionError(err error) *apiError {
	switch {
	case errors.Is(err, errQueueFull):
		return &apiError{status: http.StatusTooManyRequests, code: wire.CodeQueueFull,
			msg: "solve queue full, retry later", retryAfter: 1}
	case errors.Is(err, errQuotaFull):
		return &apiError{status: http.StatusTooManyRequests, code: wire.CodeQuotaExceeded,
			msg: "tenant quota exceeded, retry later", retryAfter: 1}
	case errors.Is(err, errDraining):
		return apiErrorf(http.StatusServiceUnavailable, wire.CodeDraining, "server draining")
	default: // client went away while queued
		return apiErrorf(statusClientClosedRequest, wire.CodeClientGone, "%v", err)
	}
}

// writeError answers a request with its coded error envelope.
func (s *Server) writeError(w http.ResponseWriter, e *apiError) {
	if e.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(e.retryAfter))
	}
	writeJSON(w, e.status, wire.Errorf(e.code, "%s", e.msg))
}

// resolveTenant authenticates the request's API key, answering the 401
// itself on unknown keys (nil tenant return).
func (s *Server) resolveTenant(w http.ResponseWriter, r *http.Request) (*tenant, bool) {
	t, err := s.tenantFor(r)
	if err != nil {
		s.met.rejectedAuth.Add(1)
		s.writeError(w, apiErrorf(http.StatusUnauthorized, wire.CodeUnauthorized, "unknown API key"))
		return nil, false
	}
	return t, true
}

// startTrace begins a trace for one request, honouring an upstream
// traceparent header (which forces sampling — the gateway already decided).
func (s *Server) startTrace(r *http.Request, name string) (context.Context, *obs.Span) {
	var remote *obs.Remote
	if rm, ok := obs.ParseTraceparent(r.Header.Get("traceparent")); ok {
		remote = &rm
	}
	return s.cfg.Tracer.StartTrace(r.Context(), name, remote)
}

// handleSolve answers POST /v1/solve: decode, admit, budget, solve, encode.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	s.met.solveRequests.Add(1)
	t, ok := s.resolveTenant(w, r)
	if !ok {
		return
	}
	var req wire.SolveRequest
	if err := s.decode(w, r, &req); err != nil {
		s.badRequest(w, err)
		return
	}
	if err := wire.CheckAPI(req.API); err != nil {
		s.met.badRequests.Add(1)
		s.writeError(w, apiErrorf(http.StatusBadRequest, wire.CodeUnsupportedAPI, "%v", err))
		return
	}
	m, aerr := s.requestMatrix(&req)
	if aerr != nil {
		s.met.badRequests.Add(1)
		s.writeError(w, aerr)
		return
	}
	ctx, root := s.startTrace(r, "solve")
	res, aerr := s.solveOne(ctx, t, m, &req)
	if aerr != nil {
		root.SetAttr("error", aerr.msg)
		root.Finish()
		s.met.countRejection(aerr)
		s.writeError(w, aerr)
		return
	}
	if td := root.Finish(); td != nil && root.IsRemote() {
		// The upstream gateway asked for the spans back to stitch them into
		// its own trace.
		res.Trace = td.JSON()
	}
	writeJSON(w, http.StatusOK, res)
}

// handleBatch answers POST /v1/batch: every item goes through the same
// admission gate as a standalone solve (so a batch cannot bypass
// backpressure), items run concurrently up to the server-wide limit, and the
// response preserves request order with per-item errors.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.met.batchRequests.Add(1)
	t, ok := s.resolveTenant(w, r)
	if !ok {
		return
	}
	var req wire.BatchRequest
	if err := s.decode(w, r, &req); err != nil {
		s.badRequest(w, err)
		return
	}
	if err := wire.CheckAPI(req.API); err != nil {
		s.met.badRequests.Add(1)
		s.writeError(w, apiErrorf(http.StatusBadRequest, wire.CodeUnsupportedAPI, "%v", err))
		return
	}
	if len(req.Requests) == 0 {
		s.badRequest(w, errors.New("empty batch"))
		return
	}
	if len(req.Requests) > s.cfg.MaxBatch {
		s.met.rejectedBatch.Add(1)
		s.writeError(w, apiErrorf(http.StatusRequestEntityTooLarge, wire.CodeBudgetExceeded,
			"batch exceeds limit"))
		return
	}
	// One trace spans the whole batch, with one "item" span per request.
	// Item traces are not attached to the response items — a batch is a
	// client-facing shape, not a gateway proxy hop.
	ctx, root := s.startTrace(r, "batch")
	resp := wire.BatchResponse{API: wire.V1, Results: make([]wire.BatchItem, len(req.Requests))}
	var wg sync.WaitGroup
	for i := range req.Requests {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			item := &req.Requests[i]
			s.met.solveRequests.Add(1)
			ictx, isp := obs.StartSpan(ctx, "item")
			isp.SetAttrInt("item", int64(i))
			defer isp.End()
			m, aerr := s.requestMatrix(item)
			if aerr != nil {
				s.met.badRequests.Add(1)
				resp.Results[i] = wire.BatchItem{Error: aerr.msg}
				return
			}
			res, aerr := s.solveOne(ictx, t, m, item)
			if aerr != nil {
				s.met.countRejection(aerr)
				resp.Results[i] = wire.BatchItem{Error: aerr.msg}
				return
			}
			resp.Results[i] = wire.BatchItem{Result: res}
		}(i)
	}
	wg.Wait()
	root.Finish()
	writeJSON(w, http.StatusOK, resp)
}

// solveOne runs the admission + budget + cached-solve path shared by the
// solve and batch handlers, admitted as tenant t.
func (s *Server) solveOne(ctx context.Context, t *tenant, m *bitmat.Matrix, req *wire.SolveRequest) (*wire.ResultJSON, *apiError) {
	opts, timeout, err := req.Options.Apply(*s.cfg.Options)
	if err != nil {
		return nil, apiErrorf(http.StatusBadRequest, wire.CodeBadRequest, "%v", err)
	}
	opts, timeout = s.solveBudgets(opts, timeout)

	tq := time.Now()
	_, qsp := obs.StartSpan(ctx, "queue")
	release, err := s.admit(ctx, t)
	qsp.End()
	if err != nil {
		return nil, admissionError(err)
	}
	s.met.queueHist.Observe(time.Since(tq))
	defer release()

	solveCtx := ctx
	if timeout > 0 {
		var cancel context.CancelFunc
		solveCtx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	t0 := time.Now()
	res, fp, err := s.cache.SolveContextKeyed(solveCtx, m, opts)
	if err != nil {
		return nil, apiErrorf(http.StatusInternalServerError, wire.CodeInternal, "%v", err)
	}
	s.met.observeSolve(res, time.Since(t0))
	if sp := obs.FromContext(ctx); sp != nil {
		sp.SetAttr("fingerprint", fp)
		if res.CacheHit {
			sp.SetAttr("cache_hit", "true")
		}
		sp.SetAttrInt("depth", int64(res.Depth))
		sp.SetAttrInt("conflicts", res.Conflicts)
	}
	return wire.FromResult(res, fp), nil
}

// statusClientClosedRequest mirrors nginx's non-standard 499 for requests
// abandoned while queued; the client is gone, the code is for the logs.
const statusClientClosedRequest = 499

// handleFill answers POST /v1/fill: validate a replicated proved-optimal
// canonical result, then seed it into the cache tiers. Fills skip the solve
// admission gate — validation is a fingerprint recompute plus a partition
// check, orders of magnitude cheaper than a solve — but a draining server
// still refuses them: its store is about to be flushed and closed.
func (s *Server) handleFill(w http.ResponseWriter, r *http.Request) {
	s.met.fillRequests.Add(1)
	if s.draining.Load() {
		s.met.rejectedDrain.Add(1)
		s.writeError(w, apiErrorf(http.StatusServiceUnavailable, wire.CodeDraining, "server draining"))
		return
	}
	var req wire.FillRequest
	if err := s.decode(w, r, &req); err != nil {
		s.met.fillRejected.Add(1)
		s.badRequest(w, err)
		return
	}
	if err := wire.CheckAPI(req.API); err != nil {
		s.met.fillRejected.Add(1)
		s.writeError(w, apiErrorf(http.StatusBadRequest, wire.CodeUnsupportedAPI, "%v", err))
		return
	}
	hash, res, err := s.validateFill(&req)
	if err != nil {
		s.met.fillRejected.Add(1)
		s.badRequest(w, err)
		return
	}
	stored := s.cache.Seed(hash, res)
	if stored {
		s.met.fillStored.Add(1)
	} else {
		s.met.fillDuplicate.Add(1)
	}
	writeJSON(w, http.StatusOK, wire.FillResponse{API: wire.V1, Stored: stored})
}

// validateFill checks a fill's structure before it may touch the cache: the
// submitted matrix must be exactly its own canonical form, its recomputed
// fingerprint must match the claimed key, and the partition must be a valid
// EBMF of that matrix at the claimed depth. What this proves: the entry is
// internally consistent and keyed correctly, so it can never make a future
// request return an invalid partition (lifting re-validates anyway).
// What it takes on trust from the fleet: that the depth is optimal.
func (s *Server) validateFill(req *wire.FillRequest) (string, *core.Result, error) {
	if req.Fingerprint == "" {
		return "", nil, errors.New("fill: missing fingerprint")
	}
	rj := req.Result
	if rj == nil {
		return "", nil, errors.New("fill: missing result")
	}
	if !rj.Optimal || rj.TimedOut || rj.Canceled {
		return "", nil, errors.New("fill: only proved-optimal uninterrupted results may be filled")
	}
	if req.Matrix == "" {
		return "", nil, errors.New("fill: missing matrix")
	}
	m, err := bitmat.Parse(req.Matrix)
	if err != nil {
		return "", nil, err
	}
	if m.Rows()*m.Cols() > s.cfg.MaxMatrixEntries {
		return "", nil, errors.New("matrix exceeds size limit")
	}
	fp := bitmat.ComputeFingerprint(m)
	if !fp.Exact {
		return "", nil, errors.New("fill: matrix exceeds canonicalization budget")
	}
	if fp.Hash != req.Fingerprint {
		return "", nil, errors.New("fill: fingerprint does not match matrix")
	}
	if !m.Equal(fp.Canonical) {
		return "", nil, errors.New("fill: matrix is not in canonical form")
	}
	p := rect.NewPartition(m)
	for i, rr := range rj.Partition {
		if len(rr.Rows) == 0 || len(rr.Cols) == 0 {
			return "", nil, fmt.Errorf("fill: rect %d is empty", i)
		}
		nr := rect.NewRect(m.Rows(), m.Cols())
		for _, v := range rr.Rows {
			if v < 0 || v >= m.Rows() {
				return "", nil, fmt.Errorf("fill: rect %d row %d out of range", i, v)
			}
			nr.Rows.Set(v, true)
		}
		for _, v := range rr.Cols {
			if v < 0 || v >= m.Cols() {
				return "", nil, fmt.Errorf("fill: rect %d col %d out of range", i, v)
			}
			nr.Cols.Set(v, true)
		}
		p.Add(nr)
	}
	if err := p.Validate(); err != nil {
		return "", nil, fmt.Errorf("fill: partition invalid: %w", err)
	}
	if rj.Depth != p.Depth() {
		return "", nil, fmt.Errorf("fill: claimed depth %d != partition depth %d", rj.Depth, p.Depth())
	}
	return fp.Hash, &core.Result{
		Partition:      p,
		Depth:          p.Depth(),
		RankLB:         rj.RankLB,
		FoolingLB:      rj.FoolingLB,
		Optimal:        true,
		Certificate:    wire.ParseCertificate(rj.Certificate),
		Blocks:         rj.Blocks,
		HeuristicDepth: rj.HeuristicDepth,
	}, nil
}

// handleHealthz answers GET /v1/healthz: 200 while serving, 503 once
// draining so load balancers stop routing new work here.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := http.StatusOK
	state := "ok"
	if s.draining.Load() {
		status = http.StatusServiceUnavailable
		state = "draining"
	}
	writeJSON(w, status, map[string]any{
		"status":    state,
		"uptime_ms": time.Since(s.started).Milliseconds(),
	})
}

// handleMetrics answers GET /v1/metrics with the counter snapshot.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.metricsSnapshot())
}

// handleTraces answers GET /v1/debug/traces with the finished-trace rings:
// the most recent traces plus the slowest retained ones.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.cfg.Tracer.Traces())
}

// decode reads one JSON body within the configured size cap.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, dst any) error {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return err
	}
	return nil
}

// requestMatrix parses and size-checks one request's matrix, classifying
// failures: an unparseable matrix is CodeBadMatrix, one over the configured
// cell budget is CodeBudgetExceeded (both 400 — the request itself is well
// formed JSON, its payload is what's unacceptable).
func (s *Server) requestMatrix(req *wire.SolveRequest) (*bitmat.Matrix, *apiError) {
	m, err := req.ParseMatrix()
	if err != nil {
		return nil, apiErrorf(http.StatusBadRequest, wire.CodeBadMatrix, "%v", err)
	}
	if m.Rows()*m.Cols() > s.cfg.MaxMatrixEntries {
		return nil, apiErrorf(http.StatusBadRequest, wire.CodeBudgetExceeded, "matrix exceeds size limit")
	}
	return m, nil
}

func (s *Server) badRequest(w http.ResponseWriter, err error) {
	s.met.badRequests.Add(1)
	s.writeError(w, apiErrorf(http.StatusBadRequest, wire.CodeBadRequest, "%v", err))
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}
