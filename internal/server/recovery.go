package server

import (
	"context"
	"encoding/json"

	"repro/internal/bitmat"
	"repro/internal/store"
	"repro/internal/wire"
)

// Job durability: every accepted submission is journaled before its 202,
// every terminal transition before (or regardless of) anyone observing it,
// and a restarted server replays the delta — submits without terminals —
// back through the tenant scheduler under the same IDs. The journal stores
// the solve *inputs*, never results: a replayed job whose answer was
// already proved before the crash completes instantly as a hit on the
// durable result store, so recovery re-admits work but never re-proves it.
//
// Journal appends are fire-and-log: a dying disk degrades restart
// durability but must not fail live traffic (the same contract as the
// result store's write-through).

// journalSubmit records an accepted submission. Called from newJob, before
// the 202 is written.
func (s *Server) journalSubmit(j *job, req *wire.JobRequest, m *bitmat.Matrix) {
	if s.cfg.Journal == nil {
		return
	}
	rec := &store.JobRecord{
		Kind:               store.JobSubmit,
		ID:                 j.id,
		Tenant:             j.tenant.cfg.Name,
		Matrix:             m.String(), // canonical text form: always re-parseable
		Callback:           req.CallbackURL,
		Degrade:            req.Degrade,
		CancelOnDisconnect: req.CancelOnDisconnect,
	}
	if req.Options != nil {
		if raw, err := json.Marshal(req.Options); err == nil {
			rec.Options = raw
		}
	}
	if err := s.cfg.Journal.Append(rec); err != nil {
		s.cfg.Logger.Printf("journal: submit %s: %v", j.id, err)
	}
}

// journalTerminal records a job's terminal snapshot. Called from finishJob,
// first terminal transition only.
func (s *Server) journalTerminal(j *job, snap *wire.JobJSON) {
	if s.cfg.Journal == nil {
		return
	}
	raw, err := json.Marshal(snap)
	if err != nil {
		s.cfg.Logger.Printf("journal: terminal %s: encode: %v", j.id, err)
		return
	}
	rec := &store.JobRecord{
		Kind:     store.JobTerminal,
		ID:       j.id,
		State:    snap.State,
		Callback: j.callback,
		Job:      raw,
	}
	if err := s.cfg.Journal.Append(rec); err != nil {
		s.cfg.Logger.Printf("journal: terminal %s: %v", j.id, err)
	}
}

// journalWebhookAck records a successful callback delivery. Written only
// after a 2xx — deliver-then-ack is what makes the webhook at-least-once.
func (s *Server) journalWebhookAck(id string) {
	if s.cfg.Journal == nil {
		return
	}
	if err := s.cfg.Journal.Append(&store.JobRecord{Kind: store.JobWebhook, ID: id}); err != nil {
		s.cfg.Logger.Printf("journal: webhook ack %s: %v", id, err)
	}
}

// replayJournal runs at New: resume undelivered webhooks, then re-admit
// every journaled job that never reached a terminal state — same ID, fresh
// admission through the tenant scheduler, Recovered flag set on the
// snapshot so clients can tell the job was re-run.
func (s *Server) replayJournal() {
	rep := s.cfg.Journal.Replay()
	for _, rec := range rep.Undelivered {
		s.webhooks.enqueueRaw(rec.ID, rec.Callback, rec.Job)
	}
	for _, rec := range rep.Pending {
		s.replayJob(rec)
	}
	if n := len(rep.Pending); n > 0 || len(rep.Undelivered) > 0 {
		s.cfg.Logger.Printf("journal: re-admitted %d jobs, resumed %d webhook deliveries",
			n, len(rep.Undelivered))
	}
}

// replayJob re-admits one journaled submission.
func (s *Server) replayJob(rec *store.JobRecord) {
	t := s.sched.tenantByName(rec.Tenant)
	j := s.restoreJob(rec.ID, t, rec.Callback)
	s.met.jobsRecovered.Add(1)

	// A cancel_on_disconnect job's watcher died with the old process; its
	// contract says it must not outlive that stream, so it resumes directly
	// into the canceled state (journaled + webhook like any terminal).
	if rec.CancelOnDisconnect {
		s.met.jobsCanceled.Add(1)
		s.finishJob(j, wire.JobCanceled, nil, "", false)
		return
	}
	m, err := bitmat.Parse(rec.Matrix)
	if err != nil {
		s.met.jobsFailed.Add(1)
		s.finishJob(j, wire.JobFailed, nil, "journal replay: "+err.Error(), false)
		return
	}
	var wopts *wire.SolveOptions
	if len(rec.Options) > 0 {
		wopts = new(wire.SolveOptions)
		if err := json.Unmarshal(rec.Options, wopts); err != nil {
			wopts = nil // solve with server defaults rather than fail the job
		}
	}
	opts, timeout, err := wopts.Apply(*s.cfg.Options)
	if err != nil {
		s.met.jobsFailed.Add(1)
		s.finishJob(j, wire.JobFailed, nil, "journal replay: "+err.Error(), false)
		return
	}
	opts, timeout = s.solveBudgets(opts, timeout)

	resv, rerr := s.sched.reserve(t)
	if rerr != nil {
		if rec.Degrade {
			go s.runShedJob(j, t, m, opts)
			return
		}
		s.met.countRejection(admissionError(rerr))
		s.met.jobsFailed.Add(1)
		s.finishJob(j, wire.JobFailed, nil, "not re-admitted after restart: "+rerr.Error(), false)
		return
	}
	go s.runJob(j, t, m, opts, timeout, resv)
}

// restoreJob rebuilds a registry entry under its journaled ID. The job
// starts queued with a fresh lifetime context, exactly like a new submit
// except for the pinned ID and the recovered mark.
func (s *Server) restoreJob(id string, t *tenant, callback string) *job {
	ctx, cancel := context.WithCancel(context.Background())
	j := s.jobs.insert(id, t, false, cancel)
	j.callback = callback
	j.recovered = true
	j.mu.Lock()
	j.lifetime = ctx
	j.publishLocked(wire.JobEvent{State: wire.JobQueued})
	j.mu.Unlock()
	return j
}
