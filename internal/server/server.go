// Package server implements the ebmfd solve service: an HTTP JSON API over
// the cached solve pipeline.
//
//	POST /v1/solve    one matrix in, one wire.ResultJSON out (synchronous)
//	POST /v1/batch    several matrices, results in request order
//	POST /v1/jobs     async submit: 202 + job ID before any work runs
//	GET  /v1/jobs/{id}          poll a job snapshot
//	DELETE /v1/jobs/{id}        cancel (propagates into the SAT search)
//	GET  /v1/jobs/{id}/events   SSE anytime progress + terminal result
//	POST /v1/fill     cache-fill replication: seed a proved-optimal result
//	GET  /v1/healthz  liveness (503 while draining)
//	GET  /v1/metrics  counters: solves, cache hit rate, queue, latencies
//
// Four service concerns live here, in front of internal/solvecache:
//
//   - Admission control. At most MaxConcurrent solves run at once; up to
//     MaxQueue more may wait. Anything beyond that is rejected immediately
//     with 429 — a solve is CPU-bound, so letting requests pile up only
//     converts overload into timeouts. Waiting requests abort when the
//     client disconnects.
//   - Tenant QoS. API keys resolve to tenants (Config.Tenants); waiting
//     requests sit in per-tenant queues drained by deficit round robin in
//     weight proportion within strict priority lanes, with optional
//     per-tenant outstanding-work quotas. Jobs that opted in degrade to a
//     heuristic-only answer instead of a 429 when admission would reject
//     them.
//   - Budget mapping. Per-request timeout/conflict budgets (clamped to
//     configured maxima) become a context deadline and core.Options for
//     that request; the deadline starts after admission, so queueing time
//     is not billed against the solve.
//   - Draining. BeginDrain flips the server to reject new work (healthz
//     turns 503 so balancers stop routing); in-flight solves finish and are
//     flushed by http.Server.Shutdown.
package server

import (
	"context"
	"errors"
	"io"
	"log"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/solvecache"
	"repro/internal/store"
)

// Config tunes the service. The zero value means "all defaults".
type Config struct {
	// CacheCapacity is the result-cache entry cap (solvecache.DefaultCapacity
	// when <= 0).
	CacheCapacity int
	// MaxConcurrent bounds solves running at once (default GOMAXPROCS).
	MaxConcurrent int
	// MaxQueue bounds requests waiting for a solve slot (default 64;
	// negative means no waiting — reject unless a slot is free).
	MaxQueue int
	// DefaultTimeout applies when a request asks for no timeout (default
	// 30s; negative means no default deadline).
	DefaultTimeout time.Duration
	// MaxTimeout clamps per-request timeouts (default 2m).
	MaxTimeout time.Duration
	// MaxConflictBudget clamps per-request conflict budgets; 0 keeps the
	// base options' budget as the ceiling semantics-free (no clamp).
	MaxConflictBudget int64
	// MaxBodyBytes caps request bodies (default 4 MiB).
	MaxBodyBytes int64
	// MaxMatrixEntries caps rows×cols of a submitted matrix (default 1<<20).
	MaxMatrixEntries int
	// MaxBatch caps the number of requests in one batch (default 64).
	MaxBatch int
	// MaxPortfolio clamps per-request portfolio sizes (default 8; negative
	// disables racing entirely — requested portfolios collapse to the
	// single-strategy solver). Racing multiplies a request's CPU cost by up
	// to K, so an unclamped K would let one request monopolize the pool.
	MaxPortfolio int
	// Tenants declares the API-key → tenant map for QoS scheduling. The
	// built-in "default" tenant (weight 1, no key, no quota) always exists
	// for unauthenticated traffic; an entry named "default" overrides its
	// weight/quota/priority instead of adding a tenant.
	Tenants []TenantConfig
	// MaxJobs caps jobs retained in the registry, terminal ones included
	// (default 1024; the oldest terminal jobs are evicted first).
	MaxJobs int
	// JobTTL is how long a terminal job stays pollable before it may be
	// evicted even without registry pressure (default 10m).
	JobTTL time.Duration
	// Options is the base solver configuration (default: core defaults with
	// a 2M conflict budget — an unbudgeted exact solver must not be exposed
	// to arbitrary clients).
	Options *core.Options
	// Store, when non-nil, is the durable result tier attached beneath the
	// cache: proved-optimal results are written through to it and a restart
	// serves the whole history warm. The caller owns the store's lifecycle —
	// open it before New and close it after http.Server.Shutdown returns, so
	// in-flight solves can still write through during a drain.
	Store *store.Store
	// Journal, when non-nil, is the durable job journal: accepted
	// submissions, terminal snapshots, and webhook acks are logged through
	// it, and New replays it — re-admitting unfinished jobs under their old
	// IDs and resuming undelivered webhooks. The caller owns the journal's
	// lifecycle, like Store's: open before New, close after Shutdown+Close.
	Journal *store.Journal
	// WebhookAllow is the callback_url allowlist: entries are bare hosts
	// ("hooks.internal", "10.0.0.7:9000") or URL prefixes
	// ("http://hooks.internal:9000/ebmf"). Empty means callback_url is
	// rejected at submit — webhooks are a server-originated request, so the
	// operator must opt destinations in.
	WebhookAllow []string
	// WebhookTimeout bounds one delivery attempt (default 5s).
	WebhookTimeout time.Duration
	// WebhookRetryBase is the first retry delay, doubling per failure
	// jittered (default 500ms); WebhookRetryMax caps the delay (default
	// 30s); WebhookMaxRetries bounds attempts per process run (default 8 —
	// the journal re-attempts after a restart).
	WebhookRetryBase  time.Duration
	WebhookRetryMax   time.Duration
	WebhookMaxRetries int
	// Logger receives one line per request (default: discard).
	Logger *log.Logger
	// Tracer records solve traces for GET /v1/debug/traces and stitches
	// gateway-forwarded traceparent headers into cross-tier traces (default:
	// a tracer with obs defaults — every request traced, ring of 64).
	Tracer *obs.Tracer
}

// DefaultConflictBudget bounds SAT conflicts for requests that do not ask
// for a budget, matching the ebmf CLI default.
const DefaultConflictBudget = 2_000_000

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 64
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.DefaultTimeout < 0 {
		c.DefaultTimeout = 0
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 4 << 20
	}
	if c.MaxMatrixEntries <= 0 {
		c.MaxMatrixEntries = 1 << 20
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxPortfolio == 0 {
		c.MaxPortfolio = 8
	}
	if c.MaxPortfolio < 0 {
		c.MaxPortfolio = 1 // clamp target: portfolio of 1 = no racing
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	if c.JobTTL <= 0 {
		c.JobTTL = 10 * time.Minute
	}
	if c.WebhookTimeout <= 0 {
		c.WebhookTimeout = 5 * time.Second
	}
	if c.WebhookRetryBase <= 0 {
		c.WebhookRetryBase = 500 * time.Millisecond
	}
	if c.WebhookRetryMax <= 0 {
		c.WebhookRetryMax = 30 * time.Second
	}
	if c.WebhookMaxRetries <= 0 {
		c.WebhookMaxRetries = 8
	}
	if c.Options == nil {
		opts := core.DefaultOptions()
		opts.ConflictBudget = DefaultConflictBudget
		c.Options = &opts
	}
	if c.Logger == nil {
		c.Logger = log.New(io.Discard, "", 0)
	}
	if c.Tracer == nil {
		c.Tracer = obs.New(obs.Config{})
	}
	return c
}

// Server is the ebmfd HTTP service. Create with New; serve via Handler;
// stop background goroutines with Close after http.Server.Shutdown.
type Server struct {
	cfg      Config
	cache    *solvecache.Cache
	sched    *scheduler // tenant-aware admission: slots, queues, fair share
	jobs     *jobRegistry
	webhooks *webhookDeliverer
	shedSem  chan struct{} // bounds concurrent heuristic-only shed solves
	draining atomic.Bool
	started  time.Time
	mux      *http.ServeMux
	met      metrics
	closed   sync.Once
}

// New builds a server from cfg. When cfg.Journal is set, the journal's
// unfinished jobs are re-admitted (and undelivered webhooks resumed) before
// New returns, so a restarted daemon answers polls for pre-crash job IDs
// from its first request on.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		cache:   solvecache.New(cfg.CacheCapacity),
		sched:   newScheduler(cfg.MaxConcurrent, cfg.MaxQueue, cfg.Tenants),
		started: time.Now(),
		mux:     http.NewServeMux(),
	}
	s.jobs = newJobRegistry(cfg.MaxJobs, cfg.JobTTL)
	s.shedSem = make(chan struct{}, shedConcurrency)
	if cfg.Store != nil {
		s.cache.AttachStore(cfg.Store)
	}
	s.routes()
	s.webhooks = newWebhookDeliverer(s)
	s.jobs.startJanitor()
	if cfg.Journal != nil {
		s.replayJournal()
	}
	return s
}

// Close stops the server's background goroutines: the job-TTL janitor and
// the webhook deliverer. Call after http.Server.Shutdown; a webhook caught
// mid-retry stays unacked in the journal and is re-delivered by the next
// boot's replay. Close does not wait for running solves (Shutdown does) and
// does not close cfg.Store or cfg.Journal (the caller owns both).
func (s *Server) Close() {
	s.closed.Do(func() {
		s.jobs.stopJanitor()
		if s.webhooks != nil {
			s.webhooks.close()
		}
	})
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.logged(s.mux) }

// Cache exposes the underlying result cache (stats, test hooks).
func (s *Server) Cache() *solvecache.Cache { return s.cache }

// Tracer exposes the server's tracer (debug endpoints, test hooks).
func (s *Server) Tracer() *obs.Tracer { return s.cfg.Tracer }

// BeginDrain makes the server reject new work with 503 (and healthz report
// draining) while in-flight solves complete. Pair with http.Server.Shutdown,
// which waits for the in-flight handlers.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Admission control errors.
var (
	errQueueFull = errors.New("server: queue full")
	errDraining  = errors.New("server: draining")
)

// admit acquires a solve slot for the tenant (nil = default), waiting in the
// tenant's queue if necessary. The returned release function must be called
// when the solve finishes. ctx should be the request context, so a
// disconnected client leaves the queue.
func (s *Server) admit(ctx context.Context, t *tenant) (release func(), err error) {
	if s.draining.Load() {
		return nil, errDraining
	}
	return s.sched.acquire(ctx, t)
}

// tenantFor resolves the request's API key (Authorization: Bearer <key> or
// X-API-Key) to its tenant. No key means the default tenant; an unknown key
// is errUnknownKey.
func (s *Server) tenantFor(r *http.Request) (*tenant, error) {
	return s.sched.tenantForKey(apiKey(r))
}

// apiKey extracts the request's API key ("" when unauthenticated).
func apiKey(r *http.Request) string {
	if auth := r.Header.Get("Authorization"); auth != "" {
		if key, ok := strings.CutPrefix(auth, "Bearer "); ok {
			return strings.TrimSpace(key)
		}
	}
	return strings.TrimSpace(r.Header.Get("X-API-Key"))
}

// solveBudgets resolves the effective options and deadline for one request's
// wire options: defaults overlaid, then clamped to the configured maxima.
func (s *Server) solveBudgets(opts core.Options, timeout time.Duration) (core.Options, time.Duration) {
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	if s.cfg.MaxConflictBudget > 0 &&
		(opts.ConflictBudget <= 0 || opts.ConflictBudget > s.cfg.MaxConflictBudget) {
		opts.ConflictBudget = s.cfg.MaxConflictBudget
	}
	if opts.Portfolio.Size > s.cfg.MaxPortfolio {
		opts.Portfolio.Size = s.cfg.MaxPortfolio
	}
	if len(opts.Portfolio.Strategies) > s.cfg.MaxPortfolio {
		opts.Portfolio.Strategies = opts.Portfolio.Strategies[:s.cfg.MaxPortfolio]
	}
	if s.cfg.MaxPortfolio <= 1 {
		opts.Portfolio = core.PortfolioOptions{}
	}
	if timeout > 0 {
		opts.TimeBudget = timeout
	}
	return opts, timeout
}

// logged is the request-logging middleware: one line per request with
// method, path, status and duration.
func (s *Server) logged(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		s.cfg.Logger.Printf("%s %s %d %s", r.Method, r.URL.Path, sw.status, time.Since(t0).Round(time.Microsecond))
	})
}

// statusWriter records the response status for the logging middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Unwrap lets http.ResponseController reach the underlying writer's Flush
// (the SSE job-event stream needs it through this middleware).
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }
