package server

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// grab acquires a slot for t (nil = default) and fails the test on error.
func grab(t *testing.T, sc *scheduler, tn *tenant) func() {
	t.Helper()
	release, err := sc.acquire(context.Background(), tn)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	return release
}

// TestSchedulerDRRFairness pins the deficit-round-robin grant order exactly:
// one slot, two same-lane tenants with weights 3:1, 32 queued waiters each.
// While both queues are non-empty, every window of four consecutive grants
// must contain exactly three for the heavy tenant and one for the light one.
func TestSchedulerDRRFairness(t *testing.T) {
	sc := newScheduler(1, 128, []TenantConfig{
		{Name: "heavy", Keys: []string{"kh"}, Weight: 3},
		{Name: "light", Keys: []string{"kl"}, Weight: 1},
	})
	heavy, err := sc.tenantForKey("kh")
	if err != nil {
		t.Fatal(err)
	}
	light, err := sc.tenantForKey("kl")
	if err != nil {
		t.Fatal(err)
	}

	hold := grab(t, sc, nil) // occupy the only slot so every reserve queues

	const perTenant = 32
	order := make(chan string, 2*perTenant)
	var wg sync.WaitGroup
	enqueue := func(tag string, tn *tenant) {
		res, err := sc.reserve(tn)
		if err != nil {
			t.Fatalf("reserve %s: %v", tag, err)
		}
		if res.w == nil {
			t.Fatalf("reserve %s got a slot while one is held", tag)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := res.wait(context.Background())
			if err != nil {
				t.Errorf("wait %s: %v", tag, err)
				return
			}
			// Record before releasing: with one slot the next grant cannot
			// happen until this release, so channel order == grant order.
			order <- tag
			release()
		}()
	}
	for i := 0; i < perTenant; i++ {
		enqueue("heavy", heavy)
		enqueue("light", light)
	}

	hold() // start the drain
	wg.Wait()
	close(order)

	var got []string
	counts := map[string]int{}
	for tag := range order {
		got = append(got, tag)
		counts[tag]++
	}
	if counts["heavy"] != perTenant || counts["light"] != perTenant {
		t.Fatalf("grant counts %v, want %d each", counts, perTenant)
	}
	// Both queues are non-empty for the first 10 full DRR rounds
	// (10×(3+1) = 40 grants ≤ 32+10): windows of 4 must split 3:1 exactly.
	for win := 0; win < 10; win++ {
		h := 0
		for _, tag := range got[4*win : 4*win+4] {
			if tag == "heavy" {
				h++
			}
		}
		if h != 3 {
			t.Fatalf("grant window %d is %v: want exactly 3 heavy + 1 light\nfull order: %v",
				win, got[4*win:4*win+4], got)
		}
	}
}

// TestSchedulerExactMaxQueue is the regression test for the old admission
// bug: Server.admit used a bare atomic counter, so a concurrent burst could
// transiently overshoot MaxQueue before any request was rejected. Under the
// scheduler every reserve decides under one lock: a 64-goroutine burst
// against MaxQueue=4 admits exactly 4 and rejects exactly 60 — never more,
// never transiently.
func TestSchedulerExactMaxQueue(t *testing.T) {
	const maxQueue = 4
	sc := newScheduler(1, maxQueue, nil)
	hold := grab(t, sc, nil)

	const burst = 64
	var (
		mu       sync.Mutex
		reserved []*reservation
		rejected atomic.Int64
		wg       sync.WaitGroup
	)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := sc.reserve(nil)
			switch err {
			case nil:
				mu.Lock()
				reserved = append(reserved, res)
				mu.Unlock()
			case errQueueFull:
				rejected.Add(1)
			default:
				t.Errorf("reserve: %v", err)
			}
		}()
	}
	wg.Wait()

	if len(reserved) != maxQueue || rejected.Load() != burst-maxQueue {
		t.Fatalf("burst admitted %d queued %d rejections, want exactly %d and %d",
			len(reserved), rejected.Load(), maxQueue, burst-maxQueue)
	}
	queued, running, _ := sc.snapshot()
	if queued != maxQueue || running != 1 {
		t.Fatalf("snapshot queued=%d running=%d, want %d/1", queued, running, maxQueue)
	}

	// Abandoned reservations leave exactly; the counts return to zero.
	for _, res := range reserved {
		res.abandon()
	}
	hold()
	queued, running, _ = sc.snapshot()
	if queued != 0 || running != 0 {
		t.Fatalf("after cleanup queued=%d running=%d, want 0/0", queued, running)
	}
}

// TestSchedulerQuota: a tenant with quota 2 may have two outstanding
// admissions (running + queued); the third is errQuotaFull while the global
// queue still has room for other tenants.
func TestSchedulerQuota(t *testing.T) {
	sc := newScheduler(1, 64, []TenantConfig{
		{Name: "capped", Keys: []string{"kc"}, Quota: 2},
	})
	capped, err := sc.tenantForKey("kc")
	if err != nil {
		t.Fatal(err)
	}

	r1, err := sc.reserve(capped) // takes the slot
	if err != nil || r1.w != nil {
		t.Fatalf("first reserve: res=%+v err=%v, want immediate grant", r1, err)
	}
	r2, err := sc.reserve(capped) // queues
	if err != nil || r2.w == nil {
		t.Fatalf("second reserve: res=%+v err=%v, want queue position", r2, err)
	}
	if _, err := sc.reserve(capped); err != errQuotaFull {
		t.Fatalf("third reserve: err=%v, want errQuotaFull", err)
	}
	// The quota is per-tenant: the default tenant still gets a queue spot.
	rd, err := sc.reserve(nil)
	if err != nil {
		t.Fatalf("default tenant blocked by another tenant's quota: %v", err)
	}

	_, _, tenants := sc.snapshot()
	for _, ts := range tenants {
		if ts.Name == "capped" && ts.RejectedQuota != 1 {
			t.Fatalf("capped tenant snapshot %+v, want rejected_quota=1", ts)
		}
	}

	rd.abandon()
	r2.abandon()
	rel, err := r1.wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel()
}

// TestSchedulerPriorityLanes: a lower-Priority tenant's waiter is served
// before an earlier-queued waiter from a higher-Priority lane.
func TestSchedulerPriorityLanes(t *testing.T) {
	sc := newScheduler(1, 64, []TenantConfig{
		{Name: "vip", Keys: []string{"kv"}, Priority: -1},
		{Name: "batch", Keys: []string{"kb"}, Priority: 1},
	})
	vip, _ := sc.tenantForKey("kv")
	batch, _ := sc.tenantForKey("kb")

	hold := grab(t, sc, nil)
	resBatch, err := sc.reserve(batch) // queued first
	if err != nil {
		t.Fatal(err)
	}
	resVip, err := sc.reserve(vip) // queued second, but lower lane
	if err != nil {
		t.Fatal(err)
	}
	hold()

	relVip, err := resVip.wait(context.Background())
	if err != nil {
		t.Fatalf("vip wait: %v", err)
	}
	select {
	case <-resBatch.w.ch:
		t.Fatal("batch lane granted before the vip lane drained")
	default:
	}
	relVip()
	relBatch, err := resBatch.wait(context.Background())
	if err != nil {
		t.Fatalf("batch wait: %v", err)
	}
	relBatch()
}

// TestSchedulerCancelWhileQueued: a waiter whose context aborts vacates its
// queue position exactly; the slot then goes to the next waiter.
func TestSchedulerCancelWhileQueued(t *testing.T) {
	sc := newScheduler(1, 8, nil)
	hold := grab(t, sc, nil)

	res1, err := sc.reserve(nil)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := sc.reserve(nil)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := res1.wait(ctx); err != context.Canceled {
		t.Fatalf("canceled wait: %v, want context.Canceled", err)
	}
	if queued, _, _ := sc.snapshot(); queued != 1 {
		t.Fatalf("queued=%d after abort, want 1", queued)
	}

	hold()
	done := make(chan struct{})
	go func() {
		rel, err := res2.wait(context.Background())
		if err != nil {
			t.Errorf("survivor wait: %v", err)
		} else {
			rel()
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("surviving waiter never granted after the abort freed the slot")
	}
}

func TestParseTenantFlag(t *testing.T) {
	got, err := ParseTenantFlag(" teamA:ka:3 , teamB:kb:1:5:2 , default::2 ")
	if err != nil {
		t.Fatal(err)
	}
	want := []TenantConfig{
		{Name: "teamA", Keys: []string{"ka"}, Weight: 3},
		{Name: "teamB", Keys: []string{"kb"}, Weight: 1, Quota: 5, Priority: 2},
		{Name: "default", Weight: 2},
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("got %+v\nwant %+v", got, want)
	}
	for _, bad := range []string{
		"noweight:k",        // too few fields
		"a:k:zero",          // non-numeric weight
		"a:k:0",             // weight must be positive
		"a:k:1:-2",          // negative quota
		":k:1",              // empty name
		"a:k:1:2:3:4",       // too many fields
		"ok:k:1,broken:k:x", // error anywhere poisons the flag
	} {
		if _, err := ParseTenantFlag(bad); err == nil {
			t.Errorf("ParseTenantFlag(%q) accepted invalid input", bad)
		}
	}
	if got, err := ParseTenantFlag(" , "); err != nil || got != nil {
		t.Errorf("empty flag: got %v, %v; want nil, nil", got, err)
	}
}
