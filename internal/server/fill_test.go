package server

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/bitmat"
	"repro/internal/core"
	"repro/internal/store"
	"repro/internal/wire"
)

// canonicalFill solves fig1b's canonical matrix out of band and builds the
// fill a replicating gateway would send.
func canonicalFill(t *testing.T) (*bitmat.Fingerprint, wire.FillRequest) {
	t.Helper()
	m := bitmat.MustParse(fig1b)
	fp := bitmat.ComputeFingerprint(m)
	res, err := core.SolveContext(context.Background(), fp.Canonical, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal {
		t.Fatal("canonical solve not optimal")
	}
	return fp, wire.FillRequest{
		Fingerprint: fp.Hash,
		Matrix:      fp.Canonical.String(),
		Result:      wire.FromResult(res, fp.Hash),
	}
}

func postFill(t *testing.T, url string, req wire.FillRequest) (*http.Response, wire.FillResponse, []byte) {
	t.Helper()
	resp, body := postJSON(t, url+"/v1/fill", req)
	var fr wire.FillResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &fr); err != nil {
			t.Fatalf("bad fill response: %v\n%s", err, body)
		}
	}
	return resp, fr, body
}

// A valid fill seeds the cache: a permutation-equivalent solve afterwards is
// a cache hit with zero pipeline work.
func TestFillSeedsCache(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	_, fill := canonicalFill(t)

	resp, fr, body := postFill(t, ts.URL, fill)
	if resp.StatusCode != http.StatusOK || !fr.Stored {
		t.Fatalf("fill: status %d stored=%v body=%s", resp.StatusCode, fr.Stored, body)
	}
	// Idempotent: the same fill again reports nothing stored.
	if _, fr, _ := postFill(t, ts.URL, fill); fr.Stored {
		t.Fatal("duplicate fill reported stored")
	}

	resp, rbody := postJSON(t, ts.URL+"/v1/solve", wire.SolveRequest{Matrix: fig1b})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve after fill: %d %s", resp.StatusCode, rbody)
	}
	res := decodeResult(t, rbody)
	if !res.CacheHit || !res.Optimal {
		t.Fatalf("solve after fill: hit=%v optimal=%v, want seeded hit", res.CacheHit, res.Optimal)
	}
	if st := s.Cache().Stats(); st.Seeds != 1 || st.Misses != 0 {
		t.Fatalf("cache stats after fill: %+v", st)
	}
	snap := s.metricsSnapshot()
	if snap.Fills.Requests != 2 || snap.Fills.Stored != 1 || snap.Fills.Duplicate != 1 {
		t.Fatalf("fill metrics: %+v", snap.Fills)
	}
}

// A fill reaches the durable store too, and survives into a fresh server
// over the same directory.
func TestFillWritesThroughToStore(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{Sync: store.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Store: st})
	fp, fill := canonicalFill(t)

	if resp, fr, body := postFill(t, ts.URL, fill); resp.StatusCode != http.StatusOK || !fr.Stored {
		t.Fatalf("fill: %d %s", resp.StatusCode, body)
	}
	if _, ok := st.Get(fp.Hash); !ok {
		t.Fatal("fill not written through to the durable store")
	}
	st.Close()

	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	s2, ts2 := newTestServer(t, Config{Store: st2})
	resp, rbody := postJSON(t, ts2.URL+"/v1/solve", wire.SolveRequest{Matrix: fig1b})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve on restarted server: %d %s", resp.StatusCode, rbody)
	}
	if res := decodeResult(t, rbody); !res.CacheHit {
		t.Fatal("restarted server re-solved a filled matrix")
	}
	if snap := s2.metricsSnapshot(); snap.Store == nil || snap.Store.LoadedWAL != 1 {
		t.Fatalf("store metrics on restarted server: %+v", snap.Store)
	}
}

// Invalid fills must be rejected with 400 before touching the cache.
func TestFillValidation(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	fp, good := canonicalFill(t)

	truncate := func(req wire.FillRequest, mutate func(*wire.FillRequest)) wire.FillRequest {
		// Deep-copy the result so mutations don't leak across cases.
		cp := req
		r := *req.Result
		r.Partition = append([]wire.RectJSON(nil), req.Result.Partition...)
		cp.Result = &r
		mutate(&cp)
		return cp
	}

	cases := map[string]wire.FillRequest{
		"missing fingerprint": truncate(good, func(f *wire.FillRequest) { f.Fingerprint = "" }),
		"missing result":      truncate(good, func(f *wire.FillRequest) { f.Result = nil }),
		"missing matrix":      truncate(good, func(f *wire.FillRequest) { f.Matrix = "" }),
		"not optimal":         truncate(good, func(f *wire.FillRequest) { f.Result.Optimal = false }),
		"timed out":           truncate(good, func(f *wire.FillRequest) { f.Result.TimedOut = true }),
		"wrong fingerprint":   truncate(good, func(f *wire.FillRequest) { f.Fingerprint = "deadbeef" }),
		"non-canonical matrix": truncate(good, func(f *wire.FillRequest) {
			// fig1b itself: equivalent to the canonical form but not equal
			// to it, so a fill must not trust the claimed pairing.
			f.Matrix = fig1b
		}),
		"depth mismatch": truncate(good, func(f *wire.FillRequest) {
			f.Result.Depth++
		}),
		"partition not covering": truncate(good, func(f *wire.FillRequest) {
			f.Result.Partition = f.Result.Partition[:len(f.Result.Partition)-1]
		}),
		"rect out of range": truncate(good, func(f *wire.FillRequest) {
			f.Result.Partition[0].Rows = []int{1 << 30}
		}),
		"empty rect": truncate(good, func(f *wire.FillRequest) {
			f.Result.Partition[0].Rows = nil
		}),
	}
	for name, req := range cases {
		resp, _, body := postFill(t, ts.URL, req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d body=%s, want 400", name, resp.StatusCode, body)
		}
	}
	if st := s.Cache().Stats(); st.Seeds != 0 || st.Entries != 0 {
		t.Fatalf("invalid fill reached the cache: %+v", st)
	}
	if snap := s.metricsSnapshot(); snap.Fills.Rejected != int64(len(cases)) {
		t.Fatalf("rejected = %d, want %d", snap.Fills.Rejected, len(cases))
	}
	// The wrong-fingerprint case must also fail when the hash belongs to a
	// DIFFERENT matrix (not just a garbage string): key poisoning.
	other := bitmat.MustParse("11\n01")
	otherFP := bitmat.ComputeFingerprint(other)
	poison := good
	poison.Fingerprint = otherFP.Hash
	if resp, _, _ := postFill(t, ts.URL, poison); resp.StatusCode != http.StatusBadRequest {
		t.Fatal("fill keyed by another matrix's fingerprint was accepted")
	}
	_ = fp
}

// A draining server refuses fills: its store is being flushed for shutdown.
func TestFillRejectedWhileDraining(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	_, fill := canonicalFill(t)
	s.BeginDrain()
	if resp, _, _ := postFill(t, ts.URL, fill); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatal("draining server accepted a fill")
	}
}
