package core

import (
	"math/rand"
	"testing"

	"repro/internal/bitmat"
)

// TestIncrementalAblationSameDepths: the selector-assumption SAP loop and
// the destructive re-constraining loop must find identical depths and
// certificates on random instances, for both encodings.
func TestIncrementalAblationSameDepths(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 20; trial++ {
		m := bitmat.Random(rng, 4+rng.Intn(3), 4+rng.Intn(3), 0.45)
		for _, encoding := range []Encoding{EncodingOneHot, EncodingLog} {
			base := DefaultOptions()
			base.Encoding = encoding
			base.FoolingBudget = 0

			inc := base
			res1, err := Solve(m, inc)
			if err != nil {
				t.Fatal(err)
			}
			dis := base
			dis.DisableIncremental = true
			res2, err := Solve(m, dis)
			if err != nil {
				t.Fatal(err)
			}
			if res1.Depth != res2.Depth || res1.Optimal != res2.Optimal {
				t.Fatalf("trial %d enc=%v: incremental depth=%d opt=%v vs destructive depth=%d opt=%v for\n%s",
					trial, encoding, res1.Depth, res1.Optimal, res2.Depth, res2.Optimal, m)
			}
		}
	}
}

// TestSolverKnobsDoNotChangeDepths: phase saving and LBD cap are heuristics;
// flipping them must not change results.
func TestSolverKnobsDoNotChangeDepths(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 12; trial++ {
		m := bitmat.Random(rng, 5, 5, 0.5)
		ref, err := Solve(m, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		for _, opts := range []Options{
			func() Options { o := DefaultOptions(); o.DisablePhaseSaving = true; return o }(),
			func() Options { o := DefaultOptions(); o.LBDCap = 5; return o }(),
		} {
			res, err := Solve(m, opts)
			if err != nil {
				t.Fatal(err)
			}
			if res.Depth != ref.Depth || res.Optimal != ref.Optimal {
				t.Fatalf("trial %d: knob changed result: depth %d vs %d for\n%s", trial, res.Depth, ref.Depth, m)
			}
		}
	}
}

// TestCertifyAfterIncrementalSolve: the certification path (non-incremental
// by design: DRAT needs a monotone clause stream) must still certify depths
// produced by the incremental SAP loop.
func TestCertifyAfterIncrementalSolve(t *testing.T) {
	m := bitmat.MustParse("101100\n010011\n101010\n010101\n111000\n000111")
	res, err := Solve(m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal || res.Depth != 5 {
		t.Fatalf("depth=%d optimal=%v, want 5/true", res.Depth, res.Optimal)
	}
	if err := CertifyDepth(m, res.Depth); err != nil {
		t.Fatalf("certify: %v", err)
	}
}
