// Package core implements SAP (SMT-and-packing, Algorithm 1 of the paper):
// the combined EBMF solver. The row-packing heuristic supplies a valid
// partition quickly; a SAT-backed exact solver (the paper uses z3; this
// reproduction compiles the same constraints to CNF) then repeatedly narrows
// the rectangle budget until it proves unsatisfiability or reaches the
// rational-rank lower bound, at which point the best partition found is
// optimal.
//
// Solving runs as a staged pipeline:
//
//	Preprocess (bitmat.Compress)   — drop zero rows/cols, merge duplicates
//	Decompose  (bitmat.Decompose)  — split into bipartite connected components
//	Per-block SAP (solveBlock)     — Algorithm 1 on each block, concurrently
//	Recombine                      — union the partitions, stitch certificates
//
// The depth objective is additive over components (a rectangle spanning two
// components would cover a 0), so the blockwise union of optima is a global
// optimum and blocks can be solved independently on a worker pool
// (Options.Parallelism). A context.Context threads cancellation through the
// pipeline into the SAT solver's search loop, so a canceled request stops
// mid-search instead of at the next depth bound.
//
// The solver always returns the best valid partition found so far, even when
// interrupted by a conflict budget, deadline or cancellation — mirroring the
// paper's "when we terminate at any time, we can return P".
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/bitmat"
	"repro/internal/encode"
	"repro/internal/fooling"
	"repro/internal/obs"
	"repro/internal/portfolio"
	"repro/internal/rect"
	"repro/internal/rowpack"
	"repro/internal/sat"
)

// Encoding selects the CNF compilation of the depth-decision problem.
type Encoding int

const (
	// EncodingOneHot is the direct slot encoding (default, fastest).
	EncodingOneHot Encoding = iota
	// EncodingLog is the bit-vector-flavoured encoding (ablation).
	EncodingLog
)

// Certificate says why a result is known optimal.
type Certificate int

const (
	// CertNone: no optimality proof (heuristic result only).
	CertNone Certificate = iota
	// CertRank: depth equals the rational-rank lower bound (Eq. 3).
	CertRank
	// CertFooling: depth equals a fooling-set lower bound.
	CertFooling
	// CertUnsat: the SAT solver proved depth-1 infeasible.
	CertUnsat
)

// String names the certificate.
func (c Certificate) String() string {
	switch c {
	case CertRank:
		return "rank"
	case CertFooling:
		return "fooling-set"
	case CertUnsat:
		return "unsat-proof"
	default:
		return "none"
	}
}

// Options configures Solve.
type Options struct {
	// Packing configures the row-packing heuristic stage.
	Packing rowpack.Options
	// Encoding selects the CNF compilation.
	Encoding Encoding
	// AMO selects the at-most-one encoding for the one-hot compilation.
	AMO encode.AMO
	// SkipSAT stops after the heuristic stage (still reports lower bounds
	// and certificates when the heuristic happens to match them).
	SkipSAT bool
	// ConflictBudget bounds total SAT conflicts across the narrowing loop;
	// ≤ 0 means unlimited. When exhausted the best partition so far is
	// returned with TimedOut set. After decomposition the budget is
	// apportioned across blocks proportionally to their 1-entry counts.
	ConflictBudget int64
	// TimeBudget bounds wall-clock time of the solve; 0 means unlimited.
	// The deadline is anchored when the pipeline starts (after
	// preprocessing), so per-block packing and queueing time count against
	// it, and the SAT loops of all blocks share the single deadline.
	TimeBudget time.Duration
	// FoolingBudget is the node budget for the exact fooling-set lower
	// bound; 0 skips the fooling bound entirely (the paper's loop uses only
	// the rank bound; fooling strengthens certificates on small instances).
	// The budget applies per block.
	FoolingBudget int64
	// DisableCompression solves on the raw matrix instead of the
	// deduplicated reduction.
	DisableCompression bool
	// DisableDecomposition skips the connected-component split and runs one
	// monolithic SAP loop over the whole (compressed) matrix — the
	// pre-pipeline behaviour, kept as an ablation and differential-test
	// baseline.
	DisableDecomposition bool
	// Parallelism bounds how many blocks are solved concurrently after
	// decomposition; ≤ 0 means runtime.GOMAXPROCS(0). Results are
	// deterministic regardless of the setting: blocks are independent and
	// recombined in a fixed order.
	Parallelism int
	// MaxSATEntries skips the SAT stage for matrices with more 1-entries
	// (mirrors the paper: 100×100 instances are "too large for SMT").
	// 0 means no limit. Applied per block, so a large matrix that
	// decomposes into small components still gets exact per-block solves.
	MaxSATEntries int
	// DisableIncremental narrows the depth bound by adding unit clauses
	// (re-constraining the formula) instead of the default selector
	// assumptions. Kept as an ablation: incremental narrowing reuses learnt
	// clauses and heuristic state across every depth bound of the SAP loop.
	DisableIncremental bool
	// DisableSymmetryBreaking drops the slot-ordering symmetry-breaking
	// clauses (lexicographic first-row-index ordering of rectangle slots)
	// from the one-hot encoding, leaving only the per-entry break
	// (ablation). Without them the solver re-explores permuted-slot
	// duplicates of every partition attempt on UNSAT proofs.
	DisableSymmetryBreaking bool
	// DisablePhaseSaving turns off the solver's saved-polarity decision
	// heuristic (ablation).
	DisablePhaseSaving bool
	// DisableInprocessing turns off the solver's between-restart clause
	// database simplification (vivification + binary self-subsumption);
	// kept as an ablation for the native-AMO/inprocessing PR.
	DisableInprocessing bool
	// LBDCap overrides the solver's glue-clause threshold: learnt clauses
	// with literal-blocks-distance at or below the cap are never evicted by
	// database reduction. 0 keeps the solver default (2).
	LBDCap int
	// Portfolio configures per-block strategy racing (internal/portfolio):
	// K diverse solver configurations attack each block's depth decisions
	// concurrently and the first verdict wins. Default off (Size ≤ 1) so
	// the single-strategy ablations stay clean.
	Portfolio PortfolioOptions
}

// PortfolioOptions tunes the per-block racing layer.
type PortfolioOptions struct {
	// Size is the number of racers K; ≤ 1 disables racing.
	Size int
	// Strategies optionally names the racing set explicitly ("canonical"
	// plus names from portfolio.Names()). Empty means a default diverse set
	// seeded deterministically from each block's fingerprint. When set, its
	// length overrides Size.
	Strategies []string
	// ShareClauses exchanges short glue clauses (LBD ≤ 2, length ≤ 8)
	// between racers of the same encoding family.
	ShareClauses bool
	// StrategyBudgets caps each racer's lifetime conflicts (aligned with
	// the resolved strategy list; ≤ 0 entries mean uncapped). Primarily a
	// test/ablation hook: forcing each strategy to win in turn is how the
	// determinism contract is exercised.
	StrategyBudgets []int64
	// HeadStart is the solo-phase conflict budget before the competitors
	// launch (0 = the portfolio default, negative = race immediately).
	HeadStart int64
}

// Enabled reports whether the options ask for the racing layer. A single
// named strategy counts: it runs that strategy solo through the race
// machinery (the documented "-strategies implies -portfolio" contract, and
// the way to ablate one non-canonical configuration).
func (p PortfolioOptions) Enabled() bool {
	return p.Size > 1 || len(p.Strategies) > 0
}

// DefaultOptions mirror the paper's configuration at moderate effort:
// 100 packing trials and an unbounded exact stage for small matrices.
func DefaultOptions() Options {
	return Options{
		Packing:       rowpack.DefaultOptions(),
		FoolingBudget: 200_000,
		MaxSATEntries: 400,
	}
}

// Result is the outcome of a Solve call.
type Result struct {
	// Partition is the best EBMF found; always valid for the input matrix.
	Partition *rect.Partition
	// Depth is len(Partition.Rects) = the addressing depth.
	Depth int
	// RankLB is the rational-rank lower bound (Eq. 3; summed over blocks —
	// rank is additive over the connected-component decomposition).
	RankLB int
	// FoolingLB is the best fooling-set lower bound computed (0 if
	// skipped). Blockwise fooling sets union into a fooling set of the
	// whole matrix, so this too is summed over blocks.
	FoolingLB int
	// Optimal reports whether Depth is proved minimal, i.e. Depth = r_B(M).
	// After decomposition this holds iff every block was solved optimally.
	Optimal bool
	// Certificate says how optimality was established: the strongest
	// machinery any block needed (unsat-proof > fooling-set > rank).
	Certificate Certificate
	// TimedOut reports that a conflict budget, deadline or cancellation
	// interrupted the narrowing loop on some block (the result may still be
	// optimal-by-bound).
	TimedOut bool
	// Canceled reports that the context was canceled mid-solve. The
	// partition is still valid; the SAT stage of unfinished blocks was
	// abandoned. Canceled results follow the same stage-timing contract as
	// complete ones: PackTime covers the heuristic stage (which always
	// runs), SATTime covers only SAT work actually performed (zero when the
	// cancellation landed before the SAT stage started).
	Canceled bool
	// CacheHit reports that the result was served from a fingerprint cache
	// (see internal/solvecache) rather than a pipeline run. On cache hits
	// the solver-stage fields — SATCalls, Conflicts, PackTime, SATTime —
	// are zeroed rather than replaying the original solve's values: they
	// describe work this request did, which was none.
	CacheHit bool
	// Blocks is the number of connected components the solve decomposed
	// into (1 when decomposition is disabled or the matrix is connected).
	Blocks int
	// HeuristicDepth is the depth after the packing stage, before SAT
	// (summed over blocks).
	HeuristicDepth int
	// SATCalls counts decision-problem invocations across all blocks.
	SATCalls int
	// Conflicts is the total SAT conflicts spent across all blocks.
	Conflicts int64
	// PackTime and SATTime split the runtime by stage (Figure 4's split),
	// summed over blocks — with Parallelism > 1 these are aggregate
	// per-block times and may exceed the wall clock.
	PackTime, SATTime time.Duration
	// Portfolio carries racing provenance (nil when racing was off). With
	// racing on, Conflicts includes the cancelled racers' work; the
	// winner-only share is Conflicts − Portfolio.LoserConflicts.
	Portfolio *PortfolioStats
}

// PortfolioStats aggregates per-block racing outcomes across the solve.
type PortfolioStats struct {
	// Wins counts race-round wins per strategy name.
	Wins map[string]int
	// BlockWinners records, in block order, the strategy that decided each
	// raced block's final round ("" for blocks that never reached the SAT
	// stage or timed out undecided).
	BlockWinners []string
	// LoserConflicts is the total conflicts spent by cancelled or
	// exhausted racers — the redundant work racing paid for its latency.
	LoserConflicts int64
	// SharedExported and SharedImported count clause-exchange traffic.
	SharedExported, SharedImported int64
}

// merge folds a block's racing stats into the solve-wide aggregate.
func (p *PortfolioStats) merge(b *PortfolioStats) {
	if b == nil {
		p.BlockWinners = append(p.BlockWinners, "")
		return
	}
	if p.Wins == nil {
		p.Wins = map[string]int{}
	}
	for name, n := range b.Wins {
		p.Wins[name] += n
	}
	p.BlockWinners = append(p.BlockWinners, b.BlockWinners...)
	p.LoserConflicts += b.LoserConflicts
	p.SharedExported += b.SharedExported
	p.SharedImported += b.SharedImported
}

// markOptimalByBound records optimality established by the depth meeting a
// lower bound, with the certificate naming the stronger bound. Shared by the
// sequential and racing block solvers so their certificates cannot drift.
func (r *Result) markOptimalByBound() {
	r.Optimal = true
	r.Certificate = CertRank
	if r.FoolingLB > r.RankLB {
		r.Certificate = CertFooling
	}
}

// ErrNilMatrix is returned when Solve receives a nil matrix.
var ErrNilMatrix = errors.New("core: nil matrix")

// Solve runs the staged SAP pipeline on m and returns the best partition
// with provenance. It is SolveContext with a background context.
func Solve(m *bitmat.Matrix, opts Options) (*Result, error) {
	return SolveContext(context.Background(), m, opts)
}

// SolveContext is Solve with cancellation: when ctx is canceled the SAT
// stage stops mid-search (the cancellation is polled inside the solver's
// propagate loop) and the best partition found so far is returned with
// Canceled and TimedOut set. The heuristic stage always completes, so the
// returned partition is valid even for an already-canceled context.
func SolveContext(ctx context.Context, m *bitmat.Matrix, opts Options) (*Result, error) {
	if m == nil {
		return nil, ErrNilMatrix
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if len(opts.Portfolio.Strategies) > 0 {
		// Validate strategy names up front: blocks resolve their racing
		// sets lazily, so a typo would otherwise surface only on inputs
		// hard enough to race (or never).
		if _, err := resolveStrategies(m, opts); err != nil {
			return nil, err
		}
	}

	// Stage 1: Preprocess — work on the compressed matrix; lift the
	// partition back at the end.
	work := m
	var comp *bitmat.Compression
	if !opts.DisableCompression {
		_, sp := obs.StartSpan(ctx, "preprocess")
		comp = bitmat.Compress(m)
		work = comp.Reduced
		sp.SetAttrInt("rows", int64(work.Rows()))
		sp.SetAttrInt("cols", int64(work.Cols()))
		sp.End()
	}

	finish := func(res *Result, p *rect.Partition) (*Result, error) {
		if comp != nil {
			p = rect.Lift(comp, m, p)
		}
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("core: internal error: produced invalid partition: %w", err)
		}
		res.Partition = p
		res.Depth = p.Depth()
		return res, nil
	}

	if work.Ones() == 0 {
		res := &Result{Optimal: true, Certificate: CertRank}
		return finish(res, rect.NewPartition(work))
	}

	// Stage 2: Decompose — split into bipartite connected components.
	var blocks []bitmat.Block
	if opts.DisableDecomposition {
		blocks = []bitmat.Block{wholeBlock(work)}
	} else {
		_, sp := obs.StartSpan(ctx, "decompose")
		blocks = bitmat.Decompose(work).Blocks
		sp.SetAttrInt("blocks", int64(len(blocks)))
		sp.End()
	}

	deadline := time.Time{}
	if opts.TimeBudget > 0 {
		deadline = time.Now().Add(opts.TimeBudget)
	}
	budgets := apportionConflicts(opts.ConflictBudget, blocks)

	// Stage 3: per-block SAP on a bounded worker pool.
	results := make([]*Result, len(blocks))
	errs := make([]error, len(blocks))
	if par := parallelism(opts, len(blocks)); par <= 1 {
		for i := range blocks {
			results[i], errs[i] = solveBlock(ctx, i, blocks[i].M, opts, budgets[i], deadline)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < par; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					results[i], errs[i] = solveBlock(ctx, i, blocks[i].M, opts, budgets[i], deadline)
				}
			}()
		}
		for i := range blocks {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Stage 4: Recombine — union the block partitions on the work matrix
	// and stitch the per-block provenance together.
	_, rsp := obs.StartSpan(ctx, "recombine")
	defer rsp.End()
	res := &Result{Blocks: len(blocks), Optimal: true, Certificate: CertRank}
	union := rect.NewPartition(work)
	for bi, br := range results {
		blk := blocks[bi]
		for _, r := range br.Partition.Rects {
			nr := rect.NewRect(work.Rows(), work.Cols())
			r.Rows.ForEachOne(func(i int) { nr.Rows.Set(blk.Rows[i], true) })
			r.Cols.ForEachOne(func(j int) { nr.Cols.Set(blk.Cols[j], true) })
			union.Add(nr)
		}
		res.RankLB += br.RankLB
		res.FoolingLB += br.FoolingLB
		res.HeuristicDepth += br.HeuristicDepth
		res.SATCalls += br.SATCalls
		res.Conflicts += br.Conflicts
		res.PackTime += br.PackTime
		res.SATTime += br.SATTime
		res.TimedOut = res.TimedOut || br.TimedOut
		res.Canceled = res.Canceled || br.Canceled
		res.Optimal = res.Optimal && br.Optimal
		if br.Certificate > res.Certificate {
			res.Certificate = br.Certificate
		}
		if opts.Portfolio.Enabled() {
			if res.Portfolio == nil {
				res.Portfolio = &PortfolioStats{Wins: map[string]int{}}
			}
			res.Portfolio.merge(br.Portfolio)
		}
	}
	if !res.Optimal {
		res.Certificate = CertNone
	}
	return finish(res, union)
}

// wholeBlock wraps a matrix as a single block with identity lift maps.
func wholeBlock(m *bitmat.Matrix) bitmat.Block {
	rows := make([]int, m.Rows())
	for i := range rows {
		rows[i] = i
	}
	cols := make([]int, m.Cols())
	for j := range cols {
		cols[j] = j
	}
	return bitmat.Block{M: m, Rows: rows, Cols: cols}
}

// parallelism resolves the worker-pool width for nBlocks blocks. With
// portfolio racing on, each block spawns K racer goroutines of its own, so
// the block-level width shrinks to keep the total goroutine fan-out near
// the configured parallelism.
func parallelism(opts Options, nBlocks int) int {
	p := opts.Parallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if opts.Portfolio.Enabled() && opts.Portfolio.HeadStart < 0 {
		// Immediate racing guarantees K goroutines per block, so shrink the
		// block pool to keep the total fan-out near the configured width.
		// With a head start (the default) most blocks stay solo and never
		// spawn competitors — shrinking up front would idle cores — so the
		// rare escalated block briefly oversubscribes instead.
		k := opts.Portfolio.Size
		if n := len(opts.Portfolio.Strategies); n > 0 {
			k = n
		}
		if k > 1 {
			p = (p + k - 1) / k
		}
	}
	if p > nBlocks {
		p = nBlocks
	}
	if p < 1 {
		p = 1
	}
	return p
}

// apportionConflicts splits a global conflict budget across blocks
// proportionally to their 1-entry counts (the driver of CNF size and search
// hardness), guaranteeing each block at least one conflict; any rounding
// remainder goes to the largest block. total ≤ 0 means unlimited for every
// block (zero shares).
func apportionConflicts(total int64, blocks []bitmat.Block) []int64 {
	out := make([]int64, len(blocks))
	if total <= 0 || len(blocks) <= 1 {
		if total > 0 && len(blocks) == 1 {
			out[0] = total
		}
		return out
	}
	ones := make([]int64, len(blocks))
	var sum int64
	maxI := 0
	for i, b := range blocks {
		ones[i] = int64(b.M.Ones())
		sum += ones[i]
		if ones[i] > ones[maxI] {
			maxI = i
		}
	}
	var used int64
	for i := range out {
		out[i] = total * ones[i] / sum
		if out[i] < 1 {
			out[i] = 1
		}
		used += out[i]
	}
	if rem := total - used; rem > 0 {
		out[maxI] += rem
	}
	return out
}

// solveBlock runs Algorithm 1 — heuristic pack, lower bounds, SAT narrowing —
// on one connected block. The returned Result carries a block-local partition
// (not yet lifted or validated) plus the block's provenance fields.
func solveBlock(ctx context.Context, blockIdx int, m *bitmat.Matrix, opts Options, conflictBudget int64, deadline time.Time) (*Result, error) {
	res := &Result{Blocks: 1}
	if m.Ones() == 0 {
		res.Optimal = true
		res.Certificate = CertRank
		res.Partition = rect.NewPartition(m)
		return res, nil
	}
	ctx, bsp := obs.StartSpan(ctx, "block")
	bsp.SetAttrInt("block", int64(blockIdx))
	bsp.SetAttrInt("ones", int64(m.Ones()))
	defer bsp.End()
	defer func() {
		if res.Partition != nil {
			bsp.SetAttrInt("depth", int64(res.Partition.Depth()))
		}
		bsp.SetAttrInt("conflicts", res.Conflicts)
	}()

	// Stage 1: heuristic upper bound (Algorithm 1, line 1).
	t0 := time.Now()
	_, psp := obs.StartSpan(ctx, "pack")
	best := rowpack.Pack(m, opts.Packing)
	psp.SetAttrInt("depth", int64(best.Depth()))
	psp.End()
	res.PackTime = time.Since(t0)
	res.HeuristicDepth = best.Depth()

	// Lower bounds.
	res.RankLB = m.Rank()
	lb := res.RankLB
	if opts.FoolingBudget > 0 {
		fs, _ := fooling.Exact(m, opts.FoolingBudget)
		res.FoolingLB = len(fs)
		if res.FoolingLB > lb {
			lb = res.FoolingLB
		}
	}

	optimalByBound := func() { res.markOptimalByBound() }

	res.Partition = best
	if best.Depth() <= lb {
		optimalByBound()
		return res, nil
	}
	if opts.SkipSAT || (opts.MaxSATEntries > 0 && m.Ones() > opts.MaxSATEntries) {
		return res, nil
	}
	if ctx.Err() != nil {
		res.TimedOut, res.Canceled = true, true
		return res, nil
	}
	if deadlineExpired(deadline) {
		// A block queued behind slow siblings must not start a conflict
		// chunk against an already-spent budget.
		res.TimedOut = true
		return res, nil
	}

	// Stage 2: SAT narrowing loop (Algorithm 1, lines 2–10).
	tSAT := time.Now()
	defer func() { res.SATTime = time.Since(tSAT) }()

	if opts.Portfolio.Enabled() {
		return solveBlockPortfolio(ctx, blockIdx, m, opts, conflictBudget, deadline, res, best, lb)
	}

	enc := newEncoder(m, best.Depth()-1, opts)
	s := enc.Solver()
	s.SetInterrupt(func() bool { return ctx.Err() != nil })
	defer s.SetInterrupt(nil)
	installProgress(ctx, s, blockIdx, lb, enc.Bound)
	defer s.SetProgress(0, nil)
	remaining := conflictBudget // <=0: unlimited
	for enc.Bound() >= lb {
		if conflictBudget > 0 && remaining <= 0 {
			// The budget ran out exactly on the last round's final conflict:
			// passing remaining=0 on would mean "unlimited" to
			// solveWithBudgets, not "exhausted".
			res.TimedOut = true
			break
		}
		_, probe := obs.StartSpan(ctx, "probe")
		probe.SetAttrInt("bound", int64(enc.Bound()))
		status, spent := solveWithBudgets(ctx, enc, remaining, deadline)
		probe.SetAttr("status", status.String())
		probe.SetAttrInt("conflicts", spent)
		probe.End()
		res.SATCalls++
		res.Conflicts += spent
		if remaining > 0 {
			remaining -= spent
			if remaining <= 0 && status == sat.Unknown {
				res.TimedOut = true
				break
			}
		}
		switch status {
		case sat.Sat:
			p, err := enc.ReadPartition()
			if err != nil {
				return nil, fmt.Errorf("core: model readout failed: %w", err)
			}
			best = p
			res.Partition = best
			enc.Narrow()
		case sat.Unsat:
			res.Optimal = true
			res.Certificate = CertUnsat
			return res, nil
		default:
			res.TimedOut = true
			res.Canceled = ctx.Err() != nil
			return res, nil
		}
	}
	if !res.TimedOut && best.Depth() <= lb {
		optimalByBound()
	}
	return res, nil
}

// solveBlockPortfolio replaces the sequential narrowing loop with a
// per-bound strategy race (internal/portfolio). The race decides statuses
// only — those are properties of the matrix, so depth, optimality and
// certificate come out identical to the sequential solver's. The race is
// delayed: the canonical strategy runs alone with a conflict head start, so
// easy blocks pay no racing overhead and keep the solo loop's own model.
// Once competitors launch, the winning partition is re-derived by a fresh
// canonical solver at the proven bound, a pure function of (matrix, bound,
// options): race timing and the identity of the winning racer can change
// only the stats, never the result.
func solveBlockPortfolio(ctx context.Context, blockIdx int, m *bitmat.Matrix, opts Options, conflictBudget int64, deadline time.Time, res *Result, best *rect.Partition, lb int) (*Result, error) {
	strategies, err := resolveStrategies(m, opts)
	if err != nil {
		return nil, err
	}
	if obs.ProgressEvery(ctx) > 0 {
		// Initial sample at SAT-stage start, mirroring installProgress.
		obs.AddProgress(ctx, obs.ProgressSample{Time: time.Now(), Block: blockIdx, Bound: best.Depth() - 1, LB: lb})
	}
	out := portfolio.Race(ctx, portfolio.RaceSpec{
		M:               m,
		Block:           blockIdx,
		Start:           best.Depth() - 1,
		LB:              lb,
		Strategies:      strategies,
		StrategyBudgets: opts.Portfolio.StrategyBudgets,
		ConflictBudget:  conflictBudget,
		Deadline:        deadline,
		ShareClauses:    opts.Portfolio.ShareClauses,
		HeadStart:       opts.Portfolio.HeadStart,
	})
	res.SATCalls += out.Rounds
	res.Conflicts += out.WinnerConflicts + out.LoserConflicts
	res.Portfolio = &PortfolioStats{
		Wins:           out.Wins,
		BlockWinners:   []string{out.Winner},
		LoserConflicts: out.LoserConflicts,
		SharedExported: out.SharedExported,
		SharedImported: out.SharedImported,
	}
	res.TimedOut = out.TimedOut
	res.Canceled = out.Canceled

	switch {
	case out.BestBound >= 0 && out.Partition != nil:
		// The race never escalated past the solo head start: the whole run
		// was the deterministic canonical narrowing loop, and its own model
		// at the final bound needs no re-derivation.
		res.Partition = out.Partition
	case out.BestBound >= 0:
		// Materialize the model the race proved to exist. The sequential
		// loop reads its models for free at each Sat verdict, so this solve
		// is result materialization, not search — it gets a fresh copy of
		// the full block budget instead of the race's leftovers (a proven-
		// satisfiable bound that cannot be re-solved within a whole block
		// budget is pathological, and the heuristic fallback below stays
		// sound). Worst case the block spends 2× its budget; it never
		// silently loses a result it paid for. Deadline and cancellation
		// still apply — exactly the situations where the sequential solver
		// would also return without this depth.
		enc := newEncoder(m, out.BestBound, opts)
		s := enc.Solver()
		s.SetInterrupt(func() bool { return ctx.Err() != nil })
		defer s.SetInterrupt(nil)
		_, rsp := obs.StartSpan(ctx, "rederive")
		rsp.SetAttrInt("bound", int64(out.BestBound))
		status, spent := solveWithBudgets(ctx, enc, conflictBudget, deadline)
		rsp.SetAttr("status", status.String())
		rsp.SetAttrInt("conflicts", spent)
		rsp.End()
		res.SATCalls++
		res.Conflicts += spent
		switch status {
		case sat.Sat:
			p, err := enc.ReadPartition()
			if err != nil {
				return nil, fmt.Errorf("core: model readout failed: %w", err)
			}
			res.Partition = p
		case sat.Unsat:
			return nil, fmt.Errorf("core: internal error: race proved bound %d satisfiable but canonical re-derivation found UNSAT", out.BestBound)
		default:
			res.TimedOut = true
			res.Canceled = ctx.Err() != nil
			return res, nil // heuristic partition stands
		}
	}

	// Reaching this point with UnsatProven means the partition really has
	// the proven-optimal depth: either no bound was ever satisfiable
	// (BestBound −1, the heuristic partition at Start+1 stands) or the
	// re-derivation at BestBound succeeded (its failure paths return above).
	switch {
	case out.UnsatProven:
		res.Optimal = true
		res.Certificate = CertUnsat
	case !res.TimedOut && res.Partition.Depth() <= lb:
		res.markOptimalByBound()
	}
	return res, nil
}

// resolveStrategies builds the racing set for one block: the canonical
// strategy mirrors the single-strategy options (so racer 0 is exactly the
// solver a non-racing Solve would run), and the companions come either from
// the explicitly named list or from the default diverse pool seeded by the
// block's fingerprint.
func resolveStrategies(m *bitmat.Matrix, opts Options) ([]portfolio.Strategy, error) {
	base := portfolio.Strategy{
		Name:               "canonical",
		AMO:                opts.AMO,
		Destructive:        opts.DisableIncremental,
		NoSymmetryBreaking: opts.DisableSymmetryBreaking,
		Solver:             sat.DefaultConfig(),
	}
	if opts.Encoding == EncodingLog {
		base.Encoding = portfolio.EncodingLog
	}
	base.Solver.PhaseSaving = !opts.DisablePhaseSaving
	base.Solver.Inprocess = !opts.DisableInprocessing
	if opts.LBDCap > 0 {
		base.Solver.LBDCap = opts.LBDCap
	}
	if names := opts.Portfolio.Strategies; len(names) > 0 {
		return portfolio.Resolve(base, names)
	}
	return portfolio.DefaultStrategies(base, opts.Portfolio.Size, portfolio.Seed(m)), nil
}

// newEncoder builds the configured encoder at bound b. The default is the
// incremental (selector-assumption) variant, encoded once at the heuristic
// upper bound and narrowed via assumptions; the solver knobs from opts are
// applied to the fresh solver.
func newEncoder(m *bitmat.Matrix, b int, opts Options) encode.Encoder {
	var enc encode.Encoder
	switch {
	case opts.Encoding == EncodingLog && opts.DisableIncremental:
		enc = encode.NewLog(m, b)
	case opts.Encoding == EncodingLog:
		enc = encode.NewLogIncremental(m, b)
	default:
		enc = encode.NewOneHotConfig(m, b, encode.OneHotConfig{
			AMO:                 opts.AMO,
			Incremental:         !opts.DisableIncremental,
			DisableSlotOrdering: opts.DisableSymmetryBreaking,
		})
	}
	s := enc.Solver()
	s.PhaseSaving = !opts.DisablePhaseSaving
	s.Inprocess = !opts.DisableInprocessing
	if opts.LBDCap > 0 {
		s.LBDCap = opts.LBDCap
	}
	return enc
}

// installProgress wires the solver's sampled search telemetry into the
// context's trace: an initial sample marks the SAT stage start (so every
// traced solve that reaches SAT has at least one sample even when it decides
// in fewer conflicts than the sampling interval), then one sample per
// ProgressEvery conflicts. No-op on untraced contexts. The hook runs on the
// solver's search goroutine, which is the caller's — bound() must be safe to
// call from there.
func installProgress(ctx context.Context, s *sat.Solver, blockIdx, lb int, bound func() int) {
	every := obs.ProgressEvery(ctx)
	if every <= 0 {
		return
	}
	obs.AddProgress(ctx, obs.ProgressSample{Time: time.Now(), Block: blockIdx, Bound: bound(), LB: lb})
	s.SetProgress(every, func(p sat.Progress) {
		obs.AddProgress(ctx, obs.ProgressSample{
			Time:         time.Now(),
			Block:        blockIdx,
			Bound:        bound(),
			LB:           lb,
			Conflicts:    p.Conflicts,
			Restarts:     p.Restarts,
			Propagations: p.Propagations,
			Learnts:      p.Learnts,
		})
	})
}

// solveWithBudgets runs the encoder's solver in conflict chunks so that the
// global conflict budget, the wall-clock deadline and context cancellation
// are all honoured. It returns the final status and the number of conflicts
// spent.
func solveWithBudgets(ctx context.Context, enc encode.Encoder, remaining int64, deadline time.Time) (sat.Status, int64) {
	s := enc.Solver()
	const chunk = int64(20_000)
	var spent int64
	for {
		budget := chunk
		if remaining > 0 && remaining-spent < budget {
			budget = remaining - spent
			if budget <= 0 {
				return sat.Unknown, spent
			}
		}
		if deadlineExpired(deadline) {
			return sat.Unknown, spent
		}
		s.SetConflictBudget(budget)
		before := s.Conflicts
		status := enc.Solve()
		spent += s.Conflicts - before
		if status != sat.Unknown {
			s.SetConflictBudget(-1)
			return status, spent
		}
		if ctx.Err() != nil {
			return sat.Unknown, spent
		}
		if remaining > 0 && spent >= remaining {
			return sat.Unknown, spent
		}
	}
}

// deadlineExpired reports whether a nonzero deadline has passed.
func deadlineExpired(deadline time.Time) bool {
	return !deadline.IsZero() && !time.Now().Before(deadline)
}

// BinaryRank computes r_B(m) exactly (no budgets). For matrices beyond the
// SAT stage's reach this may take exponential time; prefer Solve with
// budgets for untrusted inputs.
func BinaryRank(m *bitmat.Matrix) (int, error) {
	opts := DefaultOptions()
	opts.ConflictBudget = 0
	opts.TimeBudget = 0
	opts.MaxSATEntries = 0
	res, err := Solve(m, opts)
	if err != nil {
		return 0, err
	}
	if !res.Optimal {
		return res.Depth, fmt.Errorf("core: optimality not established for %d×%d matrix", m.Rows(), m.Cols())
	}
	return res.Depth, nil
}
