// Package core implements SAP (SMT-and-packing, Algorithm 1 of the paper):
// the combined EBMF solver. The row-packing heuristic supplies a valid
// partition quickly; a SAT-backed exact solver (the paper uses z3; this
// reproduction compiles the same constraints to CNF) then repeatedly narrows
// the rectangle budget until it proves unsatisfiability or reaches the
// rational-rank lower bound, at which point the best partition found is
// optimal.
//
// The solver always returns the best valid partition found so far, even when
// interrupted by a conflict or time budget — mirroring the paper's "when we
// terminate at any time, we can return P".
package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/bitmat"
	"repro/internal/encode"
	"repro/internal/fooling"
	"repro/internal/rect"
	"repro/internal/rowpack"
	"repro/internal/sat"
)

// Encoding selects the CNF compilation of the depth-decision problem.
type Encoding int

const (
	// EncodingOneHot is the direct slot encoding (default, fastest).
	EncodingOneHot Encoding = iota
	// EncodingLog is the bit-vector-flavoured encoding (ablation).
	EncodingLog
)

// Certificate says why a result is known optimal.
type Certificate int

const (
	// CertNone: no optimality proof (heuristic result only).
	CertNone Certificate = iota
	// CertRank: depth equals the rational-rank lower bound (Eq. 3).
	CertRank
	// CertFooling: depth equals a fooling-set lower bound.
	CertFooling
	// CertUnsat: the SAT solver proved depth-1 infeasible.
	CertUnsat
)

// String names the certificate.
func (c Certificate) String() string {
	switch c {
	case CertRank:
		return "rank"
	case CertFooling:
		return "fooling-set"
	case CertUnsat:
		return "unsat-proof"
	default:
		return "none"
	}
}

// Options configures Solve.
type Options struct {
	// Packing configures the row-packing heuristic stage.
	Packing rowpack.Options
	// Encoding selects the CNF compilation.
	Encoding Encoding
	// AMO selects the at-most-one encoding for the one-hot compilation.
	AMO encode.AMO
	// SkipSAT stops after the heuristic stage (still reports lower bounds
	// and certificates when the heuristic happens to match them).
	SkipSAT bool
	// ConflictBudget bounds total SAT conflicts across the narrowing loop;
	// ≤ 0 means unlimited. When exhausted the best partition so far is
	// returned with TimedOut set.
	ConflictBudget int64
	// TimeBudget bounds wall-clock time of the SAT stage; 0 means unlimited.
	TimeBudget time.Duration
	// FoolingBudget is the node budget for the exact fooling-set lower
	// bound; 0 skips the fooling bound entirely (the paper's loop uses only
	// the rank bound; fooling strengthens certificates on small instances).
	FoolingBudget int64
	// DisableCompression solves on the raw matrix instead of the
	// deduplicated reduction.
	DisableCompression bool
	// MaxSATEntries skips the SAT stage for matrices with more 1-entries
	// (mirrors the paper: 100×100 instances are "too large for SMT").
	// 0 means no limit.
	MaxSATEntries int
	// DisableIncremental narrows the depth bound by adding unit clauses
	// (re-constraining the formula) instead of the default selector
	// assumptions. Kept as an ablation: incremental narrowing reuses learnt
	// clauses and heuristic state across every depth bound of the SAP loop.
	DisableIncremental bool
	// DisablePhaseSaving turns off the solver's saved-polarity decision
	// heuristic (ablation).
	DisablePhaseSaving bool
	// LBDCap overrides the solver's glue-clause threshold: learnt clauses
	// with literal-blocks-distance at or below the cap are never evicted by
	// database reduction. 0 keeps the solver default (2).
	LBDCap int
}

// DefaultOptions mirror the paper's configuration at moderate effort:
// 100 packing trials and an unbounded exact stage for small matrices.
func DefaultOptions() Options {
	return Options{
		Packing:       rowpack.DefaultOptions(),
		FoolingBudget: 200_000,
		MaxSATEntries: 400,
	}
}

// Result is the outcome of a Solve call.
type Result struct {
	// Partition is the best EBMF found; always valid for the input matrix.
	Partition *rect.Partition
	// Depth is len(Partition.Rects) = the addressing depth.
	Depth int
	// RankLB is the rational-rank lower bound (Eq. 3).
	RankLB int
	// FoolingLB is the best fooling-set lower bound computed (0 if skipped).
	FoolingLB int
	// Optimal reports whether Depth is proved minimal, i.e. Depth = r_B(M).
	Optimal bool
	// Certificate says how optimality was established.
	Certificate Certificate
	// TimedOut reports that a conflict or time budget interrupted the
	// narrowing loop (the result may still be optimal-by-bound).
	TimedOut bool
	// HeuristicDepth is the depth after the packing stage, before SAT.
	HeuristicDepth int
	// SATCalls counts decision-problem invocations.
	SATCalls int
	// Conflicts is the total SAT conflicts spent.
	Conflicts int64
	// PackTime and SATTime split the runtime by stage (Figure 4's split).
	PackTime, SATTime time.Duration
}

// ErrNilMatrix is returned when Solve receives a nil matrix.
var ErrNilMatrix = errors.New("core: nil matrix")

// Solve runs SAP on m and returns the best partition with provenance.
func Solve(m *bitmat.Matrix, opts Options) (*Result, error) {
	if m == nil {
		return nil, ErrNilMatrix
	}
	res := &Result{}

	// Work on the compressed matrix; lift the partition at the end.
	work := m
	var comp *bitmat.Compression
	if !opts.DisableCompression {
		comp = bitmat.Compress(m)
		work = comp.Reduced
	}

	finish := func(p *rect.Partition) (*Result, error) {
		if comp != nil {
			p = rect.Lift(comp, m, p)
		}
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("core: internal error: produced invalid partition: %w", err)
		}
		res.Partition = p
		res.Depth = p.Depth()
		return res, nil
	}

	if work.Ones() == 0 {
		res.Optimal = true
		res.Certificate = CertRank
		return finish(rect.NewPartition(work))
	}

	// Stage 1: heuristic upper bound (Algorithm 1, line 1).
	t0 := time.Now()
	best := rowpack.Pack(work, opts.Packing)
	res.PackTime = time.Since(t0)
	res.HeuristicDepth = best.Depth()

	// Lower bounds.
	res.RankLB = work.Rank()
	lb := res.RankLB
	if opts.FoolingBudget > 0 {
		fs, _ := fooling.Exact(work, opts.FoolingBudget)
		res.FoolingLB = len(fs)
		if res.FoolingLB > lb {
			lb = res.FoolingLB
		}
	}

	if best.Depth() <= lb {
		res.Optimal = true
		res.Certificate = CertRank
		if res.FoolingLB > res.RankLB {
			res.Certificate = CertFooling
		}
		return finish(best)
	}
	if opts.SkipSAT || (opts.MaxSATEntries > 0 && work.Ones() > opts.MaxSATEntries) {
		return finish(best)
	}

	// Stage 2: SAT narrowing loop (Algorithm 1, lines 2–10).
	tSAT := time.Now()
	defer func() { res.SATTime = time.Since(tSAT) }()
	deadline := time.Time{}
	if opts.TimeBudget > 0 {
		deadline = tSAT.Add(opts.TimeBudget)
	}

	enc := newEncoder(work, best.Depth()-1, opts)
	remaining := opts.ConflictBudget // <=0: unlimited
	for enc.Bound() >= lb {
		status, spent := solveWithBudgets(enc, remaining, deadline)
		res.SATCalls++
		res.Conflicts += spent
		if remaining > 0 {
			remaining -= spent
			if remaining <= 0 && status == sat.Unknown {
				res.TimedOut = true
				break
			}
		}
		switch status {
		case sat.Sat:
			p, err := enc.ReadPartition()
			if err != nil {
				return nil, fmt.Errorf("core: model readout failed: %w", err)
			}
			best = p
			enc.Narrow()
		case sat.Unsat:
			res.Optimal = true
			res.Certificate = CertUnsat
			return finish(best)
		default:
			res.TimedOut = true
			return finish(best)
		}
	}
	if !res.TimedOut && best.Depth() <= lb {
		res.Optimal = true
		res.Certificate = CertRank
		if res.FoolingLB > res.RankLB {
			res.Certificate = CertFooling
		}
	}
	return finish(best)
}

// newEncoder builds the configured encoder at bound b. The default is the
// incremental (selector-assumption) variant, encoded once at the heuristic
// upper bound and narrowed via assumptions; the solver knobs from opts are
// applied to the fresh solver.
func newEncoder(m *bitmat.Matrix, b int, opts Options) encode.Encoder {
	var enc encode.Encoder
	switch {
	case opts.Encoding == EncodingLog && opts.DisableIncremental:
		enc = encode.NewLog(m, b)
	case opts.Encoding == EncodingLog:
		enc = encode.NewLogIncremental(m, b)
	case opts.DisableIncremental:
		enc = encode.NewOneHot(m, b, opts.AMO)
	default:
		enc = encode.NewOneHotIncremental(m, b, opts.AMO)
	}
	s := enc.Solver()
	s.PhaseSaving = !opts.DisablePhaseSaving
	if opts.LBDCap > 0 {
		s.LBDCap = opts.LBDCap
	}
	return enc
}

// solveWithBudgets runs the encoder's solver in conflict chunks so that both
// the global conflict budget and the wall-clock deadline are honoured.
// It returns the final status and the number of conflicts spent.
func solveWithBudgets(enc encode.Encoder, remaining int64, deadline time.Time) (sat.Status, int64) {
	s := enc.Solver()
	const chunk = int64(20_000)
	var spent int64
	for {
		budget := chunk
		if remaining > 0 && remaining-spent < budget {
			budget = remaining - spent
			if budget <= 0 {
				return sat.Unknown, spent
			}
		}
		s.SetConflictBudget(budget)
		before := s.Conflicts
		status := enc.Solve()
		spent += s.Conflicts - before
		if status != sat.Unknown {
			s.SetConflictBudget(-1)
			return status, spent
		}
		if remaining > 0 && spent >= remaining {
			return sat.Unknown, spent
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return sat.Unknown, spent
		}
	}
}

// BinaryRank computes r_B(m) exactly (no budgets). For matrices beyond the
// SAT stage's reach this may take exponential time; prefer Solve with
// budgets for untrusted inputs.
func BinaryRank(m *bitmat.Matrix) (int, error) {
	opts := DefaultOptions()
	opts.ConflictBudget = 0
	opts.TimeBudget = 0
	opts.MaxSATEntries = 0
	res, err := Solve(m, opts)
	if err != nil {
		return 0, err
	}
	if !res.Optimal {
		return res.Depth, fmt.Errorf("core: optimality not established for %d×%d matrix", m.Rows(), m.Cols())
	}
	return res.Depth, nil
}
