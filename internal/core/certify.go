package core

import (
	"bytes"
	"fmt"

	"repro/internal/bitmat"
	"repro/internal/encode"
	"repro/internal/sat"
)

// CertifyDepth independently certifies that r_B(m) > depth-1, i.e. that a
// partition of the given depth is optimal, by rebuilding the decision
// formula at depth-1 from scratch with DRAT proof logging, solving it, and
// replaying the emitted proof through the reverse-unit-propagation checker.
// Nothing from the original solving run is trusted: the formula is rebuilt
// and the proof is validated clause by clause.
//
// It returns nil when the certificate verifies. A depth at or below the
// rank lower bound is certified arithmetically (rank_ℚ ≤ r_B), with no SAT
// involvement.
func CertifyDepth(m *bitmat.Matrix, depth int) error {
	if m == nil {
		return ErrNilMatrix
	}
	if m.Ones() == 0 {
		if depth != 0 {
			return fmt.Errorf("core: zero matrix has depth 0, not %d", depth)
		}
		return nil
	}
	if depth <= 0 {
		return fmt.Errorf("core: nonzero matrix needs depth ≥ 1")
	}
	if m.Rank() >= depth {
		return nil // Eq. 3: rank lower bound already certifies optimality
	}
	enc := encode.NewOneHot(m, depth-1, encode.AMOPairwise)
	s := enc.Solver()

	var formula bytes.Buffer
	if err := s.WriteDIMACS(&formula); err != nil {
		return fmt.Errorf("core: certify: %w", err)
	}
	var proof bytes.Buffer
	s.AttachProof(&proof)
	status := enc.Solve()
	if err := s.FlushProof(); err != nil {
		return fmt.Errorf("core: certify: %w", err)
	}
	switch status {
	case sat.Unsat:
		if err := sat.CheckDRAT(&formula, &proof); err != nil {
			return fmt.Errorf("core: certify: UNSAT proof rejected: %w", err)
		}
		return nil
	case sat.Sat:
		return fmt.Errorf("core: depth %d is not optimal: a %d-partition exists", depth, depth-1)
	default:
		return fmt.Errorf("core: certify: solver did not decide")
	}
}
