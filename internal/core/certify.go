package core

import (
	"bytes"
	"fmt"

	"repro/internal/bitmat"
	"repro/internal/encode"
	"repro/internal/sat"
)

// CertifyDepth independently certifies that r_B(m) > depth-1, i.e. that a
// partition of the given depth is optimal. The matrix is decomposed into its
// bipartite connected components (binary rank is additive over components),
// each block's minimum depth is re-established, and each block contributes a
// certificate: the arithmetic rank bound when it suffices, otherwise a
// from-scratch rebuild of the block's depth-1 decision formula with DRAT
// proof logging, whose UNSAT proof is replayed through the
// reverse-unit-propagation checker. Nothing from the original solving run is
// trusted: formulas are rebuilt and proofs validated clause by clause, per
// block — which also keeps the DRAT traces small.
//
// It returns nil when the certified per-block lower bounds sum to at least
// depth.
func CertifyDepth(m *bitmat.Matrix, depth int) error {
	if m == nil {
		return ErrNilMatrix
	}
	if m.Ones() == 0 {
		if depth != 0 {
			return fmt.Errorf("core: zero matrix has depth 0, not %d", depth)
		}
		return nil
	}
	if depth <= 0 {
		return fmt.Errorf("core: nonzero matrix needs depth ≥ 1")
	}
	if m.Rank() >= depth {
		return nil // Eq. 3: rank lower bound already certifies optimality
	}
	blocks := bitmat.Decompose(m).Blocks
	if len(blocks) == 1 {
		return certifyBlockDepth(m, depth)
	}
	// Blockwise: r_B(M) = Σ r_B(block). Establish each block's exact depth
	// (unbudgeted solve), check the sum matches, then certify each block's
	// lower bound independently.
	total := 0
	depths := make([]int, len(blocks))
	for i, b := range blocks {
		d, err := BinaryRank(b.M)
		if err != nil {
			return fmt.Errorf("core: certify: block %d undecided: %w", i, err)
		}
		depths[i] = d
		total += d
	}
	if total < depth {
		return fmt.Errorf("core: depth %d is not optimal: a %d-partition exists", depth, total)
	}
	for i, b := range blocks {
		if err := certifyBlockDepth(b.M, depths[i]); err != nil {
			return fmt.Errorf("core: certify: block %d: %w", i, err)
		}
	}
	return nil
}

// certifyBlockDepth certifies r_B(m) ≥ depth for one connected block via the
// rank bound or a checked DRAT proof of the depth-1 formula.
func certifyBlockDepth(m *bitmat.Matrix, depth int) error {
	if depth <= 0 || m.Rank() >= depth {
		return nil
	}
	enc := encode.NewOneHot(m, depth-1, encode.AMONative)
	s := enc.Solver()

	var formula bytes.Buffer
	if err := s.WriteDIMACS(&formula); err != nil {
		return fmt.Errorf("core: certify: %w", err)
	}
	var proof bytes.Buffer
	s.AttachProof(&proof)
	status := enc.Solve()
	if err := s.FlushProof(); err != nil {
		return fmt.Errorf("core: certify: %w", err)
	}
	switch status {
	case sat.Unsat:
		if err := sat.CheckDRAT(&formula, &proof); err != nil {
			return fmt.Errorf("core: certify: UNSAT proof rejected: %w", err)
		}
		return nil
	case sat.Sat:
		return fmt.Errorf("core: depth %d is not optimal: a %d-partition exists", depth, depth-1)
	default:
		return fmt.Errorf("core: certify: solver did not decide")
	}
}
