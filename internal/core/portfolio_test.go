package core

import (
	"testing"
	"time"

	"repro/internal/benchgen"
	"repro/internal/bitmat"
	"repro/internal/portfolio"
)

// portfolioTestOptions is the base configuration the portfolio tests race
// under: exact solves with a generous budget, fooling off for speed.
func portfolioTestOptions() Options {
	opts := DefaultOptions()
	opts.FoolingBudget = 0
	opts.ConflictBudget = 5_000_000
	return opts
}

// TestPortfolioMatchesSequential: on the Table I gap suites the racing
// solver must agree with the sequential solver on depth, optimality and
// certificate — with and without clause sharing.
func TestPortfolioMatchesSequential(t *testing.T) {
	for pairs := 2; pairs <= 4; pairs++ {
		for _, ins := range benchgen.GapSuite(14+int64(pairs), 10, 10, []int{pairs}, 2) {
			seq, err := Solve(ins.M, portfolioTestOptions())
			if err != nil {
				t.Fatal(err)
			}
			for _, share := range []bool{false, true} {
				opts := portfolioTestOptions()
				opts.Portfolio.Size = 3
				opts.Portfolio.ShareClauses = share
				res, err := Solve(ins.M, opts)
				if err != nil {
					t.Fatal(err)
				}
				if res.Depth != seq.Depth || res.Optimal != seq.Optimal || res.Certificate != seq.Certificate {
					t.Fatalf("share=%v: portfolio (depth=%d opt=%v cert=%v) != sequential (depth=%d opt=%v cert=%v)\n%s",
						share, res.Depth, res.Optimal, res.Certificate,
						seq.Depth, seq.Optimal, seq.Certificate, ins.M)
				}
				if err := res.Partition.Validate(); err != nil {
					t.Fatalf("share=%v: invalid portfolio partition: %v", share, err)
				}
				if res.Portfolio == nil {
					t.Fatalf("share=%v: racing ran but Result.Portfolio is nil", share)
				}
			}
		}
	}
}

// TestPortfolioDeterministicAcrossWinners is the determinism contract's
// direct test: the same matrix solved with each strategy forced to win in
// turn (every other racer starved to a 1-conflict lifetime budget) must
// produce the identical depth, partition and certificate.
func TestPortfolioDeterministicAcrossWinners(t *testing.T) {
	strategies := []string{"canonical", "luby", "destructive"}
	for _, ins := range benchgen.GapSuite(17, 10, 10, []int{3}, 2) {
		type outcome struct {
			depth     int
			partition string
			cert      Certificate
			optimal   bool
		}
		var outcomes []outcome
		for forced := range strategies {
			budgets := make([]int64, len(strategies))
			for i := range budgets {
				budgets[i] = 1
			}
			budgets[forced] = 0 // uncapped
			opts := portfolioTestOptions()
			opts.Portfolio.Strategies = strategies
			opts.Portfolio.StrategyBudgets = budgets
			res, err := Solve(ins.M, opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Partition.Validate(); err != nil {
				t.Fatalf("forced=%s: invalid partition: %v", strategies[forced], err)
			}
			outcomes = append(outcomes, outcome{
				depth:     res.Depth,
				partition: res.Partition.Canonicalize().String(),
				cert:      res.Certificate,
				optimal:   res.Optimal,
			})
		}
		for i := 1; i < len(outcomes); i++ {
			if outcomes[i] != outcomes[0] {
				t.Fatalf("forced winner %s changed the result:\n%+v\nvs %s:\n%+v\non\n%s",
					strategies[i], outcomes[i], strategies[0], outcomes[0], ins.M)
			}
		}
	}
}

// TestPortfolioRepeatedRunsIdentical: racing is timing-nondeterministic
// internally, so re-running the same solve must still give the same
// partition bits (the canonical re-derivation contract).
func TestPortfolioRepeatedRunsIdentical(t *testing.T) {
	ins := benchgen.GapSuite(21, 10, 10, []int{4}, 1)[0]
	opts := portfolioTestOptions()
	opts.Portfolio.Size = 4
	opts.Portfolio.ShareClauses = true
	var first string
	for run := 0; run < 3; run++ {
		res, err := Solve(ins.M, opts)
		if err != nil {
			t.Fatal(err)
		}
		got := res.Partition.Canonicalize().String()
		if run == 0 {
			first = got
			continue
		}
		if got != first {
			t.Fatalf("run %d produced a different partition:\n%s\nvs\n%s", run, got, first)
		}
	}
}

// TestPortfolioBlockStats: a block-diagonal matrix decomposes, and the
// recombiner must line BlockWinners up with the block order and merge the
// win counts.
func TestPortfolioBlockStats(t *testing.T) {
	// Two copies of Fig. 1b (rank 4 < depth 5, so each block really races)
	// on a block diagonal.
	a := bitmat.MustParse("101100\n010011\n101010\n010101\n111000\n000111")
	n := a.Rows()
	m := bitmat.New(2*n, 2*n)
	a.ForEachOne(func(i, j int) {
		m.Set(i, j, true)
		m.Set(i+n, j+n, true)
	})
	opts := portfolioTestOptions()
	opts.Portfolio.Size = 3
	res, err := Solve(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks != 2 {
		t.Fatalf("expected 2 blocks, got %d", res.Blocks)
	}
	if res.Portfolio == nil || len(res.Portfolio.BlockWinners) != res.Blocks {
		t.Fatalf("BlockWinners misaligned: %+v", res.Portfolio)
	}
	total := 0
	for _, n := range res.Portfolio.Wins {
		total += n
	}
	if total == 0 {
		t.Fatalf("no race wins recorded: %+v", res.Portfolio)
	}
}

// TestPortfolioSingleNamedStrategy: naming one strategy must run it through
// the racing layer (the "-strategies implies -portfolio" contract), not
// silently fall back to the canonical sequential solver.
func TestPortfolioSingleNamedStrategy(t *testing.T) {
	m := bitmat.MustParse("101100\n010011\n101010\n010101\n111000\n000111")
	opts := portfolioTestOptions()
	opts.Portfolio.Strategies = []string{"luby"}
	if !opts.Portfolio.Enabled() {
		t.Fatal("a single named strategy must enable the racing layer")
	}
	res, err := Solve(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Depth != 5 || !res.Optimal {
		t.Fatalf("luby-only solve wrong: depth=%d optimal=%v", res.Depth, res.Optimal)
	}
	if res.Portfolio == nil || res.Portfolio.Wins["luby"] == 0 {
		t.Fatalf("luby strategy did not run: %+v", res.Portfolio)
	}
}

// TestPortfolioUnknownStrategy: a bad strategy name must error, not panic.
func TestPortfolioUnknownStrategy(t *testing.T) {
	opts := portfolioTestOptions()
	opts.Portfolio.Strategies = []string{"canonical", "bogus"}
	m := bitmat.MustParse("101100\n010011\n101010\n010101\n111000\n000111")
	if _, err := Solve(m, opts); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

// TestPortfolioTimeBudget: an expired time budget still returns a valid
// heuristic partition with TimedOut set.
func TestPortfolioTimeBudget(t *testing.T) {
	// Fig. 1b: rank 4 < depth 5, so the SAT stage must run — and hit the
	// already-expired deadline before racing.
	m := bitmat.MustParse("101100\n010011\n101010\n010101\n111000\n000111")
	opts := portfolioTestOptions()
	opts.Portfolio.Size = 3
	opts.TimeBudget = time.Nanosecond
	res, err := Solve(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Fatal("nanosecond budget did not time out")
	}
	if err := res.Partition.Validate(); err != nil {
		t.Fatalf("invalid partition after timeout: %v", err)
	}
}

// TestResolveStrategiesBaseMirrorsOptions: racer 0 must inherit the
// single-strategy knobs, so "canonical" in a race is exactly the solver a
// non-racing Solve would run.
func TestResolveStrategiesBaseMirrorsOptions(t *testing.T) {
	opts := DefaultOptions()
	opts.Encoding = EncodingLog
	opts.DisablePhaseSaving = true
	opts.LBDCap = 5
	opts.Portfolio.Size = 3
	m := bitmat.MustParse("11\n01")
	sts, err := resolveStrategies(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	base := sts[0]
	if base.Name != "canonical" || base.Encoding != portfolio.EncodingLog ||
		base.Solver.PhaseSaving || base.Solver.LBDCap != 5 {
		t.Fatalf("base strategy does not mirror options: %+v", base)
	}
}
