package core

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/bitmat"
	"repro/internal/encode"
)

func TestSolveLogEncodingFullLoop(t *testing.T) {
	// Exercise the log-encoder path through the whole SAP loop including an
	// UNSAT finish.
	m := bitmat.MustParse("11000\n00110\n01100\n10011\n11111")
	opts := fastOptions()
	opts.Encoding = EncodingLog
	opts.FoolingBudget = 0
	res, err := Solve(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal || res.Depth != 4 {
		t.Fatalf("log encoding: depth=%d optimal=%v", res.Depth, res.Optimal)
	}
}

func TestSolveChunkedBudgetLoop(t *testing.T) {
	// A conflict budget larger than one chunk but finite exercises the
	// chunked solveWithBudgets loop (chunk size is 20k).
	rng := rand.New(rand.NewSource(21))
	var m *bitmat.Matrix
	for {
		m = bitmat.Random(rng, 9, 9, 0.5)
		if m.Rank() < m.TrivialUpperBound() {
			break
		}
	}
	opts := fastOptions()
	opts.FoolingBudget = 0
	opts.ConflictBudget = 45_000 // spans 3 chunks
	res, err := Solve(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Partition.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSolveDeadlineInsideChunkLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m := bitmat.Random(rng, 10, 10, 0.5)
	opts := fastOptions()
	opts.MaxSATEntries = 0
	opts.FoolingBudget = 0
	opts.TimeBudget = time.Nanosecond // expires immediately after chunk 1
	res, err := Solve(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partition == nil {
		t.Fatal("no partition returned")
	}
}

func TestBinaryRankUndecidedError(t *testing.T) {
	// BinaryRank on a matrix the unlimited solver CAN decide gives no
	// error; the error path needs an undecidable setup, which we simulate
	// by checking the error text contract on a decided case instead and the
	// nil-matrix error.
	if _, err := BinaryRank(nil); err == nil {
		t.Fatal("nil matrix must error")
	}
	r, err := BinaryRank(bitmat.MustParse("10\n01"))
	if err != nil || r != 2 {
		t.Fatalf("r=%d err=%v", r, err)
	}
}

func TestSolveFoolingCertificateBeatsRank(t *testing.T) {
	// Figure 1b: rank 4 < fooling 5 = r_B. With the fooling bound enabled,
	// SAP certifies without SAT; with it disabled, SAT must prove UNSAT.
	m := bitmat.MustParse("101100\n010011\n101010\n010101\n111000\n000111")
	withF, err := Solve(m, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if withF.Certificate != CertFooling {
		t.Fatalf("certificate %v, want fooling", withF.Certificate)
	}
	opts := fastOptions()
	opts.FoolingBudget = 0
	noF, err := Solve(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if noF.Certificate != CertUnsat {
		t.Fatalf("certificate %v, want unsat-proof", noF.Certificate)
	}
	if withF.Depth != noF.Depth {
		t.Fatal("certificates disagree on depth")
	}
}

func TestSolveAMOSequentialPath(t *testing.T) {
	m := bitmat.MustParse("110\n011\n111")
	opts := fastOptions()
	opts.AMO = encode.AMOSequential
	opts.FoolingBudget = 0
	res, err := Solve(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal || res.Depth != 3 {
		t.Fatalf("sequential AMO: depth=%d optimal=%v", res.Depth, res.Optimal)
	}
}

func TestResultStringsContainCertificates(t *testing.T) {
	var names []string
	for _, c := range []Certificate{CertNone, CertRank, CertFooling, CertUnsat} {
		names = append(names, c.String())
	}
	joined := strings.Join(names, ",")
	if joined != "none,rank,fooling-set,unsat-proof" {
		t.Fatalf("certificate names: %s", joined)
	}
}
