package core

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/benchgen"
	"repro/internal/bitmat"
	"repro/internal/encode"
	"repro/internal/rowpack"
	"repro/internal/sat"
)

// quickOpts are unbudgeted options fast enough for differential testing.
func quickOpts() Options {
	o := DefaultOptions()
	o.Packing.Trials = 20
	o.FoolingBudget = 0
	return o
}

// diffInstances are the differential-test matrices: random, forced
// block-diagonal, and permuted-block.
func diffInstances(t *testing.T) []*bitmat.Matrix {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	var ms []*bitmat.Matrix
	for i := 0; i < 8; i++ {
		ms = append(ms, bitmat.Random(rng, 4+rng.Intn(5), 4+rng.Intn(5), 0.2+0.5*rng.Float64()))
	}
	for _, ins := range benchgen.BlockDiagSuite(5, 3, 5, 5, 2, 3, false) {
		ms = append(ms, ins.M)
	}
	for _, ins := range benchgen.BlockDiagSuite(6, 4, 4, 4, 2, 3, true) {
		ms = append(ms, ins.M)
	}
	return ms
}

// TestDecomposedMatchesWholeMatrix: the decomposed parallel pipeline and the
// monolithic whole-matrix solve must agree on depth and optimality on
// random, block-diagonal and permuted-block instances.
func TestDecomposedMatchesWholeMatrix(t *testing.T) {
	for _, m := range diffInstances(t) {
		whole := quickOpts()
		whole.DisableDecomposition = true
		wres, err := Solve(m, whole)
		if err != nil {
			t.Fatalf("whole-matrix solve: %v", err)
		}
		for _, par := range []int{1, 4} {
			dec := quickOpts()
			dec.Parallelism = par
			dres, err := Solve(m, dec)
			if err != nil {
				t.Fatalf("decomposed solve (par=%d): %v", par, err)
			}
			if dres.Depth != wres.Depth {
				t.Errorf("depth mismatch (par=%d): decomposed %d vs whole %d on\n%s",
					par, dres.Depth, wres.Depth, m)
			}
			if dres.Optimal != wres.Optimal {
				t.Errorf("optimality mismatch (par=%d): %v vs %v on\n%s",
					par, dres.Optimal, wres.Optimal, m)
			}
			if dres.RankLB != wres.RankLB {
				t.Errorf("rank LB mismatch: blockwise sum %d vs whole %d", dres.RankLB, wres.RankLB)
			}
		}
	}
}

// TestBlockCountReported: a 3-component diagonal reports Blocks=3 through
// compression; disabling decomposition reports 1.
func TestBlockCountReported(t *testing.T) {
	m := benchgen.BlockDiagonal(
		bitmat.MustParse("11\n01"),
		bitmat.MustParse("111\n100"),
		bitmat.Identity(2),
	)
	res, err := Solve(m, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Compression may merge duplicate rows/columns but never connects
	// components; identity(2) compresses to one 1×1 block, so ≥ 3 remain.
	if res.Blocks < 3 {
		t.Errorf("want ≥3 blocks, got %d", res.Blocks)
	}
	mono := quickOpts()
	mono.DisableDecomposition = true
	res, err = Solve(m, mono)
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks != 1 {
		t.Errorf("monolithic solve must report 1 block, got %d", res.Blocks)
	}
}

// TestSymmetryBreakingAgreesAtEveryBound: with and without the slot-ordering
// clauses, the one-hot formula must decide SAT/UNSAT identically at every
// bound from the heuristic depth down to 1 — and the SAP results must agree
// on depth.
func TestSymmetryBreakingAgreesAtEveryBound(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var ms []*bitmat.Matrix
	for i := 0; i < 6; i++ {
		ms = append(ms, bitmat.Random(rng, 5, 5, 0.3+0.4*rng.Float64()))
	}
	ms = append(ms, bitmat.MustParse("101100\n010011\n101010\n010101\n111000\n000111"))
	for _, m := range ms {
		if m.Ones() == 0 {
			continue
		}
		ub := rowpack.Pack(m, rowpack.Options{Trials: 10, Seed: 1}).Depth()
		for b := ub; b >= 1; b-- {
			with := encode.NewOneHotConfig(m, b, encode.OneHotConfig{AMO: encode.AMOPairwise})
			without := encode.NewOneHotConfig(m, b, encode.OneHotConfig{AMO: encode.AMOPairwise, DisableSlotOrdering: true})
			sw, so := with.Solve(), without.Solve()
			if sw != so {
				t.Fatalf("bound %d: symmetry breaking changes status %v vs %v on\n%s", b, sw, so, m)
			}
			if sw == sat.Sat {
				if _, err := with.ReadPartition(); err != nil {
					t.Fatalf("bound %d: model with symmetry breaking invalid: %v", b, err)
				}
			}
		}
		on, off := quickOpts(), quickOpts()
		off.DisableSymmetryBreaking = true
		ron, err := Solve(m, on)
		if err != nil {
			t.Fatal(err)
		}
		roff, err := Solve(m, off)
		if err != nil {
			t.Fatal(err)
		}
		if ron.Depth != roff.Depth || ron.Optimal != roff.Optimal {
			t.Fatalf("SAP disagrees under symmetry ablation: depth %d/%d optimal %v/%v",
				ron.Depth, roff.Depth, ron.Optimal, roff.Optimal)
		}
	}
}

// TestParallelDeterminism: the same instance solved at different parallelism
// levels returns identical depths and certificates.
func TestParallelDeterminism(t *testing.T) {
	for _, ins := range benchgen.BlockDiagSuite(17, 4, 5, 5, 2, 2, true) {
		var ref *Result
		for _, par := range []int{1, 2, 8} {
			o := quickOpts()
			o.Parallelism = par
			res, err := Solve(ins.M, o)
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = res
				continue
			}
			if res.Depth != ref.Depth || res.Optimal != ref.Optimal || res.Certificate != ref.Certificate {
				t.Fatalf("parallelism %d changes result: depth %d/%d optimal %v/%v cert %v/%v",
					par, res.Depth, ref.Depth, res.Optimal, ref.Optimal, res.Certificate, ref.Certificate)
			}
		}
	}
}

// TestSolveContextPreCanceled: an already-canceled context still yields a
// valid heuristic partition, flagged Canceled, without touching the SAT
// stage.
func TestSolveContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := benchgen.BlockDiagSuite(23, 4, 5, 5, 2, 1, true)[0].M
	res, err := SolveContext(ctx, m, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Partition.Validate(); err != nil {
		t.Fatalf("canceled solve returned invalid partition: %v", err)
	}
	if res.SATCalls != 0 {
		t.Errorf("pre-canceled context must skip the SAT stage, made %d calls", res.SATCalls)
	}
	// Optimal-by-bound blocks never reach the SAT stage; only if every
	// block closed on bounds alone would Canceled stay false.
	if !res.Canceled && !res.Optimal {
		t.Errorf("non-optimal canceled solve must report Canceled")
	}
}

// TestSolveContextCancelMidSolve: cancelling during the SAT stage returns
// promptly with a valid partition instead of running to the next depth
// bound.
func TestSolveContextCancelMidSolve(t *testing.T) {
	// A hard UNSAT tail: gap components with unlimited conflict budget.
	m := benchgen.BlockDiagSuite(31, 4, 10, 10, 4, 1, true)[0].M
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var res *Result
	var err error
	go func() {
		defer close(done)
		o := quickOpts()
		o.Parallelism = 2
		res, err = SolveContext(ctx, m, o)
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("canceled solve did not return")
	}
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Partition.Validate(); err != nil {
		t.Fatalf("invalid partition after cancellation: %v", err)
	}
	if res.Depth < res.RankLB {
		t.Fatalf("depth %d below rank bound %d", res.Depth, res.RankLB)
	}
}

// TestCertifyDepthBlockwise: blockwise certification accepts the true depth
// of a multi-component matrix and rejects one above it.
func TestCertifyDepthBlockwise(t *testing.T) {
	fig1b := bitmat.MustParse("101100\n010011\n101010\n010101\n111000\n000111")
	m := benchgen.BlockDiagonal(fig1b, bitmat.MustParse("11\n01"))
	res, err := Solve(m, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal {
		t.Fatalf("test instance must solve optimally")
	}
	if res.Depth != 7 { // fig1b has r_B 5; the 2×2 triangle has r_B 2
		t.Fatalf("unexpected depth %d", res.Depth)
	}
	if err := CertifyDepth(m, res.Depth); err != nil {
		t.Fatalf("certify true depth: %v", err)
	}
	if err := CertifyDepth(m, res.Depth+1); err == nil {
		t.Fatal("certify must reject a depth above the optimum")
	}
}

// TestSymmetryBreakingReducesConflicts encodes the acceptance criterion for
// the slot-ordering clauses: on the Table I gap suites they must cut total
// conflicts (the probe measured ~10×) while leaving every depth unchanged.
func TestSymmetryBreakingReducesConflicts(t *testing.T) {
	var conOn, conOff int64
	for pairs := 2; pairs <= 5; pairs++ {
		for _, ins := range benchgen.GapSuite(14+int64(pairs), 10, 10, []int{pairs}, 5) {
			on := DefaultOptions()
			on.FoolingBudget = 0
			on.Packing.Trials = 100
			on.ConflictBudget = 2_000_000
			off := on
			off.DisableSymmetryBreaking = true
			ron, err := Solve(ins.M, on)
			if err != nil {
				t.Fatal(err)
			}
			roff, err := Solve(ins.M, off)
			if err != nil {
				t.Fatal(err)
			}
			if ron.Depth != roff.Depth || ron.Optimal != roff.Optimal {
				t.Fatalf("symmetry breaking changes the answer on %s: depth %d/%d optimal %v/%v",
					ins.Name, ron.Depth, roff.Depth, ron.Optimal, roff.Optimal)
			}
			conOn += ron.Conflicts
			conOff += roff.Conflicts
		}
	}
	if conOn >= conOff {
		t.Errorf("slot ordering did not reduce conflicts: %d with vs %d without", conOn, conOff)
	}
	t.Logf("gap-suite conflicts: %d with slot ordering, %d without", conOn, conOff)
}

// TestApportionConflicts: shares are proportional, at least 1, and sum to
// the total.
func TestApportionConflicts(t *testing.T) {
	blocks := []bitmat.Block{
		{M: bitmat.AllOnes(1, 1)},
		{M: bitmat.AllOnes(3, 3)},
		{M: bitmat.AllOnes(6, 6)},
	}
	out := apportionConflicts(1000, blocks)
	var sum int64
	for i, v := range out {
		if v < 1 {
			t.Fatalf("block %d got %d conflicts", i, v)
		}
		sum += v
	}
	if sum != 1000 {
		t.Fatalf("shares sum to %d, want 1000", sum)
	}
	if out[2] <= out[1] || out[1] <= out[0] {
		t.Fatalf("shares not proportional: %v", out)
	}
	for _, v := range apportionConflicts(0, blocks) {
		if v != 0 {
			t.Fatalf("unlimited budget must stay unlimited, got %v", out)
		}
	}
}
