package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bitmat"
)

func TestCertifyDepthFig1b(t *testing.T) {
	// rank = 4 < r_B = 5, so the certificate must go through a checked
	// UNSAT proof at b = 4.
	m := bitmat.MustParse("101100\n010011\n101010\n010101\n111000\n000111")
	if err := CertifyDepth(m, 5); err != nil {
		t.Fatalf("valid optimum rejected: %v", err)
	}
}

func TestCertifyDepthRejectsSuboptimal(t *testing.T) {
	m := bitmat.MustParse("110\n011\n111") // r_B = 3
	err := CertifyDepth(m, 4)
	if err == nil || !strings.Contains(err.Error(), "not optimal") {
		t.Fatalf("suboptimal depth accepted: %v", err)
	}
}

func TestCertifyDepthRankShortcut(t *testing.T) {
	// Full-rank matrices certify without SAT.
	if err := CertifyDepth(bitmat.Identity(5), 5); err != nil {
		t.Fatal(err)
	}
}

func TestCertifyDepthEdges(t *testing.T) {
	if err := CertifyDepth(nil, 1); err != ErrNilMatrix {
		t.Fatalf("nil: %v", err)
	}
	if err := CertifyDepth(bitmat.New(2, 2), 0); err != nil {
		t.Fatalf("zero matrix depth 0: %v", err)
	}
	if err := CertifyDepth(bitmat.New(2, 2), 1); err == nil {
		t.Fatal("zero matrix with depth 1 accepted")
	}
	if err := CertifyDepth(bitmat.MustParse("1"), 0); err == nil {
		t.Fatal("nonzero matrix with depth 0 accepted")
	}
}

func TestCertifyDepthAgreesWithSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 12; trial++ {
		m := bitmat.Random(rng, 5, 5, 0.5)
		res, err := Solve(m, fastOptions())
		if err != nil {
			t.Fatal(err)
		}
		if !res.Optimal {
			continue
		}
		if err := CertifyDepth(m, res.Depth); err != nil {
			t.Fatalf("certificate failed for solved optimum %d: %v\n%s", res.Depth, err, m)
		}
	}
}
