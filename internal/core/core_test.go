package core

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/bitmat"
	"repro/internal/rowpack"
)

func fastOptions() Options {
	o := DefaultOptions()
	o.Packing.Trials = 10
	o.FoolingBudget = 50_000
	return o
}

func TestSolveNil(t *testing.T) {
	if _, err := Solve(nil, fastOptions()); err != ErrNilMatrix {
		t.Fatalf("err = %v", err)
	}
}

func TestSolveZeroMatrix(t *testing.T) {
	res, err := Solve(bitmat.New(4, 5), fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Depth != 0 || !res.Optimal {
		t.Fatalf("depth=%d optimal=%v", res.Depth, res.Optimal)
	}
}

func TestSolveFig1b(t *testing.T) {
	// The paper's running example: r_B = 5, proven by fooling set.
	m := bitmat.MustParse("101100\n010011\n101010\n010101\n111000\n000111")
	res, err := Solve(m, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Depth != 5 {
		t.Fatalf("depth = %d, want 5", res.Depth)
	}
	if !res.Optimal {
		t.Fatal("optimality not established")
	}
	if res.FoolingLB != 5 {
		t.Fatalf("fooling LB = %d, want 5", res.FoolingLB)
	}
	if err := res.Partition.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSolveEq2NeedsUnsatProof(t *testing.T) {
	// Eq. 2 matrix: rank 3 = r_B, so the rank bound certifies it.
	m := bitmat.MustParse("110\n011\n111")
	res, err := Solve(m, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Depth != 3 || !res.Optimal {
		t.Fatalf("depth=%d optimal=%v cert=%v", res.Depth, res.Optimal, res.Certificate)
	}
}

func TestSolveFig3(t *testing.T) {
	m := bitmat.MustParse("11000\n00110\n01100\n10011\n11111")
	res, err := Solve(m, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Depth != 4 || !res.Optimal {
		t.Fatalf("depth=%d optimal=%v", res.Depth, res.Optimal)
	}
}

func TestSolveGapMatrixNeedsUnsat(t *testing.T) {
	// A matrix whose binary rank strictly exceeds its rational rank:
	// the triangle matrix from the background section —
	// [[0,1,1],[1,0,1],[1,1,0]] has rank 3 and r_B 3... use a known gap
	// instance instead: the complement of identity I4 (rank 4, r_B 4)?
	// The simplest textbook gap family needs larger sizes; build one by the
	// paper's construction: r = r' + r'' split rows.
	m := bitmat.MustParse(`110000
101000
011000
000110
000101
000011`)
	// rows: pairs (r0=r1+r2 style): real rank < 6 here. Just assert SAP
	// terminates optimally and depth ≥ rank.
	res, err := Solve(m, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal {
		t.Fatal("should be decided exactly")
	}
	if res.Depth < res.RankLB {
		t.Fatalf("depth %d < rank %d", res.Depth, res.RankLB)
	}
}

func TestBinaryRankIdentity(t *testing.T) {
	for n := 1; n <= 5; n++ {
		r, err := BinaryRank(bitmat.Identity(n))
		if err != nil {
			t.Fatal(err)
		}
		if r != n {
			t.Fatalf("r_B(I_%d) = %d", n, r)
		}
	}
}

func TestBinaryRankAllOnes(t *testing.T) {
	r, err := BinaryRank(bitmat.AllOnes(5, 7))
	if err != nil {
		t.Fatal(err)
	}
	if r != 1 {
		t.Fatalf("r_B(J) = %d, want 1", r)
	}
}

func TestSkipSATReturnsHeuristic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := bitmat.Random(rng, 8, 8, 0.5)
	opts := fastOptions()
	opts.SkipSAT = true
	res, err := Solve(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.SATCalls != 0 {
		t.Fatalf("SAT ran despite SkipSAT: %d calls", res.SATCalls)
	}
	if err := res.Partition.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMaxSATEntriesSkips(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := bitmat.Random(rng, 10, 10, 0.5)
	opts := fastOptions()
	opts.MaxSATEntries = 5 // far below the ~50 entries
	res, err := Solve(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.SATCalls != 0 {
		t.Fatal("SAT should have been skipped for large instance")
	}
}

func TestConflictBudgetInterrupts(t *testing.T) {
	// A moderately hard instance with a tiny conflict budget must return a
	// valid partition flagged TimedOut (unless the bound already certifies).
	rng := rand.New(rand.NewSource(11))
	var m *bitmat.Matrix
	for {
		m = bitmat.Random(rng, 9, 9, 0.45)
		if m.Rank() < rowpack.Pack(m, rowpack.Options{Trials: 2, Seed: 1}).Depth() {
			break
		}
	}
	opts := fastOptions()
	opts.Packing.Trials = 1
	opts.FoolingBudget = 0
	opts.ConflictBudget = 1
	res, err := Solve(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Partition.Validate(); err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut && !res.Optimal {
		t.Fatal("budget-limited run must be timed out or optimal")
	}
}

func TestTimeBudgetHonored(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m := bitmat.Random(rng, 10, 10, 0.5)
	opts := fastOptions()
	opts.MaxSATEntries = 0
	opts.TimeBudget = time.Millisecond
	start := time.Now()
	res, err := Solve(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("time budget ignored")
	}
	if err := res.Partition.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEncodingLogAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		m := bitmat.Random(rng, 4, 4, 0.5)
		a, err := Solve(m, fastOptions())
		if err != nil {
			t.Fatal(err)
		}
		opts := fastOptions()
		opts.Encoding = EncodingLog
		b, err := Solve(m, opts)
		if err != nil {
			t.Fatal(err)
		}
		if a.Optimal && b.Optimal && a.Depth != b.Depth {
			t.Fatalf("encodings disagree: onehot %d vs log %d for\n%s", a.Depth, b.Depth, m)
		}
	}
}

func TestCompressionToggleAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 10; trial++ {
		m := bitmat.Random(rng, 5, 5, 0.4)
		a, err := Solve(m, fastOptions())
		if err != nil {
			t.Fatal(err)
		}
		opts := fastOptions()
		opts.DisableCompression = true
		b, err := Solve(m, opts)
		if err != nil {
			t.Fatal(err)
		}
		if a.Optimal && b.Optimal && a.Depth != b.Depth {
			t.Fatalf("compression changed optimum: %d vs %d for\n%s", a.Depth, b.Depth, m)
		}
	}
}

func TestCertificateString(t *testing.T) {
	for c, want := range map[Certificate]string{
		CertNone: "none", CertRank: "rank", CertFooling: "fooling-set", CertUnsat: "unsat-proof",
	} {
		if c.String() != want {
			t.Fatalf("%d: %s", c, c.String())
		}
	}
}

// Property: SAP's result is always a valid partition with
// rank ≤ depth ≤ heuristic depth, and optimal results match BinaryRank on
// re-solve.
func TestQuickSAPInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := bitmat.Random(rng, 1+rng.Intn(6), 1+rng.Intn(6), rng.Float64())
		opts := fastOptions()
		opts.Packing.Trials = 3
		res, err := Solve(m, opts)
		if err != nil {
			return false
		}
		if res.Partition.Validate() != nil {
			return false
		}
		return res.Depth >= res.RankLB && res.Depth <= res.HeuristicDepth &&
			res.Depth >= res.FoolingLB
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: binary rank is invariant under transposition (solve both ways).
func TestQuickBinaryRankTransposeInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := bitmat.Random(rng, 1+rng.Intn(5), 1+rng.Intn(5), 0.5)
		a, err1 := Solve(m, fastOptions())
		b, err2 := Solve(m.Transpose(), fastOptions())
		if err1 != nil || err2 != nil {
			return false
		}
		if !a.Optimal || !b.Optimal {
			return true // undecided instances don't have to agree
		}
		return a.Depth == b.Depth
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: the paper's known-optimal construction is solved at exactly k
// with a rank certificate (SAT stage unnecessary).
func TestQuickKnownOptimalSolvedByBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(4)
		m := knownOptimalMatrix(rng, 7, 7, k)
		if m == nil {
			return true
		}
		res, err := Solve(m, fastOptions())
		if err != nil {
			return false
		}
		return res.Optimal && res.Depth == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// knownOptimalMatrix builds M = Σ cᵢ·rᵢ with disjoint row patterns and
// verified rank k (nil when the construction fails for this seed).
func knownOptimalMatrix(rng *rand.Rand, rows, cols, k int) *bitmat.Matrix {
	if k > cols {
		return nil
	}
	perm := rng.Perm(cols)
	m := bitmat.New(rows, cols)
	for i := 0; i < k; i++ {
		// Column block i gets a random nonzero row set.
		rowSet := bitmat.RandomNonzeroVec(rng, rows, 0.5)
		cs := []int{perm[i]}
		for _, c := range perm[k:] {
			if rng.Intn(k) == i {
				cs = append(cs, c)
			}
		}
		rowSet.ForEachOne(func(r int) {
			for _, c := range cs {
				m.Set(r, c, true)
			}
		})
	}
	if m.Rank() != k {
		return nil
	}
	return m
}
