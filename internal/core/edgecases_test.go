package core

import (
	"testing"

	"repro/internal/bitmat"
)

// TestSolveServiceEdgeShapes covers the decompose/recombine edge cases the
// serving layer forwards from arbitrary clients: degenerate shapes, matrices
// that vanish under compression, and duplicate rows spread across different
// decomposition blocks.
func TestSolveServiceEdgeShapes(t *testing.T) {
	cases := []struct {
		name  string
		m     *bitmat.Matrix
		depth int
	}{
		{"all-zero 3x4", bitmat.New(3, 4), 0},
		{"all-zero 1x1", bitmat.New(1, 1), 0},
		{"1x1 one", bitmat.MustParse("1"), 1},
		{"single row", bitmat.MustParse("10110"), 1},
		{"single row all ones", bitmat.AllOnes(1, 7), 1},
		{"single column", bitmat.MustParse("1\n0\n1"), 1},
		{"two blocks", bitmat.MustParse("1100\n0011"), 2},
		// Rows 0/1 are duplicates inside block {cols 0,1}; rows 2/3 are
		// duplicates inside block {cols 2,3}; compression merges within each
		// block, decomposition must keep the blocks apart and recombination
		// must restore all four original rows.
		{"duplicate rows across blocks", bitmat.MustParse("1100\n1100\n0011\n0011"), 2},
		// Interleaved: duplicate rows of different blocks alternate, so lift
		// maps cross block boundaries in original index space.
		{"interleaved duplicates", bitmat.MustParse("1100\n0011\n1100\n0011"), 2},
		// A zero row inside an otherwise two-block matrix.
		{"zero row between blocks", bitmat.MustParse("1100\n0000\n0011"), 2},
	}
	for _, tc := range cases {
		for _, disable := range []bool{false, true} {
			opts := DefaultOptions()
			opts.DisableDecomposition = disable
			res, err := Solve(tc.m, opts)
			if err != nil {
				t.Fatalf("%s (disableDecomp=%v): %v", tc.name, disable, err)
			}
			if res.Depth != tc.depth {
				t.Errorf("%s (disableDecomp=%v): depth=%d, want %d", tc.name, disable, res.Depth, tc.depth)
			}
			if !res.Optimal {
				t.Errorf("%s (disableDecomp=%v): not optimal", tc.name, disable)
			}
			if err := res.Partition.Validate(); err != nil {
				t.Errorf("%s (disableDecomp=%v): invalid partition: %v", tc.name, disable, err)
			}
			if res.Partition.M != tc.m {
				t.Errorf("%s (disableDecomp=%v): partition not on the request matrix", tc.name, disable)
			}
		}
	}
}

// TestRecombineDuplicateRowsAcrossBlocks pins the lift maps: every original
// duplicate row must appear in exactly the rectangles of its representative,
// in every block.
func TestRecombineDuplicateRowsAcrossBlocks(t *testing.T) {
	m := bitmat.MustParse("1100\n0011\n1100\n0011\n1100")
	res, err := Solve(m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Depth != 2 || !res.Optimal {
		t.Fatalf("depth=%d optimal=%v, want 2/true", res.Depth, res.Optimal)
	}
	assign := res.Partition.Assignment()
	// Rows 0, 2, 4 share a rectangle; rows 1, 3 share the other.
	if assign[[2]int{0, 0}] != assign[[2]int{2, 0}] || assign[[2]int{0, 0}] != assign[[2]int{4, 0}] {
		t.Fatalf("duplicate rows of block 0 landed in different rectangles")
	}
	if assign[[2]int{1, 2}] != assign[[2]int{3, 2}] {
		t.Fatalf("duplicate rows of block 1 landed in different rectangles")
	}
}
