// Package rowpack implements the paper's row-packing heuristic (Algorithm 2)
// for exact binary matrix factorization, the trivial row/column heuristic,
// and ablation variants (no basis update, popcount-sorted order, DLX-based
// exact-cover packing).
//
// Row packing processes the matrix row by row, maintaining a basis of
// disjoint column patterns, one per rectangle. Each row is greedily
// decomposed into a disjoint union of basis vectors (growing those
// rectangles vertically); any residue becomes a new basis vector, and basis
// vectors strictly containing the residue are shrunk so that smaller basis
// vectors improve later packings. Because the greedy decomposition follows
// basis order, the heuristic is run multiple times with shuffled row orders,
// and on the transpose, keeping the best result.
package rowpack

import (
	"math/rand"

	"repro/internal/bitmat"
	"repro/internal/exactcover"
	"repro/internal/rect"
)

// Order selects the row processing order of a packing trial.
type Order int

const (
	// OrderShuffle randomizes the row order each trial (paper default).
	OrderShuffle Order = iota
	// OrderIdentity keeps the original row order (single deterministic trial).
	OrderIdentity
	// OrderSortedAsc processes rows with fewer 1s first (the paper mentions
	// this as a compromise that tends to hit worse local minima).
	OrderSortedAsc
)

// Options configures Pack.
type Options struct {
	// Trials is the number of packing trials (each with a fresh row order).
	// Values < 1 are treated as 1.
	Trials int
	// Seed seeds the shuffling RNG; trials are deterministic given Seed.
	Seed int64
	// Order selects the row ordering strategy.
	Order Order
	// DisableBasisUpdate skips lines 9–16 of Algorithm 2 (basis shrinking);
	// ablation only, the paper keeps the update on.
	DisableBasisUpdate bool
	// UseDLX decomposes each row by exact cover over the basis (Algorithm X)
	// instead of greedy in-order subtraction — the paper's future-work idea.
	UseDLX bool
	// SkipTranspose disables the run on the transposed matrix.
	SkipTranspose bool
}

// DefaultOptions mirror the paper's setting: shuffled multi-trial with basis
// update, both orientations.
func DefaultOptions() Options {
	return Options{Trials: 100, Seed: 1, Order: OrderShuffle}
}

// Trivial returns the paper's trivial EBMF: partition into single rows or
// single columns (whichever orientation has fewer distinct nonzero lines),
// consolidating duplicates. The depth equals Matrix.TrivialUpperBound.
func Trivial(m *bitmat.Matrix) *rect.Partition {
	rowP := trivialRows(m)
	colP := trivialCols(m)
	if colP.Depth() < rowP.Depth() {
		return colP
	}
	return rowP
}

func trivialRows(m *bitmat.Matrix) *rect.Partition {
	p := rect.NewPartition(m)
	groups := map[string]int{} // row pattern -> rect index
	for i := 0; i < m.Rows(); i++ {
		row := m.Row(i)
		if row.IsZero() {
			continue
		}
		k := row.Key()
		if idx, ok := groups[k]; ok {
			p.Rects[idx].Rows.Set(i, true)
			continue
		}
		r := rect.NewRect(m.Rows(), m.Cols())
		r.Rows.Set(i, true)
		r.Cols.Or(row)
		groups[k] = len(p.Rects)
		p.Add(r)
	}
	return p
}

func trivialCols(m *bitmat.Matrix) *rect.Partition {
	tp := trivialRows(m.Transpose())
	p := rect.NewPartition(m)
	for _, r := range tp.Rects {
		p.Add(rect.Rect{Rows: r.Cols, Cols: r.Rows})
	}
	return p
}

// Pack runs the row-packing heuristic and returns the best partition found
// across trials and orientations. The result is always a valid EBMF of m and
// never worse than the trivial heuristic.
func Pack(m *bitmat.Matrix, opts Options) *rect.Partition {
	if opts.Trials < 1 {
		opts.Trials = 1
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	best := Trivial(m)

	run := func(target *bitmat.Matrix, transposed bool) {
		perm := orderFor(rng, target, opts)
		p := packOnce(target, perm, opts)
		if transposed {
			p = transposePartition(m, p)
		}
		if p.Depth() < best.Depth() {
			best = p
		}
	}

	mt := m.Transpose()
	for trial := 0; trial < opts.Trials; trial++ {
		run(m, false)
		if !opts.SkipTranspose {
			run(mt, true)
		}
		if opts.Order != OrderShuffle {
			break // deterministic orders do not benefit from more trials
		}
	}
	return best
}

// orderFor produces the row processing order for one trial.
func orderFor(rng *rand.Rand, m *bitmat.Matrix, opts Options) []int {
	n := m.Rows()
	switch opts.Order {
	case OrderIdentity:
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		return perm
	case OrderSortedAsc:
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		// Stable insertion sort by popcount keeps ties in original order.
		for i := 1; i < n; i++ {
			for j := i; j > 0 && m.RowOnes(perm[j]) < m.RowOnes(perm[j-1]); j-- {
				perm[j], perm[j-1] = perm[j-1], perm[j]
			}
		}
		return perm
	default:
		return rng.Perm(n)
	}
}

// packOnce is one trial of Algorithm 2 over m with rows processed in the
// order given by perm (perm[t] is the original row index processed at step
// t). Rectangles are expressed in original row indices directly.
func packOnce(m *bitmat.Matrix, perm []int, opts Options) *rect.Partition {
	p := rect.NewPartition(m)
	var basis []bitmat.Vec // basis[k] is also p.Rects[k].Cols

	for _, i := range perm {
		ri := m.Row(i).Clone()
		if ri.IsZero() {
			continue
		}
		if opts.UseDLX {
			if covered := dlxDecompose(ri, basis, p, i); covered {
				continue
			}
		}
		// Lines 4–7: greedy in-order subtraction of contained basis vectors.
		for j, vj := range basis {
			if vj.IsZero() || !vj.SubsetOf(ri) {
				continue
			}
			p.Rects[j].Rows.Set(i, true) // vertical grow
			ri.AndNot(vj)
			if ri.IsZero() {
				break
			}
		}
		if ri.IsZero() {
			continue
		}
		// Lines 8–16: residue becomes a new basis vector.
		newRows := bitmat.NewVec(m.Rows())
		newRows.Set(i, true)
		if !opts.DisableBasisUpdate {
			for k := range basis {
				vk := basis[k]
				if vk.IsZero() || !ri.SubsetOf(vk) {
					continue
				}
				// Horizontal shrink: P_k loses the residue's columns; the
				// new rectangle covers those entries for P_k's rows.
				vk.AndNot(ri) // mutates p.Rects[k].Cols in place
				newRows.Or(p.Rects[k].Rows)
			}
		}
		nr := rect.Rect{Rows: newRows, Cols: ri}
		basis = append(basis, ri)
		p.Add(nr)
	}
	return p
}

// dlxDecompose tries to decompose row ri exactly into existing basis vectors
// using Algorithm X. On success it grows the matching rectangles and returns
// true; otherwise it leaves the state untouched and returns false so the
// caller falls back to greedy packing.
func dlxDecompose(ri bitmat.Vec, basis []bitmat.Vec, p *rect.Partition, row int) bool {
	ones := ri.OnesPositions()
	if len(ones) == 0 || len(basis) == 0 {
		return false
	}
	colIdx := make(map[int]int, len(ones))
	for ci, c := range ones {
		colIdx[c] = ci
	}
	prob := exactcover.NewProblem(len(ones))
	rowToBasis := []int{}
	any := false
	for k, vk := range basis {
		if vk.IsZero() || !vk.SubsetOf(ri) {
			continue
		}
		cols := []int{}
		vk.ForEachOne(func(c int) { cols = append(cols, colIdx[c]) })
		prob.AddRow(cols)
		rowToBasis = append(rowToBasis, k)
		any = true
	}
	if !any {
		return false
	}
	sol, ok := prob.FirstSolution()
	if !ok {
		return false
	}
	for _, r := range sol {
		p.Rects[rowToBasis[r]].Rows.Set(row, true)
	}
	return true
}

// transposePartition converts a partition of mᵀ into a partition of m by
// swapping each rectangle's row and column sets.
func transposePartition(m *bitmat.Matrix, tp *rect.Partition) *rect.Partition {
	p := rect.NewPartition(m)
	for _, r := range tp.Rects {
		p.Add(rect.Rect{Rows: r.Cols, Cols: r.Rows})
	}
	return p
}
