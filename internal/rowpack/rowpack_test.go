package rowpack

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitmat"
	"repro/internal/rect"
)

// fig3 is the 5×5 matrix of Figure 3 in the paper: the identity row order
// needs 5 rectangles, but a better order finds 4 (its binary rank, which
// equals its rational rank 4).
const fig3 = `11000
00110
01100
10011
11111`

func TestTrivialValidAndMatchesBound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		m := bitmat.Random(rng, 1+rng.Intn(10), 1+rng.Intn(10), rng.Float64())
		p := Trivial(m)
		if err := p.Validate(); err != nil {
			t.Fatalf("invalid trivial partition: %v\n%s", err, m)
		}
		if p.Depth() != m.TrivialUpperBound() {
			t.Fatalf("trivial depth %d != bound %d for\n%s", p.Depth(), m.TrivialUpperBound(), m)
		}
	}
}

func TestTrivialConsolidatesDuplicates(t *testing.T) {
	m := bitmat.MustParse("101\n101\n101")
	p := Trivial(m)
	if p.Depth() != 1 {
		t.Fatalf("depth = %d, want 1", p.Depth())
	}
}

func TestPackFig3IdentityOrderNeeds5(t *testing.T) {
	m := bitmat.MustParse(fig3)
	p := Pack(m, Options{Trials: 1, Order: OrderIdentity, SkipTranspose: true})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Depth() != 5 {
		t.Fatalf("identity order depth = %d, want 5 (Figure 3a)", p.Depth())
	}
}

func TestPackFig3ShuffleFinds4(t *testing.T) {
	m := bitmat.MustParse(fig3)
	if m.Rank() != 4 {
		t.Fatalf("rank = %d, want 4", m.Rank())
	}
	p := Pack(m, Options{Trials: 200, Seed: 7, Order: OrderShuffle})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Depth() != 4 {
		t.Fatalf("best depth = %d, want 4 (Figure 3b)", p.Depth())
	}
}

func TestPackAllOnes(t *testing.T) {
	p := Pack(bitmat.AllOnes(6, 9), Options{Trials: 1, Order: OrderIdentity})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Depth() != 1 {
		t.Fatalf("all-ones depth = %d, want 1", p.Depth())
	}
}

func TestPackZeroMatrix(t *testing.T) {
	p := Pack(bitmat.New(4, 4), DefaultOptions())
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Depth() != 0 {
		t.Fatalf("zero matrix depth = %d, want 0", p.Depth())
	}
}

func TestPackIdentityMatrix(t *testing.T) {
	p := Pack(bitmat.Identity(7), Options{Trials: 3, Seed: 1})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Depth() != 7 {
		t.Fatalf("identity depth = %d, want 7", p.Depth())
	}
}

func TestPackNeverWorseThanTrivial(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		m := bitmat.Random(rng, 2+rng.Intn(9), 2+rng.Intn(9), 0.2+0.6*rng.Float64())
		p := Pack(m, Options{Trials: 1, Seed: int64(trial)})
		if p.Depth() > Trivial(m).Depth() {
			t.Fatalf("pack %d worse than trivial %d for\n%s", p.Depth(), Trivial(m).Depth(), m)
		}
	}
}

func TestPackRespectsRankLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		m := bitmat.Random(rng, 2+rng.Intn(8), 2+rng.Intn(8), 0.3+0.5*rng.Float64())
		p := Pack(m, Options{Trials: 10, Seed: int64(trial)})
		if p.Depth() < m.Rank() {
			t.Fatalf("pack depth %d below rank %d — invalid partition?\n%s", p.Depth(), m.Rank(), m)
		}
	}
}

func TestPackDuplicateRowsShareRectangles(t *testing.T) {
	m := bitmat.MustParse("1100\n1100\n0011\n0011")
	p := Pack(m, Options{Trials: 1, Order: OrderIdentity, SkipTranspose: true})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Depth() != 2 {
		t.Fatalf("depth = %d, want 2", p.Depth())
	}
}

func TestVariantsAllValid(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	variants := []Options{
		{Trials: 5, Seed: 3},
		{Trials: 5, Seed: 3, DisableBasisUpdate: true},
		{Trials: 1, Order: OrderSortedAsc},
		{Trials: 5, Seed: 3, UseDLX: true},
		{Trials: 5, Seed: 3, SkipTranspose: true},
	}
	for trial := 0; trial < 15; trial++ {
		m := bitmat.Random(rng, 2+rng.Intn(8), 2+rng.Intn(8), 0.2+0.6*rng.Float64())
		for vi, opt := range variants {
			p := Pack(m, opt)
			if err := p.Validate(); err != nil {
				t.Fatalf("variant %d invalid: %v\n%s", vi, err, m)
			}
		}
	}
}

func TestDLXVariantHandlesObservation4(t *testing.T) {
	// Observation 4: plain row packing introduces at most one new basis
	// vector per row, so orders requiring multi-vector recombination fail.
	// The DLX variant finds exact covers the greedy order misses. We verify
	// on Figure 3's matrix that DLX with identity order still packs r4
	// exactly (r4 = r2 + r3 is findable by exact cover even though the
	// greedy order picks v0, v1 first).
	m := bitmat.MustParse(fig3)
	p := Pack(m, Options{Trials: 1, Order: OrderIdentity, UseDLX: true, SkipTranspose: true})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Depth() != 4 {
		t.Fatalf("DLX identity depth = %d, want 4", p.Depth())
	}
}

func TestBasisUpdateHelps(t *testing.T) {
	// On the gap-style matrices the basis update is what allows later rows
	// to pack; statistically, with update must be ≤ without update on
	// average. We check it is never invalid and track that at least one
	// instance strictly improves.
	rng := rand.New(rand.NewSource(5))
	improved := false
	for trial := 0; trial < 60; trial++ {
		m := bitmat.Random(rng, 6, 6, 0.5)
		with := Pack(m, Options{Trials: 5, Seed: int64(trial)})
		without := Pack(m, Options{Trials: 5, Seed: int64(trial), DisableBasisUpdate: true})
		if with.Depth() < without.Depth() {
			improved = true
		}
	}
	if !improved {
		t.Log("note: basis update never strictly improved on this sample (unexpected but not fatal)")
	}
}

// Property: Pack always returns a valid partition with depth between
// rank(M) and TrivialUpperBound(M).
func TestQuickPackValidAndBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := bitmat.Random(rng, 1+rng.Intn(9), 1+rng.Intn(9), rng.Float64())
		p := Pack(m, Options{Trials: 3, Seed: seed})
		if p.Validate() != nil {
			return false
		}
		return p.Depth() >= m.Rank() && p.Depth() <= m.TrivialUpperBound()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: packing the transpose gives the same best depth (Pack already
// tries both orientations).
func TestQuickPackTransposeConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := bitmat.Random(rng, 1+rng.Intn(7), 1+rng.Intn(7), rng.Float64())
		a := Pack(m, Options{Trials: 5, Seed: seed})
		b := Pack(m.Transpose(), Options{Trials: 5, Seed: seed})
		return b.Validate() == nil && a.Validate() == nil &&
			abs(a.Depth()-b.Depth()) <= 1 // heuristic jitter tolerance
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Property: known-optimal construction (paper benchmark set 2): disjoint
// rows × independent columns ⇒ Pack finds exactly k rectangles.
func TestQuickPackOnKnownOptimal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(5)
		m, ok := knownOptimal(rng, 8, 8, k)
		if !ok {
			return true // construction failed for this seed; skip
		}
		p := Pack(m, Options{Trials: 10, Seed: seed})
		return p.Validate() == nil && p.Depth() == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// knownOptimal builds M = Σ cᵢ·rᵢ with pairwise disjoint rows rᵢ and
// linearly independent column indicators cᵢ, so r_B(M) = rank(M) = k.
func knownOptimal(rng *rand.Rand, rows, cols, k int) (*bitmat.Matrix, bool) {
	colParts := disjointNonempty(rng, cols, k)
	if colParts == nil {
		return nil, false
	}
	m := bitmat.New(rows, cols)
	var rowSets []bitmat.Vec
	for i := 0; i < k; i++ {
		v := bitmat.RandomNonzeroVec(rng, rows, 0.5)
		rowSets = append(rowSets, v)
	}
	for i := 0; i < k; i++ {
		rowSets[i].ForEachOne(func(r int) {
			for _, c := range colParts[i] {
				m.Set(r, c, true)
			}
		})
	}
	if m.Rank() != k {
		return nil, false
	}
	_ = rect.Rect{}
	return m, true
}

// disjointNonempty splits [0,n) into k disjoint nonempty parts.
func disjointNonempty(rng *rand.Rand, n, k int) [][]int {
	if k > n {
		return nil
	}
	perm := rng.Perm(n)
	parts := make([][]int, k)
	for i := 0; i < k; i++ {
		parts[i] = []int{perm[i]}
	}
	for _, x := range perm[k:] {
		i := rng.Intn(k)
		parts[i] = append(parts[i], x)
	}
	return parts
}
