package bmf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitmat"
	"repro/internal/rowpack"
)

func TestFactorizeAllOnesRank1(t *testing.T) {
	m := bitmat.AllOnes(5, 5)
	f := Factorize(m, DefaultOptions(1))
	if !f.IsExactEBMF() {
		t.Fatalf("rank-1 all-ones not recovered: residual=%d overlaps=%d", f.Residual, f.Overlaps)
	}
	p := f.Partition(m)
	if p == nil || p.Depth() != 1 {
		t.Fatalf("partition: %v", p)
	}
}

func TestFactorizeZeroMatrix(t *testing.T) {
	m := bitmat.New(3, 3)
	f := Factorize(m, DefaultOptions(2))
	if f.Residual != 0 {
		t.Fatalf("residual %d on zero matrix", f.Residual)
	}
	depth, ok := SolveEBMF(m, 3, DefaultOptions(0))
	if !ok || depth != 0 {
		t.Fatalf("depth=%d ok=%v", depth, ok)
	}
}

func TestFactorizeIdentity(t *testing.T) {
	m := bitmat.Identity(4)
	f := Factorize(m, Options{Rank: 4, Restarts: 30, MaxSweeps: 100, Seed: 2})
	if !f.IsExactEBMF() {
		t.Logf("note: identity not exactly recovered (residual=%d) — local search can stall", f.Residual)
	} else if p := f.Partition(m); p == nil {
		t.Fatal("exact factorization with invalid partition")
	}
}

func TestResidualNeverNegativeAndMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		m := bitmat.Random(rng, 4+rng.Intn(5), 4+rng.Intn(5), 0.4)
		f := Factorize(m, Options{Rank: 1 + rng.Intn(4), Restarts: 3, MaxSweeps: 50, Seed: int64(trial)})
		if f.Residual < 0 || f.Overlaps < 0 {
			t.Fatalf("negative metrics: %+v", f)
		}
		if f.H.Rows() != m.Rows() || f.W.Cols() != m.Cols() {
			t.Fatal("factor dims wrong")
		}
	}
}

func TestPartitionNilWhenInexact(t *testing.T) {
	// Rank 1 cannot exactly factor the identity.
	m := bitmat.Identity(3)
	f := Factorize(m, DefaultOptions(1))
	if f.IsExactEBMF() {
		t.Fatal("rank-1 exact factorization of I_3 is impossible")
	}
	if f.Partition(m) != nil {
		t.Fatal("Partition must be nil for inexact factorizations")
	}
}

// The paper's point: the approximate BMF baseline underperforms row packing
// as an EBMF solver. Quantify on random matrices: row packing always
// produces a valid EBMF, while the baseline frequently fails to find one at
// the same depth budget.
func TestBaselineUnderperformsRowPacking(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	packWins, baselineFails := 0, 0
	const trials = 15
	for trial := 0; trial < trials; trial++ {
		m := bitmat.Random(rng, 7, 7, 0.45)
		if m.Ones() == 0 {
			continue
		}
		packDepth := rowpack.Pack(m, rowpack.Options{Trials: 10, Seed: int64(trial)}).Depth()
		blDepth, ok := SolveEBMF(m, packDepth, Options{Restarts: 5, MaxSweeps: 60, Seed: int64(trial)})
		if !ok {
			baselineFails++
			continue
		}
		if packDepth <= blDepth {
			packWins++
		}
	}
	if baselineFails+packWins < trials/2 {
		t.Fatalf("expected the baseline to lose or fail most of the time: fails=%d packWins=%d",
			baselineFails, packWins)
	}
}

// Property: any factorization reported exact converts to a valid partition
// whose depth is at most the requested rank.
func TestQuickExactImpliesValidPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := bitmat.Random(rng, 2+rng.Intn(5), 2+rng.Intn(5), 0.5)
		r := 1 + rng.Intn(5)
		fac := Factorize(m, Options{Rank: r, Restarts: 4, MaxSweeps: 40, Seed: seed})
		if !fac.IsExactEBMF() {
			return true
		}
		p := fac.Partition(m)
		return p != nil && p.Depth() <= r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: SolveEBMF's depth (when ok) is sandwiched between rank and the
// scan ceiling.
func TestQuickSolveEBMFBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := bitmat.Random(rng, 2+rng.Intn(4), 2+rng.Intn(4), 0.5)
		if m.Ones() == 0 {
			return true
		}
		ceiling := m.TrivialUpperBound()
		depth, ok := SolveEBMF(m, ceiling, Options{Restarts: 6, MaxSweeps: 60, Seed: seed})
		if !ok {
			return depth == ceiling
		}
		return depth >= m.Rank() && depth <= ceiling
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
