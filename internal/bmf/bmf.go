// Package bmf implements the baseline the paper's background discusses:
// approximate binary matrix factorization in the style of Zhang et al.
// (ICDM 2007), the optimizer integrated into the NIMFA package. Given M and
// a fixed inner dimension r, it minimizes ‖M − H·W‖² over binary H, W by
// monotone coordinate descent (bit flips that strictly reduce the residual).
//
// The paper observes that this optimizer "is not designed for EBMF but to
// provide approximations given a fixed r, [so] it does not perform well for
// our specific purposes": even when an exact factorization at rank r exists,
// local search frequently stalls at a nonzero residual, and the H·W product
// may exceed 1 (overlapping rectangles), which rectangular addressing
// forbids. The package exists to reproduce that comparison.
package bmf

import (
	"math/rand"

	"repro/internal/bitmat"
	"repro/internal/rect"
)

// Factorization is an approximate binary factorization M ≈ H·W.
type Factorization struct {
	// H is m×r, W is r×n, both binary.
	H, W *bitmat.Matrix
	// Residual is ‖M − H·W‖² over the integers (0 means exact as a sum,
	// but possibly with overlaps counted: an entry covered twice against a
	// target of 1 contributes 1).
	Residual int
	// Overlaps counts entries where (H·W) > 1 — violations of the
	// disjointness EBMF requires even when Residual treats them mildly.
	Overlaps int
	// Iterations is the number of full coordinate-descent sweeps performed.
	Iterations int
}

// Options configures the optimizer.
type Options struct {
	// Rank is the inner dimension r.
	Rank int
	// Restarts is the number of random restarts (best kept).
	Restarts int
	// MaxSweeps bounds coordinate-descent sweeps per restart.
	MaxSweeps int
	// Seed makes runs deterministic.
	Seed int64
}

// DefaultOptions returns a moderate-effort configuration.
func DefaultOptions(rank int) Options {
	return Options{Rank: rank, Restarts: 10, MaxSweeps: 100, Seed: 1}
}

// Factorize runs the coordinate-descent optimizer and returns the best
// factorization over the restarts.
func Factorize(m *bitmat.Matrix, opts Options) *Factorization {
	if opts.Rank < 0 {
		panic("bmf: negative rank")
	}
	if opts.Restarts < 1 {
		opts.Restarts = 1
	}
	if opts.MaxSweeps < 1 {
		opts.MaxSweeps = 1
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	var best *Factorization
	for restart := 0; restart < opts.Restarts; restart++ {
		f := descend(m, opts.Rank, opts.MaxSweeps, rng)
		if best == nil || f.Residual < best.Residual ||
			(f.Residual == best.Residual && f.Overlaps < best.Overlaps) {
			best = f
		}
		if best.Residual == 0 && best.Overlaps == 0 {
			break
		}
	}
	return best
}

// descend is one restart: random initialization followed by bit-flip
// coordinate descent until a sweep makes no progress.
func descend(m *bitmat.Matrix, r, maxSweeps int, rng *rand.Rand) *Factorization {
	rows, cols := m.Rows(), m.Cols()
	// Integer working copies: target, H, W, and the product P = H·W.
	target := make([][]int, rows)
	for i := range target {
		target[i] = make([]int, cols)
		for j := 0; j < cols; j++ {
			if m.Get(i, j) {
				target[i][j] = 1
			}
		}
	}
	h := randBits(rng, rows, r, 0.3)
	w := randBits(rng, r, cols, 0.3)
	p := product(h, w)

	f := &Factorization{}
	for sweep := 0; sweep < maxSweeps; sweep++ {
		f.Iterations = sweep + 1
		improved := false
		// Flip H bits: flipping h[i][k] changes row i of P by ±w[k].
		for i := 0; i < rows; i++ {
			for k := 0; k < r; k++ {
				delta := 0
				sign := 1
				if h[i][k] == 1 {
					sign = -1
				}
				for j := 0; j < cols; j++ {
					if w[k][j] == 0 {
						continue
					}
					oldD := p[i][j] - target[i][j]
					newD := oldD + sign
					delta += newD*newD - oldD*oldD
				}
				if delta < 0 {
					h[i][k] ^= 1
					for j := 0; j < cols; j++ {
						if w[k][j] == 1 {
							p[i][j] += sign
						}
					}
					improved = true
				}
			}
		}
		// Flip W bits: flipping w[k][j] changes column j of P by ±h[·][k].
		for k := 0; k < r; k++ {
			for j := 0; j < cols; j++ {
				delta := 0
				sign := 1
				if w[k][j] == 1 {
					sign = -1
				}
				for i := 0; i < rows; i++ {
					if h[i][k] == 0 {
						continue
					}
					oldD := p[i][j] - target[i][j]
					newD := oldD + sign
					delta += newD*newD - oldD*oldD
				}
				if delta < 0 {
					w[k][j] ^= 1
					for i := 0; i < rows; i++ {
						if h[i][k] == 1 {
							p[i][j] += sign
						}
					}
					improved = true
				}
			}
		}
		if !improved {
			break
		}
	}

	f.H = toMatrix(h)
	f.W = toMatrix(w)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			d := p[i][j] - target[i][j]
			f.Residual += d * d
			if p[i][j] > 1 {
				f.Overlaps++
			}
		}
	}
	return f
}

func randBits(rng *rand.Rand, rows, cols int, density float64) [][]int {
	out := make([][]int, rows)
	for i := range out {
		out[i] = make([]int, cols)
		for j := range out[i] {
			if rng.Float64() < density {
				out[i][j] = 1
			}
		}
	}
	return out
}

func product(h, w [][]int) [][]int {
	rows, r := len(h), 0
	if rows > 0 {
		r = len(h[0])
	}
	cols := 0
	if len(w) > 0 {
		cols = len(w[0])
	}
	p := make([][]int, rows)
	for i := range p {
		p[i] = make([]int, cols)
		for k := 0; k < r; k++ {
			if h[i][k] == 0 {
				continue
			}
			for j := 0; j < cols; j++ {
				p[i][j] += w[k][j]
			}
		}
	}
	return p
}

func toMatrix(bits [][]int) *bitmat.Matrix {
	if len(bits) == 0 {
		return bitmat.New(0, 0)
	}
	return bitmat.FromRows(bits)
}

// IsExactEBMF reports whether the factorization is an exact binary matrix
// factorization of m: zero residual and no overlaps.
func (f *Factorization) IsExactEBMF() bool {
	return f.Residual == 0 && f.Overlaps == 0
}

// Partition converts an exact factorization into a rectangle partition of m;
// it returns nil when the factorization is not exact.
func (f *Factorization) Partition(m *bitmat.Matrix) *rect.Partition {
	if !f.IsExactEBMF() {
		return nil
	}
	p := rect.FromFactors(m, f.H, f.W)
	// Drop rectangles with empty row or column sets (unused inner dims).
	kept := p.Rects[:0]
	for _, r := range p.Rects {
		if !r.IsEmpty() {
			kept = append(kept, r)
		}
	}
	p.Rects = kept
	if err := p.Validate(); err != nil {
		return nil
	}
	return p
}

// SolveEBMF searches for the smallest r at which the optimizer finds an
// exact factorization, scanning r from the rank lower bound up to maxRank.
// It returns the depth found and whether any exact factorization appeared —
// the baseline protocol the paper compares SAP against.
func SolveEBMF(m *bitmat.Matrix, maxRank int, opts Options) (depth int, ok bool) {
	if m.Ones() == 0 {
		return 0, true
	}
	lb := m.Rank()
	for r := lb; r <= maxRank; r++ {
		o := opts
		o.Rank = r
		f := Factorize(m, o)
		if f.IsExactEBMF() && f.Partition(m) != nil {
			return r, true
		}
	}
	return maxRank, false
}
