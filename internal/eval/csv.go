package eval

import (
	"encoding/csv"
	"fmt"
	"io"
	"time"
)

// WriteCSV emits Table I rows in machine-readable form: one record per
// benchmark set with counts (not percentages, so downstream tooling can
// aggregate across runs).
func WriteCSV(w io.Writer, rows []Row, trialCounts []int) error {
	cw := csv.NewWriter(w)
	header := []string{"benchmark", "total", "decided", "timeout", "rank_eq", "trivial_opt"}
	for _, t := range trialCounts {
		header = append(header, fmt.Sprintf("rp%d_opt", t))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Label,
			fmt.Sprint(r.Total),
			fmt.Sprint(r.Decided),
			fmt.Sprint(r.TimedOut),
			fmt.Sprint(r.RankEq),
			fmt.Sprint(r.TrivialOpt),
		}
		for _, t := range trialCounts {
			rec = append(rec, fmt.Sprint(r.PackOpt[t]))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteInstanceCSV emits per-instance results (the Figure 4 raw data).
func WriteInstanceCSV(w io.Writer, results []InstanceResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"name", "rank", "binary_rank", "pack_depth", "pack_us", "sat_us", "conflicts", "timed_out",
	}); err != nil {
		return err
	}
	for _, r := range results {
		if err := cw.Write([]string{
			r.Name,
			fmt.Sprint(r.Rank),
			fmt.Sprint(r.BinaryRB),
			fmt.Sprint(r.PackDepth),
			fmt.Sprint(int64(r.PackTime / time.Microsecond)),
			fmt.Sprint(int64(r.SATTime / time.Microsecond)),
			fmt.Sprint(r.Conflicts),
			fmt.Sprint(r.TimedOut),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
