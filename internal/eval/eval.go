// Package eval is the experiment harness behind Table I and Figure 4 of the
// paper: it runs the trivial heuristic, row packing at several trial counts,
// and the exact SAP solver over benchmark suites, and aggregates the
// percentage-of-optimal statistics the paper reports.
package eval

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/benchgen"
	"repro/internal/core"
	"repro/internal/rowpack"
)

// Options configures a suite evaluation.
type Options struct {
	// TrialCounts are the row-packing trial counts to evaluate (Table I
	// uses 1, 10, 100, 1000).
	TrialCounts []int
	// ConflictBudget bounds the exact solver per instance (≤ 0 unlimited).
	ConflictBudget int64
	// TimeBudget bounds the exact solver per instance (0 unlimited).
	TimeBudget time.Duration
	// MaxSATEntries skips the exact stage for instances with more 1s; such
	// instances count as solved only when a bound certificate appears
	// (mirrors the paper's 100×100 treatment). Applied per decomposed
	// block, like core.Options.MaxSATEntries.
	MaxSATEntries int
	// Parallelism bounds concurrent per-block solves inside each instance
	// (≤ 0: GOMAXPROCS); see core.Options.Parallelism.
	Parallelism int
	// Seed seeds the heuristics.
	Seed int64
}

// DefaultOptions evaluate with the paper's trial counts and a laptop-scale
// conflict budget.
func DefaultOptions() Options {
	return Options{
		TrialCounts:    []int{1, 10, 100, 1000},
		ConflictBudget: 2_000_000,
		MaxSATEntries:  400,
		Seed:           1,
	}
}

// Row is one row of Table I.
type Row struct {
	// Label names the benchmark set (e.g. "10×10, rand").
	Label string
	// Total is the number of instances evaluated.
	Total int
	// Decided is the number of instances whose r_B was established.
	Decided int
	// RankEq counts decided instances with r_B = rank (the "rank†" column).
	RankEq int
	// TrivialOpt counts decided instances where the trivial heuristic is
	// optimal.
	TrivialOpt int
	// PackOpt[t] counts decided instances where row packing with t trials
	// is optimal.
	PackOpt map[int]int
	// TimedOut counts instances whose exact solve hit a budget.
	TimedOut int
}

// pct formats a count as a percentage of the decided instances.
func (r Row) pct(count int) string {
	if r.Decided == 0 {
		return "  n/a"
	}
	return fmt.Sprintf("%4.0f%%", 100*float64(count)/float64(r.Decided))
}

// InstanceResult captures per-instance measurements (for Figure 4).
type InstanceResult struct {
	Name      string
	Rank      int
	BinaryRB  int // -1 if undecided
	PackDepth int
	PackTime  time.Duration
	SATTime   time.Duration
	Conflicts int64
	TimedOut  bool
}

// TotalTime is pack + SAT time.
func (r InstanceResult) TotalTime() time.Duration { return r.PackTime + r.SATTime }

// EvalSuite runs the full Table I protocol on a suite and returns the
// aggregated row plus per-instance results.
func EvalSuite(label string, suite []benchgen.Instance, opts Options) (Row, []InstanceResult) {
	row := Row{Label: label, PackOpt: map[int]int{}}
	var per []InstanceResult
	for _, ins := range suite {
		row.Total++
		res := evalInstance(ins, opts)
		per = append(per, res)
		if res.TimedOut {
			row.TimedOut++
		}
		if res.BinaryRB < 0 {
			continue
		}
		row.Decided++
		if res.BinaryRB == res.Rank {
			row.RankEq++
		}
		if rowpack.Trivial(ins.M).Depth() == res.BinaryRB {
			row.TrivialOpt++
		}
		for _, t := range opts.TrialCounts {
			p := rowpack.Pack(ins.M, rowpack.Options{Trials: t, Seed: opts.Seed})
			if p.Depth() == res.BinaryRB {
				row.PackOpt[t]++
			}
		}
	}
	return row, per
}

// evalInstance establishes r_B for one instance (or -1 when budgets ran out)
// together with the stage timings.
func evalInstance(ins benchgen.Instance, opts Options) InstanceResult {
	res := InstanceResult{Name: ins.Name, Rank: ins.M.Rank(), BinaryRB: -1}
	copts := core.DefaultOptions()
	copts.Packing = rowpack.Options{Trials: maxTrial(opts.TrialCounts), Seed: opts.Seed}
	copts.ConflictBudget = opts.ConflictBudget
	copts.TimeBudget = opts.TimeBudget
	copts.MaxSATEntries = opts.MaxSATEntries
	copts.Parallelism = opts.Parallelism
	copts.FoolingBudget = 0 // the paper's loop uses only the rank bound
	out, err := core.Solve(ins.M, copts)
	if err != nil {
		return res
	}
	res.PackDepth = out.HeuristicDepth
	res.PackTime = out.PackTime
	res.SATTime = out.SATTime
	res.Conflicts = out.Conflicts
	res.TimedOut = out.TimedOut
	switch {
	case ins.KnownOptimal >= 0:
		res.BinaryRB = ins.KnownOptimal
	case out.Optimal:
		res.BinaryRB = out.Depth
	}
	return res
}

func maxTrial(ts []int) int {
	m := 1
	for _, t := range ts {
		if t > m {
			m = t
		}
	}
	return m
}

// WriteTable renders rows in the layout of Table I.
func WriteTable(w io.Writer, rows []Row, trialCounts []int) {
	var sb strings.Builder
	sb.WriteString(fmt.Sprintf("%-16s %6s %8s", "benchmark", "rank", "trivial"))
	for _, t := range trialCounts {
		sb.WriteString(fmt.Sprintf(" %7s", fmt.Sprintf("rp%d", t)))
	}
	sb.WriteString(fmt.Sprintf(" %9s %8s\n", "decided", "timeout"))
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-16s %6s %8s", r.Label, r.pct(r.RankEq), r.pct(r.TrivialOpt)))
		for _, t := range trialCounts {
			sb.WriteString(fmt.Sprintf(" %7s", r.pct(r.PackOpt[t])))
		}
		sb.WriteString(fmt.Sprintf(" %5d/%-3d %8d\n", r.Decided, r.Total, r.TimedOut))
	}
	io.WriteString(w, sb.String())
}

// HardestCases sorts instance results by total runtime (descending) and
// returns the top n — the content of Figure 4.
func HardestCases(results []InstanceResult, n int) []InstanceResult {
	sorted := append([]InstanceResult(nil), results...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].TotalTime() > sorted[j].TotalTime() })
	if n > len(sorted) {
		n = len(sorted)
	}
	return sorted[:n]
}

// WriteTimings renders the Figure 4 data: per-case packing vs SAT runtime
// and the rational rank.
func WriteTimings(w io.Writer, cases []InstanceResult) {
	fmt.Fprintf(w, "%-24s %10s %10s %12s %6s %6s\n",
		"case", "pack", "sat", "conflicts", "rank", "r_B")
	for _, c := range cases {
		rb := "?"
		if c.BinaryRB >= 0 {
			rb = fmt.Sprint(c.BinaryRB)
		}
		fmt.Fprintf(w, "%-24s %10s %10s %12d %6d %6s\n",
			c.Name, c.PackTime.Round(time.Microsecond), c.SATTime.Round(time.Microsecond),
			c.Conflicts, c.Rank, rb)
	}
}

// PaperSuites builds the full Table I benchmark layout at a configurable
// scale (countSmall instances per random cell and opt rank, countGap per gap
// pair count; the paper uses 10/10/100).
func PaperSuites(seed int64, countSmall, countGap int) map[string][]benchgen.Instance {
	occS := benchgen.PaperOccupanciesSmall()
	occL := benchgen.PaperOccupanciesLarge()
	return map[string][]benchgen.Instance{
		"10x10, rand":   benchgen.RandomSuite(seed, 10, 10, occS, countSmall),
		"10x20, rand":   benchgen.RandomSuite(seed+1, 10, 20, occS, countSmall),
		"10x30, rand":   benchgen.RandomSuite(seed+2, 10, 30, occS, countSmall),
		"100x100, rand": benchgen.RandomSuite(seed+3, 100, 100, occL, countSmall),
		"10x10, opt":    benchgen.OptSuite(seed+4, 10, 10, 10, countSmall),
		"10x10, gap, 2": benchgen.GapSuite(seed+5, 10, 10, []int{2}, countGap),
		"10x10, gap, 3": benchgen.GapSuite(seed+6, 10, 10, []int{3}, countGap),
		"10x10, gap, 4": benchgen.GapSuite(seed+7, 10, 10, []int{4}, countGap),
		"10x10, gap, 5": benchgen.GapSuite(seed+8, 10, 10, []int{5}, countGap),
	}
}

// SuiteOrder is the Table I row order for PaperSuites keys.
func SuiteOrder() []string {
	return []string{
		"10x10, rand", "10x20, rand", "10x30, rand", "100x100, rand",
		"10x10, opt",
		"10x10, gap, 2", "10x10, gap, 3", "10x10, gap, 4", "10x10, gap, 5",
	}
}
