package eval

import (
	"encoding/csv"
	"strings"
	"testing"
	"time"
)

func TestWriteCSVParses(t *testing.T) {
	rows := []Row{
		{Label: "a", Total: 5, Decided: 4, RankEq: 3, TrivialOpt: 2, PackOpt: map[int]int{1: 4, 10: 4}},
		{Label: "b, with comma", Total: 1, Decided: 1, PackOpt: map[int]int{1: 1, 10: 1}},
	}
	var sb strings.Builder
	if err := WriteCSV(&sb, rows, []int{1, 10}); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("records = %d, want 3", len(recs))
	}
	if recs[0][6] != "rp1_opt" || recs[0][7] != "rp10_opt" {
		t.Fatalf("header: %v", recs[0])
	}
	if recs[1][1] != "5" || recs[1][4] != "3" {
		t.Fatalf("row a: %v", recs[1])
	}
	if recs[2][0] != "b, with comma" {
		t.Fatalf("comma label mangled: %v", recs[2])
	}
}

func TestWriteInstanceCSVParses(t *testing.T) {
	results := []InstanceResult{
		{Name: "x", Rank: 4, BinaryRB: 5, PackDepth: 5, PackTime: 3 * time.Millisecond,
			SATTime: 7 * time.Millisecond, Conflicts: 42, TimedOut: false},
	}
	var sb strings.Builder
	if err := WriteInstanceCSV(&sb, results); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1][0] != "x" || recs[1][4] != "3000" || recs[1][6] != "42" {
		t.Fatalf("records: %v", recs)
	}
}
