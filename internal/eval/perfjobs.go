package eval

import (
	"repro/internal/benchgen"
	"repro/internal/bitmat"
	"repro/internal/encode"
	"repro/internal/rowpack"
	"repro/internal/sat"
)

// The perf-tracked Solver/SAP workloads. bench_test.go (`go test -bench
// 'Solver|SAP'`) and cmd/timing -json (BENCH_solver.json) both measure these
// jobs, so they must stay one source of truth — drift would silently make
// the JSON snapshots incomparable to the benchmark numbers.

// SolverJob is one Table I gap decision problem: a matrix plus its
// row-packing upper bound, the input the SAP loop hands the SAT solver.
type SolverJob struct {
	M  *bitmat.Matrix
	UB int
}

// TableIGapSolverJobs collects the gap-suite decision problems (pair counts
// 2–5, 5 instances each, the bench_test seeds).
func TableIGapSolverJobs() []SolverJob {
	var jobs []SolverJob
	for pairs := 2; pairs <= 5; pairs++ {
		for _, ins := range benchgen.GapSuite(14+int64(pairs), 10, 10, []int{pairs}, 5) {
			ub := rowpack.Pack(ins.M, rowpack.Options{Trials: 100, Seed: 1}).Depth()
			jobs = append(jobs, SolverJob{M: ins.M, UB: ub})
		}
	}
	return jobs
}

// NarrowToRank runs the SAP narrowing loop on one job — encode at UB-1,
// solve and narrow until UNSAT or the rank bound — with the incremental
// (selector-assumption) or destructive (unit-clause) one-hot encoder.
func NarrowToRank(j SolverJob, incremental bool) {
	var enc encode.Encoder
	if incremental {
		enc = encode.NewOneHotIncremental(j.M, j.UB-1, encode.AMOPairwise)
	} else {
		enc = encode.NewOneHot(j.M, j.UB-1, encode.AMOPairwise)
	}
	lb := j.M.Rank()
	for enc.Bound() >= lb {
		if enc.Solve() != sat.Sat {
			return
		}
		enc.Narrow()
	}
}
