package eval

import (
	"repro/internal/benchgen"
	"repro/internal/bitmat"
	"repro/internal/core"
	"repro/internal/encode"
	"repro/internal/rowpack"
	"repro/internal/sat"
)

// The perf-tracked Solver/SAP workloads. bench_test.go (`go test -bench
// 'Solver|SAP'`) and cmd/timing -json (BENCH_solver.json) both measure these
// jobs, so they must stay one source of truth — drift would silently make
// the JSON snapshots incomparable to the benchmark numbers.

// SolverJob is one Table I gap decision problem: a matrix plus its
// row-packing upper bound, the input the SAP loop hands the SAT solver.
type SolverJob struct {
	M  *bitmat.Matrix
	UB int
}

// TableIGapSolverJobs collects the gap-suite decision problems (pair counts
// 2–5, 5 instances each, the bench_test seeds).
func TableIGapSolverJobs() []SolverJob {
	var jobs []SolverJob
	for pairs := 2; pairs <= 5; pairs++ {
		for _, ins := range benchgen.GapSuite(14+int64(pairs), 10, 10, []int{pairs}, 5) {
			ub := rowpack.Pack(ins.M, rowpack.Options{Trials: 100, Seed: 1}).Depth()
			jobs = append(jobs, SolverJob{M: ins.M, UB: ub})
		}
	}
	return jobs
}

// NarrowToRank runs the SAP narrowing loop on one job — encode at UB-1,
// solve and narrow until UNSAT or the rank bound — with the incremental
// (selector-assumption) or destructive (unit-clause) one-hot encoder.
// symBreak toggles the slot-ordering symmetry-breaking clauses (the
// ablation pair for the decomposition PR's encoder change).
func NarrowToRank(j SolverJob, incremental, symBreak bool) {
	enc := encode.NewOneHotConfig(j.M, j.UB-1, encode.OneHotConfig{
		Incremental:         incremental,
		DisableSlotOrdering: !symBreak,
	})
	lb := j.M.Rank()
	for enc.Bound() >= lb {
		if enc.Solve() != sat.Sat {
			return
		}
		enc.Narrow()
	}
}

// TableIGapSAPOptions are the end-to-end SAP options of the perf-tracked
// Table I gap workload (BenchmarkSAPTableIGap / cmd/timing -json).
func TableIGapSAPOptions() core.Options {
	opts := core.DefaultOptions()
	opts.FoolingBudget = 0
	opts.ConflictBudget = 2_000_000
	return opts
}

// TableIGapPortfolioOptions is the racing twin of TableIGapSAPOptions: the
// same budgets with a K-strategy portfolio and clause sharing — the perf
// pair that records what racing buys on the gap suites.
func TableIGapPortfolioOptions(k int) core.Options {
	opts := TableIGapSAPOptions()
	opts.Portfolio.Size = k
	opts.Portfolio.ShareClauses = true
	return opts
}

// GapSuiteMatrices returns the SAPTableIGap instance set (pair counts 2–5,
// 5 instances each, bench_test seeds).
func GapSuiteMatrices() []*bitmat.Matrix {
	var ms []*bitmat.Matrix
	for pairs := 2; pairs <= 5; pairs++ {
		for _, ins := range benchgen.GapSuite(14+int64(pairs), 10, 10, []int{pairs}, 5) {
			ms = append(ms, ins.M)
		}
	}
	return ms
}

// RunGapSuiteSAP solves every gap-suite matrix under opts, panicking on
// error (perf workloads must not silently degrade into no-ops).
func RunGapSuiteSAP(ms []*bitmat.Matrix, opts core.Options) {
	for _, m := range ms {
		if _, err := core.Solve(m, opts); err != nil {
			panic(err)
		}
	}
}

// BlockDiagSAPMatrices is the decomposition perf suite: permuted
// block-diagonal compositions of four 8×8 gap-2 components. Each instance
// splits into ≥4 connected components, every component carries an UNSAT
// tail, and the sequential whole-matrix solve still terminates — the
// workload where the Decompose stage and per-block parallelism show up as
// wall-clock.
func BlockDiagSAPMatrices() []*bitmat.Matrix {
	var ms []*bitmat.Matrix
	for _, ins := range benchgen.BlockDiagSuite(2024, 4, 8, 8, 2, 3, true) {
		ms = append(ms, ins.M)
	}
	return ms
}

// BlockDiagSAPOptions are the pipeline options the decomposition perf pair
// runs under: parallel decomposed (the default pipeline) vs the sequential
// whole-matrix ablation.
func BlockDiagSAPOptions(parallel bool) core.Options {
	opts := core.DefaultOptions()
	opts.Packing.Trials = 100
	opts.FoolingBudget = 0
	opts.ConflictBudget = 20_000_000
	if !parallel {
		opts.DisableDecomposition = true
		opts.Parallelism = 1
	}
	return opts
}

// RunBlockDiagSAP solves every decomposition-suite matrix under the chosen
// pipeline configuration, panicking on error (perf workloads must not
// silently degrade into no-ops).
func RunBlockDiagSAP(ms []*bitmat.Matrix, parallel bool) {
	opts := BlockDiagSAPOptions(parallel)
	for _, m := range ms {
		if _, err := core.Solve(m, opts); err != nil {
			panic(err)
		}
	}
}
