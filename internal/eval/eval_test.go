package eval

import (
	"strings"
	"testing"

	"repro/internal/benchgen"
)

func fastEvalOptions() Options {
	return Options{
		TrialCounts:    []int{1, 10},
		ConflictBudget: 500_000,
		MaxSATEntries:  200,
		Seed:           1,
	}
}

func TestEvalOptSuiteAllOptimal(t *testing.T) {
	suite := benchgen.OptSuite(3, 10, 10, 5, 2)
	row, per := EvalSuite("10x10, opt", suite, fastEvalOptions())
	if row.Total != 10 || row.Decided != 10 {
		t.Fatalf("total=%d decided=%d", row.Total, row.Decided)
	}
	// Paper Observation 2: trivial and row packing always optimal here,
	// and rank = r_B on all instances.
	if row.RankEq != 10 {
		t.Fatalf("rankEq = %d", row.RankEq)
	}
	if row.TrivialOpt != 10 {
		t.Fatalf("trivialOpt = %d", row.TrivialOpt)
	}
	if row.PackOpt[10] != 10 {
		t.Fatalf("packOpt[10] = %d", row.PackOpt[10])
	}
	if len(per) != 10 {
		t.Fatalf("per-instance results: %d", len(per))
	}
}

func TestEvalGapSuiteDecidesAll(t *testing.T) {
	suite := benchgen.GapSuite(4, 10, 10, []int{2}, 3)
	row, _ := EvalSuite("10x10, gap, 2", suite, fastEvalOptions())
	if row.Decided != row.Total {
		t.Fatalf("undecided gap instances: %d/%d (timeouts %d)", row.Decided, row.Total, row.TimedOut)
	}
	// Gap instances exist precisely to sometimes have r_B > rank, so
	// monotonicity: packing with more trials is at least as good.
	if row.PackOpt[10] < row.PackOpt[1] {
		t.Fatalf("more trials got worse: %d < %d", row.PackOpt[10], row.PackOpt[1])
	}
}

func TestEvalLargeRandomSkipsSAT(t *testing.T) {
	suite := benchgen.RandomSuite(5, 100, 100, []float64{0.05}, 1)
	opts := fastEvalOptions()
	opts.TrialCounts = []int{100}
	row, per := EvalSuite("100x100, rand", suite, opts)
	if row.Total != 1 {
		t.Fatal("suite size")
	}
	// 5% occupancy at 100×100 is essentially always full rank, so the
	// heuristic certificate decides it without SAT.
	if row.Decided != 1 {
		t.Fatalf("expected rank certificate to decide; per=%+v", per)
	}
	if per[0].SATTime != 0 {
		t.Fatal("SAT should not have run")
	}
}

func TestWriteTableFormat(t *testing.T) {
	rows := []Row{{
		Label: "test", Total: 4, Decided: 4, RankEq: 2, TrivialOpt: 1,
		PackOpt: map[int]int{1: 3},
	}}
	var sb strings.Builder
	WriteTable(&sb, rows, []int{1})
	out := sb.String()
	if !strings.Contains(out, "test") || !strings.Contains(out, "50%") || !strings.Contains(out, "75%") {
		t.Fatalf("table output:\n%s", out)
	}
}

func TestHardestCasesOrdering(t *testing.T) {
	results := []InstanceResult{
		{Name: "a", PackTime: 1, SATTime: 5},
		{Name: "b", PackTime: 1, SATTime: 50},
		{Name: "c", PackTime: 1, SATTime: 1},
	}
	top := HardestCases(results, 2)
	if len(top) != 2 || top[0].Name != "b" || top[1].Name != "a" {
		t.Fatalf("got %+v", top)
	}
	all := HardestCases(results, 10)
	if len(all) != 3 {
		t.Fatal("clamp failed")
	}
}

func TestWriteTimings(t *testing.T) {
	var sb strings.Builder
	WriteTimings(&sb, []InstanceResult{{Name: "x", Rank: 7, BinaryRB: 8}})
	if !strings.Contains(sb.String(), "x") || !strings.Contains(sb.String(), "8") {
		t.Fatalf("timings:\n%s", sb.String())
	}
}

func TestPaperSuitesLayout(t *testing.T) {
	suites := PaperSuites(1, 2, 3)
	if len(suites) != len(SuiteOrder()) {
		t.Fatalf("suite count %d vs order %d", len(suites), len(SuiteOrder()))
	}
	for _, name := range SuiteOrder() {
		if _, ok := suites[name]; !ok {
			t.Fatalf("missing suite %q", name)
		}
	}
	if got := len(suites["10x10, rand"]); got != 18 { // 9 occupancies × 2
		t.Fatalf("10x10 rand size %d", got)
	}
	if got := len(suites["10x10, gap, 5"]); got != 3 {
		t.Fatalf("gap-5 size %d", got)
	}
}
