package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// SpanData is one finished span: flat, parent-linked. The tree is assembled
// at read time so recording stays an append and cross-tier merging needs no
// renumbering.
type SpanData struct {
	ID       uint64
	Parent   uint64 // 0 = trace root
	Name     string
	Start    time.Time
	Duration time.Duration
	Attrs    []Attr
}

// TraceData is one finished trace: the flat span list (root first) plus the
// solver progress timeline.
type TraceData struct {
	TraceID         string
	Name            string
	Start           time.Time
	Duration        time.Duration
	Spans           []SpanData
	Progress        []ProgressSample
	ProgressDropped int64
}

// SpanNode is one node of the assembled span tree.
type SpanNode struct {
	SpanData
	Children []*SpanNode
}

// Tree assembles the parent-linked span list into trees, children ordered by
// start time. Spans whose parent is unknown (e.g. a backend subtree whose
// graft point was never recorded) become additional roots rather than being
// dropped — a stitched trace must never silently lose a tier.
func (td *TraceData) Tree() []*SpanNode {
	nodes := make(map[uint64]*SpanNode, len(td.Spans))
	for i := range td.Spans {
		sd := td.Spans[i]
		nodes[sd.ID] = &SpanNode{SpanData: sd}
	}
	var roots []*SpanNode
	for _, sd := range td.Spans {
		n := nodes[sd.ID]
		if p, ok := nodes[sd.Parent]; ok && sd.Parent != sd.ID {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	var sortChildren func(n *SpanNode)
	sortChildren = func(n *SpanNode) {
		sort.SliceStable(n.Children, func(i, j int) bool {
			return n.Children[i].Start.Before(n.Children[j].Start)
		})
		for _, c := range n.Children {
			sortChildren(c)
		}
	}
	sort.SliceStable(roots, func(i, j int) bool { return roots[i].Start.Before(roots[j].Start) })
	for _, r := range roots {
		sortChildren(r)
	}
	return roots
}

// Render draws the trace as an indented timeline — the `ebmf -trace` and
// slow-solve log format. Offsets are relative to the trace start; clock skew
// between tiers can make a grafted subtree's offsets slightly inconsistent
// with the local spans (same-host fleets won't notice).
func (td *TraceData) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s %s %s\n", td.TraceID, td.Name, td.Duration.Round(time.Microsecond))
	var walk func(n *SpanNode, depth int)
	walk = func(n *SpanNode, depth int) {
		fmt.Fprintf(&b, "%s%-12s +%-10s %s%s\n",
			strings.Repeat("  ", depth+1), n.Name,
			n.Start.Sub(td.Start).Round(time.Microsecond),
			n.Duration.Round(time.Microsecond), renderAttrs(n.Attrs))
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	for _, r := range td.Tree() {
		walk(r, 0)
	}
	for _, p := range td.Progress {
		fmt.Fprintf(&b, "  progress t=+%-9s block=%d bound=%d lb=%d conflicts=%d restarts=%d props=%d learnts=%d\n",
			p.Time.Sub(td.Start).Round(time.Microsecond), p.Block, p.Bound, p.LB,
			p.Conflicts, p.Restarts, p.Propagations, p.Learnts)
	}
	if td.ProgressDropped > 0 {
		fmt.Fprintf(&b, "  progress (%d samples dropped at cap)\n", td.ProgressDropped)
	}
	return b.String()
}

func renderAttrs(attrs []Attr) string {
	if len(attrs) == 0 {
		return ""
	}
	var b strings.Builder
	for _, a := range attrs {
		fmt.Fprintf(&b, " %s=%s", a.Key, a.Val)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Wire form. These types ARE the JSON schema carried in internal/wire
// responses and served by /v1/debug/traces, so the backend→gateway graft is
// a decode plus an append.

// TracesJSON is the GET /v1/debug/traces response body.
type TracesJSON struct {
	Recent  []*TraceJSON `json:"recent"`
	Slowest []*TraceJSON `json:"slowest"`
}

// TraceJSON is one trace on the wire.
type TraceJSON struct {
	TraceID         string         `json:"trace_id"`
	Name            string         `json:"name"`
	StartUS         int64          `json:"start_us"` // unix microseconds
	DurationUS      int64          `json:"duration_us"`
	Spans           []SpanJSON     `json:"spans"`
	Progress        []ProgressJSON `json:"progress,omitempty"`
	ProgressDropped int64          `json:"progress_dropped,omitempty"`
}

// SpanJSON is one span on the wire; IDs are 16-hex strings.
type SpanJSON struct {
	ID      string            `json:"id"`
	Parent  string            `json:"parent,omitempty"`
	Name    string            `json:"name"`
	StartUS int64             `json:"start_us"`
	DurUS   int64             `json:"dur_us"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// ProgressJSON is one progress sample on the wire.
type ProgressJSON struct {
	TUS          int64 `json:"t_us"` // unix microseconds
	Block        int   `json:"block"`
	Bound        int   `json:"bound"`
	LB           int   `json:"lb,omitempty"` // proven lower bound on the block
	Conflicts    int64 `json:"conflicts"`
	Restarts     int64 `json:"restarts"`
	Propagations int64 `json:"propagations"`
	Learnts      int   `json:"learnts"`
}

// ProgressToJSON converts one sample to wire form (shared by trace bodies
// and job event streams).
func ProgressToJSON(p ProgressSample) ProgressJSON {
	return ProgressJSON{
		TUS:          p.Time.UnixMicro(),
		Block:        p.Block,
		Bound:        p.Bound,
		LB:           p.LB,
		Conflicts:    p.Conflicts,
		Restarts:     p.Restarts,
		Propagations: p.Propagations,
		Learnts:      p.Learnts,
	}
}

// JSON converts a finished trace to wire form.
func (td *TraceData) JSON() *TraceJSON {
	out := &TraceJSON{
		TraceID:         td.TraceID,
		Name:            td.Name,
		StartUS:         td.Start.UnixMicro(),
		DurationUS:      td.Duration.Microseconds(),
		Spans:           make([]SpanJSON, 0, len(td.Spans)),
		ProgressDropped: td.ProgressDropped,
	}
	for _, sd := range td.Spans {
		sj := SpanJSON{
			ID:      strconv.FormatUint(sd.ID, 16),
			Name:    sd.Name,
			StartUS: sd.Start.UnixMicro(),
			DurUS:   sd.Duration.Microseconds(),
		}
		if sd.Parent != 0 {
			sj.Parent = strconv.FormatUint(sd.Parent, 16)
		}
		if len(sd.Attrs) > 0 {
			sj.Attrs = make(map[string]string, len(sd.Attrs))
			for _, a := range sd.Attrs {
				sj.Attrs[a.Key] = a.Val
			}
		}
		out.Spans = append(out.Spans, sj)
	}
	for _, p := range td.Progress {
		out.Progress = append(out.Progress, ProgressToJSON(p))
	}
	return out
}

// FromJSON converts a wire trace back to span/progress data, for grafting a
// backend's subtree into the gateway's trace. Spans with unparseable IDs are
// dropped (they could not be linked anyway).
func FromJSON(tj *TraceJSON) ([]SpanData, []ProgressSample) {
	if tj == nil {
		return nil, nil
	}
	spans := make([]SpanData, 0, len(tj.Spans))
	for _, sj := range tj.Spans {
		id, err := strconv.ParseUint(sj.ID, 16, 64)
		if err != nil || id == 0 {
			continue
		}
		var parent uint64
		if sj.Parent != "" {
			parent, _ = strconv.ParseUint(sj.Parent, 16, 64)
		}
		sd := SpanData{
			ID:       id,
			Parent:   parent,
			Name:     sj.Name,
			Start:    time.UnixMicro(sj.StartUS),
			Duration: time.Duration(sj.DurUS) * time.Microsecond,
		}
		if len(sj.Attrs) > 0 {
			keys := make([]string, 0, len(sj.Attrs))
			for k := range sj.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				sd.Attrs = append(sd.Attrs, Attr{k, sj.Attrs[k]})
			}
		}
		spans = append(spans, sd)
	}
	var progress []ProgressSample
	for _, p := range tj.Progress {
		progress = append(progress, ProgressSample{
			Time:         time.UnixMicro(p.TUS),
			Block:        p.Block,
			Bound:        p.Bound,
			Conflicts:    p.Conflicts,
			Restarts:     p.Restarts,
			Propagations: p.Propagations,
			Learnts:      p.Learnts,
		})
	}
	return spans, progress
}
