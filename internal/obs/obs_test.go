package obs

import (
	"context"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeAssembly(t *testing.T) {
	tr := New(Config{})
	ctx, root := tr.StartTrace(context.Background(), "solve", nil)
	if root == nil {
		t.Fatal("root span sampled out at SampleEvery=1")
	}
	ctxPre, pre := StartSpan(ctx, "preprocess")
	_ = ctxPre
	pre.SetAttr("rows", "12")
	pre.End()
	ctxBlk, blk := StartSpan(ctx, "block")
	blk.SetAttrInt("block", 0)
	_, probe := StartSpan(ctxBlk, "probe")
	probe.SetAttrInt("bound", 3)
	probe.End()
	blk.End()
	td := root.Finish()
	if td == nil {
		t.Fatal("Finish returned nil")
	}
	if len(td.Spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(td.Spans))
	}
	if td.Spans[0].Name != "solve" || td.Spans[0].Parent != 0 {
		t.Fatalf("root span not first: %+v", td.Spans[0])
	}
	roots := td.Tree()
	if len(roots) != 1 {
		t.Fatalf("got %d roots, want 1", len(roots))
	}
	if len(roots[0].Children) != 2 {
		t.Fatalf("root has %d children, want 2 (preprocess, block)", len(roots[0].Children))
	}
	var blkNode *SpanNode
	for _, c := range roots[0].Children {
		if c.Name == "block" {
			blkNode = c
		}
	}
	if blkNode == nil || len(blkNode.Children) != 1 || blkNode.Children[0].Name != "probe" {
		t.Fatalf("probe span not nested under block: %+v", blkNode)
	}
	if !strings.Contains(td.Render(), "probe") {
		t.Fatalf("Render missing probe span:\n%s", td.Render())
	}
}

func TestNilSpanOps(t *testing.T) {
	// Everything must be a no-op on untraced contexts / nil spans.
	ctx := context.Background()
	if Active(ctx) {
		t.Fatal("background context should be untraced")
	}
	ctx2, sp := StartSpan(ctx, "x")
	if sp != nil || ctx2 != ctx {
		t.Fatal("StartSpan on untraced context must return (ctx, nil)")
	}
	sp.SetAttr("k", "v")
	sp.SetAttrInt("k", 1)
	sp.End()
	sp.End()
	if sp.Finish() != nil {
		t.Fatal("Finish on nil span must return nil")
	}
	if sp.IsRemote() {
		t.Fatal("nil span is not remote")
	}
	AddProgress(ctx, ProgressSample{})
	if ProgressEvery(ctx) != 0 {
		t.Fatal("ProgressEvery on untraced context must be 0")
	}
	if Traceparent(ctx) != "" {
		t.Fatal("Traceparent on untraced context must be empty")
	}
	var nilTracer *Tracer
	ctx3, sp3 := nilTracer.StartTrace(ctx, "x", nil)
	if sp3 != nil || ctx3 != ctx {
		t.Fatal("StartTrace on nil tracer must be a no-op")
	}
}

func TestSampling(t *testing.T) {
	tr := New(Config{SampleEvery: 4})
	sampled := 0
	for i := 0; i < 16; i++ {
		if _, sp := tr.StartTrace(context.Background(), "s", nil); sp != nil {
			sampled++
			sp.Finish()
		}
	}
	if sampled != 4 {
		t.Fatalf("sampled %d of 16 at SampleEvery=4, want 4", sampled)
	}
	off := New(Config{SampleEvery: -1})
	if _, sp := off.StartTrace(context.Background(), "s", nil); sp != nil {
		t.Fatal("SampleEvery=-1 must disable tracing")
	}
	// A remote parent forces sampling even when local sampling is off.
	if _, sp := off.StartTrace(context.Background(), "s", &Remote{TraceID: strings.Repeat("ab", 16), ParentID: 7}); sp == nil {
		t.Fatal("remote traceparent must force sampling")
	} else if !sp.IsRemote() {
		t.Fatal("remote-started span must report IsRemote")
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tr := New(Config{})
	ctx, root := tr.StartTrace(context.Background(), "gw.solve", nil)
	ctx2, proxy := StartSpan(ctx, "proxy")
	h := Traceparent(ctx2)
	remote, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) rejected own header", h)
	}
	if remote.TraceID != root.trace.traceID {
		t.Fatalf("trace ID %q != %q", remote.TraceID, root.trace.traceID)
	}
	if remote.ParentID != proxy.id {
		t.Fatalf("parent ID %x != proxy span %x", remote.ParentID, proxy.id)
	}
	proxy.End()
	root.Finish()

	for _, bad := range []string{
		"",
		"00-abc-def-01",
		"00-" + strings.Repeat("0", 32) + "-00f067aa0ba902b7-01",
		"00-" + strings.Repeat("a", 32) + "-0000000000000000-01",
		"00-" + strings.Repeat("g", 32) + "-00f067aa0ba902b7-01",
		"zz" + strings.Repeat("a", 32),
	} {
		if _, ok := ParseTraceparent(bad); ok {
			t.Errorf("ParseTraceparent(%q) accepted malformed header", bad)
		}
	}
}

// TestMergeGraft simulates the gateway/backend stitch: backend trace started
// from the gateway's traceparent, serialized to wire form, grafted back.
func TestMergeGraft(t *testing.T) {
	gw := New(Config{})
	be := New(Config{SampleEvery: -1}) // backend samples nothing on its own

	gctx, groot := gw.StartTrace(context.Background(), "gw.solve", nil)
	pctx, proxy := StartSpan(gctx, "proxy")

	remote, ok := ParseTraceparent(Traceparent(pctx))
	if !ok {
		t.Fatal("gateway header did not parse")
	}
	bctx, broot := be.StartTrace(context.Background(), "solve", &remote)
	if broot == nil {
		t.Fatal("backend must trace under remote parent")
	}
	_, blk := StartSpan(bctx, "block")
	blk.End()
	AddProgress(bctx, ProgressSample{Time: time.Now(), Bound: 3, Conflicts: 42})
	btd := broot.Finish()
	if btd.TraceID != remote.TraceID {
		t.Fatalf("backend trace ID %q != propagated %q", btd.TraceID, remote.TraceID)
	}

	// Wire round-trip, then graft.
	spans, progress := FromJSON(btd.JSON())
	if len(spans) != 2 || len(progress) != 1 {
		t.Fatalf("wire round-trip: %d spans, %d progress; want 2, 1", len(spans), len(progress))
	}
	proxy.Merge(spans, progress)
	proxy.End()
	td := groot.Finish()

	if td.TraceID != btd.TraceID {
		t.Fatalf("stitched trace ID mismatch: %q vs %q", td.TraceID, btd.TraceID)
	}
	if len(td.Spans) != 4 { // gw root, proxy, backend root, block
		t.Fatalf("stitched trace has %d spans, want 4", len(td.Spans))
	}
	if len(td.Progress) != 1 || td.Progress[0].Conflicts != 42 {
		t.Fatalf("progress not carried through stitch: %+v", td.Progress)
	}
	// Tree: backend root must hang under the proxy span.
	roots := td.Tree()
	if len(roots) != 1 {
		t.Fatalf("stitched tree has %d roots, want 1", len(roots))
	}
	var proxyNode *SpanNode
	for _, c := range roots[0].Children {
		if c.Name == "proxy" {
			proxyNode = c
		}
	}
	if proxyNode == nil || len(proxyNode.Children) != 1 || proxyNode.Children[0].Name != "solve" {
		t.Fatalf("backend subtree not grafted under proxy: %+v", proxyNode)
	}
	if len(proxyNode.Children[0].Children) != 1 || proxyNode.Children[0].Children[0].Name != "block" {
		t.Fatal("backend block span lost in graft")
	}
}

func TestRingRecentAndSlowest(t *testing.T) {
	tr := New(Config{RingSize: 4, SlowRingSize: 2})
	for i := 1; i <= 8; i++ {
		_, sp := tr.StartTrace(context.Background(), "s", nil)
		// Fake durations by back-dating the start; Finish uses time.Since.
		sp.start = time.Now().Add(-time.Duration(i) * time.Millisecond)
		sp.trace.start = sp.start
		sp.Finish()
	}
	got := tr.Traces()
	if len(got.Recent) != 4 {
		t.Fatalf("recent has %d traces, want ring cap 4", len(got.Recent))
	}
	if len(got.Slowest) != 2 {
		t.Fatalf("slowest has %d traces, want cap 2", len(got.Slowest))
	}
	// Recent is newest-first: the last add had the largest back-date (8ms).
	if got.Recent[0].DurationUS < got.Recent[len(got.Recent)-1].DurationUS {
		// newest-first by insertion order, not duration; just sanity-check
		// slowest ordering instead.
		t.Log("recent not duration-ordered (expected; insertion order)")
	}
	if got.Slowest[0].DurationUS < got.Slowest[1].DurationUS {
		t.Fatalf("slowest not descending: %d then %d", got.Slowest[0].DurationUS, got.Slowest[1].DurationUS)
	}
	if got.Slowest[0].DurationUS < (7 * time.Millisecond).Microseconds() {
		t.Fatalf("slowest[0] = %dus, want ≥ 7ms (the 8ms trace)", got.Slowest[0].DurationUS)
	}
}

// TestConcurrentSpanRecording exercises parallel child spans + progress on one
// trace (the worker-pool shape) under -race.
func TestConcurrentSpanRecording(t *testing.T) {
	tr := New(Config{MaxProgress: 64})
	ctx, root := tr.StartTrace(context.Background(), "solve", nil)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			bctx, blk := StartSpan(ctx, "block")
			blk.SetAttrInt("block", int64(w))
			for i := 0; i < 10; i++ {
				_, probe := StartSpan(bctx, "probe")
				probe.SetAttrInt("bound", int64(i))
				probe.End()
				AddProgress(bctx, ProgressSample{Time: time.Now(), Block: w, Bound: i})
			}
			blk.End()
		}(w)
	}
	wg.Wait()
	td := root.Finish()
	want := 1 + workers*11 // root + per-worker (block + 10 probes)
	if len(td.Spans) != want {
		t.Fatalf("got %d spans, want %d", len(td.Spans), want)
	}
	if len(td.Progress)+int(td.ProgressDropped) != workers*10 {
		t.Fatalf("progress %d kept + %d dropped, want %d total",
			len(td.Progress), td.ProgressDropped, workers*10)
	}
	if len(td.Progress) > 64 {
		t.Fatalf("progress cap not enforced: %d > 64", len(td.Progress))
	}
	roots := td.Tree()
	if len(roots) != 1 {
		t.Fatalf("tree has %d roots, want 1", len(roots))
	}
	if len(roots[0].Children) != workers {
		t.Fatalf("root has %d children, want %d blocks", len(roots[0].Children), workers)
	}
	for _, c := range roots[0].Children {
		if len(c.Children) != 10 {
			t.Fatalf("block has %d probes, want 10", len(c.Children))
		}
	}
}

func TestDoubleEndAndFinishIdempotent(t *testing.T) {
	tr := New(Config{})
	ctx, root := tr.StartTrace(context.Background(), "s", nil)
	_, sp := StartSpan(ctx, "child")
	sp.End()
	sp.End()
	td := root.Finish()
	if root.Finish() != nil {
		t.Fatal("second Finish must return nil")
	}
	if len(td.Spans) != 2 {
		t.Fatalf("double End duplicated the span: %d spans", len(td.Spans))
	}
	got := tr.Traces()
	if len(got.Recent) != 1 {
		t.Fatalf("double Finish duplicated the trace in the ring: %d", len(got.Recent))
	}
}

func TestDebugMuxRoutes(t *testing.T) {
	mux := DebugMux()
	for _, path := range []string{"/debug/pprof/", "/debug/vars"} {
		req, err := http.NewRequest(http.MethodGet, path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if h, pattern := mux.Handler(req); h == nil || pattern == "" {
			t.Errorf("DebugMux missing handler for %s", path)
		}
	}
}

// TestProgressSink pins the trace-independent progress bridge that feeds job
// event streams: a sink receives samples on an untraced context, makes
// ProgressEvery non-zero so solvers install their hooks, and composes with a
// trace (both consumers see the sample; the smaller interval wins).
func TestProgressSink(t *testing.T) {
	var got []ProgressSample
	ctx := WithProgressSink(context.Background(), 256, func(s ProgressSample) {
		got = append(got, s)
	})
	if ProgressEvery(ctx) != 256 {
		t.Fatalf("ProgressEvery with sink = %d, want 256", ProgressEvery(ctx))
	}
	AddProgress(ctx, ProgressSample{Block: 1, Bound: 4, LB: 2, Conflicts: 512})
	if len(got) != 1 || got[0].Bound != 4 || got[0].LB != 2 {
		t.Fatalf("sink missed the sample: %+v", got)
	}

	// Sink + trace: both consumers record; interval is the smaller.
	tr := New(Config{ProgressEvery: 64})
	tctx, root := tr.StartTrace(ctx, "solve", nil)
	if ProgressEvery(tctx) != 64 {
		t.Fatalf("ProgressEvery traced+sink = %d, want 64", ProgressEvery(tctx))
	}
	AddProgress(tctx, ProgressSample{Block: 2, Bound: 3, LB: 3})
	td := root.Finish()
	if len(got) != 2 || got[1].Block != 2 {
		t.Fatalf("sink missed the traced sample: %+v", got)
	}
	if len(td.Progress) != 1 || td.Progress[0].LB != 3 {
		t.Fatalf("trace missed the sample: %+v", td.Progress)
	}

	// A sink coarser than the tracer must not slow tracing down.
	coarse := WithProgressSink(context.Background(), 100_000, func(ProgressSample) {})
	cctx, croot := tr.StartTrace(coarse, "solve", nil)
	if ProgressEvery(cctx) != 64 {
		t.Fatalf("coarse sink overrode the tracer: %d", ProgressEvery(cctx))
	}
	croot.Finish()

	// Nil fn: no-op wrapper.
	if nctx := WithProgressSink(context.Background(), 1, nil); ProgressEvery(nctx) != 0 {
		t.Fatal("nil sink changed ProgressEvery")
	}
}
